#!/usr/bin/env python3
"""check_trace.py — validate a Chrome trace-event JSON export.

Checks the files written by `--trace-out` (vkey_sim and every bench binary)
against the subset of the Chrome trace-event format the exporter promises,
so a regression in trace.cpp fails CI instead of silently producing a file
Perfetto refuses to load:

  * top level is an object with a `traceEvents` array (the "JSON Object
    Format" of the trace-event spec);
  * every event is a complete ("X") or instant ("i") event with string
    `name`/`cat`, numeric `ts` (microseconds) and integer `pid`/`tid`;
  * "X" events carry a non-negative `dur`; "i" events carry scope `s`;
  * `args.id` values are the dense remap 0..n-1 in event order — the
    canonical (start, id) export order, which is what makes the file
    byte-diffable across `--threads` values;
  * every `args.parent` names an id that exists and is not the event's own
    (the exporter omits the ref when the parent was evicted from the ring).

Usage:
    python3 tools/check_trace.py trace.json [more.json ...]

Exit status: 0 when every file validates, 1 on a validation failure,
2 on usage or I/O errors.
"""

import json
import sys

VALID_PHASES = ("X", "i")


def fail(path, index, message):
    print(f"{path}: event {index}: {message}", file=sys.stderr)
    return False


def check_event(path, index, ev, ids):
    if not isinstance(ev, dict):
        return fail(path, index, "event is not an object")
    for key in ("name", "cat"):
        if not isinstance(ev.get(key), str) or not ev[key]:
            return fail(path, index, f"missing or empty string field '{key}'")
    ph = ev.get("ph")
    if ph not in VALID_PHASES:
        return fail(path, index, f"phase {ph!r} is not one of {VALID_PHASES}")
    ts = ev.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
        return fail(path, index, f"ts {ts!r} is not a non-negative number")
    for key in ("pid", "tid"):
        if not isinstance(ev.get(key), int) or isinstance(ev.get(key), bool):
            return fail(path, index, f"{key} {ev.get(key)!r} is not an int")
    if ph == "X":
        dur = ev.get("dur")
        if (not isinstance(dur, (int, float)) or isinstance(dur, bool)
                or dur < 0):
            return fail(path, index,
                        f"complete event dur {dur!r} is not a "
                        "non-negative number")
    else:
        if ev.get("s") not in ("t", "p", "g"):
            return fail(path, index,
                        f"instant event scope {ev.get('s')!r} is not one of "
                        "'t'/'p'/'g'")
    args = ev.get("args")
    if not isinstance(args, dict):
        return fail(path, index, "missing args object")
    if args.get("id") != index:
        return fail(path, index,
                    f"args.id {args.get('id')!r} breaks the dense 0..n-1 "
                    "remap (expected the event's position)")
    ids.add(index)
    return True


def check_file(path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as err:
        sys.exit(f"error: cannot read {path}: {err}")
    except json.JSONDecodeError as err:
        print(f"{path}: not valid JSON: {err}", file=sys.stderr)
        return False

    if not isinstance(doc, dict) or not isinstance(
            doc.get("traceEvents"), list):
        print(f"{path}: top level must be an object with a traceEvents "
              "array", file=sys.stderr)
        return False

    events = doc["traceEvents"]
    ok = True
    ids = set()
    prev_key = None
    for index, ev in enumerate(events):
        if not check_event(path, index, ev, ids):
            ok = False
            continue
        key = (ev["ts"], ev["args"]["id"])
        if prev_key is not None and key < prev_key:
            ok = fail(path, index,
                      f"order {key} after {prev_key} breaks the canonical "
                      "(ts, id) sort")
        prev_key = key
    for index, ev in enumerate(events):
        if not isinstance(ev, dict) or not isinstance(ev.get("args"), dict):
            continue
        parent = ev["args"].get("parent")
        if parent is None:
            continue
        if parent not in ids:
            ok = fail(path, index, f"parent {parent!r} names no event")
        elif parent == ev["args"].get("id"):
            ok = fail(path, index, "event is its own parent")
    if ok:
        print(f"{path}: OK ({len(events)} events)")
    return ok


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    return 0 if all([check_file(p) for p in argv[1:]]) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
