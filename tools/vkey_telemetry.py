#!/usr/bin/env python3
"""vkey_telemetry.py — validate telemetry JSONL and gate soak regressions.

Two jobs, matching the two artifacts the soak/bench drivers emit:

validate FILE...
    Structural check of a `--telemetry-out` JSONL document (schema
    "vkey-telemetry/1", see src/common/telemetry.h): one header line, zero or
    more delta-encoded sample lines, one summary line. Verifies the header
    fields, that sample seq numbers are consecutive and t_ms is
    non-decreasing, that every counter delta is a number, every gauge is the
    {value, high, low} triple, every histogram entry carries exactly
    {dcount, p50, p90, p99, overflow, max}, and that the summary's
    samples/retained/dropped/last_t_ms agree with the lines actually present.

check FRESH --baseline BASELINE
    Perf-regression gate over BENCH_soak.json scalars: compares a fresh soak
    snapshot (typically `bench_soak --quick` in CI) against the committed
    full-scale baseline with per-key tolerance bands. Scale-free scalars
    (allocs/key, the contention-free lossless-phase p99, establishment rate)
    get tight bands at any scale; scale-bound scalars (overall p99 is
    queue-depth-dominated, keys/s carries tail amortization) switch to
    empirically pinned cross-scale bands when the two runs' `quick` flags
    differ. Absolute totals (establishments, virtual_hours, rekeys) are
    deliberately not compared. `steady_live_growth_blocks` is exact: any
    steady-state heap growth at all fails the gate, in CI just like in the
    harness itself.

Both subcommands print one line per finding and exit 1 when anything fails,
0 when clean, 2 on usage/IO errors. `--self-test` replays both directions
(known-good must pass, each seeded corruption must fail) with no files.
"""

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "vkey-telemetry/1"

SAMPLE_KEYS = {"seq", "t_ms", "counters", "gauges", "hists"}
GAUGE_KEYS = {"value", "high", "low"}
HIST_KEYS = {"dcount", "p50", "p90", "p99", "overflow", "max"}

# Tolerance bands for `check`, keyed by BENCH_soak.json scalar name.
#   exact — fresh must equal the given value (allocation-growth gate)
#   min   — fresh must be >= the given value
#   ratio — fresh/baseline must lie in [1/band, band]
# Scale-free scalars (per-key rates, the contention-free lossless p99,
# gate outcomes) are held to tight bands at any scale — both lanes are
# bit-deterministic, so there is no run-to-run noise to absorb, only real
# drift. Scale-bound scalars (overall p99 is queue-depth-dominated and
# queue depth grows with sessions-per-round; keys/s carries the
# establishment-tail amortization) additionally carry a "cross" band used
# when the fresh and baseline runs are at different scales (their `quick`
# flags differ — the CI shape: quick fresh vs committed full baseline).
# The cross band brackets the measured quick/full ratio (0.78 for keys/s,
# 0.15 for the 25%-drop p99); landing outside it means one of the lanes
# moved — including an improvement big enough that the committed baseline
# is stale and should be regenerated (see docs/OPERATIONS.md section 9).
TOLERANCES = {
    "steady_allocs_per_key": ("ratio", 1.2, None),
    "steady_p99_ttk_lossless_ms": ("ratio", 1.25, None),
    "steady_live_growth_blocks": ("exact", 0.0, None),
    "established_rate": ("min", 0.999, None),
    "steady_keys_per_vsecond": ("ratio", 1.3, (0.65, 0.95)),
    "steady_p99_ttk_ms": ("ratio", 1.5, (0.10, 0.25)),
}


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def validate_lines(lines, origin="<memory>"):
    """Validate one JSONL document given as a list of text lines.

    Returns a list of finding strings (empty = valid).
    """
    findings = []

    def bad(lineno, msg):
        findings.append(f"{origin}:{lineno}: {msg}")

    rows = []
    for i, raw in enumerate(lines, start=1):
        if not raw.strip():
            bad(i, "blank line (JSONL documents have no blank lines)")
            continue
        try:
            rows.append((i, json.loads(raw)))
        except json.JSONDecodeError as e:
            bad(i, f"not valid JSON: {e}")
    if findings:
        return findings
    if len(rows) < 2:
        bad(len(rows), "document needs at least a header and a summary line")
        return findings

    # -- header ------------------------------------------------------------
    lineno, header = rows[0]
    if not isinstance(header, dict) or header.get("schema") != SCHEMA:
        bad(lineno, f'header must carry "schema": "{SCHEMA}"')
        return findings
    if not isinstance(header.get("source"), str):
        bad(lineno, 'header "source" must be a string')
    flt = header.get("filter")
    if not isinstance(flt, list) or not all(isinstance(p, str) for p in flt):
        bad(lineno, 'header "filter" must be a list of prefix strings')
    cap = header.get("ring_capacity")
    if not is_number(cap) or cap < 1:
        bad(lineno, 'header "ring_capacity" must be a positive number')
    if not isinstance(header.get("annotations"), dict):
        bad(lineno, 'header "annotations" must be an object')

    # -- summary -----------------------------------------------------------
    lineno, tail = rows[-1]
    summary = tail.get("summary") if isinstance(tail, dict) else None
    if not isinstance(summary, dict):
        bad(lineno, 'last line must be the {"summary": {...}} line')
        return findings
    for key in ("samples", "retained", "dropped", "last_t_ms"):
        if not is_number(summary.get(key)):
            bad(lineno, f'summary "{key}" must be a number')
    samples = rows[1:-1]
    if is_number(summary.get("retained")) and summary["retained"] != len(samples):
        bad(lineno, f'summary "retained" is {summary["retained"]} '
                    f"but {len(samples)} sample lines are present")
    if (is_number(summary.get("samples")) and is_number(summary.get("dropped"))
            and summary["samples"] != summary["dropped"] + len(samples)):
        bad(lineno, 'summary "samples" != "dropped" + retained lines')

    # -- samples -----------------------------------------------------------
    prev_seq = None
    prev_t = None
    for lineno, s in samples:
        if not isinstance(s, dict) or set(s) != SAMPLE_KEYS:
            bad(lineno, f"sample keys must be exactly {sorted(SAMPLE_KEYS)}")
            continue
        if not is_number(s["seq"]) or not is_number(s["t_ms"]):
            bad(lineno, '"seq" and "t_ms" must be numbers')
            continue
        if prev_seq is not None and s["seq"] != prev_seq + 1:
            bad(lineno, f'seq {s["seq"]} does not follow {prev_seq} '
                        "(retained samples must be consecutive)")
        if prev_t is not None and s["t_ms"] < prev_t:
            bad(lineno, f't_ms {s["t_ms"]} went backwards from {prev_t}')
        prev_seq, prev_t = s["seq"], s["t_ms"]

        counters = s["counters"]
        if not isinstance(counters, dict):
            bad(lineno, '"counters" must be an object')
        else:
            for name, v in counters.items():
                if not is_number(v):
                    bad(lineno, f'counter "{name}" delta must be a number')
        gauges = s["gauges"]
        if not isinstance(gauges, dict):
            bad(lineno, '"gauges" must be an object')
        else:
            for name, g in gauges.items():
                if (not isinstance(g, dict) or set(g) != GAUGE_KEYS
                        or not all(is_number(g[k]) for k in GAUGE_KEYS)):
                    bad(lineno, f'gauge "{name}" must be a numeric '
                                "{value, high, low} triple")
        hists = s["hists"]
        if not isinstance(hists, dict):
            bad(lineno, '"hists" must be an object')
        else:
            for name, h in hists.items():
                if (not isinstance(h, dict) or set(h) != HIST_KEYS
                        or not all(is_number(h[k]) for k in HIST_KEYS)):
                    bad(lineno, f'histogram "{name}" must carry exactly '
                                "{dcount, p50, p90, p99, overflow, max}")
                    continue
                if h["dcount"] < 1:
                    bad(lineno, f'histogram "{name}" emitted with dcount < 1 '
                                "(unchanged instruments must be omitted)")
                if h["overflow"] < 0:
                    bad(lineno, f'histogram "{name}" overflow is negative')

    if samples and not findings:
        last_t = samples[-1][1]["t_ms"]
        if is_number(summary.get("last_t_ms")) and summary["last_t_ms"] != last_t:
            bad(rows[-1][0], f'summary "last_t_ms" is {summary["last_t_ms"]} '
                             f"but the last sample is at {last_t}")
    return findings


def check_scalars(fresh_doc, baseline_doc):
    """Compare soak snapshot scalars against the baseline tolerance bands.

    Returns a list of finding strings (empty = within bands).
    """
    findings = []
    fresh = fresh_doc.get("scalars", {})
    base = baseline_doc.get("scalars", {})
    cross_scale = bool(fresh_doc.get("quick")) != bool(baseline_doc.get("quick"))
    gates = fresh_doc.get("notes", {}).get("gates_passed")
    if gates != "yes":
        findings.append(f'fresh run notes.gates_passed is {gates!r}, not "yes"')
    for key, (kind, band, cross) in TOLERANCES.items():
        if not is_number(fresh.get(key)):
            findings.append(f'fresh snapshot is missing scalar "{key}"')
            continue
        f = fresh[key]
        if kind == "exact":
            if f != band:
                findings.append(f"{key}: {f} (must be exactly {band})")
        elif kind == "min":
            if f < band:
                findings.append(f"{key}: {f} below the floor {band}")
        else:  # ratio vs baseline
            if not is_number(base.get(key)):
                findings.append(f'baseline is missing scalar "{key}"')
                continue
            b = base[key]
            if b <= 0:
                findings.append(f'baseline "{key}" is {b}, cannot form a ratio')
                continue
            lo, hi = (cross if cross_scale and cross is not None
                      else (1.0 / band, band))
            ratio = f / b
            if not (lo <= ratio <= hi):
                scale = "cross-scale " if cross_scale and cross else ""
                findings.append(
                    f"{key}: {f:.4g} vs baseline {b:.4g} "
                    f"(ratio {ratio:.3f} outside {scale}[{lo:.3f}, {hi:.3g}])")
    return findings


# --------------------------------------------------------------------------
# self-test: known-good must pass, each seeded corruption must fail.

GOOD_JSONL = [
    json.dumps({"schema": SCHEMA, "source": "self-test",
                "filter": ["gateway."], "ring_capacity": 8,
                "annotations": {"seed": "1"}}),
    json.dumps({"seq": 3, "t_ms": 1000, "counters": {"gateway.admitted": 4},
                "gauges": {"gateway.queued_sessions":
                           {"value": 2, "high": 5, "low": 0}},
                "hists": {"gateway.ttk_ms": {"dcount": 4, "p50": 10.0,
                                             "p90": 20.0, "p99": 30.0,
                                             "overflow": 0, "max": 25.0}}}),
    json.dumps({"seq": 4, "t_ms": 2000, "counters": {}, "gauges": {},
                "hists": {}}),
    json.dumps({"summary": {"samples": 5, "retained": 2, "dropped": 3,
                            "last_t_ms": 2000}}),
]


def _corrupt(mutate):
    doc = [json.loads(line) for line in GOOD_JSONL]
    mutate(doc)
    return [json.dumps(line) for line in doc]


def _set(doc, line, key, value):
    doc[line][key] = value


CORRUPTIONS = {
    "schema tag": lambda d: _set(d, 0, "schema", "vkey-telemetry/0"),
    "seq gap": lambda d: _set(d, 2, "seq", 9),
    "time reversal": lambda d: _set(d, 2, "t_ms", 500),
    "extra sample key": lambda d: _set(d, 2, "threads", 4),
    "gauge shape": lambda d: _set(d, 1, "gauges",
                                  {"gateway.queued_sessions": {"value": 2}}),
    "hist shape": lambda d: d[1]["hists"]["gateway.ttk_ms"].pop("overflow"),
    "string counter": lambda d: _set(d, 1, "counters",
                                     {"gateway.admitted": "4"}),
    "retained mismatch": lambda d: _set(d, 3, "summary",
                                        {"samples": 5, "retained": 7,
                                         "dropped": 3, "last_t_ms": 2000}),
    "last_t_ms mismatch": lambda d: _set(d, 3, "summary",
                                         {"samples": 5, "retained": 2,
                                          "dropped": 3, "last_t_ms": 1}),
}

GOOD_SCALARS = {
    "steady_keys_per_vsecond": 50.0,
    "steady_p99_ttk_ms": 2000.0,
    "steady_p99_ttk_lossless_ms": 1000.0,
    "steady_allocs_per_key": 400.0,
    "steady_live_growth_blocks": 0.0,
    "established_rate": 1.0,
}


def _soak_doc(quick=False, **overrides):
    scalars = dict(GOOD_SCALARS)
    scalars.update(overrides)
    return {"quick": quick, "scalars": scalars,
            "notes": {"gates_passed": "yes"}}


CHECK_FAILURES = {
    "throughput collapse": _soak_doc(steady_keys_per_vsecond=20.0),
    "latency blowup": _soak_doc(steady_p99_ttk_ms=9000.0),
    "lossless latency creep": _soak_doc(steady_p99_ttk_lossless_ms=1300.0),
    "alloc regression": _soak_doc(steady_allocs_per_key=500.0),
    "steady-state leak": _soak_doc(steady_live_growth_blocks=3.0),
    "failed establishments": _soak_doc(established_rate=0.95),
    # cross-scale lane (quick fresh vs full baseline): the pinned band
    # brackets the measured quick/full ratio, so a quick run whose
    # scale-bound scalars match the FULL baseline 1:1 is itself suspect.
    "cross-scale throughput collapse":
        _soak_doc(quick=True, steady_keys_per_vsecond=30.0,
                  steady_p99_ttk_ms=300.0),
    "cross-scale queueing blowup":
        _soak_doc(quick=True, steady_keys_per_vsecond=39.0,
                  steady_p99_ttk_ms=600.0),
}


def self_test():
    failures = []
    if validate_lines(GOOD_JSONL):
        failures.append("known-good JSONL did not validate")
    for name, mutate in CORRUPTIONS.items():
        if not validate_lines(_corrupt(mutate)):
            failures.append(f"corruption not caught: {name}")
    baseline = _soak_doc()
    if check_scalars(_soak_doc(steady_keys_per_vsecond=55.0), baseline):
        failures.append("in-band fresh run did not pass check")
    quick_ok = _soak_doc(quick=True, steady_keys_per_vsecond=39.0,
                         steady_p99_ttk_ms=300.0)
    if check_scalars(quick_ok, baseline):
        failures.append("in-band cross-scale quick run did not pass check")
    for name, fresh in CHECK_FAILURES.items():
        if not check_scalars(fresh, baseline):
            failures.append(f"regression not caught: {name}")
    gates_no = _soak_doc()
    gates_no["notes"]["gates_passed"] = "NO"
    if not check_scalars(gates_no, baseline):
        failures.append("gates_passed=NO not caught")
    for f in failures:
        print(f"self-test FAIL: {f}")
    if not failures:
        print(f"self-test OK ({len(CORRUPTIONS)} corruptions, "
              f"{len(CHECK_FAILURES) + 1} regressions caught)")
    return 0 if not failures else 1


# --------------------------------------------------------------------------


def load_json(path):
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"{path}: cannot load: {e}", file=sys.stderr)
        sys.exit(2)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--self-test", action="store_true",
                        help="replay the built-in good/bad corpus and exit")
    sub = parser.add_subparsers(dest="cmd")
    v = sub.add_parser("validate", help="validate telemetry JSONL documents")
    v.add_argument("files", nargs="+")
    c = sub.add_parser("check",
                       help="gate a fresh BENCH_soak.json against a baseline")
    c.add_argument("fresh")
    c.add_argument("--baseline", required=True)
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.cmd == "validate":
        total = 0
        for path in args.files:
            try:
                lines = Path(path).read_text().splitlines()
            except OSError as e:
                print(f"{path}: cannot read: {e}", file=sys.stderr)
                return 2
            findings = validate_lines(lines, origin=path)
            for f in findings:
                print(f)
            total += len(findings)
            if not findings:
                n = max(0, len([ln for ln in lines if ln.strip()]) - 2)
                print(f"{path}: OK ({n} samples)")
        return 0 if total == 0 else 1
    if args.cmd == "check":
        findings = check_scalars(load_json(args.fresh),
                                 load_json(args.baseline))
        for f in findings:
            print(f"check: {f}")
        if not findings:
            print(f"check: {args.fresh} within tolerance of {args.baseline}")
        return 0 if not findings else 1
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
