// Known-bad fixture: key material in flight-recorder events and metrics.
// Not compiled — consumed by `vkey_secretflow.py --self-test` only.
#include <cstdint>
#include <string>

namespace fixture {

void leak_recorder(FlightRecorder* recorder) {
  const auto mac_key = derive_subkey(prk, "mac", 32);
  recorder->record(kTx, "alice", to_hex(mac_key));  // expect: secret-to-flight-recorder
  recorder->record(kTx, "alice", "mac verified");  // outcome only: silent
}

void leak_metrics(metrics::Histogram& hist) {
  const auto epoch_key = ratchet_secret(prev, 1);
  hist.observe(static_cast<double>(epoch_key.expose()[0]));  // expect: secret-to-metrics
  hist.observe(42.0);  // plain latency sample: silent
}

void leak_snapshot(const std::string& path) {
  const auto okm = hkdf_expand(prk, info, 32);
  bench_io::write_lines(path, okm);  // expect: secret-to-snapshot
}

}  // namespace fixture
