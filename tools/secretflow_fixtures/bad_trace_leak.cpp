// Known-bad fixture: key material attached to trace spans and instants.
// Not compiled — consumed by `vkey_secretflow.py --self-test` only. Each
// `// expect:` annotation names the rule the analyzer must fire on that
// exact line; the self-test fails on misses AND on extra findings.
#include <cstdint>
#include <span>

namespace fixture {

void leak_span_attr(trace::ScopedTimer& t, const SecretBuffer& session_key) {
  const auto okm = hkdf(salt, ikm, info, 32);
  t.attr("okm0", okm.expose()[0]);  // expect: secret-to-trace
  auto head = session_key.expose()[0];
  t.attr("head", head);  // expect: secret-to-trace
  t.attr("okm_len", 32);  // length literal only: must stay silent
}

void leak_instant(trace::TraceLog& log, double t_ms) {
  const auto confirm_key = derive_subkey(prk, "confirm", 16);
  log.instant("confirm", t_ms, confirm_key);  // expect: secret-to-trace
}

}  // namespace fixture
