// Known-bad fixture: key material serialized to JSON, streams, and hex.
// Not compiled — consumed by `vkey_secretflow.py --self-test` only.
#include <cstdint>
#include <iostream>

namespace fixture {

void leak_json(json::Value& snapshot) {
  const auto okm = hkdf(salt, ikm, info, 32);
  snapshot["key"] = json::Value(to_hex(okm));  // expect: secret-to-json
  snapshot["len"] = json::Value(32);  // length only: silent
}

void leak_stream() {
  const auto prk = hkdf_extract(salt, ikm);
  std::cout << prk.expose()[0] << "\n";  // expect: secret-to-stream
  auto copied = prk;
  std::cerr << copied.expose().size();  // expect: secret-to-stream
}

void leak_hex() {
  const auto raw_key = amplify(bits, 7);
  const auto hex = to_hex(raw_key);  // expect: secret-to-hex
  (void)hex;
}

void taint_dies_with_scope() {
  {
    auto buf = hkdf_extract(salt, ikm);
    (void)buf;
  }
  int buf = 3;
  std::cout << buf;  // clean: the tainted `buf` left scope above
}

}  // namespace fixture
