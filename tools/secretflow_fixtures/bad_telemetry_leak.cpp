// Known-bad fixture: key material annotated onto the telemetry sampler.
// Annotations land verbatim in the JSONL header line of every
// --telemetry-out export, so they are as public as a committed snapshot.
// Not compiled — consumed by `vkey_secretflow.py --self-test` only.
#include <string>

namespace fixture {

void leak_annotation(telemetry::Sampler& sampler) {
  const auto session_key = hkdf_expand(prk, info, 32);
  sampler.annotate("session_key", to_hex(session_key));  // expect: secret-to-telemetry
  sampler.annotate("seed", "12345");  // run parameter: silent
  sampler.annotate("sessions", "20000");  // run parameter: silent
}

void leak_via_pointer(telemetry::Sampler* sampler) {
  const auto okm = derive_subkey(prk, "telemetry", 16);
  sampler->annotate("okm", std::string(okm.expose(), 16));  // expect: secret-to-telemetry
}

}  // namespace fixture
