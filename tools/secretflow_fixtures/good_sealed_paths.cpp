// Known-good fixture: idiomatic secret handling that must produce ZERO
// findings. Guards the analyzer against false positives as much as the
// bad fixtures guard it against false negatives.
// Not compiled — consumed by `vkey_secretflow.py --self-test` only.
#include <cstdint>
#include <iostream>
#include <vector>

namespace fixture {

// Keyed primitives are sanctioned consumers: secrets flowing INTO
// HMAC/HKDF/AES is the point of having them.
Tag sanctioned_consumers(const SecretBuffer& mac_key,
                         std::span<const std::uint8_t> message) {
  return hmac_sha256(mac_key, message);
}

// Sealing is the sanctioned way for derived material to reach a frame.
Message sanctioned_seal(const SecureLink& link,
                        const std::vector<std::uint8_t>& payload) {
  return link.seal(1, 1, payload);
}

// Lengths, counts, and outcomes are public: attaching them to spans,
// recorder events, and metrics is encouraged.
void public_observability(trace::ScopedTimer& t, FlightRecorder* rec,
                          metrics::Histogram& hist, double elapsed_ms) {
  t.attr("payload_len", 16);
  t.attr("epoch", 3);
  rec->record(kRx, "bob", "confirm ok");
  hist.observe(elapsed_ms);
}

// A wiped-then-reused local does not carry taint out of its scope.
void scope_hygiene() {
  {
    auto scratch = hkdf_extract(salt, ikm);
    (void)scratch;
  }
  int scratch = 0;
  std::cout << scratch;
}

}  // namespace fixture
