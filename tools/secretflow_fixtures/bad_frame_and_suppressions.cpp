// Known-bad fixture: unsealed frame payloads and the suppression grammar.
// Not compiled — consumed by `vkey_secretflow.py --self-test` only.
#include <cstdint>
#include <iostream>

namespace fixture {

void leak_frame(wire::FrameWriter& writer) {
  const auto epoch_key = derive_epoch_keys(secret, 7, 0);
  writer.put_bytes(epoch_key.expose());  // expect: secret-to-frame
  writer.put_bytes(ciphertext);  // sealed bytes: silent
}

void suppression_without_reason() {
  const auto okm = hkdf(salt, ikm, info, 32);
  // A bare allow() is fail-closed: the finding still fires AND the
  // suppression itself is flagged.
  std::cout << okm.expose()[0];  // vkey-secret: allow(secret-to-stream) // expect: secret-to-stream, suppression-missing-reason
}

void suppression_with_reason() {
  const auto okm = hkdf(salt, ikm, info, 32);
  // vkey-secret: allow(secret-to-stream) -- fixture: demonstrates a
  // documented declassification; silences the finding below.
  std::cout << okm.expose().size();
}

}  // namespace fixture
