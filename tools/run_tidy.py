#!/usr/bin/env python3
"""run_tidy.py — drive clang-tidy over the exported compile database.

Filters compile_commands.json down to first-party translation units
(src/, tests/, bench/, examples/ — system packages and generated files are
skipped), fans clang-tidy out across cores, and fails if any check fires
(.clang-tidy sets WarningsAsErrors: '*').

Usage:
    cmake -B build -S .          # exports compile_commands.json
    python3 tools/run_tidy.py --build-dir build
or  cmake --build build --target tidy
"""

import argparse
import json
import multiprocessing
import re
import subprocess
import sys
from pathlib import Path

FIRST_PARTY_DIRS = ("src", "tests", "bench", "examples")


def first_party_sources(build_dir, repo_root, path_filter=None):
    db_path = Path(build_dir) / "compile_commands.json"
    if not db_path.is_file():
        sys.exit(f"error: {db_path} not found; configure with "
                 "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first")
    with open(db_path, encoding="utf-8") as fh:
        db = json.load(fh)
    sources = []
    for entry in db:
        src = Path(entry["file"])
        if not src.is_absolute():
            src = Path(entry["directory"]) / src
        try:
            rel = src.resolve().relative_to(repo_root)
        except ValueError:
            continue
        if rel.parts and rel.parts[0] in FIRST_PARTY_DIRS:
            if path_filter and not path_filter.search(rel.as_posix()):
                continue
            sources.append(str(src.resolve()))
    return sorted(set(sources))


def run_one(args):
    clang_tidy, build_dir, src = args
    proc = subprocess.run(
        [clang_tidy, "-p", build_dir, "--quiet", src],
        capture_output=True, text=True)
    return src, proc.returncode, proc.stdout, proc.stderr


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--clang-tidy", default="clang-tidy")
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--jobs", type=int,
                    default=max(1, multiprocessing.cpu_count() - 1))
    ap.add_argument("--filter", default=None, metavar="REGEX",
                    help="only tidy repo-relative paths matching REGEX "
                         "(e.g. 'src/(crypto|protocol)/' for the "
                         "key-lifecycle layers in the secret-flow CI job)")
    args = ap.parse_args(argv)

    repo_root = Path(__file__).resolve().parent.parent
    path_filter = re.compile(args.filter) if args.filter else None
    sources = first_party_sources(args.build_dir, repo_root, path_filter)
    if not sources:
        sys.exit("error: no first-party sources found in compile database")
    print(f"clang-tidy: {len(sources)} translation units, "
          f"{args.jobs} jobs")

    failed = 0
    work = [(args.clang_tidy, args.build_dir, s) for s in sources]
    with multiprocessing.Pool(args.jobs) as pool:
        for src, rc, out, err in pool.imap_unordered(run_one, work):
            if rc != 0:
                failed += 1
                rel = Path(src).relative_to(repo_root)
                print(f"--- {rel}")
                if out.strip():
                    print(out.strip())
                if err.strip():
                    print(err.strip(), file=sys.stderr)
    if failed:
        print(f"clang-tidy: {failed}/{len(sources)} translation units "
              "have findings", file=sys.stderr)
        return 1
    print("clang-tidy: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
