#!/usr/bin/env python3
"""vkey_secretflow.py — secret-flow taint analyzer for the Vehicle-Key tree.

Tracks key material from its birthplaces (the privacy-amplified secret, HKDF
extract/expand outputs, KeySchedule epoch keys, HMAC keys, AES round keys)
through assignments and calls, and reports any flow into an observable sink:
trace spans, flight-recorder events, metrics, JSON snapshots, bench-io
artifacts, streams/printf, hex encoders, or unsealed wire frames. The runtime
counterpart is `crypto::SecretBuffer` (src/crypto/secret_buffer.h): bytes live
inside a zeroizing container whose only escape hatch is `expose()`, and the
analyzer treats everything downstream of `expose()` as still secret — sealing
(`SecureLink::seal`) and keyed primitives (HMAC/HKDF/AES) are the sanctioned
consumers, observability is not.

Backends
--------
The analyzer probes for libclang (`clang.cindex`) at import time so an AST
backend can slot in where the wheel exists; this container does not ship it,
so the zero-dependency tokenizer backend (same family as vkey_lint.py) is the
primary and default implementation. `--backend clang` errors out loudly when
the probe failed rather than silently degrading.

Taint model (tokenizer backend)
-------------------------------
sources
    * calls: hkdf / hkdf_extract / hkdf_expand / derive_subkey /
      ratchet_secret / derive_epoch_keys / amplify / aes_key / expose /
      expose_mut
    * declarations of `SecretBuffer` variables
    * identifiers whose name marks them as key material (secret, prk, okm,
      ikm, ipad, opad, keystream, round_keys, *_key / key_bytes families)
propagation
    assignment and declaration-with-initializer: if the right-hand side
    mentions a tainted identifier or a source call, the left-hand side is
    tainted. Taint is scoped by brace depth (function-local).
sinks (rule ids)
    secret-to-trace             ScopedTimer::attr, TraceLog::instant/record
    secret-to-flight-recorder   FlightRecorder::record
    secret-to-metrics           Histogram::observe / Gauge::set
    secret-to-telemetry         telemetry Sampler::annotate header side-channel
    secret-to-json              to_json(), json::Value construction, dump()
    secret-to-snapshot          bench_io:: writers
    secret-to-stream            cout/cerr/clog, printf family, std::format
    secret-to-hex               to_hex() on key material
    secret-to-frame             FrameWriter::put_bytes on unsealed secrets
    suppression-missing-reason  a vkey-secret suppression without a reason

Suppressions
------------
A deliberate declassification carries an inline comment:

    // vkey-secret: allow(<rule>) -- <why this is not a leak>

The `-- reason` clause is mandatory; a bare `allow(...)` is fail-closed (it
does NOT silence the finding) and additionally reports
`suppression-missing-reason`. Whole-file exemptions live in ALLOWLIST below,
each with a written reason printed by --explain.

Self-test
---------
`--self-test` replays the analyzer over tools/secretflow_fixtures/, a tree of
known-bad snippets annotated with `// expect: <rule>[, <rule>]` lines, and
fails unless the produced findings match the annotations exactly — both
directions: every expected finding fires, no unexpected finding appears.
"""

import argparse
import re
import sys
from pathlib import Path

try:  # pragma: no cover - environment probe
    import clang.cindex  # noqa: F401

    HAVE_LIBCLANG = True
except Exception:  # ImportError or broken install
    HAVE_LIBCLANG = False

SCAN_DIRS = ("src",)
SOURCE_SUFFIXES = {".cpp", ".h", ".hpp", ".cc"}

RULES = {
    "secret-to-trace": "key material flows into a trace span attribute/event",
    "secret-to-flight-recorder": "key material flows into a flight-recorder "
                                 "event",
    "secret-to-metrics": "key material flows into a metrics instrument",
    "secret-to-telemetry": "key material flows into a telemetry annotation",
    "secret-to-json": "key material flows into a JSON value / dump",
    "secret-to-snapshot": "key material flows into a bench-io artifact",
    "secret-to-stream": "key material flows into a stream/printf/format call",
    "secret-to-hex": "key material is hex-encoded outside tests",
    "secret-to-frame": "key material written into an unsealed wire frame",
    "suppression-missing-reason": "vkey-secret suppression lacks a reason",
}

# path (repo-relative, POSIX) -> {rule: reason}; printed by --explain.
ALLOWLIST = {
    "src/protocol/wire.cpp": {
        "secret-to-frame": (
            "the codec serializes already-sealed Message payloads; "
            "plaintext never reaches encode()"
        ),
    },
}

# Calls whose return value is key material, and the SecretBuffer escape
# hatch. `expose` keeps the taint: leaving the container is not leaving the
# secret domain.
SOURCE_CALL = re.compile(
    r"(?:\b(?:hkdf|hkdf_extract|hkdf_expand|derive_subkey|ratchet_secret|"
    r"derive_epoch_keys|amplify|aes_key)\s*\()"
    r"|(?:\.\s*expose(?:_mut)?\s*\(\s*\))"
)

# A declaration that mints a secret container.
SECRET_DECL = re.compile(
    r"\b(?:crypto\s*::\s*)?SecretBuffer\b[^;(]*?\b(\w+)\s*[,)({=;]")

# Identifiers that are key material by naming convention, tracked-state or
# not. Tight on purpose: `rekeys`, `session_id`, `keys()` must not match.
SECRET_NAME = re.compile(
    r"^(?:secret_?|prk|okm|ikm|ipad|opad|keystream|amplified(?:_\w+)?|"
    r"round_keys?_?|key_bytes|raw_key_?|\w*_secret_?|"
    r"\w*(?:aes|mac|enc|confirm|pairwise|group|epoch)_keys?_?)$"
)

# Assignment / declaration-with-init: capture the variable the value lands
# in. Handles `auto x = ...`, `dir.enc = ...`, `type x = ...`.
ASSIGN = re.compile(r"(?:^|[;{(,])\s*(?:[\w:<>,&*\s]+?\s)?([\w.]+)\s*=(?!=)\s*(.+)")

SINKS = [
    ("secret-to-trace", re.compile(r"\.\s*attr\s*\("),
     "trace span attributes are exported in chrome-trace dumps; attach "
     "lengths or digest *indices*, never key bytes"),
    ("secret-to-trace", re.compile(r"\binstant\s*\("),
     "trace instants are exported in chrome-trace dumps"),
    ("secret-to-flight-recorder", re.compile(r"(?:\.|->)\s*record\s*\("),
     "flight-recorder events travel with AttemptReport and are dumped on "
     "failure; record outcomes, never key bytes"),
    ("secret-to-metrics", re.compile(r"\.\s*observe\s*\("),
     "metrics snapshots are serialized to JSON"),
    # Before the json/hex rules: `annotate("k", to_hex(x))` should name the
    # telemetry sink, not the encoding it rode in on.
    ("secret-to-telemetry", re.compile(r"(?:\.|->)\s*annotate\s*\("),
     "telemetry annotations land in the JSONL header line; annotate run "
     "parameters (seed, lanes, interval), never key bytes"),
    ("secret-to-json", re.compile(r"\bto_json\s*\(|json\s*::\s*Value\s*[({]|"
                                  r"\.\s*dump\s*\("),
     "JSON values end up in snapshots and logs"),
    ("secret-to-snapshot", re.compile(r"\bbench_io\s*::\s*\w+\s*\("),
     "bench-io artifacts are committed byte-for-byte"),
    ("secret-to-stream", re.compile(r"\b(?:cout|cerr|clog)\b|"
                                    r"\b(?:f|s|sn)?printf\s*\(|"
                                    r"std\s*::\s*format\s*\("),
     "streams and printf leave secrets in terminal scrollback and CI logs"),
    ("secret-to-hex", re.compile(r"\bto_hex\s*\("),
     "hex encoding is a serialization; only tests may render key material"),
    ("secret-to-frame", re.compile(r"\.\s*put_bytes\s*\("),
     "frame payloads ride the radio in the clear unless sealed; pass "
     "secrets through SecureLink::seal first"),
]

SUPPRESS = re.compile(
    r"//\s*vkey-secret:\s*allow\(([\w, -]+)\)(?:\s*--\s*(\S.*\S|\S))?")
EXPECT = re.compile(r"//\s*expect:\s*([\w, -]+)")
IDENT = re.compile(r"[A-Za-z_]\w*")
BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)
STRING_LIT = re.compile(r'"(?:[^"\\\n]|\\.)*"')
CHAR_LIT = re.compile(r"'(?:[^'\\\n]|\\.)*'")

# Words that appear in sink expressions themselves and must not count as
# tainted identifiers (sink names, std plumbing, common locals).
NEUTRAL = {
    "annotate",
    "attr", "instant", "record", "observe", "dump", "to_json", "to_hex",
    "put_bytes", "std", "cout", "cerr", "clog", "printf", "fprintf",
    "snprintf", "sprintf", "format", "json", "Value", "bench_io",
}


class Finding:
    def __init__(self, path, line, rule, detail):
        self.path = path
        self.line = line
        self.rule = rule
        self.detail = detail

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.detail}"


def code_view(line):
    """Line with string/char literals blanked and trailing // removed."""
    line = STRING_LIT.sub('""', line)
    line = CHAR_LIT.sub("''", line)
    idx = line.find("//")
    if idx >= 0:
        line = line[:idx]
    return line


def block_comment_lines(text):
    inside = set()
    for m in BLOCK_COMMENT.finditer(text):
        start = text.count("\n", 0, m.start()) + 1
        end = text.count("\n", 0, m.end()) + 1
        inside.update(range(start, end + 1))
    return inside


def is_secret_name(name):
    return bool(SECRET_NAME.match(name))


def scan_text(text, rel):
    """Tokenizer taint pass over one translation unit. Returns Findings."""
    lines = text.split("\n")
    blocked = block_comment_lines(text)
    findings = []
    # tainted identifier -> (brace depth at introduction, origin)
    taint = {}
    depth = 0

    def tainted_idents(code):
        hits = []
        for ident in IDENT.findall(code):
            if ident in NEUTRAL:
                continue
            if ident in taint:
                hits.append((ident, taint[ident][1]))
            elif is_secret_name(ident):
                hits.append((ident, "secret-named identifier"))
        return hits

    def suppressed(raw, rule, lineno):
        # Accept a suppression on the flagged line itself or in the block
        # of pure-comment lines immediately above it (long declarations
        # cannot always fit a trailing comment).
        candidates = [raw]
        j = lineno - 2  # 0-based index of the preceding line
        while j >= 0 and lines[j].strip().startswith("//"):
            candidates.append(lines[j])
            j -= 1
        for cand in candidates:
            m = SUPPRESS.search(cand)
            if not m:
                continue
            rules = {r.strip() for r in m.group(1).split(",")}
            if rule not in rules:
                continue
            if not m.group(2):
                # Fail closed: a reason-less suppression silences nothing
                # and is itself a finding (reported at its own line).
                continue
            return True
        return False

    def check(rule, lineno, raw, detail):
        if rule in ALLOWLIST.get(rel, {}):
            return
        if suppressed(raw, rule, lineno):
            return
        findings.append(Finding(rel, lineno, rule, detail))

    reported_missing_reason = set()
    for i, raw in enumerate(lines, start=1):
        if i in blocked:
            continue
        code = code_view(raw)

        m = SUPPRESS.search(raw)
        if m and not m.group(2) and i not in reported_missing_reason:
            reported_missing_reason.add(i)
            check("suppression-missing-reason", i, "",
                  f"allow({m.group(1).strip()}) without `-- reason`; "
                  "declassifications must say why (fail-closed: the "
                  "finding is NOT silenced)")

        if not code.strip():
            depth += code.count("{") - code.count("}")
            continue

        # -- taint introduction & propagation ----------------------------
        dm = SECRET_DECL.search(code)
        if dm:
            taint[dm.group(1)] = (depth, "SecretBuffer declaration")
        am = ASSIGN.search(code)
        if am:
            lhs = am.group(1).split(".")[-1]
            rhs = am.group(2).split(";")[0]  # stop at for-loop headers
            if SOURCE_CALL.search(rhs):
                taint[lhs] = (depth, "key-derivation call")
            elif any(ident in taint or is_secret_name(ident)
                     for ident in IDENT.findall(rhs)
                     if ident not in NEUTRAL):
                taint[lhs] = (depth, "assigned from tainted value")
            elif lhs in taint and not is_secret_name(lhs):
                # Clean reassignment: the old secret value is gone.
                del taint[lhs]

        # -- sinks -------------------------------------------------------
        for rule, pat, why in SINKS:
            if not pat.search(code):
                continue
            hits = tainted_idents(code)
            direct = SOURCE_CALL.search(code)
            if not hits and not direct:
                continue
            if hits:
                ident, origin = hits[0]
                detail = f"`{ident}` ({origin}) reaches sink: {why}"
            else:
                detail = f"key-derivation result reaches sink inline: {why}"
            check(rule, i, raw, detail)
            break  # one finding per line is enough signal

        # -- scope maintenance -------------------------------------------
        depth += code.count("{") - code.count("}")
        if depth < 0:
            depth = 0
        dead = [v for v, (d, _) in taint.items() if d > depth]
        for v in dead:
            del taint[v]

    return findings


def scan_file(path, root):
    try:
        rel = path.resolve().relative_to(root).as_posix()
    except ValueError:
        rel = path.as_posix()
    text = path.read_text(encoding="utf-8", errors="replace")
    return scan_text(text, rel)


def collect_files(root, paths):
    if paths:
        return [Path(p) for p in paths]
    files = []
    for d in SCAN_DIRS:
        base = root / d
        if base.is_dir():
            files.extend(p for p in sorted(base.rglob("*"))
                         if p.suffix in SOURCE_SUFFIXES)
    return files


def run_self_test(fixtures_dir):
    """Replay the analyzer over the known-bad fixture tree.

    Each fixture line may carry `// expect: rule[, rule]`. The test passes
    only if produced findings == expected findings, per (file, line, rule).
    """
    fixtures = sorted(fixtures_dir.rglob("*.cpp"))
    if not fixtures:
        print(f"vkey_secretflow: self-test found no fixtures under "
              f"{fixtures_dir}", file=sys.stderr)
        return 1
    failures = 0
    total_expected = 0
    for f in fixtures:
        rel = f.name
        text = f.read_text(encoding="utf-8")
        expected = set()
        for i, raw in enumerate(text.split("\n"), start=1):
            m = EXPECT.search(raw)
            if m:
                for rule in m.group(1).split(","):
                    expected.add((rel, i, rule.strip()))
        got = {(rel, fi.line, fi.rule) for fi in scan_text(text, rel)}
        total_expected += len(expected)
        for miss in sorted(expected - got):
            failures += 1
            print(f"self-test MISS: expected {miss[0]}:{miss[1]} "
                  f"[{miss[2]}] but the analyzer stayed silent")
        for extra in sorted(got - expected):
            failures += 1
            print(f"self-test EXTRA: unexpected {extra[0]}:{extra[1]} "
                  f"[{extra[2]}]")
    if failures:
        print(f"vkey_secretflow: self-test FAILED "
              f"({failures} mismatch(es) across {len(fixtures)} fixtures)",
              file=sys.stderr)
        return 1
    print(f"vkey_secretflow: self-test ok "
          f"({total_expected} findings across {len(fixtures)} fixtures)")
    return 0


def main(argv=None):
    ap = argparse.ArgumentParser(
        description=__doc__.split("\n", 1)[0])
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--backend", choices=("auto", "tokenizer", "clang"),
                    default="auto",
                    help="analysis backend (clang requires libclang)")
    ap.add_argument("--explain", action="store_true",
                    help="print allowlist reasons for scanned files")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the analyzer against the known-bad "
                         "fixture tree and exit")
    ap.add_argument("--fixtures", default="tools/secretflow_fixtures",
                    help="fixture tree for --self-test")
    ap.add_argument("paths", nargs="*",
                    help="specific files to scan (default: src/)")
    args = ap.parse_args(argv)

    root = Path(args.root).resolve()

    if args.backend == "clang" and not HAVE_LIBCLANG:
        print("vkey_secretflow: --backend clang requested but clang.cindex "
              "is not importable in this environment; install libclang or "
              "use --backend tokenizer", file=sys.stderr)
        return 2
    # The AST backend is a reserved slot: even where the probe succeeds the
    # tokenizer remains the reference implementation until the clang walk
    # lands, so auto always resolves to tokenizer today.
    if args.backend == "clang":
        print("vkey_secretflow: note: clang backend not yet implemented; "
              "falling back to tokenizer", file=sys.stderr)

    if args.self_test:
        return run_self_test((root / args.fixtures).resolve()
                             if not Path(args.fixtures).is_absolute()
                             else Path(args.fixtures))

    files = collect_files(root, args.paths)
    findings = []
    for f in files:
        findings.extend(scan_file(f, root))
        if args.explain:
            try:
                rel = f.resolve().relative_to(root).as_posix()
            except ValueError:
                rel = f.as_posix()
            for rule, reason in ALLOWLIST.get(rel, {}).items():
                print(f"note: {rel} exempt from [{rule}]: {reason}")

    for fi in findings:
        print(fi)
    if findings:
        print(f"vkey_secretflow: {len(findings)} finding(s) in "
              f"{len({fi.path for fi in findings})} file(s)",
              file=sys.stderr)
        return 1
    print(f"vkey_secretflow: clean ({len(files)} files scanned, "
          f"backend=tokenizer, libclang={'yes' if HAVE_LIBCLANG else 'no'})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
