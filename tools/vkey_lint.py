#!/usr/bin/env python3
"""vkey_lint.py — repo-invariant linter for the Vehicle-Key tree.

Enforces determinism and hygiene rules that clang-tidy cannot express.
Zero dependencies; run it directly or via `cmake --build build --target lint`.

Rules
-----
wall-clock
    No wall-clock reads (`std::chrono::*_clock::now`, `time()`, `clock()`,
    `gettimeofday`, ...) in library (`src/`) or test (`tests/`) code.
    Protocol/nn/core code must take time from the PR-1 `SimClock` (or the
    pluggable `trace::NowFn`) so sessions are bit-reproducible; the single
    sanctioned wall-clock entry point is `trace::wall_now_ms()` in
    `src/common/trace.cpp`. Benches and examples measure real elapsed time
    and are exempt.

unseeded-random
    No `rand()`, `srand()`, `std::random_device`, `std::mt19937`, or
    `<random>` anywhere in `src/` or `tests/`. All randomness must flow
    through the explicitly seeded generator in `common/rng.h`, otherwise
    the paper's KAR/Eve numbers stop being reproducible.

iostream-in-lib
    No `<iostream>` in library targets (`src/`): global stream objects add
    static-init order hazards and the library reports through the metrics /
    table / json layers, never by printing. Benches, examples and tests are
    driver code and may print.

raw-thread
    No `std::thread` / `std::jthread` construction in library (`src/`) code
    outside `common/parallel`. Ad-hoc threads bypass the determinism
    contract (per-index purity, ordered reduction — DESIGN.md "Parallel
    execution & determinism contract") and the pool's queue-depth/task
    accounting; fan work out through `parallel::parallel_for` instead.
    Qualified statics like `std::thread::hardware_concurrency()` are fine.
    Tests, benches, examples and tools drive the library from outside and
    may spawn threads.

bounded-reader
    No raw byte parsing in the protocol layer (`src/protocol/`): no
    `reinterpret_cast` and no `.data() + offset` pointer arithmetic. Wire
    bytes are parsed exclusively through the bounds-checked
    `wire::FrameReader` / built through `wire::FrameWriter`; hand-rolled
    pointer walks are how length-field bugs become buffer overruns. The
    codec itself (`src/protocol/wire.*`) is the single sanctioned owner of
    raw byte access.

sim-clock-owner
    No private `SimClock` construction in the protocol layer
    (`src/protocol/`) outside the gateway scheduler. The gateway engine is
    the clock authority: it owns THE shared lifecycle timeline and
    constructs the per-session sub-clocks it hands to
    `run_reliable_key_agreement_on` (DESIGN.md "Gateway engine"). A layer
    that quietly news up its own clock forks the timeline — its events can
    never interleave with the rest of the gateway, which is exactly the
    multi-session bug the shared queue exists to prevent. The
    single-session convenience wrapper in `reliability.cpp` carries an
    inline `// vkey-lint: allow(sim-clock-owner)` suppression. Tests,
    benches and examples construct clocks freely.

no-raw-memcmp-on-secrets
    No `memcmp` in the key-lifecycle layers (`src/crypto/`, `src/protocol/`).
    memcmp short-circuits on the first differing byte, so comparing MACs or
    keys with it leaks a timing oracle (the classic remote-timing HMAC
    bypass). All comparisons in those layers go through
    `crypto::constant_time_equal` (src/crypto/secret_buffer.h), whose
    OR-accumulator touches every byte regardless of where the mismatch is.
    `secret_buffer.cpp` is the single sanctioned comparison owner. Code
    outside the secret layers (e.g. file-magic checks in nn/serialize) and
    tests comparing public vectors are unaffected.

pragma-once
    Every header's first preprocessor directive must be `#pragma once`.

using-namespace-in-header
    No `using namespace` at any scope in a header: it leaks into every
    includer.

Suppressions
------------
A violating line may carry a trailing `// vkey-lint: allow(<rule>)` comment;
use it only with a justification nearby. Per-file exemptions live in
ALLOWLIST below, each with a reason.
"""

import argparse
import re
import sys
from pathlib import Path

LINT_DIRS = ("src", "tests", "bench", "examples", "tools")
SOURCE_SUFFIXES = {".cpp", ".h", ".hpp", ".cc"}

# path (repo-relative, POSIX) -> {rule: reason}. Reasons are printed with
# --explain so the allowlist stays self-documenting.
ALLOWLIST = {
    "src/common/trace.cpp": {
        "wall-clock": (
            "wall_now_ms() is the single sanctioned wall-clock entry point; "
            "everything else routes through trace::NowFn / SimClock"
        ),
    },
    "src/common/parallel.cpp": {
        "raw-thread": (
            "the deterministic pool is the single sanctioned owner of "
            "worker threads; everything else borrows lanes via parallel_for"
        ),
    },
    "src/protocol/wire.h": {
        "bounded-reader": (
            "the frame codec is the single sanctioned owner of raw wire "
            "bytes; everything else parses through FrameReader"
        ),
    },
    "src/protocol/wire.cpp": {
        "bounded-reader": (
            "the frame codec is the single sanctioned owner of raw wire "
            "bytes; everything else parses through FrameReader"
        ),
    },
    "src/protocol/gateway.h": {
        "sim-clock-owner": (
            "the gateway engine is the clock authority: it owns the shared "
            "lifecycle timeline every session's events interleave on"
        ),
    },
    "src/protocol/gateway.cpp": {
        "sim-clock-owner": (
            "the gateway scheduler constructs the dedicated per-session "
            "sub-clocks it hands to run_reliable_key_agreement_on"
        ),
    },
    "src/crypto/secret_buffer.cpp": {
        "no-raw-memcmp-on-secrets": (
            "the zeroizing container is the single sanctioned comparison "
            "owner; constant_time_equal lives here"
        ),
    },
}

# Directories exempt from a rule wholesale.
RULE_EXEMPT_DIRS = {
    "wall-clock": ("bench", "examples", "tools"),
    "unseeded-random": ("bench", "examples", "tools"),
    "iostream-in-lib": ("bench", "examples", "tests", "tools"),
    "raw-thread": ("bench", "examples", "tests", "tools"),
}

WALL_CLOCK_PATTERNS = [
    re.compile(r"std\s*::\s*chrono\s*::\s*steady_clock"),
    re.compile(r"std\s*::\s*chrono\s*::\s*system_clock"),
    re.compile(r"std\s*::\s*chrono\s*::\s*high_resolution_clock"),
    re.compile(r"(?<![\w:])(?:std\s*::\s*)?time\s*\(\s*(?:nullptr|NULL|0|&)"),
    re.compile(r"(?<![\w:])(?:std\s*::\s*)?clock\s*\(\s*\)"),
    re.compile(r"(?<![\w:])gettimeofday\s*\("),
    re.compile(r"(?<![\w:])clock_gettime\s*\("),
    re.compile(r"(?<![\w:])(?:std\s*::\s*)?(?:localtime|gmtime)\s*\("),
]

RANDOM_PATTERNS = [
    re.compile(r"(?<![\w:])(?:std\s*::\s*)?s?rand\s*\(\s*\)"),
    re.compile(r"(?<![\w:])(?:std\s*::\s*)?srand\s*\("),
    re.compile(r"std\s*::\s*random_device"),
    re.compile(r"std\s*::\s*(?:mt19937|minstd_rand|default_random_engine)"),
    re.compile(r"#\s*include\s*<random>"),
]

# `std::thread` / `std::jthread` as a type, but not qualified statics such
# as `std::thread::hardware_concurrency()`.
RAW_THREAD_PATTERN = re.compile(r"std\s*::\s*j?thread\b(?!\s*::)")

# Raw byte access in protocol code: type-punning casts and pointer
# arithmetic off a buffer's .data(). Scoped to src/protocol/ (see
# BOUNDED_READER_SCOPE); the wire codec is allowlisted.
BOUNDED_READER_PATTERNS = [
    re.compile(r"(?<![\w:])reinterpret_cast\s*<"),
    re.compile(r"\.data\s*\(\s*\)\s*\+"),
]
BOUNDED_READER_SCOPE = "src/protocol/"

# SimClock construction (by value, new, or make_unique/make_shared) in
# protocol code: only the gateway scheduler may mint timelines. References
# and parameters (`SimClock&`) pass an existing clock and are fine.
SIM_CLOCK_OWNER_PATTERNS = [
    re.compile(r"(?<![\w:])SimClock\s+\w+\s*[;{(=]"),
    re.compile(r"(?<![\w:])new\s+SimClock\b"),
    re.compile(r"make_(?:unique|shared)\s*<\s*SimClock\b"),
]
SIM_CLOCK_OWNER_SCOPE = "src/protocol/"

# memcmp in the key-lifecycle layers: short-circuit comparison is a timing
# oracle when the operands are MACs or keys. constant_time_equal
# (src/crypto/secret_buffer.h) is the sanctioned comparator there.
MEMCMP_PATTERN = re.compile(r"(?<![\w:])(?:std\s*::\s*)?memcmp\s*\(")
MEMCMP_SCOPES = ("src/crypto/", "src/protocol/")

IOSTREAM_PATTERN = re.compile(r"#\s*include\s*<iostream>")
USING_NAMESPACE_PATTERN = re.compile(r"(?<![\w:])using\s+namespace\s+[\w:]+")
SUPPRESS_PATTERN = re.compile(r"//\s*vkey-lint:\s*allow\(([\w, -]+)\)")
PREPROC_PATTERN = re.compile(r"^\s*#\s*(\w+)")

BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)
STRING_LIT = re.compile(r'"(?:[^"\\\n]|\\.)*"')


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def top_dir(rel):
    return rel.split("/", 1)[0]


def rule_applies(rule, rel):
    if top_dir(rel) in RULE_EXEMPT_DIRS.get(rule, ()):
        return False
    return rule not in ALLOWLIST.get(rel, {})


def strippable_positions(text):
    """Line numbers (1-based) fully inside block comments."""
    inside = set()
    for m in BLOCK_COMMENT.finditer(text):
        start = text.count("\n", 0, m.start()) + 1
        end = text.count("\n", 0, m.end()) + 1
        for ln in range(start, end + 1):
            inside.add(ln)
    return inside


def code_view(line):
    """The line with string literals and trailing // comment removed."""
    line = STRING_LIT.sub('""', line)
    idx = line.find("//")
    if idx >= 0:
        line = line[:idx]
    return line


def scan_file(path, rel, explain):
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.split("\n")
    block_lines = strippable_positions(text)
    out = []

    def check(rule, lineno, raw, message):
        if not rule_applies(rule, rel):
            return
        m = SUPPRESS_PATTERN.search(raw)
        if m and rule in {r.strip() for r in m.group(1).split(",")}:
            return
        out.append(Violation(rel, lineno, rule, message))

    is_header = path.suffix in {".h", ".hpp"}
    saw_pragma_once = False
    first_directive = None

    for i, raw in enumerate(lines, start=1):
        if i in block_lines:
            continue
        code = code_view(raw)
        if not code.strip():
            continue

        d = PREPROC_PATTERN.match(code)
        if d and first_directive is None:
            first_directive = (i, d.group(1), code.strip())
        if "#pragma once" in code:
            saw_pragma_once = True

        for pat in WALL_CLOCK_PATTERNS:
            if pat.search(code):
                check("wall-clock", i, raw,
                      "wall-clock read in deterministic code; use SimClock / "
                      "trace::NowFn (see DESIGN.md determinism rules)")
                break
        for pat in RANDOM_PATTERNS:
            if pat.search(code):
                check("unseeded-random", i, raw,
                      "randomness outside common/rng.h; seeded Rng only")
                break
        if RAW_THREAD_PATTERN.search(code):
            check("raw-thread", i, raw,
                  "raw std::thread in a library target; fan out through "
                  "parallel::parallel_for (common/parallel) so the "
                  "determinism contract holds")
        if rel.startswith(BOUNDED_READER_SCOPE):
            for pat in BOUNDED_READER_PATTERNS:
                if pat.search(code):
                    check("bounded-reader", i, raw,
                          "raw byte access in protocol code; parse wire "
                          "bytes through wire::FrameReader (bounds-checked) "
                          "instead of casts/pointer arithmetic")
                    break
        if rel.startswith(MEMCMP_SCOPES) and MEMCMP_PATTERN.search(code):
            check("no-raw-memcmp-on-secrets", i, raw,
                  "memcmp in a key-lifecycle layer is a timing oracle; "
                  "compare through crypto::constant_time_equal "
                  "(src/crypto/secret_buffer.h)")
        if rel.startswith(SIM_CLOCK_OWNER_SCOPE):
            for pat in SIM_CLOCK_OWNER_PATTERNS:
                if pat.search(code):
                    check("sim-clock-owner", i, raw,
                          "private SimClock construction in protocol code; "
                          "the gateway engine owns the shared timeline and "
                          "mints per-session sub-clocks — take a SimClock& "
                          "from the caller instead")
                    break
        if IOSTREAM_PATTERN.search(code):
            check("iostream-in-lib", i, raw,
                  "<iostream> in a library target; report via metrics/"
                  "table/json instead")
        if is_header and USING_NAMESPACE_PATTERN.search(code):
            check("using-namespace-in-header", i, raw,
                  "`using namespace` leaks into every includer")

    if is_header:
        if not saw_pragma_once:
            check("pragma-once", 1, "", "header lacks `#pragma once`")
        elif first_directive and first_directive[1] != "pragma":
            check("pragma-once", first_directive[0], "",
                  "`#pragma once` must be the first preprocessor directive "
                  f"(found `{first_directive[2]}` first)")

    if explain and rel in ALLOWLIST:
        for rule, reason in ALLOWLIST[rel].items():
            print(f"note: {rel} exempt from [{rule}]: {reason}")
    return out


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--explain", action="store_true",
                    help="print allowlist reasons for scanned files")
    ap.add_argument("paths", nargs="*",
                    help="specific files to lint (default: whole tree)")
    args = ap.parse_args(argv)

    root = Path(args.root).resolve()
    if args.paths:
        files = [Path(p).resolve() for p in args.paths]
    else:
        files = []
        for d in LINT_DIRS:
            base = root / d
            if base.is_dir():
                files.extend(p for p in sorted(base.rglob("*"))
                             if p.suffix in SOURCE_SUFFIXES)

    violations = []
    for f in files:
        try:
            rel = f.relative_to(root).as_posix()
        except ValueError:
            rel = f.as_posix()
        violations.extend(scan_file(f, rel, args.explain))

    for v in violations:
        print(v)
    if violations:
        print(f"vkey_lint: {len(violations)} violation(s) in "
              f"{len({v.path for v in violations})} file(s)", file=sys.stderr)
        return 1
    print(f"vkey_lint: clean ({len(files)} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
