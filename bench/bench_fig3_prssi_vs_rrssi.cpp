// Fig. 3 — preliminary study: packet RSSI vs register-RSSI-derived arRSSI
// correlation in the four experiments (V2V/V2I x rural/urban).
//
// Paper shape: pRSSI correlation is below ~0.5 in most scenarios (only the
// rural LOS cases are higher), while the coherence-adjacent arRSSI
// correlation is dramatically higher everywhere — the observation that
// motivates Vehicle-Key.
#include <cstdio>
#include <vector>

#include "channel/trace.h"
#include "common/bench_io.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/arrssi.h"

using namespace vkey;
using namespace vkey::channel;

int main(int argc, char** argv) {
  BenchReport report("fig3_prssi_vs_rrssi", argc, argv);
  const std::size_t kRounds = report.scaled(400, 80);
  const core::ArRssiExtractor extractor(0.10);

  Table t({"experiment", "pRSSI corr", "arRSSI corr", "Eve arRSSI corr"});
  int exp_no = 1;
  // Paper order: Exp.1 V2V rural, Exp.2 V2I rural, Exp.3 V2V urban,
  // Exp.4 V2I urban.
  const ScenarioKind order[] = {ScenarioKind::kV2VRural,
                                ScenarioKind::kV2IRural,
                                ScenarioKind::kV2VUrban,
                                ScenarioKind::kV2IUrban};
  for (const auto kind : order) {
    TraceConfig cfg;
    cfg.scenario = make_scenario(kind, 50.0);
    cfg.seed = 31;
    TraceGenerator gen(cfg);
    std::vector<double> pa, pb, aa, ab, ae;
    for (const auto& r : gen.generate(kRounds)) {
      pa.push_back(r.alice_rx.prssi());
      pb.push_back(r.bob_rx.prssi());
      const auto bp = extractor.boundary_pair(r);
      aa.push_back(bp.alice_arrssi);
      ab.push_back(bp.bob_arrssi);
      ae.push_back(extractor.eve_boundary(r));
    }
    t.add_row({"Exp." + std::to_string(exp_no++) + " " + to_string(kind),
               Table::fmt(stats::pearson(pa, pb), 3),
               Table::fmt(stats::pearson(aa, ab), 3),
               Table::fmt(stats::pearson(ab, ae), 3)});
  }
  const std::string caption =
      "Fig. 3: pRSSI vs arRSSI correlation per experiment (50 km/h)";
  t.print(caption);
  report.add_table("fig3_correlation", caption, t);
  report.write();
  return 0;
}
