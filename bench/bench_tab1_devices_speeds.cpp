// Table I — key agreement rate across devices and speeds.
//
// Three radio models (Dragino LoRa Shield, MultiTech xDot, MultiTech mDot)
// x three speeds (30 / 60 / 90 km/h), post-reconciliation KAR of the full
// pipeline. Paper shape: all cells high and close; a slight monotone
// degradation with speed; near-identical behaviour across devices.
#include <functional>
#include <vector>

#include "channel/device.h"
#include "common/bench_io.h"
#include "common/table.h"
#include "core/pipeline.h"

using namespace vkey;
using namespace vkey::channel;
using namespace vkey::core;

namespace {

double kar_for(const BenchReport& report, const DeviceModel& device,
               double speed, std::uint64_t seed) {
  PipelineConfig cfg;
  cfg.trace.scenario = make_scenario(ScenarioKind::kV2VUrban, speed);
  cfg.trace.device_alice = device;
  cfg.trace.device_bob = device;
  cfg.trace.device_eve = device;
  cfg.trace.seed = seed;
  cfg.use_prediction = false;  // isolates channel/device effects
  cfg.reconciler.decoder_units = 64;
  cfg.reconciler_epochs = report.scaled(20, 5);
  cfg.reconciler_samples = report.scaled(2500, 600);
  KeyGenPipeline pipeline(cfg);
  return pipeline.run(report.scaled(150, 40), report.scaled(500, 150))
      .mean_kar_post;
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("tab1_devices_speeds", argc, argv);
  const std::vector<std::pair<const char*, DeviceModel>> devices = {
      {"Dragino LoRa Shield", dragino_lora_shield()},
      {"MultiTech xDot", multitech_xdot()},
      {"MultiTech mDot", multitech_mdot()},
  };
  const double speeds[] = {30.0, 60.0, 90.0};

  Table t({"device", "30 km/h", "60 km/h", "90 km/h", "mean"});
  std::vector<double> col_sum(3, 0.0);
  for (const auto& [name, device] : devices) {
    std::vector<std::string> row{name};
    double sum = 0.0;
    for (int si = 0; si < 3; ++si) {
      const double kar = kar_for(report, device, speeds[si],
                                 100 + static_cast<std::uint64_t>(si));
      row.push_back(Table::pct(kar));
      sum += kar;
      col_sum[static_cast<std::size_t>(si)] += kar;
    }
    row.push_back(Table::pct(sum / 3.0));
    t.add_row(std::move(row));
  }
  t.add_row({"Mean", Table::pct(col_sum[0] / 3.0),
             Table::pct(col_sum[1] / 3.0), Table::pct(col_sum[2] / 3.0),
             Table::pct((col_sum[0] + col_sum[1] + col_sum[2]) / 9.0)});
  const std::string caption =
      "Table I: key agreement rate per device and speed "
      "(post-reconciliation)";
  t.print(caption);
  report.add_table("tab1_kar", caption, t);
  report.write();
  return 0;
}
