// Fig. 2 — preliminary study (Sec. II-B, "Experimental verification").
//
// (a) Pearson correlation between Alice's and Bob's packet RSSI as a
//     function of the LoRa data rate (vehicle speed fixed at 50 km/h).
//     Paper shape: correlation falls as the data rate drops; below
//     ~293 bps it sinks under 0.6, making direct pRSSI keying hopeless.
// (b) Correlation versus vehicle speed at 183 bps. Paper shape: monotone
//     decrease; below 0.6 beyond ~30 km/h.
#include <cstdio>
#include <vector>

#include "channel/trace.h"
#include "common/bench_io.h"
#include "common/stats.h"
#include "common/table.h"

using namespace vkey;
using namespace vkey::channel;

namespace {

double prssi_correlation(const TraceConfig& cfg, std::size_t rounds) {
  TraceGenerator gen(cfg);
  std::vector<double> a, b;
  for (const auto& r : gen.generate(rounds)) {
    a.push_back(r.alice_rx.prssi());
    b.push_back(r.bob_rx.prssi());
  }
  return stats::pearson(a, b);
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("fig2_preliminary", argc, argv);
  const std::size_t kRounds = report.scaled(300, 60);

  {
    Table t({"data rate (bps)", "SF", "BW (kHz)", "CR", "airtime (s)",
             "correlation"});
    for (double rate : {23.0, 46.0, 91.0, 183.0, 293.0, 586.0, 1172.0}) {
      TraceConfig cfg;
      cfg.scenario = make_scenario(ScenarioKind::kV2VUrban, 50.0);
      cfg.phy = LoRaPhy::params_for_bitrate(rate);
      cfg.seed = 21;
      const LoRaPhy phy(cfg.phy);
      t.add_row({Table::fmt(phy.bit_rate(), 0),
                 std::to_string(cfg.phy.spreading_factor),
                 Table::fmt(cfg.phy.bandwidth_hz / 1e3, 1),
                 "4/" + std::to_string(cfg.phy.coding_rate_denom),
                 Table::fmt(phy.airtime(), 2),
                 Table::fmt(prssi_correlation(cfg, kRounds), 3)});
    }
    const std::string caption =
        "Fig. 2(a): pRSSI correlation vs data rate (V2V urban, 50 km/h)";
    t.print(caption);
    report.add_table("fig2a_data_rate", caption, t);
  }

  std::printf("\n");

  {
    Table t({"speed (km/h)", "coherence time (ms)", "correlation"});
    for (double speed : {10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0}) {
      TraceConfig cfg;
      cfg.scenario = make_scenario(ScenarioKind::kV2VUrban, speed);
      cfg.seed = 22;
      TraceGenerator gen(cfg);
      t.add_row({Table::fmt(speed, 0),
                 Table::fmt(gen.coherence_time_s() * 1e3, 1),
                 Table::fmt(prssi_correlation(cfg, kRounds), 3)});
    }
    const std::string caption =
        "Fig. 2(b): pRSSI correlation vs vehicle speed (183 bps)";
    t.print(caption);
    report.add_table("fig2b_speed", caption, t);
  }
  report.write();
  return 0;
}
