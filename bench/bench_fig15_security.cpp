// Fig. 15 — security analysis: eavesdropping and imitating attacks.
//
// (a) Eavesdropping: Eve records y_Bob from the public channel and feeds it
//     to the public decoder with her own channel-derived key material (the
//     paper's attack: one decoder pass). Paper shape: ~42-51% agreement.
// (b) Imitating: Eve follows Alice's route, runs the identical pipeline on
//     her own observations of Bob's transmissions. Paper shape: legitimate
//     ~99% vs Eve ~48-54%.
// Additionally reported: Eve misusing the *iterative* decoder — a strictly
// stronger attack than the paper evaluates — which gains some bits but
// remains far from key recovery and is caught by MAC/key confirmation.
#include <vector>

#include "channel/trace.h"
#include "common/bench_io.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/pipeline.h"
#include "protocol/session.h"

using namespace vkey;
using namespace vkey::channel;
using namespace vkey::core;

namespace {

struct SecurityRow {
  double legit_kar = 0.0;
  double eve_one_shot = 0.0;
  double eve_iterative = 0.0;
};

SecurityRow evaluate(const BenchReport& report, ScenarioKind kind,
                     std::uint64_t seed) {
  PipelineConfig cfg;
  cfg.trace.scenario = make_scenario(kind, 50.0);
  cfg.trace.seed = seed;
  cfg.predictor.hidden = 24;
  cfg.predictor_epochs = report.scaled(20, 5);
  cfg.reconciler.decoder_units = 64;
  cfg.reconciler_epochs = report.scaled(25, 6);
  cfg.reconciler_samples = report.scaled(3000, 600);
  KeyGenPipeline pipeline(cfg);
  const auto m =
      pipeline.run(report.scaled(500, 100), report.scaled(450, 110));
  return {m.mean_kar_post, m.mean_eve_kar, m.mean_eve_kar_iterative};
}

/// Replay-defense diagnostic: the session layer distinguishes a benign ARQ
/// retransmission (bit-identical frame, re-elicits the cached response,
/// surfaced as kDuplicate) from a forged replay (same nonce, different
/// content, rejected as kReplayedNonce). Both leave the state machine
/// untouched, so neither gives an attacker a foothold.
void print_replay_diagnostics(BenchReport& report) {
  using namespace vkey::protocol;
  ReconcilerConfig rcfg;
  rcfg.key_bits = 64;
  rcfg.decoder_units = 16;  // never invoked on this code path
  const AutoencoderReconciler reconciler(rcfg);
  vkey::Rng rng(0x515);
  BitVec k(64);
  for (std::size_t i = 0; i < 64; ++i) k.set(i, rng.bernoulli(0.5));
  SessionConfig scfg;
  BobSession bob(scfg, reconciler, k);

  Message req;
  req.type = MessageType::kKeyGenRequest;
  req.session_id = scfg.session_id;
  req.nonce = 1;
  const auto first = bob.handle(req);
  const auto retransmit = bob.handle(req);
  const RejectReason dup_reason = bob.last_reject();
  Message forged = req;
  forged.payload = {0xde, 0xad};
  const auto replay = bob.handle(forged);
  const RejectReason replay_reason = bob.last_reject();

  Table t({"inbound frame", "response", "classification", "state disturbed"});
  t.add_row({"KeyGenRequest (fresh)", first ? "KeyGenAccept" : "none",
             "accepted", "no"});
  t.add_row({"bit-identical retransmission",
             retransmit ? "cached KeyGenAccept" : "none",
             to_string(dup_reason), "no"});
  t.add_row({"forged frame under seen nonce", replay ? "responded" : "none",
             to_string(replay_reason), "no"});
  const std::string caption = "Replay defense: ARQ duplicates vs forged replays";
  t.print(caption);
  report.add_table("fig15_replay", caption, t);
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("fig15_security", argc, argv);
  Table t({"environment", "legitimate KAR", "Eve (eavesdrop, one-shot)",
           "Eve (iterative decoder)"});
  // The paper aggregates to urban vs rural; report per scenario and the
  // aggregate rows.
  double urban_legit = 0, urban_eve = 0, rural_legit = 0, rural_eve = 0;
  for (const auto kind : kAllScenarios) {
    const SecurityRow r =
        evaluate(report, kind, 80 + static_cast<std::uint64_t>(kind));
    t.add_row({to_string(kind), Table::pct(r.legit_kar),
               Table::pct(r.eve_one_shot), Table::pct(r.eve_iterative)});
    const ScenarioConfig sc = make_scenario(kind, 50.0);
    if (sc.is_urban()) {
      urban_legit += r.legit_kar / 2.0;
      urban_eve += r.eve_one_shot / 2.0;
    } else {
      rural_legit += r.legit_kar / 2.0;
      rural_eve += r.eve_one_shot / 2.0;
    }
  }
  t.add_row({"Urban (mean)", Table::pct(urban_legit), Table::pct(urban_eve),
             "-"});
  t.add_row({"Rural (mean)", Table::pct(rural_legit), Table::pct(rural_eve),
             "-"});
  const std::string caption =
      "Fig. 15: security analysis — legitimate vs eavesdropper agreement";
  t.print(caption);
  report.add_table("fig15_security", caption, t);
  std::printf(
      "\nAt ~50%% per-bit agreement the probability of reproducing a "
      "128-bit amplified key is ~2^-128; any residual advantage is "
      "destroyed by privacy amplification, and a wrong key fails the MAC / "
      "key-confirmation handshake.\n\n");
  print_replay_diagnostics(report);
  report.write();
  return 0;
}
