// Fig. 15 — security analysis: eavesdropping and imitating attacks.
//
// (a) Eavesdropping: Eve records y_Bob from the public channel and feeds it
//     to the public decoder with her own channel-derived key material (the
//     paper's attack: one decoder pass). Paper shape: ~42-51% agreement.
// (b) Imitating: Eve follows Alice's route, runs the identical pipeline on
//     her own observations of Bob's transmissions. Paper shape: legitimate
//     ~99% vs Eve ~48-54%.
// Additionally reported: Eve misusing the *iterative* decoder — a strictly
// stronger attack than the paper evaluates — which gains some bits but
// remains far from key recovery and is caught by MAC/key confirmation.
#include <vector>

#include "channel/trace.h"
#include "common/table.h"
#include "core/pipeline.h"

using namespace vkey;
using namespace vkey::channel;
using namespace vkey::core;

namespace {

struct SecurityRow {
  double legit_kar = 0.0;
  double eve_one_shot = 0.0;
  double eve_iterative = 0.0;
};

SecurityRow evaluate(ScenarioKind kind, std::uint64_t seed) {
  PipelineConfig cfg;
  cfg.trace.scenario = make_scenario(kind, 50.0);
  cfg.trace.seed = seed;
  cfg.predictor.hidden = 24;
  cfg.predictor_epochs = 20;
  cfg.reconciler.decoder_units = 64;
  cfg.reconciler_epochs = 25;
  cfg.reconciler_samples = 3000;
  KeyGenPipeline pipeline(cfg);
  const auto m = pipeline.run(500, 450);
  return {m.mean_kar_post, m.mean_eve_kar, m.mean_eve_kar_iterative};
}

}  // namespace

int main() {
  Table t({"environment", "legitimate KAR", "Eve (eavesdrop, one-shot)",
           "Eve (iterative decoder)"});
  // The paper aggregates to urban vs rural; report per scenario and the
  // aggregate rows.
  double urban_legit = 0, urban_eve = 0, rural_legit = 0, rural_eve = 0;
  for (const auto kind : kAllScenarios) {
    const SecurityRow r =
        evaluate(kind, 80 + static_cast<std::uint64_t>(kind));
    t.add_row({to_string(kind), Table::pct(r.legit_kar),
               Table::pct(r.eve_one_shot), Table::pct(r.eve_iterative)});
    const ScenarioConfig sc = make_scenario(kind, 50.0);
    if (sc.is_urban()) {
      urban_legit += r.legit_kar / 2.0;
      urban_eve += r.eve_one_shot / 2.0;
    } else {
      rural_legit += r.legit_kar / 2.0;
      rural_eve += r.eve_one_shot / 2.0;
    }
  }
  t.add_row({"Urban (mean)", Table::pct(urban_legit), Table::pct(urban_eve),
             "-"});
  t.add_row({"Rural (mean)", Table::pct(rural_legit), Table::pct(rural_eve),
             "-"});
  t.print("Fig. 15: security analysis — legitimate vs eavesdropper "
          "agreement");
  std::printf(
      "\nAt ~50%% per-bit agreement the probability of reproducing a "
      "128-bit amplified key is ~2^-128; any residual advantage is "
      "destroyed by privacy amplification, and a wrong key fails the MAC / "
      "key-confirmation handshake.\n");
  return 0;
}
