// Fig. 11 — autoencoder reconciliation vs the CS-based method.
//
// Sweeps the decoder hidden width (AE-16 .. AE-128) and compares against
// the compressed-sensing reconciliation of LoRa-Key (random sensing matrix
// + OMP). Reported per method: post-reconciliation key agreement rate
// (mean ± std over key blocks at channel-realistic mismatch rates) and the
// computation cost (multiply-accumulates per reconciled block, measured by
// instrumented counts). Paper shape: agreement grows with decoder width,
// every AE size beats CS, and the AE decode is roughly an order of
// magnitude cheaper.
#include <vector>

#include "common/bench_io.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/reconciler.h"
#include "cs/compressed_sensing.h"
#include "ecc/bch.h"

using namespace vkey;
using namespace vkey::core;

namespace {

constexpr std::size_t kKeyBits = 64;

// Mismatch rates representative of the channel after arRSSI + prediction.
constexpr double kBerLevels[] = {0.03, 0.06, 0.09};

struct Sample {
  BitVec bob;
  BitVec alice;
};

std::vector<Sample> make_pairs(std::uint64_t seed, std::size_t trials) {
  vkey::Rng rng(seed);
  std::vector<Sample> out;
  for (std::size_t t = 0; t < trials; ++t) {
    Sample s;
    s.bob = BitVec(kKeyBits);
    for (std::size_t i = 0; i < kKeyBits; ++i) {
      s.bob.set(i, rng.bernoulli(0.5));
    }
    s.alice = s.bob;
    const double ber = kBerLevels[t % 3];
    for (std::size_t i = 0; i < kKeyBits; ++i) {
      if (rng.bernoulli(ber)) s.alice.flip(i);
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("fig11_reconciliation", argc, argv);
  const auto pairs = make_pairs(77, report.scaled(150, 40));

  Table t({"method", "agreement", "std", "cost (MAC ops/block)"});

  for (std::size_t units : {16u, 32u, 64u, 128u}) {
    ReconcilerConfig cfg;
    cfg.key_bits = kKeyBits;
    cfg.decoder_units = units;
    cfg.seed = 5;
    AutoencoderReconciler rec(cfg);
    rec.train(report.scaled(3000, 600), report.scaled(30, 8));

    std::vector<double> kar;
    std::size_t total_macs = 0;
    for (const auto& p : pairs) {
      const auto y = rec.encode_bob(p.bob);
      const auto d = rec.decode_mismatch(p.alice, y);
      kar.push_back((p.alice ^ d.mismatch).agreement(p.bob));
      total_macs += d.iterations * rec.decode_flops();
    }
    t.add_row({"AE-" + std::to_string(units),
               Table::pct(stats::mean(kar)),
               Table::pct(stats::sample_stddev(kar), 2),
               std::to_string(total_macs / pairs.size())});
  }

  {
    // CS baseline: the paper's 20 x 64 random matrix with OMP decoding.
    const Matrix phi = cs::make_sensing_matrix(20, kKeyBits, 11);
    std::vector<double> kar;
    std::size_t total_macs = 0;
    for (const auto& p : pairs) {
      const auto syn = cs::cs_syndrome(phi, p.bob);
      const auto r = cs::cs_reconcile(phi, p.alice, syn, 10);
      kar.push_back(r.corrected.agreement(p.bob));
      // Per OMP iteration: a full correlation sweep (M*N) plus the
      // least-squares solve (~ M*k^2 with k = iteration index; bound k by
      // the sparsity budget 10).
      total_macs += r.iterations * (20 * kKeyBits + 20 * 10 * 10);
    }
    t.add_row({"CS (20x64 + OMP)",
               Table::pct(stats::mean(kar)),
               Table::pct(stats::sample_stddev(kar), 2),
               std::to_string(total_macs / pairs.size())});
  }

  {
    // Extra row beyond the paper: classic code-offset reconciliation with
    // BCH(127, 64, t=10) — the "error-correction code" family the paper
    // cites as prior work. Strong but leaks 63 of 64 net bits.
    const ecc::BchReconciler bch(7, 10, kKeyBits);
    std::vector<double> kar;
    std::size_t total_macs = 0;
    for (const auto& p : pairs) {
      const auto helper = bch.helper_data(p.bob);
      const auto fixed = bch.reconcile(p.alice, helper);
      kar.push_back(fixed.has_value() ? fixed->agreement(p.bob)
                                      : p.alice.agreement(p.bob));
      // Syndrome computation dominates: 2t syndromes x n field MACs.
      total_macs += static_cast<std::size_t>(2 * bch.code().t()) *
                    static_cast<std::size_t>(bch.code().n());
    }
    t.add_row({"BCH(127,64,t=10) code-offset",
               Table::pct(stats::mean(kar)),
               Table::pct(stats::sample_stddev(kar), 2),
               std::to_string(total_macs / pairs.size())});
  }

  const std::string caption =
      "Fig. 11: reconciliation quality and cost "
      "(64-bit blocks, BER in {3%, 6%, 9%}; BCH row is an extra "
      "comparison beyond the paper)";
  t.print(caption);
  report.add_table("fig11_reconciliation", caption, t);
  report.write();
  return 0;
}
