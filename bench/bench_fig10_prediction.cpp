// Fig. 10 — impact of the BiLSTM prediction module.
//
// Pre-reconciliation key agreement rate with and without the prediction
// module, per scenario. "Without" means Alice quantizes her own arRSSI
// window with the same multi-bit quantizer Bob uses. Paper shape: the
// prediction module adds several percentage points of agreement in every
// scenario and reduces the variance.
#include <vector>

#include "channel/trace.h"
#include "common/bench_io.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/dataset.h"
#include "core/predictor.h"

using namespace vkey;
using namespace vkey::channel;
using namespace vkey::core;

namespace {

struct Outcome {
  double with_pred = 0.0;
  double with_pred_std = 0.0;
  double without_pred = 0.0;
  double without_pred_std = 0.0;
};

Outcome evaluate(const BenchReport& report, ScenarioKind kind) {
  TraceConfig tc;
  tc.scenario = make_scenario(kind, 50.0);
  tc.seed = 10 + static_cast<std::uint64_t>(kind);
  TraceGenerator gen(tc);
  const auto train_rounds = gen.generate(report.scaled(800, 150));
  const auto test_rounds = gen.generate(report.scaled(300, 80));

  DatasetConfig dc;
  dc.stride = 4;
  const auto train = make_samples(
      extract_streams(train_rounds, dc.extractor, dc.reciprocal_windows), dc);
  DatasetConfig dt = dc;
  dt.stride = 0;
  const auto test = make_samples(
      extract_streams(test_rounds, dt.extractor, dt.reciprocal_windows), dt);

  PredictorConfig pc;
  pc.hidden = 32;
  pc.seed = 3;
  PredictorQuantizer predictor(pc);
  predictor.train(train, report.scaled(30, 8));

  QuantizerConfig qc = dc.quantizer;
  qc.block_size = std::min<std::size_t>(qc.block_size, dc.seq_len);
  MultiBitQuantizer direct(qc);

  std::vector<double> with_list, without_list;
  for (const auto& s : test) {
    with_list.push_back(
        predictor.infer(s.alice_seq).bits.agreement(s.bob_bits));
    std::vector<double> raw(s.alice_seq.begin(), s.alice_seq.end());
    without_list.push_back(direct.quantize(raw).bits.agreement(s.bob_bits));
  }
  Outcome o;
  o.with_pred = stats::mean(with_list);
  o.with_pred_std = stats::sample_stddev(with_list);
  o.without_pred = stats::mean(without_list);
  o.without_pred_std = stats::sample_stddev(without_list);
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("fig10_prediction", argc, argv);
  Table t({"scenario", "without prediction", "with prediction", "gain (pp)"});
  for (const auto kind : kAllScenarios) {
    const Outcome o = evaluate(report, kind);
    t.add_row({to_string(kind),
               Table::pct(o.without_pred) + " ± " +
                   Table::pct(o.without_pred_std, 1),
               Table::pct(o.with_pred) + " ± " +
                   Table::pct(o.with_pred_std, 1),
               Table::fmt(100.0 * (o.with_pred - o.without_pred), 2)});
  }
  const std::string caption =
      "Fig. 10: key agreement rate with vs without the prediction module"
      " (pre-reconciliation)";
  t.print(caption);
  report.add_table("fig10_prediction", caption, t);
  report.write();
  return 0;
}
