// Fig. 16 — arRSSI traces of Alice, Bob and Eve.
//
// Prints aligned arRSSI streams for urban and rural environments. Paper
// shape: Eve's *overall pattern* (path loss + shadowing) tracks the
// legitimate trace, but the small-scale variation — the entropy the key is
// mined from — is completely different. Quantified below each trace by the
// Pearson correlations of the raw streams and of their short-window
// differences (the small-scale component).
#include <cstdio>
#include <vector>

#include "channel/trace.h"
#include "common/stats.h"
#include "core/dataset.h"

using namespace vkey;
using namespace vkey::channel;
using namespace vkey::core;

namespace {

void dump(ScenarioKind kind, std::uint64_t seed) {
  TraceConfig cfg;
  cfg.scenario = make_scenario(kind, 50.0);
  cfg.seed = seed;
  TraceGenerator gen(cfg);
  const auto rounds = gen.generate(120);
  const ArRssiExtractor ex(0.04);
  const auto st = extract_streams(rounds, ex, 4);

  std::printf("# %s: index, alice_arrssi, bob_arrssi, eve_arrssi\n",
              to_string(kind).c_str());
  for (std::size_t i = 0; i < st.alice.size(); i += 4) {
    std::printf("%4zu, %7.2f, %7.2f, %7.2f\n", i, st.alice[i], st.bob[i],
                st.eve[i]);
  }

  // Small-scale component: first differences kill the shared slow trend.
  auto diff = [](const std::vector<double>& x) {
    std::vector<double> d;
    for (std::size_t i = 1; i < x.size(); ++i) d.push_back(x[i] - x[i - 1]);
    return d;
  };
  std::printf("raw corr:        alice-bob %.3f, alice-eve %.3f\n",
              stats::pearson(st.alice, st.bob),
              stats::pearson(st.alice, st.eve));
  std::printf("small-scale corr: alice-bob %.3f, alice-eve %.3f\n\n",
              stats::pearson(diff(st.alice), diff(st.bob)),
              stats::pearson(diff(st.alice), diff(st.eve)));
}

}  // namespace

int main() {
  std::printf("Fig. 16: arRSSI traces of Alice, Bob and Eve (Eve follows "
              "Alice's route, %0.0f m offset)\n\n",
              TraceConfig{}.eve_offset_m);
  dump(ScenarioKind::kV2VUrban, 16);
  dump(ScenarioKind::kV2VRural, 17);
  return 0;
}
