// Fig. 16 — arRSSI traces of Alice, Bob and Eve.
//
// Prints aligned arRSSI streams for urban and rural environments. Paper
// shape: Eve's *overall pattern* (path loss + shadowing) tracks the
// legitimate trace, but the small-scale variation — the entropy the key is
// mined from — is completely different. Quantified below each trace by the
// Pearson correlations of the raw streams and of their short-window
// differences (the small-scale component).
#include <cstdio>
#include <vector>

#include "channel/trace.h"
#include "common/bench_io.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/dataset.h"

using namespace vkey;
using namespace vkey::channel;
using namespace vkey::core;

namespace {

void dump(ScenarioKind kind, std::uint64_t seed, std::size_t rounds_n,
          Table& corr) {
  TraceConfig cfg;
  cfg.scenario = make_scenario(kind, 50.0);
  cfg.seed = seed;
  TraceGenerator gen(cfg);
  const auto rounds = gen.generate(rounds_n);
  const ArRssiExtractor ex(0.04);
  const auto st = extract_streams(rounds, ex, 4);

  std::printf("# %s: index, alice_arrssi, bob_arrssi, eve_arrssi\n",
              to_string(kind).c_str());
  for (std::size_t i = 0; i < st.alice.size(); i += 4) {
    std::printf("%4zu, %7.2f, %7.2f, %7.2f\n", i, st.alice[i], st.bob[i],
                st.eve[i]);
  }

  // Small-scale component: first differences kill the shared slow trend.
  auto diff = [](const std::vector<double>& x) {
    std::vector<double> d;
    for (std::size_t i = 1; i < x.size(); ++i) d.push_back(x[i] - x[i - 1]);
    return d;
  };
  const double raw_ab = stats::pearson(st.alice, st.bob);
  const double raw_ae = stats::pearson(st.alice, st.eve);
  const double ss_ab = stats::pearson(diff(st.alice), diff(st.bob));
  const double ss_ae = stats::pearson(diff(st.alice), diff(st.eve));
  std::printf("raw corr:        alice-bob %.3f, alice-eve %.3f\n", raw_ab,
              raw_ae);
  std::printf("small-scale corr: alice-bob %.3f, alice-eve %.3f\n\n", ss_ab,
              ss_ae);
  corr.add_row({to_string(kind), Table::fmt(raw_ab, 3), Table::fmt(raw_ae, 3),
                Table::fmt(ss_ab, 3), Table::fmt(ss_ae, 3)});
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("fig16_eve_trace", argc, argv);
  std::printf("Fig. 16: arRSSI traces of Alice, Bob and Eve (Eve follows "
              "Alice's route, %0.0f m offset)\n\n",
              TraceConfig{}.eve_offset_m);
  Table corr({"scenario", "raw alice-bob", "raw alice-eve",
              "small-scale alice-bob", "small-scale alice-eve"});
  const std::size_t rounds = report.scaled(120, 40);
  dump(ScenarioKind::kV2VUrban, 16, rounds, corr);
  dump(ScenarioKind::kV2VRural, 17, rounds, corr);
  report.add_table("fig16_eve_corr",
                   "Fig. 16: Eve's trace correlation (raw vs small-scale "
                   "component)",
                   corr);
  report.write();
  return 0;
}
