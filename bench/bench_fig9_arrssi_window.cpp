// Fig. 9 — impact of the arRSSI window size.
//
// Correlation between the parties' boundary arRSSI values as a function of
// the window percentage. Paper shape: rises (averaging suppresses sample
// noise), peaks around 10%, then falls (wider windows reach past the
// channel coherence time).
#include <vector>

#include "channel/trace.h"
#include "common/bench_io.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/arrssi.h"

using namespace vkey;
using namespace vkey::channel;

int main(int argc, char** argv) {
  BenchReport report("fig9_arrssi_window", argc, argv);
  TraceConfig cfg;
  cfg.scenario = make_scenario(ScenarioKind::kV2VUrban, 50.0);
  cfg.seed = 9;
  TraceGenerator gen(cfg);
  const auto rounds = gen.generate(report.scaled(400, 80));

  Table t({"window (% of packet)", "window (symbols)", "correlation"});
  for (double w : {0.02, 0.05, 0.08, 0.10, 0.15, 0.20, 0.30, 0.50, 0.80,
                   1.00}) {
    const core::ArRssiExtractor ex(w);
    std::vector<double> a, b;
    for (const auto& r : rounds) {
      const auto bp = ex.boundary_pair(r);
      a.push_back(bp.alice_arrssi);
      b.push_back(bp.bob_arrssi);
    }
    t.add_row({Table::fmt(100.0 * w, 0),
               std::to_string(ex.window_len(
                   static_cast<std::size_t>(gen.phy().rssi_samples_per_packet()))),
               Table::fmt(stats::pearson(a, b), 3)});
  }
  const std::string caption =
      "Fig. 9: arRSSI correlation vs window percentage (V2V urban, 50 km/h)";
  t.print(caption);
  report.add_table("fig9_window", caption, t);
  report.write();
  return 0;
}
