// Robustness sweep — reliable key agreement over a lossy LoRa link.
//
// Sweeps the per-frame drop probability 0–40% and reports, per rate:
// establishment success over 200 trials, median virtual time-to-key,
// mean frames-per-establishment (data + retransmissions + acks), mean
// retransmissions and mean session attempts. The 0% row is the control:
// it must match the seed path — no retransmissions, and the established
// key equal to what the plain in-order channel produces for the same
// probe material.
//
// A second sweep exercises the full key lifecycle under byte-level wire
// corruption: establish under a corrupting link, run the key-confirmation
// round trip (key_schedule.h), then a 10-second virtual data phase with
// both endpoints' rekey timers running — deliberately offset so one side
// always rekeys first and the fast-forward/grace machinery is on the hot
// path. "Continuity" means every data frame that survived the wire opened
// cleanly: zero epoch rejects, zero MAC rejects, no frame lost to a key
// mismatch across any rekey boundary.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/bench_io.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/reconciler.h"
#include "protocol/key_schedule.h"
#include "protocol/reliability.h"
#include "protocol/session.h"
#include "protocol/sim_clock.h"
#include "protocol/unreliable_channel.h"

using namespace vkey;
using namespace vkey::protocol;

namespace {

BitVec random_key(std::uint64_t seed) {
  vkey::Rng rng(seed);
  BitVec k(64);
  for (std::size_t i = 0; i < 64; ++i) k.set(i, rng.bernoulli(0.5));
  return k;
}

BitVec with_flips(const BitVec& k, int flips, std::uint64_t seed) {
  vkey::Rng rng(seed);
  BitVec out = k;
  for (int f = 0; f < flips; ++f) {
    out.flip(static_cast<std::size_t>(rng.uniform_int(out.size())));
  }
  return out;
}

ProbeMaterialFn material_for(std::uint64_t trial) {
  return [trial](std::size_t attempt) {
    const std::uint64_t seed = hash_combine64(trial, attempt);
    const BitVec kb = random_key(seed);
    return std::make_pair(with_flips(kb, 3, seed ^ 0x5a5a), kb);
  };
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

struct SweepRow {
  double success_rate = 0.0;
  double median_time_ms = 0.0;
  double frames_per_establishment = 0.0;
  double retransmissions_per_trial = 0.0;
  double mean_attempts = 0.0;
};

SweepRow sweep(double drop, const core::AutoencoderReconciler& reconciler,
               int trials) {
  SweepRow row;
  int successes = 0;
  std::vector<double> times;
  std::size_t frames = 0, retransmissions = 0, attempts = 0;
  for (int trial = 0; trial < trials; ++trial) {
    ReliabilityConfig cfg;
    cfg.radio.spreading_factor = 7;  // keep virtual timescales compact
    cfg.fault.drop_prob = drop;
    cfg.fault.seed = hash_combine64(0xbe7c, static_cast<std::uint64_t>(trial));
    cfg.arq.seed = hash_combine64(0xa9, static_cast<std::uint64_t>(trial));
    PublicChannel base;
    const auto report = run_reliable_key_agreement(
        base, reconciler, cfg, material_for(static_cast<std::uint64_t>(trial)));
    attempts += report.attempts;
    frames += report.wire_frames;
    for (const auto& att : report.attempt_log) {
      retransmissions += att.alice_transport.retransmissions +
                         att.bob_transport.retransmissions;
    }
    if (report.established) {
      ++successes;
      times.push_back(report.time_to_establish_ms);
    }
  }
  row.success_rate = static_cast<double>(successes) / trials;
  row.median_time_ms = median(times);
  row.frames_per_establishment =
      successes > 0 ? static_cast<double>(frames) / successes : 0.0;
  row.retransmissions_per_trial =
      static_cast<double>(retransmissions) / trials;
  row.mean_attempts = static_cast<double>(attempts) / trials;
  return row;
}

// ------------------------------------------- wire corruption / rekey sweep

struct WireRow {
  double establishment = 0.0;  ///< agreement + confirm round trip succeeded
  double continuity = 0.0;     ///< trials where every delivered frame opened
  double crc_lost_per_trial = 0.0;   ///< frames the wire codec rejected
  double retransmissions = 0.0;      ///< confirm retransmissions per trial
  double rekeys_per_trial = 0.0;     ///< epochs crossed in the data phase
  double grace_opens_per_trial = 0.0;
};

WireRow wire_sweep(double corrupt, const core::AutoencoderReconciler& reconciler,
                   int trials) {
  WireRow row;
  int established = 0, continuous = 0;
  std::size_t crc_lost = 0, confirm_retx = 0, rekeys = 0, grace = 0;
  for (int trial = 0; trial < trials; ++trial) {
    // Phase 1: establish the key over a byte-corrupting link (the ARQ
    // absorbs the frames the wire codec rejects).
    ReliabilityConfig cfg;
    cfg.radio.spreading_factor = 7;
    cfg.fault.corrupt_prob = corrupt;
    cfg.fault.seed = hash_combine64(0xc0de, static_cast<std::uint64_t>(trial));
    cfg.arq.seed = hash_combine64(0xa7, static_cast<std::uint64_t>(trial));
    PublicChannel base;
    const auto agreement = run_reliable_key_agreement(
        base, reconciler, cfg,
        material_for(hash_combine64(0x317e, static_cast<std::uint64_t>(trial))));
    if (!agreement.established) continue;

    // Phase 2: key schedule + confirmation round trip on a fresh link with
    // the same corruption rate.
    SimClock clock;
    PublicChannel base2;
    FaultConfig faults;
    faults.corrupt_prob = corrupt;
    faults.seed = hash_combine64(0x3172, static_cast<std::uint64_t>(trial));
    channel::LoRaParams radio;
    radio.spreading_factor = 7;
    UnreliableChannel link(clock, base2, faults, radio);

    const std::uint64_t session =
        hash_combine64(0x5e55, static_cast<std::uint64_t>(trial));
    // Offset intervals: Alice always rekeys first, so every boundary
    // exercises Bob's authenticated fast-forward and Alice's grace window.
    KeySchedule::Policy pa;
    pa.rekey_interval_ms = 3000.0;
    pa.grace_ms = 500.0;
    KeySchedule::Policy pb = pa;
    pb.rekey_interval_ms = 3400.0;
    KeySchedule alice(agreement.key, session, KeySchedule::Role::kInitiator,
                      pa);
    KeySchedule bob(agreement.key, session, KeySchedule::Role::kResponder,
                    pb);
    const auto confirm = run_key_confirmation(clock, link, alice, bob);
    confirm_retx += confirm.transmissions - 1;
    if (!confirm.confirmed) continue;
    ++established;

    // Phase 3: 10 virtual seconds of sealed traffic across ~3 rekey
    // boundaries. Frames the codec rejects die on the wire (crc_lost);
    // every frame that *arrives* must open.
    std::size_t delivered = 0, opened = 0;
    link.set_handler(UnreliableChannel::Endpoint::kBob,
                     [&](const Message& msg) {
                       if (msg.type != MessageType::kData) return;
                       ++delivered;
                       if (bob.open(msg, clock.now_ms()).has_value()) {
                         ++opened;
                       }
                     });
    link.set_handler(UnreliableChannel::Endpoint::kAlice,
                     [](const Message&) {});
    RekeyTimer alice_timer(clock, alice);
    RekeyTimer bob_timer(clock, bob);
    alice_timer.start();
    bob_timer.start();
    std::uint64_t nonce = 1;
    const std::vector<std::uint8_t> payload(16, 0x42);
    for (int i = 0; i < 50; ++i) {
      clock.schedule(200.0 * i, [&] {
        link.send(UnreliableChannel::Endpoint::kAlice,
                  alice.seal(nonce++, payload));
      });
    }
    clock.run_until(10'500.0);
    alice_timer.stop();
    bob_timer.stop();

    crc_lost += link.stats().crc_lost;
    rekeys += bob.stats().rekeys;
    grace += alice.stats().grace_opens + bob.stats().grace_opens;
    if (opened == delivered && bob.stats().epoch_rejects == 0 &&
        bob.stats().mac_rejects == 0) {
      ++continuous;
    }
  }
  row.establishment = static_cast<double>(established) / trials;
  row.continuity =
      established > 0 ? static_cast<double>(continuous) / established : 0.0;
  row.crc_lost_per_trial = static_cast<double>(crc_lost) / trials;
  row.retransmissions = static_cast<double>(confirm_retx) / trials;
  row.rekeys_per_trial = static_cast<double>(rekeys) / trials;
  row.grace_opens_per_trial = static_cast<double>(grace) / trials;
  return row;
}

/// Control: at 0% faults the reliability layer must reproduce the seed
/// path bit-for-bit (same keys, zero retransmissions).
bool control_matches_seed_path(const core::AutoencoderReconciler& reconciler) {
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    const auto material = material_for(trial);
    ReliabilityConfig cfg;
    cfg.radio.spreading_factor = 7;
    PublicChannel base;
    const auto report =
        run_reliable_key_agreement(base, reconciler, cfg, material);

    auto [ka, kb] = material(0);
    SessionConfig scfg;
    AliceSession alice(scfg, reconciler, ka);
    BobSession bob(scfg, reconciler, kb);
    PublicChannel plain;
    const auto seed_result = run_key_agreement_detailed(plain, alice, bob);

    // Compare the FIRST attempt against the seed path: session recovery may
    // legitimately rescue a trial whose attempt-0 probe material is beyond
    // the reconciler (fresh material on attempt 1), which the single-shot
    // seed path cannot do.
    if (report.attempt_log.empty()) return false;
    if (report.attempt_log.front().established != seed_result.established) {
      return false;
    }
    if (report.attempt_log.front().established &&
        report.key != alice.final_key()) {
      return false;
    }
    for (const auto& att : report.attempt_log) {
      if (att.alice_transport.retransmissions != 0 ||
          att.bob_transport.retransmissions != 0) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("robustness", argc, argv);
  const int trials = static_cast<int>(report.scaled(200, 40));
  std::printf("training the shared reconciler...\n");
  core::ReconcilerConfig rcfg;
  rcfg.key_bits = 64;
  rcfg.decoder_units = 64;
  core::AutoencoderReconciler reconciler(rcfg);
  reconciler.train(report.scaled(2500, 600), report.scaled(25, 6));

  Table t({"drop rate", "success rate", "median time-to-key [virt ms]",
           "frames / establishment", "retx / trial", "mean attempts"});
  for (const double drop : {0.0, 0.05, 0.10, 0.20, 0.30, 0.40}) {
    const SweepRow row = sweep(drop, reconciler, trials);
    t.add_row({Table::pct(drop), Table::pct(row.success_rate),
               Table::fmt(row.median_time_ms, 1),
               Table::fmt(row.frames_per_establishment, 1),
               Table::fmt(row.retransmissions_per_trial, 2),
               Table::fmt(row.mean_attempts, 2)});
  }
  const std::string caption =
      "Robustness: key establishment vs frame drop rate (" +
      std::to_string(trials) + " trials/rate, SF7 virtual link)";
  t.print(caption);
  report.add_table("robustness_drop_sweep", caption, t);

  const int wire_trials = static_cast<int>(report.scaled(100, 20));
  Table wt({"corrupt rate", "establishment", "rekey continuity",
            "crc-lost / trial", "confirm retx / trial", "rekeys / trial",
            "grace opens / trial"});
  for (const double corrupt : {0.0, 0.02, 0.05, 0.10}) {
    const WireRow row = wire_sweep(corrupt, reconciler, wire_trials);
    wt.add_row({Table::pct(corrupt), Table::pct(row.establishment),
                Table::pct(row.continuity),
                Table::fmt(row.crc_lost_per_trial, 2),
                Table::fmt(row.retransmissions, 2),
                Table::fmt(row.rekeys_per_trial, 2),
                Table::fmt(row.grace_opens_per_trial, 2)});
  }
  const std::string wire_caption =
      "Wire robustness: full lifecycle (establish + confirm + rekeyed data "
      "phase) vs byte-corruption rate (" +
      std::to_string(wire_trials) + " trials/rate, SF7 virtual link)";
  wt.print(wire_caption);
  report.add_table("robustness_wire_sweep", wire_caption, wt);

  const bool control_ok = control_matches_seed_path(reconciler);
  std::printf("\n0%%-drop control matches seed path (same keys, zero "
              "retransmissions): %s\n",
              control_ok ? "yes" : "NO");
  report.add_note("control_matches_seed_path", control_ok ? "yes" : "NO");
  report.write();
  return control_ok ? 0 : 1;
}
