// Robustness sweep — reliable key agreement over a lossy LoRa link.
//
// Sweeps the per-frame drop probability 0–40% and reports, per rate:
// establishment success over 200 trials, median virtual time-to-key,
// mean frames-per-establishment (data + retransmissions + acks), mean
// retransmissions and mean session attempts. The 0% row is the control:
// it must match the seed path — no retransmissions, and the established
// key equal to what the plain in-order channel produces for the same
// probe material.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/bench_io.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/reconciler.h"
#include "protocol/reliability.h"
#include "protocol/session.h"

using namespace vkey;
using namespace vkey::protocol;

namespace {

BitVec random_key(std::uint64_t seed) {
  vkey::Rng rng(seed);
  BitVec k(64);
  for (std::size_t i = 0; i < 64; ++i) k.set(i, rng.bernoulli(0.5));
  return k;
}

BitVec with_flips(const BitVec& k, int flips, std::uint64_t seed) {
  vkey::Rng rng(seed);
  BitVec out = k;
  for (int f = 0; f < flips; ++f) {
    out.flip(static_cast<std::size_t>(rng.uniform_int(out.size())));
  }
  return out;
}

ProbeMaterialFn material_for(std::uint64_t trial) {
  return [trial](std::size_t attempt) {
    const std::uint64_t seed = hash_combine64(trial, attempt);
    const BitVec kb = random_key(seed);
    return std::make_pair(with_flips(kb, 3, seed ^ 0x5a5a), kb);
  };
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

struct SweepRow {
  double success_rate = 0.0;
  double median_time_ms = 0.0;
  double frames_per_establishment = 0.0;
  double retransmissions_per_trial = 0.0;
  double mean_attempts = 0.0;
};

SweepRow sweep(double drop, const core::AutoencoderReconciler& reconciler,
               int trials) {
  SweepRow row;
  int successes = 0;
  std::vector<double> times;
  std::size_t frames = 0, retransmissions = 0, attempts = 0;
  for (int trial = 0; trial < trials; ++trial) {
    ReliabilityConfig cfg;
    cfg.radio.spreading_factor = 7;  // keep virtual timescales compact
    cfg.fault.drop_prob = drop;
    cfg.fault.seed = hash_combine64(0xbe7c, static_cast<std::uint64_t>(trial));
    cfg.arq.seed = hash_combine64(0xa9, static_cast<std::uint64_t>(trial));
    PublicChannel base;
    const auto report = run_reliable_key_agreement(
        base, reconciler, cfg, material_for(static_cast<std::uint64_t>(trial)));
    attempts += report.attempts;
    frames += report.wire_frames;
    for (const auto& att : report.attempt_log) {
      retransmissions += att.alice_transport.retransmissions +
                         att.bob_transport.retransmissions;
    }
    if (report.established) {
      ++successes;
      times.push_back(report.time_to_establish_ms);
    }
  }
  row.success_rate = static_cast<double>(successes) / trials;
  row.median_time_ms = median(times);
  row.frames_per_establishment =
      successes > 0 ? static_cast<double>(frames) / successes : 0.0;
  row.retransmissions_per_trial =
      static_cast<double>(retransmissions) / trials;
  row.mean_attempts = static_cast<double>(attempts) / trials;
  return row;
}

/// Control: at 0% faults the reliability layer must reproduce the seed
/// path bit-for-bit (same keys, zero retransmissions).
bool control_matches_seed_path(const core::AutoencoderReconciler& reconciler) {
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    const auto material = material_for(trial);
    ReliabilityConfig cfg;
    cfg.radio.spreading_factor = 7;
    PublicChannel base;
    const auto report =
        run_reliable_key_agreement(base, reconciler, cfg, material);

    auto [ka, kb] = material(0);
    SessionConfig scfg;
    AliceSession alice(scfg, reconciler, ka);
    BobSession bob(scfg, reconciler, kb);
    PublicChannel plain;
    const auto seed_result = run_key_agreement_detailed(plain, alice, bob);

    // Compare the FIRST attempt against the seed path: session recovery may
    // legitimately rescue a trial whose attempt-0 probe material is beyond
    // the reconciler (fresh material on attempt 1), which the single-shot
    // seed path cannot do.
    if (report.attempt_log.empty()) return false;
    if (report.attempt_log.front().established != seed_result.established) {
      return false;
    }
    if (report.attempt_log.front().established &&
        report.key != alice.final_key()) {
      return false;
    }
    for (const auto& att : report.attempt_log) {
      if (att.alice_transport.retransmissions != 0 ||
          att.bob_transport.retransmissions != 0) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("robustness", argc, argv);
  const int trials = static_cast<int>(report.scaled(200, 40));
  std::printf("training the shared reconciler...\n");
  core::ReconcilerConfig rcfg;
  rcfg.key_bits = 64;
  rcfg.decoder_units = 64;
  core::AutoencoderReconciler reconciler(rcfg);
  reconciler.train(report.scaled(2500, 600), report.scaled(25, 6));

  Table t({"drop rate", "success rate", "median time-to-key [virt ms]",
           "frames / establishment", "retx / trial", "mean attempts"});
  for (const double drop : {0.0, 0.05, 0.10, 0.20, 0.30, 0.40}) {
    const SweepRow row = sweep(drop, reconciler, trials);
    t.add_row({Table::pct(drop), Table::pct(row.success_rate),
               Table::fmt(row.median_time_ms, 1),
               Table::fmt(row.frames_per_establishment, 1),
               Table::fmt(row.retransmissions_per_trial, 2),
               Table::fmt(row.mean_attempts, 2)});
  }
  const std::string caption =
      "Robustness: key establishment vs frame drop rate (" +
      std::to_string(trials) + " trials/rate, SF7 virtual link)";
  t.print(caption);
  report.add_table("robustness_drop_sweep", caption, t);

  const bool control_ok = control_matches_seed_path(reconciler);
  std::printf("\n0%%-drop control matches seed path (same keys, zero "
              "retransmissions): %s\n",
              control_ok ? "yes" : "NO");
  report.add_note("control_matches_seed_path", control_ok ? "yes" : "NO");
  report.write();
  return control_ok ? 0 : 1;
}
