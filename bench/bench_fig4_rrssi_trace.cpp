// Fig. 4 — packet RSSI vs register RSSI within one probe exchange.
//
// Prints the per-symbol rRSSI series of Bob's reception (Alice's probe) and
// Alice's reception (Bob's response) for a handful of rounds, plus both
// pRSSI averages. Paper shape: the RSSI varies by several dB *within* a
// packet; the tail of the first reception tracks the head of the second
// (they are only a turnaround delay apart), while the packet averages
// differ — why pRSSI is the wrong feature and adjacent rRSSI is the right
// one.
#include <cstdio>

#include "channel/trace.h"
#include "common/bench_io.h"
#include "common/stats.h"
#include "common/table.h"

using namespace vkey;
using namespace vkey::channel;

int main(int argc, char** argv) {
  BenchReport report("fig4_rrssi_trace", argc, argv);
  TraceConfig cfg;
  cfg.scenario = make_scenario(ScenarioKind::kV2VUrban, 50.0);
  cfg.seed = 4;
  TraceGenerator gen(cfg);

  // Skip a few rounds so the processes are warmed up.
  gen.generate(5);
  const ProbeRound round = gen.next_round();

  std::printf("Fig. 4: register RSSI during one probe exchange "
              "(V2V urban, 50 km/h, SF12)\n");
  std::printf("symbol, bob_rrssi_dbm (during Alice's probe), "
              "alice_rrssi_dbm (during Bob's response)\n");
  const std::size_t n = round.bob_rx.rrssi.size();
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("%3zu, %7.1f, %7.1f\n", i, round.bob_rx.rrssi[i],
                round.alice_rx.rrssi[i]);
  }
  std::printf("\npRSSI: bob %.2f dBm, alice %.2f dBm (difference %.2f dB)\n",
              round.bob_rx.prssi(), round.alice_rx.prssi(),
              round.bob_rx.prssi() - round.alice_rx.prssi());

  const std::size_t w = n / 10;  // ~10%% windows
  const double bob_tail = stats::mean(
      std::span<const double>(round.bob_rx.rrssi.data() + n - w, w));
  const double alice_head =
      stats::mean(std::span<const double>(round.alice_rx.rrssi.data(), w));
  std::printf("boundary windows: bob tail %.2f dBm vs alice head %.2f dBm "
              "(difference %.2f dB)\n",
              bob_tail, alice_head, bob_tail - alice_head);
  std::printf("=> the adjacent windows agree far better than the packet "
              "averages.\n");

  Table summary({"quantity", "bob", "alice", "difference (dB)"});
  summary.add_row({"pRSSI (dBm)", Table::fmt(round.bob_rx.prssi()),
                   Table::fmt(round.alice_rx.prssi()),
                   Table::fmt(round.bob_rx.prssi() - round.alice_rx.prssi())});
  summary.add_row({"boundary window (dBm)", Table::fmt(bob_tail),
                   Table::fmt(alice_head),
                   Table::fmt(bob_tail - alice_head)});
  report.add_table("fig4_boundary",
                   "Fig. 4: packet averages vs adjacent boundary windows "
                   "(V2V urban, 50 km/h, SF12)",
                   summary);
  report.add_scalar("rrssi_samples_per_packet", static_cast<double>(n));
  report.write();
  return 0;
}
