// Fig. 14 — generalization across environments via transfer learning.
//
// Train a base model in V2I-Urban (M1), then adapt it to the other three
// scenarios by fine-tuning on {10%, 50%, 100%} of the new environment's
// training data for a few epochs, versus training from scratch on the full
// data. Paper shape: fine-tuning from the base model converges with a
// fraction of the data/epochs and matches or beats scratch training.
#include <vector>

#include "channel/trace.h"
#include "common/bench_io.h"
#include "common/table.h"
#include "core/dataset.h"
#include "core/predictor.h"
#include "nn/serialize.h"

using namespace vkey;
using namespace vkey::channel;
using namespace vkey::core;

namespace {

constexpr std::size_t kFineTuneEpochs = 10;
constexpr std::size_t kScratchEpochs = 25;

struct Env {
  std::vector<TrainingSample> train;
  std::vector<TrainingSample> test;
};

Env make_env(const BenchReport& report, ScenarioKind kind,
             std::uint64_t seed) {
  TraceConfig tc;
  tc.scenario = make_scenario(kind, 50.0);
  tc.seed = seed;
  TraceGenerator gen(tc);
  const auto train_rounds = gen.generate(report.scaled(700, 120));
  const auto test_rounds = gen.generate(report.scaled(250, 60));
  DatasetConfig dc;
  dc.stride = 4;
  Env env;
  env.train = make_samples(
      extract_streams(train_rounds, dc.extractor, dc.reciprocal_windows), dc);
  DatasetConfig dt = dc;
  dt.stride = 0;
  env.test = make_samples(
      extract_streams(test_rounds, dt.extractor, dt.reciprocal_windows), dt);
  return env;
}

double agreement_on(const PredictorQuantizer& model,
                    const std::vector<TrainingSample>& test) {
  double agree = 0.0;
  for (const auto& s : test) {
    agree += model.infer(s.alice_seq).bits.agreement(s.bob_bits);
  }
  return agree / static_cast<double>(test.size());
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("fig14_transfer", argc, argv);
  const std::size_t fine_tune_epochs = report.scaled(kFineTuneEpochs, 3);
  const std::size_t scratch_epochs = report.scaled(kScratchEpochs, 6);
  PredictorConfig pc;
  pc.hidden = 32;
  pc.seed = 3;

  // Base model M1 = V2I-Urban.
  const Env base_env = make_env(report, ScenarioKind::kV2IUrban, 61);
  PredictorQuantizer base(pc);
  base.train(base_env.train, scratch_epochs);
  const auto base_weights = nn::snapshot(base.parameters());

  Table t({"target", "transfer-10%", "transfer-50%", "transfer-100%",
           "scratch-100%"});
  const ScenarioKind targets[] = {ScenarioKind::kV2IRural,
                                  ScenarioKind::kV2VUrban,
                                  ScenarioKind::kV2VRural};
  const char* names[] = {"M1->M2 (V2I-Rural)", "M1->M3 (V2V-Urban)",
                         "M1->M4 (V2V-Rural)"};
  for (int i = 0; i < 3; ++i) {
    const Env env =
        make_env(report, targets[i], 70 + static_cast<std::uint64_t>(i));
    std::vector<std::string> row{names[i]};

    for (double frac : {0.1, 0.5, 1.0}) {
      PredictorQuantizer tuned(pc);
      nn::restore(tuned.parameters(), base_weights);
      const auto n =
          static_cast<std::size_t>(frac * static_cast<double>(env.train.size()));
      const std::vector<TrainingSample> subset(env.train.begin(),
                                               env.train.begin() +
                                                   static_cast<std::ptrdiff_t>(n));
      tuned.train(subset, fine_tune_epochs);
      row.push_back(Table::pct(agreement_on(tuned, env.test)));
    }

    PredictorQuantizer scratch(pc);
    scratch.train(env.train, scratch_epochs);
    row.push_back(Table::pct(agreement_on(scratch, env.test)));
    t.add_row(std::move(row));
  }
  const std::string caption =
      "Fig. 14: transfer learning from the V2I-Urban base model "
      "(pre-reconciliation agreement; fine-tune = " +
      std::to_string(fine_tune_epochs) + " epochs, scratch = " +
      std::to_string(scratch_epochs) + ")";
  t.print(caption);
  report.add_table("fig14_transfer", caption, t);
  report.write();
  return 0;
}
