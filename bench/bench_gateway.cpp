// Gateway scale sweep — one shared event queue, thousands of sessions.
//
// Drives the GatewayEngine (protocol/gateway.h) through three sweeps:
//
//   gateway_scale      1k -> 100k devices arriving at one gateway over a
//                      lossless SF7 link: keys/s of virtual throughput,
//                      time-to-key under admission contention (median/p95,
//                      queueing included), steady-state wire bytes per
//                      established session.
//   gateway_contention fixed arrival load, sweep the admission-control
//                      window (max in-flight establishments) to show the
//                      queue-wait / concurrency trade.
//   gateway_faults     frame drops on every session's link: establishment
//                      rate, failure evictions, and the bounded post-run
//                      failure dumps (regenerated deterministically).
//
// Flags: the suite-standard --json/--quick/--threads/--trace-out
// (bench_io.h), plus `--sessions N` to pin the scale sweep to one session
// count (CI uses `--sessions 10000 --quick`). All reported quantities are
// virtual-time and independent of the lane count: CI byte-diffs the
// --threads 1 and --threads 4 snapshots.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/bench_io.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/telemetry.h"
#include "core/reconciler.h"
#include "protocol/gateway.h"

using namespace vkey;
using namespace vkey::protocol;

namespace {

BitVec random_key(std::uint64_t seed, std::size_t bits) {
  vkey::Rng rng(seed);
  BitVec k(bits);
  for (std::size_t i = 0; i < bits; ++i) k.set(i, rng.bernoulli(0.5));
  return k;
}

BitVec with_flips(const BitVec& k, int flips, std::uint64_t seed) {
  vkey::Rng rng(seed);
  BitVec out = k;
  for (int f = 0; f < flips; ++f) {
    out.flip(static_cast<std::size_t>(rng.uniform_int(out.size())));
  }
  return out;
}

/// Pure per-device probe material: Bob's raw key plus Alice's 3-bit-noisy
/// view, derived from (device, attempt) alone so pool lanes can call it
/// concurrently.
GatewayEngine::MaterialFn make_material() {
  return [](std::uint64_t device, std::size_t attempt) {
    const std::uint64_t seed =
        hash_combine64(hash_combine64(0x9a7e, device), attempt);
    const BitVec kb = random_key(seed, 64);
    return std::make_pair(with_flips(kb, 3, seed ^ 0x5a5a), kb);
  };
}

GatewayConfig base_config(std::size_t sessions) {
  GatewayConfig cfg;
  cfg.sessions = sessions;
  cfg.max_inflight = 256;
  cfg.arrival_interval_ms = 5.0;
  cfg.reliability.radio.spreading_factor = 7;  // compact virtual timescales
  // Deep retry budget: a converged reconciler still loses ~2 sessions in
  // 10k to the 3-attempt default (per-attempt miss ~6%); six attempts push
  // the per-session failure odds below 1e-7 so the 100%-establishment gate
  // holds at 100k sessions.
  cfg.reliability.max_session_attempts = 6;
  return cfg;
}

/// Optional telemetry across the whole suite: every engine run ticks a
/// shared sampler on a 1 s virtual grid, with virtual time accumulating
/// across runs (`vbase`) so the JSONL is one monotone timeline. Sampling
/// restricted to the deterministic families stays byte-identical across
/// --threads lane counts.
struct SuiteTelemetry {
  telemetry::Sampler sampler;
  double vbase_ms = 0.0;
};

GatewayReport run_gateway(const GatewayConfig& cfg,
                          const core::AutoencoderReconciler& reconciler,
                          SuiteTelemetry* telem) {
  GatewayConfig run_cfg = cfg;
  if (telem != nullptr) run_cfg.tick_interval_ms = 1000.0;
  GatewayEngine engine(run_cfg, reconciler, make_material());
  if (telem != nullptr) {
    engine.set_tick([telem](double now_ms) {
      telem->sampler.sample(telem->vbase_ms + now_ms);
    });
  }
  GatewayReport rep = engine.run();
  if (telem != nullptr) {
    telem->vbase_ms += rep.makespan_ms;
    telem->sampler.sample(telem->vbase_ms);  // run-boundary sample
  }
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  // `--sessions N` is gateway-specific; peel it off before BenchReport
  // (which exits on flags it does not know) sees the argument vector.
  std::size_t sessions_override = 0;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      sessions_override =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      if (sessions_override == 0) {
        std::fprintf(stderr, "--sessions expects a positive integer\n");
        return 2;
      }
    } else {
      args.push_back(argv[i]);
    }
  }
  BenchReport report("gateway", static_cast<int>(args.size()), args.data());

  SuiteTelemetry telemetry_state{
      telemetry::Sampler([&report] {
        telemetry::SamplerConfig scfg;
        if (!report.telemetry_all()) {
          scfg.include_prefixes = telemetry::deterministic_prefixes();
        }
        scfg.source = "bench_gateway";
        return scfg;
      }()),
      0.0};
  SuiteTelemetry* telem =
      report.telemetry_path().empty() ? nullptr : &telemetry_state;
  report.set_telemetry(&telemetry_state.sampler);

  std::printf("training the shared reconciler...\n");
  core::ReconcilerConfig rcfg;
  rcfg.key_bits = 64;
  rcfg.decoder_units = 64;
  core::AutoencoderReconciler reconciler(rcfg);
  // Always train to convergence (~3 s), even under --quick: the exit gate
  // asserts 100% establishment on the lossless link, and an undertrained
  // reconciler fails sessions regardless of link quality — which would
  // report gateway behavior that is really reconciler behavior.
  reconciler.train(2500, 25);

  // ---------------------------------------------------------------- scale
  std::vector<std::size_t> scale_points =
      report.quick() ? std::vector<std::size_t>{1'000, 10'000}
                     : std::vector<std::size_t>{1'000, 10'000, 100'000};
  if (sessions_override > 0) scale_points = {sessions_override};

  Table st({"sessions", "established", "keys/s [virt]",
            "median time-to-key [virt ms]", "p95 time-to-key [virt ms]",
            "mean queue wait [virt ms]", "bytes / session", "peak queue"});
  bool all_established = true;
  for (const std::size_t n : scale_points) {
    const GatewayReport g = run_gateway(base_config(n), reconciler, telem);
    all_established = all_established && g.established == g.sessions;
    st.add_row({std::to_string(n),
                Table::pct(static_cast<double>(g.established) /
                           static_cast<double>(g.sessions)),
                Table::fmt(g.keys_per_vsecond, 1),
                Table::fmt(g.median_time_to_key_ms, 1),
                Table::fmt(g.p95_time_to_key_ms, 1),
                Table::fmt(g.mean_queue_wait_ms, 1),
                Table::fmt(g.bytes_per_session, 1),
                std::to_string(g.peak_queued)});
  }
  const std::string scale_caption =
      "Gateway scale: one shared event queue, lossless SF7 links, 5 ms "
      "inter-arrival, 256 establishment slots";
  st.print(scale_caption);
  report.add_table("gateway_scale", scale_caption, st);

  // ----------------------------------------------------------- contention
  // Load-shape studies: these stay at their scaled sizes even under
  // --sessions, which pins only the scale sweep (CI smoke stays cheap).
  const std::size_t contention_sessions = report.scaled(10'000, 2'000);
  Table ct({"max in-flight", "keys/s [virt]", "median time-to-key [virt ms]",
            "p95 time-to-key [virt ms]", "mean queue wait [virt ms]",
            "peak queue", "makespan [virt s]"});
  for (const std::size_t inflight : {64u, 256u, 1024u}) {
    GatewayConfig cfg = base_config(contention_sessions);
    cfg.max_inflight = inflight;
    const GatewayReport g = run_gateway(cfg, reconciler, telem);
    ct.add_row({std::to_string(inflight), Table::fmt(g.keys_per_vsecond, 1),
                Table::fmt(g.median_time_to_key_ms, 1),
                Table::fmt(g.p95_time_to_key_ms, 1),
                Table::fmt(g.mean_queue_wait_ms, 1),
                std::to_string(g.peak_queued),
                Table::fmt(g.makespan_ms / 1000.0, 1)});
  }
  const std::string contention_caption =
      "Admission contention: " + std::to_string(contention_sessions) +
      " sessions, sweeping the establishment-slot window";
  ct.print(contention_caption);
  report.add_table("gateway_contention", contention_caption, ct);

  // ---------------------------------------------------------------- faults
  const std::size_t fault_sessions = report.scaled(2'000, 500);
  Table ft({"drop rate", "established", "failed evictions", "mean attempts",
            "median time-to-key [virt ms]", "bytes / session",
            "dumps (shown+suppressed)"});
  for (const double drop : {0.0, 0.10, 0.30}) {
    GatewayConfig cfg = base_config(fault_sessions);
    cfg.reliability.fault.drop_prob = drop;
    const GatewayReport g = run_gateway(cfg, reconciler, telem);
    ft.add_row({Table::pct(drop),
                Table::pct(static_cast<double>(g.established) /
                           static_cast<double>(g.sessions)),
                std::to_string(g.evicted_failed),
                Table::fmt(g.mean_attempts, 2),
                Table::fmt(g.median_time_to_key_ms, 1),
                Table::fmt(g.bytes_per_session, 1),
                std::to_string(g.failure_dumps.size()) + "+" +
                    std::to_string(g.failures_suppressed)});
  }
  const std::string fault_caption =
      "Gateway under frame loss: " + std::to_string(fault_sessions) +
      " sessions/rate, failure dumps regenerated post-run";
  ft.print(fault_caption);
  report.add_table("gateway_faults", fault_caption, ft);

  std::printf("\nall sessions established on the lossless link: %s\n",
              all_established ? "yes" : "NO");
  report.add_note("lossless_all_established", all_established ? "yes" : "NO");
  report.write();
  return all_established ? 0 : 1;
}
