// Suite driver: run every bench with --json and regenerate the measured
// tables in EXPERIMENTS.md from the snapshots.
//
// The contract that keeps the docs honest:
//   * every bench writes bench/data/BENCH_<name>.json with its tables as
//     pre-formatted cell strings (see common/bench_io.h), so regeneration
//     from the same snapshots is byte-identical;
//   * EXPERIMENTS.md brackets each measured table with
//       <!-- AUTOGEN:BEGIN <bench>:<table_id> -->
//       ...
//       <!-- AUTOGEN:END <bench>:<table_id> -->
//     and bench_runner owns everything between the markers;
//   * `bench_runner --check-docs` re-renders the blocks from the committed
//     snapshots and fails if the file on disk differs — the CI gate against
//     stale docs.
//
// Modes:
//   bench_runner                 run all benches (full size), write
//                                snapshots to --data, regenerate --docs
//   bench_runner --quick         run reduced-size benches into
//                                <data>/quick/, leave the docs alone
//   bench_runner --regen-only    no bench runs; regenerate docs from the
//                                existing snapshots
//   bench_runner --check-docs    no bench runs; verify docs match the
//                                snapshots (exit 1 when stale)
//   bench_runner --check-perf    run bench_tab3_runtime --quick into
//                                <data>/quick/ and compare every stage's
//                                real time against the committed
//                                BENCH_tab3_runtime.json; exit 1 when a
//                                stage is slower than the committed value
//                                times --perf-tolerance (default 1.5 —
//                                wide enough for quick-mode noise, tight
//                                enough to catch a lost kernel or an
//                                accidental O(n^2))
//   bench_runner --only <name>   restrict the run to one bench
//
// Run from the repository root: the defaults are --bin-dir <dir of this
// binary>, --data bench/data, --docs EXPERIMENTS.md.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "common/table.h"

namespace fs = std::filesystem;
using vkey::json::Value;

namespace {

struct BenchSpec {
  const char* name;  // suite name; binary is bench_<name>
  bool autogen;      // false: snapshot only, never spliced into the docs
};

// tab3_runtime measures host wall time with google-benchmark; its numbers
// are machine-dependent, so it is excluded from doc regeneration.
const BenchSpec kBenches[] = {
    {"fig2_preliminary", true},
    {"fig3_prssi_vs_rrssi", true},
    {"fig4_rrssi_trace", true},
    {"fig9_arrssi_window", true},
    {"fig10_prediction", true},
    {"fig11_reconciliation", true},
    {"tab1_devices_speeds", true},
    {"fig12_13_sota", true},
    {"fig14_transfer", true},
    {"fig15_security", true},
    {"fig16_eve_trace", true},
    {"tab2_nist", true},
    {"ablation", true},
    {"robustness", true},
    {"gateway", true},
    {"soak", true},
    {"tab3_runtime", false},
};

struct Options {
  std::string bin_dir;
  std::string data_dir = "bench/data";
  std::string docs = "EXPERIMENTS.md";
  std::string only;
  bool quick = false;
  bool regen_only = false;
  bool check_docs = false;
  bool check_perf = false;
  double perf_tolerance = 1.5;
  std::string threads;  // forwarded to every bench; empty = bench default
};

[[noreturn]] void usage(const char* argv0, int code) {
  std::fprintf(
      stderr,
      "usage: %s [--quick] [--regen-only] [--check-docs] [--check-perf]\n"
      "          [--perf-tolerance <f>] [--only <name>] [--threads <n>]\n"
      "          [--bin-dir <dir>] [--data <dir>] [--docs <path>]\n",
      argv0);
  std::exit(code);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  opt.bin_dir = fs::path(argv[0]).parent_path().string();
  if (opt.bin_dir.empty()) opt.bin_dir = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--quick") {
      opt.quick = true;
    } else if (a == "--regen-only") {
      opt.regen_only = true;
    } else if (a == "--check-docs") {
      opt.check_docs = true;
    } else if (a == "--check-perf") {
      opt.check_perf = true;
    } else if (a == "--perf-tolerance") {
      const std::string v = value("--perf-tolerance");
      char* end = nullptr;
      opt.perf_tolerance = std::strtod(v.c_str(), &end);
      if (end == v.c_str() || *end != '\0' || opt.perf_tolerance < 1.0) {
        std::fprintf(stderr, "%s: --perf-tolerance needs a factor >= 1.0\n",
                     argv[0]);
        std::exit(2);
      }
    } else if (a == "--only") {
      opt.only = value("--only");
    } else if (a == "--threads") {
      opt.threads = value("--threads");
      if (opt.threads.empty() ||
          opt.threads.find_first_not_of("0123456789") != std::string::npos ||
          opt.threads == "0") {
        std::fprintf(stderr, "%s: --threads needs a positive integer\n",
                     argv[0]);
        std::exit(2);
      }
    } else if (a == "--bin-dir") {
      opt.bin_dir = value("--bin-dir");
    } else if (a == "--data") {
      opt.data_dir = value("--data");
    } else if (a == "--docs") {
      opt.docs = value("--docs");
    } else if (a == "--help" || a == "-h") {
      usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], a.c_str());
      usage(argv[0], 2);
    }
  }
  return opt;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  VKEY_REQUIRE(static_cast<bool>(in), "cannot read " + p.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Render the replacement block for one AUTOGEN marker pair: the caption as
/// an italic line, a blank line, then the pipe table.
std::string render_block(const Value& snapshot, const std::string& table_id) {
  for (const auto& t : snapshot.at("tables").as_array()) {
    if (t.at("id").as_string() != table_id) continue;
    std::string out = "_" + t.at("caption").as_string() + "_\n\n";
    out += vkey::Table::markdown_from_json(t);
    return out;
  }
  throw vkey::Error("table id '" + table_id + "' not found in snapshot for " +
                    snapshot.at("bench").as_string());
}

/// Splice every AUTOGEN block in `docs_text` from the snapshots in
/// `data_dir`. Unknown or unreadable snapshots abort with a clear message.
std::string regenerate(const std::string& docs_text, const fs::path& data_dir) {
  static const std::string kBegin = "<!-- AUTOGEN:BEGIN ";
  static const std::string kEnd = "<!-- AUTOGEN:END ";
  std::string out;
  std::istringstream in(docs_text);
  std::string line;
  bool skipping = false;
  std::string open_key;
  while (std::getline(in, line)) {
    if (skipping) {
      if (line.rfind(kEnd, 0) == 0) {
        VKEY_REQUIRE(line == kEnd + open_key + " -->",
                     "AUTOGEN END marker mismatch: expected '" + open_key +
                         "', got line '" + line + "'");
        out += line + "\n";
        skipping = false;
      }
      continue;
    }
    out += line + "\n";
    if (line.rfind(kBegin, 0) == 0) {
      const std::size_t tail = line.find(" -->");
      VKEY_REQUIRE(tail != std::string::npos, "malformed AUTOGEN marker");
      open_key = line.substr(kBegin.size(), tail - kBegin.size());
      const std::size_t colon = open_key.find(':');
      VKEY_REQUIRE(colon != std::string::npos,
                   "AUTOGEN marker must be <bench>:<table_id>, got '" +
                       open_key + "'");
      const std::string bench = open_key.substr(0, colon);
      const std::string table_id = open_key.substr(colon + 1);
      const fs::path snap = data_dir / ("BENCH_" + bench + ".json");
      VKEY_REQUIRE(fs::exists(snap),
                   "missing snapshot " + snap.string() +
                       " (run bench_runner, or bench_" + bench +
                       " --json " + snap.string() + ")");
      const Value doc = Value::parse(read_file(snap));
      out += render_block(doc, table_id);
      skipping = true;
    }
  }
  VKEY_REQUIRE(!skipping, "unterminated AUTOGEN block '" + open_key + "'");
  return out;
}

/// Stage -> real-time-ns map from a tab3_runtime snapshot (column 1 of the
/// captured google-benchmark table; cells are pre-formatted numbers).
std::vector<std::pair<std::string, double>> stage_times(const Value& snap) {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& t : snap.at("tables").as_array()) {
    if (t.at("id").as_string() != "tab3_runtime") continue;
    for (const auto& row : t.at("rows").as_array()) {
      const auto& cells = row.as_array();
      VKEY_REQUIRE(cells.size() >= 2, "malformed tab3_runtime row");
      const std::string& name = cells[0].as_string();
      const std::string& val = cells[1].as_string();
      char* end = nullptr;
      const double ns = std::strtod(val.c_str(), &end);
      VKEY_REQUIRE(end != val.c_str(), "unparsable stage time '" + val + "'");
      out.emplace_back(name, ns);
    }
  }
  VKEY_REQUIRE(!out.empty(), "no tab3_runtime table in snapshot");
  return out;
}

/// --check-perf: fresh quick timings vs the committed tab3 snapshot.
/// Stages only present on one side are reported but do not fail the check
/// (a freshly added benchmark has no committed baseline yet; committing the
/// regenerated snapshot is the fix for a stale stage list).
int check_perf(const Options& opt) {
  const fs::path committed =
      fs::path(opt.data_dir) / "BENCH_tab3_runtime.json";
  VKEY_REQUIRE(fs::exists(committed),
               "missing committed baseline " + committed.string());
  const fs::path quick_dir = fs::path(opt.data_dir) / "quick";
  fs::create_directories(quick_dir);
  const fs::path fresh_snap = quick_dir / "BENCH_tab3_runtime.json";
  const fs::path bin = fs::path(opt.bin_dir) / "bench_tab3_runtime";
  std::string cmd =
      bin.string() + " --json " + fresh_snap.string() + " --quick";
  if (!opt.threads.empty()) cmd += " --threads " + opt.threads;
  std::printf("== bench_tab3_runtime (fresh --quick run) ==\n");
  std::fflush(stdout);
  const int rc = std::system(cmd.c_str());
  VKEY_REQUIRE(rc == 0, "bench_tab3_runtime failed");

  const auto base = stage_times(Value::parse(read_file(committed)));
  const auto fresh = stage_times(Value::parse(read_file(fresh_snap)));
  vkey::Table t({"stage", "committed (ns)", "fresh (ns)", "ratio", "verdict"});
  int regressions = 0;
  for (const auto& [name, base_ns] : base) {
    const auto it =
        std::find_if(fresh.begin(), fresh.end(),
                     [&](const auto& p) { return p.first == name; });
    if (it == fresh.end()) {
      t.add_row({name, vkey::Table::fmt(base_ns, 1), "missing", "-", "SKIP"});
      continue;
    }
    const double ratio = base_ns > 0.0 ? it->second / base_ns : 0.0;
    const bool ok = it->second <= base_ns * opt.perf_tolerance;
    if (!ok) ++regressions;
    t.add_row({name, vkey::Table::fmt(base_ns, 1),
               vkey::Table::fmt(it->second, 1), vkey::Table::fmt(ratio, 2),
               ok ? "ok" : "REGRESSION"});
  }
  for (const auto& [name, ns] : fresh) {
    if (std::find_if(base.begin(), base.end(), [&](const auto& p) {
          return p.first == name;
        }) == base.end()) {
      t.add_row({name, "(no baseline)", vkey::Table::fmt(ns, 1), "-", "NEW"});
    }
  }
  t.print("perf check vs " + committed.string() + " (tolerance " +
          vkey::Table::fmt(opt.perf_tolerance, 2) + "x)");
  if (regressions > 0) {
    std::fprintf(stderr,
                 "%d stage(s) regressed beyond %.2fx of the committed "
                 "baseline\n",
                 regressions, opt.perf_tolerance);
    return 1;
  }
  std::printf("all stages within %.2fx of the committed baseline\n",
              opt.perf_tolerance);
  return 0;
}

int run_benches(const Options& opt, const fs::path& data_dir) {
  int failures = 0;
  for (const auto& spec : kBenches) {
    if (!opt.only.empty() && opt.only != spec.name) continue;
    const fs::path bin = fs::path(opt.bin_dir) / ("bench_" + std::string(spec.name));
    const fs::path snap = data_dir / ("BENCH_" + std::string(spec.name) + ".json");
    std::string cmd = bin.string() + " --json " + snap.string();
    if (opt.quick) cmd += " --quick";
    if (!opt.threads.empty()) cmd += " --threads " + opt.threads;
    std::printf("== bench_%s ==\n", spec.name);
    std::fflush(stdout);
    const int rc = std::system(cmd.c_str());
    if (rc != 0) {
      std::fprintf(stderr, "bench_%s failed (exit status %d)\n", spec.name,
                   rc);
      ++failures;
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  try {
    if (opt.check_perf) return check_perf(opt);
    if (opt.check_docs) {
      const std::string on_disk = read_file(opt.docs);
      const std::string fresh = regenerate(on_disk, opt.data_dir);
      if (fresh != on_disk) {
        std::fprintf(stderr,
                     "%s is stale: AUTOGEN blocks differ from the snapshots "
                     "in %s.\nRegenerate with: bench_runner --regen-only\n",
                     opt.docs.c_str(), opt.data_dir.c_str());
        return 1;
      }
      std::printf("%s is up to date with %s\n", opt.docs.c_str(),
                  opt.data_dir.c_str());
      return 0;
    }

    // Quick runs land in a scratch subdirectory so CI smoke runs never
    // overwrite the committed full-size snapshots the docs are built from.
    fs::path data_dir = opt.data_dir;
    if (opt.quick) data_dir /= "quick";
    fs::create_directories(data_dir);

    if (!opt.regen_only) {
      const int failures = run_benches(opt, data_dir);
      if (failures > 0) return 1;
    }

    if (opt.quick) {
      std::printf("quick snapshots in %s; docs left untouched\n",
                  data_dir.string().c_str());
      return 0;
    }
    if (!opt.only.empty() && !opt.regen_only) {
      std::printf("single-bench run; docs left untouched "
                  "(use --regen-only for a full regeneration)\n");
      return 0;
    }

    const std::string on_disk = read_file(opt.docs);
    const std::string fresh = regenerate(on_disk, data_dir);
    if (fresh == on_disk) {
      std::printf("%s already up to date\n", opt.docs.c_str());
    } else {
      std::ofstream out(opt.docs, std::ios::binary | std::ios::trunc);
      VKEY_REQUIRE(static_cast<bool>(out), "cannot write " + opt.docs);
      out << fresh;
      std::printf("regenerated %s\n", opt.docs.c_str());
    }
    return 0;
  } catch (const vkey::Error& e) {
    std::fprintf(stderr, "bench_runner: %s\n", e.what());
    return 2;
  }
}
