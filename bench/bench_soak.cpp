// Long-horizon soak — hours of virtual time through the gateway engine.
//
// The scale sweeps in bench_gateway answer "how fast"; this harness answers
// "does it stay that fast, and does it stay flat": repeated rounds of fresh
// GatewayEngine runs (the engine is one-shot by design) with scheduled
// rekeys and a cycling fault-churn pattern, accumulating >= 1M
// establishments over hours of virtual time at full scale. Three properties
// are gated, not just reported:
//
//   * zero steady-state allocation growth — the binary links the
//     vkey_alloc_hooks counting allocator; after a warm-up cycle (one pass
//     through the full fault pattern, which touches every lazy registration
//     and code path) each round's live-heap-block delta must be EXACTLY
//     zero. A slow per-session leak of a single node fails the gate.
//   * flat gauge watermarks — per-round high watermarks of the gateway
//     session gauges must not drift across steady-state rounds of the same
//     fault phase.
//   * sustained establishment — total establishment rate >= 99.9% across
//     all rounds, fault phases included.
//
// Telemetry: `--telemetry-out` streams delta-encoded samples on the shared
// virtual timeline — a 1 s observer tick inside each engine run plus one
// boundary sample per round, with virtual time accumulating monotonically
// across rounds. The sampled families are the lane-invariant
// telemetry::deterministic_prefixes() set, so the JSONL is byte-identical
// across --threads lane counts (CI diffs 1 vs 4; --telemetry-all widens the
// filter for profiling and voids that contract).
//
// Flags: suite-standard --quick/--json/--threads/--trace-out/
// --telemetry-out/--telemetry-all, plus `--rounds N` / `--sessions N`
// (sessions per round) overrides.
//
// The committed bench/data/BENCH_soak.json snapshot of a full run is the
// baseline tools/vkey_telemetry.py check compares steady-state rates
// against. Virtual-time rates are machine-independent, but not all are
// scale-independent: the checker holds scale-free scalars (allocs/key,
// lossless-phase p99) to tight bands and the queue-depth-bound ones to
// pinned cross-scale bands (see its TOLERANCES table).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/alloc_stats.h"
#include "common/bench_io.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/telemetry.h"
#include "core/reconciler.h"
#include "protocol/gateway.h"
#include "protocol/wire.h"

using namespace vkey;
using namespace vkey::protocol;

namespace {

// The cycling fault-churn phases: lossless, light loss, heavy loss. One
// full cycle is the warm-up window — it exercises every lazily-initialized
// path (failure dumps included) before the zero-growth gate arms.
constexpr double kDropPattern[] = {0.0, 0.10, 0.25};
constexpr std::size_t kPatternLen = sizeof(kDropPattern) / sizeof(double);
constexpr double kTickIntervalMs = 1000.0;  // observer tick (virtual)

BitVec random_key(std::uint64_t seed, std::size_t bits) {
  vkey::Rng rng(seed);
  BitVec k(bits);
  for (std::size_t i = 0; i < bits; ++i) k.set(i, rng.bernoulli(0.5));
  return k;
}

BitVec with_flips(const BitVec& k, int flips, std::uint64_t seed) {
  vkey::Rng rng(seed);
  BitVec out = k;
  for (int f = 0; f < flips; ++f) {
    out.flip(static_cast<std::size_t>(rng.uniform_int(out.size())));
  }
  return out;
}

/// Pure per-device probe material, re-seeded per round so no two rounds
/// replay the same noise realizations.
GatewayEngine::MaterialFn make_material(std::uint64_t round_seed) {
  return [round_seed](std::uint64_t device, std::size_t attempt) {
    const std::uint64_t seed = hash_combine64(
        hash_combine64(hash_combine64(0x50a7, round_seed), device), attempt);
    const BitVec kb = random_key(seed, 64);
    return std::make_pair(with_flips(kb, 3, seed ^ 0x5a5a), kb);
  };
}

GatewayConfig round_config(std::size_t sessions, std::size_t round,
                           double drop) {
  GatewayConfig cfg;
  cfg.sessions = sessions;
  cfg.max_inflight = 256;
  cfg.arrival_interval_ms = 5.0;
  cfg.reliability.radio.spreading_factor = 7;
  // Deep retry budget (see bench_gateway): keeps per-session failure odds
  // negligible on the lossless phases and low even at 25% drop.
  cfg.reliability.max_session_attempts = 6;
  cfg.reliability.fault.drop_prob = drop;
  cfg.seed = hash_combine64(0x50a9, round);
  cfg.tick_interval_ms = kTickIntervalMs;
  return cfg;
}

struct RoundResult {
  double drop = 0.0;
  GatewayReport rep;
  std::int64_t live_growth = 0;  ///< heap blocks leaked by this round
  std::uint64_t allocs = 0;      ///< allocations during the round
  double peak_inflight_gauge = 0.0;
  double peak_queued_gauge = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  // Soak-specific overrides, peeled before BenchReport (which exits on
  // unknown arguments).
  std::size_t rounds_override = 0, sessions_override = 0;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const bool is_rounds = std::strcmp(argv[i], "--rounds") == 0;
    const bool is_sessions = std::strcmp(argv[i], "--sessions") == 0;
    if ((is_rounds || is_sessions) && i + 1 < argc) {
      const auto v =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      if (v == 0) {
        std::fprintf(stderr, "%s expects a positive integer\n", argv[i - 1]);
        return 2;
      }
      (is_rounds ? rounds_override : sessions_override) = v;
    } else {
      args.push_back(argv[i]);
    }
  }
  BenchReport report("soak", static_cast<int>(args.size()), args.data());

  // Full: 54 rounds x 20k sessions = 1.08M establishments, ~2 virtual
  // hours. Quick (CI): 6 rounds x 2k = 12k, same phase structure.
  const std::size_t rounds =
      rounds_override > 0 ? rounds_override : report.scaled(54, 6);
  const std::size_t sessions =
      sessions_override > 0 ? sessions_override : report.scaled(20'000, 2'000);
  const std::size_t warmup = std::min(kPatternLen, rounds - 1);

  std::printf("training the shared reconciler...\n");
  core::ReconcilerConfig rcfg;
  rcfg.key_bits = 64;
  rcfg.decoder_units = 64;
  core::AutoencoderReconciler reconciler(rcfg);
  reconciler.train(2500, 25);

  // Everything lazily registered outside the per-round lifecycle is pulled
  // in before the measurement loop so round deltas measure the engine, not
  // first-use initialization. This must cover the RARE paths too: a
  // `reliability.failure.*` counter first registered by a freak
  // triple-drop in steady round 40 is three heap blocks the zero-growth
  // gate would (rightly, but unhelpfully) flag.
  register_gateway_metrics();
  auto& reg = metrics::Registry::global();
  metrics::Counter& soak_rounds = reg.counter("soak.rounds");
  metrics::Counter& soak_established = reg.counter("soak.established");
  metrics::Counter& soak_failed = reg.counter("soak.failed");
  metrics::Counter& soak_rekeys = reg.counter("soak.rekeys");
  metrics::Gauge& soak_round_gauge = reg.gauge("soak.round");
  metrics::Gauge& soak_vhours = reg.gauge("soak.virtual_hours");
  metrics::Gauge& gw_inflight = reg.gauge("gateway.inflight_sessions");
  metrics::Gauge& gw_queued = reg.gauge("gateway.queued_sessions");
  metrics::Gauge& gw_active = reg.gauge("gateway.active_sessions");

  telemetry::SamplerConfig scfg;
  if (!report.telemetry_all()) {
    scfg.include_prefixes = telemetry::deterministic_prefixes();
  }
  scfg.source = "bench_soak";
  telemetry::Sampler sampler(scfg);
  sampler.annotate("rounds", std::to_string(rounds));
  sampler.annotate("sessions_per_round", std::to_string(sessions));
  sampler.annotate("tick_interval_ms",
                   json::format_number(kTickIntervalMs));
  sampler.annotate("quick", report.quick() ? "true" : "false");
  report.set_telemetry(&sampler);
  const bool sampling = !report.telemetry_path().empty();

  // By this point the reconciler training above has churned the heap
  // thousands of times, so the interposed allocator (if linked) has
  // certainly reported.
  const bool hooks = alloc_stats::hooks_installed();
  std::printf("allocation hooks: %s\n",
              hooks ? "installed (zero-growth gate armed)" : "ABSENT");

  double vbase_ms = 0.0;  // virtual time accumulated across rounds
  std::vector<RoundResult> results;
  results.reserve(rounds);

  for (std::size_t r = 0; r < rounds; ++r) {
    const double drop = kDropPattern[r % kPatternLen];
    // Per-round watermark window: the session gauges all sit at zero
    // between rounds (every session evicted), so re-arming here isolates
    // this round's peaks.
    gw_inflight.reset_watermarks();
    gw_queued.reset_watermarks();
    gw_active.reset_watermarks();

    RoundResult rr;
    rr.drop = drop;
    const alloc_stats::PhaseScope phase;
    {
      GatewayEngine engine(round_config(sessions, r, drop), reconciler,
                           make_material(hash_combine64(0xbeef, r)));
      if (sampling) {
        engine.set_tick([&sampler, vbase_ms](double now_ms) {
          sampler.sample(vbase_ms + now_ms);
        });
      }
      rr.rep = engine.run();
    }  // engine destroyed: all per-round heap state must be gone
    rr.live_growth = phase.live_delta();
    rr.allocs = phase.delta().allocations;
    rr.peak_inflight_gauge = gw_inflight.high_watermark();
    rr.peak_queued_gauge = gw_queued.high_watermark();

    vbase_ms += rr.rep.makespan_ms;
    soak_rounds.add(1);
    soak_established.add(rr.rep.established);
    soak_failed.add(rr.rep.failed);
    soak_rekeys.add(rr.rep.rekeys);
    soak_round_gauge.set(static_cast<double>(r));
    soak_vhours.set(vbase_ms / 3'600'000.0);
    if (sampling) sampler.sample(vbase_ms);  // round-boundary sample

    std::printf(
        "round %3zu/%zu  drop %4.0f%%  established %zu/%zu  "
        "keys/s %6.1f  p99 ttk %7.1f ms  heap growth %+lld blocks%s\n",
        r + 1, rounds, drop * 100.0, rr.rep.established, rr.rep.sessions,
        rr.rep.keys_per_vsecond, rr.rep.p99_time_to_key_ms,
        static_cast<long long>(rr.live_growth),
        r < warmup ? "  [warmup]" : "");
    results.push_back(rr);
  }

  // ------------------------------------------------------------- the gates
  bool ok = true;

  // Gate 1: zero steady-state allocation growth, each round exactly.
  std::int64_t steady_growth = 0;
  if (hooks) {
    for (std::size_t r = warmup; r < results.size(); ++r) {
      steady_growth += results[r].live_growth;
      if (results[r].live_growth != 0) {
        std::printf("GATE: round %zu leaked %+lld heap blocks\n", r,
                    static_cast<long long>(results[r].live_growth));
        ok = false;
      }
    }
  }

  // Gate 2: flat watermarks — within each fault phase, steady-state rounds
  // must peak at the same level (small absolute slack for queue jitter
  // between seeds; drift across rounds is what the gate exists to catch).
  std::map<double, std::pair<double, double>> queue_peaks;  // drop -> min,max
  for (std::size_t r = warmup; r < results.size(); ++r) {
    const auto [it, fresh] = queue_peaks.try_emplace(
        results[r].drop, results[r].peak_queued_gauge,
        results[r].peak_queued_gauge);
    if (!fresh) {
      it->second.first = std::min(it->second.first,
                                  results[r].peak_queued_gauge);
      it->second.second = std::max(it->second.second,
                                   results[r].peak_queued_gauge);
    }
  }
  for (const auto& [drop, mm] : queue_peaks) {
    if (mm.second > 1.5 * mm.first + 64.0) {
      std::printf("GATE: queue watermark drift at drop %.0f%%: %g -> %g\n",
                  drop * 100.0, mm.first, mm.second);
      ok = false;
    }
  }

  // Gate 3: sustained establishment across all phases.
  std::size_t total_sessions = 0, total_established = 0;
  std::uint64_t total_rekeys = 0;
  for (const auto& rr : results) {
    total_sessions += rr.rep.sessions;
    total_established += rr.rep.established;
    total_rekeys += rr.rep.rekeys;
  }
  const double established_rate = static_cast<double>(total_established) /
                                  static_cast<double>(total_sessions);
  if (established_rate < 0.999) {
    std::printf("GATE: establishment rate %.4f below 0.999\n",
                established_rate);
    ok = false;
  }

  // ---------------------------------------------------------------- report
  Table pt({"drop rate", "rounds", "established", "keys/s [virt]",
            "p99 time-to-key [virt ms]", "peak inflight", "peak queue",
            "heap growth [blocks]"});
  for (std::size_t p = 0; p < kPatternLen; ++p) {
    const double drop = kDropPattern[p];
    std::size_t n = 0, sess = 0, est = 0;
    double keys = 0.0, p99 = 0.0, inflight = 0.0, queued = 0.0;
    std::int64_t growth = 0;
    for (std::size_t r = warmup; r < results.size(); ++r) {
      if (results[r].drop != drop) continue;
      ++n;
      sess += results[r].rep.sessions;
      est += results[r].rep.established;
      keys += results[r].rep.keys_per_vsecond;
      p99 = std::max(p99, results[r].rep.p99_time_to_key_ms);
      inflight = std::max(inflight, results[r].peak_inflight_gauge);
      queued = std::max(queued, results[r].peak_queued_gauge);
      growth += results[r].live_growth;
    }
    if (n == 0) continue;
    pt.add_row({Table::pct(drop), std::to_string(n),
                Table::pct(static_cast<double>(est) /
                           static_cast<double>(sess)),
                Table::fmt(keys / static_cast<double>(n), 1),
                Table::fmt(p99, 1), Table::fmt(inflight, 0),
                Table::fmt(queued, 0),
                hooks ? std::to_string(growth) : std::string("n/a")});
  }
  const std::string phase_caption =
      "Soak steady state by fault phase: " + std::to_string(rounds) +
      " rounds x " + std::to_string(sessions) +
      " sessions, rekeys on, warm-up excluded";
  pt.print(phase_caption);
  report.add_table("soak_phases", phase_caption, pt);

  // Steady-state aggregates — these, as scalars, are what
  // tools/vkey_telemetry.py --check gates against the committed baseline.
  std::size_t steady_sessions = 0, steady_established = 0;
  std::uint64_t steady_allocs = 0;
  double steady_keys = 0.0, steady_p99 = 0.0;
  // The lossless-phase p99 is the contention-free latency floor — unlike
  // the overall p99 (dominated by queue depth, which scales with
  // sessions/round) it is comparable across --quick and full runs, so the
  // regression checker can hold it to a tight band. -1 when the steady
  // window happens to contain no lossless round (custom --rounds shapes).
  double steady_p99_lossless = -1.0;
  for (std::size_t r = warmup; r < results.size(); ++r) {
    steady_sessions += results[r].rep.sessions;
    steady_established += results[r].rep.established;
    steady_allocs += results[r].allocs;
    steady_keys += results[r].rep.keys_per_vsecond;
    steady_p99 = std::max(steady_p99, results[r].rep.p99_time_to_key_ms);
    if (results[r].drop == 0.0) {
      steady_p99_lossless =
          std::max(steady_p99_lossless, results[r].rep.p99_time_to_key_ms);
    }
  }
  const double steady_rounds = static_cast<double>(results.size() - warmup);
  const double allocs_per_key =
      hooks && steady_established > 0
          ? static_cast<double>(steady_allocs) /
                static_cast<double>(steady_established)
          : -1.0;

  Table st({"establishments", "virtual hours", "keys/s [virt]",
            "p99 time-to-key [virt ms]", "allocs / key",
            "heap growth [blocks]", "telemetry samples"});
  st.add_row({std::to_string(total_established),
              Table::fmt(vbase_ms / 3'600'000.0, 2),
              Table::fmt(steady_keys / steady_rounds, 1),
              Table::fmt(steady_p99, 1),
              hooks ? Table::fmt(allocs_per_key, 1) : std::string("n/a"),
              hooks ? std::to_string(steady_growth) : std::string("n/a"),
              std::to_string(sampler.samples_taken())});
  const std::string steady_caption =
      "Soak totals (steady-state rates, warm-up excluded)";
  st.print(steady_caption);
  report.add_table("soak_steady", steady_caption, st);

  report.add_scalar("establishments", static_cast<double>(total_established));
  report.add_scalar("virtual_hours", vbase_ms / 3'600'000.0);
  report.add_scalar("established_rate", established_rate);
  report.add_scalar("rekeys", static_cast<double>(total_rekeys));
  report.add_scalar("steady_keys_per_vsecond", steady_keys / steady_rounds);
  report.add_scalar("steady_p99_ttk_ms", steady_p99);
  report.add_scalar("steady_p99_ttk_lossless_ms", steady_p99_lossless);
  report.add_scalar("steady_allocs_per_key", allocs_per_key);
  report.add_scalar("steady_live_growth_blocks",
                    hooks ? static_cast<double>(steady_growth) : -1.0);
  report.add_note("alloc_hooks", hooks ? "installed" : "absent");
  report.add_note("gates_passed", ok ? "yes" : "NO");

  std::printf("\nsoak gates (zero growth, flat watermarks, >=99.9%% "
              "establishment): %s\n",
              ok ? "PASS" : "FAIL");
  report.write();
  return ok ? 0 : 1;
}
