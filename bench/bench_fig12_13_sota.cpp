// Fig. 12 + Fig. 13 — comparison with the state of the art.
//
// Vehicle-Key vs LoRa-Key (Xu et al.), Han et al. and Gao et al. across the
// four scenarios, using each baseline's paper-tuned parameters (LoRa-Key
// alpha = 0.8 and a 20x64 CS matrix; Han k = 3, 4 cascade iterations; Gao
// interval = 20, 50 rounds).
//
// Paper shape (Fig. 12): Vehicle-Key has the best KAR everywhere with the
// smallest variance. (Fig. 13): Vehicle-Key's KGR is roughly an order of
// magnitude above every baseline (they extract one pRSSI per probe
// exchange; Vehicle-Key mines the per-symbol register RSSI), with rural
// below urban and V2I below V2V.
#include <vector>

#include "baselines/gao.h"
#include "baselines/han.h"
#include "baselines/lorakey.h"
#include "channel/trace.h"
#include "common/bench_io.h"
#include "common/table.h"
#include "core/pipeline.h"

using namespace vkey;
using namespace vkey::channel;

namespace {

struct Row {
  double kar = 0.0;
  double kar_std = 0.0;
  double kgr = 0.0;
};

Row run_vehicle_key(const BenchReport& report, ScenarioKind kind,
                    std::uint64_t seed) {
  core::PipelineConfig cfg;
  cfg.trace.scenario = make_scenario(kind, 50.0);
  cfg.trace.seed = seed;
  cfg.predictor.hidden = 32;
  cfg.predictor_epochs = report.scaled(25, 6);
  cfg.reconciler.decoder_units = 64;
  cfg.reconciler_epochs = report.scaled(25, 6);
  cfg.reconciler_samples = report.scaled(3000, 600);
  core::KeyGenPipeline pipeline(cfg);
  const auto m =
      pipeline.run(report.scaled(700, 120), report.scaled(500, 120));
  return {m.mean_kar_post, m.std_kar_post, m.kgr_bits_per_s};
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("fig12_13_sota", argc, argv);
  Table kar_table({"scenario", "Vehicle-Key", "LoRa-Key", "Han et al.",
                   "Gao et al."});
  Table kgr_table({"scenario", "Vehicle-Key", "LoRa-Key", "Han et al.",
                   "Gao et al."});

  for (const auto kind : kAllScenarios) {
    const std::uint64_t seed = 40 + static_cast<std::uint64_t>(kind);

    // Baselines all consume the same probe trace.
    TraceConfig tc;
    tc.scenario = make_scenario(kind, 50.0);
    tc.seed = seed;
    TraceGenerator gen(tc);
    const auto rounds = gen.generate(report.scaled(1200, 250));
    const double dur = gen.round_duration();

    const Row vk = run_vehicle_key(report, kind, seed);
    const auto lk = baselines::LoRaKey().run(rounds, dur);
    const auto han = baselines::HanV2V().run(rounds, dur);
    const auto gao = baselines::GaoModel().run(rounds, dur);

    kar_table.add_row(
        {to_string(kind),
         Table::pct(vk.kar) + " ± " + Table::pct(vk.kar_std, 1),
         Table::pct(lk.mean_kar) + " ± " + Table::pct(lk.std_kar, 1),
         Table::pct(han.mean_kar) + " ± " + Table::pct(han.std_kar, 1),
         Table::pct(gao.mean_kar) + " ± " + Table::pct(gao.std_kar, 1)});
    kgr_table.add_row({to_string(kind), Table::fmt(vk.kgr, 3),
                       Table::fmt(lk.kgr_bits_per_s, 3),
                       Table::fmt(han.kgr_bits_per_s, 3),
                       Table::fmt(gao.kgr_bits_per_s, 3)});
  }

  const std::string kar_caption =
      "Fig. 12: key agreement rate vs state of the art";
  const std::string kgr_caption =
      "Fig. 13: key generation rate (net secret bit/s)";
  kar_table.print(kar_caption);
  std::printf("\n");
  kgr_table.print(kgr_caption);
  report.add_table("fig12_kar", kar_caption, kar_table);
  report.add_table("fig13_kgr", kgr_caption, kgr_table);
  report.write();
  return 0;
}
