// Ablation study of the design choices DESIGN.md calls out.
//
// Not a paper figure — this bench justifies the reproduction's engineering
// decisions by measuring what each one buys:
//   A1. mirrored reciprocal-zone pairing vs naive same-position pairing
//   A2. number of reciprocal windows per packet (rate/quality trade)
//   A3. tied vs untied reconciler encoders
//   A4. frozen (random-projection) vs jointly-trained encoder
//   A5. greedy verified decoding vs the one-shot decoder pass
//   A6. float vs int8 predictor inference (PredictorConfig::quantized)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <span>
#include <vector>

#include "channel/trace.h"
#include "common/bench_io.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/dataset.h"
#include "core/predictor.h"
#include "core/quantizer.h"
#include "core/reconciler.h"

using namespace vkey;
using namespace vkey::channel;
using namespace vkey::core;

namespace {

std::vector<ProbeRound> make_trace(std::uint64_t seed, std::size_t rounds) {
  TraceConfig cfg;
  cfg.scenario = make_scenario(ScenarioKind::kV2VUrban, 50.0);
  cfg.seed = seed;
  TraceGenerator gen(cfg);
  return gen.generate(rounds);
}

double quantized_agreement(const ArRssiStreams& st) {
  MultiBitQuantizer q({.bits_per_sample = 1, .block_size = 16,
                       .guard_band_ratio = 0.0});
  return q.quantize(st.alice).bits.agreement(q.quantize(st.bob).bits);
}

struct ReconcilerScore {
  double kar;
  double success;
  double eve;
};

ReconcilerScore score_reconciler(const AutoencoderReconciler& rec,
                                 bool one_shot, std::uint64_t seed,
                                 int trials) {
  vkey::Rng rng(seed);
  const std::size_t n = rec.config().key_bits;
  double kar = 0.0, succ = 0.0, eve = 0.0;
  for (int t = 0; t < trials; ++t) {
    BitVec kb(n), ke(n);
    for (std::size_t i = 0; i < n; ++i) {
      kb.set(i, rng.bernoulli(0.5));
      ke.set(i, rng.bernoulli(0.5));
    }
    BitVec ka = kb;
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.bernoulli(0.06)) ka.flip(i);
    }
    const auto y = rec.encode_bob(kb);
    const BitVec fixed =
        one_shot ? rec.reconcile_one_shot(ka, y) : rec.reconcile(ka, y);
    kar += fixed.agreement(kb);
    succ += fixed == kb;
    const BitVec eve_fix =
        one_shot ? rec.reconcile_one_shot(ke, y) : rec.reconcile(ke, y);
    eve += eve_fix.agreement(kb);
  }
  return {kar / trials, succ / trials, eve / trials};
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("ablation", argc, argv);
  const int trials = static_cast<int>(report.scaled(150, 40));
  const auto rounds = make_trace(123, report.scaled(300, 80));
  const ArRssiExtractor ex(0.04);

  // --- A1: pairing strategy ---
  {
    const auto mirrored = extract_streams(rounds, ex, 4);
    // Naive pairing: same head windows on both sides (no mirroring).
    ArRssiStreams naive;
    for (const auto& r : rounds) {
      const auto a = ex.sequence(r.alice_rx);
      const auto b = ex.sequence(r.bob_rx);
      const auto e = ex.sequence(r.eve_rx_bob_tx);
      for (std::size_t j = 0; j < 4; ++j) {
        naive.alice.push_back(a[j]);
        naive.bob.push_back(b[j]);
        naive.eve.push_back(e[j]);
      }
    }
    Table t({"pairing", "stream correlation", "1-bit agreement"});
    t.add_row({"mirrored reciprocal-zone",
               Table::fmt(stats::pearson(mirrored.alice, mirrored.bob), 3),
               Table::pct(quantized_agreement(mirrored))});
    t.add_row({"naive same-position",
               Table::fmt(stats::pearson(naive.alice, naive.bob), 3),
               Table::pct(quantized_agreement(naive))});
    const std::string caption = "A1: window pairing strategy (V2V urban, 50 km/h)";
    t.print(caption);
    report.add_table("ablation_a1_pairing", caption, t);
    std::printf("\n");
  }

  // --- A2: reciprocal windows per packet ---
  {
    Table t({"windows/packet", "bits/round", "1-bit agreement"});
    for (std::size_t k : {1u, 2u, 4u, 6u, 8u}) {
      const auto st = extract_streams(rounds, ex, k);
      t.add_row({std::to_string(k), std::to_string(k),
                 Table::pct(quantized_agreement(st))});
    }
    const std::string caption = "A2: reciprocal-zone width (rate vs agreement)";
    t.print(caption);
    report.add_table("ablation_a2_windows", caption, t);
    std::printf("\n");
  }

  // --- A3/A4: encoder configuration ---
  {
    Table t({"encoder", "KAR @6% BER", "exact blocks", "Eve"});
    struct Cfg {
      const char* name;
      bool tie;
      bool freeze;
    };
    for (const Cfg c : {Cfg{"tied + frozen (default)", true, true},
                        Cfg{"tied + trained", true, false},
                        Cfg{"untied + trained (paper fig. 7)", false,
                            false}}) {
      ReconcilerConfig rc;
      rc.tie_encoders = c.tie;
      rc.freeze_encoder = c.freeze;
      rc.decoder_units = 64;
      AutoencoderReconciler rec(rc);
      rec.train(report.scaled(2500, 600), report.scaled(25, 6));
      const auto s = score_reconciler(rec, /*one_shot=*/false, 7, trials);
      t.add_row({c.name, Table::pct(s.kar), Table::pct(s.success),
                 Table::pct(s.eve)});
    }
    const std::string caption = "A3/A4: reconciler encoder ablation";
    t.print(caption);
    report.add_table("ablation_a3_a4_encoder", caption, t);
    std::printf("\n");
  }

  // --- A5: decode strategy ---
  {
    ReconcilerConfig rc;
    rc.decoder_units = 64;
    AutoencoderReconciler rec(rc);
    rec.train(report.scaled(2500, 600), report.scaled(25, 6));
    Table t({"decode", "KAR @6% BER", "exact blocks", "Eve"});
    const auto greedy = score_reconciler(rec, false, 9, trials);
    const auto one_shot = score_reconciler(rec, true, 9, trials);
    t.add_row({"greedy verified (default)", Table::pct(greedy.kar),
               Table::pct(greedy.success), Table::pct(greedy.eve)});
    t.add_row({"one-shot decoder pass", Table::pct(one_shot.kar),
               Table::pct(one_shot.success), Table::pct(one_shot.eve)});
    const std::string caption = "A5: decoding strategy (same trained model)";
    t.print(caption);
    report.add_table("ablation_a5_decode", caption, t);
    std::printf("\n");
  }

  // --- A6: int8 predictor inference ---
  {
    // One trained model, evaluated through both inference paths on held-out
    // windows. The quantity of interest is the key-agreement cost of the
    // fast path: KAR vs Bob for each path, how many of Alice's key bits the
    // int8 path flips relative to float, and the largest probability
    // perturbation (bits only flip where the float probability already sat
    // near the 0.5 threshold).
    const auto st = extract_streams(rounds, ex, 4);
    DatasetConfig ds;
    ds.stride = 4;  // overlap to stretch the small bench trace
    const auto samples = make_samples(st, ds);
    const std::size_t n_train = samples.size() * 3 / 4;
    const std::span<const TrainingSample> train(samples.data(), n_train);
    const std::span<const TrainingSample> eval(samples.data() + n_train,
                                               samples.size() - n_train);
    PredictorConfig pc;
    PredictorQuantizer pred(pc);
    pred.train(train, report.scaled(20, 5));

    struct PathScore {
      double kar = 0.0;
      std::size_t flips = 0;
      double max_dp = 0.0;
    };
    PathScore fl, q8;
    std::size_t bits_total = 0;
    for (const auto& s : eval) {
      pred.set_quantized(false);
      const auto of = pred.infer(s.alice_seq);
      pred.set_quantized(true);
      const auto oq = pred.infer(s.alice_seq);
      fl.kar += of.bits.agreement(s.bob_bits);
      q8.kar += oq.bits.agreement(s.bob_bits);
      bits_total += of.bits.size();
      for (std::size_t i = 0; i < of.bits.size(); ++i) {
        q8.flips += of.bits.get(i) != oq.bits.get(i);
        q8.max_dp = std::max(
            q8.max_dp, std::fabs(of.probabilities[i] - oq.probabilities[i]));
      }
    }
    pred.set_quantized(false);
    const double ne = static_cast<double>(eval.size());
    Table t({"inference path", "KAR vs Bob", "bits flipped vs float",
             "max |dp|"});
    t.add_row({"float (bit-exact reference)", Table::pct(fl.kar / ne), "0",
               "0"});
    t.add_row({"int8 + polynomial gates", Table::pct(q8.kar / ne),
               std::to_string(q8.flips) + " / " + std::to_string(bits_total),
               Table::fmt(q8.max_dp, 4)});
    const std::string caption =
        "A6: int8 predictor inference (same trained model, held-out windows)";
    t.print(caption);
    report.add_table("ablation_a6_int8", caption, t);
  }
  report.write();
  return 0;
}
