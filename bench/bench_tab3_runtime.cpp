// Table III — computation cost of the online pipeline stages.
//
// google-benchmark timings of each per-key online operation for both roles:
//   Alice: BiLSTM prediction + quantization inference, reconciliation
//          decode (encoder + greedy decoder), privacy amplification.
//   Bob:   multi-bit quantization, syndrome encoding, privacy amplification.
// Paper shape (Raspberry Pi 4): prediction dominates (ms-scale) and
// reconciliation is tens of microseconds; Bob's total is an order of
// magnitude below Alice's. Absolute numbers here reflect this host, not a
// Pi; the stage *ratios* are the reproduced quantity. Training is offline
// and excluded, as in the paper.
#include <benchmark/benchmark.h>

#include "core/dataset.h"
#include "core/pipeline.h"
#include "core/predictor.h"
#include "core/privacy.h"
#include "core/quantizer.h"
#include "core/reconciler.h"

using namespace vkey;
using namespace vkey::core;

namespace {

// Shared trained state, built once.
struct Fixture {
  PredictorQuantizer predictor;
  AutoencoderReconciler reconciler;
  nn::Vec alice_seq;
  std::vector<double> bob_seq_raw;
  BitVec key_alice;
  BitVec key_bob;
  std::vector<double> y_bob;

  Fixture()
      : predictor([] {
          PredictorConfig cfg;
          cfg.hidden = 32;  // the evaluation configuration
          return cfg;
        }()),
        reconciler([] {
          ReconcilerConfig cfg;
          cfg.decoder_units = 64;
          return cfg;
        }()) {
    reconciler.train(800, 8);  // weights just need to be realistic
    vkey::Rng rng(5);
    alice_seq.resize(64);
    bob_seq_raw.resize(64);
    for (std::size_t i = 0; i < 64; ++i) {
      alice_seq[i] = rng.uniform();
      bob_seq_raw[i] = -80.0 + 5.0 * rng.gaussian();
    }
    key_bob = BitVec(64);
    for (std::size_t i = 0; i < 64; ++i) key_bob.set(i, rng.bernoulli(0.5));
    key_alice = key_bob;
    key_alice.flip(7);
    key_alice.flip(40);
    y_bob = reconciler.encode_bob(key_bob);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_Alice_PredictionAndQuantization(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.predictor.infer(f.alice_seq));
  }
}
BENCHMARK(BM_Alice_PredictionAndQuantization);

void BM_Alice_Reconciliation(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.reconciler.reconcile(f.key_alice, f.y_bob));
  }
}
BENCHMARK(BM_Alice_Reconciliation);

void BM_Alice_PrivacyAmplification(benchmark::State& state) {
  auto& f = fixture();
  const PrivacyAmplifier amp(128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(amp.amplify(f.key_alice, 1));
  }
}
BENCHMARK(BM_Alice_PrivacyAmplification);

void BM_Bob_Quantization(benchmark::State& state) {
  auto& f = fixture();
  const MultiBitQuantizer quant(
      {.bits_per_sample = 1, .block_size = 16, .guard_band_ratio = 0.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant.quantize(f.bob_seq_raw));
  }
}
BENCHMARK(BM_Bob_Quantization);

void BM_Bob_SyndromeEncoding(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.reconciler.encode_bob(f.key_bob));
  }
}
BENCHMARK(BM_Bob_SyndromeEncoding);

void BM_Bob_PrivacyAmplification(benchmark::State& state) {
  auto& f = fixture();
  const PrivacyAmplifier amp(128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(amp.amplify(f.key_bob, 1));
  }
}
BENCHMARK(BM_Bob_PrivacyAmplification);

}  // namespace

BENCHMARK_MAIN();
