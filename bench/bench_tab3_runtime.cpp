// Table III — computation cost of the online pipeline stages.
//
// google-benchmark timings of each per-key online operation for both roles:
//   Alice: BiLSTM prediction + quantization inference, reconciliation
//          decode (encoder + greedy decoder), privacy amplification.
//   Bob:   multi-bit quantization, syndrome encoding, privacy amplification.
// Paper shape (Raspberry Pi 4): prediction dominates (ms-scale) and
// reconciliation is tens of microseconds; Bob's total is an order of
// magnitude below Alice's. Absolute numbers here reflect this host, not a
// Pi; the stage *ratios* are the reproduced quantity. Training is offline
// and excluded, as in the paper.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/bench_io.h"
#include "common/table.h"
#include "core/dataset.h"
#include "core/pipeline.h"
#include "core/predictor.h"
#include "core/privacy.h"
#include "core/quantizer.h"
#include "core/reconciler.h"

using namespace vkey;
using namespace vkey::core;

namespace {

// Shared trained state, built once.
struct Fixture {
  PredictorQuantizer predictor;
  PredictorQuantizer predictor_int8;  ///< same weights, int8 infer path
  AutoencoderReconciler reconciler;
  nn::Vec alice_seq;
  std::vector<nn::Vec> batch_windows;  ///< 16 windows for the batched stage
  std::vector<double> bob_seq_raw;
  BitVec key_alice;
  BitVec key_bob;
  std::vector<double> y_bob;

  Fixture()
      : predictor([] {
          PredictorConfig cfg;
          cfg.hidden = 32;  // the evaluation configuration
          return cfg;
        }()),
        predictor_int8(predictor),
        reconciler([] {
          ReconcilerConfig cfg;
          cfg.decoder_units = 64;
          return cfg;
        }()) {
    predictor_int8.set_quantized(true);
    reconciler.train(800, 8);  // weights just need to be realistic
    vkey::Rng rng(5);
    alice_seq.resize(64);
    bob_seq_raw.resize(64);
    for (std::size_t i = 0; i < 64; ++i) {
      alice_seq[i] = rng.uniform();
      bob_seq_raw[i] = -80.0 + 5.0 * rng.gaussian();
    }
    batch_windows.assign(16, nn::Vec(64));
    for (auto& w : batch_windows) {
      for (double& v : w) v = rng.uniform();
    }
    key_bob = BitVec(64);
    for (std::size_t i = 0; i < 64; ++i) key_bob.set(i, rng.bernoulli(0.5));
    key_alice = key_bob;
    key_alice.flip(7);
    key_alice.flip(40);
    y_bob = reconciler.encode_bob(key_bob);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_Alice_PredictionAndQuantization(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.predictor.infer(f.alice_seq));
  }
}
BENCHMARK(BM_Alice_PredictionAndQuantization);

/// Batched float prediction: 16 windows per iteration through one blocked
/// pass over the Dense heads (bit-identical to 16 sequential infer calls).
void BM_Alice_PredictionAndQuantization_Batch16(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.predictor.infer_batch(f.batch_windows));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_Alice_PredictionAndQuantization_Batch16);

/// The int8 fast path (PredictorConfig::quantized) — NOT bit-exact with
/// the float rows; bench_ablation table A6 reports its KAR cost.
void BM_Alice_PredictionAndQuantization_Int8(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.predictor_int8.infer(f.alice_seq));
  }
}
BENCHMARK(BM_Alice_PredictionAndQuantization_Int8);

void BM_Alice_Reconciliation(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.reconciler.reconcile(f.key_alice, f.y_bob));
  }
}
BENCHMARK(BM_Alice_Reconciliation);

void BM_Alice_PrivacyAmplification(benchmark::State& state) {
  auto& f = fixture();
  const PrivacyAmplifier amp(128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(amp.amplify(f.key_alice, 1));
  }
}
BENCHMARK(BM_Alice_PrivacyAmplification);

void BM_Bob_Quantization(benchmark::State& state) {
  auto& f = fixture();
  const MultiBitQuantizer quant(
      {.bits_per_sample = 1, .block_size = 16, .guard_band_ratio = 0.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant.quantize(f.bob_seq_raw));
  }
}
BENCHMARK(BM_Bob_Quantization);

void BM_Bob_SyndromeEncoding(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.reconciler.encode_bob(f.key_bob));
  }
}
BENCHMARK(BM_Bob_SyndromeEncoding);

void BM_Bob_PrivacyAmplification(benchmark::State& state) {
  auto& f = fixture();
  const PrivacyAmplifier amp(128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(amp.amplify(f.key_bob, 1));
  }
}
BENCHMARK(BM_Bob_PrivacyAmplification);

/// Console reporting plus a captured (name, real time, iterations) list so
/// the run can be exported through the shared BenchReport JSON path. Wall
/// timings are host-dependent, so bench_runner keeps this bench out of the
/// regenerated EXPERIMENTS.md tables; the JSON is for artifacts/inspection.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Run {
    std::string name;
    double real_ns;
    double cpu_ns;
    std::int64_t iterations;
  };

  void ReportRuns(const std::vector<benchmark::BenchmarkReporter::Run>& runs)
      override {
    for (const auto& r : runs) {
      captured_.push_back({r.benchmark_name(), r.GetAdjustedRealTime(),
                           r.GetAdjustedCPUTime(), r.iterations});
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Run>& captured() const { return captured_; }

 private:
  std::vector<Run> captured_;
};

}  // namespace

int main(int argc, char** argv) {
  // Split argv: the suite-wide flags (--json/--quick) go to BenchReport,
  // everything else is handed to google-benchmark untouched.
  std::vector<char*> ours{argv[0]};
  std::vector<char*> gbench{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick" || a == "--help") {
      ours.push_back(argv[i]);
    } else if (a == "--json" && i + 1 < argc) {
      ours.push_back(argv[i]);
      ours.push_back(argv[++i]);
    } else {
      gbench.push_back(argv[i]);
    }
  }
  int ourc = static_cast<int>(ours.size());
  vkey::BenchReport report("tab3_runtime", ourc, ours.data());

  // Quick mode: shrink the measurement window (benchmark 1.7 takes a plain
  // double, in seconds).
  std::string min_time = "--benchmark_min_time=0.02";
  if (report.quick()) gbench.push_back(min_time.data());

  int gbenchc = static_cast<int>(gbench.size());
  benchmark::Initialize(&gbenchc, gbench.data());
  if (benchmark::ReportUnrecognizedArguments(gbenchc, gbench.data())) {
    return 1;
  }
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  Table t({"stage", "real time (ns)", "cpu time (ns)", "iterations"});
  for (const auto& r : reporter.captured()) {
    t.add_row({r.name, Table::fmt(r.real_ns, 1), Table::fmt(r.cpu_ns, 1),
               std::to_string(r.iterations)});
  }
  report.add_table("tab3_runtime",
                   "Table III: per-stage online computation cost "
                   "(host-dependent wall timings; not spliced into docs)",
                   t);
  report.write();
  return 0;
}
