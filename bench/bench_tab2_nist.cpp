// Table II — NIST SP 800-22 randomness battery on the generated keys.
//
// Runs the full pipeline, concatenates the privacy-amplified session keys
// into one bit stream and applies the Table II tests. Paper shape: every
// p-value above the 1% rejection threshold.
#include <cstdio>

#include "common/bench_io.h"
#include "common/table.h"
#include "core/pipeline.h"
#include "nist/nist.h"

using namespace vkey;
using namespace vkey::channel;
using namespace vkey::core;

int main(int argc, char** argv) {
  BenchReport report("tab2_nist", argc, argv);
  // Harvest keys from two scenarios to get a long stream.
  BitVec stream;
  for (const auto kind :
       {ScenarioKind::kV2VUrban, ScenarioKind::kV2IRural}) {
    PipelineConfig cfg;
    cfg.trace.scenario = make_scenario(kind, 50.0);
    cfg.trace.seed = 90 + static_cast<std::uint64_t>(kind);
    cfg.use_prediction = false;  // fastest path to many key blocks
    cfg.reconciler.decoder_units = 64;
    cfg.reconciler_epochs = report.scaled(20, 5);
    cfg.reconciler_samples = report.scaled(2500, 600);
    KeyGenPipeline pipeline(cfg);
    pipeline.run(report.scaled(150, 40), report.scaled(1200, 300));
    stream.append(pipeline.amplified_key_stream());
  }
  std::printf("collected %zu amplified key bits\n\n", stream.size());

  Table t({"NIST test", "p-value", "verdict"});
  for (const auto& r : nist::run_suite(stream)) {
    if (!r.p_value.has_value()) {
      t.add_row({r.name, "n/a (stream too short)", "skipped"});
      continue;
    }
    t.add_row({r.name, Table::fmt(*r.p_value, 6),
               r.pass() ? "pass" : "FAIL"});
  }
  const std::string caption =
      "Table II: NIST statistical test suite on amplified keys "
      "(reject if p < 0.01)";
  t.print(caption);
  report.add_table("tab2_nist", caption, t);
  report.add_scalar("amplified_key_bits", static_cast<double>(stream.size()));
  report.write();
  return 0;
}
