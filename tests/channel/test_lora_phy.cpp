#include "channel/lora_phy.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vkey::channel {
namespace {

TEST(LoRaPhy, PaperBitRate183bps) {
  // BW = 125 kHz, SF = 12, CR = 4/8 -> Rb = 12 * 125000/4096 * 0.5 = 183.1.
  LoRaPhy phy(LoRaParams{});
  EXPECT_NEAR(phy.bit_rate(), 183.1, 0.1);
}

TEST(LoRaPhy, SymbolTimeSf12Bw125) {
  LoRaPhy phy(LoRaParams{});
  EXPECT_NEAR(phy.symbol_time(), 4096.0 / 125000.0, 1e-9);
}

TEST(LoRaPhy, AirtimeIsHundredsOfMsAtSf12) {
  // The theoretical analysis in Sec. II-A: a 16-byte packet at 183 bps
  // stays on air for over a second.
  LoRaPhy phy(LoRaParams{});
  EXPECT_GT(phy.airtime(), 1.0);
  EXPECT_LT(phy.airtime(), 3.0);
}

TEST(LoRaPhy, BitRateScalesWithBandwidth) {
  LoRaParams narrow;
  narrow.bandwidth_hz = 62.5e3;
  LoRaPhy p_narrow(narrow);
  LoRaPhy p_wide(LoRaParams{});
  EXPECT_NEAR(p_wide.bit_rate() / p_narrow.bit_rate(), 2.0, 1e-9);
}

TEST(LoRaPhy, LowerSfIsFaster) {
  LoRaParams sf7;
  sf7.spreading_factor = 7;
  EXPECT_GT(LoRaPhy(sf7).bit_rate(), LoRaPhy(LoRaParams{}).bit_rate());
  EXPECT_LT(LoRaPhy(sf7).airtime(), LoRaPhy(LoRaParams{}).airtime());
}

TEST(LoRaPhy, PayloadSymbolsGrowWithPayload) {
  LoRaParams small;
  small.payload_bytes = 8;
  LoRaParams big;
  big.payload_bytes = 64;
  EXPECT_LT(LoRaPhy(small).payload_symbols(), LoRaPhy(big).payload_symbols());
}

TEST(LoRaPhy, MinimumEightPayloadSymbols) {
  LoRaParams tiny;
  tiny.payload_bytes = 1;
  tiny.spreading_factor = 12;
  EXPECT_GE(LoRaPhy(tiny).payload_symbols(), 8);
}

TEST(LoRaPhy, RssiSamplesMatchSymbolCount) {
  LoRaPhy phy(LoRaParams{});
  EXPECT_EQ(phy.rssi_samples_per_packet(),
            static_cast<int>(phy.total_symbols()));
  EXPECT_GT(phy.rssi_samples_per_packet(), 40);
}

TEST(LoRaPhy, WavelengthAt434MHz) {
  // Paper: lambda = 69.12 cm at 434 MHz.
  LoRaPhy phy(LoRaParams{});
  EXPECT_NEAR(phy.wavelength(), 0.6912, 0.001);
}

TEST(LoRaPhy, ParamsForBitrateApproximatesTarget) {
  for (double target : {23.0, 46.0, 91.0, 183.0, 293.0, 586.0, 1172.0}) {
    const LoRaParams p = LoRaPhy::params_for_bitrate(target);
    const LoRaPhy phy(p);
    // Within a factor of 1.5 of the requested rate.
    EXPECT_GT(phy.bit_rate(), target / 1.5) << "target " << target;
    EXPECT_LT(phy.bit_rate(), target * 1.5) << "target " << target;
  }
}

TEST(LoRaPhy, ParamsForBitrateMonotoneAirtime) {
  const double a_slow = LoRaPhy(LoRaPhy::params_for_bitrate(23.0)).airtime();
  const double a_fast =
      LoRaPhy(LoRaPhy::params_for_bitrate(1172.0)).airtime();
  EXPECT_GT(a_slow, 10.0 * a_fast);
}

TEST(LoRaPhy, InvalidConfigRejected) {
  LoRaParams bad;
  bad.spreading_factor = 5;
  EXPECT_THROW(LoRaPhy{bad}, vkey::Error);
  bad = LoRaParams{};
  bad.coding_rate_denom = 9;
  EXPECT_THROW(LoRaPhy{bad}, vkey::Error);
  bad = LoRaParams{};
  bad.payload_bytes = 0;
  EXPECT_THROW(LoRaPhy{bad}, vkey::Error);
  EXPECT_THROW(LoRaPhy::params_for_bitrate(0.0), vkey::Error);
}

}  // namespace
}  // namespace vkey::channel
