#include "channel/trace.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "common/stats.h"
#include "core/arrssi.h"

namespace vkey::channel {
namespace {

TraceConfig default_config(ScenarioKind kind = ScenarioKind::kV2VUrban,
                           double speed = 50.0, std::uint64_t seed = 42) {
  TraceConfig cfg;
  cfg.scenario = make_scenario(kind, speed);
  cfg.seed = seed;
  return cfg;
}

TEST(TraceGenerator, RoundHasAllObservations) {
  TraceGenerator gen(default_config());
  const ProbeRound round = gen.next_round();
  const auto n = static_cast<std::size_t>(gen.phy().rssi_samples_per_packet());
  EXPECT_EQ(round.bob_rx.rrssi.size(), n);
  EXPECT_EQ(round.alice_rx.rrssi.size(), n);
  EXPECT_EQ(round.eve_rx_alice_tx.rrssi.size(), n);
  EXPECT_EQ(round.eve_rx_bob_tx.rrssi.size(), n);
}

TEST(TraceGenerator, TimelineIsOrdered) {
  TraceGenerator gen(default_config());
  const ProbeRound r1 = gen.next_round();
  // Bob receives the probe before Alice receives the response.
  EXPECT_LT(r1.bob_rx.t_start, r1.alice_rx.t_start);
  EXPECT_LE(r1.bob_rx.t_end, r1.alice_rx.t_start);
  const ProbeRound r2 = gen.next_round();
  EXPECT_GT(r2.t_round_start, r1.t_round_start);
}

TEST(TraceGenerator, DeterministicForSameSeed) {
  TraceGenerator a(default_config()), b(default_config());
  const auto ra = a.generate(5);
  const auto rb = b.generate(5);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(ra[i].bob_rx.rrssi, rb[i].bob_rx.rrssi);
    EXPECT_EQ(ra[i].alice_rx.rrssi, rb[i].alice_rx.rrssi);
  }
}

TEST(TraceGenerator, DifferentSeedsDiffer) {
  TraceGenerator a(default_config(ScenarioKind::kV2VUrban, 50.0, 1));
  TraceGenerator b(default_config(ScenarioKind::kV2VUrban, 50.0, 2));
  EXPECT_NE(a.next_round().bob_rx.rrssi, b.next_round().bob_rx.rrssi);
}

TEST(TraceGenerator, RssiInPlausibleRange) {
  TraceGenerator gen(default_config());
  for (const auto& round : gen.generate(20)) {
    for (double v : round.bob_rx.rrssi) {
      EXPECT_GT(v, -137.0);
      EXPECT_LT(v, -20.0);
    }
  }
}

TEST(TraceGenerator, PrssiIsMeanOfRegisters) {
  TraceGenerator gen(default_config());
  const auto round = gen.next_round();
  EXPECT_NEAR(round.bob_rx.prssi(),
              vkey::stats::mean(round.bob_rx.rrssi), 1e-12);
}

TEST(TraceGenerator, RoundDurationCoversTwoAirtimes) {
  TraceGenerator gen(default_config());
  EXPECT_GT(gen.round_duration(), 2.0 * gen.phy().airtime());
}

TEST(TraceGenerator, CoherenceTimeShrinksWithSpeed) {
  TraceGenerator slow(default_config(ScenarioKind::kV2VUrban, 20.0));
  TraceGenerator fast(default_config(ScenarioKind::kV2VUrban, 80.0));
  EXPECT_GT(slow.coherence_time_s(), fast.coherence_time_s());
}

// --- the paper's central channel phenomena, as properties ---

TEST(TraceProperties, BoundaryArRssiBeatsPacketRssi) {
  // Fig. 3: the coherence-adjacent arRSSI correlates much better between
  // the parties than the packet average does.
  TraceGenerator gen(default_config());
  const auto rounds = gen.generate(250);
  std::vector<double> pa, pb, aa, ab;
  const core::ArRssiExtractor ex(0.10);
  for (const auto& r : rounds) {
    pa.push_back(r.alice_rx.prssi());
    pb.push_back(r.bob_rx.prssi());
    const auto bp = ex.boundary_pair(r);
    aa.push_back(bp.alice_arrssi);
    ab.push_back(bp.bob_arrssi);
  }
  const double prssi_corr = vkey::stats::pearson(pa, pb);
  const double arrssi_corr = vkey::stats::pearson(aa, ab);
  EXPECT_GT(arrssi_corr, prssi_corr + 0.15);
  EXPECT_GT(arrssi_corr, 0.85);
}

TEST(TraceProperties, CorrelationDropsWithSpeed) {
  // Fig. 2(b).
  auto corr_at = [](double speed) {
    TraceGenerator gen(default_config(ScenarioKind::kV2VUrban, speed, 9));
    std::vector<double> a, b;
    for (const auto& r : gen.generate(220)) {
      a.push_back(r.alice_rx.prssi());
      b.push_back(r.bob_rx.prssi());
    }
    return vkey::stats::pearson(a, b);
  };
  EXPECT_GT(corr_at(10.0), corr_at(80.0) + 0.2);
}

TEST(TraceProperties, CorrelationDropsWithAirtime) {
  // Fig. 2(a): lower data rate -> longer airtime -> lower correlation.
  auto corr_for = [](double bitrate) {
    TraceConfig cfg = default_config(ScenarioKind::kV2VUrban, 50.0, 11);
    cfg.phy = LoRaPhy::params_for_bitrate(bitrate);
    TraceGenerator gen(cfg);
    std::vector<double> a, b;
    for (const auto& r : gen.generate(220)) {
      a.push_back(r.alice_rx.prssi());
      b.push_back(r.bob_rx.prssi());
    }
    return vkey::stats::pearson(a, b);
  };
  EXPECT_GT(corr_for(1172.0), corr_for(92.0) + 0.3);
}

TEST(TraceProperties, EveBoundaryDecorrelated) {
  // Eve is > lambda/2 from both parties: her small-scale fading is
  // independent, so her boundary arRSSI barely correlates with Alice's.
  TraceGenerator gen(default_config());
  const auto rounds = gen.generate(250);
  std::vector<double> aa, ae;
  const core::ArRssiExtractor ex(0.10);
  for (const auto& r : rounds) {
    aa.push_back(ex.boundary_pair(r).alice_arrssi);
    ae.push_back(ex.eve_boundary(r));
  }
  EXPECT_LT(vkey::stats::pearson(aa, ae), 0.5);
}

TEST(TraceProperties, DistanceReportedPerRound) {
  TraceGenerator gen(default_config());
  const auto r = gen.next_round();
  EXPECT_GT(r.distance_m, 0.0);
}

TEST(TraceGenerator, ConfigValidation) {
  TraceConfig bad = default_config();
  bad.probe_interval_s = -1.0;
  EXPECT_THROW(TraceGenerator{bad}, vkey::Error);
  bad = default_config();
  bad.eve_offset_m = 0.0;
  EXPECT_THROW(TraceGenerator{bad}, vkey::Error);
}

TEST(TraceGenerator, V2IStaticEndpointWorks) {
  // Bob is an infrastructure node (speed 0): the trace must still be valid
  // and reciprocal, with fading driven by Alice's motion alone.
  TraceGenerator gen(default_config(ScenarioKind::kV2IUrban));
  const auto rounds = gen.generate(60);
  std::vector<double> aa, ab;
  const core::ArRssiExtractor ex(0.10);
  for (const auto& r : rounds) {
    const auto bp = ex.boundary_pair(r);
    aa.push_back(bp.alice_arrssi);
    ab.push_back(bp.bob_arrssi);
  }
  EXPECT_GT(vkey::stats::pearson(aa, ab), 0.8);
}

TEST(TraceProperties, EveObservationsDifferFromBobs) {
  // Even though Eve overhears the very same transmissions, her register
  // readings go through her own link and never equal Bob's.
  TraceGenerator gen(default_config());
  const auto round = gen.next_round();
  EXPECT_NE(round.eve_rx_alice_tx.rrssi, round.bob_rx.rrssi);
  EXPECT_NE(round.eve_rx_bob_tx.rrssi, round.alice_rx.rrssi);
}

TEST(TraceProperties, RuralPrssiCorrelatesMoreThanUrban) {
  // Fig. 3's environment ordering: LOS-rich rural links keep more packet-
  // level correlation than urban NLOS links.
  auto corr_of = [](ScenarioKind kind) {
    TraceGenerator gen(default_config(kind, 50.0, 77));
    std::vector<double> a, b;
    for (const auto& r : gen.generate(220)) {
      a.push_back(r.alice_rx.prssi());
      b.push_back(r.bob_rx.prssi());
    }
    return vkey::stats::pearson(a, b);
  };
  EXPECT_GT(corr_of(ScenarioKind::kV2IRural),
            corr_of(ScenarioKind::kV2IUrban) - 0.05);
}

}  // namespace
}  // namespace vkey::channel
