#include "channel/fading.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/stats.h"

namespace vkey::channel {
namespace {

TEST(PathLoss, LogDistanceSlope) {
  const double pl100 = path_loss_db(100.0, 2.0, 25.0);
  const double pl1000 = path_loss_db(1000.0, 2.0, 25.0);
  EXPECT_NEAR(pl1000 - pl100, 20.0, 1e-9);  // 10*n dB per decade
}

TEST(PathLoss, ClampedBelowOneMetre) {
  EXPECT_DOUBLE_EQ(path_loss_db(0.1, 2.0, 25.0), 25.0);
}

TEST(PathLoss, RejectsBadExponent) {
  EXPECT_THROW(path_loss_db(10.0, 0.0, 25.0), vkey::Error);
}

TEST(SumOfSinusoidsRing, UnitAveragePower) {
  vkey::Rng rng(1);
  SumOfSinusoidsRing ring(24, rng);
  double power = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    power += std::norm(ring.advance(0.01, 10.0));
  }
  EXPECT_NEAR(power / n, 1.0, 0.1);
}

TEST(SumOfSinusoidsRing, FrozenWhenDopplerZero) {
  vkey::Rng rng(2);
  SumOfSinusoidsRing ring(16, rng);
  const auto g0 = ring.advance(1.0, 0.0);
  const auto g1 = ring.advance(1.0, 0.0);
  EXPECT_NEAR(std::abs(g0 - g1), 0.0, 1e-12);
}

TEST(SumOfSinusoidsRing, DecorrelatesOverTime) {
  vkey::Rng rng(3);
  SumOfSinusoidsRing ring(32, rng);
  // Autocorrelation of samples far beyond the coherence time is low.
  std::vector<double> a, b;
  const double fd = 20.0;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(ring.advance(0.005, fd).real());  // sampled at 200 Hz
  }
  for (std::size_t i = 0; i + 200 < a.size(); ++i) b.push_back(a[i + 200]);
  a.resize(b.size());
  EXPECT_LT(std::fabs(vkey::stats::pearson(a, b)), 0.4);
}

TEST(SumOfSinusoidsRing, RequiresEnoughRays) {
  vkey::Rng rng(4);
  EXPECT_THROW(SumOfSinusoidsRing(2, rng), vkey::Error);
}

TEST(SmallScaleFading, StationaryMeanPowerNearZeroDb) {
  SmallScaleFading fade({.rays = 24}, vkey::Rng(5));
  double sum_linear = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    sum_linear += std::pow(10.0, fade.advance_db(0.01, 15.0, 15.0, 1.0) / 10.0);
  }
  EXPECT_NEAR(10.0 * std::log10(sum_linear / n), 0.0, 1.0);
}

TEST(SmallScaleFading, RicianReducesVariance) {
  SmallScaleFading rayleigh({.rays = 24, .rician_k_db = -100.0},
                            vkey::Rng(6));
  SmallScaleFading rician({.rays = 24, .rician_k_db = 10.0}, vkey::Rng(6));
  std::vector<double> vr, vk;
  for (int i = 0; i < 20000; ++i) {
    vr.push_back(rayleigh.advance_db(0.01, 15.0, 15.0, 1.0));
    vk.push_back(rician.advance_db(0.01, 15.0, 15.0, 1.0));
  }
  EXPECT_GT(vkey::stats::stddev(vr), 2.0 * vkey::stats::stddev(vk));
}

TEST(SmallScaleFading, SlowComponentOutlivesFast) {
  // With a tiny slow_scale, samples a short lag apart stay correlated even
  // though the geometric Doppler would decorrelate them.
  SmallScaleFading fade({.rays = 24, .slow_scale = 0.005, .fast_weight = 0.0},
                        vkey::Rng(7));
  std::vector<double> x;
  for (int i = 0; i < 6000; ++i) {
    x.push_back(fade.advance_db(0.01, 20.0, 20.0, 0.0));
  }
  std::vector<double> lead(x.begin(), x.end() - 10);
  std::vector<double> lag(x.begin() + 10, x.end());  // lag = 0.1 s
  EXPECT_GT(vkey::stats::pearson(lead, lag), 0.9);
}

TEST(SmallScaleFading, ConfigValidation) {
  EXPECT_THROW(SmallScaleFading({.fast_weight = 1.5}, vkey::Rng(8)),
               vkey::Error);
  EXPECT_THROW(SmallScaleFading({.slow_scale = 0.0}, vkey::Rng(8)),
               vkey::Error);
}

TEST(Shadowing, StationaryStdMatchesSigma) {
  ShadowingProcess sh(6.0, 20.0, vkey::Rng(9));
  std::vector<double> v;
  for (int i = 0; i < 30000; ++i) v.push_back(sh.advance(5.0));
  EXPECT_NEAR(vkey::stats::stddev(v), 6.0, 0.5);
  EXPECT_NEAR(vkey::stats::mean(v), 0.0, 0.3);
}

TEST(Shadowing, GudmundsonDecorrelation) {
  ShadowingProcess sh(6.0, 50.0, vkey::Rng(10));
  std::vector<double> x;
  for (int i = 0; i < 30000; ++i) x.push_back(sh.advance(1.0));
  // Empirical lag-50 m correlation ~ exp(-1) = 0.37.
  std::vector<double> lead(x.begin(), x.end() - 50);
  std::vector<double> lag(x.begin() + 50, x.end());
  EXPECT_NEAR(vkey::stats::pearson(lead, lag), std::exp(-1.0), 0.08);
}

TEST(Shadowing, ZeroStepKeepsValue) {
  ShadowingProcess sh(6.0, 20.0, vkey::Rng(11));
  const double v = sh.advance(10.0);
  EXPECT_DOUBLE_EQ(sh.advance(0.0), v);
}

TEST(Shadowing, RejectsNegativeStep) {
  ShadowingProcess sh(6.0, 20.0, vkey::Rng(12));
  EXPECT_THROW(sh.advance(-1.0), vkey::Error);
}

TEST(CorrelatedShadowing, TracksReferenceAtHighRho) {
  ShadowingProcess ref(6.0, 20.0, vkey::Rng(13));
  CorrelatedShadowing eve(0.95, 6.0, 20.0, vkey::Rng(14));
  std::vector<double> a, b;
  for (int i = 0; i < 20000; ++i) {
    const double r = ref.advance(2.0);
    a.push_back(r);
    b.push_back(eve.advance(2.0, r));
  }
  EXPECT_GT(vkey::stats::pearson(a, b), 0.9);
}

TEST(CorrelatedShadowing, IndependentAtRhoZero) {
  ShadowingProcess ref(6.0, 20.0, vkey::Rng(15));
  CorrelatedShadowing eve(0.0, 6.0, 20.0, vkey::Rng(16));
  std::vector<double> a, b;
  for (int i = 0; i < 20000; ++i) {
    const double r = ref.advance(2.0);
    a.push_back(r);
    b.push_back(eve.advance(2.0, r));
  }
  EXPECT_LT(std::fabs(vkey::stats::pearson(a, b)), 0.1);
}

TEST(CorrelatedShadowing, RhoValidated) {
  EXPECT_THROW(CorrelatedShadowing(1.5, 6.0, 20.0, vkey::Rng(17)),
               vkey::Error);
}

}  // namespace
}  // namespace vkey::channel
