#include "channel/mobility.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace vkey::channel {
namespace {

TEST(SpeedProcess, StartsAtBaseSpeed) {
  SpeedProcess sp(50.0, 5.0, 30.0, vkey::Rng(1));
  EXPECT_NEAR(sp.at(0.0), 50.0 / 3.6, 1e-9);
}

TEST(SpeedProcess, StaysNearBaseSpeed) {
  SpeedProcess sp(50.0, 5.0, 30.0, vkey::Rng(2));
  double sum = 0.0;
  const int n = 2000;
  for (int i = 1; i <= n; ++i) sum += sp.at(i * 0.5);
  const double mean_kmh = sum / n * 3.6;
  EXPECT_NEAR(mean_kmh, 50.0, 5.0);
}

TEST(SpeedProcess, NeverNegative) {
  SpeedProcess sp(3.0, 10.0, 5.0, vkey::Rng(3));
  for (int i = 1; i <= 1000; ++i) EXPECT_GE(sp.at(i * 0.1), 0.0);
}

TEST(SpeedProcess, ZeroJitterIsConstant) {
  SpeedProcess sp(60.0, 0.0, 30.0, vkey::Rng(4));
  for (int i = 1; i <= 10; ++i) {
    EXPECT_DOUBLE_EQ(sp.at(i * 1.0), 60.0 / 3.6);
  }
}

TEST(SpeedProcess, RejectsBackwardTime) {
  SpeedProcess sp(50.0, 5.0, 30.0, vkey::Rng(5));
  sp.at(10.0);
  EXPECT_THROW(sp.at(5.0), vkey::Error);
}

TEST(DistanceProcess, StartsAtInitialDistance) {
  const ScenarioConfig cfg = make_scenario(ScenarioKind::kV2VUrban, 50.0);
  DistanceProcess dp(cfg, vkey::Rng(1));
  EXPECT_NEAR(dp.at(0.0), cfg.initial_distance_m, 1e-9);
}

TEST(DistanceProcess, StaysWithinBounds) {
  const ScenarioConfig cfg = make_scenario(ScenarioKind::kV2VUrban, 50.0);
  DistanceProcess dp(cfg, vkey::Rng(2));
  for (int i = 1; i <= 20000; ++i) {
    const double d = dp.at(i * 0.1);
    EXPECT_GE(d, cfg.min_distance_m);
    EXPECT_LE(d, cfg.max_distance_m);
  }
}

TEST(DistanceProcess, MeanRevertsToNominal) {
  const ScenarioConfig cfg = make_scenario(ScenarioKind::kV2VUrban, 50.0);
  DistanceProcess dp(cfg, vkey::Rng(3));
  double sum = 0.0;
  const int n = 50000;
  for (int i = 1; i <= n; ++i) sum += dp.at(i * 0.1);
  EXPECT_NEAR(sum / n, cfg.initial_distance_m, cfg.distance_sigma_m * 3.0);
}

TEST(DistanceProcess, RadialSpeedIsPhysicallyBounded) {
  const ScenarioConfig cfg = make_scenario(ScenarioKind::kV2VUrban, 50.0);
  DistanceProcess dp(cfg, vkey::Rng(4));
  for (int i = 1; i <= 10000; ++i) {
    dp.at(i * 0.03);
    // Radial speed must stay well below highway speeds — this is what keeps
    // the LOS Doppler sane.
    EXPECT_LT(std::fabs(dp.radial_speed()), 15.0);
  }
}

TEST(DistanceProcess, TravelledAccumulates) {
  const ScenarioConfig cfg = make_scenario(ScenarioKind::kV2VUrban, 50.0);
  DistanceProcess dp(cfg, vkey::Rng(5));
  dp.at(10.0);
  const double t10 = dp.travelled();
  dp.at(20.0);
  EXPECT_GT(dp.travelled(), t10);
  // Average ground speed ~ 50 km/h = 13.9 m/s for both vehicles.
  EXPECT_NEAR(dp.travelled(), 20.0 * 50.0 / 3.6, 1.0);
}

TEST(DistanceProcess, V2IEnvironmentSpeedIsHalved) {
  // For V2I only Alice moves; the pair's environment speed is the average.
  const ScenarioConfig cfg = make_scenario(ScenarioKind::kV2IUrban, 50.0);
  DistanceProcess dp(cfg, vkey::Rng(6));
  dp.at(10.0);
  EXPECT_NEAR(dp.travelled(), 10.0 * 25.0 / 3.6, 0.5);
}

}  // namespace
}  // namespace vkey::channel
