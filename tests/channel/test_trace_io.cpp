#include "channel/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"

namespace vkey::channel {
namespace {

std::vector<ProbeRound> make_rounds(std::size_t n) {
  TraceConfig cfg;
  cfg.scenario = make_scenario(ScenarioKind::kV2VUrban, 50.0);
  cfg.seed = 12;
  TraceGenerator gen(cfg);
  return gen.generate(n);
}

TEST(TraceIo, RoundTripPreservesObservations) {
  const auto rounds = make_rounds(5);
  std::stringstream buf;
  write_trace_csv(buf, rounds);
  const auto back = read_trace_csv(buf);
  ASSERT_EQ(back.size(), rounds.size());
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    EXPECT_EQ(back[r].bob_rx.rrssi, rounds[r].bob_rx.rrssi);
    EXPECT_EQ(back[r].alice_rx.rrssi, rounds[r].alice_rx.rrssi);
    EXPECT_EQ(back[r].eve_rx_bob_tx.rrssi, rounds[r].eve_rx_bob_tx.rrssi);
    EXPECT_DOUBLE_EQ(back[r].bob_rx.t_start, rounds[r].bob_rx.t_start);
  }
}

TEST(TraceIo, FileRoundTrip) {
  const auto rounds = make_rounds(3);
  const std::string path = std::string(::testing::TempDir()) + "/trace.csv";
  save_trace_csv(path, rounds);
  const auto back = load_trace_csv(path);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[2].alice_rx.rrssi, rounds[2].alice_rx.rrssi);
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsEmptyInput) {
  std::stringstream buf;
  EXPECT_THROW(read_trace_csv(buf), vkey::Error);
}

TEST(TraceIo, RejectsWrongHeader) {
  std::stringstream buf("time,rssi\n0,1\n");
  EXPECT_THROW(read_trace_csv(buf), vkey::Error);
}

TEST(TraceIo, RejectsMalformedRow) {
  std::stringstream buf("round,observer,symbol,t_start,rssi_dbm\n0,bob_rx\n");
  EXPECT_THROW(read_trace_csv(buf), vkey::Error);
}

TEST(TraceIo, RejectsNonNumericFields) {
  std::stringstream buf(
      "round,observer,symbol,t_start,rssi_dbm\n0,bob_rx,zero,0.0,-80\n");
  EXPECT_THROW(read_trace_csv(buf), vkey::Error);
}

TEST(TraceIo, RejectsUnknownObserver) {
  std::stringstream buf(
      "round,observer,symbol,t_start,rssi_dbm\n0,mallory_rx,0,0.0,-80\n");
  EXPECT_THROW(read_trace_csv(buf), vkey::Error);
}

TEST(TraceIo, RejectsOutOfOrderSymbols) {
  std::stringstream buf(
      "round,observer,symbol,t_start,rssi_dbm\n0,bob_rx,1,0.0,-80\n");
  EXPECT_THROW(read_trace_csv(buf), vkey::Error);
}

TEST(TraceIo, RejectsRoundMissingLegitimateObserver) {
  std::stringstream buf(
      "round,observer,symbol,t_start,rssi_dbm\n0,bob_rx,0,0.0,-80\n");
  EXPECT_THROW(read_trace_csv(buf), vkey::Error);
}

TEST(TraceIo, HardwareCaptureWithoutEveIsRejectedButDiagnosable) {
  // A capture tool without an Eve receiver produces rounds with only the
  // two legitimate observers — those are accepted (Eve observations empty).
  std::stringstream buf(
      "round,observer,symbol,t_start,rssi_dbm\n"
      "0,bob_rx,0,0.0,-80\n0,bob_rx,1,0.0,-81\n"
      "0,alice_rx,0,1.7,-79\n0,alice_rx,1,1.7,-80\n");
  const auto rounds = read_trace_csv(buf);
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_EQ(rounds[0].bob_rx.rrssi.size(), 2u);
  EXPECT_TRUE(rounds[0].eve_rx_bob_tx.rrssi.empty());
}

}  // namespace
}  // namespace vkey::channel
