// Sampler behavior: delta encoding against the live registry, the bounded
// ring, the monotone-time contract, and the disabled-metrics degenerate
// case. Every test samples through a unique "tlm.<test>." name prefix so the
// shared global registry (exercised by test_metrics.cpp in this binary)
// cannot leak instruments into these samples.
#include "common/telemetry.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "common/metrics.h"

namespace vkey {
namespace {

// The suite must behave the same under `VKEY_METRICS=off ctest`: force
// collection on for the duration of each test and restore the prior state.
struct MetricsOn {
  bool prev = metrics::enabled();
  MetricsOn() { metrics::set_enabled(true); }
  ~MetricsOn() { metrics::set_enabled(prev); }
};

telemetry::Sampler make_sampler(const std::string& prefix,
                                std::size_t ring_capacity = 4096) {
  telemetry::SamplerConfig cfg;
  cfg.include_prefixes = {prefix};
  cfg.ring_capacity = ring_capacity;
  cfg.source = "test_telemetry";
  return telemetry::Sampler(cfg);
}

json::Value parse_line(const std::string& line) {
  return json::Value::parse(line);
}

TEST(Telemetry, HeaderCarriesSchemaSourceFilterAndAnnotations) {
  MetricsOn on;
  telemetry::Sampler s = make_sampler("tlm.hdr.", 16);
  s.annotate("seed", "7");
  s.annotate("seed", "9");  // later write wins
  s.annotate("sessions", "100");

  const json::Value h = parse_line(s.header_line());
  EXPECT_EQ(h.at("schema").as_string(), "vkey-telemetry/1");
  EXPECT_EQ(h.at("source").as_string(), "test_telemetry");
  ASSERT_EQ(h.at("filter").size(), 1u);
  EXPECT_EQ(h.at("filter").as_array()[0].as_string(), "tlm.hdr.");
  EXPECT_EQ(h.at("ring_capacity").as_number(), 16.0);
  EXPECT_EQ(h.at("annotations").at("seed").as_string(), "9");
  EXPECT_EQ(h.at("annotations").at("sessions").as_string(), "100");
}

TEST(Telemetry, DeltaEncodingEmitsOnlyWhatChanged) {
  MetricsOn on;
  auto& reg = metrics::Registry::global();
  auto& sent = reg.counter("tlm.delta.sent");
  auto& idle = reg.counter("tlm.delta.idle");
  auto& depth = reg.gauge("tlm.delta.depth");
  auto& lat = reg.histogram("tlm.delta.latency_ms");

  telemetry::Sampler s = make_sampler("tlm.delta.");
  sent.add(5);
  depth.set(3.0);
  lat.observe(10.0);
  lat.observe(20.0);
  s.sample(0.0);

  // First sample: everything nonzero appears as a delta from zero; the
  // untouched counter is omitted entirely.
  json::Value line = parse_line(s.lines().at(0));
  EXPECT_EQ(line.at("seq").as_number(), 0.0);
  EXPECT_EQ(line.at("counters").at("tlm.delta.sent").as_number(), 5.0);
  EXPECT_EQ(line.at("counters").find("tlm.delta.idle"), nullptr);
  EXPECT_EQ(line.at("gauges").at("tlm.delta.depth").at("value").as_number(),
            3.0);
  EXPECT_EQ(line.at("hists").at("tlm.delta.latency_ms").at("dcount")
                .as_number(),
            2.0);

  // Nothing moved: the second sample is structurally valid but empty.
  s.sample(1000.0);
  line = parse_line(s.lines().at(1));
  EXPECT_EQ(line.at("seq").as_number(), 1.0);
  EXPECT_TRUE(line.at("counters").as_object().empty());
  EXPECT_TRUE(line.at("gauges").as_object().empty());
  EXPECT_TRUE(line.at("hists").as_object().empty());

  // Only the counter moved: the third sample carries exactly that delta.
  sent.add(2);
  s.sample(2000.0);
  line = parse_line(s.lines().at(2));
  EXPECT_EQ(line.at("counters").at("tlm.delta.sent").as_number(), 2.0);
  EXPECT_EQ(line.at("counters").size(), 1u);
  EXPECT_TRUE(line.at("gauges").as_object().empty());
  EXPECT_TRUE(line.at("hists").as_object().empty());
  (void)idle;
}

TEST(Telemetry, GaugeSamplesCarryWatermarksAndFireOnWatermarkOnlyMoves) {
  MetricsOn on;
  auto& g = metrics::Registry::global().gauge("tlm.wm.queue");
  telemetry::Sampler s = make_sampler("tlm.wm.");

  g.set(5.0);
  s.sample(0.0);
  json::Value e = parse_line(s.lines().at(0)).at("gauges").at("tlm.wm.queue");
  EXPECT_EQ(e.at("value").as_number(), 5.0);
  EXPECT_EQ(e.at("high").as_number(), 5.0);
  EXPECT_EQ(e.at("low").as_number(), 5.0);

  // A spike that returns to the old value still changes the high watermark,
  // so the gauge must appear again even though `value` is back at 5.
  g.set(9.0);
  g.set(5.0);
  s.sample(1000.0);
  e = parse_line(s.lines().at(1)).at("gauges").at("tlm.wm.queue");
  EXPECT_EQ(e.at("value").as_number(), 5.0);
  EXPECT_EQ(e.at("high").as_number(), 9.0);
  EXPECT_EQ(e.at("low").as_number(), 5.0);
}

TEST(Telemetry, PrefixFilterExcludesForeignInstruments) {
  MetricsOn on;
  auto& mine = metrics::Registry::global().counter("tlm.filter.kept");
  auto& other = metrics::Registry::global().counter("tlm.unfiltered.dropped");
  telemetry::Sampler s = make_sampler("tlm.filter.");
  mine.add(1);
  other.add(1);
  s.sample(0.0);
  const json::Value line = parse_line(s.lines().at(0));
  EXPECT_NE(line.at("counters").find("tlm.filter.kept"), nullptr);
  EXPECT_EQ(line.at("counters").find("tlm.unfiltered.dropped"), nullptr);
}

TEST(Telemetry, BoundedRingEvictsOldestAndCountsDrops) {
  MetricsOn on;
  telemetry::Sampler s = make_sampler("tlm.ring.", 2);
  for (int i = 0; i < 5; ++i) s.sample(1000.0 * i);

  EXPECT_EQ(s.samples_taken(), 5u);
  EXPECT_EQ(s.dropped(), 3u);
  const std::vector<std::string> lines = s.lines();
  ASSERT_EQ(lines.size(), 2u);
  // Oldest-first: the survivors are the last two samples, in order.
  EXPECT_EQ(parse_line(lines[0]).at("seq").as_number(), 3.0);
  EXPECT_EQ(parse_line(lines[1]).at("seq").as_number(), 4.0);

  const json::Value sum = parse_line(s.summary_line()).at("summary");
  EXPECT_EQ(sum.at("samples").as_number(), 5.0);
  EXPECT_EQ(sum.at("retained").as_number(), 2.0);
  EXPECT_EQ(sum.at("dropped").as_number(), 3.0);
  EXPECT_EQ(sum.at("last_t_ms").as_number(), 4000.0);
}

TEST(Telemetry, SampleTimesMustBeNonDecreasing) {
  MetricsOn on;
  telemetry::Sampler s = make_sampler("tlm.mono.");
  s.sample(100.0);
  s.sample(100.0);  // equal is fine (two phases can share a boundary)
  EXPECT_THROW(s.sample(99.0), vkey::Error);
  // The failed call must not have consumed a sequence number.
  EXPECT_EQ(s.samples_taken(), 2u);
}

TEST(Telemetry, DisabledMetricsYieldStructurallyValidEmptySamples) {
  MetricsOn on;
  auto& c = metrics::Registry::global().counter("tlm.off.writes");
  telemetry::Sampler s = make_sampler("tlm.off.");
  metrics::set_enabled(false);
  c.add(10);  // dropped by the disabled instrument
  s.sample(0.0);
  metrics::set_enabled(true);

  const json::Value line = parse_line(s.lines().at(0));
  EXPECT_TRUE(line.at("counters").as_object().empty());
  EXPECT_TRUE(line.at("gauges").as_object().empty());
  EXPECT_TRUE(line.at("hists").as_object().empty());
}

TEST(Telemetry, JsonlDocumentIsOneParsableObjectPerLine) {
  MetricsOn on;
  auto& c = metrics::Registry::global().counter("tlm.doc.events");
  telemetry::Sampler s = make_sampler("tlm.doc.");
  s.annotate("seed", "1");
  for (int i = 0; i < 3; ++i) {
    c.add(1);
    s.sample(500.0 * i);
  }

  const std::string doc = s.to_jsonl();
  ASSERT_FALSE(doc.empty());
  EXPECT_EQ(doc.back(), '\n');
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t nl = doc.find('\n'); nl != std::string::npos;
       nl = doc.find('\n', start)) {
    lines.push_back(doc.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_EQ(lines.size(), 5u);  // header + 3 samples + summary
  for (const std::string& l : lines) EXPECT_NO_THROW(parse_line(l));
  EXPECT_EQ(parse_line(lines.front()).at("schema").as_string(),
            "vkey-telemetry/1");
  EXPECT_EQ(parse_line(lines.back()).at("summary").at("samples").as_number(),
            3.0);
  // Rendering the document must not consume the sampler: a second render
  // (and further samples) still work.
  EXPECT_EQ(s.to_jsonl(), doc);
  c.add(1);
  s.sample(2000.0);
  EXPECT_EQ(s.samples_taken(), 4u);
}

}  // namespace
}  // namespace vkey
