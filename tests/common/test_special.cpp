#include "common/special.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace vkey::special {
namespace {

TEST(Special, ErfcKnownValues) {
  EXPECT_NEAR(erfc(0.0), 1.0, 1e-12);
  EXPECT_NEAR(erfc(1.0), 0.15729920705028513, 1e-10);
  EXPECT_NEAR(erfc(-1.0), 2.0 - 0.15729920705028513, 1e-10);
}

TEST(Special, LgammaMatchesFactorials) {
  // Gamma(n) = (n-1)!
  EXPECT_NEAR(lgamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(lgamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(lgamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(lgamma(10.0), std::log(362880.0), 1e-8);
}

TEST(Special, LgammaHalf) {
  // Gamma(1/2) = sqrt(pi)
  EXPECT_NEAR(lgamma(0.5), 0.5 * std::log(M_PI), 1e-10);
}

TEST(Special, LgammaDomain) { EXPECT_THROW(lgamma(0.0), vkey::Error); }

TEST(Special, IgamComplementarity) {
  for (double a : {0.5, 1.0, 3.0, 10.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0}) {
      EXPECT_NEAR(igam(a, x) + igamc(a, x), 1.0, 1e-10)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(Special, IgamcExponentialSpecialCase) {
  // Q(1, x) = exp(-x).
  for (double x : {0.1, 1.0, 2.5, 7.0}) {
    EXPECT_NEAR(igamc(1.0, x), std::exp(-x), 1e-10);
  }
}

TEST(Special, IgamAtZero) {
  EXPECT_NEAR(igam(2.0, 0.0), 0.0, 1e-12);
  EXPECT_NEAR(igamc(2.0, 0.0), 1.0, 1e-12);
}

TEST(Special, IgamcChiSquaredKnownValue) {
  // Chi-squared survival: P(X > x) with k dof = igamc(k/2, x/2).
  // For k = 2, x = 5.991: p = 0.05.
  EXPECT_NEAR(igamc(1.0, 5.991 / 2.0), 0.05, 1e-3);
  // For k = 3, x = 7.815: p = 0.05.
  EXPECT_NEAR(igamc(1.5, 7.815 / 2.0), 0.05, 1e-3);
}

TEST(Special, IgamMonotoneInX) {
  double prev = -1.0;
  for (double x = 0.0; x < 10.0; x += 0.5) {
    const double v = igam(3.0, x);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Special, IgamDomainChecks) {
  EXPECT_THROW(igam(-1.0, 1.0), vkey::Error);
  EXPECT_THROW(igamc(1.0, -1.0), vkey::Error);
}

TEST(Special, NormalCdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-8);
  EXPECT_NEAR(normal_cdf(-1.959963985), 0.025, 1e-8);
}

TEST(Special, NormalCdfSymmetry) {
  for (double x : {0.3, 1.1, 2.7}) {
    EXPECT_NEAR(normal_cdf(x) + normal_cdf(-x), 1.0, 1e-12);
  }
}

}  // namespace
}  // namespace vkey::special
