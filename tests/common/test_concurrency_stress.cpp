// TSan-targeted stress tests for the concurrent observability primitives.
//
// The metrics registry and the bounded trace log are the only components in
// the tree that are written from several threads at once (a bench thread, a
// timer firing in protocol code, an exporter taking a snapshot). These tests
// hammer them with enough contention that ThreadSanitizer — the CI `tsan`
// job builds with -DVKEY_SANITIZE=thread — can see every ordering it cares
// about, and then assert *exact* final totals: relaxed atomics may reorder,
// but no increment is allowed to vanish.
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/alloc_stats.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace vkey::metrics {
namespace {

// ≥4 threads / ≥100k ops per instrument family, per the tooling issue.
constexpr int kThreads = 8;
constexpr int kOpsPerThread = 25000;  // 8 * 25k = 200k ops per test

TEST(ConcurrencyStress, CounterTotalsAreExactUnderContention) {
  Counter c;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c, t] {
      // Mix add(1) and wide adds so the total is sensitive to lost updates
      // of either flavor.
      for (int i = 0; i < kOpsPerThread; ++i) {
        c.add(i % 2 == 0 ? 1 : static_cast<std::uint64_t>(t) + 2);
      }
    });
  }
  for (auto& w : workers) w.join();

  std::uint64_t expected = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      expected += i % 2 == 0 ? 1 : static_cast<std::uint64_t>(t) + 2;
    }
  }
  EXPECT_EQ(c.value(), expected);
}

TEST(ConcurrencyStress, GaugeAccumulateIsExactWithIntegralDeltas) {
  // Integral deltas below 2^53 are exactly representable in a double, so
  // the CAS accumulate loop must produce a bit-exact total.
  Gauge g;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&g] {
      for (int i = 0; i < kOpsPerThread; ++i) g.add(2.0);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_DOUBLE_EQ(g.value(), 2.0 * kThreads * kOpsPerThread);
}

TEST(ConcurrencyStress, HistogramCountSumAndBucketsAreExact) {
  Histogram h(std::vector<double>{1.0, 2.0, 4.0, 8.0});
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Cycle deterministically through all five buckets (incl. overflow).
        h.observe(static_cast<double>(i % 5) * 2.0);  // 0,2,4,6,8
      }
    });
  }
  for (auto& w : workers) w.join();

  const std::uint64_t total =
      static_cast<std::uint64_t>(kThreads) * kOpsPerThread;
  EXPECT_EQ(h.count(), total);

  // Per-thread value pattern: 0→[≤1], 2→[≤2], 4→[≤4], 6→[≤8], 8→[≤8].
  const std::uint64_t per_value = total / 5;
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 5u);
  EXPECT_EQ(buckets[0], per_value);      // 0.0
  EXPECT_EQ(buckets[1], per_value);      // 2.0
  EXPECT_EQ(buckets[2], per_value);      // 4.0
  EXPECT_EQ(buckets[3], 2 * per_value);  // 6.0 and 8.0
  EXPECT_EQ(buckets[4], 0u);             // nothing above 8
  // Sum of 0+2+4+6+8 per 5-cycle, integral => exact in a double.
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(per_value) * 20.0);
}

TEST(ConcurrencyStress, RegistryFindOrCreateRacesYieldOneInstrument) {
  // All threads register the same names while hammering them; references
  // must all alias one instrument per name and no add may be lost.
  Registry& reg = Registry::global();
  const std::string name = "stress.registry.counter";
  reg.counter(name).reset();

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, &name] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Re-look up every iteration: exercises the registry lock against
        // concurrent writers, not just the Counter atomics.
        reg.counter(name).add();
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.counter(name).value(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

TEST(ConcurrencyStress, SnapshotWhileWritingIsInternallyConsistent) {
  Registry& reg = Registry::global();
  const std::string name = "stress.snapshot.counter";
  reg.counter(name).reset();

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg, &name] {
      for (int i = 0; i < kOpsPerThread; ++i) reg.counter(name).add();
    });
  }
  std::thread reader([&reg, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)reg.snapshot();
      (void)reg.to_csv();
    }
  });
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(reg.counter(name).value(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

TEST(ConcurrencyStress, TraceLogWraparoundUnderContention) {
  trace::TraceLog& log = trace::TraceLog::global();
  const bool was_enabled = log.enabled();
  log.clear();
  log.set_capacity(64);  // far below the write volume => constant wraparound
  log.set_enabled(true);

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&log, t] {
      const std::string name = "w" + std::to_string(t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        log.record(name, static_cast<double>(i), 1.0);
      }
    });
  }
  // Concurrent readers + one thread flapping the enabled switch (this is
  // what caught the original non-atomic `enabled_` flag under TSan).
  std::atomic<bool> stop{false};
  std::uint64_t enabled_reads = 0;  // consumed below so the load survives -O2
  std::thread reader([&log, &stop, &enabled_reads] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (log.enabled()) ++enabled_reads;  // races with flapper unless atomic
      (void)log.spans();
      (void)log.snapshot();
      (void)log.dropped();
    }
  });
  std::thread flapper([&log, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      log.set_enabled(false);
      log.set_enabled(true);
    }
  });
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  flapper.join();

  // Every record either sits in the buffer or was counted as dropped.
  const std::uint64_t total =
      static_cast<std::uint64_t>(kThreads) * kOpsPerThread;
  EXPECT_EQ(log.spans().size() + log.dropped(), total);
  EXPECT_LE(log.spans().size(), 64u);
  EXPECT_GE(enabled_reads, 0u);

  log.set_enabled(was_enabled);
  log.set_capacity(1 << 16);
  log.clear();
}

TEST(ConcurrencyStress, ScopedTimersFromManyThreadsObserveOnce) {
  Registry& reg = Registry::global();
  Histogram& h = reg.histogram("stress.timer.ms");
  h.reset();
  constexpr int kTimersPerThread = 12500;  // 8 * 12.5k = 100k timers

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      double fake_ms = 0.0;
      trace::NowFn now = [&fake_ms] { return fake_ms; };
      for (int i = 0; i < kTimersPerThread; ++i) {
        trace::ScopedTimer timer(h, now);
        fake_ms += 1.0;
        timer.stop();
        timer.stop();  // idempotent: must not double-observe
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.count(),
            static_cast<std::uint64_t>(kThreads) * kTimersPerThread);
  EXPECT_DOUBLE_EQ(h.sum(),
                   static_cast<double>(kThreads) * kTimersPerThread);
}

TEST(DefaultClock, OverrideRedirectsTimersAndRestores) {
  Registry& reg = Registry::global();
  Histogram& h = reg.histogram("stress.defaultclock.ms");
  h.reset();

  double virtual_ms = 100.0;
  trace::set_default_now([&virtual_ms] { return virtual_ms; });
  {
    trace::ScopedTimer timer(h);  // no explicit NowFn: uses the override
    virtual_ms += 7.0;
  }
  trace::set_default_now({});  // restore the wall clock

  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 7.0);
  // Back on the wall clock: a timer around no work observes ~0, not -100.
  {
    trace::ScopedTimer timer(h);
  }
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.sum(), 7.0);
}

TEST(DefaultClock, ToggleWhileTimersRunIsRaceFreeAndNeverMixesTimeBases) {
  // The stored NowFn is behind a mutex and each timer pins a snapshot of it
  // at start, so flipping the override while timers are mid-flight must be
  // (a) TSan-clean and (b) unable to produce a mixed-base elapsed reading.
  // The virtual clock here is pinned at +1e9 ms, far from the wall clock's
  // small monotonic values: a timer that started on one base and stopped on
  // the other would observe an elapsed time of ~±1e9 ms.
  Registry& reg = Registry::global();
  Histogram& h = reg.histogram("stress.defaultclock.toggle.ms");
  h.reset();

  constexpr int kTimers = 20000;
  std::atomic<bool> stop{false};
  std::thread toggler([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      trace::set_default_now([] { return 1e9; });
      trace::set_default_now({});
    }
  });

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      for (int i = 0; i < kTimers / kThreads; ++i) {
        trace::ScopedTimer timer(h);  // default clock: racing the toggler
        const double elapsed = timer.stop();
        // Same base at start and stop: either ~0 wall ms or exactly 0
        // virtual ms — never a cross-base difference of ~1e9.
        EXPECT_GE(elapsed, 0.0);
        EXPECT_LT(elapsed, 1e6);
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  toggler.join();
  trace::set_default_now({});  // leave the wall clock installed

  EXPECT_EQ(h.count(),
            static_cast<std::uint64_t>(kThreads) * (kTimers / kThreads));
}

TEST(ConcurrencyStress, AllocStatsCountsAreExactAcrossThreads) {
  // This binary does not link vkey_alloc_hooks, so the counters move only
  // through the direct reporting API — which makes the expected totals
  // exact, while TSan watches the relaxed atomics and the thread-local
  // pause flag for races.
  constexpr int kThreads = 8;
  constexpr int kEventsPerThread = 20'000;
  const alloc_stats::PhaseScope phase;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kEventsPerThread; ++i) {
        alloc_stats::on_alloc(16);
        if (i % 4 == 0) {
          // A paused stretch on this thread must hide exactly its own
          // events and nobody else's.
          alloc_stats::PauseScope pause;
          alloc_stats::on_alloc(1 << 20);
          alloc_stats::on_free();
        }
        alloc_stats::on_free();
      }
    });
  }
  for (auto& w : workers) w.join();

  const alloc_stats::Totals d = phase.delta();
  const auto expected =
      static_cast<std::uint64_t>(kThreads) * kEventsPerThread;
  EXPECT_EQ(d.allocations, expected);
  EXPECT_EQ(d.frees, expected);
  EXPECT_EQ(d.bytes, expected * 16);
  EXPECT_EQ(phase.live_delta(), 0);
  EXPECT_FALSE(alloc_stats::paused());
}

}  // namespace
}  // namespace vkey::metrics
