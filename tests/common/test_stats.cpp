#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace vkey::stats {
namespace {

const std::vector<double> kSeries{1.0, 2.0, 3.0, 4.0, 5.0};

TEST(Stats, Mean) { EXPECT_DOUBLE_EQ(mean(kSeries), 3.0); }

TEST(Stats, MeanOfEmptyThrows) {
  EXPECT_THROW(mean(std::vector<double>{}), vkey::Error);
}

TEST(Stats, Variance) { EXPECT_DOUBLE_EQ(variance(kSeries), 2.0); }

TEST(Stats, Stddev) { EXPECT_DOUBLE_EQ(stddev(kSeries), std::sqrt(2.0)); }

TEST(Stats, SampleStddev) {
  EXPECT_DOUBLE_EQ(sample_stddev(kSeries), std::sqrt(2.5));
}

TEST(Stats, SampleStddevNeedsTwo) {
  EXPECT_THROW(sample_stddev(std::vector<double>{1.0}), vkey::Error);
}

TEST(Stats, PearsonPerfectPositive) {
  const std::vector<double> y{2.0, 4.0, 6.0, 8.0, 10.0};
  EXPECT_NEAR(pearson(kSeries, y), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectNegative) {
  const std::vector<double> y{5.0, 4.0, 3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(kSeries, y), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero) {
  const std::vector<double> y{1.0, 1.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(pearson(kSeries, y), 0.0);
}

TEST(Stats, PearsonSizeMismatchThrows) {
  EXPECT_THROW(pearson(kSeries, std::vector<double>{1.0}), vkey::Error);
}

TEST(Stats, PearsonOfIndependentNoiseIsSmall) {
  vkey::Rng rng(5);
  std::vector<double> x(5000), y(5000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.gaussian();
    y[i] = rng.gaussian();
  }
  EXPECT_LT(std::fabs(pearson(x, y)), 0.05);
}

TEST(Stats, MinMaxMedian) {
  EXPECT_DOUBLE_EQ(min(kSeries), 1.0);
  EXPECT_DOUBLE_EQ(max(kSeries), 5.0);
  EXPECT_DOUBLE_EQ(median(kSeries), 3.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, ZscoreHasZeroMeanUnitStd) {
  const auto z = zscore(kSeries);
  EXPECT_NEAR(mean(z), 0.0, 1e-12);
  EXPECT_NEAR(stddev(z), 1.0, 1e-12);
}

TEST(Stats, ZscoreConstantSeriesIsZeros) {
  const auto z = zscore(std::vector<double>{3.0, 3.0, 3.0});
  for (double v : z) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Stats, MinMax01MapsToUnitInterval) {
  const auto m = minmax01(kSeries);
  EXPECT_DOUBLE_EQ(m.front(), 0.0);
  EXPECT_DOUBLE_EQ(m.back(), 1.0);
  EXPECT_DOUBLE_EQ(m[2], 0.5);
}

TEST(Stats, MinMax01ConstantSeriesIsHalf) {
  const auto m = minmax01(std::vector<double>{7.0, 7.0});
  EXPECT_DOUBLE_EQ(m[0], 0.5);
  EXPECT_DOUBLE_EQ(m[1], 0.5);
}

TEST(Stats, MovingAverageIdentityForWindowOne) {
  const auto m = moving_average(kSeries, 1);
  for (std::size_t i = 0; i < kSeries.size(); ++i) {
    EXPECT_DOUBLE_EQ(m[i], kSeries[i]);
  }
}

TEST(Stats, MovingAverageWindowThree) {
  const auto m = moving_average(kSeries, 3);
  EXPECT_DOUBLE_EQ(m[0], 1.0);
  EXPECT_DOUBLE_EQ(m[1], 1.5);
  EXPECT_DOUBLE_EQ(m[4], 4.0);
}

TEST(Stats, MovingAverageZeroWindowThrows) {
  EXPECT_THROW(moving_average(kSeries, 0), vkey::Error);
}

}  // namespace
}  // namespace vkey::stats
