// Stress and contract tests for the deterministic parallel layer.
//
// These live in the test_concurrency binary so the TSan CI job rebuilds
// and runs them under -DVKEY_SANITIZE=thread: the pool, the chunk cursor
// and the exception funnel are exactly the code whose orderings TSan needs
// to see. The determinism assertions are exact (EXPECT_EQ on doubles and
// whole vectors): the layer's contract is bit-identity, not closeness.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "nn/dense.h"

namespace vkey::parallel {
namespace {

TEST(Parallel, EmptyRangeIsANoOp) {
  std::atomic<int> calls{0};
  parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  const auto mapped =
      parallel_map_n(0, [](std::size_t i) { return static_cast<int>(i); });
  EXPECT_TRUE(mapped.empty());
}

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10007;  // prime: never divides evenly by grain
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Parallel, SingleLaneRunsInlineOnTheCaller) {
  const auto caller = std::this_thread::get_id();
  parallel_for(64, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  }, 1);
}

TEST(Parallel, MapPreservesInputOrder) {
  const std::vector<int> items = [] {
    std::vector<int> v(2000);
    std::iota(v.begin(), v.end(), -1000);
    return v;
  }();
  const auto out = parallel_map(
      items, [](const int& x, std::size_t i) {
        return static_cast<std::int64_t>(x) * 3 + static_cast<std::int64_t>(i);
      },
      8);
  ASSERT_EQ(out.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<std::int64_t>(items[i]) * 3 +
                          static_cast<std::int64_t>(i));
  }
}

// The core determinism guarantee: per-index hash-derived streams make the
// output a pure function of (seed, index), so every lane count — inline
// reference included — produces the same bits.
TEST(Parallel, HashDerivedStreamsAreIdenticalAcrossLaneCounts) {
  auto run = [](std::size_t threads) {
    return parallel_map_n(
        513,
        [](std::size_t i) {
          vkey::Rng rng(hash_combine64(0xabcdefULL, i));
          double acc = 0.0;
          for (int k = 0; k < 16; ++k) acc += rng.uniform(-1.0, 1.0);
          return acc;
        },
        threads);
  };
  const auto reference = run(1);
  EXPECT_EQ(run(2), reference);
  EXPECT_EQ(run(5), reference);
  EXPECT_EQ(run(64), reference);  // heavy oversubscription
}

TEST(Parallel, ExceptionPropagatesLowestObservedIndex) {
  try {
    parallel_for(
        1000,
        [](std::size_t i) {
          if (i % 250 == 3) {  // throws at 3, 253, 503, 753
            throw std::runtime_error("boom@" + std::to_string(i));
          }
        },
        8);
    FAIL() << "parallel_for swallowed the exception";
  } catch (const std::runtime_error& e) {
    // The funnel keeps the lowest *observed* throwing index; with chunked
    // claiming that is not always the global minimum, but it must be one
    // of the throwing indices and the pool must stay usable afterwards.
    const std::string what = e.what();
    EXPECT_TRUE(what == "boom@3" || what == "boom@253" ||
                what == "boom@503" || what == "boom@753")
        << what;
  }
  // Pool is intact: a follow-up run still covers everything.
  std::atomic<std::size_t> n{0};
  parallel_for(128, [&](std::size_t) { n.fetch_add(1); }, 8);
  EXPECT_EQ(n.load(), 128u);
}

TEST(Parallel, OversubscriptionStress) {
  // Many concurrent parallel_for calls from independent threads, each
  // requesting more lanes than the machine has: the shared pool must
  // neither deadlock nor drop indices.
  constexpr int kCallers = 6;
  constexpr std::size_t kN = 4096;
  std::vector<std::uint64_t> sums(kCallers, 0);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([c, &sums] {
      std::vector<std::uint64_t> out(kN, 0);
      parallel_for(
          kN, [&](std::size_t i) { out[i] = static_cast<std::uint64_t>(i); },
          16);
      sums[static_cast<std::size_t>(c)] =
          std::accumulate(out.begin(), out.end(), std::uint64_t{0});
    });
  }
  for (auto& t : callers) t.join();
  const std::uint64_t expected = kN * (kN - 1) / 2;
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(sums[static_cast<std::size_t>(c)], expected) << "caller " << c;
  }
}

TEST(Parallel, PrivatePoolDrainsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3u);
  std::atomic<int> done{0};
  constexpr int kTasks = 500;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  // The destructor joins after the queue drains; poll first so the
  // assertion failure (if any) is attributable.
  while (done.load() < kTasks) std::this_thread::yield();
  EXPECT_EQ(done.load(), kTasks);
}

TEST(Parallel, DefaultThreadsOverrideAndRestore) {
  const std::size_t startup = default_threads();
  EXPECT_GE(startup, 1u);
  set_default_threads(3);
  EXPECT_EQ(default_threads(), 3u);
  set_default_threads(0);  // restore
  EXPECT_EQ(default_threads(), startup);
}

TEST(Parallel, ConcurrentPackedWeightRepackIsRaceFree) {
  // Many lanes hit a layer whose packed-weight cache is stale at the same
  // time: PackGuard (nn/gemm.h) must let exactly one lane repack while the
  // rest either wait or read the fresh cache — TSan watches the orderings
  // here, and every lane must still see bit-exact results.
  vkey::Rng rng(42);
  nn::Dense layer(17, 23, rng, nn::Activation::kTanh);
  const nn::Vec x = [&] {
    nn::Vec v(17);
    for (double& e : v) e = rng.uniform(-1.0, 1.0);
    return v;
  }();
  for (int round = 0; round < 4; ++round) {
    // Stale the cache between rounds through the sanctioned bump() path.
    nn::Parameter* w = layer.parameters()[0];
    w->value[static_cast<std::size_t>(round)] += 0.125;
    w->bump();
    const nn::Vec want = layer.infer_reference(x);
    std::vector<nn::Vec> got(64);
    parallel_for(
        got.size(), [&](std::size_t i) { got[i] = layer.infer(x); }, 8);
    for (const auto& y : got) EXPECT_EQ(y, want);
  }
}

}  // namespace
}  // namespace vkey::parallel
