// Exactness of the allocation accounting with the hooks actually linked:
// this binary (and only this one besides bench_soak) links vkey_alloc_hooks,
// so operator new/delete report every block here. Kept out of test_common —
// interposing the global allocator there would turn every other suite's
// heap noise into accounting noise, and the replacement operators would
// collide with test_trace_alloc's own counting allocator.
#include "common/alloc_stats.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace vkey {
namespace {

TEST(AllocStats, HooksAreInstalledInThisBinary) {
  // gtest infrastructure has allocated plenty before this line runs.
  EXPECT_TRUE(alloc_stats::hooks_installed());
}

TEST(AllocStats, CountsBlocksAndBytesExactly) {
  constexpr std::size_t kBlocks = 64;
  constexpr std::size_t kBytes = 48;
  const alloc_stats::PhaseScope phase;
  std::vector<void*> blocks;
  blocks.reserve(kBlocks + 1);  // one vector grow, counted below
  for (std::size_t i = 0; i < kBlocks; ++i) {
    blocks.push_back(::operator new(kBytes));
  }
  const alloc_stats::Totals mid = phase.delta();
  // kBlocks explicit allocations plus the vector's single buffer.
  EXPECT_EQ(mid.allocations, kBlocks + 1);
  EXPECT_GE(mid.bytes, kBlocks * kBytes);
  EXPECT_EQ(phase.live_delta(),
            static_cast<std::int64_t>(kBlocks + 1));

  for (void* p : blocks) ::operator delete(p);
  blocks = std::vector<void*>();  // release the buffer too
  EXPECT_EQ(phase.live_delta(), 0);
  const alloc_stats::Totals end = phase.delta();
  EXPECT_EQ(end.allocations, end.frees);
}

TEST(AllocStats, PauseScopeHidesThisThreadsTraffic) {
  const alloc_stats::PhaseScope phase;
  {
    alloc_stats::PauseScope pause;
    EXPECT_TRUE(alloc_stats::paused());
    auto p = std::make_unique<std::string>(
        "long enough to defeat the small-string optimisation buffer");
    p.reset();
    EXPECT_EQ(phase.delta().allocations, 0u);
    {
      alloc_stats::PauseScope nested;  // nesting must not re-enable early
      EXPECT_TRUE(alloc_stats::paused());
    }
    EXPECT_TRUE(alloc_stats::paused());
  }
  EXPECT_FALSE(alloc_stats::paused());
  void* p = ::operator new(16);
  EXPECT_EQ(phase.delta().allocations, 1u);
  ::operator delete(p);
  EXPECT_EQ(phase.live_delta(), 0);
}

TEST(AllocStats, SteadyStateChurnHasZeroLiveGrowth) {
  // The soak gate in miniature: repeated identical alloc/free rounds must
  // leave live_blocks unchanged round over round.
  auto churn = [] {
    std::vector<std::unique_ptr<int[]>> v;
    for (int i = 0; i < 100; ++i) v.push_back(std::make_unique<int[]>(32));
  };
  churn();  // warm-up (allocator pools, vector growth heuristics)
  const alloc_stats::PhaseScope phase;
  for (int round = 0; round < 5; ++round) {
    churn();
    EXPECT_EQ(phase.live_delta(), 0) << "round " << round;
  }
  const alloc_stats::Totals d = phase.delta();
  EXPECT_EQ(d.allocations, d.frees);
  EXPECT_GT(d.allocations, 0u);
}

TEST(AllocStats, PublishMetricsExportsTheAllocGauges) {
  const bool prev = metrics::enabled();
  metrics::set_enabled(true);
  alloc_stats::publish_metrics();
  const json::Value snap = metrics::Registry::global().snapshot();
  const alloc_stats::Totals now = alloc_stats::totals();
  const json::Value& gauges = snap.at("gauges");
  ASSERT_NE(gauges.find("alloc.allocations"), nullptr);
  ASSERT_NE(gauges.find("alloc.frees"), nullptr);
  ASSERT_NE(gauges.find("alloc.bytes"), nullptr);
  ASSERT_NE(gauges.find("alloc.live_blocks"), nullptr);
  // The published values are a snapshot no newer than `now`.
  EXPECT_LE(gauges.at("alloc.allocations").at("value").as_number(),
            static_cast<double>(now.allocations));
  EXPECT_GT(gauges.at("alloc.allocations").at("value").as_number(), 0.0);
  metrics::set_enabled(prev);
}

}  // namespace
}  // namespace vkey
