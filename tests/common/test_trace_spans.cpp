// Hierarchical span trees: parent links, lane annotation, ring wraparound
// consistency, and the canonical Chrome trace export (dense ids, (start, seq)
// order, virtual-only filtering, thread-count invariance).
#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/trace.h"

namespace vkey::trace {
namespace {

metrics::Histogram& test_hist() {
  return metrics::Registry::global().histogram("test.trace_spans.ms");
}

/// RAII guard: every test runs against a clean, enabled global log and
/// leaves it disabled and empty for its neighbours.
struct LogFixture {
  TraceLog& log = TraceLog::global();
  LogFixture() {
    log.clear();
    log.set_capacity(1 << 16);
    log.set_enabled(true);
  }
  ~LogFixture() {
    log.set_enabled(false);
    log.set_capacity(1 << 16);
    log.clear();
  }
};

TEST(SpanTree, NestedTimersLinkChildToParent) {
  LogFixture fx;
  std::uint64_t outer_id = 0, inner_id = 0;
  {
    ScopedTimer outer(test_hist(), "outer");
    outer_id = outer.span_id();
    ASSERT_NE(outer_id, 0u);
    EXPECT_EQ(current_parent(), outer_id);
    {
      ScopedTimer inner(test_hist(), "inner");
      inner_id = inner.span_id();
      EXPECT_EQ(current_parent(), inner_id);
    }
    EXPECT_EQ(current_parent(), outer_id);
  }
  EXPECT_EQ(current_parent(), 0u);

  const auto spans = fx.log.spans();
  ASSERT_EQ(spans.size(), 2u);
  // RAII order: the inner span is recorded first (it stops first).
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].id, inner_id);
  EXPECT_EQ(spans[0].parent, outer_id);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent, 0u);
  // Ids are handed out in start order: the parent started first.
  EXPECT_LT(spans[1].id, spans[0].id);
}

TEST(SpanTree, ThreeLevelTreeReconstructsFromTheLog) {
  LogFixture fx;
  {
    ScopedTimer root(test_hist(), "root");
    {
      ScopedTimer mid(test_hist(), "mid");
      { ScopedTimer leaf(test_hist(), "leaf"); }
    }
    { ScopedTimer sibling(test_hist(), "sibling"); }
  }
  const auto spans = fx.log.spans();
  ASSERT_EQ(spans.size(), 4u);
  std::map<std::string, Span> by_name;
  for (const auto& s : spans) by_name[s.name] = s;
  EXPECT_EQ(by_name.at("root").parent, 0u);
  EXPECT_EQ(by_name.at("mid").parent, by_name.at("root").id);
  EXPECT_EQ(by_name.at("leaf").parent, by_name.at("mid").id);
  EXPECT_EQ(by_name.at("sibling").parent, by_name.at("root").id);
}

TEST(SpanTree, UnnamedTimersTakeNoIdAndDoNotParent) {
  LogFixture fx;
  {
    ScopedTimer named(test_hist(), "named");
    ScopedTimer unnamed(test_hist());  // histogram-only
    EXPECT_EQ(unnamed.span_id(), 0u);
    // The unnamed timer must not capture the ambient slot: a child still
    // parents under "named".
    { ScopedTimer child(test_hist(), "child"); }
  }
  const auto spans = fx.log.spans();
  ASSERT_EQ(spans.size(), 2u);
  std::map<std::string, Span> by_name;
  for (const auto& s : spans) by_name[s.name] = s;
  EXPECT_EQ(by_name.at("child").parent, by_name.at("named").id);
}

TEST(SpanTree, AttributesSurviveIntoTheLogAndTheExport) {
  LogFixture fx;
  {
    ScopedTimer t(test_hist(), "attributed");
    t.attr("block", 7).attr("ratio", 0.5).attr("reason", "duplicate");
  }
  const auto spans = fx.log.spans();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].attrs.size(), 3u);
  EXPECT_EQ(spans[0].attrs[0].key, "block");
  EXPECT_EQ(spans[0].attrs[0].i, 7);
  EXPECT_EQ(spans[0].attrs[1].key, "ratio");
  EXPECT_DOUBLE_EQ(spans[0].attrs[1].d, 0.5);
  EXPECT_EQ(spans[0].attrs[2].s, "duplicate");

  const json::Value doc = fx.log.chrome_trace();
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 1u);
  const json::Value& args = events[0].at("args");
  EXPECT_DOUBLE_EQ(args.at("block").as_number(), 7.0);
  EXPECT_DOUBLE_EQ(args.at("ratio").as_number(), 0.5);
  EXPECT_EQ(args.at("reason").as_string(), "duplicate");
}

TEST(LaneAnnotation, LaneScopeInstallsLaneAndAmbientParent) {
  LogFixture fx;
  ASSERT_EQ(current_lane(), 0u);
  {
    LaneScope lane(3, 42);
    EXPECT_EQ(current_lane(), 3u);
    EXPECT_EQ(current_parent(), 42u);
    { ScopedTimer t(test_hist(), "on-lane"); }
  }
  EXPECT_EQ(current_lane(), 0u);
  EXPECT_EQ(current_parent(), 0u);

  const auto spans = fx.log.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].lane, 3u);
  EXPECT_EQ(spans[0].parent, 42u);
}

TEST(LaneAnnotation, ParallelForChildrenParentUnderTheSubmittingStage) {
  LogFixture fx;
  std::uint64_t stage_id = 0;
  {
    ScopedTimer stage(test_hist(), "stage");
    stage_id = stage.span_id();
    parallel::parallel_for(
        32,
        [](std::size_t i) {
          ScopedTimer t(test_hist(), "job");
          t.attr("i", i);
        },
        4);
  }
  const auto spans = fx.log.spans();
  ASSERT_EQ(spans.size(), 33u);
  std::size_t jobs = 0;
  for (const auto& s : spans) {
    if (s.name != "job") continue;
    ++jobs;
    // Whether a chunk ran on the caller (lane 0) or a borrowed worker
    // (lane 1..3), the span hangs off the stage that spawned the fan-out.
    EXPECT_EQ(s.parent, stage_id);
    EXPECT_LT(s.lane, 4u);
  }
  EXPECT_EQ(jobs, 32u);
}

TEST(Wraparound, RingKeepsNewestSpansAndCountsDrops) {
  LogFixture fx;
  fx.log.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    ScopedTimer t(test_hist(), "s" + std::to_string(i));
  }
  const auto spans = fx.log.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(fx.log.dropped(), 6u);
  // Oldest-first eviction: the survivors are the last four, in order.
  EXPECT_EQ(spans[0].name, "s6");
  EXPECT_EQ(spans[3].name, "s9");
}

TEST(Wraparound, ExportNeverEmitsDanglingParentRefs) {
  LogFixture fx;
  fx.log.set_capacity(3);
  {
    ScopedTimer root(test_hist(), "root");
    // Each child records on destruction; the root records last and the tiny
    // ring then holds children whose parent span was never retained, plus a
    // root whose children were partly evicted.
    for (int i = 0; i < 5; ++i) {
      ScopedTimer t(test_hist(), "child" + std::to_string(i));
    }
  }
  const json::Value doc = fx.log.chrome_trace();
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 3u);
  std::set<double> ids;
  for (const auto& ev : events) {
    ids.insert(ev.at("args").at("id").as_number());
  }
  for (const auto& ev : events) {
    const json::Value* parent = ev.at("args").find("parent");
    // A parent reference is either resolvable inside the export or omitted
    // (evicted parents must not leave dangling ids behind).
    if (parent != nullptr) {
      EXPECT_EQ(ids.count(parent->as_number()), 1u);
    }
  }
}

TEST(ChromeTrace, CanonicalOrderDenseIdsAndSchema) {
  LogFixture fx;
  double t = 100.0;
  NowFn clock = [&t] { return t; };
  {
    ScopedTimer a(test_hist(), clock, "a");
    t += 5.0;
    {
      ScopedTimer b(test_hist(), clock, "b");
      t += 5.0;
    }
  }
  fx.log.instant("marker", 103.0, Domain::kVirtual, {Attr("k", 1)});

  const json::Value doc = fx.log.chrome_trace();
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 3u);

  // Canonical (start, seq) order with ids remapped to dense indices.
  double prev_ts = -1.0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& ev = events[i];
    EXPECT_DOUBLE_EQ(ev.at("args").at("id").as_number(),
                     static_cast<double>(i));
    EXPECT_GE(ev.at("ts").as_number(), prev_ts);
    prev_ts = ev.at("ts").as_number();
  }
  // a starts at 100 ms -> 1e5 µs; b at 105 ms; the instant at 103 ms lands
  // between them in start order despite being recorded last.
  EXPECT_EQ(events[0].at("name").as_string(), "a");
  EXPECT_DOUBLE_EQ(events[0].at("ts").as_number(), 100000.0);
  EXPECT_EQ(events[0].at("ph").as_string(), "X");
  EXPECT_DOUBLE_EQ(events[0].at("dur").as_number(), 10000.0);
  EXPECT_EQ(events[1].at("name").as_string(), "marker");
  EXPECT_EQ(events[1].at("ph").as_string(), "i");
  EXPECT_EQ(events[1].at("s").as_string(), "t");
  EXPECT_EQ(events[2].at("name").as_string(), "b");
  EXPECT_DOUBLE_EQ(events[2].at("args").at("parent").as_number(), 0.0);
}

TEST(ChromeTrace, VirtualOnlyFilterDropsWallSpans) {
  LogFixture fx;
  double t = 0.0;
  NowFn clock = [&t] { return t; };
  { ScopedTimer wall(test_hist(), "wall-span"); }
  {
    ScopedTimer virt(test_hist(), clock, "virtual-span");
    t += 1.0;
  }
  const json::Value all_doc = fx.log.chrome_trace(false);
  EXPECT_EQ(all_doc.at("traceEvents").as_array().size(), 2u);
  const json::Value virt_doc = fx.log.chrome_trace(true);
  const auto& virt_only = virt_doc.at("traceEvents").as_array();
  ASSERT_EQ(virt_only.size(), 1u);
  EXPECT_EQ(virt_only[0].at("name").as_string(), "virtual-span");
  EXPECT_EQ(virt_only[0].at("cat").as_string(), "virtual");
  // The filtered export renumbers from zero.
  EXPECT_DOUBLE_EQ(virt_only[0].at("args").at("id").as_number(), 0.0);
}

/// One simulated run: a parallel wall-clock phase (nondeterministic thread
/// interleaving, lane-tagged spans) followed by a single-threaded virtual
/// phase, the shape vkey_sim produces. Returns the virtual-only export.
std::string run_mixed_workload(std::size_t threads) {
  TraceLog& log = TraceLog::global();
  log.clear();
  log.set_capacity(1 << 16);
  log.set_enabled(true);
  {
    ScopedTimer stage(test_hist(), "wall-stage");
    parallel::parallel_for(
        48,
        [](std::size_t i) {
          ScopedTimer t(test_hist(), "wall-job");
          t.attr("i", i);
        },
        threads);
  }
  double t = 0.0;
  NowFn clock = [&t] { return t; };
  for (int attempt = 0; attempt < 3; ++attempt) {
    ScopedTimer a(test_hist(), clock, "virtual-attempt");
    a.attr("attempt", attempt);
    log.instant("virtual-event", t + 0.25, Domain::kVirtual,
                {Attr("attempt", attempt)});
    t += 10.0;
  }
  const std::string out = log.chrome_trace(true).dump(0);
  log.set_enabled(false);
  log.clear();
  return out;
}

TEST(ChromeTrace, VirtualExportIsByteIdenticalAcrossThreadCounts) {
  // The determinism contract: wall spans consume a fixed *count* of ids in
  // a schedule-dependent order, but the virtual phase runs single-threaded
  // after them, so after the dense remap the virtual-only export cannot
  // depend on the lane count.
  const std::string one = run_mixed_workload(1);
  const std::string four = run_mixed_workload(4);
  EXPECT_EQ(one, four);
  EXPECT_NE(one.find("virtual-attempt"), std::string::npos);
  EXPECT_EQ(one.find("wall-"), std::string::npos);
}

TEST(ChromeTrace, DroppedCountIsReportedInOtherData) {
  LogFixture fx;
  fx.log.set_capacity(2);
  for (int i = 0; i < 5; ++i) {
    ScopedTimer t(test_hist(), "s");
  }
  const json::Value doc = fx.log.chrome_trace();
  EXPECT_DOUBLE_EQ(doc.at("otherData").at("dropped").as_number(), 3.0);
}

}  // namespace
}  // namespace vkey::trace
