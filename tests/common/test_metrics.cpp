// Metrics registry: bucketing, concurrency, scoped timers, exporters.
#include <atomic>
#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace vkey::metrics {
namespace {

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentAddsDontLoseIncrements) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, SetAndAccumulate) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Gauge, ConcurrentAddsSumExactlyWithIntegralDeltas) {
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.add(1.0);
    });
  }
  for (auto& w : workers) w.join();
  // Every delta is exactly representable, so the CAS loop must not lose
  // any update regardless of interleaving.
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads) * kPerThread);
}

TEST(Histogram, ObservationsLandInTheRightBuckets) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (bound is inclusive)
  h.observe(5.0);    // <= 10
  h.observe(99.0);   // <= 100
  h.observe(1e6);    // overflow
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 5.0 + 99.0 + 1e6, 1e-9);
}

TEST(Histogram, QuantileInterpolatesWithinBuckets) {
  Histogram h({10.0, 20.0, 30.0});
  for (int i = 0; i < 100; ++i) h.observe(5.0);   // all in first bucket
  EXPECT_LE(h.quantile(0.5), 10.0);
  EXPECT_GE(h.quantile(0.5), 0.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  for (int i = 0; i < 50; ++i) h.observe(15.0);
  for (int i = 0; i < 50; ++i) h.observe(25.0);
  const double p75 = h.quantile(0.75);
  EXPECT_GE(p75, 20.0);
  EXPECT_LE(p75, 30.0);
}

TEST(Histogram, TracksMaxAndOverflowCount) {
  Histogram h({1.0, 10.0});
  EXPECT_DOUBLE_EQ(h.max(), 0.0);  // empty: neutral, not -inf
  h.observe(0.5);
  h.observe(250.0);  // beyond the last bound
  h.observe(90.0);   // also overflow
  EXPECT_EQ(h.overflow_count(), 2u);
  EXPECT_DOUBLE_EQ(h.max(), 250.0);
  h.reset();
  EXPECT_EQ(h.overflow_count(), 0u);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

// Regression: values beyond the last finite bound used to be silently
// folded into the top bucket's bound — a distribution sitting entirely in
// the overflow bucket reported p99 == bounds.back() no matter how far out
// the tail actually was.
TEST(Histogram, OverflowBucketQuantilesUseTheObservedMax) {
  Histogram h({1.0, 10.0});
  for (int i = 0; i < 100; ++i) h.observe(1000.0);
  // All mass is in the overflow bucket [10, max]; quantiles must move past
  // the last finite bound instead of clamping to it.
  EXPECT_GT(h.quantile(0.99), 10.0);
  EXPECT_LE(h.quantile(0.99), 1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);  // p100 is the observed max

  // Mixed case: half in-range, half overflow — the median stays finite
  // while the tail quantile reaches into [10, max].
  Histogram m({1.0, 10.0});
  for (int i = 0; i < 50; ++i) m.observe(5.0);
  for (int i = 0; i < 50; ++i) m.observe(500.0);
  EXPECT_LE(m.quantile(0.5), 10.0);
  EXPECT_GT(m.quantile(0.99), 10.0);
  EXPECT_EQ(m.overflow_count(), 50u);
}

TEST(Gauge, TracksHighAndLowWatermarks) {
  Gauge g;
  // Unwritten gauges report neutral watermarks, not ±inf sentinels.
  EXPECT_DOUBLE_EQ(g.high_watermark(), 0.0);
  EXPECT_DOUBLE_EQ(g.low_watermark(), 0.0);
  g.set(5.0);
  g.set(-3.0);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.high_watermark(), 5.0);
  EXPECT_DOUBLE_EQ(g.low_watermark(), -3.0);
  g.add(10.0);  // accumulate path must maintain watermarks too
  EXPECT_DOUBLE_EQ(g.high_watermark(), 12.0);
  // Window boundary: watermarks re-arm to the live value, not to zero.
  g.reset_watermarks();
  EXPECT_DOUBLE_EQ(g.high_watermark(), 12.0);
  EXPECT_DOUBLE_EQ(g.low_watermark(), 12.0);
  g.set(1.0);
  EXPECT_DOUBLE_EQ(g.low_watermark(), 1.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.high_watermark(), 0.0);
  EXPECT_DOUBLE_EQ(g.low_watermark(), 0.0);
}

TEST(Gauge, WatermarksUnderConcurrentWritesKeepTheExtremes) {
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&g, t] {
      for (int i = 0; i < kPerThread; ++i) {
        g.set(static_cast<double>(t * kPerThread + i));
      }
    });
  }
  for (auto& w : workers) w.join();
  // The global extremes were each written by exactly one thread; the
  // monotone CAS must not lose them regardless of interleaving.
  EXPECT_DOUBLE_EQ(g.high_watermark(),
                   static_cast<double>(kThreads * kPerThread - 1));
  EXPECT_DOUBLE_EQ(g.low_watermark(), 0.0);
}

TEST(Histogram, RejectsEmptyOrUnsortedBounds) {
  EXPECT_THROW(Histogram({}), vkey::Error);
  EXPECT_THROW(Histogram({2.0, 1.0}), vkey::Error);
}

TEST(Registry, FindOrCreateReturnsStableReferences) {
  Registry reg;
  Counter& a = reg.counter("test.frames");
  Counter& b = reg.counter("test.frames");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(reg.counter("test.frames").value(), 3u);

  Histogram& h1 = reg.histogram("test.lat", {1.0, 2.0});
  Histogram& h2 = reg.histogram("test.lat", {5.0, 6.0, 7.0});
  EXPECT_EQ(&h1, &h2);  // original bounds win
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(Registry, ResetZeroesValuesButKeepsRegistrations) {
  Registry reg;
  Counter& c = reg.counter("test.c");
  reg.gauge("test.g").set(7.0);
  reg.histogram("test.h", {1.0}).observe(0.5);
  c.add(9);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);  // same reference, zeroed
  EXPECT_DOUBLE_EQ(reg.gauge("test.g").value(), 0.0);
  EXPECT_EQ(reg.histogram("test.h").count(), 0u);
}

TEST(Registry, SnapshotIsSortedAndCompleteAndCsvMatches) {
  Registry reg;
  reg.counter("z.last").add(1);
  reg.counter("a.first").add(2);
  reg.gauge("mid.gauge").set(3.5);
  reg.histogram("lat.ms", {1.0, 10.0}).observe(0.2);

  const json::Value snap = reg.snapshot();
  const auto& counters = snap.at("counters").as_object();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "a.first");  // sorted by name
  EXPECT_EQ(counters[1].first, "z.last");
  const auto& g = snap.at("gauges").at("mid.gauge");
  EXPECT_DOUBLE_EQ(g.at("value").as_number(), 3.5);
  EXPECT_DOUBLE_EQ(g.at("high").as_number(), 3.5);
  EXPECT_DOUBLE_EQ(g.at("low").as_number(), 3.5);
  const auto& h = snap.at("histograms").at("lat.ms");
  EXPECT_DOUBLE_EQ(h.at("count").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(h.at("overflow").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(h.at("max").as_number(), 0.2);

  const std::string csv = reg.to_csv();
  EXPECT_NE(csv.find("counter,a.first,value,2"), std::string::npos);
  EXPECT_NE(csv.find("gauge,mid.gauge,value,3.5"), std::string::npos);
  EXPECT_NE(csv.find("gauge,mid.gauge,high,3.5"), std::string::npos);
  EXPECT_NE(csv.find("gauge,mid.gauge,low,3.5"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat.ms,count,1"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat.ms,overflow,0"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat.ms,max,0.2"), std::string::npos);
}

TEST(Registry, CsvCarriesQuantileRowsPerHistogram) {
  Registry reg;
  Histogram& h = reg.histogram("stage.ms", {10.0, 20.0, 30.0});
  for (int i = 0; i < 50; ++i) h.observe(15.0);
  for (int i = 0; i < 50; ++i) h.observe(25.0);
  const std::string csv = reg.to_csv();
  EXPECT_NE(csv.find("histogram,stage.ms,p50,"), std::string::npos);
  EXPECT_NE(csv.find("histogram,stage.ms,p90,"), std::string::npos);
  EXPECT_NE(csv.find("histogram,stage.ms,p99,"), std::string::npos);
  // The row values must be the histogram's own interpolated quantiles.
  EXPECT_NE(csv.find("histogram,stage.ms,p50," +
                     json::format_number(h.quantile(0.5))),
            std::string::npos);
  EXPECT_NE(csv.find("histogram,stage.ms,p99," +
                     json::format_number(h.quantile(0.99))),
            std::string::npos);
}

TEST(Registry, CsvEscapesDelimitersAndQuotesInNames) {
  Registry reg;
  reg.counter("lora.sf7,bw125").add(1);
  reg.gauge("rssi \"raw\" dBm").set(-92.0);
  reg.histogram("plain.name", {1.0}).observe(0.5);

  const std::string csv = reg.to_csv();
  // RFC 4180: the comma-bearing name is quoted so the column count holds.
  EXPECT_NE(csv.find("counter,\"lora.sf7,bw125\",value,1"),
            std::string::npos);
  // Inner quotes are doubled inside the quoted field.
  EXPECT_NE(csv.find("gauge,\"rssi \"\"raw\"\" dBm\",value,-92"),
            std::string::npos);
  // Names without delimiters stay unquoted.
  EXPECT_NE(csv.find("histogram,plain.name,count,1"), std::string::npos);

  // Every line still splits into exactly four columns when parsed with
  // quote awareness.
  std::istringstream lines(csv);
  std::string line;
  while (std::getline(lines, line)) {
    std::size_t cols = 1;
    bool quoted = false;
    for (const char c : line) {
      if (c == '"') quoted = !quoted;
      else if (c == ',' && !quoted) ++cols;
    }
    EXPECT_FALSE(quoted) << line;
    EXPECT_EQ(cols, 4u) << line;
  }
}

TEST(EnabledSwitch, DisabledInstrumentsDropWrites) {
  Counter c;
  Gauge g;
  Histogram h({1.0});
  set_enabled(false);
  c.add(5);
  g.set(5.0);
  h.observe(0.5);
  set_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(ScopedTimer, ObservesIntoHistogramOnDestruction) {
  Histogram h(default_time_buckets_ms());
  {
    trace::ScopedTimer t(h);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
}

TEST(ScopedTimer, StopIsIdempotentAndReturnsElapsed) {
  Histogram h(default_time_buckets_ms());
  trace::ScopedTimer t(h);
  const double first = t.stop();
  const double second = t.stop();
  EXPECT_GE(first, 0.0);
  EXPECT_EQ(second, 0.0);  // already stopped
  EXPECT_EQ(h.count(), 1u);  // destruction must not observe again
}

TEST(ScopedTimer, CustomNowFnMeasuresVirtualTime) {
  Histogram h({10.0, 100.0, 1000.0});
  double virtual_ms = 100.0;
  {
    trace::ScopedTimer t(h, [&virtual_ms] { return virtual_ms; });
    virtual_ms = 142.0;  // the "clock" advances 42 virtual ms
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_NEAR(h.sum(), 42.0, 1e-12);
}

TEST(ScopedTimer, DisabledMetricsSkipTheClockEntirely) {
  Histogram h({1.0});
  int clock_reads = 0;
  set_enabled(false);
  {
    trace::ScopedTimer t(h, [&clock_reads] {
      ++clock_reads;
      return 0.0;
    });
  }
  set_enabled(true);
  EXPECT_EQ(clock_reads, 0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(TraceLog, RecordsSpansWhenEnabledAndBoundsCapacity) {
  trace::TraceLog& log = trace::TraceLog::global();
  log.clear();
  log.set_enabled(true);
  log.set_capacity(4);
  Histogram h({1.0});
  for (int i = 0; i < 6; ++i) {
    trace::ScopedTimer t(h, "span");
  }
  EXPECT_EQ(log.spans().size(), 4u);
  EXPECT_EQ(log.dropped(), 2u);
  const json::Value snap = log.snapshot();
  EXPECT_DOUBLE_EQ(snap.at("dropped").as_number(), 2.0);
  EXPECT_EQ(snap.at("spans").as_array().size(), 4u);
  log.set_enabled(false);
  log.clear();
}

}  // namespace
}  // namespace vkey::metrics
