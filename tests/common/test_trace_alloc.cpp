// Allocation audit for the ScopedTimer fast paths.
//
// The disabled paths are on the pipeline's per-sample hot loop, so they must
// not touch the heap: with VKEY_METRICS off a timer is a handful of loads;
// with metrics on but the TraceLog disabled a *named* timer must still skip
// the name copy and attribute storage entirely. This binary replaces the
// global allocator with a counting one (which is why these tests live alone:
// the counter would be noise in any shared binary) and asserts exact zero
// allocation across construction, attr() calls, and destruction.
#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/trace.h"

namespace {

std::atomic<std::size_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace vkey::trace {
namespace {

metrics::Histogram& test_hist() {
  static metrics::Histogram& h =
      metrics::Registry::global().histogram("test.trace_alloc.ms");
  return h;
}

/// Allocations performed by `fn` after a warm-up call (the first run may
/// lazily initialize statics; steady state is what the hot loop sees).
template <typename Fn>
std::size_t allocations_in(Fn&& fn) {
  fn();  // warm up
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  fn();
  return g_allocations.load(std::memory_order_relaxed) - before;
}

TEST(ScopedTimerAlloc, DisabledMetricsPathIsAllocationFree) {
  metrics::Histogram& h = test_hist();
  TraceLog::global().set_enabled(true);  // even with the log on
  metrics::set_enabled(false);
  const std::size_t n = allocations_in([&h] {
    ScopedTimer t(h, "pipeline.reconcile_block");
    t.attr("block", 7).attr("reason", "duplicate");
  });
  metrics::set_enabled(true);
  TraceLog::global().set_enabled(false);
  TraceLog::global().clear();
  EXPECT_EQ(n, 0u);
}

TEST(ScopedTimerAlloc, NamedTimerWithTraceLogDisabledIsAllocationFree) {
  metrics::Histogram& h = test_hist();
  ASSERT_TRUE(metrics::enabled());
  ASSERT_FALSE(TraceLog::global().enabled());
  const std::size_t n = allocations_in([&h] {
    ScopedTimer t(h, "pipeline.reconcile_block");
    t.attr("block", 7).attr("reason", "duplicate");
  });
  EXPECT_EQ(n, 0u);
}

TEST(ScopedTimerAlloc, UnnamedTimerIsAllocationFreeEvenWhileTracing) {
  metrics::Histogram& h = test_hist();
  TraceLog::global().set_enabled(true);
  const std::size_t n = allocations_in([&h] { ScopedTimer t(h); });
  TraceLog::global().set_enabled(false);
  TraceLog::global().clear();
  EXPECT_EQ(n, 0u);
}

TEST(ScopedTimerAlloc, TracingTimerDoesAllocate) {
  // Control: the counter actually counts — a recording named span copies
  // its name into the log, which cannot be free.
  metrics::Histogram& h = test_hist();
  TraceLog::global().set_enabled(true);
  const std::size_t n = allocations_in([&h] {
    ScopedTimer t(h, "a span name comfortably beyond any SSO buffer");
  });
  TraceLog::global().set_enabled(false);
  TraceLog::global().clear();
  EXPECT_GT(n, 0u);
}

}  // namespace
}  // namespace vkey::trace
