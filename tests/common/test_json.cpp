// JSON document model: formatting, escaping, parse/dump round-trips, and
// the table exporter path bench_runner relies on.
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/json.h"
#include "common/table.h"

namespace vkey::json {
namespace {

TEST(FormatNumber, IntegralValuesPrintWithoutDecimalPoint) {
  EXPECT_EQ(format_number(0.0), "0");
  EXPECT_EQ(format_number(42.0), "42");
  EXPECT_EQ(format_number(-7.0), "-7");
  EXPECT_EQ(format_number(1e15), "1000000000000000");
}

TEST(FormatNumber, FractionsUseShortestRoundTrip) {
  EXPECT_EQ(format_number(3.5), "3.5");
  EXPECT_EQ(format_number(0.1), "0.1");
  const std::string s = format_number(1.0 / 3.0);
  EXPECT_DOUBLE_EQ(std::stod(s), 1.0 / 3.0);
}

TEST(FormatNumber, RejectsNonFiniteValues) {
  EXPECT_THROW(format_number(std::numeric_limits<double>::infinity()),
               vkey::Error);
  EXPECT_THROW(format_number(std::numeric_limits<double>::quiet_NaN()),
               vkey::Error);
}

TEST(Escape, EscapesQuotesBackslashesAndControlCharacters) {
  EXPECT_EQ(escape("plain"), "plain");
  EXPECT_EQ(escape("a\"b"), "a\\\"b");
  EXPECT_EQ(escape("a\\b"), "a\\\\b");
  EXPECT_EQ(escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Dump, CompactAndPrettyFormsAreDeterministic) {
  Value obj = Value::object();
  obj.set("b", Value(1));
  obj.set("a", Value("x"));
  Value arr = Value::array();
  arr.push_back(Value(true));
  arr.push_back(Value(nullptr));
  obj.set("list", std::move(arr));
  // Insertion order is preserved — not sorted — so diffs are stable.
  EXPECT_EQ(obj.dump(0), "{\"b\":1,\"a\":\"x\",\"list\":[true,null]}");
  EXPECT_EQ(obj.dump(2),
            "{\n  \"b\": 1,\n  \"a\": \"x\",\n  \"list\": [\n    true,\n"
            "    null\n  ]\n}\n");
}

TEST(Dump, SetOverwritesInPlaceWithoutReordering) {
  Value obj = Value::object();
  obj.set("first", Value(1));
  obj.set("second", Value(2));
  obj.set("first", Value(9));
  EXPECT_EQ(obj.dump(0), "{\"first\":9,\"second\":2}");
}

TEST(Parse, RoundTripsEveryJsonType) {
  const std::string text =
      "{\"s\":\"he\\\"llo\\n\",\"n\":-2.5,\"i\":12,\"t\":true,\"f\":false,"
      "\"z\":null,\"a\":[1,[2],{}],\"o\":{\"k\":\"v\"}}";
  const Value v = Value::parse(text);
  EXPECT_EQ(v.at("s").as_string(), "he\"llo\n");
  EXPECT_DOUBLE_EQ(v.at("n").as_number(), -2.5);
  EXPECT_DOUBLE_EQ(v.at("i").as_number(), 12.0);
  EXPECT_TRUE(v.at("t").as_bool());
  EXPECT_FALSE(v.at("f").as_bool());
  EXPECT_TRUE(v.at("z").is_null());
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_EQ(v.at("o").at("k").as_string(), "v");
  // dump(parse(x)) == x for already-compact canonical text.
  EXPECT_EQ(v.dump(0), text);
  // And the pretty form re-parses to the same document.
  EXPECT_EQ(Value::parse(v.dump(2)).dump(0), text);
}

TEST(Parse, AcceptsUnicodeEscapesAndWhitespace) {
  const Value v = Value::parse("  { \"k\" :\n[ \"\\u0041\\u00e9\" ] }  ");
  EXPECT_EQ(v.at("k").as_array()[0].as_string(), "A\xc3\xa9");
}

TEST(Parse, RejectsMalformedDocuments) {
  EXPECT_THROW(Value::parse(""), vkey::Error);
  EXPECT_THROW(Value::parse("{\"a\":}"), vkey::Error);
  EXPECT_THROW(Value::parse("[1,2"), vkey::Error);
  EXPECT_THROW(Value::parse("\"unterminated"), vkey::Error);
  EXPECT_THROW(Value::parse("treu"), vkey::Error);
  EXPECT_THROW(Value::parse("1 2"), vkey::Error);  // trailing content
  EXPECT_THROW(Value::parse("{\"a\":1} x"), vkey::Error);
}

TEST(Accessors, ThrowOnTypeMismatchAndMissingKeys) {
  const Value v = Value::parse("{\"n\":1}");
  EXPECT_THROW(v.at("n").as_string(), vkey::Error);
  EXPECT_THROW(v.at("missing"), vkey::Error);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_NE(v.find("n"), nullptr);
}

// Non-finite doubles: format_number stays strict (tested above), but a
// document must never serialize to text a JSON parser rejects — dump
// normalizes NaN/Inf to null, and the result round-trips.
TEST(Dump, NonFiniteNumbersSerializeAsNull) {
  Value doc = Value::object();
  doc.set("nan", Value(std::numeric_limits<double>::quiet_NaN()));
  doc.set("pinf", Value(std::numeric_limits<double>::infinity()));
  doc.set("ninf", Value(-std::numeric_limits<double>::infinity()));
  doc.set("ok", Value(2.5));
  const std::string text = doc.dump(0);
  EXPECT_EQ(text, "{\"nan\":null,\"pinf\":null,\"ninf\":null,\"ok\":2.5}");

  const Value back = Value::parse(text);
  EXPECT_TRUE(back.at("nan").is_null());
  EXPECT_TRUE(back.at("pinf").is_null());
  EXPECT_TRUE(back.at("ninf").is_null());
  EXPECT_EQ(back.at("ok").as_number(), 2.5);
}

TEST(Dump, NonFiniteInsideArraysAndNesting) {
  Value arr = Value::array();
  arr.push_back(Value(1.0));
  arr.push_back(Value(std::numeric_limits<double>::quiet_NaN()));
  Value doc = Value::object();
  doc.set("xs", std::move(arr));
  EXPECT_EQ(doc.dump(0), "{\"xs\":[1,null]}");
  // Still valid JSON after the normalization.
  EXPECT_NO_THROW(Value::parse(doc.dump(2)));
}

// The exporter contract: a table serialized by Table::to_json and re-read
// from text renders exactly the markdown the live object renders. This is
// what makes `bench_runner --regen-only` byte-identical on a second run.
TEST(Exporter, TableSurvivesJsonRoundTripByteIdentically) {
  Table t({"stage", "KAR", "note"});
  t.add_row({"probe", "98.87%", "includes | pipe"});
  t.add_row({"quantize", "0.53", "plain"});
  const Value j = t.to_json();
  const Value back = Value::parse(j.dump(2));
  EXPECT_EQ(Table::markdown_from_json(back), t.to_markdown());
  EXPECT_EQ(back.dump(0), j.dump(0));
}

}  // namespace
}  // namespace vkey::json
