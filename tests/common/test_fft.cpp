#include "common/fft.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace vkey::fftmod {
namespace {

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(17), 32u);
  EXPECT_EQ(next_pow2(1024), 1024u);
}

TEST(Fft, NextPow2Domain) { EXPECT_THROW(next_pow2(0), vkey::Error); }

TEST(Fft, RequiresPowerOfTwo) {
  std::vector<std::complex<double>> data(3);
  EXPECT_THROW(fft(data), vkey::Error);
}

TEST(Fft, DcSignal) {
  std::vector<std::complex<double>> data(8, {1.0, 0.0});
  fft(data);
  EXPECT_NEAR(data[0].real(), 8.0, 1e-12);
  for (std::size_t k = 1; k < 8; ++k) {
    EXPECT_NEAR(std::abs(data[k]), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  std::vector<std::complex<double>> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = {std::cos(2.0 * M_PI * 5.0 * static_cast<double>(i) /
                        static_cast<double>(n)),
               0.0};
  }
  fft(data);
  EXPECT_NEAR(std::abs(data[5]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[n - 5]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[3]), 0.0, 1e-9);
}

TEST(Fft, ForwardInverseRoundTrip) {
  vkey::Rng rng(9);
  const std::size_t n = 128;
  std::vector<std::complex<double>> data(n), orig(n);
  for (auto& v : data) v = {rng.gaussian(), rng.gaussian()};
  orig = data;
  fft(data, false);
  fft(data, true);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(data[i].real() / static_cast<double>(n), orig[i].real(),
                1e-10);
    EXPECT_NEAR(data[i].imag() / static_cast<double>(n), orig[i].imag(),
                1e-10);
  }
}

TEST(Fft, ParsevalHolds) {
  vkey::Rng rng(10);
  const std::size_t n = 256;
  std::vector<std::complex<double>> data(n);
  double time_energy = 0.0;
  for (auto& v : data) {
    v = {rng.gaussian(), 0.0};
    time_energy += std::norm(v);
  }
  fft(data);
  double freq_energy = 0.0;
  for (const auto& v : data) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-8);
}

TEST(Fft, RealHelperPadsToPow2) {
  const std::vector<double> x(100, 1.0);
  const auto spectrum = fft_real(x);
  EXPECT_EQ(spectrum.size(), 128u);
  EXPECT_NEAR(spectrum[0].real(), 100.0, 1e-10);
}

TEST(Fft, RealHelperRejectsEmpty) {
  EXPECT_THROW(fft_real({}), vkey::Error);
}

TEST(Fft, LinearityProperty) {
  vkey::Rng rng(11);
  const std::size_t n = 32;
  std::vector<std::complex<double>> a(n), b(n), sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = {rng.gaussian(), 0.0};
    b[i] = {rng.gaussian(), 0.0};
    sum[i] = a[i] + b[i];
  }
  fft(a);
  fft(b);
  fft(sum);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(sum[i] - (a[i] + b[i])), 0.0, 1e-9);
  }
}

}  // namespace
}  // namespace vkey::fftmod
