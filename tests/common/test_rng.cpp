#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace vkey {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sq += u * u;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntBoundedAndCoversRange) {
  Rng rng(13);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(10);
    ASSERT_LT(v, 10u);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (int c : seen) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(Rng, UniformIntOne) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(1), 0u);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaleShift) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(29);
  Rng child = a.fork(1);
  // The fork must not replay the parent's stream.
  Rng b(29);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += child.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Splitmix64, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), first);
  EXPECT_NE(splitmix64(s2), first);  // second draw differs
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine64(1, 2), hash_combine64(2, 1));
}

}  // namespace
}  // namespace vkey
