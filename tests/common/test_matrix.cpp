#include "common/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace vkey {
namespace {

TEST(Matrix, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m.at(r, c), 0.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), Error);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), Error);
  EXPECT_THROW(m.at(0, 2), Error);
}

TEST(Matrix, IdentityMultiplication) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix i = Matrix::identity(2);
  const Matrix prod = a * i;
  EXPECT_DOUBLE_EQ(prod.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(prod.at(1, 1), 4.0);
}

TEST(Matrix, MultiplyKnownResult) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix b{{7.0, 8.0}, {9.0, 10.0}, {11.0, 12.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  EXPECT_THROW(Matrix(2, 3) * Matrix(2, 3), Error);
}

TEST(Matrix, TransposeInvolution) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t.at(2, 1), 6.0);
  const Matrix tt = t.transpose();
  EXPECT_DOUBLE_EQ(tt.at(1, 2), 6.0);
}

TEST(Matrix, AddSubtractScale) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{4.0, 3.0}, {2.0, 1.0}};
  EXPECT_DOUBLE_EQ((a + b).at(0, 0), 5.0);
  EXPECT_DOUBLE_EQ((a - b).at(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(a.scaled(2.0).at(1, 0), 6.0);
}

TEST(Matrix, MulVec) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const auto y = a.mul_vec({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, Column) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const auto c = a.column(1);
  EXPECT_DOUBLE_EQ(c[0], 2.0);
  EXPECT_DOUBLE_EQ(c[1], 4.0);
}

TEST(Matrix, SolveKnownSystem) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const auto x = Matrix::solve(a, {3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Matrix, SolveSingularThrows) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(Matrix::solve(a, {1.0, 2.0}), Error);
}

TEST(Matrix, SolveRandomSystemsRoundTrip) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 5;
    Matrix a(n, n);
    std::vector<double> x_true(n);
    for (std::size_t r = 0; r < n; ++r) {
      x_true[r] = rng.gaussian();
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.gaussian();
      a(r, r) += 3.0;  // keep well-conditioned
    }
    const auto b = a.mul_vec(x_true);
    const auto x = Matrix::solve(a, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

TEST(Matrix, LeastSquaresExactForSquare) {
  const Matrix a{{2.0, 0.0}, {0.0, 4.0}};
  const auto x = Matrix::least_squares(a, {2.0, 8.0});
  EXPECT_NEAR(x[0], 1.0, 1e-8);
  EXPECT_NEAR(x[1], 2.0, 1e-8);
}

TEST(Matrix, LeastSquaresOverdetermined) {
  // Fit y = 2x + 1 through noisy-free points: exact recovery.
  Matrix a(4, 2);
  std::vector<double> b(4);
  for (std::size_t i = 0; i < 4; ++i) {
    const double x = static_cast<double>(i);
    a(i, 0) = x;
    a(i, 1) = 1.0;
    b[i] = 2.0 * x + 1.0;
  }
  const auto coef = Matrix::least_squares(a, b);
  EXPECT_NEAR(coef[0], 2.0, 1e-8);
  EXPECT_NEAR(coef[1], 1.0, 1e-8);
}

TEST(VectorOps, NormAndDot) {
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0}, {3.0, 4.0}), 11.0);
  EXPECT_THROW(dot({1.0}, {1.0, 2.0}), Error);
}

}  // namespace
}  // namespace vkey
