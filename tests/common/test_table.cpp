#include "common/table.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vkey {
namespace {

TEST(Table, RequiresHeaders) {
  EXPECT_THROW(Table({}), Error);
}

TEST(Table, RowWidthChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), Error);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "v"});
  t.add_row({"x", "1.00"});
  t.add_row({"longer", "2.50"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name   | v    |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 2.50 |"), std::string::npos);
}

TEST(Table, CsvFormat) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(3.0, 0), "3");
}

TEST(Table, PctFormatsFraction) {
  EXPECT_EQ(Table::pct(0.9887), "98.87%");
  EXPECT_EQ(Table::pct(0.5, 1), "50.0%");
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"x"});
  EXPECT_EQ(t.row_count(), 1u);
}

}  // namespace
}  // namespace vkey
