#include "common/bitvec.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace vkey {
namespace {

TEST(BitVec, DefaultIsEmpty) {
  BitVec v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
}

TEST(BitVec, ZeroInitialized) {
  BitVec v(16);
  EXPECT_EQ(v.size(), 16u);
  EXPECT_EQ(v.weight(), 0u);
}

TEST(BitVec, FromStringRoundTrip) {
  const std::string s = "1011001110001111";
  EXPECT_EQ(BitVec::from_string(s).to_string(), s);
}

TEST(BitVec, FromStringRejectsNonBinary) {
  EXPECT_THROW(BitVec::from_string("10x1"), Error);
}

TEST(BitVec, ConstructorRejectsNonBinaryValues) {
  EXPECT_THROW(BitVec(std::vector<std::uint8_t>{0, 1, 2}), Error);
}

TEST(BitVec, GetSetFlip) {
  BitVec v(8);
  v.set(3, true);
  EXPECT_EQ(v.get(3), 1);
  v.flip(3);
  EXPECT_EQ(v.get(3), 0);
  v.flip(0);
  EXPECT_EQ(v.get(0), 1);
  EXPECT_EQ(v.weight(), 1u);
}

TEST(BitVec, BoundsChecked) {
  BitVec v(4);
  EXPECT_THROW(v.get(4), Error);
  EXPECT_THROW(v.set(4, true), Error);
  EXPECT_THROW(v.flip(4), Error);
}

TEST(BitVec, XorBasics) {
  const BitVec a = BitVec::from_string("1100");
  const BitVec b = BitVec::from_string("1010");
  EXPECT_EQ((a ^ b).to_string(), "0110");
}

TEST(BitVec, XorSizeMismatchThrows) {
  EXPECT_THROW(BitVec(4) ^ BitVec(5), Error);
}

TEST(BitVec, XorSelfInverse) {
  Rng rng(1);
  BitVec a(64), b(64);
  for (std::size_t i = 0; i < 64; ++i) {
    a.set(i, rng.bernoulli(0.5));
    b.set(i, rng.bernoulli(0.5));
  }
  EXPECT_EQ((a ^ b) ^ b, a);
}

TEST(BitVec, HammingDistanceMatchesXorWeight) {
  const BitVec a = BitVec::from_string("110010");
  const BitVec b = BitVec::from_string("011010");
  EXPECT_EQ(a.hamming_distance(b), (a ^ b).weight());
  EXPECT_EQ(a.hamming_distance(b), 2u);
}

TEST(BitVec, AgreementComplementaryToDistance) {
  const BitVec a = BitVec::from_string("11110000");
  const BitVec b = BitVec::from_string("11111111");
  EXPECT_DOUBLE_EQ(a.agreement(b), 0.5);
  EXPECT_DOUBLE_EQ(a.agreement(a), 1.0);
}

TEST(BitVec, AgreementOfEmptyThrows) {
  EXPECT_THROW(BitVec().agreement(BitVec()), Error);
}

TEST(BitVec, ByteRoundTripAligned) {
  const BitVec v = BitVec::from_string("1010110100110101");
  const auto bytes = v.to_bytes();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(BitVec::from_bytes(bytes, 16), v);
}

TEST(BitVec, ByteRoundTripUnaligned) {
  const BitVec v = BitVec::from_string("10101");
  const auto bytes = v.to_bytes();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b10101000);
  EXPECT_EQ(BitVec::from_bytes(bytes, 5), v);
}

TEST(BitVec, FromBytesMsbFirst) {
  const std::vector<std::uint8_t> bytes{0x80, 0x01};
  const BitVec v = BitVec::from_bytes(bytes, 16);
  EXPECT_EQ(v.to_string(), "1000000000000001");
}

TEST(BitVec, FromBytesTooShortThrows) {
  EXPECT_THROW(BitVec::from_bytes({0xff}, 9), Error);
}

TEST(BitVec, SliceAndAppend) {
  const BitVec v = BitVec::from_string("11001010");
  EXPECT_EQ(v.slice(2, 4).to_string(), "0010");
  BitVec w = v.slice(0, 4);
  w.append(v.slice(4, 4));
  EXPECT_EQ(w, v);
}

TEST(BitVec, SliceOutOfRangeThrows) {
  EXPECT_THROW(BitVec(8).slice(5, 4), Error);
}

TEST(BitVec, PushBack) {
  BitVec v;
  v.push_back(true);
  v.push_back(false);
  v.push_back(true);
  EXPECT_EQ(v.to_string(), "101");
}

TEST(BitVec, ToDoublesAndThreshold) {
  const BitVec v = BitVec::from_string("101");
  const auto d = v.to_doubles();
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 1.0);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
  EXPECT_EQ(BitVec::from_doubles_threshold({0.9, 0.1, 0.500001}),
            BitVec::from_string("101"));
}

TEST(BitVec, ThresholdCustomValue) {
  EXPECT_EQ(BitVec::from_doubles_threshold({0.2, 0.4}, 0.3).to_string(), "01");
}

}  // namespace
}  // namespace vkey
