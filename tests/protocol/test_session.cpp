#include "protocol/session.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "core/reconciler.h"

namespace vkey::protocol {
namespace {

// One shared trained reconciler for all session tests (training is the
// expensive part).
class SessionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::ReconcilerConfig cfg;
    cfg.key_bits = 64;
    cfg.decoder_units = 64;
    reconciler_ = new core::AutoencoderReconciler(cfg);
    reconciler_->train(2500, 25);
  }
  static void TearDownTestSuite() {
    delete reconciler_;
    reconciler_ = nullptr;
  }

  static BitVec random_key(std::uint64_t seed) {
    vkey::Rng rng(seed);
    BitVec k(64);
    for (std::size_t i = 0; i < 64; ++i) k.set(i, rng.bernoulli(0.5));
    return k;
  }

  static BitVec with_flips(const BitVec& k, int flips, std::uint64_t seed) {
    vkey::Rng rng(seed);
    BitVec out = k;
    for (int f = 0; f < flips; ++f) {
      out.flip(static_cast<std::size_t>(rng.uniform_int(out.size())));
    }
    return out;
  }

  static core::AutoencoderReconciler* reconciler_;
};

core::AutoencoderReconciler* SessionTest::reconciler_ = nullptr;

TEST_F(SessionTest, HappyPathEstablishesSameKey) {
  const BitVec kb = random_key(1);
  const BitVec ka = with_flips(kb, 3, 2);
  SessionConfig cfg;
  AliceSession alice(cfg, *reconciler_, ka);
  BobSession bob(cfg, *reconciler_, kb);
  PublicChannel ch;
  EXPECT_TRUE(run_key_agreement(ch, alice, bob));
  EXPECT_EQ(alice.state(), SessionState::kEstablished);
  EXPECT_EQ(bob.state(), SessionState::kEstablished);
  EXPECT_EQ(alice.final_key(), bob.final_key());
  EXPECT_EQ(alice.final_key().size(), 128u);
}

TEST_F(SessionTest, IdenticalKeysAlsoWork) {
  const BitVec k = random_key(3);
  SessionConfig cfg;
  AliceSession alice(cfg, *reconciler_, k);
  BobSession bob(cfg, *reconciler_, k);
  PublicChannel ch;
  EXPECT_TRUE(run_key_agreement(ch, alice, bob));
}

TEST_F(SessionTest, HopelessMismatchFailsCleanly) {
  // Totally uncorrelated keys: reconciliation cannot fix them; the MAC
  // check must catch it and fail the session rather than "succeed" with
  // different keys.
  const BitVec kb = random_key(4);
  const BitVec ka = random_key(5);
  SessionConfig cfg;
  AliceSession alice(cfg, *reconciler_, ka);
  BobSession bob(cfg, *reconciler_, kb);
  PublicChannel ch;
  EXPECT_FALSE(run_key_agreement(ch, alice, bob));
  EXPECT_NE(alice.state(), SessionState::kEstablished);
}

TEST_F(SessionTest, SessionIdMismatchRejected) {
  const BitVec k = random_key(6);
  SessionConfig cfg;
  BobSession bob(cfg, *reconciler_, k);
  Message req;
  req.type = MessageType::kKeyGenRequest;
  req.session_id = 999;  // wrong session
  req.nonce = 1;
  EXPECT_FALSE(bob.handle(req).has_value());
  EXPECT_EQ(bob.last_reject(), RejectReason::kBadSession);
}

TEST_F(SessionTest, DuplicateRetransmissionDistinctFromReplay) {
  const BitVec k = random_key(7);
  SessionConfig cfg;
  BobSession bob(cfg, *reconciler_, k);
  Message req;
  req.type = MessageType::kKeyGenRequest;
  req.session_id = cfg.session_id;
  req.nonce = 5;
  const auto first = bob.handle(req);
  ASSERT_TRUE(first.has_value());

  // A bit-identical retransmission is benign ARQ behaviour: it re-elicits
  // the original response and is surfaced as kDuplicate, not an attack.
  const auto again = bob.handle(req);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, *first);
  EXPECT_EQ(bob.last_reject(), RejectReason::kDuplicate);
  EXPECT_EQ(bob.duplicates_suppressed(), 1u);

  // Same nonce with different content is a forged replay: rejected.
  Message forged = req;
  forged.payload = {0xde, 0xad};
  EXPECT_FALSE(bob.handle(forged).has_value());
  EXPECT_EQ(bob.last_reject(), RejectReason::kReplayedNonce);
  EXPECT_GE(bob.rejected_count(), 1u);

  // An old, never-accepted nonce is also a replay.
  Message stale = req;
  stale.nonce = 4;
  EXPECT_FALSE(bob.handle(stale).has_value());
  EXPECT_EQ(bob.last_reject(), RejectReason::kReplayedNonce);
}

TEST_F(SessionTest, SyndromeRequiresAcceptedSession) {
  const BitVec k = random_key(8);
  SessionConfig cfg;
  BobSession bob(cfg, *reconciler_, k);
  EXPECT_THROW(bob.make_syndrome(), vkey::Error);
}

TEST_F(SessionTest, FinalKeyBeforeEstablishmentThrows) {
  const BitVec k = random_key(9);
  SessionConfig cfg;
  AliceSession alice(cfg, *reconciler_, k);
  EXPECT_THROW(alice.final_key(), vkey::Error);
}

TEST_F(SessionTest, KeyWidthValidated) {
  SessionConfig cfg;
  EXPECT_THROW(BobSession(cfg, *reconciler_, BitVec(32)), vkey::Error);
  EXPECT_THROW(AliceSession(cfg, *reconciler_, BitVec(32)), vkey::Error);
}

TEST_F(SessionTest, StateStringsAreHumanReadable) {
  EXPECT_EQ(to_string(SessionState::kEstablished), "established");
  EXPECT_EQ(to_string(RejectReason::kMacMismatch), "mac-mismatch");
}

TEST(SecureLink, SealOpenRoundTrip) {
  vkey::Rng rng(10);
  BitVec key(128);
  for (std::size_t i = 0; i < 128; ++i) key.set(i, rng.bernoulli(0.5));
  SecureLink link(key);
  const std::vector<std::uint8_t> payload{'h', 'e', 'l', 'l', 'o'};
  const Message sealed = link.seal(1, 7, payload);
  EXPECT_NE(sealed.payload, payload);  // actually encrypted
  const auto opened = link.open(sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, payload);
}

TEST(SecureLink, TamperDetected) {
  vkey::Rng rng(11);
  BitVec key(128);
  for (std::size_t i = 0; i < 128; ++i) key.set(i, rng.bernoulli(0.5));
  SecureLink link(key);
  Message sealed = link.seal(1, 7, {1, 2, 3, 4});
  sealed.payload[0] ^= 0x01;
  EXPECT_FALSE(link.open(sealed).has_value());
}

TEST(SecureLink, WrongKeyCannotOpen) {
  vkey::Rng rng(12);
  BitVec k1(128), k2(128);
  for (std::size_t i = 0; i < 128; ++i) {
    k1.set(i, rng.bernoulli(0.5));
    k2.set(i, rng.bernoulli(0.5));
  }
  const Message sealed = SecureLink(k1).seal(1, 7, {1, 2, 3});
  EXPECT_FALSE(SecureLink(k2).open(sealed).has_value());
}

TEST(SecureLink, RequiresFullWidthKey) {
  EXPECT_THROW(SecureLink(BitVec(64)), vkey::Error);
}

TEST(SecureLink, DistinctNoncesDistinctCiphertexts) {
  vkey::Rng rng(13);
  BitVec key(128);
  for (std::size_t i = 0; i < 128; ++i) key.set(i, rng.bernoulli(0.5));
  SecureLink link(key);
  const std::vector<std::uint8_t> payload(24, 0x55);
  EXPECT_NE(link.seal(1, 1, payload).payload,
            link.seal(1, 2, payload).payload);
}

TEST(SecureLink, CrossSessionIdRejected) {
  vkey::Rng rng(14);
  BitVec key(128);
  for (std::size_t i = 0; i < 128; ++i) key.set(i, rng.bernoulli(0.5));
  SecureLink link(key);
  Message sealed = link.seal(1, 1, {9, 9, 9});
  sealed.session_id = 2;  // spliced into another session
  EXPECT_FALSE(link.open(sealed).has_value());  // MAC covers the header
}

}  // namespace
}  // namespace vkey::protocol
