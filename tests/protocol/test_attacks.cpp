#include "protocol/attacks.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "protocol/session.h"

namespace vkey::protocol {
namespace {

class AttackTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::ReconcilerConfig cfg;
    cfg.key_bits = 64;
    cfg.decoder_units = 64;
    reconciler_ = new core::AutoencoderReconciler(cfg);
    reconciler_->train(2500, 25);
  }
  static void TearDownTestSuite() {
    delete reconciler_;
    reconciler_ = nullptr;
  }

  static BitVec random_key(std::uint64_t seed) {
    vkey::Rng rng(seed);
    BitVec k(64);
    for (std::size_t i = 0; i < 64; ++i) k.set(i, rng.bernoulli(0.5));
    return k;
  }

  static core::AutoencoderReconciler* reconciler_;
};

core::AutoencoderReconciler* AttackTest::reconciler_ = nullptr;

TEST_F(AttackTest, EavesdropperSeesSyndromeButGainsNoKey) {
  const BitVec kb = random_key(1);
  BitVec ka = kb;
  ka.flip(5);
  SessionConfig cfg;
  AliceSession alice(cfg, *reconciler_, ka);
  BobSession bob(cfg, *reconciler_, kb);
  PublicChannel ch;
  ASSERT_TRUE(run_key_agreement(ch, alice, bob));

  // Eve pulls the syndrome from the transcript.
  const auto syndrome = find_syndrome(ch);
  ASSERT_TRUE(syndrome.has_value());

  // Her key material is uncorrelated: decoding gets her nowhere near K_Bob.
  const BitVec ke = random_key(99);
  const BitVec guess = eavesdrop_attack(*reconciler_, ke, *syndrome);
  EXPECT_LT(guess.agreement(kb), 0.75);
  EXPECT_GT(guess.agreement(kb), 0.25);
}

TEST_F(AttackTest, NoSyndromeInEmptyTranscript) {
  PublicChannel ch;
  EXPECT_FALSE(find_syndrome(ch).has_value());
}

TEST_F(AttackTest, EavesdropAttackValidatesMessageType) {
  Message not_syndrome;
  not_syndrome.type = MessageType::kKeyGenRequest;
  EXPECT_THROW(eavesdrop_attack(*reconciler_, random_key(2), not_syndrome),
               vkey::Error);
}

TEST_F(AttackTest, MitmTamperIsDetectedByMac) {
  const BitVec kb = random_key(3);
  BitVec ka = kb;
  ka.flip(7);
  SessionConfig cfg;
  AliceSession alice(cfg, *reconciler_, ka);
  BobSession bob(cfg, *reconciler_, kb);
  PublicChannel ch;
  install_syndrome_tamper(ch);
  EXPECT_FALSE(run_key_agreement(ch, alice, bob));
  EXPECT_EQ(alice.state(), SessionState::kFailed);
  EXPECT_EQ(alice.last_reject(), RejectReason::kMacMismatch);
}

TEST_F(AttackTest, ReplayedSyndromeCannotDisturbTheSession) {
  const BitVec kb = random_key(4);
  BitVec ka = kb;
  ka.flip(11);
  SessionConfig cfg;
  AliceSession alice(cfg, *reconciler_, ka);
  BobSession bob(cfg, *reconciler_, kb);
  PublicChannel ch;
  ASSERT_TRUE(run_key_agreement(ch, alice, bob));

  const auto syndrome = find_syndrome(ch);
  ASSERT_TRUE(syndrome.has_value());
  // Replaying the captured syndrome bit-identically is indistinguishable
  // from an ARQ retransmission: it is suppressed as a duplicate (the cached
  // response is re-elicited) and the established state is untouched.
  alice.handle(make_replay(*syndrome));
  EXPECT_EQ(alice.last_reject(), RejectReason::kDuplicate);
  EXPECT_EQ(alice.state(), SessionState::kEstablished);

  // A *modified* replay under the old nonce is an attack: rejected outright.
  Message forged = make_replay(*syndrome);
  forged.payload[0] ^= 0xff;
  EXPECT_FALSE(alice.handle(forged).has_value());
  EXPECT_EQ(alice.last_reject(), RejectReason::kReplayedNonce);
  EXPECT_EQ(alice.state(), SessionState::kEstablished);
}

TEST_F(AttackTest, TamperInterceptorPassesOtherTraffic) {
  PublicChannel ch;
  install_syndrome_tamper(ch);
  Message req;
  req.type = MessageType::kKeyGenRequest;
  req.session_id = 1;
  req.nonce = 1;
  ch.send(req);
  const auto got = ch.receive();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, req);  // untouched
}

}  // namespace
}  // namespace vkey::protocol
