#include "protocol/wire.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/metrics.h"

namespace vkey::protocol::wire {
namespace {

Message sample_message() {
  Message m;
  m.type = MessageType::kSyndrome;
  m.session_id = 0x1122334455667788ULL;
  m.nonce = 42;
  m.payload = {1, 2, 3, 4, 5};
  m.mac = {9, 8, 7};
  return m;
}

WireError decode_error(const std::vector<std::uint8_t>& bytes) {
  WireError err = WireError::kNone;
  EXPECT_FALSE(decode_frame(bytes, &err).has_value());
  return err;
}

TEST(Crc32, MatchesTheIeeeCheckValue) {
  // The canonical check vector: CRC-32("123456789") = 0xCBF43926.
  const std::vector<std::uint8_t> check{'1', '2', '3', '4', '5',
                                        '6', '7', '8', '9'};
  EXPECT_EQ(crc32(check), 0xCBF43926u);
  EXPECT_EQ(crc32(std::span<const std::uint8_t>{}), 0x00000000u);
}

TEST(FrameReaderTest, ReadsBigEndianAndStopsAtTheEnd) {
  const std::vector<std::uint8_t> buf{0x01, 0x02, 0x03, 0x04,
                                      0x05, 0x06, 0x07};
  FrameReader r(buf);
  std::uint16_t a = 0;
  std::uint32_t b = 0;
  ASSERT_TRUE(r.read_u16(a));
  EXPECT_EQ(a, 0x0102u);
  ASSERT_TRUE(r.read_u32(b));
  EXPECT_EQ(b, 0x03040506u);
  EXPECT_EQ(r.consumed(), 6u);
  EXPECT_EQ(r.remaining(), 1u);
  // One byte left: a u16 must fail *without* consuming anything.
  ASSERT_FALSE(r.read_u16(a));
  EXPECT_EQ(r.remaining(), 1u);
  std::uint8_t c = 0;
  ASSERT_TRUE(r.read_u8(c));
  EXPECT_EQ(c, 0x07u);
  EXPECT_FALSE(r.read_u8(c));
}

TEST(FrameReaderTest, ReadBytesBorrowsWithoutCopying) {
  const std::vector<std::uint8_t> buf{10, 20, 30, 40};
  FrameReader r(buf);
  const auto span = r.read_bytes(3);
  ASSERT_TRUE(span.has_value());
  EXPECT_EQ(span->data(), buf.data());  // zero-copy: borrows the buffer
  EXPECT_FALSE(r.read_bytes(2).has_value());
  EXPECT_TRUE(r.read_bytes(1).has_value());
  EXPECT_TRUE(r.read_bytes(0).has_value());  // empty read always succeeds
}

TEST(Wire, EncodeDecodeRoundTripsEveryType) {
  for (std::uint8_t t = 1; t <= kMaxMessageType; ++t) {
    Message m = sample_message();
    m.type = static_cast<MessageType>(t);
    const auto bytes = encode_frame(m);
    EXPECT_EQ(bytes.size(), frame_size(m));
    WireError err = WireError::kNone;
    const auto back = decode_frame(bytes, &err);
    ASSERT_TRUE(back.has_value()) << "type " << int(t) << ": "
                                  << to_string(err);
    EXPECT_EQ(*back, m);
    // Re-encoding reproduces the frame byte-for-byte.
    EXPECT_EQ(encode_frame(*back), bytes);
  }
}

TEST(Wire, EmptyPayloadAndMacIsTheMinimumFrame) {
  Message m;
  m.type = MessageType::kAck;
  m.session_id = 7;
  m.nonce = 9;
  const auto bytes = encode_frame(m);
  EXPECT_EQ(bytes.size(), kMinFrameBytes);
  const auto back = decode_frame(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
}

TEST(Wire, FrameLayoutIsTheDocumentedOne) {
  const Message m = sample_message();
  const auto b = encode_frame(m);
  ASSERT_EQ(b.size(), kHeaderBytes + 5 + 3 + kCrcBytes);
  EXPECT_EQ(b[0], 0x56u);  // 'V'
  EXPECT_EQ(b[1], 0x4Bu);  // 'K'
  EXPECT_EQ(b[2], kWireVersion);
  EXPECT_EQ(b[3], 0x00u);  // payload_len hi
  EXPECT_EQ(b[4], 0x05u);  // payload_len lo
  EXPECT_EQ(b[5], 0x03u);  // mac_len
  EXPECT_EQ(b[6], static_cast<std::uint8_t>(m.type));
  EXPECT_EQ(b[7], 0x11u);  // session_id, big-endian
  EXPECT_EQ(b[14], 0x88u);
  EXPECT_EQ(b[22], 42u);  // nonce low byte
  EXPECT_EQ(b[23], 1u);   // payload starts
  EXPECT_EQ(b[28], 9u);   // mac starts
}

TEST(Wire, RejectsEveryTruncation) {
  const auto bytes = encode_frame(sample_message());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() +
                                            static_cast<std::ptrdiff_t>(len));
    WireError err = WireError::kNone;
    ASSERT_FALSE(decode_frame(cut, &err).has_value()) << "len " << len;
    EXPECT_EQ(err, WireError::kTruncated) << "len " << len;
  }
}

TEST(Wire, RejectsTrailingBytes) {
  auto bytes = encode_frame(sample_message());
  bytes.push_back(0x00);
  EXPECT_EQ(decode_error(bytes), WireError::kTrailingBytes);
}

TEST(Wire, RejectsBadMagic) {
  auto bytes = encode_frame(sample_message());
  bytes[0] = 0x00;
  EXPECT_EQ(decode_error(bytes), WireError::kBadMagic);
}

TEST(Wire, RejectsVersionSkewBeforeCheckingTheCrc) {
  // A version-2 frame with a *correct* CRC must still die on kBadVersion:
  // there is no downgrade negotiation, and the structural gate fires first.
  auto bytes = encode_frame(sample_message());
  bytes[2] = kWireVersion + 1;
  bytes.resize(bytes.size() - kCrcBytes);
  const std::uint32_t crc = crc32(bytes);
  bytes.push_back(static_cast<std::uint8_t>(crc >> 24));
  bytes.push_back(static_cast<std::uint8_t>(crc >> 16));
  bytes.push_back(static_cast<std::uint8_t>(crc >> 8));
  bytes.push_back(static_cast<std::uint8_t>(crc));
  EXPECT_EQ(decode_error(bytes), WireError::kBadVersion);
}

TEST(Wire, RejectsOversizedLengthClaims) {
  // payload_len = 0xFFFF > kMaxPayloadBytes: rejected on the length field
  // itself, before any attempt to read that many bytes.
  auto bytes = encode_frame(sample_message());
  bytes[3] = 0xFF;
  bytes[4] = 0xFF;
  EXPECT_EQ(decode_error(bytes), WireError::kOversizedPayload);

  bytes = encode_frame(sample_message());
  bytes[5] = 0xFF;  // mac_len > kMaxMacBytes
  EXPECT_EQ(decode_error(bytes), WireError::kOversizedMac);
}

TEST(Wire, LengthFieldClaimingMoreThanTheBufferIsTruncation) {
  auto bytes = encode_frame(sample_message());
  bytes[4] = 0x06;  // payload_len 5 -> 6, buffer unchanged
  EXPECT_EQ(decode_error(bytes), WireError::kTruncated);
}

TEST(Wire, FlippedPayloadBitFailsTheCrc) {
  auto bytes = encode_frame(sample_message());
  bytes[kHeaderBytes] ^= 0x01;
  EXPECT_EQ(decode_error(bytes), WireError::kBadCrc);
}

TEST(Wire, CrcValidFrameWithUnknownTypeIsBadType) {
  // Forge type=99 and restamp the CRC: structurally perfect, semantically
  // meaningless — the one reject that fires *after* the CRC gate.
  Message m = sample_message();
  auto bytes = encode_frame(m);
  bytes[6] = 99;
  bytes.resize(bytes.size() - kCrcBytes);
  const std::uint32_t crc = crc32(bytes);
  bytes.push_back(static_cast<std::uint8_t>(crc >> 24));
  bytes.push_back(static_cast<std::uint8_t>(crc >> 16));
  bytes.push_back(static_cast<std::uint8_t>(crc >> 8));
  bytes.push_back(static_cast<std::uint8_t>(crc));
  EXPECT_EQ(decode_error(bytes), WireError::kBadType);
}

TEST(Wire, EncodeRefusesMessagesThatViolateWireBounds) {
  Message m = sample_message();
  m.payload.assign(kMaxPayloadBytes + 1, 0);
  EXPECT_THROW(encode_frame(m), vkey::Error);
  m = sample_message();
  m.mac.assign(kMaxMacBytes + 1, 0);
  EXPECT_THROW(encode_frame(m), vkey::Error);
}

TEST(Wire, RejectCountersTrackTypedReasons) {
  metrics::set_enabled(true);
  register_wire_metrics();
  auto& reg = metrics::Registry::global();
  auto& crc_counter = reg.counter("wire.reject.crc");
  auto& trunc_counter = reg.counter("wire.reject.truncated");
  const auto crc0 = crc_counter.value();
  const auto trunc0 = trunc_counter.value();

  auto bytes = encode_frame(sample_message());
  auto corrupted = bytes;
  corrupted[kHeaderBytes] ^= 0x10;
  (void)decode_frame(corrupted);
  EXPECT_EQ(crc_counter.value(), crc0 + 1);

  const std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + 4);
  (void)decode_frame(cut);
  EXPECT_EQ(trunc_counter.value(), trunc0 + 1);
  metrics::set_enabled(false);
}

}  // namespace
}  // namespace vkey::protocol::wire
