#include "protocol/key_schedule.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "protocol/channel.h"
#include "protocol/sim_clock.h"
#include "protocol/unreliable_channel.h"

namespace vkey::protocol {
namespace {

BitVec test_secret(std::uint64_t seed = 0x5ec0de) {
  vkey::Rng rng(seed);
  BitVec key(128);
  for (std::size_t i = 0; i < key.size(); ++i) key.set(i, rng.bernoulli(0.5));
  return key;
}

constexpr std::uint64_t kSession = 0xABCDEF01;

KeySchedule::Policy fast_policy() {
  KeySchedule::Policy p;
  p.rekey_interval_ms = 1000.0;
  p.grace_ms = 200.0;
  return p;
}

channel::LoRaParams fast_radio() {
  channel::LoRaParams p;
  p.spreading_factor = 7;  // keep virtual airtimes small in tests
  return p;
}

// ------------------------------------------------------------- derivation

// SecretBuffer deletes operator== (timing side channel); key equality in
// these tests goes through the sanctioned constant_time_equal.
bool same(const crypto::SecretBuffer& a, const crypto::SecretBuffer& b) {
  return crypto::constant_time_equal(a, b);
}

TEST(KeyScheduleDerive, BothPartiesDeriveIdenticalEpochKeys) {
  const auto secret = test_secret().to_bytes();
  const EpochKeys a = derive_epoch_keys(secret, kSession, 0);
  const EpochKeys b = derive_epoch_keys(secret, kSession, 0);
  EXPECT_TRUE(same(a.a2b.enc, b.a2b.enc));
  EXPECT_TRUE(same(a.a2b.mac, b.a2b.mac));
  EXPECT_EQ(a.a2b.nonce_base, b.a2b.nonce_base);
  EXPECT_TRUE(same(a.b2a.enc, b.b2a.enc));
  EXPECT_TRUE(same(a.confirm, b.confirm));
}

TEST(KeyScheduleDerive, DirectionsAndPurposesAreIndependent) {
  const auto secret = test_secret().to_bytes();
  const EpochKeys keys = derive_epoch_keys(secret, kSession, 0);
  EXPECT_FALSE(same(keys.a2b.enc, keys.b2a.enc));
  EXPECT_FALSE(same(keys.a2b.mac, keys.b2a.mac));
  EXPECT_NE(keys.a2b.nonce_base, keys.b2a.nonce_base);
  EXPECT_FALSE(same(keys.a2b.mac, keys.confirm));
  // The 16-byte enc key must not be a prefix of the 32-byte mac key.
  EXPECT_FALSE(crypto::constant_time_equal(
      keys.a2b.mac.expose().subspan(0, 16), keys.a2b.enc.expose()));
}

TEST(KeyScheduleDerive, EpochsSessionsAndSecretsSeparateKeys) {
  const auto secret = test_secret().to_bytes();
  const EpochKeys e0 = derive_epoch_keys(secret, kSession, 0);
  EXPECT_FALSE(same(e0.a2b.enc, derive_epoch_keys(secret, kSession, 1).a2b.enc));
  EXPECT_FALSE(
      same(e0.a2b.enc, derive_epoch_keys(secret, kSession + 1, 0).a2b.enc));
  const auto other = test_secret(0x0ddba11).to_bytes();
  EXPECT_FALSE(same(e0.a2b.enc, derive_epoch_keys(other, kSession, 0).a2b.enc));
}

TEST(KeyScheduleDerive, RatchetIsDeterministicAndOneWayLooking) {
  const auto secret = test_secret().to_bytes();
  const auto next = ratchet_secret(secret, kSession, 1);
  EXPECT_TRUE(same(next, ratchet_secret(secret, kSession, 1)));
  EXPECT_EQ(next.size(), 32u);
  EXPECT_FALSE(crypto::constant_time_equal(next.expose(),
                                           std::span<const std::uint8_t>(secret)));
  EXPECT_FALSE(same(ratchet_secret(secret, kSession, 2), next));
}

// ------------------------------------------------------------- seal / open

TEST(KeySchedule, SealOpenRoundTripsAcrossRoles) {
  KeySchedule alice(test_secret(), kSession, KeySchedule::Role::kInitiator);
  KeySchedule bob(test_secret(), kSession, KeySchedule::Role::kResponder);
  const std::vector<std::uint8_t> plain{'h', 'e', 'l', 'l', 'o'};

  const Message a2b = alice.seal(1, plain);
  EXPECT_EQ(a2b.type, MessageType::kData);
  const auto at_bob = bob.open(a2b, 0.0);
  ASSERT_TRUE(at_bob.has_value());
  EXPECT_EQ(*at_bob, plain);

  const Message b2a = bob.seal(2, plain);
  const auto at_alice = alice.open(b2a, 0.0);
  ASSERT_TRUE(at_alice.has_value());
  EXPECT_EQ(*at_alice, plain);
  EXPECT_EQ(alice.stats().opened, 1u);
  EXPECT_EQ(bob.stats().opened, 1u);
}

TEST(KeySchedule, ReflectedFramesDoNotAuthenticate) {
  KeySchedule alice(test_secret(), kSession, KeySchedule::Role::kInitiator);
  const Message sealed = alice.seal(1, {1, 2, 3});
  // Alice's own frame bounced back at her: wrong direction keys.
  EXPECT_FALSE(alice.open(sealed, 0.0).has_value());
  EXPECT_EQ(alice.stats().mac_rejects, 1u);
}

TEST(KeySchedule, TamperedCiphertextEpochOrNonceIsRejected) {
  KeySchedule alice(test_secret(), kSession, KeySchedule::Role::kInitiator);
  KeySchedule bob(test_secret(), kSession, KeySchedule::Role::kResponder);

  Message tampered = alice.seal(1, {1, 2, 3, 4});
  tampered.payload.back() ^= 0x01;
  EXPECT_FALSE(bob.open(tampered, 0.0).has_value());

  tampered = alice.seal(2, {1, 2, 3, 4});
  tampered.payload[3] ^= 0x01;  // epoch prefix
  EXPECT_FALSE(bob.open(tampered, 0.0).has_value());

  tampered = alice.seal(3, {1, 2, 3, 4});
  tampered.nonce ^= 1;  // the MAC binds the header too
  EXPECT_FALSE(bob.open(tampered, 0.0).has_value());

  Message short_frame = alice.seal(4, {});
  short_frame.payload.resize(2);  // shorter than the epoch prefix
  EXPECT_FALSE(bob.open(short_frame, 0.0).has_value());
  EXPECT_EQ(bob.stats().malformed, 1u);
  EXPECT_EQ(bob.stats().mac_rejects, 3u);
}

// ------------------------------------------------------------------ rekey

TEST(KeySchedule, RekeyAdvancesEpochAndChangesKeys) {
  KeySchedule alice(test_secret(), kSession, KeySchedule::Role::kInitiator,
                    fast_policy());
  const auto before = alice.keys().a2b.enc;
  EXPECT_FALSE(alice.rekey_due(999.0));
  EXPECT_TRUE(alice.rekey_due(1000.0));
  alice.rekey(1000.0);
  EXPECT_EQ(alice.epoch(), 1u);
  EXPECT_FALSE(same(alice.keys().a2b.enc, before));
  EXPECT_EQ(alice.stats().rekeys, 1u);
}

TEST(KeySchedule, GraceWindowKeepsTheOldEpochOpenableThenExpires) {
  KeySchedule alice(test_secret(), kSession, KeySchedule::Role::kInitiator,
                    fast_policy());
  KeySchedule bob(test_secret(), kSession, KeySchedule::Role::kResponder,
                  fast_policy());
  // Frame sealed under epoch 0, delivered after Bob rekeyed to epoch 1.
  const Message in_flight = alice.seal(1, {0xaa});
  bob.rekey(1000.0);
  const auto within_grace = bob.open(in_flight, 1100.0);
  ASSERT_TRUE(within_grace.has_value());
  EXPECT_EQ(bob.stats().grace_opens, 1u);

  const Message too_late = alice.seal(2, {0xbb});
  EXPECT_FALSE(bob.open(too_late, 1300.0).has_value());  // grace 200 ms over
  EXPECT_EQ(bob.stats().epoch_rejects, 1u);
}

TEST(KeySchedule, PeerThatRekeyedFirstIsAdoptedAfterAuthentication) {
  KeySchedule alice(test_secret(), kSession, KeySchedule::Role::kInitiator,
                    fast_policy());
  KeySchedule bob(test_secret(), kSession, KeySchedule::Role::kResponder,
                  fast_policy());
  alice.rekey(1000.0);  // Alice is at epoch 1, Bob still at 0
  const Message from_next = alice.seal(5, {1, 2, 3});
  const auto plain = bob.open(from_next, 1050.0);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(bob.epoch(), 1u);  // fast-forwarded
  EXPECT_EQ(bob.stats().fast_forwards, 1u);
  // And the direction back now works under the shared epoch 1.
  EXPECT_TRUE(alice.open(bob.seal(6, {4, 5}), 1060.0).has_value());
}

TEST(KeySchedule, ForgedEpochNumberCannotWedgeTheSchedule) {
  KeySchedule bob(test_secret(), kSession, KeySchedule::Role::kResponder,
                  fast_policy());
  // Attacker claims epoch 1 without the keys: MAC fails under the candidate
  // and Bob must NOT move off epoch 0.
  Message forged;
  forged.type = MessageType::kData;
  forged.session_id = kSession;
  forged.nonce = 1;
  forged.payload = {0, 0, 0, 1, 0xde, 0xad};
  forged.mac.assign(32, 0x42);
  EXPECT_FALSE(bob.open(forged, 0.0).has_value());
  EXPECT_EQ(bob.epoch(), 0u);
  EXPECT_EQ(bob.stats().mac_rejects, 1u);

  // Epochs further than one ahead are rejected outright.
  forged.payload = {0, 0, 0, 5, 0xde, 0xad};
  EXPECT_FALSE(bob.open(forged, 0.0).has_value());
  EXPECT_EQ(bob.stats().epoch_rejects, 1u);
}

// ----------------------------------------------------------- confirmation

TEST(KeySchedule, ConfirmRoundTripVerifiesAndRejectsReflection) {
  KeySchedule alice(test_secret(), kSession, KeySchedule::Role::kInitiator);
  KeySchedule bob(test_secret(), kSession, KeySchedule::Role::kResponder);

  const Message confirm = alice.make_confirm(1);
  EXPECT_EQ(confirm.type, MessageType::kKeyConfirm);
  EXPECT_TRUE(bob.verify_confirm(confirm));
  // Reflection: Alice must not accept her own confirm as the peer's.
  EXPECT_FALSE(alice.verify_confirm(confirm));

  const Message ack = bob.make_confirm(2);
  EXPECT_EQ(ack.type, MessageType::kKeyConfirmAck);
  EXPECT_TRUE(alice.verify_confirm(ack));
  EXPECT_FALSE(bob.verify_confirm(ack));
}

TEST(KeySchedule, ConfirmBindsEpochSessionAndTag) {
  KeySchedule alice(test_secret(), kSession, KeySchedule::Role::kInitiator);
  KeySchedule bob(test_secret(), kSession, KeySchedule::Role::kResponder);

  Message tampered = alice.make_confirm(1);
  tampered.mac[5] ^= 0x01;
  EXPECT_FALSE(bob.verify_confirm(tampered));

  tampered = alice.make_confirm(2);
  tampered.payload[3] = 9;  // claim a different epoch
  EXPECT_FALSE(bob.verify_confirm(tampered));

  // A confirm from a different secret never verifies.
  KeySchedule mallory(test_secret(0xbad), kSession,
                      KeySchedule::Role::kInitiator);
  EXPECT_FALSE(bob.verify_confirm(mallory.make_confirm(3)));

  // After Bob rekeys, an old-epoch confirm is stale.
  bob.rekey(1000.0);
  EXPECT_FALSE(bob.verify_confirm(alice.make_confirm(4)));
}

// ------------------------------------------------------------- rekey timer

TEST(RekeyTimerTest, FiresOnScheduleAndAnnouncesEpochs) {
  SimClock clock;
  KeySchedule alice(test_secret(), kSession, KeySchedule::Role::kInitiator,
                    fast_policy());
  std::vector<std::uint32_t> announced;
  RekeyTimer timer(clock, alice,
                   [&](std::uint32_t epoch) { announced.push_back(epoch); });
  timer.start();
  clock.run_until(3500.0);
  EXPECT_EQ(alice.epoch(), 3u);
  EXPECT_EQ(announced, (std::vector<std::uint32_t>{1, 2, 3}));
  timer.stop();
  clock.run_until(10'000.0);
  EXPECT_EQ(alice.epoch(), 3u);  // stopped timers stay stopped
}

TEST(RekeyTimerTest, PeerFastForwardDefersTheNextScheduledRekey) {
  SimClock clock;
  KeySchedule alice(test_secret(), kSession, KeySchedule::Role::kInitiator,
                    fast_policy());
  KeySchedule bob(test_secret(), kSession, KeySchedule::Role::kResponder,
                  fast_policy());
  RekeyTimer timer(clock, bob, {});
  timer.start();

  // At t=600 Alice rekeys (e.g. her own timer elsewhere) and her epoch-1
  // frame fast-forwards Bob. Bob's timer fires at t=1000, sees the rekey is
  // not due, and re-arms for t=1600 instead of double-advancing.
  clock.run_until(600.0);
  alice.rekey(600.0);
  ASSERT_TRUE(bob.open(alice.seal(1, {1}), clock.now_ms()).has_value());
  EXPECT_EQ(bob.epoch(), 1u);

  clock.run_until(1100.0);
  EXPECT_EQ(bob.epoch(), 1u);  // the t=1000 firing did not rekey
  clock.run_until(1700.0);
  EXPECT_EQ(bob.epoch(), 2u);  // the deferred firing did
}

// ------------------------------------- confirmation over the faulty link

TEST(KeyConfirmation, RoundTripSucceedsOnACleanLink) {
  SimClock clock;
  PublicChannel base;
  FaultConfig faults;  // fault-free
  UnreliableChannel link(clock, base, faults, fast_radio());
  KeySchedule alice(test_secret(), kSession, KeySchedule::Role::kInitiator);
  KeySchedule bob(test_secret(), kSession, KeySchedule::Role::kResponder);

  const auto report = run_key_confirmation(clock, link, alice, bob);
  EXPECT_TRUE(report.confirmed);
  EXPECT_EQ(report.transmissions, 1u);
  EXPECT_GT(report.duration_ms, 0.0);
}

TEST(KeyConfirmation, RetransmissionsSurviveALossyLink) {
  // 40% drop + 10% corruption: with 8 transmissions the round trip still
  // completes for every seed below (deterministic — fixed seeds).
  int confirmed = 0;
  std::size_t retransmissions = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SimClock clock;
    PublicChannel base;
    FaultConfig faults;
    faults.drop_prob = 0.4;
    faults.corrupt_prob = 0.1;
    faults.seed = seed;
    UnreliableChannel link(clock, base, faults, fast_radio());
    KeySchedule alice(test_secret(), kSession,
                      KeySchedule::Role::kInitiator);
    KeySchedule bob(test_secret(), kSession, KeySchedule::Role::kResponder);
    const auto report = run_key_confirmation(clock, link, alice, bob);
    if (report.confirmed) ++confirmed;
    retransmissions += report.transmissions - 1;
  }
  EXPECT_GE(confirmed, 18);      // a 0.4-drop link is survivable
  EXPECT_GT(retransmissions, 0u);  // and the retry path was exercised
}

TEST(KeyConfirmation, MismatchedSecretsNeverConfirm) {
  SimClock clock;
  PublicChannel base;
  FaultConfig faults;
  UnreliableChannel link(clock, base, faults, fast_radio());
  KeySchedule alice(test_secret(0xa), kSession,
                    KeySchedule::Role::kInitiator);
  KeySchedule bob(test_secret(0xb), kSession, KeySchedule::Role::kResponder);
  const auto report = run_key_confirmation(clock, link, alice, bob, 4);
  EXPECT_FALSE(report.confirmed);
  EXPECT_EQ(report.transmissions, 4u);  // exhausted the budget
}

}  // namespace
}  // namespace vkey::protocol
