// Gateway engine: registry state machines, admission control, the shared
// event queue, and the determinism contract at thousand-session scale.
// Everything runs on virtual time — no sleeps.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "core/reconciler.h"
#include "protocol/gateway.h"
#include "protocol/session.h"
#include "protocol/session_registry.h"
#include "protocol/sim_clock.h"
#include "protocol/unreliable_channel.h"

namespace vkey::protocol {
namespace {

channel::LoRaParams fast_radio() {
  channel::LoRaParams p;
  p.spreading_factor = 7;  // keep virtual airtimes small in tests
  return p;
}

// --------------------------------------------------------- SessionRegistry

TEST(SessionRegistry, FifoAdmissionHonorsTheInflightCap) {
  SessionRegistry reg(2);
  reg.arrive(0, 0.0);
  reg.arrive(1, 1.0);
  reg.arrive(2, 2.0);
  EXPECT_EQ(reg.queued(), 3u);
  EXPECT_TRUE(reg.slot_free());

  const auto a = reg.admit_next(5.0);
  const auto b = reg.admit_next(5.0);
  const auto c = reg.admit_next(5.0);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, 0u);  // FIFO: first arrival admitted first
  EXPECT_EQ(*b, 1u);
  EXPECT_FALSE(c.has_value());  // both slots taken
  EXPECT_EQ(reg.establishing(), 2u);
  EXPECT_EQ(reg.queued(), 1u);
  EXPECT_FALSE(reg.slot_free());

  reg.established(0, 9.0);
  EXPECT_TRUE(reg.slot_free());
  const auto d = reg.admit_next(9.0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 2u);

  EXPECT_DOUBLE_EQ(reg.record(0).queue_wait_ms(), 5.0);
  EXPECT_DOUBLE_EQ(reg.record(0).time_to_key_ms(), 9.0);
  EXPECT_DOUBLE_EQ(reg.record(2).queue_wait_ms(), 7.0);
  EXPECT_EQ(reg.stats().peak_inflight, 2u);
  EXPECT_EQ(reg.stats().peak_queued, 3u);
}

TEST(SessionRegistry, EvictionBookkeepingSeparatesIdleFromFailure) {
  SessionRegistry reg(1);
  reg.arrive(0, 0.0);
  reg.arrive(1, 0.0);

  ASSERT_TRUE(reg.admit_next(1.0).has_value());
  reg.failed(0, 4.0, FailureReason::kRetryExhausted);
  reg.evict(0, 4.0, EvictReason::kFailed);
  EXPECT_EQ(reg.record(0).state, DeviceState::kEvicted);
  ASSERT_TRUE(reg.record(0).evict_reason.has_value());
  EXPECT_EQ(*reg.record(0).evict_reason, EvictReason::kFailed);
  EXPECT_EQ(reg.record(0).failure, FailureReason::kRetryExhausted);
  EXPECT_LT(reg.record(0).time_to_key_ms(), 0.0);  // never established

  ASSERT_TRUE(reg.admit_next(5.0).has_value());
  reg.established(1, 8.0);
  reg.rekeyed(1, 10.0);
  reg.rekeyed(1, 12.0);
  EXPECT_DOUBLE_EQ(reg.record(1).last_activity_ms, 12.0);
  reg.touch(1, 13.0);
  EXPECT_DOUBLE_EQ(reg.record(1).last_activity_ms, 13.0);
  reg.evict(1, 20.0, EvictReason::kIdle);

  const RegistryStats& s = reg.stats();
  EXPECT_EQ(s.arrivals, 2u);
  EXPECT_EQ(s.admissions, 2u);
  EXPECT_EQ(s.established, 1u);
  EXPECT_EQ(s.failures, 1u);
  EXPECT_EQ(s.evicted_idle, 1u);
  EXPECT_EQ(s.evicted_failed, 1u);
  EXPECT_EQ(s.rekeys, 2u);
  EXPECT_EQ(reg.record(1).rekeys, 2u);
  EXPECT_EQ(reg.establishing(), 0u);
  EXPECT_EQ(reg.confirmed_active(), 0u);
}

TEST(SessionRegistry, StateAndReasonStringsAreHumanReadable) {
  EXPECT_EQ(to_string(DeviceState::kQueued), "queued");
  EXPECT_EQ(to_string(DeviceState::kEstablishing), "establishing");
  EXPECT_EQ(to_string(DeviceState::kConfirmed), "confirmed");
  EXPECT_EQ(to_string(DeviceState::kEvicted), "evicted");
  EXPECT_EQ(to_string(EvictReason::kIdle), "idle");
  EXPECT_EQ(to_string(EvictReason::kFailed), "failed");
}

// ----------------------------------------------------------- GatewayEngine

class GatewayTest : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    core::ReconcilerConfig cfg;
    cfg.key_bits = 64;
    cfg.decoder_units = 64;
    reconciler_ = new core::AutoencoderReconciler(cfg);
    reconciler_->train(2500, 25);
  }
  static void TearDownTestSuite() {
    delete reconciler_;
    reconciler_ = nullptr;
  }

  static BitVec random_key(std::uint64_t seed) {
    vkey::Rng rng(seed);
    BitVec k(64);
    for (std::size_t i = 0; i < 64; ++i) k.set(i, rng.bernoulli(0.5));
    return k;
  }

  static BitVec with_flips(const BitVec& k, int flips, std::uint64_t seed) {
    vkey::Rng rng(seed);
    BitVec out = k;
    for (int f = 0; f < flips; ++f) {
      out.flip(static_cast<std::size_t>(rng.uniform_int(out.size())));
    }
    return out;
  }

  /// Pure per-device probe material (the gateway calls it from pool lanes).
  static GatewayEngine::MaterialFn material() {
    return [](std::uint64_t device, std::size_t attempt) {
      const std::uint64_t seed =
          hash_combine64(hash_combine64(0x6a73, device), attempt);
      const BitVec kb = random_key(seed);
      return std::make_pair(with_flips(kb, 3, seed ^ 0x5a5a), kb);
    };
  }

  static GatewayConfig small_config(std::size_t sessions,
                                    std::size_t inflight) {
    GatewayConfig cfg;
    cfg.sessions = sessions;
    cfg.max_inflight = inflight;
    cfg.arrival_interval_ms = 5.0;
    cfg.rekey_interval_ms = 2000.0;
    cfg.max_rekeys = 2;
    cfg.idle_timeout_ms = 5000.0;
    cfg.reliability.radio = fast_radio();
    cfg.reliability.max_session_attempts = 6;
    return cfg;
  }

  static core::AutoencoderReconciler* reconciler_;
};

core::AutoencoderReconciler* GatewayTest::reconciler_ = nullptr;

TEST_F(GatewayTest, LosslessRunDrivesEverySessionToIdleEviction) {
  GatewayEngine engine(small_config(50, 8), *reconciler_, material());
  const GatewayReport rep = engine.run();

  EXPECT_EQ(rep.sessions, 50u);
  EXPECT_EQ(rep.established, 50u);
  EXPECT_EQ(rep.failed, 0u);
  EXPECT_EQ(rep.evicted_idle, 50u);
  EXPECT_EQ(rep.evicted_failed, 0u);
  EXPECT_EQ(rep.rekeys, 100u);  // max_rekeys per confirmed session
  EXPECT_LE(rep.peak_inflight, 8u);
  EXPECT_GT(rep.keys_per_vsecond, 0.0);
  EXPECT_GT(rep.median_time_to_key_ms, 0.0);
  EXPECT_GE(rep.p95_time_to_key_ms, rep.median_time_to_key_ms);
  EXPECT_GT(rep.bytes_per_session, 0.0);
  EXPECT_TRUE(rep.failure_dumps.empty());
  EXPECT_EQ(rep.failures_suppressed, 0u);

  // The registry quiesced: no session left queued, establishing or live.
  const SessionRegistry& reg = engine.registry();
  EXPECT_EQ(reg.queued(), 0u);
  EXPECT_EQ(reg.establishing(), 0u);
  EXPECT_EQ(reg.confirmed_active(), 0u);
  for (std::uint64_t d = 0; d < 50; ++d) {
    EXPECT_EQ(reg.record(d).state, DeviceState::kEvicted);
    EXPECT_EQ(reg.record(d).rekeys, 2u);
    EXPECT_FALSE(engine.outcomes()[d].key.size() == 0);
  }
  // Makespan covers the last session's idle timeout after its last rekey.
  EXPECT_GT(rep.makespan_ms, rep.establish_span_ms);
}

TEST_F(GatewayTest, AdmissionQueuePreservesArrivalOrderUnderContention) {
  GatewayConfig cfg = small_config(40, 4);
  cfg.arrival_interval_ms = 1.0;  // arrivals outpace the 4 slots
  GatewayEngine engine(cfg, *reconciler_, material());
  const GatewayReport rep = engine.run();

  EXPECT_EQ(rep.established, 40u);
  EXPECT_GT(rep.peak_queued, 0u);
  EXPECT_GT(rep.mean_queue_wait_ms, 0.0);
  // FIFO admission: earlier arrivals are never admitted after later ones.
  const SessionRegistry& reg = engine.registry();
  for (std::uint64_t d = 1; d < 40; ++d) {
    EXPECT_LE(reg.record(d - 1).admitted_ms, reg.record(d).admitted_ms)
        << "device " << d;
  }
}

TEST_F(GatewayTest, ThousandSessionRunIsIdenticalAcrossLaneCounts) {
  const auto run_with = [](std::size_t threads) {
    GatewayConfig cfg = small_config(1000, 64);
    cfg.threads = threads;
    GatewayEngine engine(cfg, *reconciler_, material());
    return std::make_pair(engine.run(), engine.outcomes());
  };
  const auto [rep1, out1] = run_with(1);
  const auto [rep4, out4] = run_with(4);

  // The report folds virtual-time quantities only; every field must match
  // the sequential reference exactly (DESIGN.md §9 contract).
  EXPECT_EQ(rep1.established, rep4.established);
  EXPECT_EQ(rep1.rekeys, rep4.rekeys);
  EXPECT_EQ(rep1.peak_inflight, rep4.peak_inflight);
  EXPECT_EQ(rep1.peak_queued, rep4.peak_queued);
  EXPECT_EQ(rep1.makespan_ms, rep4.makespan_ms);
  EXPECT_EQ(rep1.establish_span_ms, rep4.establish_span_ms);
  EXPECT_EQ(rep1.median_time_to_key_ms, rep4.median_time_to_key_ms);
  EXPECT_EQ(rep1.p95_time_to_key_ms, rep4.p95_time_to_key_ms);
  EXPECT_EQ(rep1.mean_queue_wait_ms, rep4.mean_queue_wait_ms);
  EXPECT_EQ(rep1.bytes_per_session, rep4.bytes_per_session);

  ASSERT_EQ(out1.size(), out4.size());
  for (std::size_t d = 0; d < out1.size(); ++d) {
    EXPECT_EQ(out1[d].established, out4[d].established) << "device " << d;
    EXPECT_EQ(out1[d].establish_ms, out4[d].establish_ms) << "device " << d;
    EXPECT_EQ(out1[d].wire_bytes, out4[d].wire_bytes) << "device " << d;
    EXPECT_EQ(out1[d].attempts, out4[d].attempts) << "device " << d;
    ASSERT_TRUE(out1[d].key == out4[d].key) << "device " << d;
  }
}

TEST_F(GatewayTest, FailedSessionsEvictWithBoundedPostMortems) {
  // Every 5th device gets uncorrelated keys: reconciliation cannot fix
  // them, so those sessions fail terminally on every attempt.
  const GatewayEngine::MaterialFn mixed =
      [](std::uint64_t device, std::size_t attempt) {
        const std::uint64_t seed =
            hash_combine64(hash_combine64(0x6a73, device), attempt);
        const BitVec kb = random_key(seed);
        if (device % 5 == 0) {
          return std::make_pair(random_key(seed ^ 0xdead), kb);
        }
        return std::make_pair(with_flips(kb, 3, seed ^ 0x5a5a), kb);
      };
  GatewayConfig cfg = small_config(20, 4);
  cfg.failure_dump_limit = 2;
  GatewayEngine engine(cfg, *reconciler_, mixed);
  const GatewayReport rep = engine.run();

  EXPECT_EQ(rep.failed, 4u);  // devices 0, 5, 10, 15
  EXPECT_EQ(rep.established, 16u);
  EXPECT_EQ(rep.evicted_failed, 4u);
  EXPECT_EQ(rep.evicted_idle, 16u);
  ASSERT_EQ(rep.failure_dumps.size(), 2u);
  EXPECT_EQ(rep.failures_suppressed, 2u);
  // Dumps are regenerated deterministically and carry the device id plus a
  // flight-recorder timeline of the failing attempts.
  EXPECT_NE(rep.failure_dumps[0].find("device 0:"), std::string::npos);
  EXPECT_NE(rep.failure_dumps[0].find("attempt"), std::string::npos);
  EXPECT_NE(rep.failure_dumps[1].find("device 5:"), std::string::npos);
  for (const std::uint64_t d : {0u, 5u, 10u, 15u}) {
    EXPECT_EQ(engine.registry().record(d).state, DeviceState::kEvicted);
    EXPECT_EQ(*engine.registry().record(d).evict_reason, EvictReason::kFailed);
  }
}

// ------------------------------- interleaved sessions on one shared clock

/// Two independent Alice/Bob pairs, both wired onto ONE SimClock, with
/// frame duplication and reordering injected on both links: the sessions'
/// events interleave on the shared timeline, and each pair's
/// duplicate/replay guards must hold without cross-talk.
TEST_F(GatewayTest, InterleavedSessionsOnSharedClockSuppressDuplicates) {
  SimClock clock;  // vkey-lint: allow(sim-clock-owner)

  struct Pair {
    PublicChannel base;
    UnreliableChannel link;
    AliceSession alice;
    BobSession bob;
    ReliableTransport alice_tx;
    ReliableTransport bob_tx;
    bool syndrome_sent = false;

    Pair(SimClock& clk, std::uint64_t id,
         const core::AutoencoderReconciler& rec, BitVec alice_raw,
         BitVec bob_raw, const SessionConfig& scfg)
        : link(clk, base, dup_faults(id), fast_radio()),
          alice(scfg, rec, std::move(alice_raw)),
          bob(scfg, rec, std::move(bob_raw)),
          alice_tx(clk, arq_for(2 * id),
                   [this](const Message& m) {
                     link.send(UnreliableChannel::Endpoint::kAlice, m);
                   },
                   rtt()),
          bob_tx(clk, arq_for(2 * id + 1),
                 [this](const Message& m) {
                   link.send(UnreliableChannel::Endpoint::kBob, m);
                 },
                 rtt()) {}

    static FaultConfig dup_faults(std::uint64_t id) {
      FaultConfig f;
      f.dup_prob = 0.4;
      f.reorder_prob = 0.3;
      f.seed = hash_combine64(0xd0b, id);
      return f;
    }
    static ArqConfig arq_for(std::uint64_t id) {
      ArqConfig a;
      a.seed = hash_combine64(0x50c, id);
      return a;
    }
    ReliableTransport::RttFn rtt() {
      Message ack;
      ack.type = MessageType::kAck;
      return [this, ack_ms = link.nominal_latency_ms(ack)](const Message& m) {
        return link.nominal_latency_ms(m) + ack_ms;
      };
    }

    void wire(SimClock& clk) {
      const auto accepts = [](const RejectReason r) {
        return r == RejectReason::kNone || r == RejectReason::kDuplicate;
      };
      alice_tx.set_upcall(
          [this](const Message& m) { return alice.handle(m); },
          [this, accepts] { return accepts(alice.last_reject()); });
      bob_tx.set_upcall(
          [this, &clk](const Message& m) {
            auto response = bob.handle(m);
            if (!syndrome_sent && bob.state() == SessionState::kAwaitConfirm) {
              syndrome_sent = true;
              clk.schedule(0.0, [this, syndrome = bob.make_syndrome()] {
                bob_tx.send(syndrome);
              });
            }
            return response;
          },
          [this, accepts] { return accepts(bob.last_reject()); });
      link.set_handler(UnreliableChannel::Endpoint::kAlice,
                       [this](const Message& m) { alice_tx.on_wire(m); });
      link.set_handler(UnreliableChannel::Endpoint::kBob,
                       [this](const Message& m) { bob_tx.on_wire(m); });
    }

    bool established() const {
      return alice.state() == SessionState::kEstablished &&
             bob.state() == SessionState::kEstablished;
    }
  };

  const BitVec kb0 = random_key(900);
  const BitVec kb1 = random_key(901);
  SessionConfig scfg0;
  scfg0.session_id = 17;
  SessionConfig scfg1;
  scfg1.session_id = 33;
  Pair p0(clock, 0, *reconciler_, with_flips(kb0, 2, 910), kb0, scfg0);
  Pair p1(clock, 1, *reconciler_, with_flips(kb1, 2, 911), kb1, scfg1);
  p0.wire(clock);
  p1.wire(clock);

  // Stagger the starts so the two exchanges interleave mid-flight on the
  // shared timeline instead of running in lockstep.
  p0.alice_tx.send(p0.alice.start());
  clock.schedule(3.0, [&] { p1.alice_tx.send(p1.alice.start()); });

  std::size_t events = 0;
  while (!(p0.established() && p1.established()) && events < 100000) {
    if (!clock.run_next()) break;
    ++events;
  }

  ASSERT_TRUE(p0.established());
  ASSERT_TRUE(p1.established());
  EXPECT_TRUE(p0.alice.final_key() == p0.bob.final_key());
  EXPECT_TRUE(p1.alice.final_key() == p1.bob.final_key());
  EXPECT_FALSE(p0.alice.final_key() == p1.alice.final_key());

  // The links actually injected duplicates, and the replay guards absorbed
  // every one of them (no session ever entered a reject-fatal state).
  EXPECT_GT(p0.link.stats().duplicated + p1.link.stats().duplicated, 0u);
  EXPECT_GT(p0.alice.duplicates_suppressed() + p0.bob.duplicates_suppressed() +
                p1.alice.duplicates_suppressed() +
                p1.bob.duplicates_suppressed(),
            0u);
}

TEST_F(GatewayTest, LifecycleTicksLandOnTheGridAndCoverTheWholeRun) {
  GatewayConfig cfg = small_config(30, 8);
  cfg.tick_interval_ms = 1000.0;
  GatewayEngine engine(cfg, *reconciler_, material());
  std::vector<double> ticks;
  engine.set_tick([&ticks](double now_ms) { ticks.push_back(now_ms); });
  const GatewayReport rep = engine.run();

  // Ticks are lifecycle events on the shared clock: one per interval,
  // strictly on the 1 s grid, starting at the first interval.
  ASSERT_FALSE(ticks.empty());
  for (std::size_t i = 0; i < ticks.size(); ++i) {
    EXPECT_DOUBLE_EQ(ticks[i], 1000.0 * static_cast<double>(i + 1));
  }
  // The chain stops only at quiescence, so the final tick is the last event
  // and the makespan rounds up to the grid.
  EXPECT_DOUBLE_EQ(rep.makespan_ms, ticks.back());
  EXPECT_EQ(rep.established, 30u);

  // Observers are a pre-run decision.
  EXPECT_THROW(engine.set_tick([](double) {}), vkey::Error);

  // The same run without ticks produces identical session outcomes; only
  // the makespan differs, by less than one tick interval of grid rounding.
  GatewayEngine plain(small_config(30, 8), *reconciler_, material());
  const GatewayReport prep = plain.run();
  EXPECT_EQ(prep.established, rep.established);
  EXPECT_EQ(prep.rekeys, rep.rekeys);
  EXPECT_DOUBLE_EQ(prep.median_time_to_key_ms, rep.median_time_to_key_ms);
  EXPECT_DOUBLE_EQ(prep.p99_time_to_key_ms, rep.p99_time_to_key_ms);
  EXPECT_LE(prep.makespan_ms, rep.makespan_ms);
  EXPECT_LE(rep.makespan_ms - prep.makespan_ms, cfg.tick_interval_ms);
}

TEST_F(GatewayTest, TickObserverIsInertWithoutAnInterval) {
  // tick_interval_ms stays at its 0.0 default: the observer must never fire
  // and the run must behave exactly like an unobserved one.
  GatewayEngine engine(small_config(10, 4), *reconciler_, material());
  std::size_t fired = 0;
  engine.set_tick([&fired](double) { ++fired; });
  const GatewayReport rep = engine.run();
  EXPECT_EQ(fired, 0u);
  EXPECT_EQ(rep.established, 10u);
}

}  // namespace
}  // namespace vkey::protocol
