#include "protocol/group.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace vkey::protocol {
namespace {

BitVec random_key(std::uint64_t seed) {
  vkey::Rng rng(seed);
  BitVec k(128);
  for (std::size_t i = 0; i < 128; ++i) k.set(i, rng.bernoulli(0.5));
  return k;
}

TEST(GroupKey, AllMembersRecoverTheSameKey) {
  GroupKeyHub hub(1);
  const BitVec ka = random_key(10), kb = random_key(11), kc = random_key(12);
  hub.add_member("car-a", ka);
  hub.add_member("car-b", kb);
  hub.add_member("car-c", kc);

  const auto wrapped = hub.distribute();
  ASSERT_EQ(wrapped.size(), 3u);
  const BitVec expect = hub.group_key();
  const std::map<std::string, BitVec> keys{{"car-a", ka}, {"car-b", kb},
                                           {"car-c", kc}};
  for (const auto& [id, msg] : wrapped) {
    const auto got = unwrap_group_key(keys.at(id), msg);
    ASSERT_TRUE(got.has_value()) << id;
    EXPECT_EQ(*got, expect) << id;
  }
}

TEST(GroupKey, WrongPairwiseKeyCannotUnwrap) {
  GroupKeyHub hub(2);
  hub.add_member("car-a", random_key(20));
  const auto wrapped = hub.distribute();
  EXPECT_FALSE(unwrap_group_key(random_key(99), wrapped[0].second)
                   .has_value());
}

TEST(GroupKey, TamperedWrapRejected) {
  GroupKeyHub hub(3);
  const BitVec ka = random_key(30);
  hub.add_member("car-a", ka);
  auto wrapped = hub.distribute();
  wrapped[0].second.payload[0] ^= 0x01;
  EXPECT_FALSE(unwrap_group_key(ka, wrapped[0].second).has_value());
}

TEST(GroupKey, RemovalRotatesTheKey) {
  GroupKeyHub hub(4);
  const BitVec ka = random_key(40), kb = random_key(41);
  hub.add_member("car-a", ka);
  hub.add_member("car-b", kb);
  hub.distribute();
  const BitVec old_key = hub.group_key();

  hub.remove_member("car-b");
  const auto wrapped = hub.distribute();
  ASSERT_EQ(wrapped.size(), 1u);
  EXPECT_NE(hub.group_key(), old_key);
  // The departed member's pairwise key cannot unwrap the new epoch.
  EXPECT_FALSE(unwrap_group_key(kb, wrapped[0].second).has_value());
}

TEST(GroupKey, EpochsIncrease) {
  GroupKeyHub hub(5);
  hub.add_member("car-a", random_key(50));
  EXPECT_EQ(hub.epoch(), 0u);
  hub.distribute();
  EXPECT_EQ(hub.epoch(), 1u);
  hub.distribute();
  EXPECT_EQ(hub.epoch(), 2u);
}

TEST(GroupKey, FreshKeysPerEpoch) {
  GroupKeyHub hub(6);
  hub.add_member("car-a", random_key(60));
  hub.distribute();
  const BitVec k1 = hub.group_key();
  hub.distribute();
  EXPECT_NE(hub.group_key(), k1);
}

TEST(GroupKey, Validation) {
  GroupKeyHub hub(7);
  EXPECT_THROW(hub.distribute(), vkey::Error);   // no members
  EXPECT_THROW(hub.group_key(), vkey::Error);    // nothing distributed
  EXPECT_THROW(hub.add_member("x", BitVec(64)), vkey::Error);
  EXPECT_THROW(hub.add_member("", random_key(1)), vkey::Error);
  EXPECT_THROW(hub.remove_member("ghost"), vkey::Error);
}

}  // namespace
}  // namespace vkey::protocol
