// Reliability layer: virtual clock, fault-injecting channel, ARQ backoff
// and session recovery. Everything here runs on virtual time — no sleeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "core/reconciler.h"
#include "protocol/reliability.h"
#include "protocol/reliable_transport.h"
#include "protocol/session.h"
#include "protocol/sim_clock.h"
#include "protocol/unreliable_channel.h"

namespace vkey::protocol {
namespace {

// ------------------------------------------------------------------ SimClock

TEST(SimClock, RunsEventsInDueTimeOrder) {
  SimClock clock;
  std::vector<int> order;
  clock.schedule(30.0, [&] { order.push_back(3); });
  clock.schedule(10.0, [&] { order.push_back(1); });
  clock.schedule(20.0, [&] { order.push_back(2); });
  EXPECT_EQ(clock.run_until_idle(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(clock.now_ms(), 30.0);
}

TEST(SimClock, SameInstantFiresFifo) {
  SimClock clock;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    clock.schedule(7.0, [&order, i] { order.push_back(i); });
  }
  clock.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimClock, CancelPreventsExecution) {
  SimClock clock;
  int fired = 0;
  const auto id = clock.schedule(5.0, [&] { ++fired; });
  EXPECT_TRUE(clock.cancel(id));
  EXPECT_FALSE(clock.cancel(id));  // double cancel is a no-op
  clock.run_until_idle();
  EXPECT_EQ(fired, 0);
}

TEST(SimClock, CallbacksMayScheduleFurtherEvents) {
  SimClock clock;
  std::vector<double> times;
  clock.schedule(1.0, [&] {
    times.push_back(clock.now_ms());
    clock.schedule(2.0, [&] { times.push_back(clock.now_ms()); });
  });
  clock.run_until_idle();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
}

TEST(SimClock, RunUntilAdvancesClockEvenWhenIdle) {
  SimClock clock;
  EXPECT_EQ(clock.run_until(42.0), 0u);
  EXPECT_DOUBLE_EQ(clock.now_ms(), 42.0);
}

// ------------------------------------------------------------- backoff maths

TEST(ArqBackoff, DelaysRespectBaseCapAndExponentialCeiling) {
  ArqConfig cfg;
  cfg.base_backoff_ms = 50.0;
  cfg.max_backoff_ms = 2000.0;
  cfg.backoff_factor = 2.0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    vkey::Rng rng(seed);
    for (std::size_t attempt = 0; attempt < 12; ++attempt) {
      const double d = arq_backoff_delay_ms(cfg, attempt, rng);
      const double ceiling =
          std::min(cfg.max_backoff_ms,
                   cfg.base_backoff_ms *
                       std::pow(cfg.backoff_factor,
                                static_cast<double>(attempt)));
      EXPECT_GE(d, cfg.base_backoff_ms)
          << "attempt " << attempt << " seed " << seed;
      EXPECT_LE(d, ceiling) << "attempt " << attempt << " seed " << seed;
    }
  }
}

TEST(ArqBackoff, FirstAttemptIsExactlyBase) {
  ArqConfig cfg;
  cfg.base_backoff_ms = 123.0;
  vkey::Rng rng(9);
  EXPECT_DOUBLE_EQ(arq_backoff_delay_ms(cfg, 0, rng), 123.0);
}

TEST(ArqBackoff, DeterministicUnderFixedSeed) {
  ArqConfig cfg;
  vkey::Rng a(77), b(77);
  for (std::size_t attempt = 0; attempt < 10; ++attempt) {
    EXPECT_DOUBLE_EQ(arq_backoff_delay_ms(cfg, attempt, a),
                     arq_backoff_delay_ms(cfg, attempt, b));
  }
}

TEST(ArqBackoff, JitterActuallySpreadsDelays) {
  // Decorrelated jitter: at a high attempt index the interval
  // [base, cap] is wide, so distinct draws must not collapse to one value.
  ArqConfig cfg;
  cfg.base_backoff_ms = 100.0;
  cfg.max_backoff_ms = 6400.0;
  vkey::Rng rng(5);
  std::vector<double> draws;
  for (int i = 0; i < 16; ++i) draws.push_back(arq_backoff_delay_ms(cfg, 8, rng));
  std::sort(draws.begin(), draws.end());
  EXPECT_GT(draws.back() - draws.front(), 500.0);
}

// --------------------------------------------------------- UnreliableChannel

channel::LoRaParams fast_radio() {
  channel::LoRaParams p;
  p.spreading_factor = 7;  // keep virtual airtimes small in tests
  return p;
}

TEST(UnreliableChannel, FaultFreeLinkDeliversEverythingInOrder) {
  SimClock clock;
  PublicChannel base;
  FaultConfig faults;  // all probabilities zero
  UnreliableChannel link(clock, base, faults, fast_radio());
  std::vector<std::uint64_t> seen;
  link.set_handler(UnreliableChannel::Endpoint::kBob,
                   [&](const Message& m) { seen.push_back(m.nonce); });
  link.set_handler(UnreliableChannel::Endpoint::kAlice,
                   [](const Message&) {});
  for (std::uint64_t n = 0; n < 5; ++n) {
    Message m;
    m.session_id = 1;
    m.nonce = n;
    link.send(UnreliableChannel::Endpoint::kAlice, m);
  }
  clock.run_until_idle();
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(link.stats().delivered, 5u);
  EXPECT_EQ(link.stats().dropped, 0u);
  EXPECT_EQ(base.transcript().size(), 5u);  // Eve still sees everything
  EXPECT_GT(clock.now_ms(), 0.0);           // airtime-derived latency
}

TEST(UnreliableChannel, DropRateIsRoughlyHonoured) {
  SimClock clock;
  PublicChannel base;
  FaultConfig faults;
  faults.drop_prob = 0.3;
  faults.seed = 42;
  UnreliableChannel link(clock, base, faults, fast_radio());
  link.set_handler(UnreliableChannel::Endpoint::kBob, [](const Message&) {});
  link.set_handler(UnreliableChannel::Endpoint::kAlice,
                   [](const Message&) {});
  Message m;
  m.session_id = 1;
  for (std::uint64_t n = 0; n < 2000; ++n) {
    m.nonce = n;
    link.send(UnreliableChannel::Endpoint::kAlice, m);
  }
  clock.run_until_idle();
  const double observed =
      static_cast<double>(link.stats().dropped) / 2000.0;
  EXPECT_NEAR(observed, 0.3, 0.04);
  EXPECT_EQ(link.stats().delivered + link.stats().dropped, 2000u);
}

TEST(UnreliableChannel, DuplicationDeliversTwice) {
  SimClock clock;
  PublicChannel base;
  FaultConfig faults;
  faults.dup_prob = 1.0;
  UnreliableChannel link(clock, base, faults, fast_radio());
  std::size_t deliveries = 0;
  link.set_handler(UnreliableChannel::Endpoint::kBob,
                   [&](const Message&) { ++deliveries; });
  link.set_handler(UnreliableChannel::Endpoint::kAlice,
                   [](const Message&) {});
  Message m;
  link.send(UnreliableChannel::Endpoint::kAlice, m);
  clock.run_until_idle();
  EXPECT_EQ(deliveries, 2u);
  EXPECT_EQ(link.stats().duplicated, 1u);
}

TEST(UnreliableChannel, SeededFaultStreamIsReproducible) {
  const auto run = [] {
    SimClock clock;
    PublicChannel base;
    FaultConfig faults;
    faults.drop_prob = 0.25;
    faults.dup_prob = 0.1;
    faults.reorder_prob = 0.2;
    faults.seed = 7;
    UnreliableChannel link(clock, base, faults, fast_radio());
    std::vector<std::uint64_t> seen;
    link.set_handler(UnreliableChannel::Endpoint::kBob,
                     [&](const Message& m) { seen.push_back(m.nonce); });
    link.set_handler(UnreliableChannel::Endpoint::kAlice,
                     [](const Message&) {});
    Message m;
    for (std::uint64_t n = 0; n < 200; ++n) {
      m.nonce = n;
      link.send(UnreliableChannel::Endpoint::kAlice, m);
    }
    clock.run_until_idle();
    return seen;
  };
  EXPECT_EQ(run(), run());
}

// ------------------------------------------------- end-to-end key agreement

class ReliabilityTest : public ::testing::Test {
 public:  // helpers are shared with the free-standing drop-sweep driver
  static void SetUpTestSuite() {
    core::ReconcilerConfig cfg;
    cfg.key_bits = 64;
    cfg.decoder_units = 64;
    reconciler_ = new core::AutoencoderReconciler(cfg);
    reconciler_->train(2500, 25);
  }
  static void TearDownTestSuite() {
    delete reconciler_;
    reconciler_ = nullptr;
  }

  static BitVec random_key(std::uint64_t seed) {
    vkey::Rng rng(seed);
    BitVec k(64);
    for (std::size_t i = 0; i < 64; ++i) k.set(i, rng.bernoulli(0.5));
    return k;
  }

  static BitVec with_flips(const BitVec& k, int flips, std::uint64_t seed) {
    vkey::Rng rng(seed);
    BitVec out = k;
    for (int f = 0; f < flips; ++f) {
      out.flip(static_cast<std::size_t>(rng.uniform_int(out.size())));
    }
    return out;
  }

  /// Probe material for trial `trial`: Bob's key plus a 3-bit-noisy copy
  /// for Alice; attempts within a trial draw fresh material.
  static ProbeMaterialFn material_for(std::uint64_t trial) {
    return [trial](std::size_t attempt) {
      const std::uint64_t seed = hash_combine64(trial, attempt);
      const BitVec kb = random_key(seed);
      return std::make_pair(with_flips(kb, 3, seed ^ 0x5a5a), kb);
    };
  }

  static ReliabilityConfig config_for(double drop, std::uint64_t trial) {
    ReliabilityConfig cfg;
    cfg.radio = fast_radio();
    cfg.fault.drop_prob = drop;
    cfg.fault.seed = hash_combine64(0xfau, trial);
    cfg.arq.seed = hash_combine64(0x1eadu, trial);
    return cfg;
  }

  static core::AutoencoderReconciler* reconciler_;
};

core::AutoencoderReconciler* ReliabilityTest::reconciler_ = nullptr;

TEST_F(ReliabilityTest, FaultFreeRunMatchesSeedPathAndNeverRetransmits) {
  const BitVec kb = random_key(100);
  const BitVec ka = with_flips(kb, 3, 101);

  // Seed path: the plain in-order channel.
  SessionConfig scfg;
  AliceSession alice(scfg, *reconciler_, ka);
  BobSession bob(scfg, *reconciler_, kb);
  PublicChannel plain;
  const auto detail = run_key_agreement_detailed(plain, alice, bob);
  ASSERT_TRUE(detail.established);

  // Reliability layer with zero faults on the same material.
  PublicChannel base;
  ReliabilityConfig cfg = config_for(0.0, 1);
  const auto report = run_reliable_key_agreement(
      base, *reconciler_, cfg,
      [&](std::size_t) { return std::make_pair(ka, kb); });
  ASSERT_TRUE(report.established);
  EXPECT_EQ(report.attempts, 1u);
  EXPECT_EQ(report.failure, FailureReason::kNone);
  EXPECT_EQ(report.key, alice.final_key());  // identical to the seed path
  const auto& att = report.attempt_log.front();
  EXPECT_EQ(att.alice_transport.retransmissions, 0u);
  EXPECT_EQ(att.bob_transport.retransmissions, 0u);
  EXPECT_EQ(att.alice_duplicates_suppressed, 0u);
  EXPECT_GT(report.time_to_establish_ms, 0.0);
}

// Acceptance criterion: at 10% and 25% drop on every message type, key
// agreement succeeds >= 99% of 200 trials within the retry budget, both
// parties hold identical keys in every success, and the counters report
// retransmissions.
void run_drop_sweep(double drop, core::AutoencoderReconciler& reconciler) {
  constexpr int kTrials = 200;
  int successes = 0;
  std::size_t total_retransmissions = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    ReliabilityConfig cfg = ReliabilityTest::config_for(
        drop, static_cast<std::uint64_t>(trial) + 1);
    PublicChannel base;
    const auto report = run_reliable_key_agreement(
        base, reconciler, cfg,
        ReliabilityTest::material_for(static_cast<std::uint64_t>(trial)));
    if (report.established) {
      ++successes;
      EXPECT_EQ(report.key.size(), 128u);
    }
    for (const auto& att : report.attempt_log) {
      total_retransmissions += att.alice_transport.retransmissions +
                               att.bob_transport.retransmissions;
    }
  }
  EXPECT_GE(successes, static_cast<int>(kTrials * 0.99))
      << "drop rate " << drop;
  EXPECT_GT(total_retransmissions, 0u) << "drop rate " << drop;
}

TEST_F(ReliabilityTest, SucceedsUnderTenPercentDrop) {
  run_drop_sweep(0.10, *reconciler_);
}

TEST_F(ReliabilityTest, SucceedsUnderTwentyFivePercentDrop) {
  run_drop_sweep(0.25, *reconciler_);
}

TEST_F(ReliabilityTest, SurvivesDuplicationAndReordering) {
  ReliabilityConfig cfg = config_for(0.1, 77);
  cfg.fault.dup_prob = 0.5;
  cfg.fault.reorder_prob = 0.5;
  cfg.fault.corrupt_prob = 0.05;
  PublicChannel base;
  const auto report =
      run_reliable_key_agreement(base, *reconciler_, cfg, material_for(77));
  ASSERT_TRUE(report.established);
  std::size_t dups = 0;
  for (const auto& att : report.attempt_log) {
    dups += att.alice_duplicates_suppressed + att.bob_duplicates_suppressed;
  }
  EXPECT_GT(dups, 0u);  // the sessions saw and absorbed duplicates
}

TEST_F(ReliabilityTest, RecoversWithFreshSessionAfterTamperedAttempt) {
  // A MITM tampers every syndrome of the first session id only: attempt 1
  // must fail with a MAC mismatch and the supervisor must re-negotiate
  // under a fresh session id and succeed.
  PublicChannel base;
  ReliabilityConfig cfg = config_for(0.0, 5);
  const std::uint64_t doomed = cfg.base_session_id;
  base.set_interceptor(
      [doomed](const Message& msg) -> std::optional<Message> {
        if (msg.type != MessageType::kSyndrome ||
            msg.session_id != doomed || msg.payload.empty()) {
          return msg;
        }
        Message tampered = msg;
        tampered.payload[0] ^= 0x80;
        return tampered;
      });
  const auto report =
      run_reliable_key_agreement(base, *reconciler_, cfg, material_for(5));
  ASSERT_TRUE(report.established);
  EXPECT_EQ(report.attempts, 2u);
  ASSERT_EQ(report.attempt_log.size(), 2u);
  EXPECT_EQ(report.attempt_log[0].failure, FailureReason::kMacMismatch);
  EXPECT_EQ(report.attempt_log[0].alice_state, SessionState::kFailed);
  EXPECT_EQ(report.attempt_log[1].failure, FailureReason::kNone);
  EXPECT_EQ(report.attempt_log[1].session_id, cfg.base_session_id + 1);
}

TEST_F(ReliabilityTest, ReportsRetryExhaustionOnHopelessLink) {
  ReliabilityConfig cfg = config_for(0.95, 9);
  cfg.arq.max_retries = 2;
  cfg.max_session_attempts = 2;
  PublicChannel base;
  const auto report =
      run_reliable_key_agreement(base, *reconciler_, cfg, material_for(9));
  EXPECT_FALSE(report.established);
  EXPECT_EQ(report.attempts, 2u);
  EXPECT_EQ(report.failure, FailureReason::kRetryExhausted);
  EXPECT_TRUE(report.key.empty());
}

// ------------------------------------------- structured agreement results

TEST_F(ReliabilityTest, DetailedResultCarriesTerminalStates) {
  const BitVec kb = random_key(60);
  SessionConfig scfg;
  AliceSession alice(scfg, *reconciler_, with_flips(kb, 2, 61));
  BobSession bob(scfg, *reconciler_, kb);
  PublicChannel ch;
  const auto result = run_key_agreement_detailed(ch, alice, bob);
  EXPECT_TRUE(result.established);
  EXPECT_TRUE(static_cast<bool>(result));
  EXPECT_EQ(result.alice_state, SessionState::kEstablished);
  EXPECT_EQ(result.bob_state, SessionState::kEstablished);
  EXPECT_FALSE(result.hit_delivery_cap);
  EXPECT_GE(result.delivered, 4u);  // request, accept, syndrome, confirm, ack
}

TEST_F(ReliabilityTest, DetailedResultExplainsFailure) {
  // Uncorrelated keys: reconciliation cannot fix them, the MAC check fires.
  SessionConfig scfg;
  AliceSession alice(scfg, *reconciler_, random_key(70));
  BobSession bob(scfg, *reconciler_, random_key(71));
  PublicChannel ch;
  const auto result = run_key_agreement_detailed(ch, alice, bob);
  EXPECT_FALSE(result.established);
  EXPECT_EQ(result.alice_state, SessionState::kFailed);
  EXPECT_EQ(result.alice_reject, RejectReason::kMacMismatch);
}

TEST_F(ReliabilityTest, FailureReasonStringsAreHumanReadable) {
  EXPECT_EQ(to_string(FailureReason::kRetryExhausted), "retry-exhausted");
  EXPECT_EQ(to_string(FailureReason::kNone), "none");
  EXPECT_EQ(to_string(FailureReason::kTimeout), "timeout");
}

}  // namespace
}  // namespace vkey::protocol
