#include "protocol/channel.h"

#include <gtest/gtest.h>

namespace vkey::protocol {
namespace {

Message msg(MessageType type, std::uint64_t nonce) {
  Message m;
  m.type = type;
  m.session_id = 1;
  m.nonce = nonce;
  return m;
}

TEST(PublicChannel, FifoDelivery) {
  PublicChannel ch;
  ch.send(msg(MessageType::kKeyGenRequest, 1));
  ch.send(msg(MessageType::kKeyGenAccept, 2));
  EXPECT_EQ(ch.pending(), 2u);
  EXPECT_EQ(ch.receive()->nonce, 1u);
  EXPECT_EQ(ch.receive()->nonce, 2u);
  EXPECT_FALSE(ch.receive().has_value());
}

TEST(PublicChannel, TranscriptRecordsEverything) {
  PublicChannel ch;
  ch.send(msg(MessageType::kKeyGenRequest, 1));
  (void)ch.receive();
  ch.send(msg(MessageType::kSyndrome, 2));
  ASSERT_EQ(ch.transcript().size(), 2u);
  EXPECT_EQ(ch.transcript()[1].type, MessageType::kSyndrome);
}

TEST(PublicChannel, InterceptorCanModify) {
  PublicChannel ch;
  ch.set_interceptor([](const Message& m) {
    Message t = m;
    t.nonce = 99;
    return t;
  });
  ch.send(msg(MessageType::kData, 1));
  EXPECT_EQ(ch.receive()->nonce, 99u);
  // The transcript keeps the original.
  EXPECT_EQ(ch.transcript()[0].nonce, 1u);
}

TEST(PublicChannel, InterceptorCanDrop) {
  PublicChannel ch;
  ch.set_interceptor([](const Message&) { return std::nullopt; });
  ch.send(msg(MessageType::kData, 1));
  EXPECT_EQ(ch.pending(), 0u);
  EXPECT_EQ(ch.transcript().size(), 1u);
}

TEST(PublicChannel, ClearInterceptor) {
  PublicChannel ch;
  ch.set_interceptor([](const Message&) { return std::nullopt; });
  ch.set_interceptor(nullptr);
  ch.send(msg(MessageType::kData, 1));
  EXPECT_EQ(ch.pending(), 1u);
}

TEST(PublicChannel, InjectBypassesTranscript) {
  PublicChannel ch;
  ch.inject(msg(MessageType::kSyndrome, 5));
  EXPECT_EQ(ch.pending(), 1u);
  EXPECT_TRUE(ch.transcript().empty());  // forged, never "sent"
}

}  // namespace
}  // namespace vkey::protocol
