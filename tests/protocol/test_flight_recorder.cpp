// Flight recorder: ring bounds, timestamp sources, JSON/dump formats, and
// the reliability supervisor's per-attempt wiring — a failed agreement must
// carry a timeline that names the injected fault, byte-identical across
// runs with the same seed.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "common/rng.h"
#include "core/reconciler.h"
#include "protocol/flight_recorder.h"
#include "protocol/reliability.h"
#include "protocol/sim_clock.h"
#include "protocol/unreliable_channel.h"

namespace vkey::protocol {
namespace {

TEST(FlightRecorder, RecordsEventsWithOrdinalsAndClockStamps) {
  SimClock clock;
  FlightRecorder rec(8, [&clock] { return clock.now_ms(); });
  rec.record(FlightEventKind::kFrameTx, "alice", "key-gen-request", 5, 1);
  clock.run_until(42.5);
  rec.record(FlightEventKind::kFrameRx, "bob", "key-gen-request", 5, 1);

  const auto events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].t_ms, 0.0);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].actor, "alice");
  EXPECT_EQ(events[0].session_id, 5u);
  EXPECT_DOUBLE_EQ(events[1].t_ms, 42.5);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[1].kind, FlightEventKind::kFrameRx);
}

TEST(FlightRecorder, WithoutAClockTheOrdinalIsTheStamp) {
  FlightRecorder rec(4);
  rec.record(FlightEventKind::kInjected, "harness", "truncation");
  rec.record(FlightEventKind::kInjected, "harness", "bitflip");
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].t_ms, 0.0);
  EXPECT_DOUBLE_EQ(events[1].t_ms, 1.0);
}

TEST(FlightRecorder, RingDropsOldestAndKeepsTotals) {
  FlightRecorder rec(3);
  for (int i = 0; i < 7; ++i) {
    rec.record(FlightEventKind::kFrameTx, "alice", std::to_string(i));
  }
  EXPECT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.dropped(), 4u);
  EXPECT_EQ(rec.total(), 7u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 3u);
  // Newest three survive, oldest first, with their original ordinals.
  EXPECT_EQ(events[0].detail, "4");
  EXPECT_EQ(events[0].seq, 4u);
  EXPECT_EQ(events[2].detail, "6");
}

TEST(FlightRecorder, ZeroCapacityDisablesRecording) {
  FlightRecorder rec(0);
  rec.record(FlightEventKind::kFrameTx, "alice");
  EXPECT_EQ(rec.size(), 0u);
}

TEST(FlightRecorder, DumpIsDeterministicAndNamesEveryField) {
  auto build = [] {
    SimClock clock;
    FlightRecorder rec(16, [&clock] { return clock.now_ms(); });
    clock.run_until(12.25);
    rec.record(FlightEventKind::kDrop, "link", "key-gen-accept", 9, 3);
    rec.record(FlightEventKind::kRetransmit, "bob", "timeout attempt=1", 9, 3);
    return rec.dump();
  };
  const std::string dump = build();
  EXPECT_EQ(dump, build());
  EXPECT_NE(dump.find("2 event(s)"), std::string::npos);
  EXPECT_NE(dump.find("drop"), std::string::npos);
  EXPECT_NE(dump.find("link"), std::string::npos);
  EXPECT_NE(dump.find("key-gen-accept"), std::string::npos);
  EXPECT_NE(dump.find("session=9"), std::string::npos);
  EXPECT_NE(dump.find("nonce=3"), std::string::npos);
  EXPECT_NE(dump.find("12.250 ms"), std::string::npos);
}

TEST(FlightRecorder, ToJsonCarriesEventsDroppedAndTotal) {
  FlightRecorder rec(2);
  rec.record(FlightEventKind::kReject, "alice", "mac-mismatch on syndrome");
  rec.record(FlightEventKind::kStateChange, "alice", "await-syndrome->failed");
  rec.record(FlightEventKind::kAttemptEnd, "supervisor", "mac-mismatch");
  const json::Value doc = rec.to_json();
  EXPECT_DOUBLE_EQ(doc.at("dropped").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(doc.at("total").as_number(), 3.0);
  const auto& events = doc.at("events").as_array();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("kind").as_string(), "state-change");
  EXPECT_EQ(events[1].at("actor").as_string(), "supervisor");
}

TEST(FlightRecorder, ChannelWiringRecordsInjectedFaults) {
  SimClock clock;
  PublicChannel base;
  FaultConfig faults;
  faults.drop_prob = 0.5;
  faults.seed = 11;
  channel::LoRaParams radio;
  radio.spreading_factor = 7;  // keep virtual airtimes small
  UnreliableChannel link(clock, base, faults, radio);
  FlightRecorder rec(256, [&clock] { return clock.now_ms(); });
  link.set_recorder(&rec);
  link.set_handler(UnreliableChannel::Endpoint::kBob, [](const Message&) {});
  link.set_handler(UnreliableChannel::Endpoint::kAlice, [](const Message&) {});

  Message m;
  m.type = MessageType::kKeyGenRequest;
  for (std::uint64_t n = 0; n < 40; ++n) {
    m.nonce = n;
    link.send(UnreliableChannel::Endpoint::kAlice, m);
  }
  clock.run_until_idle();

  std::size_t tx = 0, rx = 0, drops = 0;
  for (const auto& ev : rec.events()) {
    if (ev.kind == FlightEventKind::kFrameTx) ++tx;
    if (ev.kind == FlightEventKind::kFrameRx) ++rx;
    if (ev.kind == FlightEventKind::kDrop) ++drops;
  }
  EXPECT_EQ(tx, 40u);
  EXPECT_GT(drops, 0u);     // 50% drop over 40 frames
  EXPECT_EQ(tx, rx + drops);  // every frame either arrived or was dropped
}

// ------------------------------------------- supervisor wiring (end to end)

class FlightReliabilityTest : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    core::ReconcilerConfig cfg;
    cfg.key_bits = 64;
    cfg.decoder_units = 64;
    reconciler_ = new core::AutoencoderReconciler(cfg);
    reconciler_->train(2500, 25);
  }
  static void TearDownTestSuite() {
    delete reconciler_;
    reconciler_ = nullptr;
  }

  static BitVec random_key(std::uint64_t seed) {
    vkey::Rng rng(seed);
    BitVec k(64);
    for (std::size_t i = 0; i < 64; ++i) k.set(i, rng.bernoulli(0.5));
    return k;
  }

  static core::AutoencoderReconciler* reconciler_;
};

core::AutoencoderReconciler* FlightReliabilityTest::reconciler_ = nullptr;

TEST_F(FlightReliabilityTest, AttemptTimelineTravelsWithTheReport) {
  ReliabilityConfig cfg;
  cfg.fault.drop_prob = 0.3;
  cfg.fault.seed = 21;
  cfg.arq.seed = 22;
  PublicChannel base;
  const BitVec kb = random_key(33);
  const auto report = run_reliable_key_agreement(
      base, *reconciler_, cfg, [&](std::size_t) {
        return std::make_pair(kb, kb);  // identical keys: reconciles cleanly
      });
  ASSERT_TRUE(report.established);
  ASSERT_FALSE(report.attempt_log.empty());
  const auto& flight = report.attempt_log.back().flight;
  const auto events = flight.events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().kind, FlightEventKind::kAttemptStart);
  EXPECT_EQ(events.back().kind, FlightEventKind::kAttemptEnd);
  EXPECT_EQ(events.back().detail, "established");
  // An established agreement has no post-mortem.
  EXPECT_TRUE(report.failure_dump().empty());
}

TEST_F(FlightReliabilityTest, FailureDumpNamesTheInjectedFault) {
  // Certain-drop on a single attempt: the ARQ burns its budget and the
  // supervisor reports kRetryExhausted; the timeline must show the drops.
  ReliabilityConfig cfg;
  cfg.fault.drop_prob = 0.95;
  cfg.fault.seed = 4;
  cfg.arq.seed = 5;
  cfg.max_session_attempts = 1;
  PublicChannel base;
  const BitVec kb = random_key(44);
  const auto report = run_reliable_key_agreement(
      base, *reconciler_, cfg,
      [&](std::size_t) { return std::make_pair(kb, kb); });
  ASSERT_FALSE(report.established);

  const std::string dump = report.failure_dump();
  ASSERT_FALSE(dump.empty());
  EXPECT_NE(dump.find(to_string(report.failure)), std::string::npos);
  EXPECT_NE(dump.find("drop"), std::string::npos);  // the injected fault
  EXPECT_NE(dump.find("attempt-start"), std::string::npos);
}

TEST_F(FlightReliabilityTest, SameSeedYieldsByteIdenticalDumps) {
  auto run = [&] {
    ReliabilityConfig cfg;
    cfg.fault.drop_prob = 0.95;
    cfg.fault.seed = 4;
    cfg.arq.seed = 5;
    cfg.max_session_attempts = 1;
    PublicChannel base;
    const BitVec kb = random_key(44);
    const auto report = run_reliable_key_agreement(
        base, *reconciler_, cfg,
        [&](std::size_t) { return std::make_pair(kb, kb); });
    return report.failure_dump();
  };
  const std::string first = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run());
}

TEST_F(FlightReliabilityTest, ZeroFlightCapacityDisablesTheTimeline) {
  ReliabilityConfig cfg;
  cfg.flight_capacity = 0;
  cfg.fault.drop_prob = 0.95;
  cfg.fault.seed = 4;
  cfg.arq.seed = 5;
  cfg.max_session_attempts = 1;
  PublicChannel base;
  const BitVec kb = random_key(44);
  const auto report = run_reliable_key_agreement(
      base, *reconciler_, cfg,
      [&](std::size_t) { return std::make_pair(kb, kb); });
  ASSERT_FALSE(report.established);
  EXPECT_EQ(report.attempt_log.back().flight.size(), 0u);
  EXPECT_TRUE(report.failure_dump().empty());
}

}  // namespace
}  // namespace vkey::protocol
