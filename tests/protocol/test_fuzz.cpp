// Robustness fuzzing of the wire-facing surfaces: whatever bytes arrive
// from the public channel, the parser and the session state machines must
// never crash, hang or corrupt state — they reject and move on.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "protocol/message.h"

namespace vkey::protocol {
namespace {

TEST(Fuzz, DeserializeNeverCrashesOnRandomBytes) {
  vkey::Rng rng(0xf0220);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t len = rng.uniform_int(120);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(256));
    const auto msg = deserialize(bytes);
    if (msg.has_value()) {
      // Anything accepted must round-trip to the same bytes.
      EXPECT_EQ(serialize(*msg), bytes);
    }
  }
}

TEST(Fuzz, BitflippedValidMessagesParseOrRejectCleanly) {
  Message m;
  m.type = MessageType::kSyndrome;
  m.session_id = 42;
  m.nonce = 7;
  m.payload.assign(32, 0xab);
  m.mac.assign(32, 0xcd);
  const auto bytes = serialize(m);

  vkey::Rng rng(0xf11b);
  for (int trial = 0; trial < 500; ++trial) {
    auto mutated = bytes;
    const std::size_t pos = rng.uniform_int(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(8));
    const auto parsed = deserialize(mutated);
    if (parsed.has_value()) {
      EXPECT_EQ(serialize(*parsed), mutated);
    }
  }
}

TEST(Fuzz, TruncatedAndExtendedFramesRejected) {
  Message m;
  m.type = MessageType::kData;
  m.session_id = 1;
  m.nonce = 2;
  m.payload = {1, 2, 3};
  const auto bytes = serialize(m);
  for (std::size_t cut = 1; cut <= bytes.size(); ++cut) {
    const std::vector<std::uint8_t> shorter(
        bytes.begin(), bytes.end() - static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(deserialize(shorter).has_value());
  }
  auto longer = bytes;
  longer.push_back(0);
  EXPECT_FALSE(deserialize(longer).has_value());
}

TEST(Fuzz, HugeLengthFieldsDoNotAllocate) {
  // Craft a frame claiming a payload of 2^60 bytes; the parser must reject
  // it by bounds-checking against the actual buffer, not trust the field.
  std::vector<std::uint8_t> bytes;
  bytes.push_back(3);  // kSyndrome
  for (int i = 0; i < 16; ++i) bytes.push_back(0);  // session + nonce
  // payload length = 2^60
  bytes.push_back(0x10);
  for (int i = 0; i < 7; ++i) bytes.push_back(0);
  bytes.push_back(0xff);  // one byte of "payload"
  EXPECT_FALSE(deserialize(bytes).has_value());
}

}  // namespace
}  // namespace vkey::protocol
