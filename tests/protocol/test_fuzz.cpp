// Robustness fuzzing of the wire-facing surfaces: whatever bytes arrive
// from the public channel, the parser and the session state machines must
// never crash, hang or corrupt state — they reject and move on.
#include <gtest/gtest.h>

#include <deque>

#include "common/rng.h"
#include "core/reconciler.h"
#include "protocol/flight_recorder.h"
#include "protocol/message.h"
#include "protocol/session.h"
#include "protocol/wire.h"

namespace vkey::protocol {
namespace {

TEST(Fuzz, DeserializeNeverCrashesOnRandomBytes) {
  vkey::Rng rng(0xf0220);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t len = rng.uniform_int(120);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(256));
    const auto msg = deserialize(bytes);
    if (msg.has_value()) {
      // Anything accepted must round-trip to the same bytes.
      EXPECT_EQ(serialize(*msg), bytes);
    }
  }
}

TEST(Fuzz, BitflippedValidMessagesParseOrRejectCleanly) {
  Message m;
  m.type = MessageType::kSyndrome;
  m.session_id = 42;
  m.nonce = 7;
  m.payload.assign(32, 0xab);
  m.mac.assign(32, 0xcd);
  const auto bytes = serialize(m);

  vkey::Rng rng(0xf11b);
  for (int trial = 0; trial < 500; ++trial) {
    auto mutated = bytes;
    const std::size_t pos = rng.uniform_int(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(8));
    const auto parsed = deserialize(mutated);
    if (parsed.has_value()) {
      EXPECT_EQ(serialize(*parsed), mutated);
    }
  }
}

TEST(Fuzz, TruncatedAndExtendedFramesRejected) {
  Message m;
  m.type = MessageType::kData;
  m.session_id = 1;
  m.nonce = 2;
  m.payload = {1, 2, 3};
  const auto bytes = serialize(m);
  for (std::size_t cut = 1; cut <= bytes.size(); ++cut) {
    const std::vector<std::uint8_t> shorter(
        bytes.begin(), bytes.end() - static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(deserialize(shorter).has_value());
  }
  auto longer = bytes;
  longer.push_back(0);
  EXPECT_FALSE(deserialize(longer).has_value());
}

TEST(Fuzz, HugeLengthFieldsDoNotAllocate) {
  // Craft a frame claiming a payload of 2^60 bytes; the parser must reject
  // it by bounds-checking against the actual buffer, not trust the field.
  std::vector<std::uint8_t> bytes;
  bytes.push_back(3);  // kSyndrome
  for (int i = 0; i < 16; ++i) bytes.push_back(0);  // session + nonce
  // payload length = 2^60
  bytes.push_back(0x10);
  for (int i = 0; i < 7; ++i) bytes.push_back(0);
  bytes.push_back(0xff);  // one byte of "payload"
  EXPECT_FALSE(deserialize(bytes).has_value());
}

// --------------------------------------------------------- frame codec fuzz
//
// 100k seeded mutations of valid wire frames (bit flips, truncations,
// length-field rewrites, version skew, pure garbage). Invariants, checked
// under the sanitizer presets in CI: the decoder never crashes or reads out
// of bounds, every rejection carries a typed WireError, and everything it
// accepts re-encodes byte-for-byte.

TEST(Fuzz, HundredThousandMutatedFramesRejectTypedOrRoundTrip) {
  // Corpus: one valid frame per message type, with varying payload shapes.
  std::vector<std::vector<std::uint8_t>> corpus;
  for (std::uint8_t t = 1; t <= kMaxMessageType; ++t) {
    Message m;
    m.type = static_cast<MessageType>(t);
    m.session_id = 0x1020304050607080ULL + t;
    m.nonce = t * 13u;
    m.payload.assign(static_cast<std::size_t>(t) * 7u, t);
    if (t % 2 == 0) m.mac.assign(32, static_cast<std::uint8_t>(0xc0 + t));
    corpus.push_back(wire::encode_frame(m));
  }

  constexpr int kCases = 100'000;
  vkey::Rng rng(0xf4a3e5);
  int accepted = 0;
  std::size_t reject_reasons[16] = {};
  for (int trial = 0; trial < kCases; ++trial) {
    auto bytes = corpus[rng.uniform_int(corpus.size())];
    switch (rng.uniform_int(5)) {
      case 0:  // 1..8 bit flips anywhere in the frame
        for (std::uint64_t f = 0, n = 1 + rng.uniform_int(8); f < n; ++f) {
          bytes[rng.uniform_int(bytes.size())] ^=
              static_cast<std::uint8_t>(1u << rng.uniform_int(8));
        }
        break;
      case 1:  // truncate (or keep whole, exercising the accept path)
        bytes.resize(rng.uniform_int(bytes.size() + 1));
        break;
      case 2:  // rewrite the length fields
        bytes[3] = static_cast<std::uint8_t>(rng.uniform_int(256));
        bytes[4] = static_cast<std::uint8_t>(rng.uniform_int(256));
        bytes[5] = static_cast<std::uint8_t>(rng.uniform_int(256));
        break;
      case 3:  // version skew (and occasionally magic damage)
        bytes[2] = static_cast<std::uint8_t>(rng.uniform_int(256));
        if (rng.bernoulli(0.3)) {
          bytes[rng.uniform_int(2)] =
              static_cast<std::uint8_t>(rng.uniform_int(256));
        }
        break;
      default:  // pure garbage of arbitrary small size
        bytes.resize(rng.uniform_int(96));
        for (auto& b : bytes) {
          b = static_cast<std::uint8_t>(rng.uniform_int(256));
        }
        break;
    }

    wire::WireError err = wire::WireError::kNone;
    const auto frame = wire::decode_frame(bytes, &err);
    if (frame.has_value()) {
      ++accepted;
      ASSERT_EQ(err, wire::WireError::kNone) << "trial " << trial;
      ASSERT_EQ(wire::encode_frame(*frame), bytes) << "trial " << trial;
    } else {
      // Every rejection must be typed — kNone on a failed decode would mean
      // an untracked reject path.
      ASSERT_NE(err, wire::WireError::kNone) << "trial " << trial;
      ++reject_reasons[static_cast<std::size_t>(err)];
    }
  }

  // The mutation mix must have exercised both outcomes and the full reject
  // taxonomy's structural core (truncated / magic / version / lengths / crc).
  EXPECT_GT(accepted, 0);
  EXPECT_GT(reject_reasons[size_t(wire::WireError::kTruncated)], 0u);
  EXPECT_GT(reject_reasons[size_t(wire::WireError::kBadMagic)], 0u);
  EXPECT_GT(reject_reasons[size_t(wire::WireError::kBadVersion)], 0u);
  EXPECT_GT(reject_reasons[size_t(wire::WireError::kOversizedPayload)], 0u);
  EXPECT_GT(reject_reasons[size_t(wire::WireError::kOversizedMac)], 0u);
  EXPECT_GT(reject_reasons[size_t(wire::WireError::kBadCrc)], 0u);
}

// ------------------------------------------------- session interleaving fuzz
//
// Drive the two state machines with seeded random interleavings of valid,
// duplicated, reordered and bit-flipped protocol messages. Invariants:
// no crash, state-machine monotonicity (states only move forward and
// terminal states are sticky), and if both parties reach kEstablished they
// hold the identical key.

class SessionFuzz : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::ReconcilerConfig cfg;
    cfg.key_bits = 64;
    cfg.decoder_units = 48;
    reconciler_ = new core::AutoencoderReconciler(cfg);
    reconciler_->train(1500, 15);
  }
  static void TearDownTestSuite() {
    delete reconciler_;
    reconciler_ = nullptr;
  }

  static int rank(SessionState s) { return static_cast<int>(s); }
  static bool terminal(SessionState s) {
    return s == SessionState::kEstablished || s == SessionState::kFailed;
  }

  static core::AutoencoderReconciler* reconciler_;
};

core::AutoencoderReconciler* SessionFuzz::reconciler_ = nullptr;

TEST_F(SessionFuzz, RandomInterleavingsNeverCrashOrDisagree) {
  constexpr int kTrials = 2000;
  int established_both = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    vkey::Rng rng(
        hash_combine64(0xf0e555ULL, static_cast<std::uint64_t>(trial)));
    BitVec kb(64), ka;
    for (std::size_t i = 0; i < 64; ++i) kb.set(i, rng.bernoulli(0.5));
    ka = kb;
    const int flips = static_cast<int>(rng.uniform_int(9));  // 0..8
    for (int f = 0; f < flips; ++f) {
      ka.flip(static_cast<std::size_t>(rng.uniform_int(64)));
    }

    SessionConfig cfg;
    AliceSession alice(cfg, *reconciler_, ka);
    BobSession bob(cfg, *reconciler_, kb);

    std::deque<Message> wire;
    wire.push_back(alice.start());
    SessionState alice_prev = alice.state();
    SessionState bob_prev = bob.state();
    bool syndrome_queued = false;

    int steps = 0;
    while (!wire.empty() && steps++ < 64) {
      // Reordering: pull a random in-flight message, not the oldest.
      const std::size_t pick = rng.uniform_int(wire.size());
      Message msg = wire[pick];
      wire.erase(wire.begin() + static_cast<std::ptrdiff_t>(pick));

      // Duplication: occasionally leave a copy in flight.
      if (rng.bernoulli(0.2)) wire.push_back(msg);

      // Corruption: flip a random bit of the serialized frame; frames that
      // no longer parse are lost on the wire.
      if (rng.bernoulli(0.15)) {
        auto bytes = serialize(msg);
        bytes[rng.uniform_int(bytes.size())] ^=
            static_cast<std::uint8_t>(1u << rng.uniform_int(8));
        auto reparsed = deserialize(bytes);
        if (!reparsed.has_value()) continue;
        msg = *reparsed;
      }

      // Route by direction, as run_key_agreement does.
      std::optional<Message> reply;
      if (msg.type == MessageType::kKeyGenRequest ||
          msg.type == MessageType::kKeyConfirm) {
        reply = bob.handle(msg);
      } else {
        reply = alice.handle(msg);
      }
      if (reply) wire.push_back(*reply);
      if (!syndrome_queued && bob.state() == SessionState::kAwaitConfirm) {
        syndrome_queued = true;
        wire.push_back(bob.make_syndrome());
      }

      // Monotonicity: states only move forward; terminal states are sticky.
      ASSERT_GE(rank(alice.state()), rank(alice_prev)) << "trial " << trial;
      ASSERT_GE(rank(bob.state()), rank(bob_prev)) << "trial " << trial;
      if (terminal(alice_prev)) {
        ASSERT_EQ(alice.state(), alice_prev) << "trial " << trial;
      }
      if (terminal(bob_prev)) {
        ASSERT_EQ(bob.state(), bob_prev) << "trial " << trial;
      }
      alice_prev = alice.state();
      bob_prev = bob.state();
    }

    if (alice.state() == SessionState::kEstablished &&
        bob.state() == SessionState::kEstablished) {
      ++established_both;
      ASSERT_EQ(alice.final_key(), bob.final_key()) << "trial " << trial;
    }
  }
  // Sanity: the fuzz must exercise the full handshake a meaningful number
  // of times, not just break it on the first message. Most trials lose a
  // frame to corruption (there is no ARQ at this layer), so full completion
  // is the minority outcome — but it must not be vanishingly rare.
  EXPECT_GT(established_both, kTrials / 40);
}

TEST_F(SessionFuzz, WireRejectedFramesLeaveNoPayloadResidueInSessionState) {
  // Secret-hygiene invariant (DESIGN.md "Secret hygiene & taint rules"): a
  // frame the codec rejects with a typed WireError materializes no Message,
  // so its payload bytes have nowhere to be copied — not into the state
  // machines, not into the flight-recorder timeline. This test bombards a
  // live session pair with rejected mutations between every genuine
  // delivery and asserts (a) every rejection is typed and yields no
  // Message, (b) all observable session state is untouched by the barrage,
  // and (c) the handshake still completes with matching keys, proving no
  // residue bent the outcome.
  vkey::Rng rng(0xd15ca4d);
  BitVec kb(64);
  for (std::size_t i = 0; i < 64; ++i) kb.set(i, rng.bernoulli(0.5));
  SessionConfig cfg;
  AliceSession alice(cfg, *reconciler_, kb);
  BobSession bob(cfg, *reconciler_, kb);
  FlightRecorder alice_rec(256), bob_rec(256);
  alice.set_recorder(&alice_rec, "alice");
  bob.set_recorder(&bob_rec, "bob");

  std::deque<Message> wire_q;
  wire_q.push_back(alice.start());
  bool syndrome_queued = false;
  int steps = 0;
  std::size_t rejected_mutations = 0;
  while (!wire_q.empty() && steps++ < 64) {
    Message msg = wire_q.front();
    wire_q.pop_front();

    const auto encoded = wire::encode_frame(msg);
    const auto a_state = alice.state();
    const auto b_state = bob.state();
    const auto a_rejects = alice.rejected_count();
    const auto b_rejects = bob.rejected_count();
    const auto a_events = alice_rec.size();
    const auto b_events = bob_rec.size();

    for (int k = 0; k < 32; ++k) {
      auto bad = encoded;
      switch (k % 4) {
        case 0:  // single bit flip anywhere (CRC covers the whole frame)
          bad[rng.uniform_int(bad.size())] ^=
              static_cast<std::uint8_t>(1u << rng.uniform_int(8));
          break;
        case 1:  // truncation
          bad.resize(rng.uniform_int(bad.size()));
          break;
        case 2:  // magic damage
          bad[0] ^= 0xff;
          break;
        default:  // version skew
          bad[2] ^= 0x55;
          break;
      }
      wire::WireError err = wire::WireError::kNone;
      const auto decoded = wire::decode_frame(bad, &err);
      if (decoded.has_value()) continue;  // mutation happened to stay valid
      ++rejected_mutations;
      // Typed rejection and no materialized Message: the mutated payload
      // bytes cannot have been copied into anything downstream.
      ASSERT_NE(err, wire::WireError::kNone) << "step " << steps;
    }

    // The barrage of rejected frames was a perfect no-op on both parties.
    ASSERT_EQ(alice.state(), a_state);
    ASSERT_EQ(bob.state(), b_state);
    ASSERT_EQ(alice.rejected_count(), a_rejects);
    ASSERT_EQ(bob.rejected_count(), b_rejects);
    ASSERT_EQ(alice_rec.size(), a_events);
    ASSERT_EQ(bob_rec.size(), b_events);

    // Now deliver the genuine frame and keep the handshake moving.
    std::optional<Message> reply;
    if (msg.type == MessageType::kKeyGenRequest ||
        msg.type == MessageType::kKeyConfirm) {
      reply = bob.handle(msg);
    } else {
      reply = alice.handle(msg);
    }
    if (reply) wire_q.push_back(*reply);
    if (!syndrome_queued && bob.state() == SessionState::kAwaitConfirm) {
      syndrome_queued = true;
      wire_q.push_back(bob.make_syndrome());
    }
  }

  EXPECT_GT(rejected_mutations, 100u);
  ASSERT_EQ(alice.state(), SessionState::kEstablished);
  ASSERT_EQ(bob.state(), SessionState::kEstablished);
  EXPECT_EQ(alice.final_key(), bob.final_key());
}

TEST_F(SessionFuzz, FailedFuzzedSessionDumpsTimelineNamingTheInjectedFault) {
  // Same interleaving harness, but with a flight recorder wired into both
  // sessions and fed a kInjected event for every harness-made fault. When a
  // fuzz trial kills a session, the recorder's dump must be a usable
  // post-mortem: it names the injected fault and the session's reaction
  // (reject + state change) in order, with no wall-clock in sight.
  bool saw_failed_session_with_fault = false;
  for (int trial = 0; trial < 400 && !saw_failed_session_with_fault;
       ++trial) {
    vkey::Rng rng(
        hash_combine64(0xf7169ULL, static_cast<std::uint64_t>(trial)));
    BitVec kb(64), ka;
    for (std::size_t i = 0; i < 64; ++i) kb.set(i, rng.bernoulli(0.5));
    ka = kb;
    for (int f = 0; f < 3; ++f) {
      ka.flip(static_cast<std::size_t>(rng.uniform_int(64)));
    }

    SessionConfig cfg;
    AliceSession alice(cfg, *reconciler_, ka);
    BobSession bob(cfg, *reconciler_, kb);
    FlightRecorder rec(256);  // no clock: ordinals order the timeline
    alice.set_recorder(&rec, "alice");
    bob.set_recorder(&rec, "bob");

    std::deque<Message> wire;
    wire.push_back(alice.start());
    bool syndrome_queued = false;
    bool injected = false;

    int steps = 0;
    while (!wire.empty() && steps++ < 64) {
      const std::size_t pick = rng.uniform_int(wire.size());
      Message msg = wire[pick];
      wire.erase(wire.begin() + static_cast<std::ptrdiff_t>(pick));

      if (rng.bernoulli(0.25)) {
        auto bytes = serialize(msg);
        bytes[rng.uniform_int(bytes.size())] ^=
            static_cast<std::uint8_t>(1u << rng.uniform_int(8));
        auto reparsed = deserialize(bytes);
        rec.record(FlightEventKind::kInjected, "harness",
                   "bitflip on " + to_string(msg.type), msg.session_id,
                   msg.nonce);
        injected = true;
        if (!reparsed.has_value()) continue;  // lost to the CRC
        msg = *reparsed;
      }

      std::optional<Message> reply;
      if (msg.type == MessageType::kKeyGenRequest ||
          msg.type == MessageType::kKeyConfirm) {
        reply = bob.handle(msg);
      } else {
        reply = alice.handle(msg);
      }
      if (reply) wire.push_back(*reply);
      if (!syndrome_queued && bob.state() == SessionState::kAwaitConfirm) {
        syndrome_queued = true;
        wire.push_back(bob.make_syndrome());
      }
    }

    const bool failed = alice.state() == SessionState::kFailed ||
                        bob.state() == SessionState::kFailed;
    if (!failed || !injected) continue;
    saw_failed_session_with_fault = true;

    const std::string dump = rec.dump();
    EXPECT_NE(dump.find("injected"), std::string::npos) << dump;
    EXPECT_NE(dump.find("bitflip on "), std::string::npos) << dump;
    EXPECT_NE(dump.find("->failed"), std::string::npos) << dump;
    // The injected fault precedes the failure transition in the timeline.
    EXPECT_LT(dump.find("injected"), dump.find("->failed")) << dump;
  }
  EXPECT_TRUE(saw_failed_session_with_fault)
      << "fuzz never produced a failed session with an injected fault";
}

}  // namespace
}  // namespace vkey::protocol
