#include "protocol/message.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vkey::protocol {
namespace {

Message sample_message() {
  Message m;
  m.type = MessageType::kSyndrome;
  m.session_id = 0x1122334455667788ULL;
  m.nonce = 42;
  m.payload = {1, 2, 3, 4, 5};
  m.mac = {9, 8, 7};
  return m;
}

TEST(Message, SerializeRoundTrip) {
  const Message m = sample_message();
  const auto bytes = serialize(m);
  const auto back = deserialize(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
}

TEST(Message, EmptyPayloadAndMacRoundTrip) {
  Message m;
  m.type = MessageType::kKeyGenRequest;
  m.session_id = 1;
  m.nonce = 0;
  const auto back = deserialize(serialize(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
}

TEST(Message, DeserializeRejectsEmpty) {
  EXPECT_FALSE(deserialize(std::vector<std::uint8_t>{}).has_value());
}

TEST(Message, DeserializeRejectsBadType) {
  auto bytes = serialize(sample_message());
  bytes[0] = 99;
  EXPECT_FALSE(deserialize(bytes).has_value());
}

TEST(Message, DeserializeRejectsTruncation) {
  const auto bytes = serialize(sample_message());
  for (std::size_t cut = 1; cut < bytes.size(); cut += 3) {
    const std::vector<std::uint8_t> shorter(bytes.begin(),
                                            bytes.end() - static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(deserialize(shorter).has_value()) << "cut " << cut;
  }
}

TEST(Message, DeserializeRejectsTrailingGarbage) {
  auto bytes = serialize(sample_message());
  bytes.push_back(0xff);
  EXPECT_FALSE(deserialize(bytes).has_value());
}

TEST(Message, MacInputExcludesMac) {
  Message a = sample_message();
  Message b = a;
  b.mac = {0xde, 0xad};
  EXPECT_EQ(mac_input(a), mac_input(b));
  b.nonce += 1;
  EXPECT_NE(mac_input(a), mac_input(b));
}

TEST(Message, PackUnpackDoubles) {
  const std::vector<double> v{1.5, -2.25, 3.125, 0.0};
  EXPECT_EQ(unpack_doubles(pack_doubles(v)), v);
}

TEST(Message, UnpackRejectsMisaligned) {
  EXPECT_THROW(unpack_doubles(std::vector<std::uint8_t>(7)), vkey::Error);
}

}  // namespace
}  // namespace vkey::protocol
