#include "protocol/message.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vkey::protocol {
namespace {

Message sample_message() {
  Message m;
  m.type = MessageType::kSyndrome;
  m.session_id = 0x1122334455667788ULL;
  m.nonce = 42;
  m.payload = {1, 2, 3, 4, 5};
  m.mac = {9, 8, 7};
  return m;
}

TEST(Message, SerializeRoundTrip) {
  const Message m = sample_message();
  const auto bytes = serialize(m);
  const auto back = deserialize(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
}

TEST(Message, EmptyPayloadAndMacRoundTrip) {
  Message m;
  m.type = MessageType::kKeyGenRequest;
  m.session_id = 1;
  m.nonce = 0;
  const auto back = deserialize(serialize(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
}

TEST(Message, DeserializeRejectsEmpty) {
  EXPECT_FALSE(deserialize(std::vector<std::uint8_t>{}).has_value());
}

TEST(Message, DeserializeRejectsBadType) {
  auto bytes = serialize(sample_message());
  bytes[0] = 99;
  EXPECT_FALSE(deserialize(bytes).has_value());
}

TEST(Message, DeserializeRejectsTruncation) {
  const auto bytes = serialize(sample_message());
  for (std::size_t cut = 1; cut < bytes.size(); cut += 3) {
    const std::vector<std::uint8_t> shorter(bytes.begin(),
                                            bytes.end() - static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(deserialize(shorter).has_value()) << "cut " << cut;
  }
}

TEST(Message, DeserializeRejectsTrailingGarbage) {
  auto bytes = serialize(sample_message());
  bytes.push_back(0xff);
  EXPECT_FALSE(deserialize(bytes).has_value());
}

TEST(Message, MacInputExcludesMac) {
  Message a = sample_message();
  Message b = a;
  b.mac = {0xde, 0xad};
  EXPECT_EQ(mac_input(a), mac_input(b));
  b.nonce += 1;
  EXPECT_NE(mac_input(a), mac_input(b));
}

namespace {
void put_u64_be(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (56 - 8 * i)));
  }
}

// Raw serialized bytes with arbitrary (possibly forged) length fields,
// backed by `payload_backing` / `mac_backing` actual bytes.
std::vector<std::uint8_t> forged_frame(std::uint64_t payload_len,
                                       std::size_t payload_backing,
                                       std::uint64_t mac_len,
                                       std::size_t mac_backing) {
  std::vector<std::uint8_t> bytes;
  bytes.push_back(static_cast<std::uint8_t>(MessageType::kData));
  put_u64_be(bytes, 1);  // session
  put_u64_be(bytes, 2);  // nonce
  put_u64_be(bytes, payload_len);
  bytes.insert(bytes.end(), payload_backing, 0xab);
  put_u64_be(bytes, mac_len);
  bytes.insert(bytes.end(), mac_backing, 0xcd);
  return bytes;
}
}  // namespace

TEST(Message, AcceptsTheMaximumBoundedSizes) {
  Message m;
  m.type = MessageType::kData;
  m.session_id = 1;
  m.nonce = 2;
  m.payload.assign(kMaxPayloadBytes, 0x5a);
  m.mac.assign(kMaxMacBytes, 0xa5);
  const auto back = deserialize(serialize(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
}

TEST(Message, RejectsOversizedPayloadClaimEvenWhenFullyBacked) {
  // One byte past the policy bound, with the buffer genuinely holding that
  // many bytes: the *bound* must reject it, not the buffer check.
  const auto bytes =
      forged_frame(kMaxPayloadBytes + 1, kMaxPayloadBytes + 1, 0, 0);
  EXPECT_FALSE(deserialize(bytes).has_value());
}

TEST(Message, RejectsOversizedMacClaimEvenWhenFullyBacked) {
  const auto bytes = forged_frame(4, 4, kMaxMacBytes + 1, kMaxMacBytes + 1);
  EXPECT_FALSE(deserialize(bytes).has_value());
}

TEST(Message, RejectsWraparoundLengthPrefixes) {
  // payload_len near 2^64: `offset + len` wraps around zero, so a naive
  // `off + len > size` check would pass and then overrun the buffer. The
  // parser must compare against the remaining bytes without the addition.
  for (const std::uint64_t evil :
       {~0ULL, ~0ULL - 7, ~0ULL - 24, 1ULL << 63}) {
    EXPECT_FALSE(deserialize(forged_frame(evil, 8, 0, 0)).has_value())
        << "payload_len " << evil;
    EXPECT_FALSE(deserialize(forged_frame(4, 4, evil, 8)).has_value())
        << "mac_len " << evil;
  }
}

TEST(Message, RejectsLengthPrefixOverrunningTheBuffer) {
  // In-bounds length claims that still exceed what the buffer holds.
  EXPECT_FALSE(deserialize(forged_frame(16, 8, 0, 0)).has_value());
  EXPECT_FALSE(deserialize(forged_frame(4, 4, 32, 16)).has_value());
}

TEST(Message, PackUnpackDoubles) {
  const std::vector<double> v{1.5, -2.25, 3.125, 0.0};
  EXPECT_EQ(unpack_doubles(pack_doubles(v)), v);
}

TEST(Message, UnpackRejectsMisaligned) {
  EXPECT_THROW(unpack_doubles(std::vector<std::uint8_t>(7)), vkey::Error);
}

}  // namespace
}  // namespace vkey::protocol
