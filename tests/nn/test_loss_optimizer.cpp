#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace vkey::nn {
namespace {

TEST(MseLoss, ZeroForPerfectPrediction) {
  const auto r = mse_loss({1.0, 2.0}, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(r.loss, 0.0);
  EXPECT_DOUBLE_EQ(r.grad[0], 0.0);
}

TEST(MseLoss, KnownValue) {
  const auto r = mse_loss({0.0, 0.0}, {1.0, 3.0});
  EXPECT_DOUBLE_EQ(r.loss, 5.0);  // (1 + 9) / 2
  EXPECT_DOUBLE_EQ(r.grad[0], -1.0);
  EXPECT_DOUBLE_EQ(r.grad[1], -3.0);
}

TEST(MseLoss, SizeMismatchThrows) {
  EXPECT_THROW(mse_loss({1.0}, {1.0, 2.0}), vkey::Error);
}

TEST(BceWithLogits, KnownValueAtZeroLogit) {
  const auto r = bce_with_logits({0.0}, {1.0});
  EXPECT_NEAR(r.loss, std::log(2.0), 1e-12);
  EXPECT_NEAR(r.grad[0], -0.5, 1e-12);  // sigmoid(0) - 1
  EXPECT_NEAR(r.probability[0], 0.5, 1e-12);
}

TEST(BceWithLogits, ConfidentCorrectIsCheap) {
  const auto good = bce_with_logits({10.0}, {1.0});
  const auto bad = bce_with_logits({-10.0}, {1.0});
  EXPECT_LT(good.loss, 1e-4);
  EXPECT_GT(bad.loss, 9.0);
}

TEST(BceWithLogits, StableForExtremeLogits) {
  const auto r = bce_with_logits({1000.0, -1000.0}, {1.0, 0.0});
  EXPECT_TRUE(std::isfinite(r.loss));
  EXPECT_NEAR(r.loss, 0.0, 1e-9);
}

TEST(BceWithLogits, TargetRangeValidated) {
  EXPECT_THROW(bce_with_logits({0.0}, {1.5}), vkey::Error);
}

TEST(BceWithLogits, GradientMatchesNumeric) {
  const Vec logits{0.7, -1.2};
  const Vec target{1.0, 0.0};
  const auto r = bce_with_logits(logits, target);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Vec up = logits, down = logits;
    up[i] += eps;
    down[i] -= eps;
    const double numeric = (bce_with_logits(up, target).loss -
                            bce_with_logits(down, target).loss) /
                           (2.0 * eps);
    EXPECT_NEAR(r.grad[i], numeric, 1e-6);
  }
}

TEST(Activations, SigmoidSymmetry) {
  EXPECT_NEAR(sigmoid(0.0), 0.5, 1e-12);
  EXPECT_NEAR(sigmoid(3.0) + sigmoid(-3.0), 1.0, 1e-12);
  EXPECT_NEAR(sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(sigmoid(-100.0), 0.0, 1e-12);
}

TEST(Sgd, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 via repeated gradient steps.
  Parameter w(1);
  w.value[0] = 0.0;
  Sgd opt({&w}, 0.1);
  for (int i = 0; i < 200; ++i) {
    w.grad[0] = 2.0 * (w.value[0] - 3.0);
    opt.step();
  }
  EXPECT_NEAR(w.value[0], 3.0, 1e-6);
}

TEST(Sgd, BatchScaling) {
  Parameter w(1);
  w.value[0] = 0.0;
  Sgd opt({&w}, 1.0);
  w.grad[0] = 4.0;  // accumulated over a batch of 4
  opt.step(4);
  EXPECT_NEAR(w.value[0], -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(w.grad[0], 0.0);  // zeroed after the step
}

TEST(Adam, ConvergesOnQuadratic) {
  Parameter w(1);
  w.value[0] = 10.0;
  Adam opt({&w}, 0.1);
  for (int i = 0; i < 1500; ++i) {
    w.grad[0] = 2.0 * (w.value[0] + 5.0);
    opt.step();
  }
  EXPECT_NEAR(w.value[0], -5.0, 1e-2);
}

TEST(Adam, TrainsXorWithHiddenLayer) {
  // End-to-end sanity: a 2-4-1 network learns XOR.
  vkey::Rng rng(21);
  Dense l1(2, 6, rng, Activation::kTanh);
  Dense l2(6, 1, rng);
  std::vector<Parameter*> params = l1.parameters();
  for (auto* p : l2.parameters()) params.push_back(p);
  Adam opt(params, 0.05);

  const std::vector<std::pair<Vec, double>> data = {
      {{0.0, 0.0}, 0.0}, {{0.0, 1.0}, 1.0}, {{1.0, 0.0}, 1.0},
      {{1.0, 1.0}, 0.0}};
  for (int epoch = 0; epoch < 400; ++epoch) {
    for (const auto& [x, y] : data) {
      const Vec h = l1.forward(x);
      const Vec logits = l2.forward(h);
      const auto l = bce_with_logits(logits, {y});
      l1.backward(l2.backward(l.grad));
    }
    opt.step(data.size());
  }
  for (const auto& [x, y] : data) {
    const double p = sigmoid(l2.infer(l1.infer(x))[0]);
    EXPECT_NEAR(p, y, 0.2) << x[0] << "," << x[1];
  }
}

TEST(Optimizers, ValidateLearningRate) {
  Parameter w(1);
  EXPECT_THROW(Sgd({&w}, 0.0), vkey::Error);
  EXPECT_THROW(Adam({&w}, -1.0), vkey::Error);
}

TEST(Optimizers, BatchSizeValidated) {
  Parameter w(1);
  Sgd opt({&w}, 0.1);
  EXPECT_THROW(opt.step(0), vkey::Error);
}

}  // namespace
}  // namespace vkey::nn
