// Golden-vector suite for the blocked NN kernels (gemm.h).
//
// The contract under test (DESIGN.md "NN kernel core"): the packed float
// kernels are BIT-identical to the retained naive reference on every shape
// the layers use — including ragged panel tails — and the batched entry
// points are bit-identical to their sequential counterparts. The int8 path
// is checked against explicit error bounds instead.
#include "nn/gemm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "nn/dense.h"
#include "nn/lstm.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"

namespace vkey::nn {
namespace {

std::vector<double> random_vec(std::size_t n, vkey::Rng& rng) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(-2.0, 2.0);
  return v;
}

// Shapes exercising every panel-tail case: sub-panel, exact panel,
// multi-panel with ragged tail, and the 4-panel main-loop boundary.
struct Shape {
  std::size_t rows, cols;
};
const Shape kShapes[] = {{1, 1},  {3, 2},   {7, 5},    {8, 8},
                         {9, 3},  {16, 16}, {31, 31},  {32, 7},
                         {33, 17}, {40, 64}, {100, 37}, {64, 129}};

TEST(ReferenceMatvec, HandComputedCase) {
  // w = [[1, 2], [3, 4]], x = [5, 6], bias = [10, 20].
  const double w[] = {1.0, 2.0, 3.0, 4.0};
  const double x[] = {5.0, 6.0};
  const double bias[] = {10.0, 20.0};
  double y[2];
  reference_matvec(w, 2, 2, x, bias, y);
  EXPECT_EQ(y[0], 10.0 + 5.0 + 12.0);
  EXPECT_EQ(y[1], 20.0 + 15.0 + 24.0);
}

TEST(PackedMatrix, MatvecBitExactOnAllShapes) {
  vkey::Rng rng(101);
  for (const auto& sh : kShapes) {
    const auto w = random_vec(sh.rows * sh.cols, rng);
    const auto x = random_vec(sh.cols, rng);
    const auto bias = random_vec(sh.rows, rng);
    std::vector<double> ref(sh.rows), got(sh.rows);
    reference_matvec(w.data(), sh.rows, sh.cols, x.data(), bias.data(),
                     ref.data());
    PackedMatrix pm;
    pm.pack(w.data(), sh.rows, sh.cols);
    EXPECT_EQ(pm.rows(), sh.rows);
    EXPECT_EQ(pm.cols(), sh.cols);
    pm.matvec(x.data(), bias.data(), got.data());
    for (std::size_t r = 0; r < sh.rows; ++r) {
      // Bitwise equality, not EXPECT_NEAR: the kernel contract is exact.
      EXPECT_EQ(ref[r], got[r]) << sh.rows << "x" << sh.cols << " row " << r;
    }
  }
}

TEST(PackedMatrix, NullBiasStartsAtZero) {
  vkey::Rng rng(102);
  const auto w = random_vec(33 * 17, rng);
  const auto x = random_vec(17, rng);
  std::vector<double> ref(33), got(33);
  const std::vector<double> zero_bias(33, 0.0);
  reference_matvec(w.data(), 33, 17, x.data(), zero_bias.data(), ref.data());
  PackedMatrix pm;
  pm.pack(w.data(), 33, 17);
  pm.matvec(x.data(), nullptr, got.data());
  for (std::size_t r = 0; r < 33; ++r) EXPECT_EQ(ref[r], got[r]);
}

TEST(PackedMatrix, PackPairMatchesColumnConcatenation) {
  vkey::Rng rng(103);
  const std::size_t rows = 28, ca = 3, cb = 7;
  const auto wa = random_vec(rows * ca, rng);
  const auto wb = random_vec(rows * cb, rng);
  // Build the explicit [wa | wb] row-major concatenation.
  std::vector<double> cat(rows * (ca + cb));
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < ca; ++c) cat[r * (ca + cb) + c] = wa[r * ca + c];
    for (std::size_t c = 0; c < cb; ++c)
      cat[r * (ca + cb) + ca + c] = wb[r * cb + c];
  }
  const auto x = random_vec(ca + cb, rng);
  const auto bias = random_vec(rows, rng);
  std::vector<double> want(rows), got(rows);
  PackedMatrix whole, paired;
  whole.pack(cat.data(), rows, ca + cb);
  paired.pack_pair(wa.data(), ca, wb.data(), cb, rows);
  whole.matvec(x.data(), bias.data(), want.data());
  paired.matvec(x.data(), bias.data(), got.data());
  EXPECT_EQ(want, got);
}

TEST(PackedMatrix, BatchedMatvecBitEqualsSequential) {
  vkey::Rng rng(104);
  // Batch sizes around the member-quad boundary (1..6) on a ragged shape.
  const std::size_t rows = 37, cols = 19;
  const auto w = random_vec(rows * cols, rng);
  const auto bias = random_vec(rows, rng);
  PackedMatrix pm;
  pm.pack(w.data(), rows, cols);
  for (std::size_t batch = 1; batch <= 6; ++batch) {
    std::vector<std::vector<double>> xs(batch), seq(batch), bat(batch);
    std::vector<const double*> xp(batch);
    std::vector<double*> yp(batch);
    for (std::size_t b = 0; b < batch; ++b) {
      xs[b] = random_vec(cols, rng);
      seq[b].resize(rows);
      bat[b].resize(rows);
      pm.matvec(xs[b].data(), bias.data(), seq[b].data());
      xp[b] = xs[b].data();
      yp[b] = bat[b].data();
    }
    pm.matvec_batch(xp.data(), batch, bias.data(), yp.data());
    for (std::size_t b = 0; b < batch; ++b) {
      EXPECT_EQ(seq[b], bat[b]) << "batch " << batch << " member " << b;
    }
  }
}

// --- Dense layer golden vectors ---

TEST(DenseGolden, InferBitEqualsNaiveReference) {
  for (auto act : {Activation::kNone, Activation::kSigmoid, Activation::kTanh,
                   Activation::kRelu}) {
    vkey::Rng rng(201);
    Dense d(37, 29, rng, act);
    vkey::Rng xr(202);
    for (int trial = 0; trial < 4; ++trial) {
      const Vec x = random_vec(37, xr);
      EXPECT_EQ(d.infer(x), d.infer_reference(x));
    }
  }
}

TEST(DenseGolden, InferBatchBitEqualsSequential) {
  vkey::Rng rng(203);
  Dense d(24, 40, rng, Activation::kTanh);
  vkey::Rng xr(204);
  std::vector<Vec> xs;
  std::vector<const Vec*> ptrs;
  for (int b = 0; b < 5; ++b) xs.push_back(random_vec(24, xr));
  for (const auto& x : xs) ptrs.push_back(&x);
  const auto batched = d.infer_batch(ptrs);
  ASSERT_EQ(batched.size(), xs.size());
  for (std::size_t b = 0; b < xs.size(); ++b) {
    EXPECT_EQ(batched[b], d.infer(xs[b])) << "member " << b;
  }
}

TEST(DenseGolden, SerializeRoundTripRepacksCache) {
  vkey::Rng rng(205);
  Dense d(9, 11, rng);
  const Vec x = random_vec(9, rng);
  const Vec before = d.infer(x);  // warm the packed cache

  const auto saved = snapshot(d.parameters());
  // Perturb through the bump-aware restore path, then restore the original.
  auto perturbed = saved;
  for (double& v : perturbed) v += 0.25;
  restore(d.parameters(), perturbed);
  EXPECT_NE(d.infer(x), before);  // stale cache would return `before`
  EXPECT_EQ(d.infer(x), d.infer_reference(x));
  restore(d.parameters(), saved);
  EXPECT_EQ(d.infer(x), before);
}

TEST(DenseGolden, OptimizerStepRepacksCache) {
  vkey::Rng rng(206);
  Dense d(6, 6, rng);
  const Vec x = random_vec(6, rng);
  (void)d.infer(x);  // warm the packed cache
  d.forward(x);
  d.backward(Vec(6, 1.0));
  Sgd opt(d.parameters(), 0.1);
  opt.step(1);
  EXPECT_EQ(d.infer(x), d.infer_reference(x));
}

// --- LSTM / BiLSTM golden vectors ---

Seq random_seq(std::size_t t_len, std::size_t width, vkey::Rng& rng) {
  Seq s(t_len);
  for (auto& step : s) step = random_vec(width, rng);
  return s;
}

TEST(LstmGolden, FusedInferBitEqualsNaiveReference) {
  vkey::Rng rng(301);
  Lstm lstm(3, 13, rng);  // 4H = 52: ragged panel tail
  vkey::Rng xr(302);
  for (std::size_t t_len : {1u, 2u, 9u}) {
    const Seq x = random_seq(t_len, 3, xr);
    EXPECT_EQ(lstm.infer(x), lstm.infer_reference(x));
  }
}

TEST(LstmGolden, ReverseFusedInferBitEqualsNaiveReference) {
  vkey::Rng rng(303);
  Lstm lstm(2, 5, rng, /*reverse=*/true);
  vkey::Rng xr(304);
  const Seq x = random_seq(6, 2, xr);
  EXPECT_EQ(lstm.infer(x), lstm.infer_reference(x));
}

TEST(BiLstmGolden, InferBitEqualsNaiveReference) {
  vkey::Rng rng(305);
  BiLstm bi(3, 8, rng);
  vkey::Rng xr(306);
  const Seq x = random_seq(7, 3, xr);
  EXPECT_EQ(bi.infer(x), bi.infer_reference(x));
}

TEST(BiLstmGolden, InferBatchBitEqualsSequential) {
  vkey::Rng rng(307);
  BiLstm bi(2, 6, rng);
  vkey::Rng xr(308);
  std::vector<Seq> xs;
  for (int b = 0; b < 3; ++b) xs.push_back(random_seq(5, 2, xr));
  const auto batched = bi.infer_batch(xs);
  ASSERT_EQ(batched.size(), xs.size());
  for (std::size_t b = 0; b < xs.size(); ++b) {
    EXPECT_EQ(batched[b], bi.infer(xs[b]));
  }
}

// --- int8 quantized path: bounded error, never bit-exactness ---

TEST(QuantizedMatrix, MatvecWithinQuantizationErrorBound) {
  vkey::Rng rng(401);
  const std::size_t rows = 21, cols = 33;
  const auto w = random_vec(rows * cols, rng);
  const auto x = random_vec(cols, rng);
  const auto bias = random_vec(rows, rng);
  std::vector<double> ref(rows), got(rows);
  reference_matvec(w.data(), rows, cols, x.data(), bias.data(), ref.data());

  QuantizedMatrix qm;
  qm.pack(w.data(), rows, cols);
  std::vector<std::int8_t> xq(qm.padded_cols(), 0);
  const double xs = QuantizedMatrix::quantize_input(x.data(), cols, xq.data());
  qm.matvec(xq.data(), xs, bias.data(), got.data());

  // Worst-case per-element rounding is 0.5 steps for the weight and 0.5 for
  // the input; a loose per-row bound of cols * step_w * step_x magnitudes.
  double max_w = 0.0, max_x = 0.0;
  for (double v : w) max_w = std::max(max_w, std::fabs(v));
  for (double v : x) max_x = std::max(max_x, std::fabs(v));
  const double bound =
      static_cast<double>(cols) * (max_w / 127.0) * max_x * 1.5;
  for (std::size_t r = 0; r < rows; ++r) {
    EXPECT_NEAR(got[r], ref[r], bound) << "row " << r;
  }
}

TEST(QuantizedMatrix, ZeroInputVectorGivesBias) {
  vkey::Rng rng(402);
  const auto w = random_vec(5 * 4, rng);
  const auto bias = random_vec(5, rng);
  QuantizedMatrix qm;
  qm.pack(w.data(), 5, 4);
  std::vector<std::int8_t> xq(qm.padded_cols(), 0);
  const std::vector<double> zero(4, 0.0);
  const double xs = QuantizedMatrix::quantize_input(zero.data(), 4, xq.data());
  EXPECT_EQ(xs, 0.0);
  std::vector<double> y(5);
  qm.matvec(xq.data(), xs, bias.data(), y.data());
  for (std::size_t r = 0; r < 5; ++r) EXPECT_EQ(y[r], bias[r]);
}

TEST(ApproxActivations, WithinAdvertisedErrorBounds) {
  // The Pade(7,6) clamped tanh promises |err| < 1e-4 over the reals and the
  // derived sigmoid inherits half of it (plus exact saturation far out).
  std::vector<double> xs, t_got, s_got;
  for (double x = -30.0; x <= 30.0; x += 0.01) xs.push_back(x);
  t_got.resize(xs.size());
  s_got.resize(xs.size());
  tanh_approx(xs.data(), xs.size(), t_got.data());
  sigmoid_approx(xs.data(), xs.size(), s_got.data());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(t_got[i], std::tanh(xs[i]), 1e-4) << "x=" << xs[i];
    EXPECT_NEAR(s_got[i], 1.0 / (1.0 + std::exp(-xs[i])), 1e-4)
        << "x=" << xs[i];
  }
}

TEST(QuantizedDense, InferTracksFloatPath) {
  vkey::Rng rng(403);
  Dense d(32, 24, rng, Activation::kSigmoid);
  d.set_quantized(true);
  EXPECT_TRUE(d.quantized());
  vkey::Rng xr(404);
  const Vec x = random_vec(32, xr);
  const Vec qy = d.infer(x);
  const Vec fy = d.infer_reference(x);
  ASSERT_EQ(qy.size(), fy.size());
  for (std::size_t i = 0; i < qy.size(); ++i) {
    EXPECT_NEAR(qy[i], fy[i], 0.05) << "unit " << i;
  }
}

TEST(QuantizedLstm, InferTracksFloatPath) {
  vkey::Rng rng(405);
  BiLstm bi(3, 8, rng);
  bi.set_quantized(true);
  EXPECT_TRUE(bi.quantized());
  vkey::Rng xr(406);
  const Seq x = random_seq(6, 3, xr);
  const Seq qh = bi.infer(x);
  const Seq fh = bi.infer_reference(x);
  for (std::size_t t = 0; t < x.size(); ++t) {
    for (std::size_t k = 0; k < qh[t].size(); ++k) {
      EXPECT_NEAR(qh[t][k], fh[t][k], 0.05) << "t=" << t << " k=" << k;
    }
  }
}

// --- PackGuard / revision semantics ---

TEST(PackGuard, RepacksOncePerRevision) {
  PackGuard guard;
  int repacks = 0;
  guard.ensure(1, [&] { ++repacks; });
  guard.ensure(1, [&] { ++repacks; });
  EXPECT_EQ(repacks, 1);
  guard.ensure(2, [&] { ++repacks; });
  guard.ensure(2, [&] { ++repacks; });
  EXPECT_EQ(repacks, 2);
}

TEST(PackGuard, CopyResetsToUnpacked) {
  PackGuard a;
  int repacks = 0;
  a.ensure(5, [&] { ++repacks; });
  PackGuard b(a);
  b.ensure(5, [&] { ++repacks; });  // copy must not inherit freshness
  EXPECT_EQ(repacks, 2);
  a = b;
  a.ensure(5, [&] { ++repacks; });
  EXPECT_EQ(repacks, 3);
}

TEST(Parameter, RevisionStartsAtOneAndBumps) {
  Parameter p(4);
  EXPECT_EQ(p.revision, 1u);
  p.bump();
  EXPECT_EQ(p.revision, 2u);
}

// --- accounting regressions: counters must not advance on rejected calls ---

TEST(Accounting, DenseCountersUnchangedOnInvalidInput) {
  if (!metrics::enabled()) GTEST_SKIP() << "metrics disabled";
  vkey::Rng rng(501);
  Dense d(4, 3, rng);
  auto& flops = metrics::Registry::global().counter("nn.dense.flops");
  auto& calls = metrics::Registry::global().counter("nn.dense.forward_calls");
  const auto f0 = flops.value();
  const auto c0 = calls.value();
  EXPECT_THROW(d.infer({1.0, 2.0}), vkey::Error);  // wrong width
  EXPECT_EQ(flops.value(), f0);
  EXPECT_EQ(calls.value(), c0);
  (void)d.infer({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(calls.value(), c0 + 1);
  EXPECT_EQ(flops.value(), f0 + 2u * 4u * 3u);
}

TEST(Accounting, LstmCountersUnchangedOnInvalidInput) {
  if (!metrics::enabled()) GTEST_SKIP() << "metrics disabled";
  vkey::Rng rng(502);
  Lstm lstm(2, 4, rng);
  auto& flops = metrics::Registry::global().counter("nn.lstm.flops");
  auto& steps = metrics::Registry::global().counter("nn.lstm.cell_steps");
  const auto f0 = flops.value();
  const auto s0 = steps.value();
  EXPECT_THROW(lstm.infer({}), vkey::Error);               // empty
  EXPECT_THROW(lstm.infer({{1.0}}), vkey::Error);          // wrong width
  EXPECT_THROW(lstm.infer({{1.0, 2.0}, {1.0}}), vkey::Error);  // mid-seq
  EXPECT_THROW(lstm.forward({{1.0}}), vkey::Error);
  EXPECT_EQ(flops.value(), f0);
  EXPECT_EQ(steps.value(), s0);
  (void)lstm.infer({{1.0, 2.0}, {0.5, -0.5}});
  EXPECT_EQ(steps.value(), s0 + 2);
}

// --- BiLstm backward guards (satellite bugfix) ---

TEST(BiLstmGuards, BackwardOnEmptyGradientThrows) {
  vkey::Rng rng(601);
  BiLstm bi(1, 3, rng);
  EXPECT_THROW(bi.backward({}), vkey::Error);
}

TEST(BiLstmGuards, BackwardLengthMismatchThrows) {
  vkey::Rng rng(602);
  BiLstm bi(1, 3, rng);
  Seq x(4, Vec{0.5});
  (void)bi.forward(x);
  Seq wrong_len(3, Vec(6, 0.0));  // forward cached 4 steps
  EXPECT_THROW(bi.backward(wrong_len), vkey::Error);
}

TEST(BiLstmGuards, BackwardBeforeForwardThrows) {
  vkey::Rng rng(603);
  BiLstm bi(1, 3, rng);
  EXPECT_THROW(bi.backward(Seq(2, Vec(6, 0.0))), vkey::Error);
}

}  // namespace
}  // namespace vkey::nn
