#include "nn/dense.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "nn/loss.h"

namespace vkey::nn {
namespace {

TEST(Dense, OutputShape) {
  vkey::Rng rng(1);
  Dense d(3, 5, rng);
  const Vec y = d.infer({1.0, 2.0, 3.0});
  EXPECT_EQ(y.size(), 5u);
}

TEST(Dense, InputSizeChecked) {
  vkey::Rng rng(1);
  Dense d(3, 5, rng);
  EXPECT_THROW(d.infer({1.0, 2.0}), vkey::Error);
}

TEST(Dense, ForwardMatchesInfer) {
  vkey::Rng rng(2);
  Dense d(4, 4, rng, Activation::kTanh);
  const Vec x{0.5, -0.2, 0.1, 0.9};
  EXPECT_EQ(d.forward(x), d.infer(x));
}

TEST(Dense, LinearLayerIsAffine) {
  vkey::Rng rng(3);
  Dense d(2, 2, rng);
  const Vec x1{1.0, 0.0}, x2{0.0, 1.0}, zero{0.0, 0.0};
  const Vec b = d.infer(zero);
  const Vec y1 = d.infer(x1);
  const Vec y2 = d.infer(x2);
  // f(x1 + x2) = f(x1) + f(x2) - b for affine maps.
  const Vec sum = d.infer({1.0, 1.0});
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(sum[i], y1[i] + y2[i] - b[i], 1e-12);
  }
}

TEST(Dense, ReluClampsNegative) {
  vkey::Rng rng(4);
  Dense d(1, 8, rng, Activation::kRelu);
  const Vec y = d.infer({-100.0});
  for (double v : y) EXPECT_GE(v, 0.0);
}

TEST(Dense, SigmoidBounded) {
  vkey::Rng rng(5);
  Dense d(1, 8, rng, Activation::kSigmoid);
  for (double x : {-50.0, -1.0, 0.0, 1.0, 50.0}) {
    for (double v : d.infer({x})) {
      EXPECT_GT(v, 0.0);
      EXPECT_LT(v, 1.0);
    }
  }
}

TEST(Dense, BackwardBeforeForwardThrows) {
  vkey::Rng rng(6);
  Dense d(2, 2, rng);
  EXPECT_THROW(d.backward({1.0, 1.0}), vkey::Error);
}

// Numerical gradient check: perturb each parameter and compare the measured
// loss slope to the analytic gradient.
template <Activation act>
void check_gradients() {
  vkey::Rng rng(7);
  Dense d(3, 2, rng, act);
  const Vec x{0.3, -0.7, 0.5};
  const Vec target{0.2, 0.8};

  auto loss_of = [&] {
    return mse_loss(d.infer(x), target).loss;
  };

  // Analytic gradients.
  const Vec y = d.forward(x);
  const auto l = mse_loss(y, target);
  d.backward(l.grad);

  const double eps = 1e-6;
  for (Parameter* p : d.parameters()) {
    for (std::size_t i = 0; i < p->size(); ++i) {
      const double saved = p->value[i];
      // Direct value edits must bump() so the packed-weight cache repacks.
      p->value[i] = saved + eps;
      p->bump();
      const double up = loss_of();
      p->value[i] = saved - eps;
      p->bump();
      const double down = loss_of();
      p->value[i] = saved;
      p->bump();
      const double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(p->grad[i], numeric, 1e-5)
          << "param element " << i;
    }
  }
}

TEST(Dense, GradientCheckLinear) { check_gradients<Activation::kNone>(); }
TEST(Dense, GradientCheckTanh) { check_gradients<Activation::kTanh>(); }
TEST(Dense, GradientCheckSigmoid) {
  check_gradients<Activation::kSigmoid>();
}

TEST(Dense, InputGradientCheck) {
  vkey::Rng rng(8);
  Dense d(3, 2, rng, Activation::kTanh);
  Vec x{0.3, -0.7, 0.5};
  const Vec target{0.2, 0.8};
  const Vec y = d.forward(x);
  const auto l = mse_loss(y, target);
  const Vec dx = d.backward(l.grad);

  const double eps = 1e-6;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double saved = x[i];
    x[i] = saved + eps;
    const double up = mse_loss(d.infer(x), target).loss;
    x[i] = saved - eps;
    const double down = mse_loss(d.infer(x), target).loss;
    x[i] = saved;
    EXPECT_NEAR(dx[i], (up - down) / (2.0 * eps), 1e-5);
  }
}

TEST(Dense, GradAccumulatesAcrossSamples) {
  vkey::Rng rng(9);
  Dense d(1, 1, rng);
  const Vec x{1.0};
  d.forward(x);
  d.backward({1.0});
  const double g1 = d.parameters()[0]->grad[0];
  d.forward(x);
  d.backward({1.0});
  EXPECT_NEAR(d.parameters()[0]->grad[0], 2.0 * g1, 1e-12);
}

}  // namespace
}  // namespace vkey::nn
