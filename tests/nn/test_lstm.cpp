#include "nn/lstm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "nn/loss.h"

namespace vkey::nn {
namespace {

Seq make_seq(std::initializer_list<double> vals) {
  Seq s;
  for (double v : vals) s.push_back({v});
  return s;
}

TEST(Lstm, OutputShape) {
  vkey::Rng rng(1);
  Lstm lstm(1, 4, rng);
  const Seq h = lstm.infer(make_seq({0.1, 0.2, 0.3}));
  ASSERT_EQ(h.size(), 3u);
  for (const auto& ht : h) EXPECT_EQ(ht.size(), 4u);
}

TEST(Lstm, EmptySequenceRejected) {
  vkey::Rng rng(2);
  Lstm lstm(1, 4, rng);
  EXPECT_THROW(lstm.infer({}), vkey::Error);
}

TEST(Lstm, InputWidthChecked) {
  vkey::Rng rng(3);
  Lstm lstm(2, 4, rng);
  EXPECT_THROW(lstm.infer(make_seq({0.1})), vkey::Error);
}

TEST(Lstm, ForwardMatchesInfer) {
  vkey::Rng rng(4);
  Lstm lstm(1, 6, rng);
  const Seq x = make_seq({0.5, -0.5, 0.25, 0.0});
  EXPECT_EQ(lstm.forward(x), lstm.infer(x));
}

TEST(Lstm, ReverseProcessesBackwards) {
  vkey::Rng rng(5);
  Lstm fwd(1, 4, rng);
  vkey::Rng rng2(5);
  Lstm rev(1, 4, rng2, /*reverse=*/true);
  const Seq x = make_seq({0.9, 0.1, -0.4});
  Seq x_reversed = x;
  std::reverse(x_reversed.begin(), x_reversed.end());
  // Reverse LSTM on x equals forward LSTM on reversed x, re-reversed.
  Seq expect = fwd.infer(x_reversed);
  std::reverse(expect.begin(), expect.end());
  const Seq got = rev.infer(x);
  for (std::size_t t = 0; t < x.size(); ++t) {
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_NEAR(got[t][k], expect[t][k], 1e-12);
    }
  }
}

TEST(Lstm, HiddenStatesBounded) {
  vkey::Rng rng(6);
  Lstm lstm(1, 8, rng);
  const Seq h = lstm.infer(make_seq({100.0, -100.0, 50.0}));
  for (const auto& ht : h) {
    for (double v : ht) {
      EXPECT_GT(v, -1.0);
      EXPECT_LT(v, 1.0);  // h = o * tanh(c), both factors bounded
    }
  }
}

// Full BPTT numerical gradient check on a small LSTM.
TEST(Lstm, GradientCheck) {
  vkey::Rng rng(7);
  Lstm lstm(2, 3, rng);
  const Seq x = {{0.2, -0.1}, {0.5, 0.3}, {-0.4, 0.8}};
  const Vec target{0.1, -0.2, 0.3};

  auto loss_of = [&] {
    const Seq h = lstm.infer(x);
    return mse_loss(h.back(), target).loss;
  };

  const Seq h = lstm.forward(x);
  const auto l = mse_loss(h.back(), target);
  Seq dout(x.size(), Vec(3, 0.0));
  dout.back() = l.grad;
  lstm.backward(dout);

  const double eps = 1e-6;
  for (Parameter* p : lstm.parameters()) {
    // Sample a subset of indices to keep the test fast.
    for (std::size_t i = 0; i < p->size(); i += 3) {
      const double saved = p->value[i];
      // Direct value edits must bump() so the packed-weight cache repacks.
      p->value[i] = saved + eps;
      p->bump();
      const double up = loss_of();
      p->value[i] = saved - eps;
      p->bump();
      const double down = loss_of();
      p->value[i] = saved;
      p->bump();
      EXPECT_NEAR(p->grad[i], (up - down) / (2.0 * eps), 1e-5)
          << "index " << i;
    }
  }
}

TEST(Lstm, InputGradientCheck) {
  vkey::Rng rng(8);
  Lstm lstm(1, 3, rng);
  Seq x = make_seq({0.3, -0.6, 0.2});
  const Vec target{0.5, 0.5, -0.5};
  const Seq h = lstm.forward(x);
  const auto l = mse_loss(h.back(), target);
  Seq dout(x.size(), Vec(3, 0.0));
  dout.back() = l.grad;
  const Seq dx = lstm.backward(dout);

  const double eps = 1e-6;
  for (std::size_t t = 0; t < x.size(); ++t) {
    const double saved = x[t][0];
    x[t][0] = saved + eps;
    const double up = mse_loss(lstm.infer(x).back(), target).loss;
    x[t][0] = saved - eps;
    const double down = mse_loss(lstm.infer(x).back(), target).loss;
    x[t][0] = saved;
    EXPECT_NEAR(dx[t][0], (up - down) / (2.0 * eps), 1e-5) << "t=" << t;
  }
}

TEST(BiLstm, OutputIsConcatenation) {
  vkey::Rng rng(9);
  BiLstm bi(1, 4, rng);
  const Seq h = bi.infer(make_seq({0.1, 0.5}));
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0].size(), 8u);
  EXPECT_EQ(bi.output_size(), 8u);
}

TEST(BiLstm, SeesFutureContext) {
  // The first output step must depend on the last input (through the
  // reverse direction) — that is the point of bidirectionality.
  vkey::Rng rng(10);
  BiLstm bi(1, 4, rng);
  Seq x1 = make_seq({0.1, 0.2, 0.3});
  Seq x2 = make_seq({0.1, 0.2, 0.9});
  const Seq h1 = bi.infer(x1);
  const Seq h2 = bi.infer(x2);
  double diff = 0.0;
  for (std::size_t k = 0; k < h1[0].size(); ++k) {
    diff += std::fabs(h1[0][k] - h2[0][k]);
  }
  EXPECT_GT(diff, 1e-6);
}

TEST(BiLstm, GradientCheck) {
  vkey::Rng rng(11);
  BiLstm bi(1, 2, rng);
  const Seq x = make_seq({0.4, -0.2, 0.6});
  const Vec target{0.1, 0.2, 0.3, 0.4};

  auto loss_of = [&] {
    return mse_loss(bi.infer(x)[1], target).loss;
  };

  const Seq h = bi.forward(x);
  const auto l = mse_loss(h[1], target);
  Seq dout(x.size(), Vec(4, 0.0));
  dout[1] = l.grad;
  bi.backward(dout);

  const double eps = 1e-6;
  for (Parameter* p : bi.parameters()) {
    for (std::size_t i = 0; i < p->size(); i += 5) {
      const double saved = p->value[i];
      p->value[i] = saved + eps;
      p->bump();
      const double up = loss_of();
      p->value[i] = saved - eps;
      p->bump();
      const double down = loss_of();
      p->value[i] = saved;
      p->bump();
      EXPECT_NEAR(p->grad[i], (up - down) / (2.0 * eps), 1e-5);
    }
  }
}

}  // namespace
}  // namespace vkey::nn
