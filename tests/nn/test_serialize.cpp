#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/error.h"
#include "nn/dense.h"

namespace vkey::nn {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Serialize, SnapshotRestoreRoundTrip) {
  vkey::Rng rng(1);
  Dense a(3, 4, rng), b(3, 4, rng);
  const auto snap = snapshot(a.parameters());
  restore(b.parameters(), snap);
  EXPECT_EQ(snapshot(b.parameters()), snap);
  // And the two layers now compute identically.
  const Vec x{0.1, 0.2, 0.3};
  EXPECT_EQ(a.infer(x), b.infer(x));
}

TEST(Serialize, RestoreSizeChecked) {
  vkey::Rng rng(2);
  Dense a(3, 4, rng);
  EXPECT_THROW(restore(a.parameters(), std::vector<double>(5)), vkey::Error);
}

TEST(Serialize, FileRoundTrip) {
  vkey::Rng rng(3);
  Dense a(2, 3, rng), b(2, 3, rng);
  const auto path = temp_path("weights.vkw");
  save_file(path, a.parameters());
  load_file(path, b.parameters());
  EXPECT_EQ(snapshot(a.parameters()), snapshot(b.parameters()));
  std::remove(path.c_str());
}

TEST(Serialize, LoadMissingFileThrows) {
  vkey::Rng rng(4);
  Dense a(2, 2, rng);
  EXPECT_THROW(load_file("/nonexistent/path.vkw", a.parameters()),
               vkey::Error);
}

TEST(Serialize, LoadRejectsBadMagic) {
  const auto path = temp_path("bad.vkw");
  FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not-a-weight-file", f);
  std::fclose(f);
  vkey::Rng rng(5);
  Dense a(2, 2, rng);
  EXPECT_THROW(load_file(path, a.parameters()), vkey::Error);
  std::remove(path.c_str());
}

TEST(Serialize, LoadRejectsWrongShape) {
  vkey::Rng rng(6);
  Dense a(2, 2, rng);
  Dense bigger(4, 4, rng);
  const auto path = temp_path("shape.vkw");
  save_file(path, a.parameters());
  EXPECT_THROW(load_file(path, bigger.parameters()), vkey::Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vkey::nn
