#include "baselines/cascade.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace vkey::baselines {
namespace {

BitVec random_key(std::size_t n, vkey::Rng& rng) {
  BitVec k(n);
  for (std::size_t i = 0; i < n; ++i) k.set(i, rng.bernoulli(0.5));
  return k;
}

TEST(Cascade, IdenticalKeysUntouched) {
  vkey::Rng rng(1);
  const BitVec k = random_key(64, rng);
  const auto r = cascade_reconcile(k, k);
  EXPECT_EQ(r.corrected, k);
  EXPECT_GT(r.messages, 0u);  // parities are still exchanged
}

TEST(Cascade, CorrectsSingleError) {
  vkey::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const BitVec kb = random_key(64, rng);
    BitVec ka = kb;
    ka.flip(static_cast<std::size_t>(rng.uniform_int(64)));
    EXPECT_EQ(cascade_reconcile(ka, kb).corrected, kb);
  }
}

TEST(Cascade, CorrectsTypicalBerCompletely) {
  // With k = 3 and 4 iterations Cascade fixes ~10% BER almost always.
  vkey::Rng rng(3);
  int success = 0;
  const int trials = 40;
  for (int trial = 0; trial < trials; ++trial) {
    const BitVec kb = random_key(64, rng);
    BitVec ka = kb;
    for (std::size_t i = 0; i < 64; ++i) {
      if (rng.bernoulli(0.10)) ka.flip(i);
    }
    CascadeConfig cfg;
    cfg.seed = 1000 + static_cast<std::uint64_t>(trial);
    success += cascade_reconcile(ka, kb, cfg).corrected == kb;
  }
  EXPECT_GE(success, trials * 9 / 10);
}

TEST(Cascade, LeaksAreCounted) {
  vkey::Rng rng(4);
  const BitVec kb = random_key(64, rng);
  BitVec ka = kb;
  for (int f = 0; f < 6; ++f) {
    ka.flip(static_cast<std::size_t>(rng.uniform_int(64)));
  }
  const auto r = cascade_reconcile(ka, kb);
  // At least the initial block parities of every iteration leak.
  EXPECT_GE(r.leaked_bits, 22u + 11u + 6u + 3u);
  EXPECT_EQ(r.messages, r.leaked_bits);
}

TEST(Cascade, MoreErrorsMoreMessages) {
  vkey::Rng rng(5);
  const BitVec kb = random_key(128, rng);
  BitVec one = kb, many = kb;
  one.flip(10);
  for (std::size_t i = 0; i < 128; i += 9) many.flip(i);
  EXPECT_GT(cascade_reconcile(many, kb).messages,
            cascade_reconcile(one, kb).messages);
}

TEST(Cascade, NeverDecreasesAgreement) {
  vkey::Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    const BitVec kb = random_key(64, rng);
    BitVec ka = kb;
    for (std::size_t i = 0; i < 64; ++i) {
      if (rng.bernoulli(0.15)) ka.flip(i);
    }
    const auto r = cascade_reconcile(ka, kb);
    EXPECT_GE(r.corrected.agreement(kb), ka.agreement(kb));
  }
}

TEST(Cascade, ConfigValidated) {
  vkey::Rng rng(7);
  const BitVec k = random_key(16, rng);
  EXPECT_THROW(cascade_reconcile(k, BitVec(8)), vkey::Error);
  CascadeConfig bad;
  bad.initial_block = 0;
  EXPECT_THROW(cascade_reconcile(k, k, bad), vkey::Error);
  bad = CascadeConfig{};
  bad.iterations = 0;
  EXPECT_THROW(cascade_reconcile(k, k, bad), vkey::Error);
}

// Parameterized sweep across BER: success degrades gracefully.
class CascadeBerSweep : public ::testing::TestWithParam<double> {};

TEST_P(CascadeBerSweep, HighSuccessUpToFifteenPercent) {
  const double ber = GetParam();
  vkey::Rng rng(8);
  int success = 0;
  const int trials = 25;
  for (int t = 0; t < trials; ++t) {
    const BitVec kb = random_key(64, rng);
    BitVec ka = kb;
    for (std::size_t i = 0; i < 64; ++i) {
      if (rng.bernoulli(ber)) ka.flip(i);
    }
    CascadeConfig cfg;
    cfg.seed = 50 + static_cast<std::uint64_t>(t);
    success += cascade_reconcile(ka, kb, cfg).corrected == kb;
  }
  EXPECT_GE(success, trials * 7 / 10) << "ber " << ber;
}

INSTANTIATE_TEST_SUITE_P(BerLevels, CascadeBerSweep,
                         ::testing::Values(0.02, 0.05, 0.10, 0.15));

}  // namespace
}  // namespace vkey::baselines
