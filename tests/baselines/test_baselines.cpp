#include <gtest/gtest.h>

#include "baselines/baseline.h"
#include "common/error.h"
#include "baselines/gao.h"
#include "baselines/han.h"
#include "baselines/lorakey.h"
#include "channel/trace.h"

namespace vkey::baselines {
namespace {

std::vector<channel::ProbeRound> make_trace(std::size_t rounds,
                                            std::uint64_t seed = 77) {
  channel::TraceConfig cfg;
  cfg.scenario =
      channel::make_scenario(channel::ScenarioKind::kV2VUrban, 50.0);
  cfg.seed = seed;
  channel::TraceGenerator gen(cfg);
  return gen.generate(rounds);
}

double round_duration() {
  channel::TraceConfig cfg;
  cfg.scenario =
      channel::make_scenario(channel::ScenarioKind::kV2VUrban, 50.0);
  return channel::TraceGenerator(cfg).round_duration();
}

TEST(ExtractPrssi, OneValuePerRoundPerParty) {
  const auto rounds = make_trace(10);
  const auto s = extract_prssi(rounds);
  EXPECT_EQ(s.alice.size(), 10u);
  EXPECT_EQ(s.bob.size(), 10u);
}

TEST(LoRaKeyBaseline, ProducesReasonableMetrics) {
  const auto rounds = make_trace(400);
  LoRaKey lk;
  const auto m = lk.run(rounds, round_duration());
  EXPECT_EQ(m.name, "LoRa-Key");
  EXPECT_GT(m.blocks, 0u);
  EXPECT_GT(m.mean_kar, 0.5);
  EXPECT_LE(m.mean_kar, 1.0);
  EXPECT_GT(m.kgr_bits_per_s, 0.0);
}

TEST(LoRaKeyBaseline, GuardBandReducesMaterial) {
  const auto rounds = make_trace(400);
  LoRaKeyConfig no_guard;
  no_guard.quantizer.guard_band_ratio = 0.0;
  LoRaKeyConfig with_guard;  // default alpha = 0.8
  const auto m_ng = LoRaKey(no_guard).run(rounds, round_duration());
  const auto m_wg = LoRaKey(with_guard).run(rounds, round_duration());
  EXPECT_LE(m_wg.blocks, m_ng.blocks);
}

TEST(LoRaKeyBaseline, EmptyTraceRejected) {
  EXPECT_THROW(LoRaKey().run({}, 1.0), vkey::Error);
}

TEST(HanBaseline, ProducesReasonableMetrics) {
  const auto rounds = make_trace(400);
  HanV2V han;
  const auto m = han.run(rounds, round_duration());
  EXPECT_EQ(m.name, "Han et al.");
  EXPECT_GT(m.blocks, 0u);
  // Cascade is interactive and strong, but the LoRa interaction budget
  // (CascadeConfig::max_messages) caps what it can fix.
  EXPECT_GT(m.mean_kar, 0.7);
}

TEST(HanBaseline, CascadeLeakageLowersNetRate) {
  // Han's KGR (net of parity leakage) must be below the gross quantized
  // bit rate of ~64 bits per block.
  const auto rounds = make_trace(400);
  const auto m = HanV2V().run(rounds, round_duration());
  const double gross =
      static_cast<double>(m.blocks) * static_cast<double>(HanConfig{}.key_block_bits) /
      (static_cast<double>(rounds.size()) * round_duration());
  EXPECT_LT(m.kgr_bits_per_s, gross);
}

TEST(GaoBaseline, ProducesReasonableMetrics) {
  const auto rounds = make_trace(600);
  GaoModel gao;
  const auto m = gao.run(rounds, round_duration());
  EXPECT_EQ(m.name, "Gao et al.");
  EXPECT_GT(m.blocks, 0u);
  EXPECT_GT(m.mean_kar, 0.5);
}

TEST(GaoBaseline, ConfigValidated) {
  GaoConfig bad;
  bad.interval = 1;
  EXPECT_THROW(GaoModel{bad}, vkey::Error);
}

TEST(Baselines, AllUsePrssiSoKgrIsLow) {
  // The structural claim behind Fig. 13: one pRSSI per probe exchange caps
  // every baseline's KGR around (bits_per_block / block_rounds) /
  // round_duration — single-digit bits per second at most.
  const auto rounds = make_trace(500);
  const double dur = round_duration();
  for (double kgr : {LoRaKey().run(rounds, dur).kgr_bits_per_s,
                     HanV2V().run(rounds, dur).kgr_bits_per_s,
                     GaoModel().run(rounds, dur).kgr_bits_per_s}) {
    EXPECT_LT(kgr, 1.0);
  }
}

}  // namespace
}  // namespace vkey::baselines
