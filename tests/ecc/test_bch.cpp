#include "ecc/bch.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "common/rng.h"

namespace vkey::ecc {
namespace {

BitVec random_bits(std::size_t n, vkey::Rng& rng) {
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

TEST(Bch, KnownDimensions) {
  // BCH(15, 7, 2) and BCH(15, 5, 3) are textbook codes.
  EXPECT_EQ(BchCode(4, 2).k(), 7);
  EXPECT_EQ(BchCode(4, 3).k(), 5);
  // BCH(127, 106, 3), BCH(127, 64, 10) (standard table values).
  EXPECT_EQ(BchCode(7, 3).k(), 106);
  EXPECT_EQ(BchCode(7, 10).k(), 64);
}

TEST(Bch, TTooLargeRejected) {
  EXPECT_THROW(BchCode(4, 8), vkey::Error);
}

TEST(Bch, CleanCodewordDecodesToItself) {
  BchCode code(6, 3);
  vkey::Rng rng(1);
  const BitVec info = random_bits(static_cast<std::size_t>(code.k()), rng);
  const BitVec cw = code.encode(info);
  const auto d = code.decode(cw);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->errors, 0u);
  EXPECT_EQ(code.info_of(d->codeword), info);
}

TEST(Bch, CorrectsUpToTErrors) {
  BchCode code(7, 5);
  vkey::Rng rng(2);
  for (int trial = 0; trial < 25; ++trial) {
    const BitVec info = random_bits(static_cast<std::size_t>(code.k()), rng);
    BitVec cw = code.encode(info);
    const int nerr = 1 + static_cast<int>(rng.uniform_int(
                             static_cast<std::uint64_t>(code.t())));
    std::set<std::size_t> positions;
    while (static_cast<int>(positions.size()) < nerr) {
      positions.insert(static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::uint64_t>(code.n()))));
    }
    for (auto p : positions) cw.flip(p);
    const auto d = code.decode(cw);
    ASSERT_TRUE(d.has_value()) << "trial " << trial;
    EXPECT_EQ(d->errors, positions.size());
    EXPECT_EQ(code.info_of(d->codeword), info);
  }
}

TEST(Bch, FailsCleanlyBeyondT) {
  BchCode code(6, 2);
  vkey::Rng rng(3);
  int failures = 0;
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    const BitVec info = random_bits(static_cast<std::size_t>(code.k()), rng);
    BitVec cw = code.encode(info);
    // Flip t + 3 distinct positions: decoding must fail or mis-decode to a
    // *valid* codeword (never crash); most of the time it reports failure.
    std::set<std::size_t> positions;
    while (positions.size() < static_cast<std::size_t>(code.t() + 3)) {
      positions.insert(static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::uint64_t>(code.n()))));
    }
    for (auto p : positions) cw.flip(p);
    const auto d = code.decode(cw);
    if (!d.has_value()) {
      ++failures;
    }
  }
  EXPECT_GT(failures, trials / 2);
}

TEST(Bch, ParityIsLinear) {
  BchCode code(5, 2);
  vkey::Rng rng(4);
  const BitVec a = random_bits(static_cast<std::size_t>(code.k()), rng);
  const BitVec b = random_bits(static_cast<std::size_t>(code.k()), rng);
  EXPECT_EQ(code.parity(a) ^ code.parity(b), code.parity(a ^ b));
}

TEST(Bch, InputWidthsChecked) {
  BchCode code(5, 2);
  EXPECT_THROW(code.parity(BitVec(3)), vkey::Error);
  EXPECT_THROW(code.decode(BitVec(5)), vkey::Error);
}

TEST(BchReconciler, RoundTripWithinRadius) {
  // BCH(127, 64, t=10) protecting a 64-bit key: the workhorse configuration.
  BchReconciler rec(7, 10, 64);
  vkey::Rng rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    const BitVec kb = random_bits(64, rng);
    BitVec ka = kb;
    for (std::size_t i = 0; i < 64; ++i) {
      if (rng.bernoulli(0.08)) ka.flip(i);  // ~5 errors, well inside t=10
    }
    const auto helper = rec.helper_data(kb);
    const auto fixed = rec.reconcile(ka, helper);
    ASSERT_TRUE(fixed.has_value()) << trial;
    EXPECT_EQ(*fixed, kb);
  }
}

TEST(BchReconciler, FailsBeyondRadius) {
  BchReconciler rec(7, 4, 64);
  vkey::Rng rng(6);
  const BitVec kb = random_bits(64, rng);
  BitVec ka = kb;
  for (std::size_t i = 0; i < 20; ++i) ka.flip(i);  // 20 > t = 4
  EXPECT_FALSE(rec.reconcile(ka, rec.helper_data(kb)).has_value());
}

TEST(BchReconciler, KeyMustFitCode) {
  EXPECT_THROW(BchReconciler(4, 2, 64), vkey::Error);  // k = 7 < 64
}

TEST(BchReconciler, LeakageAccounting) {
  BchReconciler rec(7, 10, 64);
  // Code-offset leaks exactly the parity width.
  EXPECT_EQ(rec.code().parity_bits(), 63);
  EXPECT_EQ(rec.helper_data(BitVec(64)).size(), 63u);
}

}  // namespace
}  // namespace vkey::ecc
