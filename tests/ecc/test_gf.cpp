#include "ecc/gf.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vkey::ecc {
namespace {

TEST(GaloisField, OrderAndBounds) {
  GaloisField gf(7);
  EXPECT_EQ(gf.order(), 127);
  EXPECT_THROW(GaloisField(2), vkey::Error);
  EXPECT_THROW(GaloisField(13), vkey::Error);
}

TEST(GaloisField, ExpLogInverse) {
  GaloisField gf(7);
  for (int x = 1; x <= gf.order(); ++x) {
    EXPECT_EQ(gf.exp(gf.log(x)), x);
  }
  for (int i = 0; i < gf.order(); ++i) {
    EXPECT_EQ(gf.log(gf.exp(i)), i);
  }
}

TEST(GaloisField, AlphaGeneratesWholeGroup) {
  GaloisField gf(5);
  std::vector<bool> seen(static_cast<std::size_t>(gf.order() + 1), false);
  for (int i = 0; i < gf.order(); ++i) {
    const int v = gf.exp(i);
    EXPECT_FALSE(seen[static_cast<std::size_t>(v)]) << "repeat at " << i;
    seen[static_cast<std::size_t>(v)] = true;
  }
}

TEST(GaloisField, MultiplicationAxioms) {
  GaloisField gf(6);
  // Commutativity, associativity, identity, zero on a sample grid.
  for (int a = 0; a < 64; a += 7) {
    for (int b = 0; b < 64; b += 5) {
      EXPECT_EQ(gf.mul(a, b), gf.mul(b, a));
      EXPECT_EQ(gf.mul(a, 1), a);
      EXPECT_EQ(gf.mul(a, 0), 0);
      for (int c = 0; c < 64; c += 11) {
        EXPECT_EQ(gf.mul(gf.mul(a, b), c), gf.mul(a, gf.mul(b, c)));
      }
    }
  }
}

TEST(GaloisField, Distributivity) {
  GaloisField gf(4);
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      for (int c = 0; c < 16; ++c) {
        EXPECT_EQ(gf.mul(a, gf.add(b, c)),
                  gf.add(gf.mul(a, b), gf.mul(a, c)));
      }
    }
  }
}

TEST(GaloisField, InversesMultiplyToOne) {
  GaloisField gf(7);
  for (int x = 1; x <= gf.order(); ++x) {
    EXPECT_EQ(gf.mul(x, gf.inv(x)), 1) << x;
  }
  EXPECT_THROW(gf.inv(0), vkey::Error);
}

TEST(GaloisField, PowMatchesRepeatedMul) {
  GaloisField gf(5);
  for (int x : {1, 2, 7, 19, 31}) {
    int acc = 1;
    for (int p = 0; p < 8; ++p) {
      EXPECT_EQ(gf.pow(x, p), acc) << x << "^" << p;
      acc = gf.mul(acc, x);
    }
  }
  EXPECT_EQ(gf.pow(0, 0), 1);
  EXPECT_EQ(gf.pow(0, 5), 0);
}

TEST(Gf2Poly, DegreeAndMultiply) {
  using namespace gf2poly;
  EXPECT_EQ(degree({0}), -1);
  EXPECT_EQ(degree({1}), 0);
  EXPECT_EQ(degree({1, 0, 1}), 2);
  // (x + 1)(x + 1) = x^2 + 1 over GF(2).
  EXPECT_EQ(multiply({1, 1}, {1, 1}), (std::vector<std::uint8_t>{1, 0, 1}));
  // (x^2 + x + 1)(x + 1) = x^3 + 1.
  EXPECT_EQ(multiply({1, 1, 1}, {1, 1}),
            (std::vector<std::uint8_t>{1, 0, 0, 1}));
}

TEST(Gf2Poly, Mod) {
  using namespace gf2poly;
  // (x^3 + 1) mod (x + 1) = 0 (x+1 divides it).
  const auto r = mod({1, 0, 0, 1}, {1, 1});
  EXPECT_EQ(degree(r), -1);
  // x^3 mod (x^2 + 1) = x  (x^3 = x*(x^2+1) + x).
  const auto r2 = mod({0, 0, 0, 1}, {1, 0, 1});
  EXPECT_EQ(r2, (std::vector<std::uint8_t>{0, 1}));
}

}  // namespace
}  // namespace vkey::ecc
