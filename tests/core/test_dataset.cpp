#include "core/dataset.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/stats.h"

namespace vkey::core {
namespace {

channel::TraceConfig trace_config() {
  channel::TraceConfig cfg;
  cfg.scenario = channel::make_scenario(channel::ScenarioKind::kV2VUrban, 50.0);
  cfg.seed = 5;
  return cfg;
}

TEST(Dataset, StreamsAreIndexAligned) {
  channel::TraceGenerator gen(trace_config());
  const auto rounds = gen.generate(10);
  const ArRssiExtractor ex(0.04);
  const auto st = extract_streams(rounds, ex, 4);
  EXPECT_EQ(st.alice.size(), st.bob.size());
  EXPECT_EQ(st.alice.size(), st.eve.size());
  EXPECT_EQ(st.alice.size(), 40u);  // 4 reciprocal windows x 10 rounds
}

TEST(Dataset, ZeroReciprocalWindowsUsesAll) {
  channel::TraceGenerator gen(trace_config());
  const auto rounds = gen.generate(4);
  const ArRssiExtractor ex(0.10);
  const auto st = extract_streams(rounds, ex, 0);
  const auto per_packet = ex.values_per_packet(
      static_cast<std::size_t>(gen.phy().rssi_samples_per_packet()));
  EXPECT_EQ(st.alice.size(), 4u * per_packet);
}

TEST(Dataset, MirroredPairingImprovesCorrelation) {
  // The mirror pairing is the whole point: paired values must correlate
  // far better than naive same-position pairing.
  channel::TraceGenerator gen(trace_config());
  const auto rounds = gen.generate(150);
  const ArRssiExtractor ex(0.04);
  const auto mirrored = extract_streams(rounds, ex, 4);
  // Build the naive pairing manually: Alice head windows vs Bob head windows.
  std::vector<double> alice_naive, bob_naive;
  for (const auto& r : rounds) {
    const auto a = ex.sequence(r.alice_rx);
    const auto b = ex.sequence(r.bob_rx);
    for (std::size_t j = 0; j < 4; ++j) {
      alice_naive.push_back(a[j]);
      bob_naive.push_back(b[j]);
    }
  }
  const double mirrored_corr =
      vkey::stats::pearson(mirrored.alice, mirrored.bob);
  const double naive_corr = vkey::stats::pearson(alice_naive, bob_naive);
  EXPECT_GT(mirrored_corr, naive_corr + 0.1);
}

TEST(Dataset, SamplesHaveConsistentShapes) {
  channel::TraceGenerator gen(trace_config());
  const auto rounds = gen.generate(100);
  DatasetConfig cfg;
  const auto samples =
      make_samples(extract_streams(rounds, cfg.extractor,
                                   cfg.reciprocal_windows),
                   cfg);
  ASSERT_FALSE(samples.empty());
  for (const auto& s : samples) {
    EXPECT_EQ(s.alice_seq.size(), cfg.seq_len);
    EXPECT_EQ(s.bob_seq.size(), cfg.seq_len);
    EXPECT_EQ(s.eve_seq.size(), cfg.seq_len);
    EXPECT_EQ(s.bob_bits.size(),
              cfg.seq_len * static_cast<std::size_t>(
                                cfg.quantizer.bits_per_sample));
  }
}

TEST(Dataset, StrideControlsOverlap) {
  channel::TraceGenerator gen(trace_config());
  const auto rounds = gen.generate(100);
  DatasetConfig nonoverlap;
  nonoverlap.stride = 0;
  DatasetConfig overlap = nonoverlap;
  overlap.stride = 8;
  const auto st = extract_streams(rounds, nonoverlap.extractor,
                                  nonoverlap.reciprocal_windows);
  const auto s1 = make_samples(st, nonoverlap);
  const auto s2 = make_samples(st, overlap);
  EXPECT_GT(s2.size(), 4 * s1.size());
}

TEST(Dataset, NormalizedInputsInUnitInterval) {
  channel::TraceGenerator gen(trace_config());
  const auto rounds = gen.generate(80);
  DatasetConfig cfg;
  const auto samples = make_samples(
      extract_streams(rounds, cfg.extractor, cfg.reciprocal_windows), cfg);
  for (const auto& s : samples) {
    for (double v : s.alice_seq) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(Dataset, NormalizeWindowBounds) {
  const std::vector<double> raw{1.0, 2.0, 3.0, 4.0};
  const auto w = normalize_window(raw, 1, 3);
  EXPECT_DOUBLE_EQ(w[0], 0.0);
  EXPECT_DOUBLE_EQ(w[2], 1.0);
  EXPECT_THROW(normalize_window(raw, 2, 3), vkey::Error);
}

TEST(Dataset, MisalignedStreamsRejected) {
  ArRssiStreams st;
  st.alice = {1.0, 2.0};
  st.bob = {1.0};
  st.eve = {1.0, 2.0};
  EXPECT_THROW(make_samples(st, DatasetConfig{}), vkey::Error);
}

TEST(Dataset, BobBitsComeFromBobStream) {
  // With identical streams, Alice's direct quantization of her window must
  // equal Bob's target bits (sanity link between quantizer and dataset).
  channel::TraceGenerator gen(trace_config());
  const auto rounds = gen.generate(80);
  DatasetConfig cfg;
  auto st = extract_streams(rounds, cfg.extractor, cfg.reciprocal_windows);
  st.alice = st.bob;  // force perfect reciprocity
  const auto samples = make_samples(st, cfg);
  QuantizerConfig qc = cfg.quantizer;
  qc.block_size = std::min<std::size_t>(qc.block_size, cfg.seq_len);
  MultiBitQuantizer q(qc);
  for (const auto& s : samples) {
    std::vector<double> alice_raw(s.alice_seq.begin(), s.alice_seq.end());
    EXPECT_EQ(q.quantize(alice_raw).bits, s.bob_bits);
  }
}

}  // namespace
}  // namespace vkey::core
