#include "core/reconciler.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace vkey::core {
namespace {

ReconcilerConfig fast_config() {
  ReconcilerConfig cfg;
  cfg.key_bits = 64;
  cfg.code_dim = 32;
  cfg.decoder_units = 64;
  cfg.seed = 21;
  return cfg;
}

BitVec random_key(std::size_t n, vkey::Rng& rng) {
  BitVec k(n);
  for (std::size_t i = 0; i < n; ++i) k.set(i, rng.bernoulli(0.5));
  return k;
}

class ReconcilerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    reconciler_ = new AutoencoderReconciler(fast_config());
    reconciler_->train(2500, 25);
  }
  static void TearDownTestSuite() {
    delete reconciler_;
    reconciler_ = nullptr;
  }
  static AutoencoderReconciler* reconciler_;
};

AutoencoderReconciler* ReconcilerTest::reconciler_ = nullptr;

TEST_F(ReconcilerTest, NoMismatchIsFixedPoint) {
  vkey::Rng rng(1);
  const BitVec k = random_key(64, rng);
  const auto y = reconciler_->encode_bob(k);
  EXPECT_EQ(reconciler_->reconcile(k, y), k);
  const auto d = reconciler_->decode_mismatch(k, y);
  EXPECT_EQ(d.mismatch.weight(), 0u);
}

TEST_F(ReconcilerTest, CorrectsSingleFlip) {
  vkey::Rng rng(2);
  int success = 0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    const BitVec kb = random_key(64, rng);
    BitVec ka = kb;
    ka.flip(static_cast<std::size_t>(rng.uniform_int(64)));
    success += reconciler_->reconcile(ka, reconciler_->encode_bob(kb)) == kb;
  }
  EXPECT_GE(success, trials - 1);
}

TEST_F(ReconcilerTest, CorrectsModerateMismatch) {
  vkey::Rng rng(3);
  int success = 0;
  const int trials = 40;
  for (int trial = 0; trial < trials; ++trial) {
    const BitVec kb = random_key(64, rng);
    BitVec ka = kb;
    for (std::size_t i = 0; i < 64; ++i) {
      if (rng.bernoulli(0.05)) ka.flip(i);
    }
    success +=
        reconciler_->reconcile(ka, reconciler_->encode_bob(kb)) == kb;
  }
  EXPECT_GE(success, trials * 6 / 10);
}

TEST_F(ReconcilerTest, ImprovesAgreementAtHighBer) {
  vkey::Rng rng(4);
  double pre = 0.0, post = 0.0;
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    const BitVec kb = random_key(64, rng);
    BitVec ka = kb;
    for (std::size_t i = 0; i < 64; ++i) {
      if (rng.bernoulli(0.10)) ka.flip(i);
    }
    pre += ka.agreement(kb);
    post += reconciler_->reconcile(ka, reconciler_->encode_bob(kb))
                .agreement(kb);
  }
  EXPECT_GT(post / trials, pre / trials + 0.03);
}

TEST_F(ReconcilerTest, UncorrelatedKeyGainsNothingOneShot) {
  // The paper's eavesdropping attack: feeding the syndrome to the decoder
  // with unrelated key material must stay near 50% agreement.
  vkey::Rng rng(5);
  double agree = 0.0;
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    const BitVec kb = random_key(64, rng);
    const BitVec ke = random_key(64, rng);
    agree += reconciler_->reconcile_one_shot(ke, reconciler_->encode_bob(kb))
                 .agreement(kb);
  }
  EXPECT_NEAR(agree / trials, 0.5, 0.1);
}

TEST_F(ReconcilerTest, SyndromeHasCodeDim) {
  vkey::Rng rng(6);
  EXPECT_EQ(reconciler_->encode_bob(random_key(64, rng)).size(), 32u);
}

TEST_F(ReconcilerTest, IterationsReported) {
  vkey::Rng rng(7);
  const BitVec kb = random_key(64, rng);
  BitVec ka = kb;
  ka.flip(5);
  ka.flip(30);
  const auto d = reconciler_->decode_mismatch(ka, reconciler_->encode_bob(kb));
  EXPECT_GE(d.iterations, 2u);
  EXPECT_LE(d.iterations, fast_config().max_decode_iterations);
}

TEST_F(ReconcilerTest, InputWidthsChecked) {
  vkey::Rng rng(8);
  EXPECT_THROW(reconciler_->encode_bob(BitVec(32)), vkey::Error);
  const auto y = reconciler_->encode_bob(random_key(64, rng));
  EXPECT_THROW(reconciler_->reconcile(BitVec(32), y), vkey::Error);
  EXPECT_THROW(reconciler_->reconcile(random_key(64, rng),
                                      std::vector<double>(5)),
               vkey::Error);
}

TEST(Reconciler, FlopAccounting) {
  const ReconcilerConfig cfg = fast_config();
  AutoencoderReconciler r(cfg);
  // Alice: encoder 64*32 + decoder 32*64 + 64*64 + 64*64 + 64*64.
  const std::size_t expect = 64 * 32 + 32 * 64 + 64 * 64 + 64 * 64 + 64 * 64;
  EXPECT_EQ(r.decode_flops(), expect);
  EXPECT_EQ(r.encode_flops(), 64u * 32u);
}

TEST(Reconciler, ConfigValidated) {
  ReconcilerConfig bad = fast_config();
  bad.key_bits = 4;
  EXPECT_THROW(AutoencoderReconciler{bad}, vkey::Error);
  bad = fast_config();
  bad.train_ber_lo = 0.3;
  bad.train_ber_hi = 0.2;
  EXPECT_THROW(AutoencoderReconciler{bad}, vkey::Error);
}

TEST(Reconciler, MoreUnitsMoreFlops) {
  ReconcilerConfig small = fast_config();
  small.decoder_units = 16;
  ReconcilerConfig big = fast_config();
  big.decoder_units = 128;
  EXPECT_LT(AutoencoderReconciler(small).decode_flops(),
            AutoencoderReconciler(big).decode_flops());
}

}  // namespace
}  // namespace vkey::core
