#include "core/predictor.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "nn/serialize.h"

namespace vkey::core {
namespace {

PredictorConfig tiny_config() {
  PredictorConfig cfg;
  cfg.seq_len = 16;
  cfg.hidden = 6;
  cfg.key_bits = 16;
  cfg.seed = 3;
  return cfg;
}

// A synthetic task with a learnable mapping: Bob's sequence is a smoothed,
// slightly shifted copy of Alice's; his bits are a median threshold of it.
std::vector<TrainingSample> synthetic_samples(const PredictorConfig& cfg,
                                              std::size_t n,
                                              std::uint64_t seed) {
  vkey::Rng rng(seed);
  std::vector<TrainingSample> out;
  for (std::size_t s = 0; s < n; ++s) {
    TrainingSample ts;
    ts.alice_seq.resize(cfg.seq_len);
    ts.bob_seq.resize(cfg.seq_len);
    ts.eve_seq.resize(cfg.seq_len);
    double walk = 0.5;
    for (std::size_t t = 0; t < cfg.seq_len; ++t) {
      walk = 0.8 * walk + 0.2 * rng.uniform();
      ts.alice_seq[t] = walk;
      ts.eve_seq[t] = rng.uniform();
    }
    for (std::size_t t = 0; t < cfg.seq_len; ++t) {
      const std::size_t prev = t > 0 ? t - 1 : 0;
      ts.bob_seq[t] = 0.5 * ts.alice_seq[t] + 0.5 * ts.alice_seq[prev];
    }
    // 1 bit per value via a fixed threshold (directly learnable).
    ts.bob_bits = BitVec(cfg.key_bits);
    for (std::size_t t = 0; t < cfg.key_bits; ++t) {
      ts.bob_bits.set(t, ts.bob_seq[t] > 0.5);
    }
    out.push_back(std::move(ts));
  }
  return out;
}

TEST(Predictor, ConfigValidated) {
  PredictorConfig bad = tiny_config();
  bad.seq_len = 2;
  EXPECT_THROW(PredictorQuantizer{bad}, vkey::Error);
  bad = tiny_config();
  bad.theta = 1.5;
  EXPECT_THROW(PredictorQuantizer{bad}, vkey::Error);
}

TEST(Predictor, OutputShapes) {
  const PredictorConfig cfg = tiny_config();
  PredictorQuantizer p(cfg);
  const auto out = p.infer(nn::Vec(cfg.seq_len, 0.5));
  EXPECT_EQ(out.predicted_seq.size(), cfg.seq_len);
  EXPECT_EQ(out.probabilities.size(), cfg.key_bits);
  EXPECT_EQ(out.bits.size(), cfg.key_bits);
  for (double pr : out.probabilities) {
    EXPECT_GT(pr, 0.0);
    EXPECT_LT(pr, 1.0);
  }
}

TEST(Predictor, InputSizeChecked) {
  PredictorQuantizer p(tiny_config());
  EXPECT_THROW(p.infer(nn::Vec(3, 0.0)), vkey::Error);
}

TEST(Predictor, TrainingReducesLoss) {
  const PredictorConfig cfg = tiny_config();
  PredictorQuantizer p(cfg);
  const auto samples = synthetic_samples(cfg, 80, 11);
  const double before = p.evaluate_loss(samples);
  const auto report = p.train(samples, 30);
  ASSERT_EQ(report.epoch_loss.size(), 30u);
  EXPECT_LT(p.evaluate_loss(samples), before * 0.8);
  EXPECT_LT(report.final_loss, report.epoch_loss.front());
}

TEST(Predictor, LearnsSyntheticMapping) {
  const PredictorConfig cfg = tiny_config();
  PredictorQuantizer p(cfg);
  const auto train = synthetic_samples(cfg, 250, 13);
  const auto test = synthetic_samples(cfg, 20, 14);
  p.train(train, 40);
  double agree = 0.0;
  for (const auto& s : test) {
    agree += p.infer(s.alice_seq).bits.agreement(s.bob_bits);
  }
  EXPECT_GT(agree / static_cast<double>(test.size()), 0.8);
}

TEST(Predictor, DeterministicForSameSeed) {
  const PredictorConfig cfg = tiny_config();
  PredictorQuantizer a(cfg), b(cfg);
  const auto samples = synthetic_samples(cfg, 30, 15);
  a.train(samples, 3);
  b.train(samples, 3);
  const nn::Vec x(cfg.seq_len, 0.3);
  EXPECT_EQ(a.infer(x).bits, b.infer(x).bits);
}

TEST(Predictor, SnapshotRestoreTransfersModel) {
  const PredictorConfig cfg = tiny_config();
  PredictorQuantizer a(cfg);
  const auto samples = synthetic_samples(cfg, 60, 16);
  a.train(samples, 10);
  PredictorQuantizer b(cfg);
  nn::restore(b.parameters(), nn::snapshot(a.parameters()));
  const nn::Vec x(cfg.seq_len, 0.7);
  EXPECT_EQ(a.infer(x).bits, b.infer(x).bits);
}

TEST(Predictor, EvaluateLossMatchesTrainingScale) {
  const PredictorConfig cfg = tiny_config();
  PredictorQuantizer p(cfg);
  const auto samples = synthetic_samples(cfg, 20, 17);
  const double before = p.evaluate_loss(samples);
  p.train(samples, 15);
  EXPECT_LT(p.evaluate_loss(samples), before);
}

TEST(Predictor, TrainRequiresSamples) {
  PredictorQuantizer p(tiny_config());
  EXPECT_THROW(p.train({}, 1), vkey::Error);
}

TEST(Predictor, SampleShapeChecked) {
  const PredictorConfig cfg = tiny_config();
  PredictorQuantizer p(cfg);
  TrainingSample bad;
  bad.alice_seq.assign(cfg.seq_len - 1, 0.0);
  bad.bob_seq.assign(cfg.seq_len, 0.0);
  bad.bob_bits = BitVec(cfg.key_bits);
  EXPECT_THROW(p.train(std::vector<TrainingSample>{bad}, 1), vkey::Error);
}

}  // namespace
}  // namespace vkey::core
