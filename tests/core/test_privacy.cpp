#include "core/privacy.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace vkey::core {
namespace {

BitVec random_bits(std::size_t n, std::uint64_t seed) {
  vkey::Rng rng(seed);
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

TEST(PrivacyAmplifier, OutputWidth) {
  PrivacyAmplifier amp(128);
  EXPECT_EQ(amp.amplify(random_bits(64, 1)).size(), 128u);
  PrivacyAmplifier amp64(64);
  EXPECT_EQ(amp64.amplify(random_bits(64, 1)).size(), 64u);
}

TEST(PrivacyAmplifier, Deterministic) {
  PrivacyAmplifier amp(128);
  const BitVec raw = random_bits(64, 2);
  EXPECT_EQ(amp.amplify(raw, 7), amp.amplify(raw, 7));
}

TEST(PrivacyAmplifier, SaltSeparatesSessions) {
  PrivacyAmplifier amp(128);
  const BitVec raw = random_bits(64, 3);
  EXPECT_NE(amp.amplify(raw, 1), amp.amplify(raw, 2));
}

TEST(PrivacyAmplifier, SingleBitAvalanche) {
  PrivacyAmplifier amp(128);
  BitVec raw = random_bits(64, 4);
  const BitVec k1 = amp.amplify(raw);
  raw.flip(10);
  const BitVec k2 = amp.amplify(raw);
  // Roughly half the output bits flip for a 1-bit input change.
  const auto d = k1.hamming_distance(k2);
  EXPECT_GT(d, 40u);
  EXPECT_LT(d, 88u);
}

TEST(PrivacyAmplifier, MatchingInputsMatchOutputs) {
  // The whole protocol relies on this: agreed raw keys give agreed final
  // keys on both sides.
  PrivacyAmplifier amp(128);
  const BitVec raw = random_bits(64, 5);
  const BitVec copy = raw;
  EXPECT_EQ(amp.amplify(raw, 9), amp.amplify(copy, 9));
}

TEST(PrivacyAmplifier, AesKeyMaterial) {
  PrivacyAmplifier amp(128);
  const auto key = amp.aes_key(random_bits(64, 6));
  // 16 bytes, not all zero.
  int nonzero = 0;
  for (auto b : key) nonzero += b != 0;
  EXPECT_GT(nonzero, 4);
  PrivacyAmplifier amp64(64);
  EXPECT_THROW(amp64.aes_key(random_bits(64, 6)), vkey::Error);
}

TEST(PrivacyAmplifier, ConfigValidated) {
  EXPECT_THROW(PrivacyAmplifier(0), vkey::Error);
  EXPECT_THROW(PrivacyAmplifier(100), vkey::Error);  // not multiple of 8
  EXPECT_THROW(PrivacyAmplifier(512), vkey::Error);
}

TEST(PrivacyAmplifier, EmptyInputRejected) {
  PrivacyAmplifier amp(128);
  EXPECT_THROW(amp.amplify(BitVec{}), vkey::Error);
}

}  // namespace
}  // namespace vkey::core
