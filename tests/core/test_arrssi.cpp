#include "core/arrssi.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vkey::core {
namespace {

channel::PacketObservation make_obs(std::vector<double> rssi) {
  channel::PacketObservation obs;
  obs.rrssi = std::move(rssi);
  return obs;
}

TEST(ArRssi, WindowFractionValidated) {
  EXPECT_THROW(ArRssiExtractor(0.0), vkey::Error);
  EXPECT_THROW(ArRssiExtractor(1.5), vkey::Error);
  EXPECT_NO_THROW(ArRssiExtractor(1.0));
}

TEST(ArRssi, WindowLenRoundsAndClamps) {
  ArRssiExtractor ex(0.10);
  EXPECT_EQ(ex.window_len(52), 5u);
  EXPECT_EQ(ex.window_len(5), 1u);   // never zero
  EXPECT_EQ(ex.window_len(100), 10u);
}

TEST(ArRssi, SequenceIsNonOverlappingMeans) {
  ArRssiExtractor ex(0.5);  // window of 2 on 4 samples
  const auto seq = ex.sequence(make_obs({1.0, 3.0, 5.0, 7.0}));
  ASSERT_EQ(seq.size(), 2u);
  EXPECT_DOUBLE_EQ(seq[0], 2.0);
  EXPECT_DOUBLE_EQ(seq[1], 6.0);
}

TEST(ArRssi, SequenceDropsPartialTail) {
  ArRssiExtractor ex(0.4);  // window of 2 on 5 samples -> 2 windows
  const auto seq = ex.sequence(make_obs({1.0, 1.0, 2.0, 2.0, 9.0}));
  EXPECT_EQ(seq.size(), 2u);
}

TEST(ArRssi, ValuesPerPacket) {
  ArRssiExtractor ex(0.10);
  EXPECT_EQ(ex.values_per_packet(52), 10u);
  EXPECT_EQ(ex.values_per_packet(10), 10u);  // window 1
}

TEST(ArRssi, BoundaryPairUsesAdjacentWindows) {
  ArRssiExtractor ex(0.25);  // window of 2 on 8 samples
  channel::ProbeRound round;
  round.bob_rx = make_obs({1, 1, 1, 1, 1, 1, 10.0, 20.0});   // tail = 15
  round.alice_rx = make_obs({30.0, 40.0, 1, 1, 1, 1, 1, 1}); // head = 35
  round.eve_rx_bob_tx = make_obs({50.0, 60.0, 1, 1, 1, 1, 1, 1});
  const auto bp = ex.boundary_pair(round);
  EXPECT_DOUBLE_EQ(bp.bob_arrssi, 15.0);
  EXPECT_DOUBLE_EQ(bp.alice_arrssi, 35.0);
  EXPECT_DOUBLE_EQ(ex.eve_boundary(round), 55.0);
}

TEST(ArRssi, EmptyObservationRejected) {
  ArRssiExtractor ex(0.1);
  EXPECT_THROW(ex.sequence(make_obs({})), vkey::Error);
  channel::ProbeRound round;
  EXPECT_THROW(ex.boundary_pair(round), vkey::Error);
}

TEST(ArRssi, FullWindowEqualsPrssi) {
  ArRssiExtractor ex(1.0);
  const auto obs = make_obs({-80.0, -82.0, -78.0, -90.0});
  const auto seq = ex.sequence(obs);
  ASSERT_EQ(seq.size(), 1u);
  EXPECT_DOUBLE_EQ(seq[0], obs.prssi());
}

// Averaging property: wider windows reduce sample noise variance.
TEST(ArRssi, WiderWindowSmoothsNoise) {
  vkey::Rng rng(3);
  std::vector<double> noisy(1000);
  for (auto& v : noisy) v = rng.gaussian(-80.0, 3.0);
  ArRssiExtractor narrow(0.001);  // window 1
  ArRssiExtractor wide(0.02);     // window 20
  const auto sn = narrow.sequence(make_obs(noisy));
  const auto sw = wide.sequence(make_obs(noisy));
  auto var = [](const std::vector<double>& x) {
    double m = 0.0, s = 0.0;
    for (double v : x) m += v;
    m /= static_cast<double>(x.size());
    for (double v : x) s += (v - m) * (v - m);
    return s / static_cast<double>(x.size());
  };
  EXPECT_LT(var(sw), var(sn) / 4.0);
}

}  // namespace
}  // namespace vkey::core
