#include "core/quantizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace vkey::core {
namespace {

std::vector<double> gaussian_series(std::size_t n, std::uint64_t seed,
                                    double mean = -80.0, double sd = 5.0) {
  vkey::Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.gaussian(mean, sd);
  return v;
}

TEST(GrayCode, KnownCodes) {
  EXPECT_EQ(MultiBitQuantizer::gray_code(0, 2),
            (std::vector<std::uint8_t>{0, 0}));
  EXPECT_EQ(MultiBitQuantizer::gray_code(1, 2),
            (std::vector<std::uint8_t>{0, 1}));
  EXPECT_EQ(MultiBitQuantizer::gray_code(2, 2),
            (std::vector<std::uint8_t>{1, 1}));
  EXPECT_EQ(MultiBitQuantizer::gray_code(3, 2),
            (std::vector<std::uint8_t>{1, 0}));
}

TEST(GrayCode, AdjacentLevelsDifferInOneBit) {
  for (int bits = 1; bits <= 4; ++bits) {
    for (std::size_t level = 0; level + 1 < (1u << bits); ++level) {
      const auto a = MultiBitQuantizer::gray_code(level, bits);
      const auto b = MultiBitQuantizer::gray_code(level + 1, bits);
      int diff = 0;
      for (int i = 0; i < bits; ++i) diff += a[static_cast<std::size_t>(i)] != b[static_cast<std::size_t>(i)];
      EXPECT_EQ(diff, 1) << "bits=" << bits << " level=" << level;
    }
  }
}

TEST(Quantizer, ConfigValidated) {
  EXPECT_THROW(MultiBitQuantizer({.bits_per_sample = 0}), vkey::Error);
  EXPECT_THROW(MultiBitQuantizer({.bits_per_sample = 5}), vkey::Error);
  EXPECT_THROW(MultiBitQuantizer({.block_size = 2}), vkey::Error);
  EXPECT_THROW(MultiBitQuantizer({.guard_band_ratio = 1.0}), vkey::Error);
}

TEST(Quantizer, OutputLengthWithoutGuardBands) {
  MultiBitQuantizer q({.bits_per_sample = 2, .block_size = 16});
  const auto r = q.quantize(gaussian_series(64, 1));
  EXPECT_EQ(r.bits.size(), 128u);
  EXPECT_EQ(r.kept.size(), 64u);
}

TEST(Quantizer, NeedsFullBlock) {
  MultiBitQuantizer q({.block_size = 16});
  EXPECT_THROW(q.quantize(gaussian_series(8, 2)), vkey::Error);
}

TEST(Quantizer, SingleBitSplitsAtMedian) {
  MultiBitQuantizer q({.bits_per_sample = 1, .block_size = 8});
  const std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8};
  const auto r = q.quantize(v);
  EXPECT_EQ(r.bits.to_string(), "00001111");
}

TEST(Quantizer, LevelsAreEquallyPopulated) {
  MultiBitQuantizer q({.bits_per_sample = 2, .block_size = 64});
  const auto r = q.quantize(gaussian_series(64, 3));
  // 2 bits -> 4 levels -> with quantile thresholds each level holds ~16.
  EXPECT_NEAR(static_cast<double>(r.bits.weight()),
              static_cast<double>(r.bits.size()) / 2.0,
              static_cast<double>(r.bits.size()) / 8.0);
}

TEST(Quantizer, InvariantToMonotoneShift) {
  // Block-adaptive quantile thresholds make the bits invariant to adding a
  // constant — the property that defeats path-loss eavesdropping.
  MultiBitQuantizer q({.bits_per_sample = 2, .block_size = 16});
  auto v = gaussian_series(64, 4);
  const auto r1 = q.quantize(v);
  for (auto& x : v) x += 25.0;
  const auto r2 = q.quantize(v);
  EXPECT_EQ(r1.bits, r2.bits);
}

TEST(Quantizer, GuardBandDropsSamples) {
  MultiBitQuantizer with_guard(
      {.bits_per_sample = 2, .block_size = 32, .guard_band_ratio = 0.8});
  MultiBitQuantizer without(
      {.bits_per_sample = 2, .block_size = 32, .guard_band_ratio = 0.0});
  const auto v = gaussian_series(256, 5);
  const auto rg = with_guard.quantize(v);
  const auto rn = without.quantize(v);
  EXPECT_LT(rg.kept.size(), rn.kept.size());
  EXPECT_GT(rg.kept.size(), 0u);
  EXPECT_EQ(rg.bits.size(), rg.kept.size() * 2);
}

TEST(Quantizer, GuardBandImprovesAgreement) {
  // Two noisy observations of the same series agree better after guard
  // bands + index intersection — the LoRa-Key mechanism.
  vkey::Rng rng(6);
  std::vector<double> a(512), b(512);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double x = rng.gaussian(-80.0, 5.0);
    a[i] = x + rng.gaussian(0.0, 1.0);
    b[i] = x + rng.gaussian(0.0, 1.0);
  }
  MultiBitQuantizer plain({.bits_per_sample = 2, .block_size = 32});
  MultiBitQuantizer guarded(
      {.bits_per_sample = 2, .block_size = 32, .guard_band_ratio = 0.6});

  const double agree_plain =
      plain.quantize(a).bits.agreement(plain.quantize(b).bits);

  const auto qa = guarded.quantize(a);
  const auto qb = guarded.quantize(b);
  const auto kept = intersect_indices(qa.kept, qb.kept);
  const double agree_guarded = guarded.quantize_at(a, kept).agreement(
      guarded.quantize_at(b, kept));
  EXPECT_GT(agree_guarded, agree_plain);
}

TEST(Quantizer, QuantizeAtChecksIndices) {
  MultiBitQuantizer q({.block_size = 8});
  const auto v = gaussian_series(16, 7);
  EXPECT_THROW(q.quantize_at(v, std::vector<std::size_t>{}), vkey::Error);
  EXPECT_THROW(q.quantize_at(v, std::vector<std::size_t>{99}), vkey::Error);
}

TEST(IntersectIndices, Basics) {
  const std::vector<std::size_t> a{1, 3, 5, 7};
  const std::vector<std::size_t> b{3, 4, 5, 6};
  EXPECT_EQ(intersect_indices(a, b), (std::vector<std::size_t>{3, 5}));
  EXPECT_TRUE(intersect_indices(a, std::vector<std::size_t>{}).empty());
}

// Parameterized sweep: all bit depths produce the expected bit counts and
// roughly balanced bits on Gaussian input.
class QuantizerBitDepth : public ::testing::TestWithParam<int> {};

TEST_P(QuantizerBitDepth, ProducesBalancedBits) {
  const int bits = GetParam();
  MultiBitQuantizer q({.bits_per_sample = bits, .block_size = 32});
  const auto r = q.quantize(gaussian_series(512, 8));
  EXPECT_EQ(r.bits.size(), 512u * static_cast<unsigned>(bits));
  const double ones =
      static_cast<double>(r.bits.weight()) / static_cast<double>(r.bits.size());
  EXPECT_NEAR(ones, 0.5, 0.1);
}

INSTANTIATE_TEST_SUITE_P(BitDepths, QuantizerBitDepth,
                         ::testing::Values(1, 2, 3, 4));

// Agreement monotonically degrades as observation noise grows.
class QuantizerNoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuantizerNoiseSweep, AgreementAboveChance) {
  const double noise = GetParam();
  vkey::Rng rng(9);
  std::vector<double> a(512), b(512);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double x = rng.gaussian(-80.0, 5.0);
    a[i] = x + rng.gaussian(0.0, noise);
    b[i] = x + rng.gaussian(0.0, noise);
  }
  MultiBitQuantizer q({.bits_per_sample = 1, .block_size = 16});
  const double agree = q.quantize(a).bits.agreement(q.quantize(b).bits);
  EXPECT_GT(agree, 0.55);
  if (noise <= 0.5) {
    EXPECT_GT(agree, 0.9);
  }
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, QuantizerNoiseSweep,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0));

}  // namespace
}  // namespace vkey::core
