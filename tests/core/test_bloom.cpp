#include "core/bloom.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace vkey::core {
namespace {

BitVec random_key(std::size_t n, std::uint64_t seed) {
  vkey::Rng rng(seed);
  BitVec k(n);
  for (std::size_t i = 0; i < n; ++i) k.set(i, rng.bernoulli(0.5));
  return k;
}

TEST(Bloom, InvertibleForLegitimateParties) {
  PositionPreservingBloom bloom(64, 0xabc);
  const BitVec k = random_key(64, 1);
  EXPECT_EQ(bloom.invert(bloom.apply(k)), k);
}

TEST(Bloom, PreservesHammingDistanceExactly) {
  // The paper's requirement: "its output can retain the same number of
  // mismatched bits as the input key".
  PositionPreservingBloom bloom(128, 0xdef);
  vkey::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const BitVec a = random_key(128, 100 + static_cast<std::uint64_t>(trial));
    BitVec b = a;
    const auto flips = 1 + rng.uniform_int(20);
    for (std::uint64_t f = 0; f < flips; ++f) {
      b.flip(static_cast<std::size_t>(rng.uniform_int(128)));
    }
    EXPECT_EQ(bloom.apply(a).hamming_distance(bloom.apply(b)),
              a.hamming_distance(b));
  }
}

TEST(Bloom, OutputLooksUnlikeInput) {
  PositionPreservingBloom bloom(64, 0x123);
  const BitVec k = random_key(64, 3);
  const BitVec mapped = bloom.apply(k);
  EXPECT_NE(mapped, k);
  // Roughly half the positions should differ (pad is random).
  const auto d = mapped.hamming_distance(k);
  EXPECT_GT(d, 16u);
  EXPECT_LT(d, 48u);
}

TEST(Bloom, DifferentSessionsDifferentMappings) {
  PositionPreservingBloom b1(64, 1), b2(64, 2);
  const BitVec k = random_key(64, 4);
  EXPECT_NE(b1.apply(k), b2.apply(k));
}

TEST(Bloom, SameSessionIsDeterministic) {
  PositionPreservingBloom b1(64, 42), b2(64, 42);
  const BitVec k = random_key(64, 5);
  EXPECT_EQ(b1.apply(k), b2.apply(k));
}

TEST(Bloom, MismatchMapsBackThroughPermutation) {
  // Correcting in K'-space then inverting equals correcting in K-space:
  // delta' = K'_A ^ K'_B  =>  map_mismatch_back(delta') = K_A ^ K_B.
  PositionPreservingBloom bloom(64, 0x777);
  const BitVec ka = random_key(64, 6);
  BitVec kb = ka;
  kb.flip(3);
  kb.flip(40);
  const BitVec delta_mapped = bloom.apply(ka) ^ bloom.apply(kb);
  EXPECT_EQ(bloom.map_mismatch_back(delta_mapped), ka ^ kb);
}

TEST(Bloom, EndToEndCorrectionThroughMap) {
  PositionPreservingBloom bloom(64, 0x999);
  const BitVec ka = random_key(64, 7);
  BitVec kb = ka;
  kb.flip(10);
  // Alice learns the mapped-domain mismatch, maps it back, corrects.
  const BitVec delta = bloom.map_mismatch_back(bloom.apply(ka) ^ bloom.apply(kb));
  EXPECT_EQ(ka ^ delta, kb);
}

TEST(Bloom, SizeValidation) {
  EXPECT_THROW(PositionPreservingBloom(1, 0), vkey::Error);
  PositionPreservingBloom bloom(64, 0);
  EXPECT_THROW(bloom.apply(BitVec(32)), vkey::Error);
  EXPECT_THROW(bloom.invert(BitVec(32)), vkey::Error);
}

}  // namespace
}  // namespace vkey::core
