// Determinism suite for the parallel execution layer (DESIGN.md "Parallel
// execution & determinism contract").
//
// The contract is bit-identity, not statistical closeness, so every
// comparison here is exact: EXPECT_EQ on doubles, whole BitVecs and dumped
// JSON. threads == 1 is the sequential reference; any lane count must
// reproduce it bit for bit, and two runs of the same config and seed must
// agree regardless of machine load.
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "core/pipeline.h"
#include "core/reconciler.h"

namespace vkey::core {
namespace {

PipelineConfig det_config(bool use_prediction, std::size_t threads) {
  PipelineConfig cfg;
  cfg.trace.scenario =
      channel::make_scenario(channel::ScenarioKind::kV2VUrban, 50.0);
  cfg.trace.seed = 99;
  cfg.predictor.hidden = 8;
  cfg.predictor_epochs = 3;
  cfg.reconciler.decoder_units = 64;
  cfg.reconciler_epochs = 10;
  cfg.reconciler_samples = 800;
  cfg.use_prediction = use_prediction;
  cfg.threads = threads;
  return cfg;
}

struct RunOutput {
  PipelineMetrics m;
  std::vector<KeyBlockResult> blocks;
  BitVec amplified;
};

RunOutput run_once(const PipelineConfig& cfg) {
  KeyGenPipeline p(cfg);
  RunOutput out;
  out.m = p.run(100, 140);
  out.blocks = p.blocks();
  out.amplified = p.amplified_key_stream();
  return out;
}

// Everything the bench JSON exporters would serialize, as one string, so a
// mismatch in any field fails loudly with both documents printed.
std::string metrics_doc(const PipelineMetrics& m) {
  json::Value doc = json::Value::object();
  doc.set("blocks", json::Value(m.blocks));
  doc.set("mean_kar_pre", json::Value(m.mean_kar_pre));
  doc.set("mean_kar_post", json::Value(m.mean_kar_post));
  doc.set("std_kar_post", json::Value(m.std_kar_post));
  doc.set("key_success_rate", json::Value(m.key_success_rate));
  doc.set("mean_eve_kar", json::Value(m.mean_eve_kar));
  doc.set("mean_eve_kar_iterative", json::Value(m.mean_eve_kar_iterative));
  doc.set("test_duration_s", json::Value(m.test_duration_s));
  doc.set("kgr_bits_per_s", json::Value(m.kgr_bits_per_s));
  return doc.dump(2);
}

void expect_identical(const RunOutput& a, const RunOutput& b) {
  EXPECT_EQ(metrics_doc(a.m), metrics_doc(b.m));
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    const auto& x = a.blocks[i];
    const auto& y = b.blocks[i];
    EXPECT_EQ(x.bob_key, y.bob_key) << "block " << i;
    EXPECT_EQ(x.alice_raw, y.alice_raw) << "block " << i;
    EXPECT_EQ(x.alice_corrected, y.alice_corrected) << "block " << i;
    EXPECT_EQ(x.success, y.success) << "block " << i;
    EXPECT_EQ(x.kar_pre, y.kar_pre) << "block " << i;
    EXPECT_EQ(x.kar_post, y.kar_post) << "block " << i;
    EXPECT_EQ(x.eve_kar_post, y.eve_kar_post) << "block " << i;
    EXPECT_EQ(x.eve_kar_iterative, y.eve_kar_iterative) << "block " << i;
  }
  EXPECT_EQ(a.amplified, b.amplified);
}

TEST(PipelineDeterminism, SameSeedTwiceIsIdentical) {
  const auto cfg = det_config(/*use_prediction=*/false, /*threads=*/0);
  expect_identical(run_once(cfg), run_once(cfg));
}

TEST(PipelineDeterminism, LaneCountDoesNotChangeBits) {
  const auto ref = run_once(det_config(false, 1));
  expect_identical(ref, run_once(det_config(false, 2)));
  expect_identical(ref, run_once(det_config(false, 8)));
}

TEST(PipelineDeterminism, LaneCountDoesNotChangeBitsWithPrediction) {
  const auto ref = run_once(det_config(true, 1));
  expect_identical(ref, run_once(det_config(true, 4)));
}

TEST(PipelineDeterminism, ReconcilerTrainingIsLaneCountInvariant) {
  ReconcilerConfig rc;
  rc.decoder_units = 64;

  auto train = [&](std::size_t threads) {
    ReconcilerConfig c = rc;
    c.threads = threads;
    AutoencoderReconciler r(c);
    const double loss = r.train(600, 6);
    return std::pair<double, AutoencoderReconciler>(loss, std::move(r));
  };

  auto [loss1, r1] = train(1);
  auto [loss4, r4] = train(4);
  EXPECT_EQ(loss1, loss4);

  // The trained parameters themselves must be bit-identical, not just the
  // reported loss: compare every weight of every layer.
  const auto p1 = r1.parameters();
  const auto p4 = r4.parameters();
  ASSERT_EQ(p1.size(), p4.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    ASSERT_EQ(p1[i]->value.size(), p4[i]->value.size()) << "param " << i;
    for (std::size_t j = 0; j < p1[i]->value.size(); ++j) {
      ASSERT_EQ(p1[i]->value[j], p4[i]->value[j])
          << "param " << i << " element " << j;
    }
  }

  // And the public behavior agrees: identical syndromes for the same key.
  BitVec key(rc.key_bits);
  for (std::size_t i = 0; i < key.size(); ++i) key.set(i, (i * 7 + 3) % 5 < 2);
  EXPECT_EQ(r1.encode_bob(key), r4.encode_bob(key));
}

}  // namespace
}  // namespace vkey::core
