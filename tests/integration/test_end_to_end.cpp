// Full-stack integration: channel simulation -> key material -> protocol
// session -> AES-protected payload exchange, exactly the workflow the
// quickstart example demonstrates.
#include <gtest/gtest.h>

#include "core/dataset.h"
#include "core/pipeline.h"
#include "protocol/attacks.h"
#include "protocol/session.h"

namespace vkey {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::PipelineConfig cfg;
    cfg.trace.scenario =
        channel::make_scenario(channel::ScenarioKind::kV2IRural, 50.0);
    cfg.trace.seed = 31337;
    cfg.predictor.hidden = 8;
    cfg.predictor_epochs = 4;
    cfg.reconciler.decoder_units = 64;
    cfg.reconciler_epochs = 20;
    cfg.reconciler_samples = 2000;
    cfg.use_prediction = false;  // keep the suite fast
    pipeline_ = new core::KeyGenPipeline(cfg);
    metrics_ = pipeline_->run(120, 250);
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }

  static core::KeyGenPipeline* pipeline_;
  static core::PipelineMetrics metrics_;
};

core::KeyGenPipeline* EndToEnd::pipeline_ = nullptr;
core::PipelineMetrics EndToEnd::metrics_;

TEST_F(EndToEnd, ChannelMaterialReachesProtocolGrade) {
  EXPECT_GT(metrics_.mean_kar_post, 0.90);
}

TEST_F(EndToEnd, SessionOverRealKeyMaterial) {
  // Pick a reconcilable block from the pipeline and run the full message
  // protocol over it.
  const core::KeyBlockResult* block = nullptr;
  for (const auto& blk : pipeline_->blocks()) {
    if (blk.success) {
      block = &blk;
      break;
    }
  }
  ASSERT_NE(block, nullptr) << "no reconcilable block in the test trace";

  protocol::SessionConfig cfg;
  cfg.session_id = 7;
  // Alice holds her raw (pre-reconciliation) key; Bob holds his.
  const BitVec ka = block->alice_corrected ^
                    (block->alice_corrected ^ block->bob_key);  // == bob_key
  protocol::AliceSession alice(cfg, pipeline_->reconciler(),
                               block->alice_corrected);
  protocol::BobSession bob(cfg, pipeline_->reconciler(), block->bob_key);
  protocol::PublicChannel ch;
  EXPECT_TRUE(run_key_agreement(ch, alice, bob));
  (void)ka;

  // And the established key protects traffic end to end.
  protocol::SecureLink alice_link(alice.final_key());
  protocol::SecureLink bob_link(bob.final_key());
  const std::vector<std::uint8_t> v2v_msg{'b', 'r', 'a', 'k', 'e', '!'};
  const auto sealed = alice_link.seal(cfg.session_id, 100, v2v_msg);
  const auto opened = bob_link.open(sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, v2v_msg);
}

TEST_F(EndToEnd, EveCannotDecryptTraffic) {
  const core::KeyBlockResult* block = nullptr;
  for (const auto& blk : pipeline_->blocks()) {
    if (blk.success) {
      block = &blk;
      break;
    }
  }
  ASSERT_NE(block, nullptr);

  protocol::SessionConfig cfg;
  protocol::AliceSession alice(cfg, pipeline_->reconciler(),
                               block->alice_corrected);
  protocol::BobSession bob(cfg, pipeline_->reconciler(), block->bob_key);
  protocol::PublicChannel ch;
  ASSERT_TRUE(run_key_agreement(ch, alice, bob));

  protocol::SecureLink alice_link(alice.final_key());
  const auto sealed = alice_link.seal(cfg.session_id, 5, {1, 2, 3});

  // Eve guesses a key from the syndrome + her own material.
  const auto syndrome = protocol::find_syndrome(ch);
  ASSERT_TRUE(syndrome.has_value());
  vkey::Rng rng(123);
  BitVec ke(64);
  for (std::size_t i = 0; i < 64; ++i) ke.set(i, rng.bernoulli(0.5));
  const BitVec eve_raw =
      protocol::eavesdrop_attack(pipeline_->reconciler(), ke, *syndrome);
  const core::PrivacyAmplifier amp(128);
  protocol::SecureLink eve_link(amp.amplify(eve_raw, cfg.session_id));
  EXPECT_FALSE(eve_link.open(sealed).has_value());
}

TEST_F(EndToEnd, AmplifiedKeysLookRandomEnoughForNist) {
  // Not the full Table II battery (the bench covers that) — a smoke check
  // that amplified material is at least balanced.
  const BitVec stream = pipeline_->amplified_key_stream();
  if (stream.size() >= 256) {
    const double ones = static_cast<double>(stream.weight()) /
                        static_cast<double>(stream.size());
    EXPECT_NEAR(ones, 0.5, 0.15);
  }
}

}  // namespace
}  // namespace vkey
