#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/metrics.h"
#include "protocol/session.h"

namespace vkey::core {
namespace {

PipelineConfig small_config(bool use_prediction = true) {
  PipelineConfig cfg;
  cfg.trace.scenario =
      channel::make_scenario(channel::ScenarioKind::kV2VUrban, 50.0);
  cfg.trace.seed = 99;
  cfg.predictor.hidden = 8;
  cfg.predictor_epochs = 4;
  cfg.reconciler.decoder_units = 64;
  cfg.reconciler_epochs = 15;
  cfg.reconciler_samples = 1200;
  cfg.use_prediction = use_prediction;
  return cfg;
}

TEST(Pipeline, EndToEndProducesMetrics) {
  KeyGenPipeline p(small_config());
  const auto m = p.run(120, 120);
  EXPECT_GT(m.blocks, 0u);
  EXPECT_GT(m.mean_kar_pre, 0.6);
  EXPECT_LE(m.mean_kar_post, 1.0);
  EXPECT_GE(m.mean_kar_post, m.mean_kar_pre - 0.1);
  EXPECT_GT(m.test_duration_s, 0.0);
  EXPECT_GE(m.kgr_bits_per_s, 0.0);
}

TEST(Pipeline, ReconciliationImprovesAgreement) {
  KeyGenPipeline p(small_config(/*use_prediction=*/false));
  const auto m = p.run(120, 200);
  EXPECT_GT(m.mean_kar_post, m.mean_kar_pre);
}

TEST(Pipeline, EveStaysNearChance) {
  KeyGenPipeline p(small_config(/*use_prediction=*/false));
  const auto m = p.run(120, 200);
  EXPECT_LT(m.mean_eve_kar, 0.65);
  EXPECT_GT(m.mean_eve_kar, 0.35);
}

TEST(Pipeline, BlocksExposedAfterRun) {
  KeyGenPipeline p(small_config(/*use_prediction=*/false));
  const auto m = p.run(120, 120);
  EXPECT_EQ(p.blocks().size(), m.blocks);
  for (const auto& blk : p.blocks()) {
    EXPECT_EQ(blk.bob_key.size(), 64u);
    EXPECT_EQ(blk.alice_corrected.size(), 64u);
  }
}

TEST(Pipeline, AmplifiedStreamOnlyFromSuccessfulBlocks) {
  KeyGenPipeline p(small_config(/*use_prediction=*/false));
  const auto m = p.run(120, 250);
  std::size_t successes = 0;
  for (const auto& blk : p.blocks()) successes += blk.success;
  if (successes > 0) {
    EXPECT_EQ(p.amplified_key_stream().size(), successes * 128u);
  }
  (void)m;
}

TEST(Pipeline, ConfigConsistencyChecked) {
  PipelineConfig bad = small_config();
  bad.reconciler.key_bits = 96;  // not a multiple of the 64-bit fragment
  EXPECT_THROW(KeyGenPipeline{bad}, vkey::Error);
  bad = small_config();
  bad.predictor.seq_len = 32;  // mismatch with dataset seq_len (64)
  EXPECT_THROW(KeyGenPipeline{bad}, vkey::Error);
}

TEST(Pipeline, AccessorsRequireRun) {
  KeyGenPipeline p(small_config());
  EXPECT_THROW(p.predictor(), vkey::Error);
  EXPECT_THROW(p.reconciler(), vkey::Error);
  EXPECT_THROW(p.amplified_key_stream(), vkey::Error);
}

TEST(Pipeline, StageTimersAndCountersPopulatedAfterRun) {
  auto& reg = metrics::Registry::global();
  reg.reset();
  KeyGenPipeline p(small_config(/*use_prediction=*/false));
  const auto m = p.run(120, 120);
  ASSERT_GT(m.blocks, 0u);

  // Every pipeline stage must have recorded at least one timing sample.
  for (const char* stage :
       {"pipeline.stage.probe_ms", "pipeline.stage.extract_ms",
        "pipeline.stage.train_reconciler_ms", "pipeline.stage.quantize_ms",
        "pipeline.stage.reconcile_ms"}) {
    EXPECT_GT(reg.histogram(stage).count(), 0u) << stage;
  }
  EXPECT_EQ(reg.counter("pipeline.runs").value(), 1u);
  EXPECT_EQ(reg.counter("pipeline.blocks.total").value(), m.blocks);
  EXPECT_GT(reg.counter("pipeline.bits.quantized").value(), 0u);

  // The amplify stage runs lazily, on the first key-stream request.
  std::size_t successes = 0;
  for (const auto& blk : p.blocks()) successes += blk.success;
  if (successes > 0) {
    (void)p.amplified_key_stream();
    EXPECT_GT(reg.histogram("pipeline.stage.amplify_ms").count(), 0u);
    EXPECT_GT(reg.counter("pipeline.bits.amplified").value(), 0u);
  }

  // Driving a session end to end bumps the session counters.
  const std::uint64_t runs_before = reg.counter("session.runs").value();
  const auto& blk = p.blocks().front();
  protocol::SessionConfig cfg;
  protocol::AliceSession alice(cfg, p.reconciler(), blk.alice_raw);
  protocol::BobSession bob(cfg, p.reconciler(), blk.bob_key);
  protocol::PublicChannel ch;
  const auto result = protocol::run_key_agreement_detailed(ch, alice, bob);
  EXPECT_EQ(reg.counter("session.runs").value(), runs_before + 1);
  EXPECT_GE(reg.counter("session.frames_delivered").value(),
            static_cast<std::uint64_t>(result.delivered));
  if (result.established) {
    EXPECT_GT(reg.counter("session.established").value(), 0u);
  }
}

TEST(Pipeline, DeterministicAcrossRuns) {
  KeyGenPipeline p1(small_config(false));
  KeyGenPipeline p2(small_config(false));
  const auto m1 = p1.run(120, 120);
  const auto m2 = p2.run(120, 120);
  EXPECT_DOUBLE_EQ(m1.mean_kar_pre, m2.mean_kar_pre);
  EXPECT_DOUBLE_EQ(m1.mean_kar_post, m2.mean_kar_post);
}

}  // namespace
}  // namespace vkey::core
