#include "cs/compressed_sensing.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace vkey::cs {
namespace {

TEST(SensingMatrix, ShapeAndScale) {
  const Matrix phi = make_sensing_matrix(20, 64, 1);
  EXPECT_EQ(phi.rows(), 20u);
  EXPECT_EQ(phi.cols(), 64u);
  const double expected = 1.0 / std::sqrt(20.0);
  for (std::size_t r = 0; r < 20; ++r) {
    for (std::size_t c = 0; c < 64; ++c) {
      EXPECT_NEAR(std::fabs(phi(r, c)), expected, 1e-12);
    }
  }
}

TEST(SensingMatrix, DeterministicPerSeed) {
  const Matrix a = make_sensing_matrix(4, 8, 7);
  const Matrix b = make_sensing_matrix(4, 8, 7);
  EXPECT_EQ(a.data(), b.data());
  const Matrix c = make_sensing_matrix(4, 8, 8);
  EXPECT_NE(a.data(), c.data());
}

TEST(Omp, RecoversExactlySparseVector) {
  vkey::Rng rng(3);
  const Matrix phi = make_sensing_matrix(24, 64, 5);
  std::vector<double> x(64, 0.0);
  x[5] = 1.0;
  x[17] = -1.0;
  x[40] = 1.0;
  const auto y = phi.mul_vec(x);
  const auto r = omp(phi, y, 6);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(r.x[i], x[i], 1e-6) << "index " << i;
  }
  EXPECT_LE(r.iterations, 6u);
  EXPECT_LT(r.residual_norm, 1e-6);
}

TEST(Omp, ZeroMeasurementGivesZero) {
  const Matrix phi = make_sensing_matrix(10, 32, 9);
  const auto r = omp(phi, std::vector<double>(10, 0.0), 5);
  for (double v : r.x) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_EQ(r.iterations, 0u);
}

TEST(Omp, IterationsBoundedBySparsity) {
  vkey::Rng rng(11);
  const Matrix phi = make_sensing_matrix(16, 48, 13);
  std::vector<double> y(16);
  for (auto& v : y) v = rng.gaussian();
  const auto r = omp(phi, y, 4);
  EXPECT_LE(r.iterations, 4u);
}

TEST(Omp, MeasurementSizeChecked) {
  const Matrix phi = make_sensing_matrix(10, 32, 1);
  EXPECT_THROW(omp(phi, std::vector<double>(5), 3), vkey::Error);
}

TEST(CsSyndrome, MatchesMatrixProduct) {
  const Matrix phi = make_sensing_matrix(8, 16, 2);
  BitVec key(16);
  key.set(0, true);
  key.set(7, true);
  const auto s = cs_syndrome(phi, key);
  const auto expect = phi.mul_vec(key.to_doubles());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_DOUBLE_EQ(s[i], expect[i]);
  }
}

TEST(CsReconcile, CorrectsSparseMismatch) {
  vkey::Rng rng(17);
  const Matrix phi = make_sensing_matrix(20, 64, 19);
  int success = 0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    BitVec kb(64);
    for (int i = 0; i < 64; ++i) kb.set(i, rng.bernoulli(0.5));
    BitVec ka = kb;
    // Flip 3 random positions (within OMP's reliable radius for 20x64).
    for (int f = 0; f < 3; ++f) {
      ka.flip(static_cast<std::size_t>(rng.uniform_int(64)));
    }
    const auto syn = cs_syndrome(phi, kb);
    success += cs_reconcile(phi, ka, syn, 8).corrected == kb;
  }
  EXPECT_GE(success, trials * 8 / 10);
}

TEST(CsReconcile, NoMismatchIsNoOp) {
  const Matrix phi = make_sensing_matrix(20, 64, 23);
  vkey::Rng rng(29);
  BitVec k(64);
  for (int i = 0; i < 64; ++i) k.set(i, rng.bernoulli(0.5));
  const auto rec = cs_reconcile(phi, k, cs_syndrome(phi, k), 8);
  EXPECT_EQ(rec.corrected, k);
  EXPECT_EQ(rec.iterations, 0u);
}

TEST(CsReconcile, DegradesGracefullyWhenTooDense) {
  // Beyond the sparsity radius the correction is imperfect but must not
  // crash and must return a key of the right size.
  vkey::Rng rng(31);
  const Matrix phi = make_sensing_matrix(20, 64, 37);
  BitVec kb(64), ka;
  for (int i = 0; i < 64; ++i) kb.set(i, rng.bernoulli(0.5));
  ka = kb;
  for (int i = 0; i < 64; ++i) {
    if (rng.bernoulli(0.4)) ka.flip(static_cast<std::size_t>(i));
  }
  const auto rec = cs_reconcile(phi, ka, cs_syndrome(phi, kb), 10);
  EXPECT_EQ(rec.corrected.size(), 64u);
}

TEST(CsReconcile, KeySizeChecked) {
  const Matrix phi = make_sensing_matrix(20, 64, 41);
  EXPECT_THROW(cs_reconcile(phi, BitVec(32), std::vector<double>(20), 5),
               vkey::Error);
}

// Property sweep: recovery probability across sparsity levels. OMP over a
// 20x64 Bernoulli matrix reliably recovers up to ~4 flips.
class OmpSparsitySweep : public ::testing::TestWithParam<int> {};

TEST_P(OmpSparsitySweep, HighRecoveryWithinRadius) {
  const int flips = GetParam();
  vkey::Rng rng(100 + static_cast<std::uint64_t>(flips));
  const Matrix phi = make_sensing_matrix(20, 64, 43);
  int ok = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    BitVec kb(64);
    for (int i = 0; i < 64; ++i) kb.set(i, rng.bernoulli(0.5));
    BitVec ka = kb;
    for (int f = 0; f < flips; ++f) {
      ka.flip(static_cast<std::size_t>(rng.uniform_int(64)));
    }
    ok += cs_reconcile(phi, ka, cs_syndrome(phi, kb), 10).corrected == kb;
  }
  const int required = flips <= 2 ? trials * 8 / 10 : trials * 5 / 10;
  EXPECT_GE(ok, required) << flips << " flips";
}

INSTANTIATE_TEST_SUITE_P(SparsityLevels, OmpSparsitySweep,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace vkey::cs
