#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vkey::crypto {
namespace {

std::string hex_of(const std::array<std::uint8_t, 32>& d) {
  return to_hex(d.data(), d.size());
}

// FIPS 180-4 / NIST CAVP reference vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_of(Sha256::digest(std::string{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_of(Sha256::digest(std::string{"abc"})),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_of(Sha256::digest(std::string{
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"})),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.update(reinterpret_cast<const std::uint8_t*>(chunk.data()),
             chunk.size());
  }
  EXPECT_EQ(hex_of(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  Sha256 h;
  for (char c : msg) {
    const auto b = static_cast<std::uint8_t>(c);
    h.update(&b, 1);
  }
  EXPECT_EQ(hex_of(h.finalize()), hex_of(Sha256::digest(msg)));
}

TEST(Sha256, PaddingBoundaries) {
  // Lengths around the 56-byte padding boundary must all be correct;
  // cross-check 55/56/57/63/64/65 byte messages against each other being
  // distinct and being stable under re-computation.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u}) {
    const std::string m(len, 'x');
    EXPECT_EQ(hex_of(Sha256::digest(m)), hex_of(Sha256::digest(m)));
    const std::string m2(len, 'y');
    EXPECT_NE(hex_of(Sha256::digest(m)), hex_of(Sha256::digest(m2)));
  }
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  h.update(std::vector<std::uint8_t>{1, 2, 3});
  (void)h.finalize();
  h.reset();
  h.update(std::vector<std::uint8_t>{});
  EXPECT_EQ(hex_of(h.finalize()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, UseAfterFinalizeThrows) {
  Sha256 h;
  (void)h.finalize();
  const std::uint8_t b = 0;
  EXPECT_THROW(h.update(&b, 1), vkey::Error);
  EXPECT_THROW(h.finalize(), vkey::Error);
}

TEST(Sha256, ToHexFormat) {
  const std::uint8_t data[] = {0x00, 0xab, 0xff};
  EXPECT_EQ(to_hex(data, 3), "00abff");
}

}  // namespace
}  // namespace vkey::crypto
