#include "crypto/secret_buffer.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace vkey::crypto {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<int> vals) {
  std::vector<std::uint8_t> v;
  for (int x : vals) v.push_back(static_cast<std::uint8_t>(x));
  return v;
}

TEST(SecureWipe, ZeroesEveryByte) {
  std::uint8_t buf[64];
  for (std::size_t i = 0; i < sizeof(buf); ++i) {
    buf[i] = static_cast<std::uint8_t>(i + 1);
  }
  secure_wipe(buf, sizeof(buf));
  for (std::size_t i = 0; i < sizeof(buf); ++i) {
    EXPECT_EQ(buf[i], 0u) << "residue at offset " << i;
  }
}

TEST(SecureWipe, LenZeroAndNullAreNoOps) {
  std::uint8_t b = 0xAB;
  secure_wipe(&b, 0);
  EXPECT_EQ(b, 0xAB);
  secure_wipe(nullptr, 0);  // must not crash
}

TEST(SecureWipe, VectorOverloadWipesAndClears) {
  auto v = bytes({1, 2, 3, 4});
  secure_wipe(v);
  EXPECT_TRUE(v.empty());
}

TEST(SecretBuffer, AdoptsVectorStorage) {
  auto src = bytes({0xDE, 0xAD, 0xBE, 0xEF});
  SecretBuffer sb(std::move(src));
  ASSERT_EQ(sb.size(), 4u);
  const auto view = sb.expose();
  EXPECT_EQ(view[0], 0xDE);
  EXPECT_EQ(view[3], 0xEF);
}

TEST(SecretBuffer, CopyOfDoesNotAliasCaller) {
  std::array<std::uint8_t, 4> digest{9, 8, 7, 6};
  auto sb = SecretBuffer::copy_of(digest);
  digest[0] = 0;  // caller wipes its own copy
  EXPECT_EQ(sb.expose()[0], 9u);
}

TEST(SecretBuffer, ZerosFactory) {
  auto sb = SecretBuffer::zeros(32);
  ASSERT_EQ(sb.size(), 32u);
  for (auto b : sb.expose()) EXPECT_EQ(b, 0u);
}

TEST(SecretBuffer, MoveWipesTheSource) {
  SecretBuffer a(bytes({1, 2, 3}));
  SecretBuffer b(std::move(a));
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): contract test
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b.expose()[2], 3u);

  SecretBuffer c;
  c = std::move(b);
  EXPECT_TRUE(b.empty());  // NOLINT(bugprone-use-after-move): contract test
  EXPECT_EQ(c.expose()[0], 1u);
}

TEST(SecretBuffer, CopyYieldsIndependentZeroizingBuffer) {
  SecretBuffer a(bytes({5, 6, 7}));
  SecretBuffer b = a;
  ASSERT_TRUE(constant_time_equal(a, b));
  b.expose_mut()[0] = 99;
  EXPECT_EQ(a.expose()[0], 5u);
  EXPECT_FALSE(constant_time_equal(a, b));
}

TEST(SecretBuffer, CopyAssignReplacesOldSecret) {
  SecretBuffer a(bytes({1, 1, 1}));
  const SecretBuffer b(bytes({2, 2}));
  a = b;
  ASSERT_EQ(a.size(), 2u);
  EXPECT_TRUE(constant_time_equal(a, b));
}

TEST(SecretBuffer, ClearReleasesEarly) {
  SecretBuffer a(bytes({1, 2, 3}));
  a.clear();
  EXPECT_TRUE(a.empty());
  EXPECT_TRUE(a.expose().empty());
}

TEST(SecretBuffer, ExposeMutSupportsInPlaceDerivation) {
  auto sb = SecretBuffer::zeros(4);
  auto w = sb.expose_mut();
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<std::uint8_t>(i);
  }
  EXPECT_EQ(sb.expose()[3], 3u);
}

// The redaction guards are compile-time properties; assert them as such so
// a refactor that un-deletes them fails this test instead of shipping.
TEST(SecretBuffer, RedactionByConstruction) {
  static_assert(!std::is_convertible_v<SecretBuffer, std::vector<std::uint8_t>>,
                "SecretBuffer must not implicitly decay to a bare vector");
  SUCCEED();
}

TEST(ConstantTimeEqualSpan, Matrix) {
  const auto a = bytes({1, 2, 3});
  const auto b = bytes({1, 2, 3});
  const auto c = bytes({1, 2, 4});
  const auto d = bytes({1, 2});
  using Span = std::span<const std::uint8_t>;
  EXPECT_TRUE(constant_time_equal(Span(a), Span(b)));
  EXPECT_FALSE(constant_time_equal(Span(a), Span(c)));
  EXPECT_FALSE(constant_time_equal(Span(a), Span(d)));
  EXPECT_TRUE(constant_time_equal(Span(), Span()));
}

TEST(ConstantTimeEqualSpan, SecretBufferOverloads) {
  const SecretBuffer a(bytes({1, 2, 3}));
  const SecretBuffer b(bytes({1, 2, 3}));
  const SecretBuffer c(bytes({9, 9, 9}));
  const auto plain = bytes({1, 2, 3});
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_TRUE(constant_time_equal(a, std::span<const std::uint8_t>(plain)));
  EXPECT_TRUE(constant_time_equal(std::span<const std::uint8_t>(plain), a));
}

}  // namespace
}  // namespace vkey::crypto
