#include "crypto/hmac.h"

#include <gtest/gtest.h>

namespace vkey::crypto {
namespace {

std::vector<std::uint8_t> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

std::string hex_of(const std::array<std::uint8_t, 32>& d) {
  return to_hex(d.data(), d.size());
}

// RFC 4231 test cases.
TEST(Hmac, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  EXPECT_EQ(hex_of(hmac_sha256(key, bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(
      hex_of(hmac_sha256(bytes("Jefe"),
                         bytes("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> msg(50, 0xdd);
  EXPECT_EQ(hex_of(hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  EXPECT_EQ(hex_of(hmac_sha256(
                key, bytes("Test Using Larger Than Block-Size Key - "
                           "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DifferentKeysDifferentTags) {
  const auto t1 = hmac_sha256(bytes("k1"), bytes("m"));
  const auto t2 = hmac_sha256(bytes("k2"), bytes("m"));
  EXPECT_NE(to_hex(t1.data(), 32), to_hex(t2.data(), 32));
}

TEST(Hmac, DifferentMessagesDifferentTags) {
  const auto t1 = hmac_sha256(bytes("k"), bytes("m1"));
  const auto t2 = hmac_sha256(bytes("k"), bytes("m2"));
  EXPECT_NE(to_hex(t1.data(), 32), to_hex(t2.data(), 32));
}

TEST(ConstantTimeEqual, Basics) {
  using V = std::vector<std::uint8_t>;
  EXPECT_TRUE(constant_time_equal(V{1, 2, 3}, V{1, 2, 3}));
  EXPECT_FALSE(constant_time_equal(V{1, 2, 3}, V{1, 2, 4}));
  EXPECT_FALSE(constant_time_equal(V{1, 2}, V{1, 2, 3}));
  EXPECT_TRUE(constant_time_equal(V{}, V{}));
}

}  // namespace
}  // namespace vkey::crypto
