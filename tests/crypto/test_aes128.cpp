#include "crypto/aes128.h"

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "crypto/sha256.h"

namespace vkey::crypto {
namespace {

// FIPS-197 Appendix B example.
TEST(Aes128, Fips197AppendixB) {
  const std::array<std::uint8_t, 16> key = {
      0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
      0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  std::uint8_t block[16] = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                            0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  const std::uint8_t expected[16] = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc,
                                     0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97,
                                     0x19, 0x6a, 0x0b, 0x32};
  Aes128 aes(key);
  aes.encrypt_block(block);
  EXPECT_EQ(std::memcmp(block, expected, 16), 0)
      << to_hex(block, 16);
}

// FIPS-197 Appendix C.1 (AES-128 known answer test).
TEST(Aes128, Fips197AppendixC1) {
  const std::array<std::uint8_t, 16> key = {0x00, 0x01, 0x02, 0x03, 0x04,
                                            0x05, 0x06, 0x07, 0x08, 0x09,
                                            0x0a, 0x0b, 0x0c, 0x0d, 0x0e,
                                            0x0f};
  std::uint8_t block[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                            0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  const std::uint8_t expected[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b,
                                     0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80,
                                     0x70, 0xb4, 0xc5, 0x5a};
  Aes128 aes(key);
  aes.encrypt_block(block);
  EXPECT_EQ(std::memcmp(block, expected, 16), 0) << to_hex(block, 16);
}

TEST(Aes128, DecryptInvertsEncrypt) {
  vkey::Rng rng(5);
  std::array<std::uint8_t, 16> key{};
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  Aes128 aes(key);
  for (int trial = 0; trial < 50; ++trial) {
    std::uint8_t block[16], orig[16];
    for (auto& b : block) b = static_cast<std::uint8_t>(rng.uniform_int(256));
    std::memcpy(orig, block, 16);
    aes.encrypt_block(block);
    EXPECT_NE(std::memcmp(block, orig, 16), 0);
    aes.decrypt_block(block);
    EXPECT_EQ(std::memcmp(block, orig, 16), 0);
  }
}

TEST(Aes128, CtrRoundTrip) {
  const std::array<std::uint8_t, 16> key = {1, 2, 3, 4, 5, 6, 7, 8,
                                            9, 10, 11, 12, 13, 14, 15, 16};
  Aes128 aes(key);
  const std::vector<std::uint8_t> plaintext = {
      'v', 'e', 'h', 'i', 'c', 'l', 'e', '-', 'k', 'e', 'y', ' ',
      'p', 'a', 'y', 'l', 'o', 'a', 'd', '!'};
  const auto ct = aes.ctr_crypt(plaintext, 0x1234);
  EXPECT_NE(ct, plaintext);
  EXPECT_EQ(aes.ctr_crypt(ct, 0x1234), plaintext);
}

TEST(Aes128, CtrDifferentNoncesDifferentStreams) {
  const std::array<std::uint8_t, 16> key{};
  Aes128 aes(key);
  const std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_NE(aes.ctr_crypt(zeros, 1), aes.ctr_crypt(zeros, 2));
}

TEST(Aes128, CtrHandlesNonBlockMultiple) {
  const std::array<std::uint8_t, 16> key{};
  Aes128 aes(key);
  const std::vector<std::uint8_t> data(17, 0xab);
  const auto ct = aes.ctr_crypt(data, 7);
  EXPECT_EQ(ct.size(), 17u);
  EXPECT_EQ(aes.ctr_crypt(ct, 7), data);
}

TEST(Aes128, CtrEmptyInput) {
  const std::array<std::uint8_t, 16> key{};
  Aes128 aes(key);
  EXPECT_TRUE(aes.ctr_crypt({}, 1).empty());
}

TEST(Aes128, DifferentKeysDifferentCiphertext) {
  std::array<std::uint8_t, 16> k1{}, k2{};
  k2[0] = 1;
  std::uint8_t b1[16] = {0}, b2[16] = {0};
  Aes128(k1).encrypt_block(b1);
  Aes128(k2).encrypt_block(b2);
  EXPECT_NE(std::memcmp(b1, b2, 16), 0);
}

}  // namespace
}  // namespace vkey::crypto
