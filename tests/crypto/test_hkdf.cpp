#include "crypto/hkdf.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "crypto/sha256.h"

namespace vkey::crypto {
namespace {

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(
        std::stoi(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

// Test-only: render a derived secret for comparison against RFC vectors.
// Library code never does this (vkey_secretflow.py flags it); tests are
// the sanctioned place to look at known test-vector keys.
std::string hex_of(const SecretBuffer& s) {
  const auto view = s.expose();
  return to_hex(view.data(), view.size());
}

// RFC 5869 Appendix A, test case 1 (SHA-256).
TEST(Hkdf, Rfc5869Case1) {
  const auto ikm = from_hex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
  const auto salt = from_hex("000102030405060708090a0b0c");
  const auto info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  const auto prk = hkdf_extract(salt, ikm);
  EXPECT_EQ(hex_of(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  const auto okm = hkdf_expand(prk, info, 42);
  EXPECT_EQ(hex_of(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

// RFC 5869 Appendix A, test case 2 (longer inputs/outputs).
TEST(Hkdf, Rfc5869Case2) {
  std::vector<std::uint8_t> ikm, salt, info;
  for (int i = 0x00; i <= 0x4f; ++i) ikm.push_back(static_cast<std::uint8_t>(i));
  for (int i = 0x60; i <= 0xaf; ++i) salt.push_back(static_cast<std::uint8_t>(i));
  for (int i = 0xb0; i <= 0xff; ++i) info.push_back(static_cast<std::uint8_t>(i));
  const auto okm = hkdf(salt, ikm, info, 82);
  EXPECT_EQ(hex_of(okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c"
            "59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71"
            "cc30c58179ec3e87c14c01d5c1f3434f1d87");
}

// RFC 5869 Appendix A, test case 3 (empty salt and info).
TEST(Hkdf, Rfc5869Case3) {
  const auto ikm = from_hex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
  const auto okm = hkdf({}, ikm, {}, 42);
  EXPECT_EQ(hex_of(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, LengthBoundsChecked) {
  const auto prk = SecretBuffer(std::vector<std::uint8_t>(32, 1));
  EXPECT_THROW(hkdf_expand(prk, {}, 0), vkey::Error);
  EXPECT_THROW(hkdf_expand(prk, {}, 255 * 32 + 1), vkey::Error);
  EXPECT_THROW(
      hkdf_expand(SecretBuffer(std::vector<std::uint8_t>(8, 1)), {}, 16),
      vkey::Error);
}

TEST(Hkdf, DistinctLabelsDistinctSubkeys) {
  const std::vector<std::uint8_t> secret(16, 0xaa);
  const auto enc = derive_subkey(secret, "vkey encryption", 16);
  const auto mac = derive_subkey(secret, "vkey mac", 32);
  EXPECT_EQ(enc.size(), 16u);
  EXPECT_EQ(mac.size(), 32u);
  EXPECT_FALSE(constant_time_equal(enc.expose(), mac.expose().subspan(0, 16)));
}

TEST(Hkdf, Deterministic) {
  const std::vector<std::uint8_t> secret(16, 0x42);
  EXPECT_TRUE(constant_time_equal(derive_subkey(secret, "x", 24),
                                  derive_subkey(secret, "x", 24)));
}

}  // namespace
}  // namespace vkey::crypto
