// Tests for the SP 800-22 tests beyond the paper's Table II subset.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "crypto/aes128.h"
#include "nist/nist.h"

namespace vkey::nist {
namespace {

BitVec random_bits(std::size_t n, std::uint64_t seed) {
  vkey::Rng rng(seed);
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

BitVec aes_stream_bits(std::size_t n) {
  const std::array<std::uint8_t, 16> key = {9, 9, 9, 9, 1, 2, 3, 4,
                                            5, 6, 7, 8, 1, 2, 3, 4};
  vkey::crypto::Aes128 aes(key);
  const std::vector<std::uint8_t> zeros((n + 7) / 8, 0);
  return BitVec::from_bytes(aes.ctr_crypt(zeros, 4242), n);
}

TEST(NistSerial, RandomPassesBothPValues) {
  const auto [p1, p2] = serial_test(random_bits(20000, 1));
  EXPECT_GT(p1, 0.01);
  EXPECT_GT(p2, 0.01);
}

TEST(NistSerial, PeriodicPatternFails) {
  BitVec v(20000);
  const char* pattern = "110";
  for (std::size_t i = 0; i < v.size(); ++i) v.set(i, pattern[i % 3] == '1');
  const auto [p1, p2] = serial_test(v);
  EXPECT_LT(p1, 0.01);
}

TEST(NistSerial, ParametersValidated) {
  EXPECT_THROW(serial_test(BitVec(64)), vkey::Error);
  EXPECT_THROW(serial_test(random_bits(200, 2), 10), vkey::Error);
}

TEST(NistOverlappingTemplate, RandomPasses) {
  EXPECT_GT(overlapping_template_test(aes_stream_bits(110000)), 0.01);
}

TEST(NistOverlappingTemplate, AllOnesFails) {
  BitVec v(20000);
  for (std::size_t i = 0; i < v.size(); ++i) v.set(i, true);
  EXPECT_LT(overlapping_template_test(v), 0.01);
}

TEST(NistOverlappingTemplate, NeedsWholeBlock) {
  EXPECT_THROW(overlapping_template_test(BitVec(500)), vkey::Error);
}

TEST(NistUniversal, CryptographicStreamPasses) {
  EXPECT_GT(universal_test(aes_stream_bits(420000)), 0.01);
}

TEST(NistUniversal, HighlyCompressibleFails) {
  BitVec v(420000);
  for (std::size_t i = 0; i < v.size(); ++i) v.set(i, (i / 6) % 2 == 0);
  EXPECT_LT(universal_test(v), 0.01);
}

TEST(NistUniversal, ShortInputRejected) {
  EXPECT_THROW(universal_test(BitVec(10000)), vkey::Error);
}

TEST(NistRandomExcursions, RandomWalkPasses) {
  const auto ps = random_excursions_test(aes_stream_bits(600000));
  ASSERT_EQ(ps.size(), 8u);
  int pass = 0;
  for (double p : ps) pass += p >= 0.01;
  EXPECT_GE(pass, 7);  // allow one borderline state
}

TEST(NistRandomExcursions, NeedsEnoughCycles) {
  // A heavily biased walk rarely returns to zero.
  BitVec v(10000);
  for (std::size_t i = 0; i < v.size(); ++i) v.set(i, i % 10 != 0);
  EXPECT_THROW(random_excursions_test(v), vkey::Error);
}

TEST(NistRandomExcursionsVariant, RandomWalkPasses) {
  const auto ps = random_excursions_variant_test(aes_stream_bits(600000));
  ASSERT_EQ(ps.size(), 18u);
  int pass = 0;
  for (double p : ps) pass += p >= 0.01;
  EXPECT_GE(pass, 16);
}

TEST(NistExtended, AmplifiedStyleStreamPassesEverything) {
  // A concatenation of SHA-derived blocks (the shape of Vehicle-Key's final
  // key stream) passes the extended battery too.
  const BitVec stream = aes_stream_bits(600000);
  EXPECT_GT(serial_test(stream).first, 0.01);
  EXPECT_GT(overlapping_template_test(stream), 0.01);
  EXPECT_GT(universal_test(stream), 0.01);
}

}  // namespace
}  // namespace vkey::nist
