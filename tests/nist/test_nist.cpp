#include "nist/nist.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "common/special.h"
#include "crypto/aes128.h"

namespace vkey::nist {
namespace {

BitVec random_bits(std::size_t n, std::uint64_t seed) {
  vkey::Rng rng(seed);
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

BitVec alternating(std::size_t n) {
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, i % 2 == 0);
  return v;
}

// --- closed-form checks on constructed sequences ---

TEST(Nist, FrequencyClosedForm) {
  // 56 ones and 44 zeros in 100 bits: S = 12, s_obs = 1.2,
  // p = erfc(1.2 / sqrt(2)).
  BitVec v(100);
  for (std::size_t i = 0; i < 56; ++i) v.set(i, true);
  EXPECT_NEAR(frequency_test(v),
              vkey::special::erfc(1.2 / std::sqrt(2.0)), 1e-12);
}

TEST(Nist, FrequencySmallExampleFromSpec) {
  // SP 800-22 2.1.8 toy example: 1011010101 -> S = 2, p = 0.527089.
  // (Run on a repeated version to satisfy the n >= 100 requirement while
  // keeping the same ones/zeros ratio: 10x repetition scales S to 20 and
  // sqrt(n) to 10, giving s_obs = 2.0 exactly like... it does not — so we
  // verify the formula directly at n = 100 with S = 20.)
  BitVec v(100);
  for (std::size_t i = 0; i < 60; ++i) v.set(i, true);  // S = 20
  EXPECT_NEAR(frequency_test(v),
              vkey::special::erfc(2.0 / std::sqrt(2.0)), 1e-12);
}

TEST(Nist, RunsClosedForm) {
  // A sequence with exactly balanced bits (pi = 1/2) and a known number of
  // runs: 50 "10" pairs -> V = 100 runs, expected 2*n*pi*(1-pi) = 50.
  // p = erfc(|100 - 50| / (2 * sqrt(200) * 0.25)).
  const BitVec v = alternating(100);
  const double expected =
      vkey::special::erfc(50.0 / (2.0 * std::sqrt(200.0) * 0.25));
  EXPECT_NEAR(runs_test(v), expected, 1e-12);
}

TEST(Nist, CumulativeSumsMaximalDriftIsRejected) {
  // All ones: the cumulative sum walks straight to n; p must be ~0.
  BitVec v(200);
  for (std::size_t i = 0; i < v.size(); ++i) v.set(i, true);
  EXPECT_LT(cumulative_sums_test(v), 1e-6);
}

// --- behavioural properties ---

TEST(Nist, AllOnesFailsFrequency) {
  BitVec v(1000);
  for (std::size_t i = 0; i < 1000; ++i) v.set(i, true);
  EXPECT_LT(frequency_test(v), 0.01);
}

TEST(Nist, RandomPassesFrequency) {
  EXPECT_GT(frequency_test(random_bits(10000, 1)), 0.01);
}

TEST(Nist, AlternatingPassesFrequencyButFailsRuns) {
  const BitVec v = alternating(1000);
  EXPECT_GT(frequency_test(v), 0.01);  // perfectly balanced
  EXPECT_LT(runs_test(v), 0.01);       // way too many runs
}

TEST(Nist, BlockFrequencyCatchesClusteredBias) {
  BitVec v(2000);
  for (std::size_t i = 0; i < 1000; ++i) v.set(i, true);  // half 1s, half 0s
  EXPECT_LT(block_frequency_test(v, 100), 0.01);
  EXPECT_GT(block_frequency_test(random_bits(2000, 2), 100), 0.01);
}

TEST(Nist, LongestRunDetectsStructure) {
  // Long runs of ones (blocks of 64 ones / 64 zeros) must fail.
  BitVec v(12800);
  for (std::size_t i = 0; i < v.size(); ++i) v.set(i, (i / 64) % 2 == 0);
  EXPECT_LT(longest_run_test(v), 0.01);
  EXPECT_GT(longest_run_test(random_bits(12800, 3)), 0.01);
}

TEST(Nist, DftDetectsPeriodicity) {
  const BitVec v = alternating(4096);
  EXPECT_LT(dft_test(v), 0.01);
  EXPECT_GT(dft_test(random_bits(4096, 4)), 0.01);
}

TEST(Nist, CumulativeSumsDetectsDrift) {
  // Biased sequence drifts.
  vkey::Rng rng(5);
  BitVec v(5000);
  for (std::size_t i = 0; i < v.size(); ++i) v.set(i, rng.bernoulli(0.55));
  EXPECT_LT(cumulative_sums_test(v), 0.01);
  EXPECT_GT(cumulative_sums_test(random_bits(5000, 6)), 0.01);
  EXPECT_GT(cumulative_sums_test(random_bits(5000, 6), false), 0.01);
}

TEST(Nist, ApproximateEntropyDetectsRepetition) {
  // Period-4 pattern has low entropy.
  BitVec v(4000);
  const char* pattern = "1101";
  for (std::size_t i = 0; i < v.size(); ++i) v.set(i, pattern[i % 4] == '1');
  EXPECT_LT(approximate_entropy_test(v), 0.01);
  EXPECT_GT(approximate_entropy_test(random_bits(4000, 7)), 0.01);
}

TEST(Nist, NonOverlappingTemplateDetectsPlantedPattern) {
  // Plant the template 000000001 much more often than chance.
  vkey::Rng rng(8);
  BitVec v(8000);
  for (std::size_t i = 0; i < v.size(); ++i) v.set(i, rng.bernoulli(0.5));
  for (std::size_t start = 0; start + 9 < v.size(); start += 40) {
    for (int j = 0; j < 8; ++j) v.set(start + static_cast<std::size_t>(j), false);
    v.set(start + 8, true);
  }
  EXPECT_LT(non_overlapping_template_test(v), 0.01);
  EXPECT_GT(non_overlapping_template_test(random_bits(8000, 9)), 0.01);
}

TEST(Nist, BerlekampMasseyKnownComplexities) {
  // Linear complexity of 1101011110001 (SP 800-22 example region): the
  // all-zero sequence has L = 0; a single trailing 1 has L = n.
  EXPECT_EQ(berlekamp_massey({0, 0, 0, 0}), 0u);
  EXPECT_EQ(berlekamp_massey({0, 0, 0, 1}), 4u);
  // An m-sequence from x^4 + x + 1 (period 15) has complexity 4.
  std::vector<std::uint8_t> lfsr;
  std::uint8_t state[4] = {1, 0, 0, 0};
  for (int i = 0; i < 30; ++i) {
    lfsr.push_back(state[3]);
    const std::uint8_t fb = static_cast<std::uint8_t>(state[3] ^ state[0]);
    state[3] = state[2];
    state[2] = state[1];
    state[1] = state[0];
    state[0] = fb;
  }
  EXPECT_EQ(berlekamp_massey(lfsr), 4u);
}

TEST(Nist, LinearComplexityPassesRandomFailsLfsr) {
  EXPECT_GT(linear_complexity_test(random_bits(5000, 10)), 0.01);
  // A short-LFSR stream has tiny complexity in every block.
  BitVec v(5000);
  std::uint8_t s[4] = {1, 0, 0, 0};
  for (std::size_t i = 0; i < v.size(); ++i) {
    v.set(i, s[3] != 0);
    const std::uint8_t fb = static_cast<std::uint8_t>(s[3] ^ s[0]);
    s[3] = s[2]; s[2] = s[1]; s[1] = s[0]; s[0] = fb;
  }
  EXPECT_LT(linear_complexity_test(v), 0.01);
}

TEST(Nist, SuiteRunsAllTests) {
  const auto results = run_suite(random_bits(20000, 11));
  EXPECT_EQ(results.size(), 9u);
  int passed = 0;
  for (const auto& r : results) {
    EXPECT_TRUE(r.p_value.has_value()) << r.name;
    passed += r.pass();
  }
  EXPECT_GE(passed, 8);  // a true random stream passes essentially all
}

TEST(Nist, SuiteSkipsTestsOnShortInput) {
  const auto results = run_suite(random_bits(150, 12));
  bool any_skipped = false;
  for (const auto& r : results) {
    if (!r.p_value.has_value()) any_skipped = true;
  }
  EXPECT_TRUE(any_skipped);  // linear complexity needs >= 500 bits
}

TEST(Nist, InputLengthValidation) {
  EXPECT_THROW(frequency_test(BitVec(10)), vkey::Error);
  EXPECT_THROW(dft_test(BitVec(64)), vkey::Error);
  EXPECT_THROW(longest_run_test(BitVec(100)), vkey::Error);
}

// Distributional property: p-values of a healthy generator should span the
// unit interval (not cluster at 0) across independent streams.
class NistPValueSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NistPValueSweep, RandomStreamsPass) {
  const BitVec v = random_bits(8000, GetParam());
  EXPECT_GT(frequency_test(v), 0.001);
  EXPECT_GT(runs_test(v), 0.001);
  EXPECT_GT(approximate_entropy_test(v), 0.001);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NistPValueSweep,
                         ::testing::Values(100, 200, 300, 400, 500));

// Cross-validation against a cryptographic generator: an AES-128-CTR
// keystream must pass the whole battery (if it does not, the tests — not
// the cipher — are wrong).
TEST(Nist, AesCtrKeystreamPassesBattery) {
  const std::array<std::uint8_t, 16> key = {1, 2,  3,  4,  5,  6,  7, 8,
                                            9, 10, 11, 12, 13, 14, 15, 16};
  vkey::crypto::Aes128 aes(key);
  const std::vector<std::uint8_t> zeros(4096, 0);
  const auto stream_bytes = aes.ctr_crypt(zeros, 99);
  const BitVec bits = BitVec::from_bytes(stream_bytes, 8 * stream_bytes.size());
  int passed = 0, run_count = 0;
  for (const auto& r : run_suite(bits)) {
    if (!r.p_value.has_value()) continue;
    ++run_count;
    passed += r.pass();
  }
  EXPECT_EQ(passed, run_count);
}

}  // namespace
}  // namespace vkey::nist
