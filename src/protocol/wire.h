// Versioned byte-level wire framing for the Vehicle-Key protocol.
//
// Everything above this layer trades in `Message` structs; everything the
// radio actually carries is a packed, versioned binary frame:
//
//   offset size field
//   0      2    magic        0x564B ("VK"), big-endian
//   2      1    version      kWireVersion; anything else is rejected
//   3      2    payload_len  big-endian u16, <= kMaxPayloadBytes
//   5      1    mac_len      u8, <= kMaxMacBytes
//   6      1    type         MessageType, 1..kMaxMessageType
//   7      8    session_id   big-endian u64
//   15     8    nonce        big-endian u64
//   23     n    payload      payload_len bytes
//   23+n   m    mac          mac_len bytes
//   23+n+m 4    crc32        IEEE CRC-32 over bytes [0, 23+n+m)
//
// All multi-byte integers are big-endian (network order). The CRC covers
// the whole frame including the header, so a flipped version or length
// byte is caught exactly like flipped payload — corruption cannot silently
// downgrade a frame. The MAC carried *inside* the frame is the protocol
// layer's cryptographic integrity (session.h / key_schedule.h); the CRC is
// the radio-grade integrity that lets the link discard line noise cheaply.
//
// Decoding is defensive and zero-copy: a bounded FrameReader walks the
// buffer, every length field is validated against both policy bounds and
// the actual buffer before anything is copied, and every rejection is a
// typed WireError. decode_frame() also counts each rejection in the metrics
// registry ("wire.reject.<reason>"), so a bench or vkey_sim --metrics can
// report exactly why frames died on the wire. Version negotiation is
// deliberately absent: v1 speaks v1 and rejects everything else
// (kBadVersion), which is what makes downgrade attacks a parse error
// instead of a protocol state.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "protocol/message.h"

namespace vkey::protocol::wire {

inline constexpr std::uint16_t kMagic = 0x564B;  // "VK"
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderBytes = 23;
inline constexpr std::size_t kCrcBytes = 4;
/// Smallest structurally valid frame: full header + CRC, empty payload/MAC.
inline constexpr std::size_t kMinFrameBytes = kHeaderBytes + kCrcBytes;

/// Why a frame was rejected. Ordering mirrors the validation pipeline:
/// structural checks first (truncation, magic, version, lengths), then the
/// CRC, then semantic checks (type) — so a frame is diagnosed by the
/// *first* gate it fails, deterministically.
enum class WireError : std::uint8_t {
  kNone,
  kTruncated,        ///< shorter than the header or than the lengths claim
  kBadMagic,         ///< first two bytes are not 0x564B
  kBadVersion,       ///< unknown or downgraded protocol version
  kOversizedPayload, ///< payload_len exceeds kMaxPayloadBytes
  kOversizedMac,     ///< mac_len exceeds kMaxMacBytes
  kTrailingBytes,    ///< buffer longer than header + lengths + CRC
  kBadCrc,           ///< CRC32 mismatch (line noise)
  kBadType,          ///< CRC-valid frame with an unknown MessageType
};

/// Short name for logs, metrics suffixes and the flight recorder
/// ("truncated", "magic", "version", "payload-len", "mac-len", "trailing",
/// "crc", "type").
std::string to_string(WireError e);

/// IEEE 802.3 CRC-32 (reflected, poly 0xEDB88320), the same polynomial the
/// LoRa PHY uses for its payload CRC.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// Bounded big-endian reader over a borrowed buffer. Every read checks the
/// remaining length and fails by returning false / nullopt — the reader
/// never advances past the end and never touches bytes it was not given.
/// This is the only sanctioned way to parse wire bytes (vkey_lint's
/// bounded-reader rule forbids raw pointer parsing outside this file).
class FrameReader {
 public:
  explicit FrameReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  bool read_u8(std::uint8_t& v);
  bool read_u16(std::uint16_t& v);
  bool read_u32(std::uint32_t& v);
  bool read_u64(std::uint64_t& v);
  /// Borrow the next `n` bytes without copying; nullopt when fewer remain.
  std::optional<std::span<const std::uint8_t>> read_bytes(std::size_t n);

  std::size_t consumed() const noexcept { return off_; }
  std::size_t remaining() const noexcept { return bytes_.size() - off_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t off_ = 0;
};

/// Big-endian frame builder; finish() stamps the CRC over everything
/// appended so far and returns the completed frame.
class FrameWriter {
 public:
  void put_u8(std::uint8_t v);
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_bytes(std::span<const std::uint8_t> bytes);

  /// Append crc32(everything so far) and hand the buffer out.
  std::vector<std::uint8_t> finish() &&;

 private:
  std::vector<std::uint8_t> out_;
};

/// Exact on-air size of `msg` framed: kMinFrameBytes + payload + mac.
/// (Computed without encoding; used for airtime math on the hot path.)
std::size_t frame_size(const Message& msg);

/// Pack a Message into a v1 frame. Throws vkey::Error when the message
/// violates the wire bounds (oversized payload or MAC) — an honest sender
/// never does.
std::vector<std::uint8_t> encode_frame(const Message& msg);

/// Parse a frame. On success returns the Message; on failure returns
/// nullopt and stores the typed reason in *error (when non-null) and bumps
/// the matching "wire.reject.<reason>" counter. Accepted frames bump
/// "wire.decoded"; re-encoding an accepted frame reproduces the input
/// byte-for-byte.
std::optional<Message> decode_frame(std::span<const std::uint8_t> bytes,
                                    WireError* error = nullptr);

/// Eagerly register every wire.* instrument so metric snapshots carry the
/// full reject taxonomy (at zero) even for runs that never reject a frame —
/// snapshot *structure* must not depend on what faults happened to fire.
void register_wire_metrics();

}  // namespace vkey::protocol::wire
