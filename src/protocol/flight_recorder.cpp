#include "protocol/flight_recorder.h"

#include <cstdio>
#include <utility>

namespace vkey::protocol {

std::string to_string(FlightEventKind k) {
  switch (k) {
    case FlightEventKind::kAttemptStart: return "attempt-start";
    case FlightEventKind::kAttemptEnd: return "attempt-end";
    case FlightEventKind::kFrameTx: return "frame-tx";
    case FlightEventKind::kFrameRx: return "frame-rx";
    case FlightEventKind::kDrop: return "drop";
    case FlightEventKind::kCorrupt: return "corrupt";
    case FlightEventKind::kCrcLost: return "crc-lost";
    case FlightEventKind::kWireReject: return "wire-reject";
    case FlightEventKind::kReorder: return "reorder";
    case FlightEventKind::kDuplicate: return "duplicate";
    case FlightEventKind::kRetransmit: return "retransmit";
    case FlightEventKind::kBackoff: return "backoff";
    case FlightEventKind::kAckTx: return "ack-tx";
    case FlightEventKind::kAckRx: return "ack-rx";
    case FlightEventKind::kStaleAck: return "stale-ack";
    case FlightEventKind::kGaveUp: return "gave-up";
    case FlightEventKind::kReject: return "reject";
    case FlightEventKind::kStateChange: return "state-change";
    case FlightEventKind::kInjected: return "injected";
  }
  return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity, trace::NowFn now)
    : now_(std::move(now)), capacity_(capacity) {}

void FlightRecorder::record(FlightEventKind kind, std::string actor,
                            std::string detail, std::uint64_t session_id,
                            std::uint64_t nonce) {
  FlightEvent ev;
  ev.seq = next_seq_++;
  ev.t_ms = now_ ? now_() : static_cast<double>(ev.seq);
  ev.kind = kind;
  ev.actor = std::move(actor);
  ev.detail = std::move(detail);
  ev.session_id = session_id;
  ev.nonce = nonce;

  trace::TraceLog& log = trace::TraceLog::global();
  if (log.enabled()) {
    std::vector<trace::Attr> attrs;
    attrs.emplace_back("actor", ev.actor);
    if (!ev.detail.empty()) attrs.emplace_back("detail", ev.detail);
    if (ev.session_id != 0) attrs.emplace_back("session", ev.session_id);
    attrs.emplace_back("nonce", ev.nonce);
    log.instant("flight." + to_string(kind), ev.t_ms, trace::Domain::kVirtual,
                std::move(attrs));
  }

  if (capacity_ == 0) {
    ++dropped_;
    return;
  }
  if (count_ < capacity_) {
    ring_.push_back(std::move(ev));
    ++count_;
  } else {
    ring_[head_] = std::move(ev);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::vector<FlightEvent> out;
  out.reserve(count_);
  for (std::size_t k = 0; k < count_; ++k) {
    out.push_back(ring_[(head_ + k) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::clear() {
  ring_.clear();
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
  next_seq_ = 0;
}

std::string FlightRecorder::dump() const {
  std::string out = "flight recorder: " + std::to_string(count_) +
                    " event(s), " + std::to_string(dropped_) + " dropped\n";
  char line[64];
  for (std::size_t k = 0; k < count_; ++k) {
    const FlightEvent& ev = ring_[(head_ + k) % ring_.size()];
    // Fixed-point stamp: virtual times are exact doubles from the SimClock,
    // so this formatting is deterministic across hosts.
    std::snprintf(line, sizeof(line), "  [%12.3f ms] #%llu ", ev.t_ms,
                  static_cast<unsigned long long>(ev.seq));
    out += line;
    out += to_string(ev.kind);
    out += ' ';
    out += ev.actor;
    if (!ev.detail.empty()) {
      out += ' ';
      out += ev.detail;
    }
    if (ev.session_id != 0) {
      out += " session=" + std::to_string(ev.session_id);
    }
    out += " nonce=" + std::to_string(ev.nonce);
    out += '\n';
  }
  return out;
}

json::Value FlightRecorder::to_json() const {
  json::Value root = json::Value::object();
  json::Value arr = json::Value::array();
  for (std::size_t k = 0; k < count_; ++k) {
    const FlightEvent& ev = ring_[(head_ + k) % ring_.size()];
    json::Value e = json::Value::object();
    e.set("t_ms", json::Value(ev.t_ms));
    e.set("seq", json::Value(ev.seq));
    e.set("kind", json::Value(to_string(ev.kind)));
    e.set("actor", json::Value(ev.actor));
    if (!ev.detail.empty()) e.set("detail", json::Value(ev.detail));
    e.set("session", json::Value(ev.session_id));
    e.set("nonce", json::Value(ev.nonce));
    arr.push_back(std::move(e));
  }
  root.set("events", std::move(arr));
  root.set("dropped", json::Value(dropped_));
  root.set("total", json::Value(next_seq_));
  return root;
}

}  // namespace vkey::protocol
