#include "protocol/key_schedule.h"

#include <utility>

#include "common/error.h"
#include "crypto/aes128.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "protocol/unreliable_channel.h"

namespace vkey::protocol {

namespace {

void append_be32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void append_be64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  append_be32(out, static_cast<std::uint32_t>(v >> 32));
  append_be32(out, static_cast<std::uint32_t>(v));
}

std::vector<std::uint8_t> label_bytes(const char* label) {
  const std::string s(label);
  return {s.begin(), s.end()};
}

// Extraction salt: protocol string || session || epoch. Putting the epoch in
// the salt (not just the expand labels) separates epochs at the extract
// step, so even identical input secrets yield unrelated PRKs per epoch.
std::vector<std::uint8_t> epoch_salt(std::uint64_t session_id,
                                     std::uint32_t epoch) {
  std::vector<std::uint8_t> salt = label_bytes("vkey/wire/v1");
  append_be64(salt, session_id);
  append_be32(salt, epoch);
  return salt;
}

crypto::SecretBuffer expand_label(const crypto::SecretBuffer& prk,
                                  const std::string& label,
                                  std::size_t length) {
  return crypto::hkdf_expand(
      prk, std::vector<std::uint8_t>(label.begin(), label.end()), length);
}

std::uint32_t read_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

std::uint64_t read_be64(const std::uint8_t* p) {
  return (static_cast<std::uint64_t>(read_be32(p)) << 32) | read_be32(p + 4);
}

DirectionKeys derive_direction(const crypto::SecretBuffer& prk,
                               const std::string& dir) {
  DirectionKeys keys;
  keys.enc = expand_label(prk, "vkey v1 " + dir + " enc", 16);
  keys.mac = expand_label(prk, "vkey v1 " + dir + " mac", 32);
  // The nonce base leaves the secret domain by design: it is XORed into
  // the CTR counter block, never exposed on the wire, and 8 bytes of OKM
  // are not key-equivalent for either direction key.
  const auto nonce = expand_label(prk, "vkey v1 " + dir + " nonce", 8);
  keys.nonce_base = read_be64(nonce.expose().data());
  return keys;
}

/// Tag = HMAC(confirm_key, mac_input(frame) || role byte). mac_input covers
/// type|session|nonce|payload, so the tag binds the whole confirm frame; the
/// role byte rules out reflection even if the types were ever unified. The
/// tag itself is public (it rides the frame); only the key is secret.
std::vector<std::uint8_t> confirm_tag(const EpochKeys& keys,
                                      const Message& msg,
                                      KeySchedule::Role role) {
  std::vector<std::uint8_t> input = mac_input(msg);
  input.push_back(static_cast<std::uint8_t>(role));
  const auto tag = crypto::hmac_sha256(keys.confirm, input);
  return {tag.begin(), tag.end()};
}

}  // namespace

EpochKeys derive_epoch_keys(std::span<const std::uint8_t> secret,
                            std::uint64_t session_id, std::uint32_t epoch) {
  const auto prk =
      crypto::hkdf_extract(epoch_salt(session_id, epoch), secret);
  EpochKeys keys;
  keys.epoch = epoch;
  keys.a2b = derive_direction(prk, "a2b");
  keys.b2a = derive_direction(prk, "b2a");
  keys.confirm = expand_label(prk, "vkey v1 confirm", 32);
  return keys;
}

crypto::SecretBuffer ratchet_secret(std::span<const std::uint8_t> secret,
                                    std::uint64_t session_id,
                                    std::uint32_t next_epoch) {
  VKEY_REQUIRE(next_epoch >= 1, "epoch 0 has no predecessor to ratchet from");
  // Epoch e's PRK (salt carries e = next_epoch - 1) produces epoch e+1's
  // secret, matching the label schedule in the header diagram.
  const auto prk = crypto::hkdf_extract(
      epoch_salt(session_id, next_epoch - 1), secret);
  return expand_label(prk, "vkey v1 ratchet", 32);
}

KeySchedule::KeySchedule(const BitVec& amplified_secret,
                         std::uint64_t session_id, Role role)
    : KeySchedule(amplified_secret, session_id, role, Policy()) {}

KeySchedule::KeySchedule(const BitVec& amplified_secret,
                         std::uint64_t session_id, Role role, Policy policy)
    : session_id_(session_id),
      role_(role),
      policy_(policy),
      secret_(crypto::SecretBuffer(amplified_secret.to_bytes())) {
  VKEY_REQUIRE(!secret_.empty(), "amplified secret must be non-empty");
  VKEY_REQUIRE(policy_.rekey_interval_ms > 0.0 && policy_.grace_ms >= 0.0,
               "rekey interval must be positive, grace non-negative");
  current_ = derive_epoch_keys(secret_, session_id_, 0);
}

bool KeySchedule::rekey_due(double now_ms) const noexcept {
  return now_ms - last_rekey_ms_ >= policy_.rekey_interval_ms;
}

void KeySchedule::rekey(double now_ms) {
  previous_ = current_;
  previous_expires_ms_ = now_ms + policy_.grace_ms;
  const std::uint32_t next = current_.epoch + 1;
  secret_ = ratchet_secret(secret_, session_id_, next);
  current_ = derive_epoch_keys(secret_, session_id_, next);
  last_rekey_ms_ = now_ms;
  ++stats_.rekeys;
}

Message KeySchedule::make_confirm(std::uint64_t nonce) const {
  Message msg;
  msg.type = role_ == Role::kInitiator ? MessageType::kKeyConfirm
                                       : MessageType::kKeyConfirmAck;
  msg.session_id = session_id_;
  msg.nonce = nonce;
  append_be32(msg.payload, current_.epoch);
  msg.mac = confirm_tag(current_, msg, role_);
  return msg;
}

bool KeySchedule::verify_confirm(const Message& msg) const {
  const Role peer =
      role_ == Role::kInitiator ? Role::kResponder : Role::kInitiator;
  const MessageType expected_type = peer == Role::kInitiator
                                        ? MessageType::kKeyConfirm
                                        : MessageType::kKeyConfirmAck;
  if (msg.type != expected_type || msg.session_id != session_id_) return false;
  if (msg.payload.size() != 4 ||
      read_be32(msg.payload.data()) != current_.epoch) {
    return false;
  }
  return crypto::constant_time_equal(msg.mac, confirm_tag(current_, msg, peer));
}

Message KeySchedule::seal(std::uint64_t nonce,
                          const std::vector<std::uint8_t>& plain) {
  const DirectionKeys& tx = send_keys(current_);
  Message msg;
  msg.type = MessageType::kData;
  msg.session_id = session_id_;
  msg.nonce = nonce;
  append_be32(msg.payload, current_.epoch);
  const auto cipher =
      crypto::Aes128(tx.enc).ctr_crypt(plain, tx.nonce_base ^ nonce);
  msg.payload.insert(msg.payload.end(), cipher.begin(), cipher.end());
  const auto tag = crypto::hmac_sha256(tx.mac, mac_input(msg));
  msg.mac.assign(tag.begin(), tag.end());
  ++stats_.sealed;
  return msg;
}

std::optional<std::vector<std::uint8_t>> KeySchedule::open(const Message& msg,
                                                           double now_ms) {
  if (msg.type != MessageType::kData || msg.session_id != session_id_ ||
      msg.payload.size() < 4) {
    ++stats_.malformed;
    return std::nullopt;
  }
  const std::uint32_t epoch = read_be32(msg.payload.data());

  const EpochKeys* keys = nullptr;
  bool grace = false;
  if (epoch == current_.epoch) {
    keys = &current_;
  } else if (previous_.has_value() && epoch == previous_->epoch &&
             now_ms <= previous_expires_ms_) {
    keys = &*previous_;
    grace = true;
  } else if (epoch == current_.epoch + 1) {
    // The peer rekeyed first. Derive the candidate epoch and require the
    // frame to authenticate under it *before* adopting anything — a forged
    // epoch number alone must not move the schedule.
    auto next_secret = ratchet_secret(secret_, session_id_, epoch);
    EpochKeys candidate = derive_epoch_keys(next_secret, session_id_, epoch);
    const auto tag =
        crypto::hmac_sha256(recv_keys(candidate).mac, mac_input(msg));
    if (!crypto::constant_time_equal(msg.mac, tag)) {
      ++stats_.mac_rejects;
      return std::nullopt;
    }
    previous_ = std::move(current_);
    previous_expires_ms_ = now_ms + policy_.grace_ms;
    secret_ = std::move(next_secret);
    current_ = std::move(candidate);
    last_rekey_ms_ = now_ms;
    ++stats_.rekeys;
    ++stats_.fast_forwards;
    keys = &current_;
  } else {
    ++stats_.epoch_rejects;
    return std::nullopt;
  }

  // The fast-forward path verified once already; verifying again here keeps
  // a single authenticate-then-decrypt sequence for every route.
  const DirectionKeys& rx = recv_keys(*keys);
  const auto tag = crypto::hmac_sha256(rx.mac, mac_input(msg));
  if (!crypto::constant_time_equal(msg.mac, tag)) {
    ++stats_.mac_rejects;
    return std::nullopt;
  }

  std::vector<std::uint8_t> cipher(msg.payload.begin() + 4,
                                   msg.payload.end());
  auto plain = crypto::Aes128(rx.enc).ctr_crypt(cipher, rx.nonce_base ^
                                                            msg.nonce);
  ++stats_.opened;
  if (grace) ++stats_.grace_opens;
  return plain;
}

RekeyTimer::RekeyTimer(SimClock& clock, KeySchedule& schedule,
                       std::function<void(std::uint32_t)> on_rekey)
    : clock_(clock), schedule_(schedule), on_rekey_(std::move(on_rekey)) {}

RekeyTimer::~RekeyTimer() { stop(); }

void RekeyTimer::start() {
  if (running_) return;
  running_ = true;
  arm(schedule_.policy().rekey_interval_ms);
}

void RekeyTimer::stop() {
  running_ = false;
  clock_.cancel(pending_);
}

void RekeyTimer::arm(double delay_ms) {
  pending_ = clock_.schedule(delay_ms, [this] {
    if (!running_) return;
    ++fired_;
    const double now = clock_.now_ms();
    if (schedule_.rekey_due(now)) {
      schedule_.rekey(now);
      if (on_rekey_) on_rekey_(schedule_.epoch());
      arm(schedule_.policy().rekey_interval_ms);
    } else {
      // The peer fast-forwarded us since the last firing; re-arm for the
      // remainder of the current epoch's interval instead of rekeying
      // early (which would race the peer one epoch ahead).
      arm(schedule_.last_rekey_ms() + schedule_.policy().rekey_interval_ms -
          now);
    }
  });
}

ConfirmReport run_key_confirmation(SimClock& clock, UnreliableChannel& link,
                                   KeySchedule& initiator,
                                   KeySchedule& responder,
                                   std::size_t max_transmissions,
                                   std::uint64_t nonce_base) {
  using Endpoint = UnreliableChannel::Endpoint;
  VKEY_REQUIRE(max_transmissions >= 1, "need at least one transmission");

  ConfirmReport report;
  const double t0 = clock.now_ms();
  double done_at = t0;
  bool done = false;
  std::uint64_t ack_nonce = nonce_base + 500'000;

  // The responder is stateless: every authentic confirm earns a fresh ack,
  // so a lost ack heals on the initiator's next retransmission.
  link.set_handler(Endpoint::kBob, [&](const Message& msg) {
    if (msg.type == MessageType::kKeyConfirm &&
        responder.verify_confirm(msg)) {
      link.send(Endpoint::kBob, responder.make_confirm(ack_nonce++));
    }
  });
  link.set_handler(Endpoint::kAlice, [&](const Message& msg) {
    if (!done && msg.type == MessageType::kKeyConfirmAck &&
        initiator.verify_confirm(msg)) {
      done = true;
      done_at = clock.now_ms();
    }
  });

  // Retransmit on a flat timeout of ~2 RTT plus slack for reordering and
  // duplicate echoes. All virtual time, so the choice only affects how much
  // simulated air the retries consume.
  const Message probe = initiator.make_confirm(nonce_base);
  const double timeout_ms =
      4.0 * link.nominal_latency_ms(probe) +
      link.faults().reorder_window_ms + 100.0;

  std::function<void()> attempt = [&] {
    if (done || report.transmissions >= max_transmissions) return;
    ++report.transmissions;
    link.send(Endpoint::kAlice,
              initiator.make_confirm(nonce_base + report.transmissions));
    clock.schedule(timeout_ms, attempt);
  };
  attempt();
  clock.run_until_idle();

  // The handlers capture locals of this frame; leave inert ones behind so a
  // stale delivery scheduled by the caller later cannot touch dead stack.
  link.set_handler(Endpoint::kAlice, [](const Message&) {});
  link.set_handler(Endpoint::kBob, [](const Message&) {});

  report.confirmed = done;
  report.duration_ms = (done ? done_at : clock.now_ms()) - t0;
  return report;
}

}  // namespace vkey::protocol
