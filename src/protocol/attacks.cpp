#include "protocol/attacks.h"

#include "common/error.h"
#include "protocol/message.h"

namespace vkey::protocol {

std::optional<Message> find_syndrome(const PublicChannel& channel) {
  for (const auto& msg : channel.transcript()) {
    if (msg.type == MessageType::kSyndrome) return msg;
  }
  return std::nullopt;
}

BitVec eavesdrop_attack(const core::AutoencoderReconciler& reconciler,
                        const BitVec& eve_key, const Message& syndrome) {
  VKEY_REQUIRE(syndrome.type == MessageType::kSyndrome,
               "message is not a syndrome");
  const auto y_bob = unpack_doubles(syndrome.payload);
  return reconciler.reconcile(eve_key, y_bob);
}

void install_syndrome_tamper(PublicChannel& channel) {
  channel.set_interceptor([](const Message& msg) -> std::optional<Message> {
    if (msg.type != MessageType::kSyndrome || msg.payload.empty()) {
      return msg;
    }
    Message tampered = msg;
    tampered.payload[tampered.payload.size() / 2] ^= 0x80;
    return tampered;
  });
}

Message make_replay(const Message& original) { return original; }

}  // namespace vkey::protocol
