#include "protocol/session_registry.h"

#include <algorithm>

#include "common/error.h"
#include "common/metrics.h"

namespace vkey::protocol {

namespace {

metrics::Counter& gw_counter(const char* name) {
  return metrics::Registry::global().counter(std::string("gateway.") + name);
}

metrics::Gauge& gw_gauge(const char* name) {
  return metrics::Registry::global().gauge(std::string("gateway.") + name);
}

}  // namespace

std::string to_string(DeviceState s) {
  switch (s) {
    case DeviceState::kQueued: return "queued";
    case DeviceState::kEstablishing: return "establishing";
    case DeviceState::kConfirmed: return "confirmed";
    case DeviceState::kFailed: return "failed";
    case DeviceState::kEvicted: return "evicted";
  }
  return "?";
}

std::string to_string(EvictReason r) {
  switch (r) {
    case EvictReason::kIdle: return "idle";
    case EvictReason::kFailed: return "failed";
  }
  return "?";
}

SessionRegistry::SessionRegistry(std::size_t max_inflight)
    : max_inflight_(max_inflight) {
  VKEY_REQUIRE(max_inflight >= 1, "admission control needs at least one slot");
}

DeviceRecord& SessionRegistry::mutable_record(std::uint64_t device_id) {
  VKEY_REQUIRE(device_id < records_.size(),
               "unknown device id " + std::to_string(device_id));
  return records_[static_cast<std::size_t>(device_id)];
}

const DeviceRecord& SessionRegistry::record(std::uint64_t device_id) const {
  VKEY_REQUIRE(device_id < records_.size(),
               "unknown device id " + std::to_string(device_id));
  return records_[static_cast<std::size_t>(device_id)];
}

void SessionRegistry::update_gauges() {
  gw_gauge("inflight_sessions").set(static_cast<double>(inflight_));
  gw_gauge("queued_sessions").set(static_cast<double>(queue_.size()));
  gw_gauge("active_sessions").set(static_cast<double>(confirmed_active_));
}

DeviceRecord& SessionRegistry::arrive(std::uint64_t device_id, double now_ms) {
  VKEY_REQUIRE(device_id == records_.size(),
               "device ids must be dense arrival ordinals; expected " +
                   std::to_string(records_.size()) + ", got " +
                   std::to_string(device_id));
  DeviceRecord rec;
  rec.device_id = device_id;
  rec.state = DeviceState::kQueued;
  rec.arrival_ms = now_ms;
  rec.last_activity_ms = now_ms;
  records_.push_back(rec);
  queue_.push_back(device_id);
  ++stats_.arrivals;
  stats_.peak_queued = std::max(stats_.peak_queued, queue_.size());
  gw_counter("arrivals").add(1);
  update_gauges();
  return records_.back();
}

std::optional<std::uint64_t> SessionRegistry::admit_next(double now_ms) {
  if (!slot_free() || queue_.empty()) return std::nullopt;
  const std::uint64_t id = queue_.front();
  queue_.pop_front();
  DeviceRecord& rec = mutable_record(id);
  VKEY_REQUIRE(rec.state == DeviceState::kQueued,
               "admitting a device in state " + to_string(rec.state));
  rec.state = DeviceState::kEstablishing;
  rec.admitted_ms = now_ms;
  rec.last_activity_ms = now_ms;
  ++inflight_;
  ++stats_.admissions;
  stats_.peak_inflight = std::max(stats_.peak_inflight, inflight_);
  gw_counter("admissions").add(1);
  update_gauges();
  return id;
}

void SessionRegistry::established(std::uint64_t device_id, double now_ms) {
  DeviceRecord& rec = mutable_record(device_id);
  VKEY_REQUIRE(rec.state == DeviceState::kEstablishing,
               "established() on a device in state " + to_string(rec.state));
  rec.state = DeviceState::kConfirmed;
  rec.established_ms = now_ms;
  rec.last_activity_ms = now_ms;
  --inflight_;
  ++confirmed_active_;
  ++stats_.established;
  gw_counter("keys_established").add(1);
  update_gauges();
}

void SessionRegistry::failed(std::uint64_t device_id, double now_ms,
                             FailureReason reason) {
  DeviceRecord& rec = mutable_record(device_id);
  VKEY_REQUIRE(rec.state == DeviceState::kEstablishing,
               "failed() on a device in state " + to_string(rec.state));
  rec.state = DeviceState::kFailed;
  rec.failure = reason;
  rec.last_activity_ms = now_ms;
  --inflight_;
  ++stats_.failures;
  gw_counter("establish_failures").add(1);
  update_gauges();
}

void SessionRegistry::rekeyed(std::uint64_t device_id, double now_ms) {
  DeviceRecord& rec = mutable_record(device_id);
  VKEY_REQUIRE(rec.state == DeviceState::kConfirmed,
               "rekeyed() on a device in state " + to_string(rec.state));
  ++rec.rekeys;
  rec.last_activity_ms = now_ms;
  ++stats_.rekeys;
  gw_counter("rekeys").add(1);
}

void SessionRegistry::touch(std::uint64_t device_id, double now_ms) {
  DeviceRecord& rec = mutable_record(device_id);
  VKEY_REQUIRE(rec.state == DeviceState::kConfirmed,
               "touch() on a device in state " + to_string(rec.state));
  rec.last_activity_ms = now_ms;
}

void SessionRegistry::evict(std::uint64_t device_id, double now_ms,
                            EvictReason reason) {
  DeviceRecord& rec = mutable_record(device_id);
  if (reason == EvictReason::kIdle) {
    VKEY_REQUIRE(rec.state == DeviceState::kConfirmed,
                 "idle eviction of a device in state " + to_string(rec.state));
    --confirmed_active_;
    ++stats_.evicted_idle;
    gw_counter("evictions.idle").add(1);
  } else {
    VKEY_REQUIRE(rec.state == DeviceState::kFailed,
                 "failure eviction of a device in state " +
                     to_string(rec.state));
    ++stats_.evicted_failed;
    gw_counter("evictions.failed").add(1);
  }
  rec.state = DeviceState::kEvicted;
  rec.evicted_ms = now_ms;
  rec.evict_reason = reason;
  update_gauges();
}

}  // namespace vkey::protocol
