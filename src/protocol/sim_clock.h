// Deterministic virtual-clock event scheduler.
//
// The reliability layer (ARQ timeouts, fault-injected delivery latency,
// duplicate echoes) needs a notion of time, but wall-clock time would make
// every test slow and flaky. SimClock keeps virtual milliseconds: events are
// scheduled at absolute due times and executed in (due_time, insertion order)
// order, so two events at the same instant fire FIFO and every run is
// bit-reproducible. Callbacks may schedule or cancel further events while
// running — the scheduler snapshots the head entry before invoking it.
//
// A SimClock is either a per-agreement sub-scheduler (one RF exchange's ARQ
// timers and fault-delayed deliveries) or THE shared gateway timeline that
// drives every session's lifecycle events (arrival, admission, completion,
// rekey, eviction — see protocol/gateway.h). Ownership of instances inside
// src/protocol/ is linted: only the gateway scheduler constructs clocks
// (tools/vkey_lint.py `sim-clock-owner`), so virtual time has a single
// authority per simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

namespace vkey::protocol {

class SimClock {
 public:
  using EventId = std::uint64_t;
  using Callback = std::function<void()>;

  /// Current virtual time [ms]. Starts at 0.
  double now_ms() const noexcept { return now_ms_; }

  /// Schedule `fn` to run `delay_ms` from now (negative delays clamp to 0).
  /// Returns an id usable with cancel().
  EventId schedule(double delay_ms, Callback fn);

  /// Schedule `fn` at the absolute virtual instant `due_ms` (clamped to
  /// now_ms() when already past). The gateway engine plans lifecycle events
  /// on the shared timeline in absolute time; relative schedule() is the
  /// natural form for timeouts.
  EventId schedule_at(double due_ms, Callback fn);

  /// Remove a pending event; returns false when it already ran or was
  /// cancelled (cancelling a dead id is not an error — ARQ timers race
  /// with ACK arrivals by design).
  bool cancel(EventId id);

  /// Run the earliest pending event, advancing now_ms() to its due time.
  /// Returns false when the queue is empty.
  bool run_next();

  /// Run every event due at or before `until_ms`, then advance the clock to
  /// `until_ms` (even if idle earlier). Returns the number of events run.
  std::size_t run_until(double until_ms);

  /// Drain the queue completely (bounded by `max_events` as a runaway
  /// guard). Returns the number of events run.
  std::size_t run_until_idle(std::size_t max_events = 1u << 20);

  std::size_t pending() const noexcept { return queue_.size(); }

  /// Virtual due time of the earliest pending event; `fallback` when idle.
  double next_due_ms(double fallback = 0.0) const noexcept {
    return queue_.empty() ? fallback : queue_.begin()->first.first;
  }

  /// Drop every pending event without running it; returns how many were
  /// discarded. The owner of a torn-down sub-simulation must clear the
  /// clock before reusing it: stale timer closures reference transports and
  /// sessions that no longer exist. now_ms() is unchanged — virtual time
  /// never rewinds.
  std::size_t clear();

 private:
  using Key = std::pair<double, EventId>;  // (due time, insertion order)

  double now_ms_ = 0.0;
  EventId next_id_ = 1;
  std::map<Key, Callback> queue_;
  std::map<EventId, double> due_;  // id -> due time, for cancel()
};

}  // namespace vkey::protocol
