#include "protocol/sim_clock.h"

namespace vkey::protocol {

SimClock::EventId SimClock::schedule(double delay_ms, Callback fn) {
  if (delay_ms < 0.0) delay_ms = 0.0;
  return schedule_at(now_ms_ + delay_ms, std::move(fn));
}

SimClock::EventId SimClock::schedule_at(double due_ms, Callback fn) {
  if (due_ms < now_ms_) due_ms = now_ms_;
  const EventId id = next_id_++;
  queue_.emplace(Key{due_ms, id}, std::move(fn));
  due_.emplace(id, due_ms);
  return id;
}

std::size_t SimClock::clear() {
  const std::size_t dropped = queue_.size();
  queue_.clear();
  due_.clear();
  return dropped;
}

bool SimClock::cancel(EventId id) {
  const auto it = due_.find(id);
  if (it == due_.end()) return false;
  queue_.erase(Key{it->second, id});
  due_.erase(it);
  return true;
}

bool SimClock::run_next() {
  if (queue_.empty()) return false;
  auto head = queue_.begin();
  const Key key = head->first;
  Callback fn = std::move(head->second);
  queue_.erase(head);
  due_.erase(key.second);
  now_ms_ = key.first;  // time never moves backwards: due >= schedule time
  fn();
  return true;
}

std::size_t SimClock::run_until(double until_ms) {
  std::size_t ran = 0;
  while (!queue_.empty() && queue_.begin()->first.first <= until_ms) {
    run_next();
    ++ran;
  }
  if (until_ms > now_ms_) now_ms_ = until_ms;
  return ran;
}

std::size_t SimClock::run_until_idle(std::size_t max_events) {
  std::size_t ran = 0;
  while (ran < max_events && run_next()) ++ran;
  return ran;
}

}  // namespace vkey::protocol
