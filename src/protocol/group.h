// Group key distribution on top of pairwise Vehicle-Key sessions.
//
// IoV applications (platooning, intersection coordination) often need one
// key shared by N vehicles. Following the star construction of the group
// key generation literature the paper cites ([15]), a hub (typically the
// RSU, or the platoon leader) first establishes an independent pairwise
// Vehicle-Key session key with every member, then samples a fresh group
// key and distributes it to each member wrapped under the pairwise
// SecureLink (AES-128-CTR + HMAC). Rekeying on membership change is a new
// distribution round; leaving members only ever saw group keys from epochs
// they belonged to.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bitvec.h"
#include "protocol/session.h"

namespace vkey::protocol {

class GroupKeyHub {
 public:
  /// `hub_seed` drives group-key sampling (in production: a CSPRNG).
  explicit GroupKeyHub(std::uint64_t hub_seed);

  /// Register a member with its established pairwise 128-bit session key.
  void add_member(const std::string& member_id, const BitVec& pairwise_key);

  /// Remove a member; the current epoch's key is considered compromised and
  /// the next distribute() call rotates it.
  void remove_member(const std::string& member_id);

  std::size_t member_count() const { return members_.size(); }
  std::uint64_t epoch() const { return epoch_; }

  /// Sample a fresh group key for a new epoch and wrap it for every member.
  /// Returns one kData message per member (message nonce = epoch).
  std::vector<std::pair<std::string, Message>> distribute();

  /// The current epoch's group key (valid after the first distribute()).
  BitVec group_key() const;

 private:
  std::uint64_t epoch_ = 0;
  vkey::Rng rng_;
  std::optional<BitVec> group_key_;
  std::map<std::string, BitVec> members_;
};

/// Member side: unwrap the distributed group key with the pairwise key.
/// nullopt if authentication fails (wrong pairwise key or tampering).
std::optional<BitVec> unwrap_group_key(const BitVec& pairwise_key,
                                       const Message& wrapped);

}  // namespace vkey::protocol
