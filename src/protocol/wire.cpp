#include "protocol/wire.h"

#include <array>

#include "common/error.h"
#include "common/metrics.h"

namespace vkey::protocol::wire {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

metrics::Counter& reject_counter(WireError e) {
  return metrics::Registry::global().counter("wire.reject." + to_string(e));
}

std::optional<Message> reject(WireError e, WireError* error) {
  if (error != nullptr) *error = e;
  reject_counter(e).add(1);
  return std::nullopt;
}

}  // namespace

std::string to_string(WireError e) {
  switch (e) {
    case WireError::kNone: return "none";
    case WireError::kTruncated: return "truncated";
    case WireError::kBadMagic: return "magic";
    case WireError::kBadVersion: return "version";
    case WireError::kOversizedPayload: return "payload-len";
    case WireError::kOversizedMac: return "mac-len";
    case WireError::kTrailingBytes: return "trailing";
    case WireError::kBadCrc: return "crc";
    case WireError::kBadType: return "type";
  }
  return "?";
}

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes) {
    c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------- FrameReader

bool FrameReader::read_u8(std::uint8_t& v) {
  if (remaining() < 1) return false;
  v = bytes_[off_++];
  return true;
}

bool FrameReader::read_u16(std::uint16_t& v) {
  if (remaining() < 2) return false;
  v = static_cast<std::uint16_t>((bytes_[off_] << 8) | bytes_[off_ + 1]);
  off_ += 2;
  return true;
}

bool FrameReader::read_u32(std::uint32_t& v) {
  if (remaining() < 4) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | bytes_[off_++];
  return true;
}

bool FrameReader::read_u64(std::uint64_t& v) {
  if (remaining() < 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | bytes_[off_++];
  return true;
}

std::optional<std::span<const std::uint8_t>> FrameReader::read_bytes(
    std::size_t n) {
  if (remaining() < n) return std::nullopt;
  auto view = bytes_.subspan(off_, n);
  off_ += n;
  return view;
}

// ---------------------------------------------------------------- FrameWriter

void FrameWriter::put_u8(std::uint8_t v) { out_.push_back(v); }

void FrameWriter::put_u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v));
}

void FrameWriter::put_u32(std::uint32_t v) {
  for (int i = 3; i >= 0; --i) {
    out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void FrameWriter::put_u64(std::uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void FrameWriter::put_bytes(std::span<const std::uint8_t> bytes) {
  out_.insert(out_.end(), bytes.begin(), bytes.end());
}

std::vector<std::uint8_t> FrameWriter::finish() && {
  const std::uint32_t c = crc32(out_);
  put_u32(c);
  return std::move(out_);
}

// --------------------------------------------------------------- encode/decode

std::size_t frame_size(const Message& msg) {
  return kMinFrameBytes + msg.payload.size() + msg.mac.size();
}

std::vector<std::uint8_t> encode_frame(const Message& msg) {
  VKEY_REQUIRE(msg.payload.size() <= kMaxPayloadBytes,
               "payload exceeds the wire bound");
  VKEY_REQUIRE(msg.mac.size() <= kMaxMacBytes, "MAC exceeds the wire bound");
  FrameWriter w;
  w.put_u16(kMagic);
  w.put_u8(kWireVersion);
  w.put_u16(static_cast<std::uint16_t>(msg.payload.size()));
  w.put_u8(static_cast<std::uint8_t>(msg.mac.size()));
  w.put_u8(static_cast<std::uint8_t>(msg.type));
  w.put_u64(msg.session_id);
  w.put_u64(msg.nonce);
  w.put_bytes(msg.payload);
  w.put_bytes(msg.mac);
  metrics::Registry::global().counter("wire.encoded").add(1);
  return std::move(w).finish();
}

std::optional<Message> decode_frame(std::span<const std::uint8_t> bytes,
                                    WireError* error) {
  if (error != nullptr) *error = WireError::kNone;
  FrameReader r(bytes);

  // Structural gates, cheapest first. A buffer shorter than the fixed
  // header cannot even be classified further.
  std::uint16_t magic = 0;
  std::uint8_t version = 0;
  std::uint16_t payload_len = 0;
  std::uint8_t mac_len = 0;
  std::uint8_t type = 0;
  std::uint64_t session = 0;
  std::uint64_t nonce = 0;
  if (!r.read_u16(magic) || !r.read_u8(version) || !r.read_u16(payload_len) ||
      !r.read_u8(mac_len) || !r.read_u8(type) || !r.read_u64(session) ||
      !r.read_u64(nonce)) {
    return reject(WireError::kTruncated, error);
  }
  if (magic != kMagic) return reject(WireError::kBadMagic, error);
  if (version != kWireVersion) return reject(WireError::kBadVersion, error);
  if (payload_len > kMaxPayloadBytes) {
    return reject(WireError::kOversizedPayload, error);
  }
  if (mac_len > kMaxMacBytes) return reject(WireError::kOversizedMac, error);

  const std::size_t want =
      static_cast<std::size_t>(payload_len) + mac_len + kCrcBytes;
  if (r.remaining() < want) return reject(WireError::kTruncated, error);
  if (r.remaining() > want) return reject(WireError::kTrailingBytes, error);

  const auto payload = r.read_bytes(payload_len);
  const auto mac = r.read_bytes(mac_len);
  std::uint32_t stored_crc = 0;
  const bool crc_ok = r.read_u32(stored_crc);
  VKEY_REQUIRE(payload.has_value() && mac.has_value() && crc_ok,
               "bounded reader out of sync with the length checks");
  if (crc32(bytes.first(bytes.size() - kCrcBytes)) != stored_crc) {
    return reject(WireError::kBadCrc, error);
  }

  // Semantic gate last: the frame is structurally sound and CRC-clean, so a
  // bad type here is a protocol-level forgery, not line noise.
  if (type < 1 || type > kMaxMessageType) {
    return reject(WireError::kBadType, error);
  }

  Message msg;
  msg.type = static_cast<MessageType>(type);
  msg.session_id = session;
  msg.nonce = nonce;
  msg.payload.assign(payload->begin(), payload->end());
  msg.mac.assign(mac->begin(), mac->end());
  metrics::Registry::global().counter("wire.decoded").add(1);
  return msg;
}

void register_wire_metrics() {
  auto& reg = metrics::Registry::global();
  reg.counter("wire.encoded");
  reg.counter("wire.decoded");
  for (const WireError e :
       {WireError::kTruncated, WireError::kBadMagic, WireError::kBadVersion,
        WireError::kOversizedPayload, WireError::kOversizedMac,
        WireError::kTrailingBytes, WireError::kBadCrc, WireError::kBadType}) {
    reg.counter("wire.reject." + to_string(e));
  }
}

}  // namespace vkey::protocol::wire
