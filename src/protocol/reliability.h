// Session-recovery supervisor: reliable key agreement over a lossy link.
//
// Wires AliceSession/BobSession to two ReliableTransports over an
// UnreliableChannel driven by a virtual clock, and supervises the exchange:
// when a transport exhausts its retry budget, a party fails, or the attempt
// deadline passes, the supervisor tears the attempt down and restarts
// negotiation under a *fresh* session id with *fresh* probe material (and a
// fresh fault/jitter stream — a retransmission storm must not replay
// identically). The caller gets a structured report — failure reason,
// attempt count, per-attempt transport/link counters and virtual
// time-to-establish — instead of a bare bool.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/bitvec.h"
#include "core/reconciler.h"
#include "protocol/flight_recorder.h"
#include "protocol/reliable_transport.h"
#include "protocol/session.h"
#include "protocol/unreliable_channel.h"

namespace vkey::protocol {

/// Terminal diagnosis of a (possibly multi-attempt) agreement run.
enum class FailureReason : std::uint8_t {
  kNone,             ///< established
  kRetryExhausted,   ///< a transport ran out of retransmissions
  kMacMismatch,      ///< syndrome MAC failed (tamper or hopeless mismatch)
  kConfirmMismatch,  ///< key-confirmation digest failed
  kTimeout,          ///< attempt deadline passed without termination
  kProtocolError,    ///< deadlock/quiescence without an established key
};

std::string to_string(FailureReason r);

struct ReliabilityConfig {
  FaultConfig fault;
  ArqConfig arq;
  /// Radio timing for airtime-derived latency and RTT estimation.
  channel::LoRaParams radio;
  std::size_t max_session_attempts = 3;
  double attempt_timeout_ms = 1.8e6;  ///< 30 virtual minutes
  std::size_t final_key_bits = 128;
  std::uint64_t base_session_id = 1;  ///< attempt k uses base + k
  /// Flight-recorder ring size per attempt (0 disables recording). Every
  /// attempt gets its own recorder, wired through the link, both transports
  /// and both sessions, stamped with the attempt's SimClock.
  std::size_t flight_capacity = 512;
};

/// Counters and outcome of one negotiation attempt.
struct AttemptReport {
  std::uint64_t session_id = 0;
  bool established = false;
  FailureReason failure = FailureReason::kNone;
  SessionState alice_state = SessionState::kIdle;
  SessionState bob_state = SessionState::kIdle;
  RejectReason alice_reject = RejectReason::kNone;
  RejectReason bob_reject = RejectReason::kNone;
  double duration_ms = 0.0;  ///< virtual time this attempt consumed
  TransportStats alice_transport;
  TransportStats bob_transport;
  std::size_t alice_duplicates_suppressed = 0;
  std::size_t bob_duplicates_suppressed = 0;
  std::size_t alice_rejects = 0;
  std::size_t bob_rejects = 0;
  LinkStats link;
  /// The attempt's full event timeline (empty ring when recording was
  /// disabled via ReliabilityConfig::flight_capacity = 0).
  FlightRecorder flight;
};

struct AgreementReport {
  bool established = false;
  FailureReason failure = FailureReason::kNone;  ///< of the last attempt
  std::size_t attempts = 0;
  /// Virtual ms from the first transmission to key establishment, summed
  /// across attempts (failed ones included).
  double time_to_establish_ms = 0.0;
  /// Frames put on the air across all attempts: data + retransmissions +
  /// acks. The per-establishment message overhead of the reliability layer.
  std::size_t wire_frames = 0;
  LinkStats link;  ///< aggregated over attempts
  std::vector<AttemptReport> attempt_log;
  BitVec key;  ///< the established 128-bit key; empty on failure

  /// Post-mortem timelines of the failing attempts: the flight-recorder
  /// dump of up to the last `max_attempts` failed attempts (oldest first),
  /// each prefixed with its FailureReason, with a single "N earlier
  /// attempt(s) suppressed" line when the log is longer than the cap — a
  /// gateway draining thousands of sessions must stay debuggable without
  /// drowning the console. Empty when the agreement established or nothing
  /// was recorded.
  std::string failure_dump(std::size_t max_attempts = 3) const;

  explicit operator bool() const { return established; }
};

/// Fresh probe material for attempt k: (alice_raw, bob_raw), each
/// reconciler.key_bits wide. Recovery re-probes the channel, so successive
/// attempts should return different material.
using ProbeMaterialFn =
    std::function<std::pair<BitVec, BitVec>(std::size_t attempt)>;

/// Run key agreement with ARQ + session recovery over a faulty link. `base`
/// keeps the eavesdropper transcript across attempts and may carry a MITM
/// interceptor.
AgreementReport run_reliable_key_agreement(
    PublicChannel& base, const core::AutoencoderReconciler& reconciler,
    const ReliabilityConfig& config, const ProbeMaterialFn& material);

/// Same supervisor, but driven by a caller-owned scheduler: the gateway
/// engine hands every session a dedicated sub-clock so clock construction
/// stays with the scheduler (the `sim-clock-owner` lint rule). The clock
/// need not start at 0 — attempt durations and the timeout are measured
/// relative to the clock's time at entry — but it must be *dedicated* to
/// this agreement: between attempts the supervisor clears all pending
/// events (stale ARQ timers reference torn-down transports), which would
/// destroy unrelated events on a shared queue.
AgreementReport run_reliable_key_agreement_on(
    SimClock& clock, PublicChannel& base,
    const core::AutoencoderReconciler& reconciler,
    const ReliabilityConfig& config, const ProbeMaterialFn& material);

/// Eagerly register every instrument the session/ARQ/link/reliability stack
/// creates lazily — including the rare-path taxonomy (the per-kind
/// `reliability.failure.*` counters, `arq.gave_up`, the fault-dependent link
/// counters) whose first registration may otherwise land hours into a run.
/// Snapshot structure and steady-state heap accounting must not depend on
/// which faults happened to fire. Delegates to wire::register_wire_metrics()
/// for the frame-reject taxonomy.
void register_protocol_metrics();

}  // namespace vkey::protocol
