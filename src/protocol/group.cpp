#include "protocol/group.h"

#include "common/error.h"
#include "crypto/secret_buffer.h"

namespace vkey::protocol {

GroupKeyHub::GroupKeyHub(std::uint64_t hub_seed) : rng_(hub_seed) {}

void GroupKeyHub::add_member(const std::string& member_id,
                             const BitVec& pairwise_key) {
  VKEY_REQUIRE(pairwise_key.size() == 128,
               "pairwise key must be 128 bits");
  VKEY_REQUIRE(!member_id.empty(), "member id must be non-empty");
  members_[member_id] = pairwise_key;
}

void GroupKeyHub::remove_member(const std::string& member_id) {
  const auto it = members_.find(member_id);
  VKEY_REQUIRE(it != members_.end(), "unknown member: " + member_id);
  members_.erase(it);
  group_key_.reset();  // force rotation on the next distribution
}

BitVec GroupKeyHub::group_key() const {
  VKEY_REQUIRE(group_key_.has_value(), "no group key distributed yet");
  return *group_key_;
}

std::vector<std::pair<std::string, Message>> GroupKeyHub::distribute() {
  VKEY_REQUIRE(!members_.empty(), "no members to distribute to");
  ++epoch_;
  BitVec key(128);
  for (std::size_t i = 0; i < key.size(); ++i) {
    key.set(i, rng_.bernoulli(0.5));
  }
  group_key_ = key;

  std::vector<std::pair<std::string, Message>> out;
  out.reserve(members_.size());
  // The serialized group key exists in the clear only for the duration of
  // the wrap loop; every member receives it sealed under their pairwise
  // SecureLink.
  auto payload = key.to_bytes();
  for (const auto& [id, pairwise] : members_) {
    const SecureLink link(pairwise);
    out.emplace_back(id, link.seal(/*session_id=*/epoch_,
                                   /*nonce=*/epoch_, payload));
  }
  crypto::secure_wipe(payload);
  return out;
}

std::optional<BitVec> unwrap_group_key(const BitVec& pairwise_key,
                                       const Message& wrapped) {
  const SecureLink link(pairwise_key);
  const auto payload = link.open(wrapped);
  if (!payload.has_value() || payload->size() != 16) return std::nullopt;
  return BitVec::from_bytes(*payload, 128);
}

}  // namespace vkey::protocol
