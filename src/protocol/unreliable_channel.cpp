#include "protocol/unreliable_channel.h"

#include "common/error.h"
#include "common/json.h"
#include "common/metrics.h"
#include "protocol/flight_recorder.h"
#include "protocol/message.h"
#include "protocol/wire.h"

namespace vkey::protocol {

namespace {

metrics::Counter& link_counter(const char* name) {
  // The handful of link counters are fetched by string; cache each behind a
  // function-local static at the call sites via this helper being cheap —
  // the registry scan is a few entries.
  return metrics::Registry::global().counter(std::string("link.") + name);
}

const char* endpoint_name(UnreliableChannel::Endpoint e) {
  return e == UnreliableChannel::Endpoint::kAlice ? "alice" : "bob";
}

}  // namespace

UnreliableChannel::UnreliableChannel(SimClock& clock, PublicChannel& base,
                                     const FaultConfig& faults,
                                     const channel::LoRaParams& radio)
    : clock_(clock),
      base_(base),
      faults_(faults),
      radio_(radio),
      rng_(faults.seed) {
  VKEY_REQUIRE(faults.drop_prob >= 0.0 && faults.drop_prob < 1.0,
               "drop probability must be in [0, 1)");
  VKEY_REQUIRE(faults.dup_prob >= 0.0 && faults.dup_prob <= 1.0 &&
                   faults.corrupt_prob >= 0.0 && faults.corrupt_prob <= 1.0 &&
                   faults.reorder_prob >= 0.0 && faults.reorder_prob <= 1.0,
               "fault probabilities must be in [0, 1]");
}

void UnreliableChannel::set_handler(Endpoint endpoint, Handler handler) {
  handlers_[static_cast<int>(endpoint)] = std::move(handler);
}

double UnreliableChannel::airtime_ms(const Message& msg) const {
  channel::LoRaParams p = radio_;
  // The radio carries the packed v1 frame, not the in-memory serialization;
  // airtime (and therefore every ARQ timeout) follows the frame size.
  p.payload_bytes = static_cast<int>(wire::frame_size(msg));
  return channel::LoRaPhy(p).airtime() * 1000.0;
}

double UnreliableChannel::nominal_latency_ms(const Message& msg) const {
  return airtime_ms(msg) + faults_.processing_delay_ms;
}

void UnreliableChannel::deliver(Endpoint to, const Message& msg,
                                double delay_ms) {
  Handler& handler = handlers_[static_cast<int>(to)];
  VKEY_REQUIRE(static_cast<bool>(handler), "endpoint handler not installed");
  clock_.schedule(delay_ms, [this, to, msg] {
    ++stats_.delivered;
    if (recorder_ != nullptr) {
      recorder_->record(FlightEventKind::kFrameRx, endpoint_name(to),
                        to_string(msg.type), msg.session_id, msg.nonce);
    }
    handlers_[static_cast<int>(to)](msg);
  });
}

void UnreliableChannel::send(Endpoint from, const Message& msg) {
  ++stats_.sent;
  // Transmit cost in wire bytes: spent whether or not the frame survives
  // the channel. This is what "steady-state bytes/session" in the gateway
  // report measures.
  stats_.bytes_sent += wire::frame_size(msg);
  link_counter("sent").add(1);
  if (recorder_ != nullptr) {
    recorder_->record(FlightEventKind::kFrameTx, endpoint_name(from),
                      to_string(msg.type), msg.session_id, msg.nonce);
  }
  if (metrics::enabled()) {
    // Airtime is spent by the transmitter whether or not the frame
    // survives the channel.
    channel::LoRaParams p = radio_;
    p.payload_bytes = static_cast<int>(wire::frame_size(msg));
    channel::LoRaPhy(p).account_airtime("wire");
  }
  const Endpoint to =
      from == Endpoint::kAlice ? Endpoint::kBob : Endpoint::kAlice;

  // Through the base channel first: keeps the eavesdropper transcript and
  // lets an installed MITM interceptor rewrite or drop the frame.
  base_.send(msg);
  auto in_flight = base_.receive();
  if (!in_flight.has_value()) return;  // intercepted and dropped

  if (rng_.bernoulli(faults_.drop_prob)) {
    ++stats_.dropped;
    link_counter("dropped").add(1);
    if (recorder_ != nullptr) {
      recorder_->record(FlightEventKind::kDrop, "link", to_string(msg.type),
                        msg.session_id, msg.nonce);
    }
    return;
  }

  if (rng_.bernoulli(faults_.corrupt_prob)) {
    // Corruption happens to the *serialized frame* — the actual bytes on
    // the air — so the frame CRC catches almost all damage (typed reject,
    // frame lost like a radio CRC drop) and the rare CRC-colliding flip
    // must still get past the protocol-layer MAC.
    auto bytes = wire::encode_frame(*in_flight);
    const int flips = 1 + static_cast<int>(rng_.uniform_int(3));
    for (int f = 0; f < flips; ++f) {
      bytes[rng_.uniform_int(bytes.size())] ^=
          static_cast<std::uint8_t>(1u << rng_.uniform_int(8));
    }
    ++stats_.corrupted;
    link_counter("corrupted").add(1);
    wire::WireError err = wire::WireError::kNone;
    auto reparsed = wire::decode_frame(bytes, &err);
    if (!reparsed.has_value()) {
      ++stats_.crc_lost;  // the radio discards the damaged frame
      link_counter("crc_lost").add(1);
      if (recorder_ != nullptr) {
        recorder_->record(FlightEventKind::kWireReject, "link",
                          wire::to_string(err) + " on " + to_string(msg.type) +
                              " flips=" + std::to_string(flips),
                          msg.session_id, msg.nonce);
      }
      return;
    }
    if (recorder_ != nullptr) {
      recorder_->record(FlightEventKind::kCorrupt, "link",
                        to_string(msg.type) + " flips=" +
                            std::to_string(flips),
                        msg.session_id, msg.nonce);
    }
    in_flight = std::move(reparsed);
  }

  double delay = nominal_latency_ms(msg);
  if (rng_.bernoulli(faults_.reorder_prob)) {
    ++stats_.reordered;
    link_counter("reordered").add(1);
    const double extra = rng_.uniform(0.0, faults_.reorder_window_ms);
    delay += extra;
    if (recorder_ != nullptr) {
      recorder_->record(FlightEventKind::kReorder, "link",
                        to_string(msg.type) + " extra_ms=" +
                            json::format_number(extra),
                        msg.session_id, msg.nonce);
    }
  }
  deliver(to, *in_flight, delay);

  if (rng_.bernoulli(faults_.dup_prob)) {
    ++stats_.duplicated;
    link_counter("duplicated").add(1);
    if (recorder_ != nullptr) {
      recorder_->record(FlightEventKind::kDuplicate, "link",
                        to_string(msg.type), msg.session_id, msg.nonce);
    }
    deliver(to, *in_flight, delay + faults_.dup_delay_ms);
  }
}

}  // namespace vkey::protocol
