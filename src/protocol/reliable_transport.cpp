#include "protocol/reliable_transport.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/json.h"
#include "common/metrics.h"
#include "protocol/flight_recorder.h"

namespace vkey::protocol {

namespace {

metrics::Counter& arq_counter(const char* name) {
  return metrics::Registry::global().counter(std::string("arq.") + name);
}

metrics::Histogram& arq_backoff_hist() {
  static metrics::Histogram& h =
      metrics::Registry::global().histogram("arq.backoff_ms");
  return h;
}

}  // namespace

double arq_backoff_delay_ms(const ArqConfig& cfg, std::size_t attempt,
                            vkey::Rng& rng) {
  const double ceiling =
      std::min(cfg.max_backoff_ms,
               cfg.base_backoff_ms *
                   std::pow(cfg.backoff_factor, static_cast<double>(attempt)));
  const double hi = std::max(cfg.base_backoff_ms, ceiling);
  return rng.uniform(cfg.base_backoff_ms, hi);
}

ReliableTransport::ReliableTransport(SimClock& clock, const ArqConfig& config,
                                     WireFn wire, RttFn rtt)
    : clock_(clock),
      cfg_(config),
      wire_(std::move(wire)),
      rtt_(std::move(rtt)),
      rng_(config.seed) {
  VKEY_REQUIRE(cfg_.base_backoff_ms > 0.0 &&
                   cfg_.max_backoff_ms >= cfg_.base_backoff_ms &&
                   cfg_.backoff_factor >= 1.0,
               "backoff parameters must satisfy 0 < base <= cap, factor >= 1");
}

void ReliableTransport::set_upcall(UpcallFn upcall, AckGateFn ack_gate) {
  upcall_ = std::move(upcall);
  ack_gate_ = std::move(ack_gate);
}

void ReliableTransport::set_recorder(FlightRecorder* recorder,
                                     std::string actor) {
  recorder_ = recorder;
  actor_ = std::move(actor);
}

void ReliableTransport::arm_timer(std::uint64_t nonce) {
  auto& entry = inflight_.at(nonce);
  const double backoff = arq_backoff_delay_ms(cfg_, entry.attempt, rng_);
  arq_backoff_hist().observe(backoff);
  const double timeout = rtt_(entry.msg) + backoff;
  if (recorder_ != nullptr) {
    recorder_->record(FlightEventKind::kBackoff, actor_,
                      "attempt=" + std::to_string(entry.attempt) +
                          " delay_ms=" + json::format_number(timeout),
                      entry.msg.session_id, nonce);
  }
  entry.timer = clock_.schedule(timeout, [this, nonce] { on_timeout(nonce); });
}

void ReliableTransport::on_timeout(std::uint64_t nonce) {
  const auto it = inflight_.find(nonce);
  if (it == inflight_.end()) return;  // acked while the event was queued
  if (it->second.attempt >= cfg_.max_retries) {
    ++stats_.gave_up;
    arq_counter("gave_up").add(1);
    if (recorder_ != nullptr) {
      recorder_->record(FlightEventKind::kGaveUp, actor_,
                        to_string(it->second.msg.type) + " after " +
                            std::to_string(cfg_.max_retries) + " retries",
                        it->second.msg.session_id, nonce);
    }
    exhausted_ = true;
    inflight_.erase(it);
    return;
  }
  ++it->second.attempt;
  ++stats_.retransmissions;
  arq_counter("timeouts").add(1);
  arq_counter("retransmissions").add(1);
  if (recorder_ != nullptr) {
    recorder_->record(FlightEventKind::kRetransmit, actor_,
                      "timeout attempt=" + std::to_string(it->second.attempt),
                      it->second.msg.session_id, nonce);
  }
  wire_(it->second.msg);
  arm_timer(nonce);
}

void ReliableTransport::send(const Message& msg) {
  VKEY_REQUIRE(msg.type != MessageType::kAck,
               "acks are transport-internal; send() takes protocol frames");
  if (completed_.count(msg.nonce) > 0) return;  // peer already acked it
  const auto it = inflight_.find(msg.nonce);
  if (it != inflight_.end()) {
    // Fast retransmit: the session re-elicited this response because the
    // peer asked again, so don't wait for the timer.
    ++stats_.retransmissions;
    arq_counter("retransmissions").add(1);
    if (recorder_ != nullptr) {
      recorder_->record(FlightEventKind::kRetransmit, actor_, "fast",
                        it->second.msg.session_id, msg.nonce);
    }
    wire_(it->second.msg);
    return;
  }
  inflight_[msg.nonce] = Pending{msg, 0, 0};
  ++stats_.data_sent;
  arq_counter("data_sent").add(1);
  wire_(msg);
  arm_timer(msg.nonce);
}

void ReliableTransport::on_wire(const Message& msg) {
  if (msg.type == MessageType::kAck) {
    const auto it = inflight_.find(msg.nonce);
    if (it == inflight_.end()) {
      ++stats_.stale_acks;
      if (recorder_ != nullptr) {
        recorder_->record(FlightEventKind::kStaleAck, actor_, {},
                          msg.session_id, msg.nonce);
      }
      return;
    }
    clock_.cancel(it->second.timer);
    completed_.insert(msg.nonce);
    inflight_.erase(it);
    ++stats_.acks_received;
    arq_counter("acks_received").add(1);
    if (recorder_ != nullptr) {
      recorder_->record(FlightEventKind::kAckRx, actor_, {}, msg.session_id,
                        msg.nonce);
    }
    return;
  }

  VKEY_REQUIRE(static_cast<bool>(upcall_), "transport upcall not installed");
  auto response = upcall_(msg);
  if (!ack_gate_ || ack_gate_()) {
    Message ack;
    ack.type = MessageType::kAck;
    ack.session_id = msg.session_id;
    ack.nonce = msg.nonce;
    wire_(ack);
    ++stats_.acks_sent;
    arq_counter("acks_sent").add(1);
    if (recorder_ != nullptr) {
      recorder_->record(FlightEventKind::kAckTx, actor_,
                        "for " + to_string(msg.type), msg.session_id,
                        msg.nonce);
    }
  }
  if (response.has_value()) send(*response);
}

}  // namespace vkey::protocol
