// Attacker toolkit for the security analysis (paper Sec. V-H).
//
// Eve has full protocol knowledge: the trained models, the Bloom/session
// parameters and everything on the public channel. What she lacks is the
// legitimate channel's small-scale fading. The helpers here implement the
// paper's two evaluated attacks plus the two "handled by construction"
// attacks (MITM, replay) whose rejection the tests verify:
//
//  * Eavesdropping attack: pull y_Bob from the transcript and run the public
//    decoder against Eve's own key material (Fig. 15(a): ~50% agreement).
//  * Imitating attack: drive Eve's channel observations (she followed
//    Alice's route) through the same pipeline (Fig. 15(b)).
//  * MITM: intercept and perturb the syndrome; Alice's MAC check must fail.
//  * Replay: re-inject an old syndrome; the nonce window must reject it.
#pragma once

#include <optional>

#include "common/bitvec.h"
#include "core/reconciler.h"
#include "protocol/channel.h"

namespace vkey::protocol {

/// Extract the first syndrome message from a channel transcript.
std::optional<Message> find_syndrome(const PublicChannel& channel);

/// Eavesdropping attack: Eve decodes y_Bob with her own key material using
/// the public reconciler. Returns her corrected-key guess.
BitVec eavesdrop_attack(const core::AutoencoderReconciler& reconciler,
                        const BitVec& eve_key, const Message& syndrome);

/// Install a MITM interceptor that perturbs every syndrome payload in
/// flight (flips one byte) while passing other traffic through.
void install_syndrome_tamper(PublicChannel& channel);

/// Build a replayed copy of a previously observed message (same nonce —
/// exactly what the replay window must reject).
Message make_replay(const Message& original);

}  // namespace vkey::protocol
