// Gateway-scale multi-session engine.
//
// The paper evaluates one Alice/Bob pair per run; the deployment it targets
// is a roadside gateway establishing keys with thousands of vehicles
// concurrently. GatewayEngine is that gateway: ONE shared SimClock event
// queue drives every session's lifecycle (arrival, admission, establishment
// completion, rekey, eviction), a SessionRegistry enforces admission
// control and owns the per-device state machines, and the heavy per-session
// RF sub-simulations (ARQ, fault injection, reconciliation — the PR-1
// reliability supervisor) run batched through the deterministic parallel
// pool.
//
// Two-level scheduling. Lifecycle events live on the shared gateway
// timeline; each admitted session's radio exchange runs on a *dedicated*
// sub-clock the engine constructs and hands to
// run_reliable_key_agreement_on(). This split is what makes gateway-scale
// parallelism compatible with the bit-exactness contract (DESIGN.md §9):
// an RF exchange depends only on its device's seeds and probe material —
// never on admission time or on other sessions — so exchanges are per-index
// pure and the pool may advance many of them concurrently, in arrival-order
// batches, while the single-threaded lifecycle loop folds their outcomes in
// device order. `threads=1` and `threads=N` produce byte-identical reports
// (CI diffs the bench_gateway snapshots).
//
// Determinism also buys free post-mortems: a failed session re-simulated
// with the same seeds reproduces its exact frame-level history, so the
// engine records nothing at scale (flight recorders off) and regenerates
// bounded per-session flight-recorder timelines for the first few failures
// after the run.
//
// Instrumentation: `gateway.*` counters/gauges (arrivals, admissions,
// keys_established, evictions.idle/failed, rekeys, active/queued/inflight
// session gauges) plus `gateway.time_to_key_ms` / `gateway.queue_wait_ms`
// histograms.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/bitvec.h"
#include "core/reconciler.h"
#include "protocol/key_schedule.h"
#include "protocol/reliability.h"
#include "protocol/session_registry.h"
#include "protocol/sim_clock.h"

namespace vkey::protocol {

struct GatewayConfig {
  std::size_t sessions = 1000;     ///< devices arriving at the gateway
  std::size_t max_inflight = 256;  ///< admission control: concurrent
                                   ///< establishments; the rest queue FIFO
  double arrival_interval_ms = 5.0;  ///< inter-arrival spacing (virtual)
  double idle_timeout_ms = 30'000.0;  ///< evict confirmed sessions idle this
                                      ///< long after their last activity
  double rekey_interval_ms = 10'000.0;  ///< per-session scheduled rekey
                                        ///< period (0 disables rekeying)
  std::size_t max_rekeys = 2;  ///< rekeys per session before it idles out
  std::size_t sim_batch = 256;  ///< RF exchanges simulated per pool batch
                                ///< (arrival order; bounds look-ahead memory)
  std::size_t threads = 0;  ///< pool lanes for the batches (0 = default;
                            ///< 1 = bit-exact sequential reference)
  /// Fault model, ARQ, radio and retry budget of every session's exchange.
  /// `fault.seed`/`arq.seed` are re-derived per device from `seed`;
  /// `flight_capacity` is forced to 0 during the scale run (see
  /// failure_dump_limit) so 100k sessions do not hold 100k event rings.
  ReliabilityConfig reliability;
  std::uint64_t seed = 1;
  /// Post-run flight-recorder timelines regenerated for at most this many
  /// failed sessions (deterministic re-simulation with recording enabled).
  std::size_t failure_dump_limit = 3;
  /// Period of the observer tick on the shared timeline (0 disables). Each
  /// tick invokes the set_tick() callback at a virtual-time grid point —
  /// the hook the telemetry sampler uses to take lane-invariant samples
  /// mid-run. Ticks are ordinary lifecycle events: RF sub-simulation
  /// batches join before any timeline event runs, so the metric totals a
  /// tick observes do not depend on the pool lane count. The final tick
  /// lands on the first grid point at or after the last lifecycle event
  /// (an instrumented run's makespan rounds up to the tick grid).
  double tick_interval_ms = 0.0;
};

/// Scalar outcome of one device's RF exchange (the pure, per-index result
/// the pool computes). `establish_ms` spans all recovery attempts.
struct SessionOutcome {
  bool established = false;
  FailureReason failure = FailureReason::kNone;
  double establish_ms = 0.0;
  std::size_t attempts = 0;
  std::size_t wire_frames = 0;
  std::size_t wire_bytes = 0;  ///< packed v1 frame bytes incl. retx + acks
  std::size_t retransmissions = 0;
  BitVec key;  ///< established 128-bit key; empty on failure
};

struct GatewayReport {
  std::size_t sessions = 0;
  std::size_t established = 0;
  std::size_t failed = 0;
  std::size_t evicted_idle = 0;
  std::size_t evicted_failed = 0;
  std::size_t rekeys = 0;
  std::size_t peak_inflight = 0;
  std::size_t peak_queued = 0;
  double makespan_ms = 0.0;  ///< virtual span until the last eviction
  double establish_span_ms = 0.0;  ///< first arrival -> last establishment
  double keys_per_vsecond = 0.0;   ///< established / establish_span
  double median_time_to_key_ms = 0.0;  ///< arrival -> key, queueing included
  double p95_time_to_key_ms = 0.0;
  double p99_time_to_key_ms = 0.0;
  double mean_queue_wait_ms = 0.0;
  double mean_attempts = 0.0;
  double bytes_per_session = 0.0;  ///< wire bytes per *established* session
  /// Bounded post-mortems: up to failure_dump_limit re-simulated failed
  /// sessions' timelines, each prefixed with its device id.
  std::vector<std::string> failure_dumps;
  std::size_t failures_suppressed = 0;  ///< failed sessions beyond the cap
};

class GatewayEngine {
 public:
  /// Probe material for (device, recovery attempt): the (alice_raw, bob_raw)
  /// pair, each reconciler.key_bits wide. Called from pool lanes — must be
  /// pure per device (read-only shared state, no shared Rng).
  using MaterialFn =
      std::function<std::pair<BitVec, BitVec>(std::uint64_t device,
                                              std::size_t attempt)>;

  /// Optional batched prefetch of *attempt-0* material for a contiguous
  /// device range [first_device, first_device + count). Called on the
  /// lifecycle thread immediately before each sim_batch pool fan-out, so a
  /// predictor-backed source can run one blocked batch inference per
  /// sim_batch instead of one per session. Must return exactly `count`
  /// pairs, and each pair MUST equal material(device, 0) — recovery
  /// attempts (>= 1) and post-run failure re-simulation still go through
  /// MaterialFn, and the determinism contract (byte-identical post-mortems)
  /// relies on the two sources agreeing.
  using BatchMaterialFn = std::function<std::vector<std::pair<BitVec, BitVec>>(
      std::uint64_t first_device, std::size_t count)>;

  GatewayEngine(const GatewayConfig& config,
                const core::AutoencoderReconciler& reconciler,
                MaterialFn material);

  /// Install the batched attempt-0 prefetch (see BatchMaterialFn). Must be
  /// called before run(); pass nullptr to clear.
  void set_batch_material(BatchMaterialFn prefetch);

  /// Install the observer-tick callback (see GatewayConfig::tick_interval_ms).
  /// Runs on the lifecycle thread at each tick's virtual time; it may read
  /// metrics and sample telemetry but must not mutate engine state. Must be
  /// called before run(); pass nullptr to clear.
  void set_tick(std::function<void(double now_ms)> tick);

  /// Drive the full lifecycle of every session to eviction and fold the
  /// report. One-shot: a second call aborts.
  GatewayReport run();

  const SessionRegistry& registry() const noexcept { return registry_; }
  /// The shared gateway timeline ("clock" would shadow the lint's
  /// wall-clock patterns; the name also reads better at call sites).
  const SimClock& timeline() const noexcept { return clock_; }
  /// Per-device RF outcomes (valid for devices simulated so far).
  const std::vector<SessionOutcome>& outcomes() const noexcept {
    return outcomes_;
  }

 private:
  void on_arrival(std::uint64_t device);
  void on_tick();
  void try_admit();
  void on_establishment_done(std::uint64_t device);
  void on_rekey(std::uint64_t device, std::size_t ordinal);
  void arm_idle_eviction(std::uint64_t device);
  /// Simulate devices in arrival order, in pool batches, until `device` has
  /// an outcome.
  void ensure_outcome(std::uint64_t device);
  /// `attempt0` (optional) overrides material for attempt 0 only — the slot
  /// a BatchMaterialFn prefetched for this device.
  SessionOutcome simulate(std::uint64_t device, std::size_t flight_capacity,
                          std::string* dump,
                          const std::pair<BitVec, BitVec>* attempt0) const;
  GatewayReport finalize();

  GatewayConfig cfg_;
  const core::AutoencoderReconciler& reconciler_;
  MaterialFn material_;
  BatchMaterialFn batch_material_;  ///< optional attempt-0 prefetch
  std::function<void(double)> tick_;  ///< optional observer tick
  SimClock clock_;  ///< THE shared gateway timeline
  SessionRegistry registry_;
  std::vector<SessionOutcome> outcomes_;
  std::size_t simulated_ = 0;  ///< outcomes_[0, simulated_) are filled
  /// Live key schedules of confirmed sessions (ratcheted by rekey events,
  /// dropped at eviction) — bounded by the number of concurrently confirmed
  /// sessions, not by the total device count.
  std::map<std::uint64_t, KeySchedule> schedules_;
  double last_establish_ms_ = 0.0;
  bool ran_ = false;
};

/// Eagerly register the gateway.* counters, gauges and histograms, then the
/// whole stack beneath them (register_protocol_metrics). Long-horizon
/// harnesses call this before arming allocation gates so that no instrument
/// is first registered — and heap-counted — mid-measurement.
void register_gateway_metrics();

}  // namespace vkey::protocol
