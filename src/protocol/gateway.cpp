#include "protocol/gateway.h"

#include <algorithm>

#include "common/error.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/rng.h"

namespace vkey::protocol {

namespace {

metrics::Histogram& gw_histogram(const char* name) {
  return metrics::Registry::global().histogram(std::string("gateway.") +
                                               name);
}

/// Session-id space of one device: 16 ids per device leaves room for the
/// supervisor's per-attempt increments without collisions across devices.
std::uint64_t session_id_for(std::uint64_t device) {
  return 1 + (device << 4);
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

GatewayEngine::GatewayEngine(const GatewayConfig& config,
                             const core::AutoencoderReconciler& reconciler,
                             MaterialFn material)
    : cfg_(config),
      reconciler_(reconciler),
      material_(std::move(material)),
      registry_(config.max_inflight),
      outcomes_(config.sessions) {
  VKEY_REQUIRE(cfg_.sessions >= 1, "gateway needs at least one session");
  VKEY_REQUIRE(cfg_.sim_batch >= 1, "simulation batch must be positive");
  VKEY_REQUIRE(cfg_.arrival_interval_ms >= 0.0 && cfg_.idle_timeout_ms > 0.0,
               "arrival spacing must be >= 0 and idle timeout positive");
  VKEY_REQUIRE(static_cast<bool>(material_), "probe material source required");
}

void GatewayEngine::set_batch_material(BatchMaterialFn prefetch) {
  VKEY_REQUIRE(!ran_, "batch material must be installed before run()");
  batch_material_ = std::move(prefetch);
}

void GatewayEngine::set_tick(std::function<void(double)> tick) {
  VKEY_REQUIRE(!ran_, "tick observer must be installed before run()");
  tick_ = std::move(tick);
}

void GatewayEngine::on_tick() {
  tick_(clock_.now_ms());
  // Keep ticking only while other events remain: once the tick is the sole
  // event left, the timeline has quiesced and rescheduling would keep the
  // run alive forever. The executing tick is already off the queue, so
  // pending() counts everything else.
  if (clock_.pending() > 0) {
    clock_.schedule(cfg_.tick_interval_ms, [this] { on_tick(); });
  }
}

SessionOutcome GatewayEngine::simulate(
    std::uint64_t device, std::size_t flight_capacity, std::string* dump,
    const std::pair<BitVec, BitVec>* attempt0) const {
  ReliabilityConfig rcfg = cfg_.reliability;
  // Per-device fault/backoff streams: device k's loss pattern must be
  // independent of device j's and of the lane that simulates it.
  rcfg.fault.seed =
      hash_combine64(hash_combine64(cfg_.seed, 0x6a7eu), device);
  rcfg.arq.seed = hash_combine64(hash_combine64(cfg_.seed, 0xa49u), device);
  rcfg.base_session_id = session_id_for(device);
  rcfg.flight_capacity = flight_capacity;

  // The dedicated sub-clock of this device's RF exchange; constructing it
  // here keeps clock ownership with the gateway scheduler (lint rule
  // `sim-clock-owner`; this file is the sanctioned owner).
  SimClock sub;
  PublicChannel base;
  const AgreementReport report = run_reliable_key_agreement_on(
      sub, base, reconciler_, rcfg,
      [this, device, attempt0](std::size_t attempt) {
        // Recovery attempts (and post-mortem re-simulation, which passes no
        // prefetch) fall back to the per-attempt source.
        if (attempt == 0 && attempt0 != nullptr) return *attempt0;
        return material_(device, attempt);
      });

  SessionOutcome out;
  out.established = report.established;
  out.failure = report.failure;
  out.establish_ms = report.time_to_establish_ms;
  out.attempts = report.attempts;
  out.wire_frames = report.wire_frames;
  out.wire_bytes = report.link.bytes_sent;
  for (const auto& att : report.attempt_log) {
    out.retransmissions += att.alice_transport.retransmissions +
                           att.bob_transport.retransmissions;
  }
  if (report.established) out.key = report.key;
  if (dump != nullptr) *dump = report.failure_dump();
  return out;
}

void GatewayEngine::ensure_outcome(std::uint64_t device) {
  while (simulated_ <= device) {
    const std::size_t begin = simulated_;
    const std::size_t end =
        std::min(cfg_.sessions, begin + cfg_.sim_batch);
    // Batched attempt-0 prefetch (when installed) runs on this thread once
    // per sim_batch, so a predictor-backed source amortizes its blocked
    // batch inference across the whole batch before the pool fans out.
    std::vector<std::pair<BitVec, BitVec>> prefetched;
    if (batch_material_) {
      prefetched = batch_material_(begin, end - begin);
      VKEY_REQUIRE(prefetched.size() == end - begin,
                   "batch material returned wrong count");
    }
    // Arrival-order batches through the pool: each lane writes only its
    // index-owned outcome slot, so the array is bit-identical for any lane
    // count (DESIGN.md §9 contract).
    parallel::parallel_for(
        end - begin,
        [this, begin, &prefetched](std::size_t i) {
          outcomes_[begin + i] =
              simulate(begin + i, 0, nullptr,
                       prefetched.empty() ? nullptr : &prefetched[i]);
        },
        cfg_.threads);
    simulated_ = end;
  }
}

void GatewayEngine::on_arrival(std::uint64_t device) {
  registry_.arrive(device, clock_.now_ms());
  if (device + 1 < cfg_.sessions) {
    clock_.schedule_at(
        cfg_.arrival_interval_ms * static_cast<double>(device + 1),
        [this, next = device + 1] { on_arrival(next); });
  }
  try_admit();
}

void GatewayEngine::try_admit() {
  while (auto admitted = registry_.admit_next(clock_.now_ms())) {
    const std::uint64_t device = *admitted;
    ensure_outcome(device);
    // The exchange's virtual duration is known (it is a function of the
    // device's seeds alone); completion lands on the shared timeline.
    clock_.schedule(outcomes_[device].establish_ms,
                    [this, device] { on_establishment_done(device); });
  }
}

void GatewayEngine::on_establishment_done(std::uint64_t device) {
  const double now = clock_.now_ms();
  const SessionOutcome& out = outcomes_[device];
  if (out.established) {
    registry_.established(device, now);
    last_establish_ms_ = now;
    const DeviceRecord& rec = registry_.record(device);
    gw_histogram("time_to_key_ms").observe(rec.time_to_key_ms());
    gw_histogram("queue_wait_ms").observe(rec.queue_wait_ms());
    // The confirmed session's live key state: rekey events ratchet it on
    // the shared timeline until the session idles out.
    schedules_.emplace(device, KeySchedule(out.key, session_id_for(device),
                                           KeySchedule::Role::kInitiator));
    if (cfg_.rekey_interval_ms > 0.0 && cfg_.max_rekeys > 0) {
      clock_.schedule(cfg_.rekey_interval_ms,
                      [this, device] { on_rekey(device, 1); });
    }
    arm_idle_eviction(device);
  } else {
    registry_.failed(device, now, out.failure);
    registry_.evict(device, now, EvictReason::kFailed);
  }
  try_admit();  // a slot freed either way
}

void GatewayEngine::on_rekey(std::uint64_t device, std::size_t ordinal) {
  if (registry_.record(device).state != DeviceState::kConfirmed) return;
  const double now = clock_.now_ms();
  schedules_.at(device).rekey(now);
  registry_.rekeyed(device, now);
  if (ordinal < cfg_.max_rekeys) {
    clock_.schedule(cfg_.rekey_interval_ms,
                    [this, device, ordinal] { on_rekey(device, ordinal + 1); });
  }
}

void GatewayEngine::arm_idle_eviction(std::uint64_t device) {
  const double due =
      registry_.record(device).last_activity_ms + cfg_.idle_timeout_ms;
  clock_.schedule_at(due, [this, device] {
    const DeviceRecord& rec = registry_.record(device);
    if (rec.state != DeviceState::kConfirmed) return;
    if (clock_.now_ms() >= rec.last_activity_ms + cfg_.idle_timeout_ms) {
      schedules_.erase(device);
      registry_.evict(device, clock_.now_ms(), EvictReason::kIdle);
    } else {
      // Rekeys (or traffic) refreshed the session after this check was
      // armed; re-arm for the new deadline.
      arm_idle_eviction(device);
    }
  });
}

GatewayReport GatewayEngine::run() {
  VKEY_REQUIRE(!ran_, "GatewayEngine::run() is one-shot");
  ran_ = true;
  clock_.schedule_at(0.0, [this] { on_arrival(0); });
  if (tick_ && cfg_.tick_interval_ms > 0.0) {
    clock_.schedule(cfg_.tick_interval_ms, [this] { on_tick(); });
  }
  // Runaway guard far above need: every session costs O(1) lifecycle events
  // (arrival, admission, completion, <= max_rekeys rekeys, idle checks).
  std::size_t cap = cfg_.sessions * (cfg_.max_rekeys + 8) + 1024;
  if (tick_ && cfg_.tick_interval_ms > 0.0) {
    // Observer ticks add makespan / interval events; bound the makespan by
    // the arrival span plus a generous per-session tail (establishments,
    // rekeys, the idle timeout). A too-low guess still fails loudly via the
    // quiesce check below, never silently.
    const double span_bound =
        cfg_.arrival_interval_ms * static_cast<double>(cfg_.sessions) +
        cfg_.idle_timeout_ms * 4.0 +
        cfg_.rekey_interval_ms * static_cast<double>(cfg_.max_rekeys) +
        60'000.0;
    cap += static_cast<std::size_t>(span_bound / cfg_.tick_interval_ms) + 64;
  }
  clock_.run_until_idle(cap);
  VKEY_REQUIRE(registry_.queued() == 0 && registry_.establishing() == 0 &&
                   registry_.confirmed_active() == 0,
               "gateway timeline quiesced with live sessions (event cap "
               "too low or a lifecycle leak)");
  return finalize();
}

GatewayReport GatewayEngine::finalize() {
  const RegistryStats& rs = registry_.stats();
  GatewayReport rep;
  rep.sessions = cfg_.sessions;
  rep.established = rs.established;
  rep.failed = rs.failures;
  rep.evicted_idle = rs.evicted_idle;
  rep.evicted_failed = rs.evicted_failed;
  rep.rekeys = rs.rekeys;
  rep.peak_inflight = rs.peak_inflight;
  rep.peak_queued = rs.peak_queued;
  rep.makespan_ms = clock_.now_ms();
  rep.establish_span_ms = last_establish_ms_;
  if (last_establish_ms_ > 0.0 && rs.established > 0) {
    rep.keys_per_vsecond = static_cast<double>(rs.established) /
                           (last_establish_ms_ / 1000.0);
  }

  std::vector<double> ttk;
  ttk.reserve(rs.established);
  double wait_sum = 0.0;
  std::size_t attempts = 0, established_bytes = 0;
  for (std::uint64_t d = 0; d < cfg_.sessions; ++d) {
    const DeviceRecord& rec = registry_.record(d);
    wait_sum += rec.queue_wait_ms();
    attempts += outcomes_[d].attempts;
    if (rec.time_to_key_ms() >= 0.0) {
      ttk.push_back(rec.time_to_key_ms());
      established_bytes += outcomes_[d].wire_bytes;
    }
  }
  std::sort(ttk.begin(), ttk.end());
  rep.median_time_to_key_ms = percentile(ttk, 0.5);
  rep.p95_time_to_key_ms = percentile(ttk, 0.95);
  rep.p99_time_to_key_ms = percentile(ttk, 0.99);
  rep.mean_queue_wait_ms = wait_sum / static_cast<double>(cfg_.sessions);
  rep.mean_attempts =
      static_cast<double>(attempts) / static_cast<double>(cfg_.sessions);
  if (rs.established > 0) {
    rep.bytes_per_session = static_cast<double>(established_bytes) /
                            static_cast<double>(rs.established);
  }

  // Bounded post-mortems: determinism makes recording free after the fact —
  // re-simulating a failed device with the same seeds replays its exact
  // frame history, this time with the flight recorder on.
  std::size_t failed_seen = 0;
  for (std::uint64_t d = 0; d < cfg_.sessions; ++d) {
    if (outcomes_[d].established) continue;
    ++failed_seen;
    if (rep.failure_dumps.size() >= cfg_.failure_dump_limit) continue;
    const std::size_t capacity = cfg_.reliability.flight_capacity > 0
                                     ? cfg_.reliability.flight_capacity
                                     : 512;
    std::string dump;
    simulate(d, capacity, &dump, nullptr);
    rep.failure_dumps.push_back("device " + std::to_string(d) + ": " + dump);
  }
  rep.failures_suppressed = failed_seen - rep.failure_dumps.size();
  return rep;
}

void register_gateway_metrics() {
  auto& reg = metrics::Registry::global();
  for (const char* n :
       {"arrivals", "admissions", "keys_established", "establish_failures",
        "rekeys", "evictions.idle", "evictions.failed"}) {
    reg.counter(std::string("gateway.") + n);
  }
  reg.gauge("gateway.inflight_sessions");
  reg.gauge("gateway.queued_sessions");
  reg.gauge("gateway.active_sessions");
  gw_histogram("time_to_key_ms");
  gw_histogram("queue_wait_ms");
  register_protocol_metrics();
}

}  // namespace vkey::protocol
