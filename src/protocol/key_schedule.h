// Session key schedule: HKDF extract/expand over the privacy-amplified
// secret, key confirmation as a wire-frame round trip, and scheduled
// rekeying on virtual time.
//
// The paper's protocol (Sec. IV) ends at privacy amplification: both
// parties hold one 128-bit secret. A deployable link needs more — keys age
// out mid-drive, and one symmetric secret must never be used raw for both
// directions and both purposes. This module finishes the lifecycle:
//
//   amplified secret (epoch 0)
//        | HKDF-Extract(salt = "vkey/wire/v1" || be64(session) || be32(epoch))
//        v
//       PRK ── HKDF-Expand ──> "vkey v1 a2b enc"   (16 B, AES-128-CTR A->B)
//         ├──────────────────> "vkey v1 a2b mac"   (32 B, HMAC-SHA256 A->B)
//         ├──────────────────> "vkey v1 a2b nonce" ( 8 B, CTR nonce base)
//         ├──────────────────> "vkey v1 b2a enc" / "b2a mac" / "b2a nonce"
//         ├──────────────────> "vkey v1 confirm"   (32 B, confirmation key)
//         └──────────────────> "vkey v1 ratchet"   (32 B, epoch e+1 secret)
//
// Directional keys make reflected traffic self-evidently bogus; per-epoch
// extraction with the epoch in the salt cryptographically separates
// generations; the ratchet discards the old secret at each rekey, so a
// compromise of epoch e keys does not unwind earlier epochs.
//
// Key confirmation is an explicit frame round trip over the wire codec: the
// initiator sends a kKeyConfirm frame tagged with HMAC(confirm_key,
// transcript || role), the responder verifies and answers kKeyConfirmAck
// under its own role tag. Both tags bind the epoch, session id and frame
// header, so confirming proves live possession of this epoch's schedule —
// not a replay of an earlier one.
//
// Rekeying is driven by virtual time (RekeyTimer on the SimClock — wall
// clocks are banned in library code). Old-epoch keys stay valid for a
// configurable grace window so frames sealed just before a rekey still
// authenticate just after it; a peer that rekeys first is caught up with by
// one epoch (fast-forward) after its frame authenticates under the
// candidate keys, never before.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/bitvec.h"
#include "crypto/secret_buffer.h"
#include "protocol/message.h"
#include "protocol/sim_clock.h"

namespace vkey::protocol {

class UnreliableChannel;

/// One direction's traffic keys for one epoch. All key material lives in
/// zeroizing SecretBuffers (crypto/secret_buffer.h): wiped on destruction,
/// unstreamable, unserializable — the secret-flow analyzer audits the few
/// expose() sites instead of every use.
struct DirectionKeys {
  crypto::SecretBuffer enc;  ///< 16-byte AES-128-CTR key
  crypto::SecretBuffer mac;  ///< 32-byte HMAC-SHA256 key
  std::uint64_t nonce_base = 0;  ///< CTR nonce domain separator
};

/// Everything one epoch derives from its secret.
struct EpochKeys {
  std::uint32_t epoch = 0;
  DirectionKeys a2b;             ///< initiator -> responder
  DirectionKeys b2a;             ///< responder -> initiator
  crypto::SecretBuffer confirm;  ///< 32-byte key-confirmation key
};

/// Derive the full key set of one epoch from its secret (the HKDF label
/// schedule in the header comment). Deterministic: both parties derive
/// identical keys from the agreed secret.
EpochKeys derive_epoch_keys(std::span<const std::uint8_t> secret,
                            std::uint64_t session_id, std::uint32_t epoch);
inline EpochKeys derive_epoch_keys(const crypto::SecretBuffer& secret,
                                   std::uint64_t session_id,
                                   std::uint32_t epoch) {
  return derive_epoch_keys(secret.expose(), session_id, epoch);
}

/// The ratchet: epoch `next_epoch`'s secret from its predecessor's. One-way
/// (HKDF), so discarding the old secret gives forward secrecy across
/// rekeys.
crypto::SecretBuffer ratchet_secret(std::span<const std::uint8_t> secret,
                                    std::uint64_t session_id,
                                    std::uint32_t next_epoch);
inline crypto::SecretBuffer ratchet_secret(const crypto::SecretBuffer& secret,
                                           std::uint64_t session_id,
                                           std::uint32_t next_epoch) {
  return ratchet_secret(secret.expose(), session_id, next_epoch);
}

/// Full key lifecycle state of one endpoint after establishment.
class KeySchedule {
 public:
  enum class Role : std::uint8_t { kInitiator, kResponder };

  struct Policy {
    double rekey_interval_ms = 60'000.0;  ///< scheduled rekey period
    double grace_ms = 2'000.0;  ///< old-epoch acceptance window after rekey
  };

  struct Stats {
    std::size_t rekeys = 0;         ///< epochs advanced (incl. fast-forwards)
    std::size_t fast_forwards = 0;  ///< advances triggered by the peer
    std::size_t sealed = 0;
    std::size_t opened = 0;         ///< frames authenticated and decrypted
    std::size_t grace_opens = 0;    ///< opened under the previous epoch
    std::size_t epoch_rejects = 0;  ///< epoch outside current-1..current+1
    std::size_t mac_rejects = 0;    ///< authentication failures
    std::size_t malformed = 0;      ///< missing/short epoch prefix etc.
  };

  /// `amplified_secret` is the established 128-bit key (session.h). Both
  /// parties must agree on `session_id`; `role` picks the send direction.
  KeySchedule(const BitVec& amplified_secret, std::uint64_t session_id,
              Role role);
  KeySchedule(const BitVec& amplified_secret, std::uint64_t session_id,
              Role role, Policy policy);

  std::uint32_t epoch() const noexcept { return current_.epoch; }
  const EpochKeys& keys() const noexcept { return current_; }
  std::uint64_t session_id() const noexcept { return session_id_; }
  Role role() const noexcept { return role_; }
  const Policy& policy() const noexcept { return policy_; }
  const Stats& stats() const noexcept { return stats_; }

  /// True once the scheduled interval has elapsed since the last advance.
  bool rekey_due(double now_ms) const noexcept;

  /// Virtual time of the last epoch advance (0 until the first rekey).
  double last_rekey_ms() const noexcept { return last_rekey_ms_; }

  /// Advance one epoch: ratchet the secret, re-derive keys, keep the old
  /// epoch openable until now + grace_ms.
  void rekey(double now_ms);

  // -------------------------------------------------- key confirmation
  // The initiator's tag rides a kKeyConfirm frame, the responder's a
  // kKeyConfirmAck; each tag is HMAC(confirm_key, header || be32(epoch) ||
  // role byte), so neither side can reflect the other's tag back.

  Message make_confirm(std::uint64_t nonce) const;
  /// Verify the *peer's* confirmation frame for the current epoch.
  bool verify_confirm(const Message& msg) const;

  // ---------------------------------------------------- data protection

  /// Seal plaintext into a kData frame under the current epoch's send
  /// direction: payload = be32(epoch) || AES-128-CTR ciphertext, MAC over
  /// the full header+payload.
  Message seal(std::uint64_t nonce, const std::vector<std::uint8_t>& plain);

  /// Authenticate and decrypt. Routes by the epoch prefix: current epoch,
  /// previous epoch within the grace window, or — when the peer rekeyed
  /// first — the next epoch, adopted only after the frame authenticates
  /// under the candidate keys (a forged epoch number cannot wedge the
  /// schedule). Returns nullopt on any reject, counted in stats().
  std::optional<std::vector<std::uint8_t>> open(const Message& msg,
                                                double now_ms);

 private:
  const DirectionKeys& send_keys(const EpochKeys& e) const noexcept {
    return role_ == Role::kInitiator ? e.a2b : e.b2a;
  }
  const DirectionKeys& recv_keys(const EpochKeys& e) const noexcept {
    return role_ == Role::kInitiator ? e.b2a : e.a2b;
  }

  std::uint64_t session_id_;
  Role role_;
  Policy policy_;
  crypto::SecretBuffer secret_;  ///< current epoch's secret (zeroizing)
  EpochKeys current_;
  std::optional<EpochKeys> previous_;
  double previous_expires_ms_ = 0.0;
  double last_rekey_ms_ = 0.0;
  Stats stats_;
};

/// Scheduled re-establishment on virtual time: arms a SimClock event every
/// rekey_interval_ms; each firing advances the schedule (unless the peer
/// already fast-forwarded it, in which case the timer just re-arms for the
/// remainder) and invokes `on_rekey(new_epoch)` so the owner can announce
/// the epoch on the wire.
class RekeyTimer {
 public:
  RekeyTimer(SimClock& clock, KeySchedule& schedule,
             std::function<void(std::uint32_t)> on_rekey = {});
  ~RekeyTimer();

  RekeyTimer(const RekeyTimer&) = delete;
  RekeyTimer& operator=(const RekeyTimer&) = delete;

  void start();
  void stop();
  std::size_t fired() const noexcept { return fired_; }

 private:
  void arm(double delay_ms);

  SimClock& clock_;
  KeySchedule& schedule_;
  std::function<void(std::uint32_t)> on_rekey_;
  SimClock::EventId pending_ = 0;
  bool running_ = false;
  std::size_t fired_ = 0;
};

/// Outcome of driving the confirmation round trip over a lossy link.
struct ConfirmReport {
  bool confirmed = false;       ///< initiator verified the responder's tag
  std::size_t transmissions = 0;  ///< confirm frames the initiator sent
  double duration_ms = 0.0;     ///< virtual time the round trip consumed
};

/// Key confirmation as a frame round trip over the (faulty) link: the
/// initiator's confirm is retransmitted on a simple timeout until the
/// responder's ack authenticates or `max_transmissions` is exhausted. The
/// responder answers every valid confirm (retransmitted acks are how a
/// lost ack heals). Installs its own link handlers; callers re-install
/// theirs afterwards.
ConfirmReport run_key_confirmation(SimClock& clock, UnreliableChannel& link,
                                   KeySchedule& initiator,
                                   KeySchedule& responder,
                                   std::size_t max_transmissions = 8,
                                   std::uint64_t nonce_base = 1'000'000);

}  // namespace vkey::protocol
