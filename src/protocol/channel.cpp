#include "protocol/channel.h"

namespace vkey::protocol {

void PublicChannel::send(const Message& msg) {
  transcript_.push_back(msg);
  if (interceptor_) {
    auto delivered = interceptor_(msg);
    if (!delivered.has_value()) return;  // dropped
    queue_.push_back(std::move(*delivered));
    return;
  }
  queue_.push_back(msg);
}

std::optional<Message> PublicChannel::receive() {
  if (queue_.empty()) return std::nullopt;
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  return msg;
}

void PublicChannel::set_interceptor(Interceptor interceptor) {
  interceptor_ = std::move(interceptor);
}

void PublicChannel::inject(const Message& msg) { queue_.push_back(msg); }

}  // namespace vkey::protocol
