// Fault-injecting decorator over PublicChannel.
//
// Real SX127x links drop, duplicate, reorder and corrupt frames, and every
// frame occupies the air for a duration given by the LoRa PHY timing
// formulas. UnreliableChannel models all of that on top of the existing
// PublicChannel (which keeps the eavesdropper transcript and the active-
// attacker interceptor hook): each send() passes through the base channel
// first — so Eve's view and MITM interception are unchanged — and is then
// subjected to a seeded fault model before being delivered to the far
// endpoint through the SimClock:
//
//   * drop:        frame lost with probability drop_prob;
//   * corruption:  1..3 random bit flips in the *packed wire frame*
//                  (protocol/wire.h) with probability corrupt_prob; a frame
//                  the codec rejects counts as lost, with the typed
//                  WireError recorded in the flight recorder — the frame
//                  CRC32 catches almost all damage, the protocol MAC
//                  catches the rest;
//   * latency:     time-on-air of the packed wire frame (channel::LoRaPhy)
//                  plus a fixed processing delay;
//   * reordering:  extra uniform delay in [0, reorder_window_ms] with
//                  probability reorder_prob, letting later frames overtake;
//   * duplication: a second copy delivered dup_delay_ms later with
//                  probability dup_prob.
#pragma once

#include <cstdint>
#include <functional>

#include "channel/lora_phy.h"
#include "common/rng.h"
#include "protocol/channel.h"
#include "protocol/sim_clock.h"

namespace vkey::protocol {

class FlightRecorder;

/// Seeded fault model parameters (probabilities in [0, 1]).
struct FaultConfig {
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  double corrupt_prob = 0.0;
  double reorder_prob = 0.0;
  double reorder_window_ms = 400.0;  ///< max extra delay for reordered frames
  double dup_delay_ms = 150.0;       ///< echo delay of a duplicated frame
  double processing_delay_ms = 5.0;  ///< rx chain latency on top of airtime
  std::uint64_t seed = 1;
};

struct LinkStats {
  std::size_t sent = 0;       ///< frames handed to the link
  std::size_t bytes_sent = 0;  ///< packed wire bytes put on the air (v1
                               ///< frames, retransmissions and acks included)
  std::size_t delivered = 0;  ///< frames that reached the far endpoint
  std::size_t dropped = 0;    ///< lost to the drop fault
  std::size_t corrupted = 0;  ///< frames with injected bit errors
  std::size_t crc_lost = 0;   ///< corrupted frames the wire codec rejected
  std::size_t duplicated = 0;
  std::size_t reordered = 0;
};

/// A two-endpoint lossy link. Endpoint 0 is Alice's radio, endpoint 1 Bob's;
/// send(from, msg) delivers to the opposite endpoint's handler via the
/// virtual clock.
class UnreliableChannel {
 public:
  enum class Endpoint : int { kAlice = 0, kBob = 1 };
  using Handler = std::function<void(const Message&)>;

  UnreliableChannel(SimClock& clock, PublicChannel& base,
                    const FaultConfig& faults,
                    const channel::LoRaParams& radio);

  void set_handler(Endpoint endpoint, Handler handler);

  /// Attach a flight recorder: every tx/rx and every injected fault is
  /// logged with the frame's type and nonce. Pass nullptr to detach. The
  /// recorder must outlive the channel (the supervisor owns both).
  void set_recorder(FlightRecorder* recorder) { recorder_ = recorder; }

  void send(Endpoint from, const Message& msg);

  /// Time-on-air [ms] of `msg` serialized onto the configured radio.
  double airtime_ms(const Message& msg) const;

  /// One-way delivery latency [ms] excluding fault-induced extra delay.
  double nominal_latency_ms(const Message& msg) const;

  const LinkStats& stats() const { return stats_; }
  const FaultConfig& faults() const { return faults_; }

 private:
  void deliver(Endpoint to, const Message& msg, double delay_ms);

  SimClock& clock_;
  PublicChannel& base_;
  FaultConfig faults_;
  channel::LoRaParams radio_;
  vkey::Rng rng_;
  Handler handlers_[2];
  LinkStats stats_;
  FlightRecorder* recorder_ = nullptr;
};

}  // namespace vkey::protocol
