// Per-device session registry for the gateway engine.
//
// A roadside gateway juggles thousands of vehicles: each device owns a
// lifecycle state machine
//
//   kQueued ──admit──> kEstablishing ──success──> kConfirmed ──idle──> kEvicted
//                         │                          │ rekey (stays)
//                         └──failure──> kFailed ─────┴──────────────> kEvicted
//
// and the registry is the single authority over those transitions: it
// enforces admission control (at most `max_inflight` sessions establishing
// concurrently; arrivals beyond that wait in a FIFO queue), validates every
// transition (an illegal one is a programming error and aborts), tracks the
// per-device timestamps the gateway report is built from, and feeds the
// `gateway.*` metrics instruments. It holds no clock and schedules nothing —
// the GatewayEngine drives it from the shared SimClock timeline and passes
// `now_ms` into every mutation, which keeps the registry trivially testable.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "protocol/reliability.h"

namespace vkey::protocol {

enum class DeviceState : std::uint8_t {
  kQueued,        ///< arrived, waiting for an establishment slot
  kEstablishing,  ///< admitted; the RF exchange is in flight
  kConfirmed,     ///< holds an established (and confirmed) session key
  kFailed,        ///< establishment failed terminally
  kEvicted,       ///< removed from the active set (idle or failed)
};

std::string to_string(DeviceState s);

/// Why a device left the active set.
enum class EvictReason : std::uint8_t {
  kIdle,    ///< confirmed session aged out without activity
  kFailed,  ///< establishment failure
};

std::string to_string(EvictReason r);

/// Lifecycle record of one device. Timestamps are gateway virtual time
/// [ms]; -1 marks "not reached".
struct DeviceRecord {
  std::uint64_t device_id = 0;
  DeviceState state = DeviceState::kQueued;
  double arrival_ms = 0.0;
  double admitted_ms = -1.0;
  double established_ms = -1.0;
  double evicted_ms = -1.0;
  double last_activity_ms = 0.0;  ///< advanced by establish/rekey/touch
  std::size_t rekeys = 0;
  FailureReason failure = FailureReason::kNone;
  std::optional<EvictReason> evict_reason;

  /// Queue wait: admission minus arrival (0 until admitted).
  double queue_wait_ms() const {
    return admitted_ms < 0.0 ? 0.0 : admitted_ms - arrival_ms;
  }
  /// Time-to-key under contention: establishment minus *arrival*, so the
  /// admission queue is part of the latency a vehicle experiences.
  double time_to_key_ms() const {
    return established_ms < 0.0 ? -1.0 : established_ms - arrival_ms;
  }
};

/// Aggregate counters the registry maintains as transitions happen.
struct RegistryStats {
  std::size_t arrivals = 0;
  std::size_t admissions = 0;
  std::size_t established = 0;
  std::size_t failures = 0;
  std::size_t evicted_idle = 0;
  std::size_t evicted_failed = 0;
  std::size_t rekeys = 0;
  std::size_t peak_inflight = 0;  ///< max concurrent kEstablishing
  std::size_t peak_queued = 0;    ///< max admission-queue depth
};

class SessionRegistry {
 public:
  /// `max_inflight` caps concurrent establishments (>= 1).
  explicit SessionRegistry(std::size_t max_inflight);

  // ------------------------------------------------------------ lifecycle

  /// A device arrives and joins the admission queue (kQueued). Device ids
  /// are dense: the i-th arrival must carry id i.
  DeviceRecord& arrive(std::uint64_t device_id, double now_ms);

  /// Admit the next queued device if a slot is free: FIFO order, at most
  /// max_inflight concurrently establishing. Returns the admitted id.
  std::optional<std::uint64_t> admit_next(double now_ms);

  /// kEstablishing -> kConfirmed: the RF exchange delivered a key.
  void established(std::uint64_t device_id, double now_ms);

  /// kEstablishing -> kFailed: terminal establishment failure.
  void failed(std::uint64_t device_id, double now_ms, FailureReason reason);

  /// A confirmed session rekeyed; counts and refreshes last activity.
  void rekeyed(std::uint64_t device_id, double now_ms);

  /// Any traffic on a confirmed session refreshes last activity.
  void touch(std::uint64_t device_id, double now_ms);

  /// kConfirmed/kFailed -> kEvicted. Confirmed sessions evict as kIdle,
  /// failed ones as kFailed; passing a mismatched reason aborts.
  void evict(std::uint64_t device_id, double now_ms, EvictReason reason);

  // -------------------------------------------------------------- queries

  const DeviceRecord& record(std::uint64_t device_id) const;
  std::size_t size() const noexcept { return records_.size(); }
  std::size_t queued() const noexcept { return queue_.size(); }
  std::size_t establishing() const noexcept { return inflight_; }
  /// Confirmed sessions not yet evicted (the gateway's active key table).
  std::size_t confirmed_active() const noexcept { return confirmed_active_; }
  std::size_t max_inflight() const noexcept { return max_inflight_; }
  bool slot_free() const noexcept { return inflight_ < max_inflight_; }
  const RegistryStats& stats() const noexcept { return stats_; }

 private:
  DeviceRecord& mutable_record(std::uint64_t device_id);
  void update_gauges();

  std::size_t max_inflight_;
  std::vector<DeviceRecord> records_;  ///< indexed by dense device id
  std::deque<std::uint64_t> queue_;    ///< FIFO admission queue
  std::size_t inflight_ = 0;
  std::size_t confirmed_active_ = 0;
  RegistryStats stats_;
};

}  // namespace vkey::protocol
