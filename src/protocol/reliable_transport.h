// ARQ transport: per-message ACKs, timeouts, bounded retransmission with
// exponential backoff + decorrelated jitter.
//
// Each protocol frame a party sends is tracked until the peer's transport
// acknowledges it with a kAck frame carrying the same (session, nonce).
// Retransmissions reuse the original nonce, so the receiving session's
// duplicate cache (InboundGuard) recognizes them and re-elicits the prior
// response instead of tripping the replay defense. The transport only ACKs
// frames the session accepted or recognized as duplicates — a frame
// rejected for arriving out of order (kBadState / kReplayedNonce) is left
// unacknowledged so the sender's retransmission can deliver it again once
// the earlier frames have landed.
//
// The retransmission timer for attempt k fires after
//   rtt_estimate(msg) + backoff(k)
// where backoff(k) ~ Uniform[base, min(cap, base * factor^k)] — exponential
// growth with decorrelated jitter, so colliding retransmitters desynchronize
// (attempt 0 is exactly `base`: the interval is degenerate). After
// max_retries unacknowledged retransmissions the transport gives up and
// reports exhaustion; session recovery is the supervisor's job (see
// reliability.h).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "common/rng.h"
#include "protocol/message.h"
#include "protocol/sim_clock.h"

namespace vkey::protocol {

class FlightRecorder;

struct ArqConfig {
  double base_backoff_ms = 100.0;  ///< backoff floor (attempt 0 delay)
  double max_backoff_ms = 4000.0;  ///< backoff cap
  double backoff_factor = 2.0;     ///< exponential growth per attempt
  std::size_t max_retries = 8;     ///< retransmissions beyond the first tx
  std::uint64_t seed = 7;          ///< jitter stream seed
};

/// Retry delay for the given attempt (0-based): a draw from
/// Uniform[base, min(cap, base * factor^attempt)]. Deterministic for a
/// given rng state; exposed as a free function for the property tests.
double arq_backoff_delay_ms(const ArqConfig& cfg, std::size_t attempt,
                            vkey::Rng& rng);

struct TransportStats {
  std::size_t data_sent = 0;        ///< distinct frames first-transmitted
  std::size_t retransmissions = 0;  ///< timer- and duplicate-driven resends
  std::size_t acks_sent = 0;
  std::size_t acks_received = 0;
  std::size_t stale_acks = 0;  ///< acks for frames not (or no longer) in flight
  std::size_t gave_up = 0;     ///< frames abandoned after max_retries
};

class ReliableTransport {
 public:
  /// Raw transmit into the (lossy) link.
  using WireFn = std::function<void(const Message&)>;
  /// Estimated round trip [ms] for a frame (its airtime + the ack's, plus
  /// processing); the retransmission timer waits this long before backoff.
  using RttFn = std::function<double(const Message&)>;
  /// Upcall delivering an in-order frame to the session; the returned
  /// response (if any) is sent reliably in turn.
  using UpcallFn = std::function<std::optional<Message>(const Message&)>;
  /// Whether the session accepted the frame just upcalled (or recognized it
  /// as a benign duplicate) — controls whether the transport ACKs it.
  using AckGateFn = std::function<bool()>;

  ReliableTransport(SimClock& clock, const ArqConfig& config, WireFn wire,
                    RttFn rtt);

  void set_upcall(UpcallFn upcall, AckGateFn ack_gate);

  /// Attach a flight recorder; `actor` names this endpoint in the timeline
  /// ("alice"/"bob"). Retransmissions, backoff arming, ack traffic and
  /// exhaustion are logged. Pass nullptr to detach.
  void set_recorder(FlightRecorder* recorder, std::string actor);

  /// Reliable send: transmit now and retransmit on timeout until acked or
  /// the retry budget is exhausted. Re-sending a frame already in flight
  /// (a session re-eliciting its cached response) triggers an immediate
  /// fast retransmission instead of a new tracking entry.
  void send(const Message& msg);

  /// Entry point for every frame arriving from the link.
  void on_wire(const Message& msg);

  /// True once any frame ran out of retries (the session attempt is dead).
  bool exhausted() const { return exhausted_; }

  const TransportStats& stats() const { return stats_; }
  const ArqConfig& config() const { return cfg_; }

 private:
  struct Pending {
    Message msg;
    std::size_t attempt = 0;
    SimClock::EventId timer = 0;
  };

  void arm_timer(std::uint64_t nonce);
  void on_timeout(std::uint64_t nonce);

  SimClock& clock_;
  ArqConfig cfg_;
  WireFn wire_;
  RttFn rtt_;
  UpcallFn upcall_;
  AckGateFn ack_gate_;
  vkey::Rng rng_;
  std::map<std::uint64_t, Pending> inflight_;  // keyed by frame nonce
  std::set<std::uint64_t> completed_;          // acked frame nonces
  TransportStats stats_;
  bool exhausted_ = false;
  FlightRecorder* recorder_ = nullptr;
  std::string actor_;
};

}  // namespace vkey::protocol
