#include "protocol/message.h"

#include <cstring>

#include "common/error.h"

namespace vkey::protocol {

namespace {

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (56 - 8 * i)));
  }
}

std::optional<std::uint64_t> get_u64(std::span<const std::uint8_t> bytes,
                                     std::size_t& off) {
  if (off + 8 > bytes.size()) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | bytes[off++];
  return v;
}

}  // namespace

std::string to_string(MessageType t) {
  switch (t) {
    case MessageType::kKeyGenRequest: return "key-gen-request";
    case MessageType::kKeyGenAccept: return "key-gen-accept";
    case MessageType::kSyndrome: return "syndrome";
    case MessageType::kKeyConfirm: return "key-confirm";
    case MessageType::kKeyConfirmAck: return "key-confirm-ack";
    case MessageType::kData: return "data";
    case MessageType::kAck: return "ack";
    case MessageType::kRekey: return "rekey";
  }
  return "?";
}

std::vector<std::uint8_t> mac_input(const Message& msg) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(msg.type));
  put_u64(out, msg.session_id);
  put_u64(out, msg.nonce);
  put_u64(out, msg.payload.size());
  out.insert(out.end(), msg.payload.begin(), msg.payload.end());
  return out;
}

std::vector<std::uint8_t> serialize(const Message& msg) {
  std::vector<std::uint8_t> out = mac_input(msg);
  put_u64(out, msg.mac.size());
  out.insert(out.end(), msg.mac.begin(), msg.mac.end());
  return out;
}

std::optional<Message> deserialize(std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  if (bytes.empty()) return std::nullopt;
  Message msg;
  const std::uint8_t type = bytes[off++];
  if (type < 1 || type > kMaxMessageType) return std::nullopt;
  msg.type = static_cast<MessageType>(type);

  const auto session = get_u64(bytes, off);
  const auto nonce = get_u64(bytes, off);
  const auto payload_len = get_u64(bytes, off);
  if (!session || !nonce || !payload_len) return std::nullopt;
  msg.session_id = *session;
  msg.nonce = *nonce;
  // Bound the claimed length by policy first, then by the buffer — and
  // compare as `len > size - off` so a near-2^64 forged length cannot wrap
  // the addition and sneak past the check.
  if (*payload_len > kMaxPayloadBytes) return std::nullopt;
  if (*payload_len > bytes.size() - off) return std::nullopt;
  msg.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(off),
                     bytes.begin() +
                         static_cast<std::ptrdiff_t>(off + *payload_len));
  off += *payload_len;

  const auto mac_len = get_u64(bytes, off);
  if (!mac_len) return std::nullopt;
  if (*mac_len > kMaxMacBytes) return std::nullopt;
  if (*mac_len != bytes.size() - off) return std::nullopt;
  msg.mac.assign(bytes.begin() + static_cast<std::ptrdiff_t>(off),
                 bytes.end());
  return msg;
}

std::vector<std::uint8_t> pack_doubles(std::span<const double> values) {
  std::vector<std::uint8_t> out(values.size() * sizeof(double));
  std::memcpy(out.data(), values.data(), out.size());
  return out;
}

std::vector<double> unpack_doubles(std::span<const std::uint8_t> bytes) {
  VKEY_REQUIRE(bytes.size() % sizeof(double) == 0,
               "payload is not a double vector");
  std::vector<double> out(bytes.size() / sizeof(double));
  std::memcpy(out.data(), bytes.data(), bytes.size());
  return out;
}

}  // namespace vkey::protocol
