// Alice/Bob key-agreement session state machines.
//
// Sequence (after channel probing has produced each side's raw key bits):
//   Alice -> Bob : KeyGenRequest(session, nonce)
//   Bob   -> Alice: KeyGenAccept(session, nonce+1)
//   Bob   -> Alice: Syndrome { y_Bob, MAC(K_Bob, header||y_Bob) }
//   Alice        : reconcile; MAC verifies only if her corrected key equals
//                  Bob's (MITM modification or a failed correction aborts)
//   Alice -> Bob : KeyConfirm { H(final || session || "A") }
//   Bob   -> Alice: KeyConfirmAck { H(final || session || "B") }
// Replay defense: both sides track the highest nonce seen per session and
// reject non-increasing nonces or mismatched session ids (Sec. IV-C).
//
// After confirmation both sides hold the privacy-amplified 128-bit session
// key; SecureLink wraps it for AES-128-CTR + HMAC payload protection.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "common/bitvec.h"
#include "core/privacy.h"
#include "core/reconciler.h"
#include "protocol/channel.h"

namespace vkey::protocol {

enum class SessionState : std::uint8_t {
  kIdle,
  kAwaitAccept,
  kAwaitSyndrome,
  kAwaitConfirm,
  kAwaitConfirmAck,
  kEstablished,
  kFailed,
};

/// Why a message was rejected (for diagnostics and the attack benches).
enum class RejectReason : std::uint8_t {
  kNone,
  kBadSession,
  kReplayedNonce,
  kMacMismatch,
  kBadState,
  kMalformed,
  kConfirmMismatch,
};

std::string to_string(SessionState s);
std::string to_string(RejectReason r);

struct SessionConfig {
  std::uint64_t session_id = 1;
  std::size_t final_key_bits = 128;
};

class BobSession {
 public:
  /// `raw_key` is Bob's quantized key material (reconciler.key_bits wide).
  BobSession(const SessionConfig& config,
             const core::AutoencoderReconciler& reconciler, BitVec raw_key);

  /// Feed an inbound message; returns the response to transmit, if any.
  std::optional<Message> handle(const Message& msg);

  /// Build the syndrome message { y_Bob, MAC(K_Bob, header||y_Bob) }.
  /// Valid once the session has been accepted (state kAwaitConfirm).
  Message make_syndrome();

  SessionState state() const { return state_; }
  RejectReason last_reject() const { return last_reject_; }

  /// Final 128-bit key; valid once state() == kEstablished.
  BitVec final_key() const;

 private:
  SessionConfig cfg_;
  const core::AutoencoderReconciler& reconciler_;
  BitVec raw_key_;
  core::PrivacyAmplifier amplifier_;
  SessionState state_ = SessionState::kIdle;
  RejectReason last_reject_ = RejectReason::kNone;
  std::uint64_t next_nonce_ = 0;
  std::uint64_t highest_seen_nonce_ = 0;
  bool saw_any_nonce_ = false;
};

class AliceSession {
 public:
  AliceSession(const SessionConfig& config,
               const core::AutoencoderReconciler& reconciler, BitVec raw_key);

  /// Kick off the exchange.
  Message start();

  std::optional<Message> handle(const Message& msg);

  SessionState state() const { return state_; }
  RejectReason last_reject() const { return last_reject_; }

  BitVec final_key() const;

 private:
  SessionConfig cfg_;
  const core::AutoencoderReconciler& reconciler_;
  BitVec raw_key_;
  BitVec corrected_key_;
  core::PrivacyAmplifier amplifier_;
  SessionState state_ = SessionState::kIdle;
  RejectReason last_reject_ = RejectReason::kNone;
  std::uint64_t next_nonce_ = 0;
  std::uint64_t highest_seen_nonce_ = 0;
  bool saw_any_nonce_ = false;
};

/// Drive both parties over a channel until quiescence; returns true when
/// both sessions established the same key.
bool run_key_agreement(PublicChannel& channel, AliceSession& alice,
                       BobSession& bob);

/// AES-128-CTR + HMAC-SHA256 payload protection under an established key.
class SecureLink {
 public:
  explicit SecureLink(const BitVec& key128);

  /// Encrypt and authenticate a payload into a kData message.
  Message seal(std::uint64_t session_id, std::uint64_t nonce,
               const std::vector<std::uint8_t>& plaintext) const;

  /// Verify and decrypt; nullopt when authentication fails.
  std::optional<std::vector<std::uint8_t>> open(const Message& msg) const;

 private:
  std::array<std::uint8_t, 16> aes_key_;
  std::vector<std::uint8_t> mac_key_;
};

}  // namespace vkey::protocol
