// Alice/Bob key-agreement session state machines.
//
// Sequence (after channel probing has produced each side's raw key bits):
//   Alice -> Bob : KeyGenRequest(session, nonce)
//   Bob   -> Alice: KeyGenAccept(session, nonce+1)
//   Bob   -> Alice: Syndrome { y_Bob, MAC(K_Bob, header||y_Bob) }
//   Alice        : reconcile; MAC verifies only if her corrected key equals
//                  Bob's (MITM modification or a failed correction aborts)
//   Alice -> Bob : KeyConfirm { H(final || session || "A") }
//   Bob   -> Alice: KeyConfirmAck { H(final || session || "B") }
// Replay defense: both sides track the highest nonce seen per session and
// reject non-increasing nonces or mismatched session ids (Sec. IV-C).
//
// After confirmation both sides hold the privacy-amplified 128-bit session
// key; SecureLink wraps it for AES-128-CTR + HMAC payload protection.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/bitvec.h"
#include "crypto/secret_buffer.h"
#include "core/privacy.h"
#include "core/reconciler.h"
#include "protocol/channel.h"

namespace vkey::protocol {

class FlightRecorder;

enum class SessionState : std::uint8_t {
  kIdle,
  kAwaitAccept,
  kAwaitSyndrome,
  kAwaitConfirm,
  kAwaitConfirmAck,
  kEstablished,
  kFailed,
};

/// Why a message was rejected (for diagnostics and the attack benches).
enum class RejectReason : std::uint8_t {
  kNone,
  kBadSession,
  kReplayedNonce,
  kMacMismatch,
  kBadState,
  kMalformed,
  kConfirmMismatch,
  /// Bit-identical retransmission of an already-accepted frame. Benign ARQ
  /// behaviour (the prior response is re-elicited), kept distinct from
  /// kReplayedNonce so retransmit suppression is distinguishable from attack.
  kDuplicate,
};

std::string to_string(SessionState s);
std::string to_string(RejectReason r);

struct SessionConfig {
  std::uint64_t session_id = 1;
  std::size_t final_key_bits = 128;
};

/// Shared inbound-envelope bookkeeping for both session roles: the replay
/// window (Sec. IV-C), the duplicate cache that makes retransmission
/// idempotent, and the per-session robustness counters.
class InboundGuard {
 public:
  enum class Verdict : std::uint8_t {
    kFresh,      ///< never-seen nonce: process normally
    kDuplicate,  ///< bit-identical retransmission of an accepted frame
    kReplay,     ///< old or reused nonce with different content (attack)
  };

  Verdict classify(const Message& msg) const;

  /// Remember an accepted frame and the response it elicited, and advance
  /// the replay window. Rejected frames are deliberately *not* recorded so
  /// an out-of-order frame can still be accepted when retransmitted later.
  void accept(const Message& msg, const std::optional<Message>& response);

  /// The response originally elicited by the frame with this nonce
  /// (nullopt when it produced none, or the nonce was never accepted).
  std::optional<Message> response_for(std::uint64_t nonce) const;

  void count_duplicate() { ++duplicates_suppressed_; }
  void count_reject() { ++rejects_; }

  std::size_t duplicates_suppressed() const { return duplicates_suppressed_; }
  std::size_t rejects() const { return rejects_; }

 private:
  struct Entry {
    Message inbound;
    std::optional<Message> response;
  };
  std::map<std::uint64_t, Entry> processed_;
  std::uint64_t highest_nonce_ = 0;
  bool saw_any_nonce_ = false;
  std::size_t duplicates_suppressed_ = 0;
  std::size_t rejects_ = 0;
};

class BobSession {
 public:
  /// `raw_key` is Bob's quantized key material (reconciler.key_bits wide).
  BobSession(const SessionConfig& config,
             const core::AutoencoderReconciler& reconciler, BitVec raw_key);

  /// Feed an inbound message; returns the response to transmit, if any.
  std::optional<Message> handle(const Message& msg);

  /// Attach a flight recorder; state transitions and InboundGuard
  /// rejections are logged under `actor`. Pass nullptr to detach.
  void set_recorder(FlightRecorder* recorder, std::string actor);

  /// Build the syndrome message { y_Bob, MAC(K_Bob, header||y_Bob) }.
  /// Valid once the session has been accepted (state kAwaitConfirm).
  Message make_syndrome();

  SessionState state() const { return state_; }
  RejectReason last_reject() const { return last_reject_; }
  const SessionConfig& config() const { return cfg_; }

  /// Robustness counters (suppressed retransmissions / rejected frames).
  std::size_t duplicates_suppressed() const {
    return guard_.duplicates_suppressed();
  }
  std::size_t rejected_count() const { return guard_.rejects(); }

  /// Final 128-bit key; valid once state() == kEstablished.
  BitVec final_key() const;

 private:
  std::optional<Message> dispatch(const Message& msg);

  SessionConfig cfg_;
  const core::AutoencoderReconciler& reconciler_;
  BitVec raw_key_;
  core::PrivacyAmplifier amplifier_;
  SessionState state_ = SessionState::kIdle;
  RejectReason last_reject_ = RejectReason::kNone;
  std::uint64_t next_nonce_ = 0;
  InboundGuard guard_;
  FlightRecorder* recorder_ = nullptr;
  std::string actor_;
};

class AliceSession {
 public:
  AliceSession(const SessionConfig& config,
               const core::AutoencoderReconciler& reconciler, BitVec raw_key);

  /// Kick off the exchange.
  Message start();

  std::optional<Message> handle(const Message& msg);

  /// Attach a flight recorder; state transitions and InboundGuard
  /// rejections are logged under `actor`. Pass nullptr to detach.
  void set_recorder(FlightRecorder* recorder, std::string actor);

  SessionState state() const { return state_; }
  RejectReason last_reject() const { return last_reject_; }
  const SessionConfig& config() const { return cfg_; }

  std::size_t duplicates_suppressed() const {
    return guard_.duplicates_suppressed();
  }
  std::size_t rejected_count() const { return guard_.rejects(); }

  BitVec final_key() const;

 private:
  std::optional<Message> dispatch(const Message& msg);

  SessionConfig cfg_;
  const core::AutoencoderReconciler& reconciler_;
  BitVec raw_key_;
  BitVec corrected_key_;
  core::PrivacyAmplifier amplifier_;
  SessionState state_ = SessionState::kIdle;
  RejectReason last_reject_ = RejectReason::kNone;
  std::uint64_t next_nonce_ = 0;
  InboundGuard guard_;
  FlightRecorder* recorder_ = nullptr;
  std::string actor_;
};

/// Structured outcome of driving a key agreement to termination.
struct AgreementResult {
  bool established = false;  ///< both parties established the *same* key
  SessionState alice_state = SessionState::kIdle;
  SessionState bob_state = SessionState::kIdle;
  RejectReason alice_reject = RejectReason::kNone;
  RejectReason bob_reject = RejectReason::kNone;
  std::size_t delivered = 0;      ///< frames pulled off the channel
  bool hit_delivery_cap = false;  ///< stopped by the safety cap, not quiescence

  explicit operator bool() const { return established; }
};

/// Drive both parties over a channel until explicit termination: either
/// party reaching kFailed, both established, the queue draining, or the
/// delivery cap (a runaway guard against interceptors that forge unbounded
/// traffic). Returns the terminal state and reject reason of both parties.
AgreementResult run_key_agreement_detailed(PublicChannel& channel,
                                           AliceSession& alice,
                                           BobSession& bob,
                                           std::size_t max_deliveries = 256);

/// Boolean shim over run_key_agreement_detailed for existing callers.
bool run_key_agreement(PublicChannel& channel, AliceSession& alice,
                       BobSession& bob);

/// AES-128-CTR + HMAC-SHA256 payload protection under an established key.
class SecureLink {
 public:
  explicit SecureLink(const BitVec& key128);

  /// Encrypt and authenticate a payload into a kData message.
  Message seal(std::uint64_t session_id, std::uint64_t nonce,
               const std::vector<std::uint8_t>& plaintext) const;

  /// Verify and decrypt; nullopt when authentication fails.
  std::optional<std::vector<std::uint8_t>> open(const Message& msg) const;

 private:
  crypto::SecretBuffer aes_key_;  ///< 16-byte AES key (zeroizing)
  crypto::SecretBuffer mac_key_;  ///< 32-byte HMAC key (zeroizing)
};

}  // namespace vkey::protocol
