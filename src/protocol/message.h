// Wire messages of the Vehicle-Key agreement protocol.
//
// Only reconciliation and confirmation need explicit messages (probing is
// radio-level and carried by the channel simulator). Every message carries a
// session id and a monotonically increasing nonce; syndrome and confirmation
// messages are authenticated with HMAC-SHA256 keyed by the (Bloom-mapped)
// key material, which is how the paper defeats man-in-the-middle
// modification (Sec. IV-C), while nonces + session ids defeat replay.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace vkey::protocol {

enum class MessageType : std::uint8_t {
  kKeyGenRequest = 1,   ///< Alice -> Bob: start a session
  kKeyGenAccept = 2,    ///< Bob -> Alice: session accepted
  kSyndrome = 3,        ///< Bob -> Alice: y_Bob + MAC
  kKeyConfirm = 4,      ///< Alice -> Bob: hash commitment of the final key
  kKeyConfirmAck = 5,   ///< Bob -> Alice: confirmation verified
  kData = 6,            ///< AES-CTR protected payload
  kAck = 7,             ///< transport-level delivery acknowledgement (ARQ);
                        ///< nonce = the nonce of the frame being acked
  kRekey = 8,           ///< key-schedule epoch announcement (key_schedule.h):
                        ///< payload = be32(epoch) || HMAC under the new
                        ///< epoch's confirmation key
};

/// Highest MessageType value a parser may accept; anything outside
/// [1, kMaxMessageType] is malformed.
inline constexpr std::uint8_t kMaxMessageType =
    static_cast<std::uint8_t>(MessageType::kRekey);

/// Hard bounds a parser enforces on length fields *before* trusting them.
/// The largest honest payload is the syndrome (code_dim doubles, well under
/// 4 KiB at every configuration the repo ships); the largest MAC is
/// HMAC-SHA256 (32 bytes, bounded at 64 for agility). Anything bigger is an
/// attack or corruption, and must be rejected without allocating.
inline constexpr std::size_t kMaxPayloadBytes = 8192;
inline constexpr std::size_t kMaxMacBytes = 64;

/// Short wire name ("key-gen-request", "ack", ...) for logs and the
/// flight recorder.
std::string to_string(MessageType t);

struct Message {
  MessageType type = MessageType::kKeyGenRequest;
  std::uint64_t session_id = 0;
  std::uint64_t nonce = 0;
  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> mac;  ///< empty when the type is unauthenticated

  bool operator==(const Message&) const = default;
};

/// Flat binary serialization (type | session | nonce | payload len+bytes |
/// mac len+bytes). Deterministic; used both on the simulated wire and as the
/// MAC input.
std::vector<std::uint8_t> serialize(const Message& msg);

/// Parse bytes back into a Message; nullopt on malformed input. Length
/// prefixes are validated against both the actual buffer and the
/// kMaxPayloadBytes / kMaxMacBytes bounds before any allocation, so a
/// forged length field can neither overrun the buffer nor balloon memory.
std::optional<Message> deserialize(std::span<const std::uint8_t> bytes);

/// The byte string a MAC covers: everything except the mac field itself.
std::vector<std::uint8_t> mac_input(const Message& msg);

/// Pack a vector of doubles into the payload (little-endian IEEE754) and
/// back (the syndrome y_Bob is a real vector).
std::vector<std::uint8_t> pack_doubles(std::span<const double> values);
std::vector<double> unpack_doubles(std::span<const std::uint8_t> bytes);

}  // namespace vkey::protocol
