#include "protocol/session.h"

#include "common/error.h"
#include "common/metrics.h"
#include "crypto/aes128.h"
#include "protocol/flight_recorder.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace vkey::protocol {

namespace {

std::vector<std::uint8_t> hmac_of(const BitVec& key, const Message& msg) {
  // The serialized key bytes are a transient secret; wipe them as soon as
  // the compression function has absorbed them. The tag itself is public
  // (it rides the frame).
  auto key_bytes = key.to_bytes();
  auto tag = crypto::hmac_sha256(std::span<const std::uint8_t>(key_bytes),
                                 mac_input(msg));
  crypto::secure_wipe(key_bytes);
  return {tag.begin(), tag.end()};
}

std::vector<std::uint8_t> confirm_digest(const BitVec& final_key,
                                         std::uint64_t session_id,
                                         const char* role) {
  crypto::Sha256 h;
  auto kb = final_key.to_bytes();
  h.update(kb);
  crypto::secure_wipe(kb);
  std::uint8_t sid[8];
  for (int i = 0; i < 8; ++i) {
    sid[i] = static_cast<std::uint8_t>(session_id >> (56 - 8 * i));
  }
  h.update(sid, sizeof(sid));
  const std::uint8_t role_byte = static_cast<std::uint8_t>(role[0]);
  h.update(&role_byte, 1);
  const auto d = h.finalize();
  return {d.begin(), d.end()};
}

// Shared flight-recorder bookkeeping for both session roles: one kReject
// per rejected frame (reason + offending message type) and one
// kStateChange per transition, e.g. "await-syndrome->failed".
void note_outcome(FlightRecorder* recorder, const std::string& actor,
                  SessionState before, SessionState after, RejectReason reject,
                  const Message& msg) {
  if (recorder == nullptr) return;
  if (reject != RejectReason::kNone) {
    recorder->record(FlightEventKind::kReject, actor,
                     to_string(reject) + " on " + to_string(msg.type),
                     msg.session_id, msg.nonce);
  }
  if (after != before) {
    recorder->record(FlightEventKind::kStateChange, actor,
                     to_string(before) + "->" + to_string(after),
                     msg.session_id, msg.nonce);
  }
}

}  // namespace

std::string to_string(SessionState s) {
  switch (s) {
    case SessionState::kIdle: return "idle";
    case SessionState::kAwaitAccept: return "await-accept";
    case SessionState::kAwaitSyndrome: return "await-syndrome";
    case SessionState::kAwaitConfirm: return "await-confirm";
    case SessionState::kAwaitConfirmAck: return "await-confirm-ack";
    case SessionState::kEstablished: return "established";
    case SessionState::kFailed: return "failed";
  }
  return "?";
}

std::string to_string(RejectReason r) {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kBadSession: return "bad-session";
    case RejectReason::kReplayedNonce: return "replayed-nonce";
    case RejectReason::kMacMismatch: return "mac-mismatch";
    case RejectReason::kBadState: return "bad-state";
    case RejectReason::kMalformed: return "malformed";
    case RejectReason::kConfirmMismatch: return "confirm-mismatch";
    case RejectReason::kDuplicate: return "duplicate";
  }
  return "?";
}

// --------------------------------------------------------------- InboundGuard

InboundGuard::Verdict InboundGuard::classify(const Message& msg) const {
  const auto it = processed_.find(msg.nonce);
  if (it != processed_.end()) {
    return it->second.inbound == msg ? Verdict::kDuplicate : Verdict::kReplay;
  }
  if (saw_any_nonce_ && msg.nonce <= highest_nonce_) return Verdict::kReplay;
  return Verdict::kFresh;
}

void InboundGuard::accept(const Message& msg,
                          const std::optional<Message>& response) {
  highest_nonce_ = saw_any_nonce_ ? std::max(highest_nonce_, msg.nonce)
                                  : msg.nonce;
  saw_any_nonce_ = true;
  processed_[msg.nonce] = Entry{msg, response};
}

std::optional<Message> InboundGuard::response_for(std::uint64_t nonce) const {
  const auto it = processed_.find(nonce);
  if (it == processed_.end()) return std::nullopt;
  return it->second.response;
}

// ---------------------------------------------------------------- BobSession

BobSession::BobSession(const SessionConfig& config,
                       const core::AutoencoderReconciler& reconciler,
                       BitVec raw_key)
    : cfg_(config),
      reconciler_(reconciler),
      raw_key_(std::move(raw_key)),
      amplifier_(config.final_key_bits) {
  VKEY_REQUIRE(raw_key_.size() == reconciler.config().key_bits,
               "Bob key width must match the reconciler");
}

BitVec BobSession::final_key() const {
  VKEY_REQUIRE(state_ == SessionState::kEstablished,
               "session not established");
  return amplifier_.amplify(raw_key_, cfg_.session_id);
}

std::optional<Message> BobSession::handle(const Message& msg) {
  const SessionState before = state_;
  last_reject_ = RejectReason::kNone;
  if (msg.session_id != cfg_.session_id) {
    last_reject_ = RejectReason::kBadSession;
    guard_.count_reject();
    note_outcome(recorder_, actor_, before, state_, last_reject_, msg);
    return std::nullopt;
  }
  switch (guard_.classify(msg)) {
    case InboundGuard::Verdict::kDuplicate:
      // ARQ retransmission: the peer did not see our response, so re-elicit
      // the original one instead of tripping the replay defense.
      last_reject_ = RejectReason::kDuplicate;
      guard_.count_duplicate();
      note_outcome(recorder_, actor_, before, state_, last_reject_, msg);
      return guard_.response_for(msg.nonce);
    case InboundGuard::Verdict::kReplay:
      last_reject_ = RejectReason::kReplayedNonce;
      guard_.count_reject();
      note_outcome(recorder_, actor_, before, state_, last_reject_, msg);
      return std::nullopt;
    case InboundGuard::Verdict::kFresh:
      break;
  }
  next_nonce_ = std::max(next_nonce_, msg.nonce + 1);
  auto response = dispatch(msg);
  if (last_reject_ == RejectReason::kNone) {
    guard_.accept(msg, response);
  } else {
    guard_.count_reject();
  }
  note_outcome(recorder_, actor_, before, state_, last_reject_, msg);
  return response;
}

void BobSession::set_recorder(FlightRecorder* recorder, std::string actor) {
  recorder_ = recorder;
  actor_ = std::move(actor);
}

std::optional<Message> BobSession::dispatch(const Message& msg) {
  switch (msg.type) {
    case MessageType::kKeyGenRequest: {
      if (state_ != SessionState::kIdle) {
        last_reject_ = RejectReason::kBadState;
        return std::nullopt;
      }
      // Accept, then immediately publish the syndrome.
      Message accept;
      accept.type = MessageType::kKeyGenAccept;
      accept.session_id = cfg_.session_id;
      accept.nonce = next_nonce_++;

      state_ = SessionState::kAwaitConfirm;
      return accept;
    }
    case MessageType::kKeyConfirm: {
      if (state_ != SessionState::kAwaitConfirm) {
        last_reject_ = RejectReason::kBadState;
        return std::nullopt;
      }
      const auto expected = confirm_digest(
          amplifier_.amplify(raw_key_, cfg_.session_id), cfg_.session_id,
          "A");
      if (!crypto::constant_time_equal(msg.payload, expected)) {
        last_reject_ = RejectReason::kConfirmMismatch;
        state_ = SessionState::kFailed;
        return std::nullopt;
      }
      state_ = SessionState::kEstablished;
      Message ack;
      ack.type = MessageType::kKeyConfirmAck;
      ack.session_id = cfg_.session_id;
      ack.nonce = next_nonce_++;
      ack.payload = confirm_digest(final_key(), cfg_.session_id, "B");
      return ack;
    }
    default:
      last_reject_ = RejectReason::kBadState;
      return std::nullopt;
  }
}

Message BobSession::make_syndrome() {
  VKEY_REQUIRE(state_ == SessionState::kAwaitConfirm,
               "syndrome requested before the session was accepted");
  Message msg;
  msg.type = MessageType::kSyndrome;
  msg.session_id = cfg_.session_id;
  msg.nonce = next_nonce_++;
  msg.payload = pack_doubles(reconciler_.encode_bob(raw_key_));
  msg.mac = hmac_of(raw_key_, msg);
  return msg;
}

// -------------------------------------------------------------- AliceSession

AliceSession::AliceSession(const SessionConfig& config,
                           const core::AutoencoderReconciler& reconciler,
                           BitVec raw_key)
    : cfg_(config),
      reconciler_(reconciler),
      raw_key_(std::move(raw_key)),
      amplifier_(config.final_key_bits) {
  VKEY_REQUIRE(raw_key_.size() == reconciler.config().key_bits,
               "Alice key width must match the reconciler");
}

Message AliceSession::start() {
  VKEY_REQUIRE(state_ == SessionState::kIdle, "session already started");
  Message req;
  req.type = MessageType::kKeyGenRequest;
  req.session_id = cfg_.session_id;
  req.nonce = next_nonce_++;
  state_ = SessionState::kAwaitAccept;
  note_outcome(recorder_, actor_, SessionState::kIdle, state_,
               RejectReason::kNone, req);
  return req;
}

void AliceSession::set_recorder(FlightRecorder* recorder, std::string actor) {
  recorder_ = recorder;
  actor_ = std::move(actor);
}

BitVec AliceSession::final_key() const {
  VKEY_REQUIRE(state_ == SessionState::kEstablished,
               "session not established");
  return amplifier_.amplify(corrected_key_, cfg_.session_id);
}

std::optional<Message> AliceSession::handle(const Message& msg) {
  const SessionState before = state_;
  last_reject_ = RejectReason::kNone;
  if (msg.session_id != cfg_.session_id) {
    last_reject_ = RejectReason::kBadSession;
    guard_.count_reject();
    note_outcome(recorder_, actor_, before, state_, last_reject_, msg);
    return std::nullopt;
  }
  switch (guard_.classify(msg)) {
    case InboundGuard::Verdict::kDuplicate:
      last_reject_ = RejectReason::kDuplicate;
      guard_.count_duplicate();
      note_outcome(recorder_, actor_, before, state_, last_reject_, msg);
      return guard_.response_for(msg.nonce);
    case InboundGuard::Verdict::kReplay:
      last_reject_ = RejectReason::kReplayedNonce;
      guard_.count_reject();
      note_outcome(recorder_, actor_, before, state_, last_reject_, msg);
      return std::nullopt;
    case InboundGuard::Verdict::kFresh:
      break;
  }
  next_nonce_ = std::max(next_nonce_, msg.nonce + 1);
  auto response = dispatch(msg);
  if (last_reject_ == RejectReason::kNone) {
    guard_.accept(msg, response);
  } else {
    guard_.count_reject();
  }
  note_outcome(recorder_, actor_, before, state_, last_reject_, msg);
  return response;
}

std::optional<Message> AliceSession::dispatch(const Message& msg) {
  switch (msg.type) {
    case MessageType::kKeyGenAccept: {
      if (state_ != SessionState::kAwaitAccept) {
        last_reject_ = RejectReason::kBadState;
        return std::nullopt;
      }
      state_ = SessionState::kAwaitSyndrome;
      return std::nullopt;  // Bob sends the syndrome unprompted
    }
    case MessageType::kSyndrome: {
      if (state_ != SessionState::kAwaitSyndrome) {
        last_reject_ = RejectReason::kBadState;
        return std::nullopt;
      }
      std::vector<double> y_bob;
      try {
        y_bob = unpack_doubles(msg.payload);
      } catch (const vkey::Error&) {
        last_reject_ = RejectReason::kMalformed;
        return std::nullopt;
      }
      if (y_bob.size() != reconciler_.config().code_dim) {
        last_reject_ = RejectReason::kMalformed;
        return std::nullopt;
      }
      corrected_key_ = reconciler_.reconcile(raw_key_, y_bob);
      // MAC check: verifies only when the corrected key equals K_Bob, so an
      // in-flight modification (MITM) or a failed correction aborts here.
      if (!crypto::constant_time_equal(msg.mac, hmac_of(corrected_key_, msg))) {
        last_reject_ = RejectReason::kMacMismatch;
        state_ = SessionState::kFailed;
        return std::nullopt;
      }
      state_ = SessionState::kAwaitConfirmAck;
      Message confirm;
      confirm.type = MessageType::kKeyConfirm;
      confirm.session_id = cfg_.session_id;
      confirm.nonce = next_nonce_++;
      confirm.payload = confirm_digest(
          amplifier_.amplify(corrected_key_, cfg_.session_id),
          cfg_.session_id, "A");
      return confirm;
    }
    case MessageType::kKeyConfirmAck: {
      if (state_ != SessionState::kAwaitConfirmAck) {
        last_reject_ = RejectReason::kBadState;
        return std::nullopt;
      }
      const auto expected = confirm_digest(
          amplifier_.amplify(corrected_key_, cfg_.session_id),
          cfg_.session_id, "B");
      if (!crypto::constant_time_equal(msg.payload, expected)) {
        last_reject_ = RejectReason::kConfirmMismatch;
        state_ = SessionState::kFailed;
        return std::nullopt;
      }
      state_ = SessionState::kEstablished;
      return std::nullopt;
    }
    default:
      last_reject_ = RejectReason::kBadState;
      return std::nullopt;
  }
}

// ----------------------------------------------------------------- plumbing

AgreementResult run_key_agreement_detailed(PublicChannel& channel,
                                           AliceSession& alice,
                                           BobSession& bob,
                                           std::size_t max_deliveries) {
  AgreementResult result;
  channel.send(alice.start());

  // Bob publishes the syndrome right after accepting; model that by letting
  // the loop below ask Bob for his pending syndrome when he reaches
  // kAwaitConfirm. We synthesize it here from his session state.
  bool syndrome_sent = false;
  while (channel.pending() > 0) {
    // Explicit termination: a failed party cannot recover within a session,
    // so draining the rest of the queue is pointless.
    if (alice.state() == SessionState::kFailed ||
        bob.state() == SessionState::kFailed) {
      break;
    }
    if (result.delivered >= max_deliveries) {
      result.hit_delivery_cap = true;
      break;
    }
    auto msg = channel.receive();
    if (!msg) break;
    ++result.delivered;
    // Route by expected direction: requests/confirms go to Bob, the rest to
    // Alice. (The simulated wire is a single broadcast medium.)
    std::optional<Message> reply;
    if (msg->type == MessageType::kKeyGenRequest ||
        msg->type == MessageType::kKeyConfirm) {
      reply = bob.handle(*msg);
    } else {
      reply = alice.handle(*msg);
    }
    if (reply) channel.send(*reply);

    if (!syndrome_sent && bob.state() == SessionState::kAwaitConfirm) {
      // Bob publishes y_Bob + MAC once the session is accepted.
      syndrome_sent = true;
      channel.send(bob.make_syndrome());
    }
  }
  result.alice_state = alice.state();
  result.bob_state = bob.state();
  result.alice_reject = alice.last_reject();
  result.bob_reject = bob.last_reject();
  result.established = alice.state() == SessionState::kEstablished &&
                       bob.state() == SessionState::kEstablished &&
                       alice.final_key() == bob.final_key();
  auto& reg = metrics::Registry::global();
  reg.counter("session.runs").add(1);
  reg.counter("session.frames_delivered").add(result.delivered);
  if (result.established) reg.counter("session.established").add(1);
  return result;
}

bool run_key_agreement(PublicChannel& channel, AliceSession& alice,
                       BobSession& bob) {
  return run_key_agreement_detailed(channel, alice, bob).established;
}

SecureLink::SecureLink(const BitVec& key128) {
  VKEY_REQUIRE(key128.size() == 128, "SecureLink needs a 128-bit key");
  auto bytes = key128.to_bytes();
  // Cryptographically separated subkeys via HKDF (RFC 5869).
  aes_key_ = crypto::derive_subkey(bytes, "vkey-v1 encryption", 16);
  mac_key_ = crypto::derive_subkey(bytes, "vkey-v1 mac", 32);
  crypto::secure_wipe(bytes);
}

Message SecureLink::seal(std::uint64_t session_id, std::uint64_t nonce,
                         const std::vector<std::uint8_t>& plaintext) const {
  crypto::Aes128 aes(aes_key_);
  Message msg;
  msg.type = MessageType::kData;
  msg.session_id = session_id;
  msg.nonce = nonce;
  msg.payload = aes.ctr_crypt(plaintext, nonce);
  const auto tag = crypto::hmac_sha256(mac_key_, mac_input(msg));
  msg.mac.assign(tag.begin(), tag.end());
  return msg;
}

std::optional<std::vector<std::uint8_t>> SecureLink::open(
    const Message& msg) const {
  if (msg.type != MessageType::kData) return std::nullopt;
  const auto tag = crypto::hmac_sha256(mac_key_, mac_input(msg));
  if (!crypto::constant_time_equal(msg.mac, tag)) {
    return std::nullopt;
  }
  crypto::Aes128 aes(aes_key_);
  return aes.ctr_crypt(msg.payload, msg.nonce);
}

}  // namespace vkey::protocol
