// Per-session flight recorder: a bounded ring of protocol events stamped
// with SimClock virtual time.
//
// The metrics layer (PR 2) answers aggregate questions — how many frames
// were dropped across a bench run — but cannot explain why ONE session
// failed: which injected fault hit which frame, what the ARQ did about it,
// and how the state machines reacted. The flight recorder is that causal
// timeline. The reliability supervisor creates one per attempt and hands it
// to the link, both transports and both sessions; every layer appends its
// events (frame tx/rx, drop/reorder/dup/corrupt injections, retransmits and
// backoff arming, InboundGuard rejections, session state transitions), and
// the recorder travels with the AttemptReport so a failed — or fuzzed —
// session can dump its full history next to its FailureReason.
//
// Determinism: events are stamped from the attempt's SimClock (virtual ms)
// and carry a per-recorder insertion ordinal `seq`, so dump() and to_json()
// are byte-identical for identical seeds and independent of host timing or
// worker-lane count. Without a clock (harness/fuzz use) the ordinal itself
// is the timestamp, which keeps ordering visible and deterministic. The
// ring is single-writer by design — the protocol stack runs inside one
// SimClock event loop — so there is no lock.
//
// When the global TraceLog is enabled each event is mirrored as a
// virtual-domain instant span ("flight.<kind>"), so `vkey_sim --trace-out`
// interleaves link-level events with the reliability spans in Perfetto.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/trace.h"

namespace vkey::protocol {

enum class FlightEventKind : std::uint8_t {
  kAttemptStart,  ///< supervisor opened a session attempt
  kAttemptEnd,    ///< attempt terminated (detail: outcome / failure reason)
  kFrameTx,       ///< frame handed to the link by an endpoint
  kFrameRx,       ///< frame delivered to the far endpoint
  kDrop,          ///< fault injector lost the frame
  kCorrupt,       ///< fault injector flipped bits (frame still parsed)
  kCrcLost,       ///< corruption beyond parsing; radio CRC discarded it
  kWireReject,    ///< frame codec rejected the bytes (detail: WireError)
  kReorder,       ///< fault injector added reordering delay
  kDuplicate,     ///< fault injector scheduled an echo copy
  kRetransmit,    ///< ARQ resent a frame (detail: "timeout ..." or "fast")
  kBackoff,       ///< ARQ armed a retransmission timer (detail: delay)
  kAckTx,         ///< transport acknowledged an accepted frame
  kAckRx,         ///< transport consumed an ack for an in-flight frame
  kStaleAck,      ///< ack for a frame not (or no longer) in flight
  kGaveUp,        ///< retry budget exhausted; the attempt is dead
  kReject,        ///< session rejected a frame (detail: RejectReason)
  kStateChange,   ///< session state transition (detail: "from->to")
  kInjected,      ///< harness-injected fault (fuzz tests name theirs here)
};

std::string to_string(FlightEventKind k);

struct FlightEvent {
  double t_ms = 0.0;       ///< virtual time; the ordinal when no clock is set
  std::uint64_t seq = 0;   ///< per-recorder insertion ordinal (0-based)
  FlightEventKind kind = FlightEventKind::kAttemptStart;
  std::string actor;       ///< "alice" | "bob" | "link" | "supervisor" | ...
  std::string detail;      ///< kind-specific context, may be empty
  std::uint64_t session_id = 0;
  std::uint64_t nonce = 0;
};

/// Bounded single-writer event ring (oldest events drop first).
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 512, trace::NowFn now = {});

  /// Swap the time source (e.g. when a recorder outlives its SimClock an
  /// owner clears it). Events already recorded keep their stamps.
  void set_now(trace::NowFn now) { now_ = std::move(now); }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return count_; }
  std::size_t dropped() const noexcept { return dropped_; }
  std::uint64_t total() const noexcept { return next_seq_; }

  void record(FlightEventKind kind, std::string actor, std::string detail = {},
              std::uint64_t session_id = 0, std::uint64_t nonce = 0);

  /// Events oldest -> newest.
  std::vector<FlightEvent> events() const;

  void clear();

  /// Deterministic human-readable timeline, one event per line:
  ///   [  123.456 ms] #17 retransmit alice timeout attempt=1 nonce=3
  /// Byte-identical for identical event sequences (virtual stamps only).
  std::string dump() const;

  /// {"events": [{t_ms, seq, kind, actor, detail, session, nonce}...],
  ///  "dropped": n, "total": n}
  json::Value to_json() const;

 private:
  trace::NowFn now_;
  std::size_t capacity_;
  std::vector<FlightEvent> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t dropped_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace vkey::protocol
