#include "protocol/reliability.h"

#include "common/error.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"
#include "protocol/wire.h"

namespace vkey::protocol {

namespace {

metrics::Counter& rel_counter(const char* name) {
  return metrics::Registry::global().counter(std::string("reliability.") +
                                             name);
}

// Runaway guard per attempt: far above anything a sane exchange needs
// (~6 frames * (1 + max_retries) events each, plus duplicates).
constexpr std::size_t kMaxEventsPerAttempt = 200000;

void accumulate(LinkStats& into, const LinkStats& from) {
  into.sent += from.sent;
  into.bytes_sent += from.bytes_sent;
  into.delivered += from.delivered;
  into.dropped += from.dropped;
  into.corrupted += from.corrupted;
  into.crc_lost += from.crc_lost;
  into.duplicated += from.duplicated;
  into.reordered += from.reordered;
}

FailureReason classify_failure(const AliceSession& alice,
                               const BobSession& bob, bool exhausted,
                               bool timed_out) {
  const auto failed_reason = [](RejectReason r) {
    switch (r) {
      case RejectReason::kMacMismatch: return FailureReason::kMacMismatch;
      case RejectReason::kConfirmMismatch:
        return FailureReason::kConfirmMismatch;
      default: return FailureReason::kProtocolError;
    }
  };
  if (alice.state() == SessionState::kFailed) {
    return failed_reason(alice.last_reject());
  }
  if (bob.state() == SessionState::kFailed) {
    return failed_reason(bob.last_reject());
  }
  if (exhausted) return FailureReason::kRetryExhausted;
  if (timed_out) return FailureReason::kTimeout;
  return FailureReason::kProtocolError;
}

}  // namespace

std::string AgreementReport::failure_dump(std::size_t max_attempts) const {
  if (established || attempt_log.empty() || max_attempts == 0) return {};
  // Keep the *most recent* attempts: the last one carries the terminal
  // failure, earlier ones show whether recovery was converging.
  const std::size_t first =
      attempt_log.size() > max_attempts ? attempt_log.size() - max_attempts
                                        : 0;
  std::string out;
  if (first > 0) {
    out += std::to_string(first) + " earlier attempt(s) suppressed\n";
  }
  bool dumped = false;
  for (std::size_t i = first; i < attempt_log.size(); ++i) {
    const AttemptReport& att = attempt_log[i];
    if (att.flight.size() == 0) continue;
    out += "attempt " + std::to_string(i + 1) + " failed (" +
           to_string(att.failure) + ")\n" + att.flight.dump();
    dumped = true;
  }
  return dumped ? out : std::string{};
}

std::string to_string(FailureReason r) {
  switch (r) {
    case FailureReason::kNone: return "none";
    case FailureReason::kRetryExhausted: return "retry-exhausted";
    case FailureReason::kMacMismatch: return "mac-mismatch";
    case FailureReason::kConfirmMismatch: return "confirm-mismatch";
    case FailureReason::kTimeout: return "timeout";
    case FailureReason::kProtocolError: return "protocol-error";
  }
  return "?";
}

AgreementReport run_reliable_key_agreement(
    PublicChannel& base, const core::AutoencoderReconciler& reconciler,
    const ReliabilityConfig& config, const ProbeMaterialFn& material) {
  // Single-session entry point: this agreement IS the whole simulation, so
  // the supervisor owns a private timeline for it. Multi-session callers go
  // through the gateway engine, which hands every session a sub-clock.
  SimClock clock;  // vkey-lint: allow(sim-clock-owner)
  return run_reliable_key_agreement_on(clock, base, reconciler, config,
                                       material);
}

AgreementReport run_reliable_key_agreement_on(
    SimClock& clock, PublicChannel& base,
    const core::AutoencoderReconciler& reconciler,
    const ReliabilityConfig& config, const ProbeMaterialFn& material) {
  VKEY_REQUIRE(config.max_session_attempts >= 1, "need at least one attempt");
  AgreementReport report;

  // Virtual time-to-establish across the whole agreement (all attempts):
  // each attempt's SimClock starts at 0, so accumulate per-attempt spans.
  static metrics::Histogram& establish_hist =
      metrics::Registry::global().histogram(
          "reliability.time_to_establish_ms");

  for (std::size_t attempt = 0; attempt < config.max_session_attempts;
       ++attempt) {
    ++report.attempts;
    rel_counter("attempts").add(1);

    // Fresh session id, probe material, fault stream and jitter stream per
    // attempt: a loss pattern that killed attempt k must not repeat
    // identically in attempt k+1.
    SessionConfig scfg;
    scfg.session_id = config.base_session_id + attempt;
    scfg.final_key_bits = config.final_key_bits;
    auto [alice_raw, bob_raw] = material(attempt);
    AliceSession alice(scfg, reconciler, std::move(alice_raw));
    BobSession bob(scfg, reconciler, std::move(bob_raw));

    // The attempt measures durations relative to the caller's clock: a
    // gateway sub-clock arrives already advanced to the session's admission
    // instant, a fresh single-session clock arrives at 0.
    const double attempt_start_ms = clock.now_ms();
    // Virtual-time span: the timer reads the attempt's SimClock, not the
    // wall clock, so the observed duration is bit-reproducible.
    trace::ScopedTimer attempt_timer(
        metrics::Registry::global().histogram("reliability.attempt_ms"),
        [&clock] { return clock.now_ms(); }, "reliability.attempt");
    FaultConfig faults = config.fault;
    faults.seed = hash_combine64(config.fault.seed, attempt);
    UnreliableChannel link(clock, base, faults, config.radio);

    // Per-attempt flight recorder stamped with this attempt's virtual
    // clock; every layer below appends its events to the same timeline.
    FlightRecorder flight(config.flight_capacity,
                          [&clock] { return clock.now_ms(); });
    flight.record(FlightEventKind::kAttemptStart, "supervisor",
                  "attempt=" + std::to_string(attempt + 1), scfg.session_id);
    link.set_recorder(&flight);
    alice.set_recorder(&flight, "alice");
    bob.set_recorder(&flight, "bob");

    // RTT estimate: frame airtime + ack airtime + both processing delays.
    Message ack_probe;
    ack_probe.type = MessageType::kAck;
    const auto rtt = [&link, ack_latency = link.nominal_latency_ms(ack_probe)](
                         const Message& m) {
      return link.nominal_latency_ms(m) + ack_latency;
    };

    ArqConfig arq_alice = config.arq;
    arq_alice.seed = hash_combine64(config.arq.seed, 2 * attempt);
    ArqConfig arq_bob = config.arq;
    arq_bob.seed = hash_combine64(config.arq.seed, 2 * attempt + 1);

    ReliableTransport alice_tx(
        clock, arq_alice,
        [&link](const Message& m) {
          link.send(UnreliableChannel::Endpoint::kAlice, m);
        },
        rtt);
    ReliableTransport bob_tx(
        clock, arq_bob,
        [&link](const Message& m) {
          link.send(UnreliableChannel::Endpoint::kBob, m);
        },
        rtt);
    alice_tx.set_recorder(&flight, "alice");
    bob_tx.set_recorder(&flight, "bob");

    const auto accepts = [](const RejectReason r) {
      return r == RejectReason::kNone || r == RejectReason::kDuplicate;
    };
    alice_tx.set_upcall(
        [&alice](const Message& m) { return alice.handle(m); },
        [&alice, accepts] { return accepts(alice.last_reject()); });

    bool syndrome_sent = false;
    bob_tx.set_upcall(
        [&](const Message& m) {
          auto response = bob.handle(m);
          if (!syndrome_sent && bob.state() == SessionState::kAwaitConfirm) {
            // Bob publishes y_Bob + MAC right after accepting. Defer the
            // reliable send one event so the accept is transmitted first.
            syndrome_sent = true;
            clock.schedule(0.0, [&bob_tx, syndrome = bob.make_syndrome()] {
              bob_tx.send(syndrome);
            });
          }
          return response;
        },
        [&bob, accepts] { return accepts(bob.last_reject()); });

    link.set_handler(UnreliableChannel::Endpoint::kAlice,
                     [&alice_tx](const Message& m) { alice_tx.on_wire(m); });
    link.set_handler(UnreliableChannel::Endpoint::kBob,
                     [&bob_tx](const Message& m) { bob_tx.on_wire(m); });

    alice_tx.send(alice.start());

    bool timed_out = false;
    std::size_t events = 0;
    const auto established = [&] {
      return alice.state() == SessionState::kEstablished &&
             bob.state() == SessionState::kEstablished;
    };
    const auto terminal = [&] {
      return established() ||
             alice.state() == SessionState::kFailed ||
             bob.state() == SessionState::kFailed ||
             alice_tx.exhausted() || bob_tx.exhausted();
    };
    while (!terminal() && events < kMaxEventsPerAttempt) {
      if (clock.now_ms() - attempt_start_ms > config.attempt_timeout_ms) {
        timed_out = true;
        break;
      }
      if (!clock.run_next()) break;  // quiescent: nothing can make progress
      ++events;
    }

    AttemptReport att;
    att.session_id = scfg.session_id;
    att.alice_state = alice.state();
    att.bob_state = bob.state();
    att.alice_reject = alice.last_reject();
    att.bob_reject = bob.last_reject();
    att.duration_ms = clock.now_ms() - attempt_start_ms;
    att.alice_transport = alice_tx.stats();
    att.bob_transport = bob_tx.stats();
    att.alice_duplicates_suppressed = alice.duplicates_suppressed();
    att.bob_duplicates_suppressed = bob.duplicates_suppressed();
    att.alice_rejects = alice.rejected_count();
    att.bob_rejects = bob.rejected_count();
    att.link = link.stats();
    att.established = established() && alice.final_key() == bob.final_key();
    att.failure = att.established
                      ? FailureReason::kNone
                      : classify_failure(alice, bob,
                                         alice_tx.exhausted() ||
                                             bob_tx.exhausted(),
                                         timed_out);
    flight.record(FlightEventKind::kAttemptEnd, "supervisor",
                  att.established ? "established" : to_string(att.failure),
                  scfg.session_id);
    // The recorder travels with the report; its NowFn points at the
    // caller's clock, so detach it before the attempt scope closes.
    flight.set_now({});
    att.flight = std::move(flight);

    // Tear down the attempt's residue: un-fired ARQ timers and in-flight
    // deliveries hold closures over the link, transports and sessions that
    // die with this scope. The clock is dedicated to this agreement, so
    // clearing cannot hit anyone else's events.
    clock.clear();

    report.time_to_establish_ms += att.duration_ms;
    report.wire_frames += link.stats().sent;
    accumulate(report.link, link.stats());
    report.failure = att.failure;
    const bool success = att.established;
    if (success) {
      report.key = alice.final_key();
    } else {
      rel_counter(("failure." + to_string(att.failure)).c_str()).add(1);
    }
    report.attempt_log.push_back(std::move(att));
    if (success) {
      report.established = true;
      rel_counter("established").add(1);
      establish_hist.observe(report.time_to_establish_ms);
      break;
    }
  }
  if (!report.established) rel_counter("exhausted").add(1);
  return report;
}

void register_protocol_metrics() {
  auto& reg = metrics::Registry::global();
  reg.counter("session.runs");
  reg.counter("session.frames_delivered");
  reg.counter("session.established");
  for (const char* n : {"data_sent", "retransmissions", "timeouts", "gave_up",
                        "acks_received", "acks_sent"}) {
    reg.counter(std::string("arq.") + n);
  }
  reg.histogram("arq.backoff_ms");
  for (const char* n :
       {"sent", "dropped", "corrupted", "crc_lost", "reordered",
        "duplicated"}) {
    reg.counter(std::string("link.") + n);
  }
  rel_counter("attempts");
  rel_counter("established");
  rel_counter("exhausted");
  reg.histogram("reliability.attempt_ms");
  for (const FailureReason r :
       {FailureReason::kRetryExhausted, FailureReason::kMacMismatch,
        FailureReason::kConfirmMismatch, FailureReason::kTimeout,
        FailureReason::kProtocolError}) {
    rel_counter(("failure." + to_string(r)).c_str());
  }
  reg.counter("phy.packets");
  reg.gauge("phy.airtime_ms");
  wire::register_wire_metrics();
}

}  // namespace vkey::protocol
