// The public (unauthenticated) channel the protocol messages traverse.
//
// Per the threat model (Sec. III), Eve has full knowledge of the protocol
// and can eavesdrop, inject and replay messages. PublicChannel therefore
// keeps a complete transcript (Eve's view) and exposes an interception hook
// through which an active attacker can drop, modify or forge traffic before
// delivery.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "protocol/message.h"

namespace vkey::protocol {

class PublicChannel {
 public:
  /// Interceptor contract: given the in-flight message, return the message
  /// to deliver instead (possibly the same), or nullopt to drop it.
  using Interceptor =
      std::function<std::optional<Message>(const Message&)>;

  /// Transmit a message; it is appended to the public transcript *as sent*
  /// (Eve sees the original even when an interceptor rewrites it).
  void send(const Message& msg);

  /// Deliver the next queued message (after interception), if any.
  std::optional<Message> receive();

  /// Number of messages waiting for delivery.
  std::size_t pending() const { return queue_.size(); }

  /// Everything ever sent: the eavesdropper's view.
  const std::vector<Message>& transcript() const { return transcript_; }

  /// Install (or clear, by passing nullptr) the active-attacker hook.
  void set_interceptor(Interceptor interceptor);

  /// Inject a forged message directly into the delivery queue (replay /
  /// spoofing attacks).
  void inject(const Message& msg);

 private:
  std::deque<Message> queue_;
  std::vector<Message> transcript_;
  Interceptor interceptor_;
};

}  // namespace vkey::protocol
