#include "baselines/baseline.h"

namespace vkey::baselines {

PrssiSeries extract_prssi(const std::vector<channel::ProbeRound>& rounds) {
  PrssiSeries s;
  s.alice.reserve(rounds.size());
  s.bob.reserve(rounds.size());
  for (const auto& r : rounds) {
    s.alice.push_back(r.alice_rx.prssi());
    s.bob.push_back(r.bob_rx.prssi());
  }
  return s;
}

}  // namespace vkey::baselines
