// Han et al. baseline (Sensors 2020): "LoRa-based physical layer key
// generation for secure V2V/V2I communications".
//
// As configured in the paper's comparison: multi-bit quantization of packet
// RSSI followed by Cascade reconciliation with group length k = 3 and 4
// iterations. Cascade's parity disclosures are subtracted from the net key
// rate, and its multi-round interactivity is the overhead the paper
// criticizes.
#pragma once

#include <cstdint>

#include "baselines/baseline.h"
#include "baselines/cascade.h"
#include "core/quantizer.h"

namespace vkey::baselines {

struct HanConfig {
  vkey::core::QuantizerConfig quantizer{
      .bits_per_sample = 2, .block_size = 16, .guard_band_ratio = 0.0};
  CascadeConfig cascade{.initial_block = 3, .iterations = 4, .seed = 41};
  /// Cascade amortizes its parity leakage over long blocks.
  std::size_t key_block_bits = 256;
};

class HanV2V {
 public:
  explicit HanV2V(const HanConfig& config = {});

  BaselineMetrics run(const std::vector<channel::ProbeRound>& rounds,
                      double round_duration_s) const;

 private:
  HanConfig cfg_;
};

}  // namespace vkey::baselines
