#include "baselines/han.h"

#include "common/error.h"
#include "common/stats.h"

namespace vkey::baselines {

HanV2V::HanV2V(const HanConfig& config) : cfg_(config) {
  VKEY_REQUIRE(cfg_.key_block_bits >= 8, "block too small");
}

BaselineMetrics HanV2V::run(const std::vector<channel::ProbeRound>& rounds,
                            double round_duration_s) const {
  VKEY_REQUIRE(!rounds.empty(), "empty trace");
  const PrssiSeries series = extract_prssi(rounds);

  const vkey::core::MultiBitQuantizer quant(cfg_.quantizer);
  const auto qa = quant.quantize(series.alice);
  const auto qb = quant.quantize(series.bob);
  const auto kept = vkey::core::intersect_indices(qa.kept, qb.kept);

  BaselineMetrics m;
  m.name = "Han et al.";
  if (kept.size() < cfg_.quantizer.block_size) return m;

  const BitVec bits_a = quant.quantize_at(series.alice, kept);
  const BitVec bits_b = quant.quantize_at(series.bob, kept);

  std::vector<double> kar_list;
  std::size_t success = 0;
  std::size_t blocks = 0;
  std::size_t leaked_total = 0;
  const std::size_t nblocks = bits_a.size() / cfg_.key_block_bits;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const BitVec ka = bits_a.slice(b * cfg_.key_block_bits,
                                   cfg_.key_block_bits);
    const BitVec kb = bits_b.slice(b * cfg_.key_block_bits,
                                   cfg_.key_block_bits);
    CascadeConfig cc = cfg_.cascade;
    cc.seed = vkey::hash_combine64(cfg_.cascade.seed, b);
    const auto rec = cascade_reconcile(ka, kb, cc);
    kar_list.push_back(rec.corrected.agreement(kb));
    leaked_total += rec.leaked_bits;
    if (rec.corrected == kb) ++success;
    ++blocks;
  }
  if (blocks == 0) return m;

  m.blocks = blocks;
  m.mean_kar = vkey::stats::mean(kar_list);
  m.std_kar = kar_list.size() >= 2 ? vkey::stats::sample_stddev(kar_list)
                                   : 0.0;
  m.key_success_rate =
      static_cast<double>(success) / static_cast<double>(blocks);

  // Net rate: parity disclosures are public information and must be
  // discounted from the secret material (privacy amplification shrinks the
  // key accordingly).
  const double leaked_per_block =
      static_cast<double>(leaked_total) / static_cast<double>(blocks);
  const double net_bits_per_block =
      std::max(0.0,
               static_cast<double>(cfg_.key_block_bits) - leaked_per_block);
  const double total_time =
      static_cast<double>(rounds.size()) * round_duration_s;
  m.kgr_bits_per_s = static_cast<double>(blocks) * net_bits_per_block *
                     m.mean_kar / total_time;
  return m;
}

}  // namespace vkey::baselines
