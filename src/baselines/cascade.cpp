#include "baselines/cascade.h"

#include <deque>
#include <numeric>
#include <set>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace vkey::baselines {

namespace {

/// Positions of one iteration laid out in permuted order, partitioned into
/// blocks of `block_len` (last block may be shorter).
struct IterationLayout {
  std::vector<std::size_t> order;        // permuted position list
  std::vector<std::size_t> block_of;     // position -> block id
  std::vector<std::vector<std::size_t>> blocks;  // block id -> positions
};

IterationLayout make_layout(std::size_t n, std::size_t block_len,
                            vkey::Rng& rng, bool identity) {
  IterationLayout lay;
  lay.order.resize(n);
  std::iota(lay.order.begin(), lay.order.end(), 0);
  if (!identity) {
    for (std::size_t i = n; i > 1; --i) {
      std::swap(lay.order[i - 1],
                lay.order[static_cast<std::size_t>(rng.uniform_int(i))]);
    }
  }
  lay.block_of.resize(n);
  for (std::size_t i = 0; i < n; i += block_len) {
    const std::size_t len = std::min(block_len, n - i);
    std::vector<std::size_t> blk(lay.order.begin() + static_cast<std::ptrdiff_t>(i),
                                 lay.order.begin() +
                                     static_cast<std::ptrdiff_t>(i + len));
    const std::size_t id = lay.blocks.size();
    for (std::size_t p : blk) lay.block_of[p] = id;
    lay.blocks.push_back(std::move(blk));
  }
  return lay;
}

}  // namespace

CascadeResult cascade_reconcile(const BitVec& alice, const BitVec& bob,
                                const CascadeConfig& cfg) {
  VKEY_REQUIRE(alice.size() == bob.size(), "cascade key size mismatch");
  VKEY_REQUIRE(cfg.initial_block >= 1, "initial block must be >= 1");
  VKEY_REQUIRE(cfg.iterations >= 1, "need at least one iteration");
  const std::size_t n = alice.size();

  CascadeResult result{alice, 0, 0};
  BitVec& work = result.corrected;
  vkey::Rng rng(cfg.seed);

  std::vector<IterationLayout> layouts;

  auto budget_left = [&] { return result.messages < cfg.max_messages; };

  auto block_parity_diff = [&](const std::vector<std::size_t>& blk) {
    std::uint8_t diff = 0;
    for (std::size_t p : blk) {
      diff ^= static_cast<std::uint8_t>(work.get(p) ^ bob.get(p));
    }
    ++result.messages;  // Bob discloses this block's parity
    ++result.leaked_bits;
    return diff != 0;
  };

  // Binary search inside a block (in its permuted order) to locate one
  // mismatching position; flips it in `work` and returns it.
  auto binary_search_fix = [&](const std::vector<std::size_t>& blk) {
    std::size_t lo = 0, hi = blk.size();
    while (hi - lo > 1 && budget_left()) {
      const std::size_t mid = lo + (hi - lo) / 2;
      std::uint8_t diff = 0;
      for (std::size_t i = lo; i < mid; ++i) {
        diff ^= static_cast<std::uint8_t>(work.get(blk[i]) ^ bob.get(blk[i]));
      }
      ++result.messages;  // Bob discloses the half-block parity
      ++result.leaked_bits;
      if (diff != 0) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    const std::size_t pos = blk[lo];
    work.flip(pos);
    return pos;
  };

  for (std::size_t it = 0; it < cfg.iterations; ++it) {
    const std::size_t block_len = cfg.initial_block << it;
    layouts.push_back(make_layout(n, std::min(block_len, n), rng,
                                  /*identity=*/it == 0));
    const IterationLayout& lay = layouts.back();

    if (!budget_left()) break;

    // Queue of (iteration, block id) pairs needing correction.
    std::deque<std::pair<std::size_t, std::size_t>> queue;
    for (std::size_t b = 0; b < lay.blocks.size() && budget_left(); ++b) {
      if (block_parity_diff(lay.blocks[b])) queue.emplace_back(it, b);
    }

    while (!queue.empty() && budget_left()) {
      const auto [qit, qb] = queue.front();
      queue.pop_front();
      const auto& blk = layouts[qit].blocks[qb];
      // Parity may have been fixed by a cascaded correction already.
      std::uint8_t diff = 0;
      for (std::size_t p : blk) {
        diff ^= static_cast<std::uint8_t>(work.get(p) ^ bob.get(p));
      }
      if (diff == 0) continue;
      const std::size_t fixed = binary_search_fix(blk);

      // Cascade: earlier iterations' blocks containing `fixed` flip parity.
      for (std::size_t j = 0; j <= it; ++j) {
        if (j == qit) continue;
        const std::size_t jb = layouts[j].block_of[fixed];
        std::uint8_t jdiff = 0;
        for (std::size_t p : layouts[j].blocks[jb]) {
          jdiff ^= static_cast<std::uint8_t>(work.get(p) ^ bob.get(p));
        }
        if (jdiff != 0) queue.emplace_back(j, jb);
      }
    }
  }
  return result;
}

}  // namespace vkey::baselines
