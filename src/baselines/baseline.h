// Shared interface for the state-of-the-art baselines compared in
// Fig. 12 / Fig. 13 (LoRa-Key, Han et al., Gao et al.).
//
// All baselines operate on packet RSSI (pRSSI) — one measurement per packet
// and per direction — which is precisely why their key generation rates trail
// Vehicle-Key's arRSSI stream by roughly an order of magnitude.
#pragma once

#include <string>
#include <vector>

#include "channel/trace.h"

namespace vkey::baselines {

struct BaselineMetrics {
  std::string name;
  double mean_kar = 0.0;          ///< post-reconciliation bit agreement
  double std_kar = 0.0;
  double key_success_rate = 0.0;  ///< exact 64-bit block agreement
  double kgr_bits_per_s = 0.0;    ///< net secret bits per second (leaked
                                  ///< reconciliation bits subtracted)
  std::size_t blocks = 0;
};

/// Paired pRSSI series measured by the two parties over a trace.
struct PrssiSeries {
  std::vector<double> alice;
  std::vector<double> bob;
};

/// Extract per-round pRSSI pairs from a trace.
PrssiSeries extract_prssi(const std::vector<channel::ProbeRound>& rounds);

}  // namespace vkey::baselines
