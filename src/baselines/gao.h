// Gao et al. baseline (IPSN 2021): "A novel model-based security scheme for
// LoRa key generation".
//
// Gao et al. fit a channel model and quantize model-filtered measurements in
// rounds; the paper's comparison configures "interval = 20 and round number
// = 50". We implement the scheme's operative structure as described: packet
// RSSI is smoothed by an exponentially-weighted channel model; every
// `interval` probe exchanges ("one round") the accumulated residuals are
// differentially quantized into one bit per interval via the median
// threshold; at most `rounds` rounds contribute to one key; CS
// reconciliation (same 20 x 64-style matrix family as LoRa-Key) corrects the
// result. The scheme's per-interval bit budget is what limits its key rate
// (the paper measures Vehicle-Key at ~14x its KGR), and its model filter —
// designed for static nodes — is what degrades its agreement under mobility.
#pragma once

#include <cstdint>

#include "baselines/baseline.h"

namespace vkey::baselines {

struct GaoConfig {
  std::size_t interval = 20;      ///< probe exchanges per quantization round
  std::size_t rounds = 50;        ///< max rounds per key
  double model_alpha = 0.3;       ///< EWMA smoothing factor of the model
  std::size_t key_block_bits = 64;
  std::size_t cs_rows = 20;
  std::size_t max_mismatches = 10;
  std::uint64_t seed = 59;
};

class GaoModel {
 public:
  explicit GaoModel(const GaoConfig& config = {});

  BaselineMetrics run(const std::vector<channel::ProbeRound>& rounds,
                      double round_duration_s) const;

 private:
  GaoConfig cfg_;
};

}  // namespace vkey::baselines
