#include "baselines/lorakey.h"

#include <cmath>

#include "common/error.h"
#include "common/stats.h"
#include "cs/compressed_sensing.h"

namespace vkey::baselines {

LoRaKey::LoRaKey(const LoRaKeyConfig& config) : cfg_(config) {
  VKEY_REQUIRE(cfg_.key_block_bits >= 8, "block too small");
}

BaselineMetrics LoRaKey::run(const std::vector<channel::ProbeRound>& rounds,
                             double round_duration_s) const {
  VKEY_REQUIRE(!rounds.empty(), "empty trace");
  const PrssiSeries series = extract_prssi(rounds);

  // Quantize with guard bands on both sides, then intersect kept indices
  // (the index lists are exchanged in plaintext; they leak timing only).
  const vkey::core::MultiBitQuantizer quant(cfg_.quantizer);
  const auto qa = quant.quantize(series.alice);
  const auto qb = quant.quantize(series.bob);
  const auto kept = vkey::core::intersect_indices(qa.kept, qb.kept);

  BaselineMetrics m;
  m.name = "LoRa-Key";
  if (kept.size() < cfg_.quantizer.block_size) return m;  // no material

  const BitVec bits_a = quant.quantize_at(series.alice, kept);
  const BitVec bits_b = quant.quantize_at(series.bob, kept);

  // CS reconciliation on fixed-width blocks.
  const Matrix phi = vkey::cs::make_sensing_matrix(
      cfg_.cs_rows, cfg_.key_block_bits, cfg_.seed);

  std::vector<double> kar_list;
  std::size_t success = 0;
  std::size_t blocks = 0;
  const std::size_t nblocks = bits_a.size() / cfg_.key_block_bits;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const BitVec ka = bits_a.slice(b * cfg_.key_block_bits,
                                   cfg_.key_block_bits);
    const BitVec kb = bits_b.slice(b * cfg_.key_block_bits,
                                   cfg_.key_block_bits);
    const auto syndrome = vkey::cs::cs_syndrome(phi, kb);
    const auto rec = vkey::cs::cs_reconcile(phi, ka, syndrome,
                                            cfg_.max_mismatches);
    kar_list.push_back(rec.corrected.agreement(kb));
    if (rec.corrected == kb) ++success;
    ++blocks;
  }
  if (blocks == 0) return m;

  m.blocks = blocks;
  m.mean_kar = vkey::stats::mean(kar_list);
  m.std_kar = kar_list.size() >= 2 ? vkey::stats::sample_stddev(kar_list)
                                   : 0.0;
  m.key_success_rate =
      static_cast<double>(success) / static_cast<double>(blocks);
  const double total_time =
      static_cast<double>(rounds.size()) * round_duration_s;
  // The published CS syndrome (cs_rows real measurements of the key) leaks
  // at most cs_rows bits; privacy amplification discounts them. KGR is the
  // net matched secret-bit rate (same convention as the Vehicle-Key
  // pipeline).
  const double net_bits_per_block = std::max(
      0.0, static_cast<double>(cfg_.key_block_bits - cfg_.cs_rows));
  m.kgr_bits_per_s = static_cast<double>(blocks) * net_bits_per_block *
                     m.mean_kar / total_time;
  return m;
}

}  // namespace vkey::baselines
