// LoRa-Key baseline (Xu et al., IEEE IoT-J 2018).
//
// Protocol as evaluated in the paper's Fig. 12/13 comparison:
//  * channel feature: packet RSSI (one value per probe exchange);
//  * quantization: multi-bit quantile quantizer with guard-band ratio
//    alpha = 0.8 (the paper's tuned value); the two parties exchange kept
//    sample indices and intersect them;
//  * reconciliation: compressed sensing with a 20 x 64 random matrix and an
//    OMP decoder;
//  * privacy amplification: hashing (not modeled in the rate, identical for
//    all schemes).
#pragma once

#include <cstdint>

#include "baselines/baseline.h"
#include "core/quantizer.h"

namespace vkey::baselines {

struct LoRaKeyConfig {
  vkey::core::QuantizerConfig quantizer{
      .bits_per_sample = 2, .block_size = 16, .guard_band_ratio = 0.8};
  std::size_t key_block_bits = 64;   ///< CS block size N
  std::size_t cs_rows = 20;          ///< paper: 20 x 64 sensing matrix
  std::size_t max_mismatches = 10;   ///< OMP sparsity budget
  std::uint64_t seed = 17;
};

class LoRaKey {
 public:
  explicit LoRaKey(const LoRaKeyConfig& config = {});

  /// Run the complete protocol over a trace; `round_duration_s` is the
  /// wall-clock cost of one probe exchange (from the trace generator).
  BaselineMetrics run(const std::vector<channel::ProbeRound>& rounds,
                      double round_duration_s) const;

 private:
  LoRaKeyConfig cfg_;
};

}  // namespace vkey::baselines
