#include "baselines/gao.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/stats.h"
#include "cs/compressed_sensing.h"

namespace vkey::baselines {

GaoModel::GaoModel(const GaoConfig& config) : cfg_(config) {
  VKEY_REQUIRE(cfg_.interval >= 2, "interval too small");
  VKEY_REQUIRE(cfg_.rounds >= 1, "rounds must be >= 1");
  VKEY_REQUIRE(cfg_.key_block_bits >= 8, "block too small");
}

namespace {

/// Model-based single-bit extraction: EWMA channel model, median-of-interval
/// differential threshold (one bit per probe exchange).
std::vector<std::uint8_t> extract_bits(const std::vector<double>& x,
                                       double alpha, std::size_t interval) {
  std::vector<std::uint8_t> bits;
  if (x.empty()) return bits;
  double model = x.front();
  std::vector<double> residuals;
  residuals.reserve(x.size());
  for (double v : x) {
    model = alpha * v + (1.0 - alpha) * model;
    residuals.push_back(v - model);
  }
  bits.reserve(x.size());
  for (std::size_t i = 0; i < residuals.size(); ++i) {
    const std::size_t lo = (i + 1 >= interval) ? i + 1 - interval : 0;
    std::vector<double> window(
        residuals.begin() + static_cast<std::ptrdiff_t>(lo),
        residuals.begin() + static_cast<std::ptrdiff_t>(i + 1));
    const double th = vkey::stats::median(window);
    bits.push_back(residuals[i] > th ? 1 : 0);
  }
  return bits;
}

}  // namespace

BaselineMetrics GaoModel::run(const std::vector<channel::ProbeRound>& rounds,
                              double round_duration_s) const {
  VKEY_REQUIRE(!rounds.empty(), "empty trace");
  const PrssiSeries series = extract_prssi(rounds);

  // Cap the usable probe budget at interval * rounds per the configured
  // protocol limits (resets for each key block).
  // The model-based rounds emit one bit per (interval / 10) probe
  // exchanges: average the pRSSI over each group first.
  const std::size_t group = std::max<std::size_t>(1, cfg_.interval / 10);
  auto grouped = [&](const std::vector<double>& x) {
    std::vector<double> out;
    for (std::size_t i = 0; i + group <= x.size(); i += group) {
      double s = 0.0;
      for (std::size_t j = 0; j < group; ++j) s += x[i + j];
      out.push_back(s / static_cast<double>(group));
    }
    return out;
  };
  const auto bits_a_raw =
      extract_bits(grouped(series.alice), cfg_.model_alpha, cfg_.interval);
  const auto bits_b_raw =
      extract_bits(grouped(series.bob), cfg_.model_alpha, cfg_.interval);

  BitVec bits_a{std::vector<std::uint8_t>(bits_a_raw)};
  BitVec bits_b{std::vector<std::uint8_t>(bits_b_raw)};

  BaselineMetrics m;
  m.name = "Gao et al.";
  if (bits_a.size() < cfg_.key_block_bits) return m;

  const Matrix phi = vkey::cs::make_sensing_matrix(
      cfg_.cs_rows, cfg_.key_block_bits, cfg_.seed);

  std::vector<double> kar_list;
  std::size_t success = 0;
  std::size_t blocks = 0;
  const std::size_t max_blocks_budget =
      std::max<std::size_t>(1, cfg_.interval * cfg_.rounds /
                                   cfg_.key_block_bits);
  const std::size_t nblocks =
      std::min(bits_a.size() / cfg_.key_block_bits, max_blocks_budget * 64);
  for (std::size_t b = 0; b < nblocks; ++b) {
    const BitVec ka = bits_a.slice(b * cfg_.key_block_bits,
                                   cfg_.key_block_bits);
    const BitVec kb = bits_b.slice(b * cfg_.key_block_bits,
                                   cfg_.key_block_bits);
    const auto syndrome = vkey::cs::cs_syndrome(phi, kb);
    const auto rec = vkey::cs::cs_reconcile(phi, ka, syndrome,
                                            cfg_.max_mismatches);
    kar_list.push_back(rec.corrected.agreement(kb));
    if (rec.corrected == kb) ++success;
    ++blocks;
  }
  if (blocks == 0) return m;

  m.blocks = blocks;
  m.mean_kar = vkey::stats::mean(kar_list);
  m.std_kar = kar_list.size() >= 2 ? vkey::stats::sample_stddev(kar_list)
                                   : 0.0;
  m.key_success_rate =
      static_cast<double>(success) / static_cast<double>(blocks);
  const double total_time =
      static_cast<double>(rounds.size()) * round_duration_s;
  const double net_bits_per_block = std::max(
      0.0, static_cast<double>(cfg_.key_block_bits - cfg_.cs_rows));
  m.kgr_bits_per_s = static_cast<double>(blocks) * net_bits_per_block *
                     m.mean_kar / total_time;
  return m;
}

}  // namespace vkey::baselines
