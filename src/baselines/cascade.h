// Cascade information reconciliation (Brassard & Salvail, EUROCRYPT '93),
// the error-correction stage of the Han et al. baseline.
//
// Alice corrects her key toward Bob's by comparing block parities over
// several iterations with fresh random permutations; an odd-parity block is
// binary-searched to locate one flip, and the cascade effect re-checks
// earlier iterations' blocks containing the corrected position.
//
// The simulation runs both sides locally but faithfully accounts the
// interaction: every parity Bob discloses is one message and one leaked bit
// (leaked bits are subtracted from the net key rate; the multi-round
// interaction is the communication-overhead drawback the paper cites).
#pragma once

#include <cstdint>

#include "common/bitvec.h"

namespace vkey::baselines {

struct CascadeConfig {
  std::size_t initial_block = 3;  ///< k (paper's Han et al. setting: 3)
  std::size_t iterations = 4;     ///< paper's setting: 4
  /// Interaction budget: LoRa's duty-cycled, tens-of-bps uplink cannot
  /// carry unbounded parity traffic (the overhead the paper criticizes
  /// Cascade for). Once this many parity messages have been exchanged the
  /// protocol stops, leaving any remaining mismatches uncorrected.
  std::size_t max_messages = 200;
  std::uint64_t seed = 33;        ///< shared permutation seed
};

struct CascadeResult {
  BitVec corrected;        ///< Alice's key after reconciliation
  std::size_t messages = 0;     ///< parity-exchange messages
  std::size_t leaked_bits = 0;  ///< parity bits disclosed to the channel
};

/// Reconcile `alice` toward `bob` (sizes must match).
CascadeResult cascade_reconcile(const BitVec& alice, const BitVec& bob,
                                const CascadeConfig& config = {});

}  // namespace vkey::baselines
