#include "ecc/bch.h"

#include <algorithm>
#include <set>

#include "common/error.h"

namespace vkey::ecc {

namespace {

/// Minimal polynomial of alpha^i over GF(2): product of (x - alpha^j) over
/// the cyclotomic coset of i.
std::vector<std::uint8_t> minimal_polynomial(const GaloisField& gf, int i) {
  // Collect the coset {i, 2i, 4i, ...} mod (2^m - 1).
  std::set<int> coset;
  int cur = i % gf.order();
  while (coset.insert(cur).second) {
    cur = (2 * cur) % gf.order();
  }
  // Multiply out prod (x + alpha^j) with coefficients in GF(2^m); the
  // result has GF(2) coefficients by conjugacy.
  std::vector<int> poly{1};  // constant polynomial 1, coefficients in field
  for (int j : coset) {
    const int root = gf.exp(j);
    std::vector<int> next(poly.size() + 1, 0);
    for (std::size_t d = 0; d < poly.size(); ++d) {
      next[d + 1] ^= poly[d];                 // x * poly
      next[d] ^= gf.mul(poly[d], root);       // alpha^j * poly
    }
    poly = std::move(next);
  }
  std::vector<std::uint8_t> out(poly.size());
  for (std::size_t d = 0; d < poly.size(); ++d) {
    VKEY_REQUIRE(poly[d] == 0 || poly[d] == 1,
                 "minimal polynomial is not binary");
    out[d] = static_cast<std::uint8_t>(poly[d]);
  }
  return out;
}

}  // namespace

BchCode::BchCode(int m, int t) : gf_(m), n_((1 << m) - 1), t_(t) {
  VKEY_REQUIRE(t >= 1, "t must be >= 1");
  // Generator = LCM of minimal polynomials of alpha^1 .. alpha^{2t}.
  // Track covered exponents to take the LCM without polynomial GCDs.
  std::set<int> covered;
  generator_ = {1};
  for (int i = 1; i <= 2 * t; ++i) {
    if (covered.count(i % gf_.order())) continue;
    // Mark the whole coset as covered.
    int cur = i % gf_.order();
    while (covered.insert(cur).second) cur = (2 * cur) % gf_.order();
    generator_ = gf2poly::multiply(generator_, minimal_polynomial(gf_, i));
  }
  const int deg = gf2poly::degree(generator_);
  k_ = n_ - deg;
  VKEY_REQUIRE(k_ > 0, "t too large for this field: no information bits");
}

BitVec BchCode::parity(const BitVec& info) const {
  VKEY_REQUIRE(static_cast<int>(info.size()) == k_,
               "BCH info width mismatch");
  // Systematic encoding: parity = (info(x) * x^{n-k}) mod g(x).
  const int pbits = n_ - k_;
  std::vector<std::uint8_t> poly(static_cast<std::size_t>(n_), 0);
  for (int i = 0; i < k_; ++i) {
    poly[static_cast<std::size_t>(pbits + i)] = info.get(static_cast<std::size_t>(i));
  }
  const auto rem = gf2poly::mod(std::move(poly), generator_);
  BitVec out(static_cast<std::size_t>(pbits));
  for (int i = 0; i < pbits; ++i) {
    if (static_cast<std::size_t>(i) < rem.size() && rem[static_cast<std::size_t>(i)]) {
      out.set(static_cast<std::size_t>(i), true);
    }
  }
  return out;
}

BitVec BchCode::encode(const BitVec& info) const {
  BitVec cw = info;
  cw.append(parity(info));
  return cw;
}

BitVec BchCode::info_of(const BitVec& codeword) const {
  VKEY_REQUIRE(static_cast<int>(codeword.size()) == n_,
               "BCH codeword width mismatch");
  return codeword.slice(0, static_cast<std::size_t>(k_));
}

std::optional<BchCode::DecodeResult> BchCode::decode(
    const BitVec& received) const {
  VKEY_REQUIRE(static_cast<int>(received.size()) == n_,
               "BCH codeword width mismatch");

  // The polynomial view must match the systematic encoder's layout:
  // info bit j is the coefficient of x^{(n-k)+j}; parity bit j (codeword
  // index >= k) is the coefficient of x^{j-k}.
  const int pbits = n_ - k_;
  auto bit_power = [this, pbits](std::size_t j) {
    const int ji = static_cast<int>(j);
    return ji < k_ ? pbits + ji : ji - k_;
  };
  auto power_bit = [this, pbits](int p) {
    return static_cast<std::size_t>(p >= pbits ? p - pbits : k_ + p);
  };

  // Syndromes S_i = r(alpha^i), i = 1..2t.
  std::vector<int> syndrome(static_cast<std::size_t>(2 * t_ + 1), 0);
  bool all_zero = true;
  for (int i = 1; i <= 2 * t_; ++i) {
    int s = 0;
    for (std::size_t j = 0; j < received.size(); ++j) {
      if (received.get(j)) {
        s ^= gf_.exp(bit_power(j) * i);
      }
    }
    syndrome[static_cast<std::size_t>(i)] = s;
    if (s != 0) all_zero = false;
  }
  if (all_zero) return DecodeResult{received, 0};

  // Berlekamp-Massey over GF(2^m): error-locator polynomial sigma.
  std::vector<int> sigma{1};    // current locator
  std::vector<int> prev{1};     // B(x)
  int l = 0;
  int shift = 1;
  int prev_discrepancy = 1;
  for (int i = 1; i <= 2 * t_; ++i) {
    // Discrepancy d = S_i + sum sigma_j * S_{i-j}.
    int d = syndrome[static_cast<std::size_t>(i)];
    for (int j = 1; j <= l && j < static_cast<int>(sigma.size()); ++j) {
      d ^= gf_.mul(sigma[static_cast<std::size_t>(j)],
                   syndrome[static_cast<std::size_t>(i - j)]);
    }
    if (d == 0) {
      ++shift;
      continue;
    }
    const std::vector<int> sigma_save = sigma;
    // sigma' = sigma - (d / prev_d) x^shift * prev.
    const int coef = gf_.mul(d, gf_.inv(prev_discrepancy));
    const std::size_t need = prev.size() + static_cast<std::size_t>(shift);
    if (sigma.size() < need) sigma.resize(need, 0);
    for (std::size_t j = 0; j < prev.size(); ++j) {
      sigma[j + static_cast<std::size_t>(shift)] ^= gf_.mul(coef, prev[j]);
    }
    if (2 * l <= i - 1) {
      l = i - l;
      prev = sigma_save;
      prev_discrepancy = d;
      shift = 1;
    } else {
      ++shift;
    }
  }
  if (l > t_) return std::nullopt;  // beyond design distance

  // Chien search: roots of sigma give error positions.
  BitVec corrected = received;
  std::size_t errors = 0;
  for (int p = 0; p < n_; ++p) {
    // Evaluate sigma at alpha^{-p}; a root means an error at power p.
    int val = 0;
    for (std::size_t j = 0; j < sigma.size(); ++j) {
      if (sigma[j] == 0) continue;
      val ^= gf_.mul(sigma[j],
                     gf_.exp((gf_.order() - p) * static_cast<int>(j)));
    }
    if (val == 0) {
      corrected.flip(power_bit(p));
      ++errors;
    }
  }
  if (static_cast<int>(errors) != l) return std::nullopt;  // locator lied

  // Verify: all syndromes of the corrected word vanish.
  for (int i = 1; i <= 2 * t_; ++i) {
    int s = 0;
    for (std::size_t j = 0; j < corrected.size(); ++j) {
      if (corrected.get(j)) s ^= gf_.exp(bit_power(j) * i);
    }
    if (s != 0) return std::nullopt;
  }
  return DecodeResult{std::move(corrected), errors};
}

BchReconciler::BchReconciler(int m, int t, std::size_t key_bits)
    : code_(m, t), key_bits_(key_bits) {
  VKEY_REQUIRE(key_bits >= 1 &&
                   static_cast<int>(key_bits) <= code_.k(),
               "key does not fit the code's information bits");
}

BitVec BchReconciler::pad(const BitVec& key) const {
  VKEY_REQUIRE(key.size() == key_bits_, "key width mismatch");
  BitVec info = key;
  while (static_cast<int>(info.size()) < code_.k()) info.push_back(false);
  return info;
}

BitVec BchReconciler::helper_data(const BitVec& key_bob) const {
  return code_.parity(pad(key_bob));
}

std::optional<BitVec> BchReconciler::reconcile(const BitVec& key_alice,
                                               const BitVec& helper) const {
  VKEY_REQUIRE(static_cast<int>(helper.size()) == code_.parity_bits(),
               "helper width mismatch");
  BitVec word = pad(key_alice);
  word.append(helper);
  const auto decoded = code_.decode(word);
  if (!decoded.has_value()) return std::nullopt;
  return code_.info_of(decoded->codeword).slice(0, key_bits_);
}

}  // namespace vkey::ecc
