// Binary BCH code with syndrome decoding.
//
// BCH(n = 2^m - 1, k, t): the generator polynomial is the least common
// multiple of the minimal polynomials of alpha^1 .. alpha^{2t}; decoding is
// the classic chain syndromes -> Berlekamp-Massey error locator -> Chien
// search. Used here as the code-offset ("fuzzy extractor") reconciliation
// baseline: Bob publishes the parity of his key, Alice decodes
// (K_Alice | parity_Bob) and the corrected information bits equal K_Bob
// whenever d_H(K_Alice, K_Bob) <= t.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitvec.h"
#include "ecc/gf.h"

namespace vkey::ecc {

class BchCode {
 public:
  /// Construct BCH over GF(2^m) correcting up to `t` errors.
  BchCode(int m, int t);

  int n() const { return n_; }          ///< codeword length, 2^m - 1
  int k() const { return k_; }          ///< information bits
  int t() const { return t_; }          ///< designed correction capability
  int parity_bits() const { return n_ - k_; }

  /// Systematic encoding: returns the (n-k) parity bits of `info`
  /// (info.size() must equal k()).
  BitVec parity(const BitVec& info) const;

  /// Full systematic codeword: info || parity.
  BitVec encode(const BitVec& info) const;

  struct DecodeResult {
    BitVec codeword;        ///< corrected codeword (info || parity)
    std::size_t errors = 0;  ///< number of positions flipped
  };

  /// Decode an n-bit word; nullopt if the error pattern exceeds the
  /// correction capability (decoder failure).
  std::optional<DecodeResult> decode(const BitVec& received) const;

  /// Information part of a codeword.
  BitVec info_of(const BitVec& codeword) const;

 private:
  GaloisField gf_;
  int n_ = 0;
  int k_ = 0;
  int t_ = 0;
  std::vector<std::uint8_t> generator_;  // GF(2) polynomial, LSB-first
};

/// Code-offset reconciliation built on a BCH code.
///
/// Bob publishes parity(K_Bob) — a leak of (n - k) bits, discounted by
/// privacy amplification. Alice decodes (K_Alice || parity_Bob); if at most
/// t positions differ, the corrected information bits equal K_Bob. Keys
/// shorter than k are zero-padded (padding positions are error-free, so
/// the full t budget protects the key bits).
class BchReconciler {
 public:
  /// `key_bits` <= k of the constructed code.
  BchReconciler(int m, int t, std::size_t key_bits);

  std::size_t key_bits() const { return key_bits_; }
  const BchCode& code() const { return code_; }

  /// Bob's side: the public helper data.
  BitVec helper_data(const BitVec& key_bob) const;

  /// Alice's side: returns her corrected key, or nullopt on decoder failure
  /// (mismatch beyond t — the session should abort/retry).
  std::optional<BitVec> reconcile(const BitVec& key_alice,
                                  const BitVec& helper) const;

 private:
  BitVec pad(const BitVec& key) const;

  BchCode code_;
  std::size_t key_bits_ = 0;
};

}  // namespace vkey::ecc
