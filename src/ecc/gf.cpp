#include "ecc/gf.h"

#include "common/error.h"

namespace vkey::ecc {

namespace {
// Primitive polynomials over GF(2), one per m (coefficient bitmask,
// bit i = coefficient of x^i). Standard choices from coding-theory tables.
constexpr int kPrimitive[] = {
    0,      0,     0,
    0b1011,          // m=3:  x^3 + x + 1
    0b10011,         // m=4:  x^4 + x + 1
    0b100101,        // m=5:  x^5 + x^2 + 1
    0b1000011,       // m=6:  x^6 + x + 1
    0b10001001,      // m=7:  x^7 + x^3 + 1
    0b100011101,     // m=8:  x^8 + x^4 + x^3 + x^2 + 1
    0b1000010001,    // m=9:  x^9 + x^4 + 1
    0b10000001001,   // m=10: x^10 + x^3 + 1
    0b100000000101,  // m=11: x^11 + x^2 + 1
    0b1000001010011  // m=12: x^12 + x^6 + x^4 + x + 1
};
}  // namespace

GaloisField::GaloisField(int m) : m_(m), n_((1 << m) - 1) {
  VKEY_REQUIRE(m >= 3 && m <= 12, "GF(2^m) supported for m in [3,12]");
  exp_.assign(static_cast<std::size_t>(2 * n_), 0);
  log_.assign(static_cast<std::size_t>(n_ + 1), 0);
  const int prim = kPrimitive[m];
  int x = 1;
  for (int i = 0; i < n_; ++i) {
    exp_[static_cast<std::size_t>(i)] = x;
    log_[static_cast<std::size_t>(x)] = i;
    x <<= 1;
    if (x & (1 << m)) x ^= prim;
  }
  // Duplicate for mod-free exponent addition.
  for (int i = 0; i < n_; ++i) {
    exp_[static_cast<std::size_t>(n_ + i)] = exp_[static_cast<std::size_t>(i)];
  }
}

int GaloisField::exp(int i) const {
  int r = i % n_;
  if (r < 0) r += n_;
  return exp_[static_cast<std::size_t>(r)];
}

int GaloisField::log(int x) const {
  VKEY_REQUIRE(x > 0 && x <= n_, "log of zero or out-of-field element");
  return log_[static_cast<std::size_t>(x)];
}

int GaloisField::mul(int a, int b) const {
  if (a == 0 || b == 0) return 0;
  return exp_[static_cast<std::size_t>(log(a) + log(b))];
}

int GaloisField::inv(int x) const {
  VKEY_REQUIRE(x != 0, "inverse of zero");
  return exp(n_ - log(x));
}

int GaloisField::pow(int x, int p) const {
  VKEY_REQUIRE(p >= 0, "negative exponent");
  if (x == 0) return p == 0 ? 1 : 0;
  return exp((log(x) * (p % n_)) % n_);
}

namespace gf2poly {

int degree(const std::vector<std::uint8_t>& p) {
  for (std::size_t i = p.size(); i-- > 0;) {
    if (p[i]) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::uint8_t> multiply(const std::vector<std::uint8_t>& a,
                                   const std::vector<std::uint8_t>& b) {
  const int da = degree(a);
  const int db = degree(b);
  if (da < 0 || db < 0) return {0};
  std::vector<std::uint8_t> out(static_cast<std::size_t>(da + db + 1), 0);
  for (int i = 0; i <= da; ++i) {
    if (!a[static_cast<std::size_t>(i)]) continue;
    for (int j = 0; j <= db; ++j) {
      out[static_cast<std::size_t>(i + j)] ^= b[static_cast<std::size_t>(j)];
    }
  }
  return out;
}

std::vector<std::uint8_t> mod(std::vector<std::uint8_t> a,
                              const std::vector<std::uint8_t>& b) {
  const int db = degree(b);
  VKEY_REQUIRE(db >= 0, "mod by zero polynomial");
  int da = degree(a);
  while (da >= db) {
    const int shift = da - db;
    for (int j = 0; j <= db; ++j) {
      a[static_cast<std::size_t>(j + shift)] ^= b[static_cast<std::size_t>(j)];
    }
    da = degree(a);
  }
  a.resize(static_cast<std::size_t>(db > 0 ? db : 1), 0);
  return a;
}

}  // namespace gf2poly

}  // namespace vkey::ecc
