// Galois field GF(2^m) arithmetic (table-based).
//
// Substrate for the BCH error-correcting code used by the code-offset
// reconciliation baseline (the "error-correction code" family of
// reconciliation methods the paper cites as [22]). Elements are represented
// as integers in [0, 2^m); addition is XOR; multiplication goes through
// exp/log tables built from a primitive polynomial.
#pragma once

#include <cstdint>
#include <vector>

namespace vkey::ecc {

class GaloisField {
 public:
  /// Build GF(2^m) for m in [3, 12] using a standard primitive polynomial.
  explicit GaloisField(int m);

  int m() const { return m_; }
  /// Field size minus one: the multiplicative-group order, 2^m - 1.
  int order() const { return n_; }

  /// alpha^i for i taken mod (2^m - 1).
  int exp(int i) const;

  /// Discrete log base alpha; x must be nonzero.
  int log(int x) const;

  int add(int a, int b) const { return a ^ b; }

  int mul(int a, int b) const;

  /// Multiplicative inverse; x must be nonzero.
  int inv(int x) const;

  /// x^p with x in the field, p any non-negative integer.
  int pow(int x, int p) const;

 private:
  int m_ = 0;
  int n_ = 0; // 2^m - 1
  std::vector<int> exp_;
  std::vector<int> log_;
};

/// Polynomials over GF(2) packed LSB-first into a vector<uint8_t> of 0/1
/// coefficients (index = degree). Helpers for generator construction.
namespace gf2poly {

/// Degree of p (-1 for the zero polynomial).
int degree(const std::vector<std::uint8_t>& p);

/// Product of two GF(2) polynomials.
std::vector<std::uint8_t> multiply(const std::vector<std::uint8_t>& a,
                                   const std::vector<std::uint8_t>& b);

/// Remainder of a mod b (b nonzero).
std::vector<std::uint8_t> mod(std::vector<std::uint8_t> a,
                              const std::vector<std::uint8_t>& b);

}  // namespace gf2poly

}  // namespace vkey::ecc
