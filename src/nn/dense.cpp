#include "nn/dense.h"

#include <cmath>

#include "common/error.h"
#include "common/metrics.h"
#include "nn/activations.h"

namespace vkey::nn {

namespace {

// Hot-path FLOP accounting: register once, then one relaxed atomic add per
// layer pass (multiply+add counted as 2 FLOPs).
metrics::Counter& dense_flops() {
  static metrics::Counter& c =
      metrics::Registry::global().counter("nn.dense.flops");
  return c;
}
metrics::Counter& dense_calls() {
  static metrics::Counter& c =
      metrics::Registry::global().counter("nn.dense.forward_calls");
  return c;
}

}  // namespace

Dense::Dense(std::size_t in, std::size_t out, vkey::Rng& rng, Activation act)
    : in_(in), out_(out), act_(act), w_(in * out), b_(out) {
  VKEY_REQUIRE(in > 0 && out > 0, "Dense sizes must be positive");
  const double bound = std::sqrt(6.0 / static_cast<double>(in + out));
  for (auto& v : w_.value) v = rng.uniform(-bound, bound);
}

const PackedMatrix& Dense::packed() const {
  pack_guard_.ensure(w_.revision,
                     [this] { packed_w_.pack(w_.value.data(), out_, in_); });
  return packed_w_;
}

const QuantizedMatrix& Dense::quant() const {
  quant_guard_.ensure(w_.revision,
                      [this] { quant_w_.pack(w_.value.data(), out_, in_); });
  return quant_w_;
}

Vec Dense::affine(const Vec& x, bool quantized) const {
  // Validate BEFORE counting: a rejected input must not inflate the FLOP /
  // call counters with work that never ran.
  VKEY_REQUIRE(x.size() == in_, "Dense input size mismatch");
  dense_calls().add(1);
  dense_flops().add(2 * static_cast<std::uint64_t>(in_) * out_);
  Vec z(out_);
  if (quantized) {
    const QuantizedMatrix& qm = quant();
    std::vector<std::int8_t> xq(qm.padded_cols(), 0);
    const double x_scale =
        QuantizedMatrix::quantize_input(x.data(), in_, xq.data());
    qm.matvec(xq.data(), x_scale, b_.value.data(), z.data());
  } else {
    packed().matvec(x.data(), b_.value.data(), z.data());
  }
  return z;
}

Vec Dense::infer_reference(const Vec& x) const {
  VKEY_REQUIRE(x.size() == in_, "Dense input size mismatch");
  Vec z(out_);
  for (std::size_t o = 0; o < out_; ++o) {
    double s = b_.value[o];
    const double* wrow = &w_.value[o * in_];
    for (std::size_t i = 0; i < in_; ++i) s += wrow[i] * x[i];
    z[o] = s;
  }
  return activate(z);
}

Vec Dense::activate(const Vec& z) const {
  switch (act_) {
    case Activation::kNone:
      return z;
    case Activation::kSigmoid:
      return sigmoid_vec(z);
    case Activation::kTanh:
      return tanh_vec(z);
    case Activation::kRelu: {
      Vec y(z.size());
      for (std::size_t i = 0; i < z.size(); ++i) y[i] = z[i] > 0 ? z[i] : 0.0;
      return y;
    }
  }
  throw vkey::Error("unknown activation");
}

Vec Dense::forward(const Vec& x) {
  last_x_ = x;
  last_y_ = activate(affine(x, /*quantized=*/false));
  return last_y_;
}

Vec Dense::forward(const Vec& x, Cache& cache) const {
  cache.x = x;
  cache.y = activate(affine(x, /*quantized=*/false));
  return cache.y;
}

Vec Dense::infer(const Vec& x) const { return activate(affine(x, quantized_)); }

std::vector<Vec> Dense::infer_batch(const std::vector<const Vec*>& xs) const {
  std::vector<Vec> ys(xs.size());
  if (xs.empty()) return ys;
  for (const Vec* x : xs)
    VKEY_REQUIRE(x != nullptr && x->size() == in_,
                 "Dense input size mismatch");
  dense_calls().add(xs.size());
  dense_flops().add(2 * static_cast<std::uint64_t>(in_) * out_ * xs.size());
  if (quantized_) {
    // int8 rows stream ~8x less data than float, so the batched panel
    // reuse buys nothing; per-member matvec keeps it simple.
    const QuantizedMatrix& qm = quant();
    std::vector<std::int8_t> xq(qm.padded_cols());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      std::fill(xq.begin(), xq.end(), static_cast<std::int8_t>(0));
      const double x_scale =
          QuantizedMatrix::quantize_input(xs[i]->data(), in_, xq.data());
      ys[i].resize(out_);
      qm.matvec(xq.data(), x_scale, b_.value.data(), ys[i].data());
      ys[i] = activate(ys[i]);
    }
    return ys;
  }
  std::vector<const double*> xp(xs.size());
  std::vector<double*> yp(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ys[i].resize(out_);
    xp[i] = xs[i]->data();
    yp[i] = ys[i].data();
  }
  packed().matvec_batch(xp.data(), xs.size(), b_.value.data(), yp.data());
  for (auto& y : ys) y = activate(y);
  return ys;
}

Vec Dense::backward_impl(const Vec& x, const Vec& y, const Vec& grad_out,
                         Vec& grad_w, Vec& grad_b) const {
  VKEY_REQUIRE(grad_out.size() == out_, "Dense grad size mismatch");
  VKEY_REQUIRE(x.size() == in_, "Dense backward before forward");

  // Fold the activation derivative into the output gradient.
  Vec dz = grad_out;
  switch (act_) {
    case Activation::kNone:
      break;
    case Activation::kSigmoid:
      for (std::size_t o = 0; o < out_; ++o) dz[o] *= dsigmoid_from_y(y[o]);
      break;
    case Activation::kTanh:
      for (std::size_t o = 0; o < out_; ++o) dz[o] *= dtanh_from_y(y[o]);
      break;
    case Activation::kRelu:
      for (std::size_t o = 0; o < out_; ++o)
        if (y[o] <= 0.0) dz[o] = 0.0;
      break;
  }

  Vec dx(in_, 0.0);
  for (std::size_t o = 0; o < out_; ++o) {
    const double g = dz[o];
    grad_b[o] += g;
    double* gw = &grad_w[o * in_];
    const double* wrow = &w_.value[o * in_];
    for (std::size_t i = 0; i < in_; ++i) {
      gw[i] += g * x[i];
      dx[i] += g * wrow[i];
    }
  }
  return dx;
}

Vec Dense::backward(const Vec& grad_out) {
  return backward_impl(last_x_, last_y_, grad_out, w_.grad, b_.grad);
}

Vec Dense::backward(const Cache& cache, const Vec& grad_out, Vec& grad_w,
                    Vec& grad_b) const {
  VKEY_REQUIRE(grad_w.size() == w_.value.size() &&
                   grad_b.size() == b_.value.size(),
               "Dense gradient buffer size mismatch");
  return backward_impl(cache.x, cache.y, grad_out, grad_w, grad_b);
}

}  // namespace vkey::nn
