// Optimizers: plain SGD and Adam (Kingma & Ba).
//
// Layers accumulate gradients across a mini-batch; step() consumes them
// (dividing by the batch size) and zeroes the accumulators.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/param.h"

namespace vkey::nn {

class Sgd {
 public:
  explicit Sgd(std::vector<Parameter*> params, double lr = 0.01);

  /// Apply one update using the accumulated gradients / `batch_size`,
  /// then zero the gradients.
  void step(std::size_t batch_size = 1);

  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 private:
  std::vector<Parameter*> params_;
  double lr_ = 0.0;
};

class Adam {
 public:
  explicit Adam(std::vector<Parameter*> params, double lr = 1e-3,
                double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8);

  void step(std::size_t batch_size = 1);

  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 private:
  std::vector<Parameter*> params_;
  double lr_ = 0.0;
  double beta1_ = 0.0;
  double beta2_ = 0.0;
  double epsilon_ = 0.0;
  std::size_t t_ = 0;
};

}  // namespace vkey::nn
