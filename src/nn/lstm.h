// LSTM and bidirectional LSTM with full backpropagation through time.
//
// The paper's prediction module is a single BiLSTM layer ("32 cells, 128
// hidden units") followed by fully connected heads. Layer sizes here are
// constructor parameters: the architecture is the paper's; the default
// hidden width used by tests/benches is smaller because this repository
// trains on a single CPU core (see DESIGN.md "NN sizing").
//
// The cell's 4H-gate affine runs on the fused packed matrix [Wx | Wh]
// (one blocked pass per step over a preallocated [x_t ; h_prev] scratch —
// see gemm.h and DESIGN.md "NN kernel core"); the float path is
// bit-identical to the retained naive reference (infer_reference), and an
// optional int8 path trades exactness for speed behind set_quantized().
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "nn/gemm.h"
#include "nn/param.h"

namespace vkey::nn {

/// Sequence of feature vectors, outer index = time step.
using Seq = std::vector<Vec>;

/// Unidirectional LSTM layer (optionally processing the sequence reversed).
class Lstm {
 public:
  Lstm(std::size_t input, std::size_t hidden, vkey::Rng& rng,
       bool reverse = false);

  /// Forward over a sequence; returns hidden states in *time* order
  /// regardless of processing direction. Caches all intermediates for BPTT.
  Seq forward(const Seq& x);

  /// Inference-only forward (no caching).
  Seq infer(const Seq& x) const;

  /// Inference writing each step's hidden state into
  /// out[t][offset, offset + hidden) of a caller-sized sequence — lets
  /// BiLstm fill both halves of its concatenated output without a copy.
  /// Same arithmetic as infer(), bit for bit.
  void infer_into(const Seq& x, Seq& out, std::size_t offset) const;

  /// The original per-step naive loops, retained as the bit-exactness
  /// oracle for the fused packed cell (tests only; no metrics, no timer).
  Seq infer_reference(const Seq& x) const;

  /// Route infer paths through the int8 fused cell with polynomial gate
  /// activations (forward()/backward() stay float). NOT bit-exact.
  void set_quantized(bool quantized) { quantized_ = quantized; }
  bool quantized() const { return quantized_; }

  /// BPTT for the most recent forward(). `grad_out` is dL/dh in time order;
  /// returns dL/dx in time order. Gradients accumulate into the parameters.
  Seq backward(const Seq& grad_out);

  std::size_t input_size() const { return input_; }
  std::size_t hidden_size() const { return hidden_; }
  /// Steps cached by the most recent forward() (0 before any forward).
  std::size_t cached_steps() const { return cache_.size(); }

  std::vector<Parameter*> parameters() { return {&wx_, &wh_, &b_}; }

 private:
  struct StepCache {
    Vec x, h_prev, c_prev;
    Vec i, f, g, o, c, tanh_c, h;
  };

  /// Preallocated per-sequence scratch for the fused cell (one allocation
  /// per call instead of ~8 per step).
  struct Scratch {
    Vec xh;   ///< [x_t ; h_prev], input_ + hidden_ wide
    Vec z;    ///< fused 4H gate pre-activations
    Vec h;    ///< running hidden state
    Vec c;    ///< running cell state
    Vec tc;   ///< tanh(c)
    std::vector<std::int8_t> xq;  ///< quantized xh (int8 path)
  };

  void init_scratch(Scratch& s) const;
  /// One fused cell step: reads s.xh, updates s.h / s.c in place.
  void step_fused(Scratch& s, StepCache* cache) const;
  void step_quantized(Scratch& s) const;
  /// Shared full-sequence driver for infer()/infer_into().
  void infer_impl(const Seq& x, Seq& out, std::size_t offset) const;
  const PackedMatrix& packed() const;
  const QuantizedMatrix& quant() const;

  std::size_t input_ = 0;
  std::size_t hidden_ = 0;
  bool reverse_ = false;
  bool quantized_ = false;
  // Gate order within the stacked matrices: input, forget, cell, output.
  Parameter wx_;  // 4H x input
  Parameter wh_;  // 4H x hidden
  Parameter b_;   // 4H  (forget-gate bias initialized to 1)
  std::vector<StepCache> cache_;  // indexed by processing step
  // Fused [Wx | Wh] packed layouts, keyed on the parameter revisions
  // (see gemm.h; the key is the revision sum, monotone under bump()).
  mutable PackedMatrix packed_w_;
  mutable QuantizedMatrix quant_w_;
  mutable PackGuard pack_guard_;
  mutable PackGuard quant_guard_;
};

/// Bidirectional LSTM: forward and backward passes concatenated per step,
/// output width = 2 * hidden.
class BiLstm {
 public:
  BiLstm(std::size_t input, std::size_t hidden, vkey::Rng& rng);

  Seq forward(const Seq& x);
  Seq infer(const Seq& x) const;
  /// Batched inference over independent sequences; bit-identical to
  /// calling infer() per element, in order. (The LSTM weights are small
  /// enough to stay cache-resident, so the batch win lives in the Dense
  /// heads downstream — this entry point exists so whole-pipeline callers
  /// can hand a batch through one call.)
  std::vector<Seq> infer_batch(std::span<const Seq> xs) const;
  /// Naive-reference BiLSTM inference (per-direction reference cells plus
  /// the original concat loop) — the bit-exactness oracle for infer().
  Seq infer_reference(const Seq& x) const;
  Seq backward(const Seq& grad_out);

  /// Propagates to both directions (infer paths only; see Lstm).
  void set_quantized(bool quantized);
  bool quantized() const { return fwd_.quantized(); }

  std::size_t output_size() const { return 2 * hidden_; }
  std::size_t hidden_size() const { return hidden_; }

  std::vector<Parameter*> parameters();

 private:
  std::size_t hidden_ = 0;
  Lstm fwd_;
  Lstm bwd_;
};

}  // namespace vkey::nn
