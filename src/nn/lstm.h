// LSTM and bidirectional LSTM with full backpropagation through time.
//
// The paper's prediction module is a single BiLSTM layer ("32 cells, 128
// hidden units") followed by fully connected heads. Layer sizes here are
// constructor parameters: the architecture is the paper's; the default
// hidden width used by tests/benches is smaller because this repository
// trains on a single CPU core (see DESIGN.md "NN sizing").
#pragma once

#include <vector>

#include "common/rng.h"
#include "nn/param.h"

namespace vkey::nn {

/// Sequence of feature vectors, outer index = time step.
using Seq = std::vector<Vec>;

/// Unidirectional LSTM layer (optionally processing the sequence reversed).
class Lstm {
 public:
  Lstm(std::size_t input, std::size_t hidden, vkey::Rng& rng,
       bool reverse = false);

  /// Forward over a sequence; returns hidden states in *time* order
  /// regardless of processing direction. Caches all intermediates for BPTT.
  Seq forward(const Seq& x);

  /// Inference-only forward (no caching).
  Seq infer(const Seq& x) const;

  /// BPTT for the most recent forward(). `grad_out` is dL/dh in time order;
  /// returns dL/dx in time order. Gradients accumulate into the parameters.
  Seq backward(const Seq& grad_out);

  std::size_t input_size() const { return input_; }
  std::size_t hidden_size() const { return hidden_; }

  std::vector<Parameter*> parameters() { return {&wx_, &wh_, &b_}; }

 private:
  struct StepCache {
    Vec x, h_prev, c_prev;
    Vec i, f, g, o, c, tanh_c, h;
  };

  /// Core cell step; writes the cache if `cache` is non-null.
  void step(const Vec& x, const Vec& h_prev, const Vec& c_prev, Vec& h_out,
            Vec& c_out, StepCache* cache) const;

  std::size_t input_ = 0;
  std::size_t hidden_ = 0;
  bool reverse_ = false;
  // Gate order within the stacked matrices: input, forget, cell, output.
  Parameter wx_;  // 4H x input
  Parameter wh_;  // 4H x hidden
  Parameter b_;   // 4H  (forget-gate bias initialized to 1)
  std::vector<StepCache> cache_;  // indexed by processing step
};

/// Bidirectional LSTM: forward and backward passes concatenated per step,
/// output width = 2 * hidden.
class BiLstm {
 public:
  BiLstm(std::size_t input, std::size_t hidden, vkey::Rng& rng);

  Seq forward(const Seq& x);
  Seq infer(const Seq& x) const;
  Seq backward(const Seq& grad_out);

  std::size_t output_size() const { return 2 * hidden_; }
  std::size_t hidden_size() const { return hidden_; }

  std::vector<Parameter*> parameters();

 private:
  std::size_t hidden_ = 0;
  Lstm fwd_;
  Lstm bwd_;
};

}  // namespace vkey::nn
