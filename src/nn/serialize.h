// Weight (de)serialization.
//
// Models expose their parameter list; these helpers snapshot / restore all
// values, either to an in-memory blob (used by the transfer-learning
// experiment, Fig. 14, to clone a base model before fine-tuning) or to a
// file.
#pragma once

#include <string>
#include <vector>

#include "nn/param.h"

namespace vkey::nn {

/// Copy all parameter values into one flat snapshot.
std::vector<double> snapshot(const std::vector<Parameter*>& params);

/// Restore values from a snapshot created over an identically-shaped
/// parameter list (sizes are validated).
void restore(const std::vector<Parameter*>& params,
             const std::vector<double>& snap);

/// Write a snapshot to a file ("vkw1" magic + count + doubles, little
/// endian host format).
void save_file(const std::string& path,
               const std::vector<Parameter*>& params);

/// Load a file written by save_file into the given parameters.
void load_file(const std::string& path,
               const std::vector<Parameter*>& params);

}  // namespace vkey::nn
