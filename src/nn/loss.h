// Loss functions for the joint prediction/quantization objective.
//
// The paper trains with loss = theta * MSE(y, y_hat) + (1-theta) * BCE(z,
// z_hat) (Eq. 3-5). BCE is computed on logits for numerical stability: the
// sigmoid of the quantization head and the BCE collapse so the gradient w.r.t.
// the logit is simply (sigmoid(logit) - target).
#pragma once

#include "nn/param.h"

namespace vkey::nn {

/// Mean squared error and its gradient.
struct MseResult {
  double loss = 0.0;
  Vec grad;  ///< dL/dpred
};
MseResult mse_loss(const Vec& pred, const Vec& target);

/// Binary cross entropy on logits (sigmoid applied internally), plus the
/// gradient w.r.t. the logits. Targets must be in [0,1].
struct BceResult {
  double loss = 0.0;
  Vec grad;        ///< dL/dlogit = sigmoid(logit) - target
  Vec probability;  ///< sigmoid(logit), exposed to avoid recomputation
};
BceResult bce_with_logits(const Vec& logits, const Vec& target);

}  // namespace vkey::nn
