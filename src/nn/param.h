// Trainable parameter storage shared by all vkey::nn layers.
//
// A Parameter owns its value vector, an accumulated gradient (summed across a
// mini-batch of backward passes) and lazily-allocated Adam moment buffers.
// Layers expose their parameters so an optimizer can update them in place.
//
// `revision` keys the packed-weight caches (see gemm.h): every mutation of
// `value` must be followed by bump() so layers repack before the next
// forward. The optimizers and serialize::restore do this; code that writes
// `value` elements directly (tests, mostly) must call bump() itself.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vkey::nn {

using Vec = std::vector<double>;

struct Parameter {
  Vec value;
  Vec grad;
  // Adam moments (allocated by the optimizer on first use).
  Vec adam_m;
  Vec adam_v;
  /// Value-mutation counter, starts at 1 so 0 can mean "never packed".
  std::uint64_t revision = 1;

  explicit Parameter(std::size_t n = 0) : value(n, 0.0), grad(n, 0.0) {}

  std::size_t size() const { return value.size(); }

  void zero_grad() { std::fill(grad.begin(), grad.end(), 0.0); }

  /// Declare that `value` changed; packed-layout caches become stale.
  void bump() { ++revision; }
};

}  // namespace vkey::nn
