// Trainable parameter storage shared by all vkey::nn layers.
//
// A Parameter owns its value vector, an accumulated gradient (summed across a
// mini-batch of backward passes) and lazily-allocated Adam moment buffers.
// Layers expose their parameters so an optimizer can update them in place.
#pragma once

#include <cstddef>
#include <vector>

namespace vkey::nn {

using Vec = std::vector<double>;

struct Parameter {
  Vec value;
  Vec grad;
  // Adam moments (allocated by the optimizer on first use).
  Vec adam_m;
  Vec adam_v;

  explicit Parameter(std::size_t n = 0) : value(n, 0.0), grad(n, 0.0) {}

  std::size_t size() const { return value.size(); }

  void zero_grad() { std::fill(grad.begin(), grad.end(), 0.0); }
};

}  // namespace vkey::nn
