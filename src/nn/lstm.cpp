#include "nn/lstm.h"

#include <cmath>

#include "common/error.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "nn/activations.h"

namespace vkey::nn {

namespace {

metrics::Counter& lstm_flops() {
  static metrics::Counter& c =
      metrics::Registry::global().counter("nn.lstm.flops");
  return c;
}
metrics::Counter& lstm_steps() {
  static metrics::Counter& c =
      metrics::Registry::global().counter("nn.lstm.cell_steps");
  return c;
}
metrics::Histogram& lstm_infer_ms() {
  static metrics::Histogram& h =
      metrics::Registry::global().histogram("nn.lstm.infer_ms");
  return h;
}

// One cell step: the 4H x (input + hidden) affine dominates; the gate
// nonlinearities and elementwise updates add ~10H.
std::uint64_t step_flops(std::size_t input, std::size_t hidden) {
  return 2 * 4 * static_cast<std::uint64_t>(hidden) * (input + hidden) +
         10 * static_cast<std::uint64_t>(hidden);
}

}  // namespace

Lstm::Lstm(std::size_t input, std::size_t hidden, vkey::Rng& rng,
           bool reverse)
    : input_(input),
      hidden_(hidden),
      reverse_(reverse),
      wx_(4 * hidden * input),
      wh_(4 * hidden * hidden),
      b_(4 * hidden) {
  VKEY_REQUIRE(input > 0 && hidden > 0, "Lstm sizes must be positive");
  const double bx = std::sqrt(6.0 / static_cast<double>(input + hidden));
  const double bh = std::sqrt(6.0 / static_cast<double>(2 * hidden));
  for (auto& v : wx_.value) v = rng.uniform(-bx, bx);
  for (auto& v : wh_.value) v = rng.uniform(-bh, bh);
  // Standard trick: bias the forget gate open so gradients flow early on.
  for (std::size_t j = hidden; j < 2 * hidden; ++j) b_.value[j] = 1.0;
}

void Lstm::step(const Vec& x, const Vec& h_prev, const Vec& c_prev,
                Vec& h_out, Vec& c_out, StepCache* cache) const {
  const std::size_t h = hidden_;
  Vec z(4 * h);
  for (std::size_t j = 0; j < 4 * h; ++j) {
    double s = b_.value[j];
    const double* wx_row = &wx_.value[j * input_];
    for (std::size_t k = 0; k < input_; ++k) s += wx_row[k] * x[k];
    const double* wh_row = &wh_.value[j * h];
    for (std::size_t k = 0; k < h; ++k) s += wh_row[k] * h_prev[k];
    z[j] = s;
  }
  Vec gi(h), gf(h), gg(h), go(h), c(h), tc(h);
  for (std::size_t k = 0; k < h; ++k) {
    gi[k] = sigmoid(z[k]);
    gf[k] = sigmoid(z[h + k]);
    gg[k] = std::tanh(z[2 * h + k]);
    go[k] = sigmoid(z[3 * h + k]);
    c[k] = gf[k] * c_prev[k] + gi[k] * gg[k];
    tc[k] = std::tanh(c[k]);
  }
  h_out.resize(h);
  c_out = c;
  for (std::size_t k = 0; k < h; ++k) h_out[k] = go[k] * tc[k];
  if (cache != nullptr) {
    cache->x = x;
    cache->h_prev = h_prev;
    cache->c_prev = c_prev;
    cache->i = std::move(gi);
    cache->f = std::move(gf);
    cache->g = std::move(gg);
    cache->o = std::move(go);
    cache->c = std::move(c);
    cache->tanh_c = std::move(tc);
    cache->h = h_out;
  }
}

Seq Lstm::forward(const Seq& x) {
  const std::size_t t_len = x.size();
  VKEY_REQUIRE(t_len > 0, "Lstm forward on empty sequence");
  lstm_steps().add(t_len);
  lstm_flops().add(t_len * step_flops(input_, hidden_));
  cache_.assign(t_len, StepCache{});
  Seq out(t_len);
  Vec h(hidden_, 0.0), c(hidden_, 0.0);
  for (std::size_t step_idx = 0; step_idx < t_len; ++step_idx) {
    const std::size_t t = reverse_ ? t_len - 1 - step_idx : step_idx;
    VKEY_REQUIRE(x[t].size() == input_, "Lstm input width mismatch");
    Vec h_next, c_next;
    step(x[t], h, c, h_next, c_next, &cache_[step_idx]);
    h = std::move(h_next);
    c = std::move(c_next);
    out[t] = h;
  }
  return out;
}

Seq Lstm::infer(const Seq& x) const {
  const std::size_t t_len = x.size();
  VKEY_REQUIRE(t_len > 0, "Lstm infer on empty sequence");
  lstm_steps().add(t_len);
  lstm_flops().add(t_len * step_flops(input_, hidden_));
  trace::ScopedTimer timer(lstm_infer_ms());
  Seq out(t_len);
  Vec h(hidden_, 0.0), c(hidden_, 0.0);
  for (std::size_t step_idx = 0; step_idx < t_len; ++step_idx) {
    const std::size_t t = reverse_ ? t_len - 1 - step_idx : step_idx;
    VKEY_REQUIRE(x[t].size() == input_, "Lstm input width mismatch");
    Vec h_next, c_next;
    step(x[t], h, c, h_next, c_next, nullptr);
    h = std::move(h_next);
    c = std::move(c_next);
    out[t] = h;
  }
  return out;
}

Seq Lstm::backward(const Seq& grad_out) {
  const std::size_t t_len = cache_.size();
  VKEY_REQUIRE(t_len > 0, "Lstm backward before forward");
  VKEY_REQUIRE(grad_out.size() == t_len, "Lstm grad length mismatch");
  const std::size_t h = hidden_;

  Seq dx(t_len, Vec(input_, 0.0));
  Vec dh_rec(h, 0.0), dc_rec(h, 0.0);
  Vec dz(4 * h);

  for (std::size_t step_idx = t_len; step_idx-- > 0;) {
    const std::size_t t = reverse_ ? t_len - 1 - step_idx : step_idx;
    const StepCache& cc = cache_[step_idx];
    VKEY_REQUIRE(grad_out[t].size() == h, "Lstm grad width mismatch");

    for (std::size_t k = 0; k < h; ++k) {
      const double dh = grad_out[t][k] + dh_rec[k];
      const double d_o = dh * cc.tanh_c[k];
      const double dc = dh * cc.o[k] * dtanh_from_y(cc.tanh_c[k]) + dc_rec[k];
      const double d_f = dc * cc.c_prev[k];
      const double d_i = dc * cc.g[k];
      const double d_g = dc * cc.i[k];
      dc_rec[k] = dc * cc.f[k];
      dz[k] = d_i * dsigmoid_from_y(cc.i[k]);
      dz[h + k] = d_f * dsigmoid_from_y(cc.f[k]);
      dz[2 * h + k] = d_g * dtanh_from_y(cc.g[k]);
      dz[3 * h + k] = d_o * dsigmoid_from_y(cc.o[k]);
    }

    // Parameter gradients and upstream gradients.
    std::fill(dh_rec.begin(), dh_rec.end(), 0.0);
    for (std::size_t j = 0; j < 4 * h; ++j) {
      const double g = dz[j];
      if (g == 0.0) continue;
      b_.grad[j] += g;
      double* gwx = &wx_.grad[j * input_];
      const double* wx_row = &wx_.value[j * input_];
      for (std::size_t k = 0; k < input_; ++k) {
        gwx[k] += g * cc.x[k];
        dx[t][k] += g * wx_row[k];
      }
      double* gwh = &wh_.grad[j * h];
      const double* wh_row = &wh_.value[j * h];
      for (std::size_t k = 0; k < h; ++k) {
        gwh[k] += g * cc.h_prev[k];
        dh_rec[k] += g * wh_row[k];
      }
    }
  }
  return dx;
}

BiLstm::BiLstm(std::size_t input, std::size_t hidden, vkey::Rng& rng)
    : hidden_(hidden),
      fwd_(input, hidden, rng, /*reverse=*/false),
      bwd_(input, hidden, rng, /*reverse=*/true) {}

Seq BiLstm::forward(const Seq& x) {
  const Seq hf = fwd_.forward(x);
  const Seq hb = bwd_.forward(x);
  Seq out(x.size(), Vec(2 * hidden_));
  for (std::size_t t = 0; t < x.size(); ++t) {
    std::copy(hf[t].begin(), hf[t].end(), out[t].begin());
    std::copy(hb[t].begin(), hb[t].end(),
              out[t].begin() + static_cast<std::ptrdiff_t>(hidden_));
  }
  return out;
}

Seq BiLstm::infer(const Seq& x) const {
  const Seq hf = fwd_.infer(x);
  const Seq hb = bwd_.infer(x);
  Seq out(x.size(), Vec(2 * hidden_));
  for (std::size_t t = 0; t < x.size(); ++t) {
    std::copy(hf[t].begin(), hf[t].end(), out[t].begin());
    std::copy(hb[t].begin(), hb[t].end(),
              out[t].begin() + static_cast<std::ptrdiff_t>(hidden_));
  }
  return out;
}

Seq BiLstm::backward(const Seq& grad_out) {
  const std::size_t t_len = grad_out.size();
  Seq gf(t_len, Vec(hidden_)), gb(t_len, Vec(hidden_));
  for (std::size_t t = 0; t < t_len; ++t) {
    VKEY_REQUIRE(grad_out[t].size() == 2 * hidden_,
                 "BiLstm grad width mismatch");
    std::copy(grad_out[t].begin(),
              grad_out[t].begin() + static_cast<std::ptrdiff_t>(hidden_),
              gf[t].begin());
    std::copy(grad_out[t].begin() + static_cast<std::ptrdiff_t>(hidden_),
              grad_out[t].end(), gb[t].begin());
  }
  const Seq dxf = fwd_.backward(gf);
  const Seq dxb = bwd_.backward(gb);
  Seq dx(t_len, Vec(fwd_.input_size(), 0.0));
  for (std::size_t t = 0; t < t_len; ++t) {
    for (std::size_t k = 0; k < dx[t].size(); ++k) {
      dx[t][k] = dxf[t][k] + dxb[t][k];
    }
  }
  return dx;
}

std::vector<Parameter*> BiLstm::parameters() {
  auto p = fwd_.parameters();
  const auto pb = bwd_.parameters();
  p.insert(p.end(), pb.begin(), pb.end());
  return p;
}

}  // namespace vkey::nn
