#include "nn/lstm.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "nn/activations.h"

namespace vkey::nn {

namespace {

metrics::Counter& lstm_flops() {
  static metrics::Counter& c =
      metrics::Registry::global().counter("nn.lstm.flops");
  return c;
}
metrics::Counter& lstm_steps() {
  static metrics::Counter& c =
      metrics::Registry::global().counter("nn.lstm.cell_steps");
  return c;
}
metrics::Histogram& lstm_infer_ms() {
  static metrics::Histogram& h =
      metrics::Registry::global().histogram("nn.lstm.infer_ms");
  return h;
}

// One cell step: the 4H x (input + hidden) affine dominates; the gate
// nonlinearities and elementwise updates add ~10H. The quantized path is
// charged the same nominal FLOPs (it does the same mathematical work).
std::uint64_t step_flops(std::size_t input, std::size_t hidden) {
  return 2 * 4 * static_cast<std::uint64_t>(hidden) * (input + hidden) +
         10 * static_cast<std::uint64_t>(hidden);
}

}  // namespace

Lstm::Lstm(std::size_t input, std::size_t hidden, vkey::Rng& rng,
           bool reverse)
    : input_(input),
      hidden_(hidden),
      reverse_(reverse),
      wx_(4 * hidden * input),
      wh_(4 * hidden * hidden),
      b_(4 * hidden) {
  VKEY_REQUIRE(input > 0 && hidden > 0, "Lstm sizes must be positive");
  const double bx = std::sqrt(6.0 / static_cast<double>(input + hidden));
  const double bh = std::sqrt(6.0 / static_cast<double>(2 * hidden));
  for (auto& v : wx_.value) v = rng.uniform(-bx, bx);
  for (auto& v : wh_.value) v = rng.uniform(-bh, bh);
  // Standard trick: bias the forget gate open so gradients flow early on.
  for (std::size_t j = hidden; j < 2 * hidden; ++j) b_.value[j] = 1.0;
}

const PackedMatrix& Lstm::packed() const {
  // Key on the revision sum: bump() only increments, so the sum changes
  // whenever either matrix does.
  pack_guard_.ensure(wx_.revision + wh_.revision, [this] {
    packed_w_.pack_pair(wx_.value.data(), input_, wh_.value.data(), hidden_,
                        4 * hidden_);
  });
  return packed_w_;
}

const QuantizedMatrix& Lstm::quant() const {
  quant_guard_.ensure(wx_.revision + wh_.revision, [this] {
    quant_w_.pack_pair(wx_.value.data(), input_, wh_.value.data(), hidden_,
                       4 * hidden_);
  });
  return quant_w_;
}

void Lstm::init_scratch(Scratch& s) const {
  s.xh.assign(input_ + hidden_, 0.0);
  s.z.assign(4 * hidden_, 0.0);
  s.h.assign(hidden_, 0.0);
  s.c.assign(hidden_, 0.0);
  s.tc.assign(hidden_, 0.0);
  if (quantized_) s.xq.assign(quant().padded_cols(), 0);
}

// One fused cell step. s.xh holds [x_t ; h_prev]; the single packed matvec
// computes all 4H gate pre-activations in the exact accumulation order of
// the naive cell (bias, then Wx columns, then Wh columns — see
// PackedMatrix::pack_pair). Gates are evaluated in place in s.z
// (i | f | g | o blocks); each element depends only on its own
// pre-activation, so the value sequence matches the reference loop bit for
// bit.
void Lstm::step_fused(Scratch& s, StepCache* cache) const {
  const std::size_t h = hidden_;
  packed().matvec(s.xh.data(), b_.value.data(), s.z.data());
  double* z = s.z.data();
  for (std::size_t k = 0; k < 2 * h; ++k) z[k] = sigmoid(z[k]);
  for (std::size_t k = 2 * h; k < 3 * h; ++k) z[k] = std::tanh(z[k]);
  for (std::size_t k = 3 * h; k < 4 * h; ++k) z[k] = sigmoid(z[k]);
  for (std::size_t k = 0; k < h; ++k)
    s.c[k] = z[h + k] * s.c[k] + z[k] * z[2 * h + k];
  for (std::size_t k = 0; k < h; ++k) s.tc[k] = std::tanh(s.c[k]);
  for (std::size_t k = 0; k < h; ++k) s.h[k] = z[3 * h + k] * s.tc[k];
  if (cache != nullptr) {
    cache->i.assign(z, z + h);
    cache->f.assign(z + h, z + 2 * h);
    cache->g.assign(z + 2 * h, z + 3 * h);
    cache->o.assign(z + 3 * h, z + 4 * h);
    cache->c = s.c;
    cache->tanh_c = s.tc;
    cache->h = s.h;
  }
}

// The int8 variant: quantized fused affine plus polynomial gate
// activations (see gemm.h). Same dataflow, not bit-exact.
void Lstm::step_quantized(Scratch& s) const {
  const std::size_t h = hidden_;
  const QuantizedMatrix& qm = quant();
  const double x_scale = QuantizedMatrix::quantize_input(
      s.xh.data(), s.xh.size(), s.xq.data());
  qm.matvec(s.xq.data(), x_scale, b_.value.data(), s.z.data());
  double* z = s.z.data();
  sigmoid_approx(z, 2 * h, z);
  tanh_approx(z + 2 * h, h, z + 2 * h);
  sigmoid_approx(z + 3 * h, h, z + 3 * h);
  for (std::size_t k = 0; k < h; ++k)
    s.c[k] = z[h + k] * s.c[k] + z[k] * z[2 * h + k];
  tanh_approx(s.c.data(), h, s.tc.data());
  for (std::size_t k = 0; k < h; ++k) s.h[k] = z[3 * h + k] * s.tc[k];
}

Seq Lstm::forward(const Seq& x) {
  const std::size_t t_len = x.size();
  // Validate the whole sequence BEFORE touching the step/FLOP counters: a
  // rejected pass must not account for work that never ran.
  VKEY_REQUIRE(t_len > 0, "Lstm forward on empty sequence");
  for (const Vec& xt : x)
    VKEY_REQUIRE(xt.size() == input_, "Lstm input width mismatch");
  lstm_steps().add(t_len);
  lstm_flops().add(t_len * step_flops(input_, hidden_));
  cache_.assign(t_len, StepCache{});
  Scratch s;
  init_scratch(s);
  Seq out(t_len);
  for (std::size_t step_idx = 0; step_idx < t_len; ++step_idx) {
    const std::size_t t = reverse_ ? t_len - 1 - step_idx : step_idx;
    std::copy(x[t].begin(), x[t].end(), s.xh.begin());
    std::copy(s.h.begin(), s.h.end(),
              s.xh.begin() + static_cast<std::ptrdiff_t>(input_));
    StepCache& cc = cache_[step_idx];
    cc.x = x[t];
    cc.h_prev = s.h;
    cc.c_prev = s.c;
    step_fused(s, &cc);
    out[t] = s.h;
  }
  return out;
}

void Lstm::infer_impl(const Seq& x, Seq& out, std::size_t offset) const {
  const std::size_t t_len = x.size();
  VKEY_REQUIRE(t_len > 0, "Lstm infer on empty sequence");
  for (const Vec& xt : x)
    VKEY_REQUIRE(xt.size() == input_, "Lstm input width mismatch");
  VKEY_REQUIRE(out.size() == t_len, "Lstm infer output length mismatch");
  for (const Vec& ot : out)
    VKEY_REQUIRE(ot.size() >= offset + hidden_,
                 "Lstm infer output width mismatch");
  lstm_steps().add(t_len);
  lstm_flops().add(t_len * step_flops(input_, hidden_));
  trace::ScopedTimer timer(lstm_infer_ms());
  Scratch s;
  init_scratch(s);
  for (std::size_t step_idx = 0; step_idx < t_len; ++step_idx) {
    const std::size_t t = reverse_ ? t_len - 1 - step_idx : step_idx;
    std::copy(x[t].begin(), x[t].end(), s.xh.begin());
    std::copy(s.h.begin(), s.h.end(),
              s.xh.begin() + static_cast<std::ptrdiff_t>(input_));
    if (quantized_) {
      step_quantized(s);
    } else {
      step_fused(s, nullptr);
    }
    std::copy(s.h.begin(), s.h.end(),
              out[t].begin() + static_cast<std::ptrdiff_t>(offset));
  }
}

Seq Lstm::infer(const Seq& x) const {
  Seq out(x.size(), Vec(hidden_));
  infer_impl(x, out, 0);
  return out;
}

void Lstm::infer_into(const Seq& x, Seq& out, std::size_t offset) const {
  infer_impl(x, out, offset);
}

Seq Lstm::infer_reference(const Seq& x) const {
  const std::size_t t_len = x.size();
  VKEY_REQUIRE(t_len > 0, "Lstm infer on empty sequence");
  const std::size_t h = hidden_;
  Seq out(t_len);
  Vec hv(h, 0.0), cv(h, 0.0);
  for (std::size_t step_idx = 0; step_idx < t_len; ++step_idx) {
    const std::size_t t = reverse_ ? t_len - 1 - step_idx : step_idx;
    VKEY_REQUIRE(x[t].size() == input_, "Lstm input width mismatch");
    Vec z(4 * h);
    for (std::size_t j = 0; j < 4 * h; ++j) {
      double sum = b_.value[j];
      const double* wx_row = &wx_.value[j * input_];
      for (std::size_t k = 0; k < input_; ++k) sum += wx_row[k] * x[t][k];
      const double* wh_row = &wh_.value[j * h];
      for (std::size_t k = 0; k < h; ++k) sum += wh_row[k] * hv[k];
      z[j] = sum;
    }
    Vec gi(h), gf(h), gg(h), go(h), c(h), tc(h);
    for (std::size_t k = 0; k < h; ++k) {
      gi[k] = sigmoid(z[k]);
      gf[k] = sigmoid(z[h + k]);
      gg[k] = std::tanh(z[2 * h + k]);
      go[k] = sigmoid(z[3 * h + k]);
      c[k] = gf[k] * cv[k] + gi[k] * gg[k];
      tc[k] = std::tanh(c[k]);
    }
    cv = c;
    hv.resize(h);
    for (std::size_t k = 0; k < h; ++k) hv[k] = go[k] * tc[k];
    out[t] = hv;
  }
  return out;
}

Seq Lstm::backward(const Seq& grad_out) {
  const std::size_t t_len = cache_.size();
  VKEY_REQUIRE(t_len > 0, "Lstm backward before forward");
  VKEY_REQUIRE(grad_out.size() == t_len, "Lstm grad length mismatch");
  const std::size_t h = hidden_;

  Seq dx(t_len, Vec(input_, 0.0));
  Vec dh_rec(h, 0.0), dc_rec(h, 0.0);
  Vec dz(4 * h);

  for (std::size_t step_idx = t_len; step_idx-- > 0;) {
    const std::size_t t = reverse_ ? t_len - 1 - step_idx : step_idx;
    const StepCache& cc = cache_[step_idx];
    VKEY_REQUIRE(grad_out[t].size() == h, "Lstm grad width mismatch");

    for (std::size_t k = 0; k < h; ++k) {
      const double dh = grad_out[t][k] + dh_rec[k];
      const double d_o = dh * cc.tanh_c[k];
      const double dc = dh * cc.o[k] * dtanh_from_y(cc.tanh_c[k]) + dc_rec[k];
      const double d_f = dc * cc.c_prev[k];
      const double d_i = dc * cc.g[k];
      const double d_g = dc * cc.i[k];
      dc_rec[k] = dc * cc.f[k];
      dz[k] = d_i * dsigmoid_from_y(cc.i[k]);
      dz[h + k] = d_f * dsigmoid_from_y(cc.f[k]);
      dz[2 * h + k] = d_g * dtanh_from_y(cc.g[k]);
      dz[3 * h + k] = d_o * dsigmoid_from_y(cc.o[k]);
    }

    // Parameter gradients and upstream gradients. No data-dependent
    // skipping here: a `g == 0` shortcut would make the accumulation order
    // depend on runtime values, which a blocked kernel (and the 1-vs-N-lane
    // bit-exactness contract) could not reproduce.
    std::fill(dh_rec.begin(), dh_rec.end(), 0.0);
    for (std::size_t j = 0; j < 4 * h; ++j) {
      const double g = dz[j];
      b_.grad[j] += g;
      double* gwx = &wx_.grad[j * input_];
      const double* wx_row = &wx_.value[j * input_];
      for (std::size_t k = 0; k < input_; ++k) {
        gwx[k] += g * cc.x[k];
        dx[t][k] += g * wx_row[k];
      }
      double* gwh = &wh_.grad[j * h];
      const double* wh_row = &wh_.value[j * h];
      for (std::size_t k = 0; k < h; ++k) {
        gwh[k] += g * cc.h_prev[k];
        dh_rec[k] += g * wh_row[k];
      }
    }
  }
  return dx;
}

BiLstm::BiLstm(std::size_t input, std::size_t hidden, vkey::Rng& rng)
    : hidden_(hidden),
      fwd_(input, hidden, rng, /*reverse=*/false),
      bwd_(input, hidden, rng, /*reverse=*/true) {}

Seq BiLstm::forward(const Seq& x) {
  const Seq hf = fwd_.forward(x);
  const Seq hb = bwd_.forward(x);
  Seq out(x.size(), Vec(2 * hidden_));
  for (std::size_t t = 0; t < x.size(); ++t) {
    std::copy(hf[t].begin(), hf[t].end(), out[t].begin());
    std::copy(hb[t].begin(), hb[t].end(),
              out[t].begin() + static_cast<std::ptrdiff_t>(hidden_));
  }
  return out;
}

Seq BiLstm::infer(const Seq& x) const {
  // Each direction writes its half of the concatenated output directly —
  // no per-direction temporaries, no concat copy.
  Seq out(x.size(), Vec(2 * hidden_));
  fwd_.infer_into(x, out, 0);
  bwd_.infer_into(x, out, hidden_);
  return out;
}

Seq BiLstm::infer_reference(const Seq& x) const {
  const Seq hf = fwd_.infer_reference(x);
  const Seq hb = bwd_.infer_reference(x);
  Seq out(x.size(), Vec(2 * hidden_));
  for (std::size_t t = 0; t < x.size(); ++t) {
    std::copy(hf[t].begin(), hf[t].end(), out[t].begin());
    std::copy(hb[t].begin(), hb[t].end(),
              out[t].begin() + static_cast<std::ptrdiff_t>(hidden_));
  }
  return out;
}

std::vector<Seq> BiLstm::infer_batch(std::span<const Seq> xs) const {
  std::vector<Seq> out;
  out.reserve(xs.size());
  for (const Seq& x : xs) out.push_back(infer(x));
  return out;
}

void BiLstm::set_quantized(bool quantized) {
  fwd_.set_quantized(quantized);
  bwd_.set_quantized(quantized);
}

Seq BiLstm::backward(const Seq& grad_out) {
  const std::size_t t_len = grad_out.size();
  // Guard like Lstm::backward does: reject an empty gradient and a
  // gradient whose length disagrees with the cached forward pass before
  // any indexing happens.
  VKEY_REQUIRE(t_len > 0, "BiLstm backward on empty gradient");
  VKEY_REQUIRE(
      fwd_.cached_steps() == t_len && bwd_.cached_steps() == t_len,
      "BiLstm backward/forward length mismatch");
  Seq gf(t_len, Vec(hidden_)), gb(t_len, Vec(hidden_));
  for (std::size_t t = 0; t < t_len; ++t) {
    VKEY_REQUIRE(grad_out[t].size() == 2 * hidden_,
                 "BiLstm grad width mismatch");
    std::copy(grad_out[t].begin(),
              grad_out[t].begin() + static_cast<std::ptrdiff_t>(hidden_),
              gf[t].begin());
    std::copy(grad_out[t].begin() + static_cast<std::ptrdiff_t>(hidden_),
              grad_out[t].end(), gb[t].begin());
  }
  const Seq dxf = fwd_.backward(gf);
  const Seq dxb = bwd_.backward(gb);
  Seq dx(t_len, Vec(fwd_.input_size(), 0.0));
  for (std::size_t t = 0; t < t_len; ++t) {
    for (std::size_t k = 0; k < dx[t].size(); ++k) {
      dx[t][k] = dxf[t][k] + dxb[t][k];
    }
  }
  return dx;
}

std::vector<Parameter*> BiLstm::parameters() {
  auto p = fwd_.parameters();
  const auto pb = bwd_.parameters();
  p.insert(p.end(), pb.begin(), pb.end());
  return p;
}

}  // namespace vkey::nn
