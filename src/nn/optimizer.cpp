#include "nn/optimizer.h"

#include <cmath>

#include "common/error.h"

namespace vkey::nn {

Sgd::Sgd(std::vector<Parameter*> params, double lr)
    : params_(std::move(params)), lr_(lr) {
  VKEY_REQUIRE(lr > 0.0, "learning rate must be positive");
}

void Sgd::step(std::size_t batch_size) {
  VKEY_REQUIRE(batch_size >= 1, "batch size must be >= 1");
  const double scale = 1.0 / static_cast<double>(batch_size);
  for (Parameter* p : params_) {
    for (std::size_t i = 0; i < p->size(); ++i) {
      p->value[i] -= lr_ * p->grad[i] * scale;
    }
    p->bump();
    p->zero_grad();
  }
}

Adam::Adam(std::vector<Parameter*> params, double lr, double beta1,
           double beta2, double epsilon)
    : params_(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  VKEY_REQUIRE(lr > 0.0, "learning rate must be positive");
  VKEY_REQUIRE(beta1 >= 0.0 && beta1 < 1.0, "beta1 must be in [0,1)");
  VKEY_REQUIRE(beta2 >= 0.0 && beta2 < 1.0, "beta2 must be in [0,1)");
}

void Adam::step(std::size_t batch_size) {
  VKEY_REQUIRE(batch_size >= 1, "batch size must be >= 1");
  const double scale = 1.0 / static_cast<double>(batch_size);
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (Parameter* p : params_) {
    if (p->adam_m.size() != p->size()) {
      p->adam_m.assign(p->size(), 0.0);
      p->adam_v.assign(p->size(), 0.0);
    }
    for (std::size_t i = 0; i < p->size(); ++i) {
      const double g = p->grad[i] * scale;
      p->adam_m[i] = beta1_ * p->adam_m[i] + (1.0 - beta1_) * g;
      p->adam_v[i] = beta2_ * p->adam_v[i] + (1.0 - beta2_) * g * g;
      const double mhat = p->adam_m[i] / bc1;
      const double vhat = p->adam_v[i] / bc2;
      p->value[i] -= lr_ * mhat / (std::sqrt(vhat) + epsilon_);
    }
    p->bump();
    p->zero_grad();
  }
}

}  // namespace vkey::nn
