// Blocked matrix kernels — see gemm.h for the layout and the bit-exactness
// contract. This translation unit is compiled with wider optimization flags
// than the rest of the library (-O3, -march=native where available) but
// with floating-point contraction OFF; together with the explicit
// mul-then-add intrinsics this pins the exact IEEE operation sequence per
// output row to the one the scalar reference executes.
#include "nn/gemm.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace vkey::nn {

void reference_matvec(const double* w, std::size_t rows, std::size_t cols,
                      const double* x, const double* bias, double* y) {
  for (std::size_t r = 0; r < rows; ++r) {
    double s = bias != nullptr ? bias[r] : 0.0;
    const double* wrow = w + r * cols;
    for (std::size_t c = 0; c < cols; ++c) s += wrow[c] * x[c];
    y[r] = s;
  }
}

void PackedMatrix::pack(const double* w, std::size_t rows, std::size_t cols) {
  VKEY_REQUIRE(rows > 0 && cols > 0, "PackedMatrix::pack: empty shape");
  rows_ = rows;
  cols_ = cols;
  panels_ = (rows + kPanelRows - 1) / kPanelRows;
  data_.assign(panels_ * cols * kPanelRows, 0.0);
  for (std::size_t p = 0; p < panels_; ++p) {
    const std::size_t row0 = p * kPanelRows;
    const std::size_t live = std::min(kPanelRows, rows - row0);
    double* panel = &data_[p * cols * kPanelRows];
    for (std::size_t r = 0; r < live; ++r) {
      const double* wrow = w + (row0 + r) * cols;
      for (std::size_t c = 0; c < cols; ++c)
        panel[c * kPanelRows + r] = wrow[c];
    }
  }
}

void PackedMatrix::pack_pair(const double* wa, std::size_t cols_a,
                             const double* wb, std::size_t cols_b,
                             std::size_t rows) {
  VKEY_REQUIRE(rows > 0 && cols_a > 0 && cols_b > 0,
               "PackedMatrix::pack_pair: empty shape");
  rows_ = rows;
  cols_ = cols_a + cols_b;
  panels_ = (rows + kPanelRows - 1) / kPanelRows;
  data_.assign(panels_ * cols_ * kPanelRows, 0.0);
  for (std::size_t p = 0; p < panels_; ++p) {
    const std::size_t row0 = p * kPanelRows;
    const std::size_t live = std::min(kPanelRows, rows - row0);
    double* panel = &data_[p * cols_ * kPanelRows];
    for (std::size_t r = 0; r < live; ++r) {
      const double* arow = wa + (row0 + r) * cols_a;
      for (std::size_t c = 0; c < cols_a; ++c)
        panel[c * kPanelRows + r] = arow[c];
      const double* brow = wb + (row0 + r) * cols_b;
      for (std::size_t c = 0; c < cols_b; ++c)
        panel[(cols_a + c) * kPanelRows + r] = brow[c];
    }
  }
}

namespace {

// Portable single-panel loop: kPanelRows independent accumulators, columns
// ascending — the panel-shaped restatement of reference_matvec. Used for
// tail panels and as the non-AVX2 fallback.
void panel_matvec(const double* panel, std::size_t row0, std::size_t live,
                  std::size_t cols, const double* x, const double* bias,
                  double* y) {
  double acc[kPanelRows];
  for (std::size_t r = 0; r < kPanelRows; ++r)
    acc[r] = (bias != nullptr && r < live) ? bias[row0 + r] : 0.0;
  for (std::size_t c = 0; c < cols; ++c) {
    const double xc = x[c];
    const double* col = panel + c * kPanelRows;
    for (std::size_t r = 0; r < kPanelRows; ++r) acc[r] += col[r] * xc;
  }
  for (std::size_t r = 0; r < live; ++r) y[row0 + r] = acc[r];
}

}  // namespace

void PackedMatrix::matvec(const double* x, const double* bias,
                          double* y) const {
  const std::size_t cols = cols_;
  std::size_t p = 0;
#if defined(__AVX2__)
  // Four panels interleaved: eight 256-bit accumulators keep eight
  // independent add chains in flight, which covers the vaddpd latency that
  // serializes a single-panel loop. Explicit mul-then-add: never fused.
  for (; (p + 4) * kPanelRows <= rows_; p += 4) {
    const double* p0 = &data_[(p + 0) * cols * kPanelRows];
    const double* p1 = &data_[(p + 1) * cols * kPanelRows];
    const double* p2 = &data_[(p + 2) * cols * kPanelRows];
    const double* p3 = &data_[(p + 3) * cols * kPanelRows];
    const std::size_t row0 = p * kPanelRows;
    __m256d a0, a1, a2, a3, a4, a5, a6, a7;
    if (bias != nullptr) {
      a0 = _mm256_loadu_pd(bias + row0);
      a1 = _mm256_loadu_pd(bias + row0 + 4);
      a2 = _mm256_loadu_pd(bias + row0 + 8);
      a3 = _mm256_loadu_pd(bias + row0 + 12);
      a4 = _mm256_loadu_pd(bias + row0 + 16);
      a5 = _mm256_loadu_pd(bias + row0 + 20);
      a6 = _mm256_loadu_pd(bias + row0 + 24);
      a7 = _mm256_loadu_pd(bias + row0 + 28);
    } else {
      a0 = a1 = a2 = a3 = a4 = a5 = a6 = a7 = _mm256_setzero_pd();
    }
    for (std::size_t c = 0; c < cols; ++c) {
      const __m256d xc = _mm256_set1_pd(x[c]);
      const std::size_t o = c * kPanelRows;
      a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_loadu_pd(p0 + o), xc));
      a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_loadu_pd(p0 + o + 4), xc));
      a2 = _mm256_add_pd(a2, _mm256_mul_pd(_mm256_loadu_pd(p1 + o), xc));
      a3 = _mm256_add_pd(a3, _mm256_mul_pd(_mm256_loadu_pd(p1 + o + 4), xc));
      a4 = _mm256_add_pd(a4, _mm256_mul_pd(_mm256_loadu_pd(p2 + o), xc));
      a5 = _mm256_add_pd(a5, _mm256_mul_pd(_mm256_loadu_pd(p2 + o + 4), xc));
      a6 = _mm256_add_pd(a6, _mm256_mul_pd(_mm256_loadu_pd(p3 + o), xc));
      a7 = _mm256_add_pd(a7, _mm256_mul_pd(_mm256_loadu_pd(p3 + o + 4), xc));
    }
    _mm256_storeu_pd(y + row0, a0);
    _mm256_storeu_pd(y + row0 + 4, a1);
    _mm256_storeu_pd(y + row0 + 8, a2);
    _mm256_storeu_pd(y + row0 + 12, a3);
    _mm256_storeu_pd(y + row0 + 16, a4);
    _mm256_storeu_pd(y + row0 + 20, a5);
    _mm256_storeu_pd(y + row0 + 24, a6);
    _mm256_storeu_pd(y + row0 + 28, a7);
  }
#endif
  for (; p < panels_; ++p) {
    const std::size_t row0 = p * kPanelRows;
    panel_matvec(&data_[p * cols * kPanelRows], row0,
                 std::min(kPanelRows, rows_ - row0), cols, x, bias, y);
  }
}

void PackedMatrix::matvec_batch(const double* const* xs, std::size_t batch,
                                const double* bias,
                                double* const* ys) const {
  const std::size_t cols = cols_;
  // Panel-outer / member-inner: one pass over each packed panel (the large
  // operand — the prediction head is ~2 MB) serves the whole batch while
  // the panel is cache-hot. Members are processed four at a time so each
  // panel load feeds eight independent accumulator chains. Per-member
  // arithmetic matches matvec exactly.
  for (std::size_t p = 0; p < panels_; ++p) {
    const std::size_t row0 = p * kPanelRows;
    const std::size_t live = std::min(kPanelRows, rows_ - row0);
    const double* panel = &data_[p * cols * kPanelRows];
    std::size_t b = 0;
#if defined(__AVX2__)
    if (live == kPanelRows) {
      for (; b + 4 <= batch; b += 4) {
        const double* x0 = xs[b];
        const double* x1 = xs[b + 1];
        const double* x2 = xs[b + 2];
        const double* x3 = xs[b + 3];
        __m256d blo;
        __m256d bhi;
        if (bias != nullptr) {
          blo = _mm256_loadu_pd(bias + row0);
          bhi = _mm256_loadu_pd(bias + row0 + 4);
        } else {
          blo = bhi = _mm256_setzero_pd();
        }
        __m256d a0 = blo, a1 = bhi, a2 = blo, a3 = bhi;
        __m256d a4 = blo, a5 = bhi, a6 = blo, a7 = bhi;
        for (std::size_t c = 0; c < cols; ++c) {
          const std::size_t o = c * kPanelRows;
          const __m256d wlo = _mm256_loadu_pd(panel + o);
          const __m256d whi = _mm256_loadu_pd(panel + o + 4);
          const __m256d c0 = _mm256_set1_pd(x0[c]);
          const __m256d c1 = _mm256_set1_pd(x1[c]);
          const __m256d c2 = _mm256_set1_pd(x2[c]);
          const __m256d c3 = _mm256_set1_pd(x3[c]);
          a0 = _mm256_add_pd(a0, _mm256_mul_pd(wlo, c0));
          a1 = _mm256_add_pd(a1, _mm256_mul_pd(whi, c0));
          a2 = _mm256_add_pd(a2, _mm256_mul_pd(wlo, c1));
          a3 = _mm256_add_pd(a3, _mm256_mul_pd(whi, c1));
          a4 = _mm256_add_pd(a4, _mm256_mul_pd(wlo, c2));
          a5 = _mm256_add_pd(a5, _mm256_mul_pd(whi, c2));
          a6 = _mm256_add_pd(a6, _mm256_mul_pd(wlo, c3));
          a7 = _mm256_add_pd(a7, _mm256_mul_pd(whi, c3));
        }
        _mm256_storeu_pd(ys[b] + row0, a0);
        _mm256_storeu_pd(ys[b] + row0 + 4, a1);
        _mm256_storeu_pd(ys[b + 1] + row0, a2);
        _mm256_storeu_pd(ys[b + 1] + row0 + 4, a3);
        _mm256_storeu_pd(ys[b + 2] + row0, a4);
        _mm256_storeu_pd(ys[b + 2] + row0 + 4, a5);
        _mm256_storeu_pd(ys[b + 3] + row0, a6);
        _mm256_storeu_pd(ys[b + 3] + row0 + 4, a7);
      }
    }
#endif
    for (; b < batch; ++b)
      panel_matvec(panel, row0, live, cols, xs[b], bias, ys[b]);
  }
}

namespace {
// int8 columns processed per SIMD iteration (and the padded-column unit).
constexpr std::size_t kQuantStride = 16;
}  // namespace

void QuantizedMatrix::pack(const double* w, std::size_t rows,
                           std::size_t cols) {
  VKEY_REQUIRE(rows > 0 && cols > 0, "QuantizedMatrix::pack: empty shape");
  rows_ = rows;
  cols_ = cols;
  cols_padded_ = (cols + kQuantStride - 1) / kQuantStride * kQuantStride;
  data_.assign(rows * cols_padded_, 0);
  row_scale_.assign(rows, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* wrow = w + r * cols;
    double absmax = 0.0;
    for (std::size_t c = 0; c < cols; ++c)
      absmax = std::max(absmax, std::fabs(wrow[c]));
    if (absmax == 0.0) continue;  // all-zero row: scale 0, weights stay 0
    row_scale_[r] = absmax / 127.0;
    const double inv = 127.0 / absmax;
    std::int8_t* qrow = &data_[r * cols_padded_];
    for (std::size_t c = 0; c < cols; ++c) {
      const long q = std::lround(wrow[c] * inv);
      qrow[c] = static_cast<std::int8_t>(std::clamp<long>(q, -127, 127));
    }
  }
}

void QuantizedMatrix::pack_pair(const double* wa, std::size_t cols_a,
                                const double* wb, std::size_t cols_b,
                                std::size_t rows) {
  VKEY_REQUIRE(rows > 0 && cols_a > 0 && cols_b > 0,
               "QuantizedMatrix::pack_pair: empty shape");
  std::vector<double> merged(rows * (cols_a + cols_b));
  for (std::size_t r = 0; r < rows; ++r) {
    double* row = &merged[r * (cols_a + cols_b)];
    std::copy(wa + r * cols_a, wa + (r + 1) * cols_a, row);
    std::copy(wb + r * cols_b, wb + (r + 1) * cols_b, row + cols_a);
  }
  pack(merged.data(), rows, cols_a + cols_b);
}

double QuantizedMatrix::quantize_input(const double* x, std::size_t n,
                                       std::int8_t* xq) {
  double absmax = 0.0;
  for (std::size_t c = 0; c < n; ++c)
    absmax = std::max(absmax, std::fabs(x[c]));
  if (absmax == 0.0) {
    std::fill(xq, xq + n, static_cast<std::int8_t>(0));
    return 0.0;
  }
  const double inv = 127.0 / absmax;
  for (std::size_t c = 0; c < n; ++c) {
    const long q = std::lround(x[c] * inv);
    xq[c] = static_cast<std::int8_t>(std::clamp<long>(q, -127, 127));
  }
  return absmax / 127.0;
}

// int32 accumulation is exact: |acc| <= cols * 127 * 127, which even for
// the 4096-column prediction head stays below 2^27.
//
// The caller's xq buffer must be padded to a kQuantStride multiple with
// zeros (the layers size their scratch that way); the weight rows are
// stored zero-padded, so the padded lanes contribute exact zeros.
void QuantizedMatrix::matvec(const std::int8_t* xq, double x_scale,
                             const double* bias, double* y) const {
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::int8_t* qrow = &data_[r * cols_padded_];
    std::int32_t acc = 0;
#if defined(__AVX2__)
    __m256i vacc = _mm256_setzero_si256();
    for (std::size_t c = 0; c < cols_padded_; c += kQuantStride) {
      const __m256i wv = _mm256_cvtepi8_epi16(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(qrow + c)));
      const __m256i xv = _mm256_cvtepi8_epi16(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(xq + c)));
      vacc = _mm256_add_epi32(vacc, _mm256_madd_epi16(wv, xv));
    }
    __m128i s = _mm_add_epi32(_mm256_castsi256_si128(vacc),
                              _mm256_extracti128_si256(vacc, 1));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4e));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xb1));
    acc = _mm_cvtsi128_si32(s);
#else
    for (std::size_t c = 0; c < cols_; ++c)
      acc += static_cast<std::int32_t>(qrow[c]) *
             static_cast<std::int32_t>(xq[c]);
#endif
    y[r] = (bias != nullptr ? bias[r] : 0.0) +
           row_scale_[r] * x_scale * static_cast<double>(acc);
  }
}

namespace {

// Clamped Pade(7,6) tanh: max |error| vs std::tanh is ~1e-4 (at the clamp
// boundary), far below the KAR sensitivity the ablation table measures.
// Branch-free, so the loops below vectorize.
inline double tanh_poly(double x) {
  const double xc = std::clamp(x, -4.97, 4.97);
  const double x2 = xc * xc;
  const double p = xc * (135135.0 + x2 * (17325.0 + x2 * (378.0 + x2)));
  const double q =
      135135.0 + x2 * (62370.0 + x2 * (3150.0 + x2 * 28.0));
  return p / q;
}

}  // namespace

void tanh_approx(const double* x, std::size_t n, double* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] = tanh_poly(x[i]);
}

void sigmoid_approx(const double* x, std::size_t n, double* y) {
  for (std::size_t i = 0; i < n; ++i)
    y[i] = 0.5 * (1.0 + tanh_poly(0.5 * x[i]));
}

}  // namespace vkey::nn
