// Pointwise activation helpers for vkey::nn.
#pragma once

#include <cmath>

#include "nn/param.h"

namespace vkey::nn {

inline double sigmoid(double x) {
  // Split form avoids overflow for large |x|.
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

inline double dsigmoid_from_y(double y) { return y * (1.0 - y); }

inline double dtanh_from_y(double y) { return 1.0 - y * y; }

/// Element-wise sigmoid of a vector.
Vec sigmoid_vec(const Vec& x);

/// Element-wise tanh of a vector.
Vec tanh_vec(const Vec& x);

}  // namespace vkey::nn
