#include "nn/activations.h"

namespace vkey::nn {

Vec sigmoid_vec(const Vec& x) {
  Vec y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = sigmoid(x[i]);
  return y;
}

Vec tanh_vec(const Vec& x) {
  Vec y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = std::tanh(x[i]);
  return y;
}

}  // namespace vkey::nn
