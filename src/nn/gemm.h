// Blocked matrix kernels for vkey::nn — the NN inference core.
//
// Why this exists: the naive per-row dot products in Dense::affine and the
// LSTM cell accumulate through ONE floating-point chain per row, so the CPU
// spends almost every cycle waiting on add latency, and the LSTM cell
// additionally allocated ~8 vectors per time step. The kernels here fix
// both without changing a single bit of the float results:
//
//   * Panel packing. Weights are repacked into row panels of kPanelRows
//     rows; within a panel, storage is column-interleaved, so the inner
//     loop advances kPanelRows *independent* accumulators — one per output
//     row — with unit-stride vector loads. The main loop interleaves four
//     panels (32 rows, eight 256-bit accumulators) to cover the FP add
//     latency.
//   * Order preservation. Each output row still accumulates bias first,
//     then the columns in ascending order, exactly like the naive loop.
//     Rows never share an accumulator, so no floating-point reassociation
//     happens, and the explicit mul-then-add intrinsics (plus
//     -ffp-contract=off on this TU) keep FMA fusion out of the chain. The
//     result is bit-identical to the scalar reference on every input (see
//     DESIGN.md "NN kernel core").
//   * Preallocated scratch. Callers pass output storage; the kernels
//     allocate nothing.
//
// The reference kernels (`reference_matvec`) implement the original naive
// loops and are retained forever: the golden-vector suite in
// tests/nn/test_gemm.cpp asserts bit-equality between the two on every
// shape the layers use.
//
// `QuantizedMatrix` plus the *_approx activations are the optional int8
// path (per-row weight scales, per-vector dynamic input scale, exact int32
// accumulation, polynomial gate activations). It is NOT bit-exact with the
// float path by construction; PredictorConfig::quantized gates it and
// bench_ablation measures the key-agreement-rate delta.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace vkey::nn {

/// Rows per packed panel (one cache line of doubles; two 256-bit vectors).
/// The value is part of the packed layout, not tunable per call.
inline constexpr std::size_t kPanelRows = 8;

/// Naive reference kernel: y[r] = bias[r] + sum_c w[r*cols + c] * x[c],
/// one accumulator per row, columns in ascending order. This is the
/// original Dense::affine / LSTM gate loop, kept as the bit-exactness
/// reference for the packed kernels.
void reference_matvec(const double* w, std::size_t rows, std::size_t cols,
                      const double* x, const double* bias, double* y);

/// Row-major matrix repacked into kPanelRows-row panels with
/// column-interleaved storage:
///   data[(panel * cols + c) * kPanelRows + r]
///       == w[(panel * kPanelRows + r) * cols + c]
/// Tail rows of the last panel are zero-padded.
class PackedMatrix {
 public:
  PackedMatrix() = default;

  /// Repack from a row-major `rows x cols` weight array.
  void pack(const double* w, std::size_t rows, std::size_t cols);

  /// Repack from two row-concatenated blocks: row r of the packed matrix is
  /// [wa row r (cols_a wide) | wb row r (cols_b wide)]. This fuses the LSTM
  /// Wx/Wh pair into one 4H x (input + hidden) matrix whose column order
  /// matches the cell's accumulation order (x features first, then h).
  void pack_pair(const double* wa, std::size_t cols_a, const double* wb,
                 std::size_t cols_b, std::size_t rows);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  /// y[r] = bias[r] + sum_c w[r][c] * x[c]; bias may be null (start at 0).
  /// Bit-identical to reference_matvec on the same inputs.
  void matvec(const double* x, const double* bias, double* y) const;

  /// Batched matvec: ys[b][r] = bias[r] + sum_c w[r][c] * xs[b][c] for each
  /// of the `batch` input/output pointer pairs. The panel (not the batch
  /// member) is the outer loop, so one pass over the packed weights serves
  /// the whole batch while the panel is cache-hot; every member's
  /// arithmetic is identical to matvec, so results are bit-equal to
  /// `batch` sequential matvec calls.
  void matvec_batch(const double* const* xs, std::size_t batch,
                    const double* bias, double* const* ys) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t panels_ = 0;
  std::vector<double> data_;
};

/// Int8-quantized row-major matrix: per-row symmetric scales
/// (scale_r = max|w_r| / 127), exact int32 accumulation, dequantized as
///   y[r] = bias[r] + scale_r * x_scale * sum_c wq[r][c] * xq[c].
/// Inputs are quantized dynamically per vector via quantize_input().
class QuantizedMatrix {
 public:
  QuantizedMatrix() = default;

  void pack(const double* w, std::size_t rows, std::size_t cols);

  /// Fused-pair packing, mirroring PackedMatrix::pack_pair. Each row is
  /// scaled as one unit so the dequantization stays a single per-row scale.
  void pack_pair(const double* wa, std::size_t cols_a, const double* wb,
                 std::size_t cols_b, std::size_t rows);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  /// Input scratch for matvec() must hold this many int8 lanes (cols
  /// rounded up to the SIMD stride), zero-filled past cols().
  std::size_t padded_cols() const noexcept { return cols_padded_; }
  bool empty() const noexcept { return data_.empty(); }

  /// Quantize x[0..n) into xq with a symmetric per-vector scale; returns
  /// the scale (0.0 for an all-zero vector, with xq zeroed).
  static double quantize_input(const double* x, std::size_t n,
                               std::int8_t* xq);

  /// y[r] = bias[r] + row_scale[r] * x_scale * acc_r (bias may be null).
  void matvec(const std::int8_t* xq, double x_scale, const double* bias,
              double* y) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t cols_padded_ = 0;     ///< cols rounded up to a SIMD multiple
  std::vector<std::int8_t> data_;   ///< row-major int8, zero-padded tail
  std::vector<double> row_scale_;   ///< per-row dequantization scales
};

/// Fast polynomial activations for the quantized path: a clamped Pade(7,6)
/// tanh (|error| < 1e-4 over the reals) and the matching sigmoid via
/// sigmoid(x) = (1 + tanh(x/2)) / 2. NOT bit-exact with std::tanh /
/// nn::sigmoid — quantized-path only.
void tanh_approx(const double* x, std::size_t n, double* y);
void sigmoid_approx(const double* x, std::size_t n, double* y);

/// Revision-keyed lazy cache guard for packed weight layouts.
///
/// Layers keep their PackedMatrix/QuantizedMatrix caches behind one of
/// these: ensure() repacks (under a mutex, double-checked) whenever the
/// observed parameter revision differs from the revision the cache was
/// built at. Concurrent readers with up-to-date caches take one acquire
/// load. Copying a guard resets it, so layers stay copyable and a copy
/// repacks on first use.
class PackGuard {
 public:
  PackGuard() = default;
  PackGuard(const PackGuard&) noexcept {}
  PackGuard& operator=(const PackGuard&) noexcept {
    packed_rev_.store(0, std::memory_order_release);
    return *this;
  }

  /// Run `repack()` if the cache is stale for `rev`, then mark it fresh.
  /// `rev` must be >= 1 (parameter revisions start at 1; 0 means "never
  /// packed").
  template <typename Fn>
  void ensure(std::uint64_t rev, Fn&& repack) const {
    if (packed_rev_.load(std::memory_order_acquire) == rev) return;
    const std::scoped_lock lock(mu_);
    if (packed_rev_.load(std::memory_order_relaxed) == rev) return;
    repack();
    packed_rev_.store(rev, std::memory_order_release);
  }

 private:
  mutable std::atomic<std::uint64_t> packed_rev_{0};
  mutable std::mutex mu_;
};

}  // namespace vkey::nn
