#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/error.h"

namespace vkey::nn {

std::vector<double> snapshot(const std::vector<Parameter*>& params) {
  std::vector<double> out;
  for (const Parameter* p : params) {
    out.insert(out.end(), p->value.begin(), p->value.end());
  }
  return out;
}

void restore(const std::vector<Parameter*>& params,
             const std::vector<double>& snap) {
  std::size_t total = 0;
  for (const Parameter* p : params) total += p->size();
  VKEY_REQUIRE(snap.size() == total, "snapshot size mismatch");
  std::size_t off = 0;
  for (Parameter* p : params) {
    std::copy(snap.begin() + static_cast<std::ptrdiff_t>(off),
              snap.begin() + static_cast<std::ptrdiff_t>(off + p->size()),
              p->value.begin());
    p->bump();
    off += p->size();
  }
}

void save_file(const std::string& path,
               const std::vector<Parameter*>& params) {
  std::ofstream f(path, std::ios::binary);
  VKEY_REQUIRE(f.good(), "cannot open file for writing: " + path);
  const auto snap = snapshot(params);
  const char magic[4] = {'v', 'k', 'w', '1'};
  f.write(magic, 4);
  const std::uint64_t n = snap.size();
  f.write(reinterpret_cast<const char*>(&n), sizeof(n));
  f.write(reinterpret_cast<const char*>(snap.data()),
          static_cast<std::streamsize>(snap.size() * sizeof(double)));
  VKEY_REQUIRE(f.good(), "write failed: " + path);
}

void load_file(const std::string& path,
               const std::vector<Parameter*>& params) {
  std::ifstream f(path, std::ios::binary);
  VKEY_REQUIRE(f.good(), "cannot open file for reading: " + path);
  char magic[4];
  f.read(magic, 4);
  VKEY_REQUIRE(f.good() && std::memcmp(magic, "vkw1", 4) == 0,
               "bad weight file magic: " + path);
  std::uint64_t n = 0;
  f.read(reinterpret_cast<char*>(&n), sizeof(n));
  VKEY_REQUIRE(f.good(), "truncated weight file: " + path);
  std::vector<double> snap(n);
  f.read(reinterpret_cast<char*>(snap.data()),
         static_cast<std::streamsize>(n * sizeof(double)));
  VKEY_REQUIRE(f.good(), "truncated weight file: " + path);
  restore(params, snap);
}

}  // namespace vkey::nn
