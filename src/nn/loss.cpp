#include "nn/loss.h"

#include <cmath>

#include "common/error.h"
#include "nn/activations.h"

namespace vkey::nn {

MseResult mse_loss(const Vec& pred, const Vec& target) {
  VKEY_REQUIRE(pred.size() == target.size() && !pred.empty(),
               "mse_loss size mismatch");
  MseResult r{0.0, Vec(pred.size())};
  const double n = static_cast<double>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - target[i];
    r.loss += d * d;
    r.grad[i] = 2.0 * d / n;
  }
  r.loss /= n;
  return r;
}

BceResult bce_with_logits(const Vec& logits, const Vec& target) {
  VKEY_REQUIRE(logits.size() == target.size() && !logits.empty(),
               "bce_with_logits size mismatch");
  BceResult r{0.0, Vec(logits.size()), Vec(logits.size())};
  for (std::size_t i = 0; i < logits.size(); ++i) {
    VKEY_REQUIRE(target[i] >= 0.0 && target[i] <= 1.0,
                 "BCE target must be in [0,1]");
    const double x = logits[i];
    const double z = target[i];
    // Stable form: max(x,0) - x*z + log(1 + exp(-|x|)).
    r.loss += std::max(x, 0.0) - x * z + std::log1p(std::exp(-std::fabs(x)));
    const double p = sigmoid(x);
    r.probability[i] = p;
    r.grad[i] = p - z;
  }
  return r;
}

}  // namespace vkey::nn
