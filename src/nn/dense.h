// Fully connected layer: y = W x + b.
//
// forward() caches the input so an immediately following backward() can
// accumulate weight gradients; the usual usage is per-sample
// forward -> backward with gradients summed over a mini-batch, then one
// optimizer step.
#pragma once

#include <vector>

#include "common/rng.h"
#include "nn/param.h"

namespace vkey::nn {

enum class Activation { kNone, kSigmoid, kTanh, kRelu };

class Dense {
 public:
  /// Xavier-uniform initialization with the given RNG.
  Dense(std::size_t in, std::size_t out, vkey::Rng& rng,
        Activation act = Activation::kNone);

  /// Forward pass; caches input and (for nonlinear activations) output.
  Vec forward(const Vec& x);

  /// Forward without caching (inference-only; usable concurrently).
  Vec infer(const Vec& x) const;

  /// Backward pass for the most recent forward(). Accumulates gradients
  /// into the layer parameters and returns dL/dx.
  Vec backward(const Vec& grad_out);

  std::size_t in_size() const { return in_; }
  std::size_t out_size() const { return out_; }

  std::vector<Parameter*> parameters() { return {&w_, &b_}; }
  const Parameter& weights() const { return w_; }
  const Parameter& bias() const { return b_; }

 private:
  Vec affine(const Vec& x) const;
  Vec activate(const Vec& z) const;

  std::size_t in_ = 0;
  std::size_t out_ = 0;
  Activation act_;
  Parameter w_;  // out x in, row-major
  Parameter b_;  // out
  Vec last_x_;
  Vec last_y_;   // post-activation (needed for activation derivative)
};

}  // namespace vkey::nn
