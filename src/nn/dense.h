// Fully connected layer: y = W x + b.
//
// forward() caches the input so an immediately following backward() can
// accumulate weight gradients; the usual usage is per-sample
// forward -> backward with gradients summed over a mini-batch, then one
// optimizer step.
#pragma once

#include <vector>

#include "common/rng.h"
#include "nn/gemm.h"
#include "nn/param.h"

namespace vkey::nn {

enum class Activation { kNone, kSigmoid, kTanh, kRelu };

class Dense {
 public:
  /// Xavier-uniform initialization with the given RNG.
  Dense(std::size_t in, std::size_t out, vkey::Rng& rng,
        Activation act = Activation::kNone);

  /// Externally owned forward activations for the batched-parallel
  /// training path: many threads can run forward(x, cache) /
  /// backward(cache, ...) concurrently against the same frozen weights,
  /// each with a private Cache and gradient buffers.
  struct Cache {
    Vec x;  ///< layer input
    Vec y;  ///< post-activation output
  };

  /// Forward pass; caches input and (for nonlinear activations) output.
  Vec forward(const Vec& x);

  /// Thread-safe forward writing the activations into `cache` instead of
  /// the layer (same arithmetic as forward(x), bit for bit).
  Vec forward(const Vec& x, Cache& cache) const;

  /// Forward without caching (inference-only; usable concurrently).
  Vec infer(const Vec& x) const;

  /// Batched inference: one pass over the packed weights serves the whole
  /// batch (the win for large layers like the BiLSTM prediction head,
  /// whose weight matrix exceeds the per-core cache). Bit-identical to
  /// calling infer() per element, in order.
  std::vector<Vec> infer_batch(const std::vector<const Vec*>& xs) const;

  /// Route infer()/infer_batch() through the int8 path (training and
  /// forward() stay float). NOT bit-exact with the float path; see gemm.h.
  void set_quantized(bool quantized) { quantized_ = quantized; }
  bool quantized() const { return quantized_; }

  /// The original naive affine + activation, retained as the bit-exactness
  /// oracle for the packed kernels (tests only; no metrics, no cache).
  Vec infer_reference(const Vec& x) const;

  /// Backward pass for the most recent forward(). Accumulates gradients
  /// into the layer parameters and returns dL/dx.
  Vec backward(const Vec& grad_out);

  /// Thread-safe backward for a forward(x, cache) pass: accumulates the
  /// weight/bias gradients into caller-owned buffers (sized like the
  /// parameters) and returns dL/dx. Shares the arithmetic of backward().
  Vec backward(const Cache& cache, const Vec& grad_out, Vec& grad_w,
               Vec& grad_b) const;

  std::size_t in_size() const { return in_; }
  std::size_t out_size() const { return out_; }

  std::vector<Parameter*> parameters() { return {&w_, &b_}; }
  const Parameter& weights() const { return w_; }
  const Parameter& bias() const { return b_; }
  /// Mutable gradient accumulators, for folding externally computed
  /// per-sample gradients (see backward(cache, ...)) into the layer.
  Vec& weights_grad() { return w_.grad; }
  Vec& bias_grad() { return b_.grad; }

 private:
  Vec affine(const Vec& x, bool quantized) const;
  Vec activate(const Vec& z) const;
  Vec backward_impl(const Vec& x, const Vec& y, const Vec& grad_out,
                    Vec& grad_w, Vec& grad_b) const;
  const PackedMatrix& packed() const;
  const QuantizedMatrix& quant() const;

  std::size_t in_ = 0;
  std::size_t out_ = 0;
  Activation act_;
  bool quantized_ = false;
  Parameter w_;  // out x in, row-major
  Parameter b_;  // out
  Vec last_x_;
  Vec last_y_;   // post-activation (needed for activation derivative)
  // Lazily repacked weight layouts, keyed on w_.revision (see gemm.h).
  mutable PackedMatrix packed_w_;
  mutable QuantizedMatrix quant_w_;
  mutable PackGuard pack_guard_;
  mutable PackGuard quant_guard_;
};

}  // namespace vkey::nn
