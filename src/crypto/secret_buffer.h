// Zeroizing container for secret key material, and the primitives the
// secret-flow analyzer (tools/vkey_secretflow.py) builds its model on.
//
// Every secret in the key lifecycle — the privacy-amplified session secret,
// HKDF PRKs, directional enc/mac keys, HMAC keys, confirmation keys — lives
// in a SecretBuffer instead of a bare std::vector<std::uint8_t>. The type
// enforces three invariants the analyzer then only has to *check* at its
// boundaries instead of proving everywhere:
//
//   1. Zeroize-on-destruct. The backing bytes are wiped through
//      secure_wipe() (compiler-barrier protected, cannot be optimized out)
//      before the storage is released — including when the buffer is moved
//      from, shrunk, or reassigned.
//   2. Redaction by construction. Streaming (`operator<<`) and JSON
//      conversion are deleted, so a SecretBuffer cannot reach the trace /
//      metrics / snapshot sinks without going through expose() — which is
//      the single taint escape vkey_secretflow.py recognizes and audits.
//   3. Constant-time comparison only. operator== is deleted; callers use
//      constant_time_equal(), which never early-exits on content.
//
// expose() hands back a read-only span over the live bytes. It exists
// because real consumers (AES key expansion, HMAC compression) need the
// raw bytes; the contract is that an expose() result is consumed
// immediately and never stored, printed, or serialized — exactly what the
// analyzer's sink rules flag.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

namespace vkey::json {
class Value;
}  // namespace vkey::json

namespace vkey::crypto {

/// Overwrite `len` bytes at `p` with zeros in a way the optimizer cannot
/// elide even when the storage is provably dead afterwards (the classic
/// dead-store-elimination hole memset falls into). No-op on len == 0.
void secure_wipe(void* p, std::size_t len) noexcept;

/// Wipe-and-clear a byte vector in place (wipes the live bytes, then
/// clears; capacity may survive but holds only zeros).
void secure_wipe(std::vector<std::uint8_t>& v) noexcept;

class SecretBuffer {
 public:
  SecretBuffer() = default;

  /// Take ownership of secret bytes. The moved-from vector's storage is
  /// adopted, not copied, so no unwiped duplicate is left behind.
  explicit SecretBuffer(std::vector<std::uint8_t>&& bytes) noexcept
      : bytes_(std::move(bytes)) {}

  /// Copy secret bytes out of storage this buffer does not own (e.g. a
  /// std::array digest the caller will wipe itself).
  static SecretBuffer copy_of(std::span<const std::uint8_t> bytes) {
    return SecretBuffer(std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
  }

  /// An all-zero secret of `len` bytes (HKDF's default salt block).
  static SecretBuffer zeros(std::size_t len) {
    return SecretBuffer(std::vector<std::uint8_t>(len, 0));
  }

  ~SecretBuffer() { secure_wipe(bytes_); }

  /// Copies are permitted — both sides stay zeroizing buffers (the epoch
  /// grace window genuinely needs two live key generations). Copying *out*
  /// to an unprotected container requires expose() and is what the
  /// analyzer audits.
  SecretBuffer(const SecretBuffer&) = default;
  SecretBuffer& operator=(const SecretBuffer& other) {
    if (this != &other) {
      secure_wipe(bytes_);
      bytes_ = other.bytes_;
    }
    return *this;
  }

  /// Moves wipe the source: after `b = std::move(a)`, `a` holds no secret
  /// residue (its storage was either adopted by `b` or zeroized).
  SecretBuffer(SecretBuffer&& other) noexcept
      : bytes_(std::move(other.bytes_)) {
    secure_wipe(other.bytes_);
  }
  SecretBuffer& operator=(SecretBuffer&& other) noexcept {
    if (this != &other) {
      secure_wipe(bytes_);
      bytes_ = std::move(other.bytes_);
      secure_wipe(other.bytes_);
    }
    return *this;
  }

  std::size_t size() const noexcept { return bytes_.size(); }
  bool empty() const noexcept { return bytes_.empty(); }

  /// The single sanctioned taint escape: a read-only view of the live
  /// bytes, valid until the buffer is mutated or destroyed. Consume
  /// immediately; never store, print, or serialize the result (enforced by
  /// vkey_secretflow.py's sink rules).
  std::span<const std::uint8_t> expose() const noexcept {
    return {bytes_.data(), bytes_.size()};
  }

  /// Writable view for in-place derivation (HKDF output assembly). Same
  /// contract as expose().
  std::span<std::uint8_t> expose_mut() noexcept {
    return {bytes_.data(), bytes_.size()};
  }

  /// Wipe and release the secret now instead of at destruction.
  void clear() noexcept { secure_wipe(bytes_); }

  /// Content equality is a timing side channel; use constant_time_equal().
  bool operator==(const SecretBuffer&) const = delete;

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Constant-time equality over raw byte views (length leak only). This is
/// the primitive every MAC/confirm verification routes through; the
/// vector overload in hmac.h is a shim over this one.
bool constant_time_equal(std::span<const std::uint8_t> a,
                         std::span<const std::uint8_t> b) noexcept;

/// Constant-time comparison against a secret without exposing it at the
/// call site.
inline bool constant_time_equal(const SecretBuffer& a,
                                std::span<const std::uint8_t> b) noexcept {
  return constant_time_equal(a.expose(), b);
}
inline bool constant_time_equal(std::span<const std::uint8_t> a,
                                const SecretBuffer& b) noexcept {
  return constant_time_equal(a, b.expose());
}
inline bool constant_time_equal(const SecretBuffer& a,
                                const SecretBuffer& b) noexcept {
  return constant_time_equal(a.expose(), b.expose());
}

/// Redaction by construction: secrets never stream and never serialize.
/// These deletions turn an accidental `log << key` or snapshot field into
/// a compile error instead of a leaked trace file.
std::ostream& operator<<(std::ostream&, const SecretBuffer&) = delete;
// vkey-secret: allow(secret-to-json) -- deleted overload: this declaration
// is the guard that turns the leak into a compile error; nothing flows.
json::Value to_json(const SecretBuffer&) = delete;

}  // namespace vkey::crypto
