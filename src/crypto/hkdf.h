// HKDF (RFC 5869) — HMAC-based key derivation.
//
// The privacy-amplified session key is a single 128-bit secret; protecting
// traffic needs *independent* keys for encryption and authentication (and,
// with group keys, per-purpose subkeys). HKDF's extract-then-expand
// construction derives any number of cryptographically separated subkeys
// from the session secret with domain-separating info labels.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vkey::crypto {

/// HKDF-Extract: PRK = HMAC(salt, ikm). An empty salt is replaced by a
/// zero-filled hash-length block per the RFC.
std::vector<std::uint8_t> hkdf_extract(const std::vector<std::uint8_t>& salt,
                                       const std::vector<std::uint8_t>& ikm);

/// HKDF-Expand: derive `length` bytes (<= 255 * 32) from a pseudorandom key
/// with the given context/label.
std::vector<std::uint8_t> hkdf_expand(const std::vector<std::uint8_t>& prk,
                                      const std::vector<std::uint8_t>& info,
                                      std::size_t length);

/// One-shot extract+expand.
std::vector<std::uint8_t> hkdf(const std::vector<std::uint8_t>& salt,
                               const std::vector<std::uint8_t>& ikm,
                               const std::vector<std::uint8_t>& info,
                               std::size_t length);

/// Convenience: derive a subkey from a session secret with a string label.
std::vector<std::uint8_t> derive_subkey(
    const std::vector<std::uint8_t>& session_secret, const std::string& label,
    std::size_t length);

}  // namespace vkey::crypto
