// HKDF (RFC 5869) — HMAC-based key derivation.
//
// The privacy-amplified session key is a single 128-bit secret; protecting
// traffic needs *independent* keys for encryption and authentication (and,
// with group keys, per-purpose subkeys). HKDF's extract-then-expand
// construction derives any number of cryptographically separated subkeys
// from the session secret with domain-separating info labels.
//
// Everything HKDF touches or returns is key material, so the API speaks
// SecretBuffer: PRKs and output key material come back zeroizing, and
// input secrets are taken as SecretBuffer (or a borrowed span for callers
// that hold the bytes in other wiped storage). Salt and info are public
// protocol constants and stay plain spans.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "crypto/secret_buffer.h"

namespace vkey::crypto {

/// HKDF-Extract: PRK = HMAC(salt, ikm). An empty salt is replaced by a
/// zero-filled hash-length block per the RFC.
SecretBuffer hkdf_extract(std::span<const std::uint8_t> salt,
                          std::span<const std::uint8_t> ikm);
inline SecretBuffer hkdf_extract(std::span<const std::uint8_t> salt,
                                 const SecretBuffer& ikm) {
  return hkdf_extract(salt, ikm.expose());
}

/// HKDF-Expand: derive `length` bytes (<= 255 * 32) from a pseudorandom key
/// with the given context/label.
SecretBuffer hkdf_expand(const SecretBuffer& prk,
                         std::span<const std::uint8_t> info,
                         std::size_t length);

/// One-shot extract+expand.
SecretBuffer hkdf(std::span<const std::uint8_t> salt,
                  std::span<const std::uint8_t> ikm,
                  std::span<const std::uint8_t> info, std::size_t length);

/// Convenience: derive a subkey from a session secret with a string label.
SecretBuffer derive_subkey(std::span<const std::uint8_t> session_secret,
                           const std::string& label, std::size_t length);
inline SecretBuffer derive_subkey(const SecretBuffer& session_secret,
                                  const std::string& label,
                                  std::size_t length) {
  return derive_subkey(session_secret.expose(), label, length);
}

}  // namespace vkey::crypto
