#include "crypto/hmac.h"

namespace vkey::crypto {

std::array<std::uint8_t, Sha256::kDigestSize> hmac_sha256(
    const std::vector<std::uint8_t>& key,
    const std::vector<std::uint8_t>& message) {
  constexpr std::size_t kBlockSize = 64;

  // Keys longer than the block size are hashed first.
  std::vector<std::uint8_t> k = key;
  if (k.size() > kBlockSize) {
    const auto d = Sha256::digest(k);
    k.assign(d.begin(), d.end());
  }
  k.resize(kBlockSize, 0x00);

  std::vector<std::uint8_t> ipad(kBlockSize), opad(kBlockSize);
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const auto inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest.data(), inner_digest.size());
  return outer.finalize();
}

bool constant_time_equal(const std::vector<std::uint8_t>& a,
                         const std::vector<std::uint8_t>& b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  }
  return acc == 0;
}

}  // namespace vkey::crypto
