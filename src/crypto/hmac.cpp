#include "crypto/hmac.h"

namespace vkey::crypto {

std::array<std::uint8_t, Sha256::kDigestSize> hmac_sha256(
    std::span<const std::uint8_t> key, std::span<const std::uint8_t> message) {
  constexpr std::size_t kBlockSize = 64;

  // Keys longer than the block size are hashed first. `k` and the derived
  // ipad/opad blocks are key material; all three are wiped before return.
  std::array<std::uint8_t, kBlockSize> k{};
  if (key.size() > kBlockSize) {
    Sha256 h;
    h.update(key.data(), key.size());
    auto d = h.finalize();
    std::copy(d.begin(), d.end(), k.begin());
    secure_wipe(d.data(), d.size());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }

  std::array<std::uint8_t, kBlockSize> ipad{}, opad{};
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  secure_wipe(k.data(), k.size());

  Sha256 inner;
  inner.update(ipad.data(), ipad.size());
  inner.update(message.data(), message.size());
  auto inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(opad.data(), opad.size());
  outer.update(inner_digest.data(), inner_digest.size());
  secure_wipe(ipad.data(), ipad.size());
  secure_wipe(opad.data(), opad.size());
  secure_wipe(inner_digest.data(), inner_digest.size());
  return outer.finalize();
}

}  // namespace vkey::crypto
