// HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//
// The reconciliation exchange appends MAC(K'_Bob, y_Bob) so Alice can detect
// man-in-the-middle modification (paper Sec. IV-C). Also provides the
// constant-time tag comparison used at verification.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "crypto/sha256.h"

namespace vkey::crypto {

/// Compute HMAC-SHA256 over `message` with `key`.
std::array<std::uint8_t, Sha256::kDigestSize> hmac_sha256(
    const std::vector<std::uint8_t>& key,
    const std::vector<std::uint8_t>& message);

/// Constant-time equality of two byte strings (length leak only).
bool constant_time_equal(const std::vector<std::uint8_t>& a,
                         const std::vector<std::uint8_t>& b);

}  // namespace vkey::crypto
