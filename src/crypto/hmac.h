// HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//
// The reconciliation exchange appends MAC(K'_Bob, y_Bob) so Alice can detect
// man-in-the-middle modification (paper Sec. IV-C). Also provides the
// constant-time tag comparison used at verification.
//
// Keys are secrets: the primary entry points take the key as a
// SecretBuffer or a borrowed span, and the derived ipad/opad blocks are
// zeroized before return (secure_wipe). The vector overloads remain as
// shims for non-secret-typed callers.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "crypto/secret_buffer.h"
#include "crypto/sha256.h"

namespace vkey::crypto {

/// Compute HMAC-SHA256 over `message` with `key` (borrowed views; the
/// internal key-derived scratch is wiped before returning).
std::array<std::uint8_t, Sha256::kDigestSize> hmac_sha256(
    std::span<const std::uint8_t> key, std::span<const std::uint8_t> message);

/// HMAC under a managed secret key without exposing it at the call site.
inline std::array<std::uint8_t, Sha256::kDigestSize> hmac_sha256(
    const SecretBuffer& key, std::span<const std::uint8_t> message) {
  return hmac_sha256(key.expose(), message);
}

/// Shim for std::vector callers (both arguments convert to spans).
inline std::array<std::uint8_t, Sha256::kDigestSize> hmac_sha256(
    const std::vector<std::uint8_t>& key,
    const std::vector<std::uint8_t>& message) {
  return hmac_sha256(std::span<const std::uint8_t>(key),
                     std::span<const std::uint8_t>(message));
}

/// Constant-time equality of two byte strings (length leak only). Thin
/// shim over the span overload in secret_buffer.h, kept for existing
/// vector callers.
inline bool constant_time_equal(const std::vector<std::uint8_t>& a,
                                const std::vector<std::uint8_t>& b) {
  return constant_time_equal(std::span<const std::uint8_t>(a),
                             std::span<const std::uint8_t>(b));
}

/// Constant-time check of a computed tag (array) against a received one.
inline bool constant_time_equal(
    const std::vector<std::uint8_t>& received,
    const std::array<std::uint8_t, Sha256::kDigestSize>& computed) {
  return constant_time_equal(std::span<const std::uint8_t>(received),
                             std::span<const std::uint8_t>(computed));
}

}  // namespace vkey::crypto
