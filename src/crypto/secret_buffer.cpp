#include "crypto/secret_buffer.h"

#include <cstring>

namespace vkey::crypto {

void secure_wipe(void* p, std::size_t len) noexcept {
  if (p == nullptr || len == 0) return;
  std::memset(p, 0, len);
  // Compiler barrier: tell the optimizer the wiped memory is observed, so
  // the memset above cannot be dropped as a dead store even when the
  // storage is freed immediately afterwards. The empty asm consumes the
  // pointer and clobbers memory, which is exactly the dependency DSE
  // respects; no code is emitted for it.
#if defined(__GNUC__) || defined(__clang__)
  __asm__ __volatile__("" : : "r"(p) : "memory");
#else
  // Portable fallback: a volatile write-back of the first byte pins the
  // whole region's liveness conservatively.
  *static_cast<volatile std::uint8_t*>(p) =
      *static_cast<volatile std::uint8_t*>(p);
#endif
}

void secure_wipe(std::vector<std::uint8_t>& v) noexcept {
  secure_wipe(v.data(), v.size());
  v.clear();
}

bool constant_time_equal(std::span<const std::uint8_t> a,
                         std::span<const std::uint8_t> b) noexcept {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  }
  return acc == 0;
}

}  // namespace vkey::crypto
