#include "crypto/hkdf.h"

#include "common/error.h"
#include "crypto/hmac.h"

namespace vkey::crypto {

SecretBuffer hkdf_extract(std::span<const std::uint8_t> salt,
                          std::span<const std::uint8_t> ikm) {
  const std::vector<std::uint8_t> zero_salt(
      salt.empty() ? Sha256::kDigestSize : 0, 0);
  auto prk = hmac_sha256(
      salt.empty() ? std::span<const std::uint8_t>(zero_salt) : salt, ikm);
  auto out = SecretBuffer::copy_of(prk);
  secure_wipe(prk.data(), prk.size());
  return out;
}

SecretBuffer hkdf_expand(const SecretBuffer& prk,
                         std::span<const std::uint8_t> info,
                         std::size_t length) {
  VKEY_REQUIRE(prk.size() >= Sha256::kDigestSize,
               "PRK must be at least one hash block");
  VKEY_REQUIRE(length >= 1 && length <= 255 * Sha256::kDigestSize,
               "HKDF output length out of range");
  std::vector<std::uint8_t> okm;
  okm.reserve(length + Sha256::kDigestSize);
  std::vector<std::uint8_t> block;
  std::size_t t_len = 0;  // bytes of T(i-1) at the front of `block`
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    // block = T(i-1) || info || counter
    block.resize(t_len);
    block.insert(block.end(), info.begin(), info.end());
    block.push_back(counter++);
    auto digest = hmac_sha256(prk, std::span<const std::uint8_t>(block));
    secure_wipe(block);
    block.assign(digest.begin(), digest.end());
    t_len = digest.size();
    okm.insert(okm.end(), digest.begin(), digest.end());
    secure_wipe(digest.data(), digest.size());
  }
  secure_wipe(block);
  // Trim to the requested length, wiping the overshoot before release.
  if (okm.size() > length) {
    secure_wipe(okm.data() + length, okm.size() - length);
    okm.resize(length);
  }
  return SecretBuffer(std::move(okm));
}

SecretBuffer hkdf(std::span<const std::uint8_t> salt,
                  std::span<const std::uint8_t> ikm,
                  std::span<const std::uint8_t> info, std::size_t length) {
  return hkdf_expand(hkdf_extract(salt, ikm), info, length);
}

SecretBuffer derive_subkey(std::span<const std::uint8_t> session_secret,
                           const std::string& label, std::size_t length) {
  const std::vector<std::uint8_t> info(label.begin(), label.end());
  return hkdf({}, session_secret, info, length);
}

}  // namespace vkey::crypto
