#include "crypto/hkdf.h"

#include "common/error.h"
#include "crypto/hmac.h"

namespace vkey::crypto {

std::vector<std::uint8_t> hkdf_extract(const std::vector<std::uint8_t>& salt,
                                       const std::vector<std::uint8_t>& ikm) {
  const std::vector<std::uint8_t> effective_salt =
      salt.empty() ? std::vector<std::uint8_t>(Sha256::kDigestSize, 0) : salt;
  const auto prk = hmac_sha256(effective_salt, ikm);
  return {prk.begin(), prk.end()};
}

std::vector<std::uint8_t> hkdf_expand(const std::vector<std::uint8_t>& prk,
                                      const std::vector<std::uint8_t>& info,
                                      std::size_t length) {
  VKEY_REQUIRE(prk.size() >= Sha256::kDigestSize,
               "PRK must be at least one hash block");
  VKEY_REQUIRE(length >= 1 && length <= 255 * Sha256::kDigestSize,
               "HKDF output length out of range");
  std::vector<std::uint8_t> okm;
  std::vector<std::uint8_t> t;
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    std::vector<std::uint8_t> block = t;
    block.insert(block.end(), info.begin(), info.end());
    block.push_back(counter++);
    const auto digest = hmac_sha256(prk, block);
    t.assign(digest.begin(), digest.end());
    okm.insert(okm.end(), t.begin(), t.end());
  }
  okm.resize(length);
  return okm;
}

std::vector<std::uint8_t> hkdf(const std::vector<std::uint8_t>& salt,
                               const std::vector<std::uint8_t>& ikm,
                               const std::vector<std::uint8_t>& info,
                               std::size_t length) {
  return hkdf_expand(hkdf_extract(salt, ikm), info, length);
}

std::vector<std::uint8_t> derive_subkey(
    const std::vector<std::uint8_t>& session_secret, const std::string& label,
    std::size_t length) {
  const std::vector<std::uint8_t> info(label.begin(), label.end());
  return hkdf({}, session_secret, info, length);
}

}  // namespace vkey::crypto
