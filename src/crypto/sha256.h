// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used by the privacy-amplification stage (the paper's "SHA-128" is realized
// as SHA-256 truncated to 128 bits, the common reading of that name) and as
// the compression core of HMAC for reconciliation message authentication.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vkey::crypto {

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;

  Sha256();

  /// Hashers routinely absorb key material (HMAC ipad/opad blocks, the
  /// amplified secret in privacy amplification); the destructor zeroizes
  /// the chaining state and the partial-block buffer so a finalized or
  /// abandoned hasher leaves no key-derived residue on the stack/heap.
  ~Sha256();

  Sha256(const Sha256&) = default;
  Sha256& operator=(const Sha256&) = default;
  Sha256(Sha256&&) = default;
  Sha256& operator=(Sha256&&) = default;

  /// Absorb `len` bytes.
  void update(const std::uint8_t* data, std::size_t len);
  void update(const std::vector<std::uint8_t>& data) {
    update(data.data(), data.size());
  }

  /// Finalize and return the 32-byte digest. The hasher must not be used
  /// after finalization (call reset() to reuse).
  std::array<std::uint8_t, kDigestSize> finalize();

  /// Reset to the initial state.
  void reset();

  /// One-shot convenience.
  static std::array<std::uint8_t, kDigestSize> digest(
      const std::vector<std::uint8_t>& data);
  static std::array<std::uint8_t, kDigestSize> digest(const std::string& s);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finalized_ = false;
};

/// Hex encoding of arbitrary bytes (lowercase).
std::string to_hex(const std::uint8_t* data, std::size_t len);

}  // namespace vkey::crypto
