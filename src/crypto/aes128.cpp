#include "crypto/aes128.h"

#include <cstring>

#include "common/error.h"

namespace vkey::crypto {

namespace {

// S-box and inverse S-box computed once at startup from the AES definition
// (multiplicative inverse in GF(2^8) followed by the affine transform).
struct SBoxes {
  std::uint8_t sbox[256];
  std::uint8_t inv_sbox[256];

  SBoxes() {
    // Build GF(2^8) inverse table via exp/log tables over generator 3.
    std::uint8_t exp_table[256];
    std::uint8_t log_table[256] = {0};
    std::uint8_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp_table[i] = x;
      log_table[x] = static_cast<std::uint8_t>(i);
      // multiply x by 3 = x ^ (x*2)
      const std::uint8_t x2 =
          static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0));
      x = static_cast<std::uint8_t>(x2 ^ x);
    }
    exp_table[255] = exp_table[0];
    for (int i = 0; i < 256; ++i) {
      const std::uint8_t inv =
          (i == 0) ? 0 : exp_table[255 - log_table[static_cast<std::uint8_t>(i)]];
      // Affine transform.
      std::uint8_t b = inv;
      std::uint8_t res = 0x63;
      for (int bit = 0; bit < 8; ++bit) {
        const std::uint8_t v = static_cast<std::uint8_t>(
            ((b >> bit) & 1) ^ ((b >> ((bit + 4) % 8)) & 1) ^
            ((b >> ((bit + 5) % 8)) & 1) ^ ((b >> ((bit + 6) % 8)) & 1) ^
            ((b >> ((bit + 7) % 8)) & 1));
        res = static_cast<std::uint8_t>(res ^ (v << bit));
      }
      // res currently holds affine(inv) ^ 0x63 ^ 0x63... careful: start at
      // 0x63 then XOR the parity bits in, which equals the standard formula.
      sbox[i] = res;
    }
    for (int i = 0; i < 256; ++i) inv_sbox[sbox[i]] = static_cast<std::uint8_t>(i);
  }
};

const SBoxes& boxes() {
  static const SBoxes b;
  return b;
}

inline std::uint8_t xtime(std::uint8_t a) {
  return static_cast<std::uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0));
}

inline std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  for (int i = 0; i < 8 && b; ++i) {
    if (b & 1) p ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return p;
}

}  // namespace

Aes128::Aes128(const std::array<std::uint8_t, kKeySize>& key)
    : Aes128(std::span<const std::uint8_t>(key)) {}

Aes128::Aes128(const SecretBuffer& key) : Aes128(key.expose()) {}

Aes128::~Aes128() { secure_wipe(round_keys_.data(), round_keys_.size()); }

Aes128::Aes128(std::span<const std::uint8_t> key) {
  VKEY_REQUIRE(key.size() == kKeySize, "AES-128 key must be 16 bytes");
  const auto& sb = boxes().sbox;
  std::memcpy(round_keys_.data(), key.data(), kKeySize);
  std::uint8_t rcon = 1;
  for (std::size_t i = kKeySize; i < round_keys_.size(); i += 4) {
    std::uint8_t t[4];
    std::memcpy(t, &round_keys_[i - 4], 4);
    if (i % kKeySize == 0) {
      // RotWord + SubWord + Rcon.
      const std::uint8_t tmp = t[0];
      t[0] = static_cast<std::uint8_t>(sb[t[1]] ^ rcon);
      t[1] = sb[t[2]];
      t[2] = sb[t[3]];
      t[3] = sb[tmp];
      rcon = xtime(rcon);
    }
    for (std::size_t j = 0; j < 4; ++j) {
      round_keys_[i + j] =
          static_cast<std::uint8_t>(round_keys_[i + j - kKeySize] ^ t[j]);
    }
  }
}

void Aes128::encrypt_block(std::uint8_t s[kBlockSize]) const {
  const auto& sb = boxes().sbox;
  auto add_round_key = [&](std::size_t round) {
    for (std::size_t i = 0; i < 16; ++i) s[i] ^= round_keys_[round * 16 + i];
  };
  auto sub_bytes = [&] {
    for (int i = 0; i < 16; ++i) s[i] = sb[s[i]];
  };
  auto shift_rows = [&] {
    std::uint8_t t;
    // Row 1: shift left by 1.
    t = s[1]; s[1] = s[5]; s[5] = s[9]; s[9] = s[13]; s[13] = t;
    // Row 2: shift left by 2.
    std::swap(s[2], s[10]);
    std::swap(s[6], s[14]);
    // Row 3: shift left by 3.
    t = s[15]; s[15] = s[11]; s[11] = s[7]; s[7] = s[3]; s[3] = t;
  };
  auto mix_columns = [&] {
    for (int c = 0; c < 4; ++c) {
      std::uint8_t* col = s + 4 * c;
      const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      col[0] = static_cast<std::uint8_t>(xtime(a0) ^ xtime(a1) ^ a1 ^ a2 ^ a3);
      col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ xtime(a2) ^ a2 ^ a3);
      col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ xtime(a3) ^ a3);
      col[3] = static_cast<std::uint8_t>(xtime(a0) ^ a0 ^ a1 ^ a2 ^ xtime(a3));
    }
  };

  add_round_key(0);
  for (std::size_t round = 1; round <= 9; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(10);
}

void Aes128::decrypt_block(std::uint8_t s[kBlockSize]) const {
  const auto& isb = boxes().inv_sbox;
  auto add_round_key = [&](std::size_t round) {
    for (std::size_t i = 0; i < 16; ++i) s[i] ^= round_keys_[round * 16 + i];
  };
  auto inv_sub_bytes = [&] {
    for (int i = 0; i < 16; ++i) s[i] = isb[s[i]];
  };
  auto inv_shift_rows = [&] {
    std::uint8_t t;
    // Row 1: shift right by 1.
    t = s[13]; s[13] = s[9]; s[9] = s[5]; s[5] = s[1]; s[1] = t;
    // Row 2: shift right by 2.
    std::swap(s[2], s[10]);
    std::swap(s[6], s[14]);
    // Row 3: shift right by 3.
    t = s[3]; s[3] = s[7]; s[7] = s[11]; s[11] = s[15]; s[15] = t;
  };
  auto inv_mix_columns = [&] {
    for (int c = 0; c < 4; ++c) {
      std::uint8_t* col = s + 4 * c;
      const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      col[0] = static_cast<std::uint8_t>(gmul(a0, 14) ^ gmul(a1, 11) ^
                                         gmul(a2, 13) ^ gmul(a3, 9));
      col[1] = static_cast<std::uint8_t>(gmul(a0, 9) ^ gmul(a1, 14) ^
                                         gmul(a2, 11) ^ gmul(a3, 13));
      col[2] = static_cast<std::uint8_t>(gmul(a0, 13) ^ gmul(a1, 9) ^
                                         gmul(a2, 14) ^ gmul(a3, 11));
      col[3] = static_cast<std::uint8_t>(gmul(a0, 11) ^ gmul(a1, 13) ^
                                         gmul(a2, 9) ^ gmul(a3, 14));
    }
  };

  add_round_key(10);
  for (std::size_t round = 9; round >= 1; --round) {
    inv_shift_rows();
    inv_sub_bytes();
    add_round_key(round);
    inv_mix_columns();
  }
  inv_shift_rows();
  inv_sub_bytes();
  add_round_key(0);
}

std::vector<std::uint8_t> Aes128::ctr_crypt(
    const std::vector<std::uint8_t>& data, std::uint64_t nonce) const {
  std::vector<std::uint8_t> out(data.size());
  std::uint8_t counter_block[kBlockSize];
  std::uint8_t keystream[kBlockSize];
  for (std::size_t off = 0; off < data.size(); off += kBlockSize) {
    const std::uint64_t block_index = off / kBlockSize;
    for (int i = 0; i < 8; ++i) {
      counter_block[i] = static_cast<std::uint8_t>(nonce >> (56 - 8 * i));
      counter_block[8 + i] =
          static_cast<std::uint8_t>(block_index >> (56 - 8 * i));
    }
    std::memcpy(keystream, counter_block, kBlockSize);
    encrypt_block(keystream);
    const std::size_t n = std::min(kBlockSize, data.size() - off);
    for (std::size_t i = 0; i < n; ++i) {
      out[off + i] = data[off + i] ^ keystream[i];
    }
  }
  // The residual keystream block is key-derived; known keystream bytes
  // reveal plaintext of any message reusing this (nonce, counter) pair.
  secure_wipe(keystream, sizeof(keystream));
  return out;
}

}  // namespace vkey::crypto
