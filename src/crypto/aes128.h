// AES-128 (FIPS 197) block cipher with CTR mode, implemented from scratch.
//
// The final Vehicle-Key session key drives AES-128 for payload protection
// (paper Sec. IV-C: "the final keys can be used by symmetric key encryption
// algorithms such as AES-128"). CTR mode is provided because IoV payloads are
// short and variable-length. This is a straightforward table-free
// implementation (computed S-box, xtime multiplication); fine for simulation
// use, not hardened against cache side channels.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "crypto/secret_buffer.h"

namespace vkey::crypto {

class Aes128 {
 public:
  static constexpr std::size_t kKeySize = 16;
  static constexpr std::size_t kBlockSize = 16;

  /// Expand the 128-bit key.
  explicit Aes128(const std::array<std::uint8_t, kKeySize>& key);

  /// Expand a borrowed 16-byte key view (must be exactly kKeySize bytes).
  explicit Aes128(std::span<const std::uint8_t> key);

  /// Expand directly from a managed secret without exposing it at the
  /// call site.
  explicit Aes128(const SecretBuffer& key);

  /// The expanded round keys are equivalent to the key itself; they are
  /// zeroized when the cipher goes out of scope.
  ~Aes128();

  Aes128(const Aes128&) = default;
  Aes128& operator=(const Aes128&) = default;
  Aes128(Aes128&&) = default;
  Aes128& operator=(Aes128&&) = default;

  /// Encrypt / decrypt one 16-byte block in place.
  void encrypt_block(std::uint8_t block[kBlockSize]) const;
  void decrypt_block(std::uint8_t block[kBlockSize]) const;

  /// CTR-mode keystream XOR: encryption and decryption are the same
  /// operation. `nonce` forms the upper 8 bytes of the counter block; the
  /// lower 8 bytes count blocks starting from 0.
  std::vector<std::uint8_t> ctr_crypt(const std::vector<std::uint8_t>& data,
                                      std::uint64_t nonce) const;

 private:
  // 11 round keys of 16 bytes each.
  std::array<std::uint8_t, 176> round_keys_{};
};

}  // namespace vkey::crypto
