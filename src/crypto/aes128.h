// AES-128 (FIPS 197) block cipher with CTR mode, implemented from scratch.
//
// The final Vehicle-Key session key drives AES-128 for payload protection
// (paper Sec. IV-C: "the final keys can be used by symmetric key encryption
// algorithms such as AES-128"). CTR mode is provided because IoV payloads are
// short and variable-length. This is a straightforward table-free
// implementation (computed S-box, xtime multiplication); fine for simulation
// use, not hardened against cache side channels.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace vkey::crypto {

class Aes128 {
 public:
  static constexpr std::size_t kKeySize = 16;
  static constexpr std::size_t kBlockSize = 16;

  /// Expand the 128-bit key.
  explicit Aes128(const std::array<std::uint8_t, kKeySize>& key);

  /// Encrypt / decrypt one 16-byte block in place.
  void encrypt_block(std::uint8_t block[kBlockSize]) const;
  void decrypt_block(std::uint8_t block[kBlockSize]) const;

  /// CTR-mode keystream XOR: encryption and decryption are the same
  /// operation. `nonce` forms the upper 8 bytes of the counter block; the
  /// lower 8 bytes count blocks starting from 0.
  std::vector<std::uint8_t> ctr_crypt(const std::vector<std::uint8_t>& data,
                                      std::uint64_t nonce) const;

 private:
  // 11 round keys of 16 bytes each.
  std::array<std::uint8_t, 176> round_keys_{};
};

}  // namespace vkey::crypto
