// NIST SP 800-22 statistical randomness tests (the subset reported in the
// paper's Table II, plus the Runs test).
//
// Each test returns a p-value; the randomness hypothesis is rejected when
// p < 0.01 (the paper's threshold). Implementations follow the formulas in
// NIST SP 800-22 rev 1a. Notes on deviations:
//  * The DFT test uses the first 2^k bits of the input (radix-2 FFT); the
//    reference implementation's arbitrary-length DFT has the same asymptotic
//    distribution.
//  * Recommended minimum input lengths vary per test; run_suite() skips a
//    test (marks it not-applicable) when the input is too short rather than
//    reporting a meaningless p-value.
#pragma once

#include <optional>
#include <utility>
#include <string>
#include <vector>

#include "common/bitvec.h"

namespace vkey::nist {

/// Frequency (monobit) test.
double frequency_test(const BitVec& bits);

/// Frequency within a block; `block_len` = M (default 128).
double block_frequency_test(const BitVec& bits, std::size_t block_len = 128);

/// Runs test (oscillation rate).
double runs_test(const BitVec& bits);

/// Longest run of ones in a block. Supports n >= 128 (M = 8) and
/// n >= 6272 (M = 128).
double longest_run_test(const BitVec& bits);

/// Discrete Fourier Transform (spectral) test on the leading 2^k bits.
double dft_test(const BitVec& bits);

/// Cumulative sums test; `forward` selects the scan direction.
double cumulative_sums_test(const BitVec& bits, bool forward = true);

/// Approximate entropy with pattern length m (default 2).
double approximate_entropy_test(const BitVec& bits, std::size_t m = 2);

/// Non-overlapping template matching. Default template is the SP 800-22
/// example B = 000000001 with N = 8 blocks.
double non_overlapping_template_test(const BitVec& bits,
                                     const BitVec& tmpl = BitVec::from_string(
                                         "000000001"),
                                     std::size_t num_blocks = 8);

/// Linear complexity test (Berlekamp-Massey) with block length M
/// (default 500). Requires at least one full block.
double linear_complexity_test(const BitVec& bits, std::size_t block_len = 500);

/// Berlekamp-Massey: linear complexity of a binary sequence (exposed for
/// testing).
std::size_t berlekamp_massey(const std::vector<std::uint8_t>& s);

// --- remainder of the SP 800-22 battery (beyond the paper's Table II) ---

/// Serial test (overlapping m-bit pattern frequencies); returns the two
/// p-values (nabla psi^2_m and nabla^2 psi^2_m).
std::pair<double, double> serial_test(const BitVec& bits, std::size_t m = 5);

/// Overlapping template matching (template of `m` ones, default 9).
double overlapping_template_test(const BitVec& bits, std::size_t m = 9);

/// Maurer's universal statistical test. Requires n >= 387840 for the
/// standard L = 6 parameterization; smaller inputs throw.
double universal_test(const BitVec& bits);

/// Random excursions test: returns the 8 p-values for states
/// x in {-4..-1, +1..+4}. Requires at least `min_cycles` zero-crossing
/// cycles (500 by default per the spec); throws otherwise.
std::vector<double> random_excursions_test(const BitVec& bits,
                                           std::size_t min_cycles = 500);

/// Random excursions variant: 18 p-values for x in {-9..-1, 1..9}.
std::vector<double> random_excursions_variant_test(
    const BitVec& bits, std::size_t min_cycles = 500);

struct TestResult {
  std::string name;
  std::optional<double> p_value;  ///< nullopt if input too short for test
  bool pass() const { return p_value.has_value() && *p_value >= 0.01; }
};

/// Run the Table II battery on a bit sequence.
std::vector<TestResult> run_suite(const BitVec& bits);

}  // namespace vkey::nist
