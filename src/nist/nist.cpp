#include "nist/nist.h"

#include <array>
#include <utility>
#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/fft.h"
#include "common/special.h"

namespace vkey::nist {

using vkey::special::erfc;
using vkey::special::igamc;
using vkey::special::normal_cdf;

double frequency_test(const BitVec& bits) {
  const std::size_t n = bits.size();
  VKEY_REQUIRE(n >= 100, "frequency test needs n >= 100");
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += bits.get(i) ? 1.0 : -1.0;
  const double s_obs = std::fabs(s) / std::sqrt(static_cast<double>(n));
  return erfc(s_obs / std::sqrt(2.0));
}

double block_frequency_test(const BitVec& bits, std::size_t block_len) {
  const std::size_t n = bits.size();
  VKEY_REQUIRE(block_len >= 20, "block length must be >= 20");
  const std::size_t num_blocks = n / block_len;
  VKEY_REQUIRE(num_blocks >= 1, "block frequency needs one full block");
  double chi2 = 0.0;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    std::size_t ones = 0;
    for (std::size_t i = 0; i < block_len; ++i) {
      ones += bits.get(b * block_len + i);
    }
    const double pi = static_cast<double>(ones) /
                      static_cast<double>(block_len);
    chi2 += (pi - 0.5) * (pi - 0.5);
  }
  chi2 *= 4.0 * static_cast<double>(block_len);
  return igamc(static_cast<double>(num_blocks) / 2.0, chi2 / 2.0);
}

double runs_test(const BitVec& bits) {
  const std::size_t n = bits.size();
  VKEY_REQUIRE(n >= 100, "runs test needs n >= 100");
  const double pi = static_cast<double>(bits.weight()) /
                    static_cast<double>(n);
  const double tau = 2.0 / std::sqrt(static_cast<double>(n));
  if (std::fabs(pi - 0.5) >= tau) return 0.0;  // frequency pre-test fails
  std::size_t v = 1;
  for (std::size_t i = 1; i < n; ++i) v += bits.get(i) != bits.get(i - 1);
  const double num =
      std::fabs(static_cast<double>(v) -
                2.0 * static_cast<double>(n) * pi * (1.0 - pi));
  const double den = 2.0 * std::sqrt(2.0 * static_cast<double>(n)) * pi *
                     (1.0 - pi);
  return erfc(num / den);
}

double longest_run_test(const BitVec& bits) {
  const std::size_t n = bits.size();
  VKEY_REQUIRE(n >= 128, "longest run test needs n >= 128");

  std::size_t m_len;
  std::vector<double> pi;
  std::vector<std::size_t> v_edges;  // category boundaries for longest run
  if (n < 6272) {
    m_len = 8;
    pi = {0.2148, 0.3672, 0.2305, 0.1875};
    v_edges = {1, 2, 3, 4};  // <=1, 2, 3, >=4
  } else {
    m_len = 128;
    pi = {0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124};
    v_edges = {4, 5, 6, 7, 8, 9};  // <=4, 5, 6, 7, 8, >=9
  }
  const std::size_t num_blocks = n / m_len;
  std::vector<std::size_t> counts(pi.size(), 0);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    std::size_t longest = 0, run = 0;
    for (std::size_t i = 0; i < m_len; ++i) {
      if (bits.get(b * m_len + i)) {
        ++run;
        longest = std::max(longest, run);
      } else {
        run = 0;
      }
    }
    std::size_t cat = pi.size() - 1;
    for (std::size_t k = 0; k < v_edges.size(); ++k) {
      if (longest <= v_edges[k]) {
        cat = k;
        break;
      }
    }
    ++counts[cat];
  }
  double chi2 = 0.0;
  const double nb = static_cast<double>(num_blocks);
  for (std::size_t k = 0; k < pi.size(); ++k) {
    const double expect = nb * pi[k];
    const double d = static_cast<double>(counts[k]) - expect;
    chi2 += d * d / expect;
  }
  return igamc(static_cast<double>(pi.size() - 1) / 2.0, chi2 / 2.0);
}

double dft_test(const BitVec& bits) {
  VKEY_REQUIRE(bits.size() >= 128, "dft test needs n >= 128");
  // Use the leading power-of-two prefix (see header note).
  std::size_t n = 1;
  while (n * 2 <= bits.size()) n *= 2;

  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = bits.get(i) ? 1.0 : -1.0;
  auto spectrum = vkey::fftmod::fft_real(x);

  const double threshold =
      std::sqrt(std::log(1.0 / 0.05) * static_cast<double>(n));
  const std::size_t half = n / 2;
  std::size_t below = 0;
  for (std::size_t i = 0; i < half; ++i) {
    if (std::abs(spectrum[i]) < threshold) ++below;
  }
  const double n0 = 0.95 * static_cast<double>(half);
  const double n1 = static_cast<double>(below);
  const double d =
      (n1 - n0) /
      std::sqrt(static_cast<double>(n) * 0.95 * 0.05 / 4.0);
  return erfc(std::fabs(d) / std::sqrt(2.0));
}

double cumulative_sums_test(const BitVec& bits, bool forward) {
  const std::size_t n = bits.size();
  VKEY_REQUIRE(n >= 100, "cumulative sums test needs n >= 100");
  long long sum = 0;
  long long z = 0;
  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::size_t i = forward ? idx : n - 1 - idx;
    sum += bits.get(i) ? 1 : -1;
    z = std::max(z, std::llabs(sum));
  }
  const double zd = static_cast<double>(z);
  const double nd = static_cast<double>(n);
  const double sqrt_n = std::sqrt(nd);

  double p = 1.0;
  const long long k_lo1 = static_cast<long long>(
      std::floor((-nd / zd + 1.0) / 4.0));
  const long long k_hi1 = static_cast<long long>(
      std::floor((nd / zd - 1.0) / 4.0));
  for (long long k = k_lo1; k <= k_hi1; ++k) {
    p -= normal_cdf((4.0 * static_cast<double>(k) + 1.0) * zd / sqrt_n) -
         normal_cdf((4.0 * static_cast<double>(k) - 1.0) * zd / sqrt_n);
  }
  const long long k_lo2 = static_cast<long long>(
      std::floor((-nd / zd - 3.0) / 4.0));
  const long long k_hi2 = static_cast<long long>(
      std::floor((nd / zd - 1.0) / 4.0));
  for (long long k = k_lo2; k <= k_hi2; ++k) {
    p += normal_cdf((4.0 * static_cast<double>(k) + 3.0) * zd / sqrt_n) -
         normal_cdf((4.0 * static_cast<double>(k) + 1.0) * zd / sqrt_n);
  }
  return std::clamp(p, 0.0, 1.0);
}

namespace {
// phi(m) term of the approximate entropy statistic with wrap-around.
double apen_phi(const BitVec& bits, std::size_t m) {
  if (m == 0) return 0.0;
  const std::size_t n = bits.size();
  const std::size_t patterns = 1u << m;
  std::vector<std::size_t> counts(patterns, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t idx = 0;
    for (std::size_t j = 0; j < m; ++j) {
      idx = (idx << 1) | bits.get((i + j) % n);
    }
    ++counts[idx];
  }
  double phi = 0.0;
  for (std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(n);
    phi += p * std::log(p);
  }
  return phi;
}
}  // namespace

double approximate_entropy_test(const BitVec& bits, std::size_t m) {
  const std::size_t n = bits.size();
  VKEY_REQUIRE(n >= 100, "approximate entropy test needs n >= 100");
  VKEY_REQUIRE(m >= 1 && (1u << (m + 1)) < n, "pattern length too large");
  const double apen = apen_phi(bits, m) - apen_phi(bits, m + 1);
  const double chi2 =
      2.0 * static_cast<double>(n) * (std::log(2.0) - apen);
  return igamc(std::pow(2.0, static_cast<double>(m) - 1.0), chi2 / 2.0);
}

double non_overlapping_template_test(const BitVec& bits, const BitVec& tmpl,
                                     std::size_t num_blocks) {
  const std::size_t n = bits.size();
  const std::size_t m = tmpl.size();
  VKEY_REQUIRE(m >= 2, "template too short");
  VKEY_REQUIRE(num_blocks >= 2, "need at least 2 blocks");
  const std::size_t block_len = n / num_blocks;
  VKEY_REQUIRE(block_len > m, "blocks shorter than template");

  const double mu =
      static_cast<double>(block_len - m + 1) /
      std::pow(2.0, static_cast<double>(m));
  const double sigma2 =
      static_cast<double>(block_len) *
      (1.0 / std::pow(2.0, static_cast<double>(m)) -
       (2.0 * static_cast<double>(m) - 1.0) /
           std::pow(2.0, 2.0 * static_cast<double>(m)));

  double chi2 = 0.0;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    std::size_t w = 0;
    std::size_t i = 0;
    while (i + m <= block_len) {
      bool match = true;
      for (std::size_t j = 0; j < m; ++j) {
        if (bits.get(b * block_len + i + j) != tmpl.get(j)) {
          match = false;
          break;
        }
      }
      if (match) {
        ++w;
        i += m;  // non-overlapping scan
      } else {
        ++i;
      }
    }
    const double d = static_cast<double>(w) - mu;
    chi2 += d * d / sigma2;
  }
  return igamc(static_cast<double>(num_blocks) / 2.0, chi2 / 2.0);
}

std::size_t berlekamp_massey(const std::vector<std::uint8_t>& s) {
  const std::size_t n = s.size();
  std::vector<std::uint8_t> c(n, 0), b(n, 0);
  c[0] = 1;
  b[0] = 1;
  std::size_t l = 0;
  long long m = -1;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint8_t d = s[i];
    for (std::size_t j = 1; j <= l; ++j) d ^= static_cast<std::uint8_t>(c[j] & s[i - j]);
    if (d == 1) {
      const std::vector<std::uint8_t> t = c;
      const std::size_t shift = static_cast<std::size_t>(
          static_cast<long long>(i) - m);
      for (std::size_t j = 0; j + shift < n; ++j) {
        c[j + shift] = static_cast<std::uint8_t>(c[j + shift] ^ b[j]);
      }
      if (l <= i / 2) {
        l = i + 1 - l;
        m = static_cast<long long>(i);
        b = t;
      }
    }
  }
  return l;
}

double linear_complexity_test(const BitVec& bits, std::size_t block_len) {
  const std::size_t n = bits.size();
  VKEY_REQUIRE(block_len >= 100, "linear complexity block too short");
  const std::size_t num_blocks = n / block_len;
  VKEY_REQUIRE(num_blocks >= 1, "linear complexity needs one full block");

  const double m_d = static_cast<double>(block_len);
  const double sign = (block_len % 2 == 0) ? 1.0 : -1.0;
  const double mu = m_d / 2.0 + (9.0 - sign) / 36.0 -
                    (m_d / 3.0 + 2.0 / 9.0) / std::pow(2.0, m_d);

  static const double kPi[7] = {0.010417, 0.03125, 0.125,   0.5,
                                0.25,     0.0625,  0.020833};
  std::vector<std::size_t> counts(7, 0);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    std::vector<std::uint8_t> block(block_len);
    for (std::size_t i = 0; i < block_len; ++i) {
      block[i] = bits.get(b * block_len + i);
    }
    const double l = static_cast<double>(berlekamp_massey(block));
    const double t = sign * (l - mu) + 2.0 / 9.0;
    std::size_t cat;
    if (t <= -2.5) cat = 0;
    else if (t <= -1.5) cat = 1;
    else if (t <= -0.5) cat = 2;
    else if (t <= 0.5) cat = 3;
    else if (t <= 1.5) cat = 4;
    else if (t <= 2.5) cat = 5;
    else cat = 6;
    ++counts[cat];
  }
  double chi2 = 0.0;
  for (std::size_t k = 0; k < 7; ++k) {
    const double expect = static_cast<double>(num_blocks) * kPi[k];
    const double d = static_cast<double>(counts[k]) - expect;
    chi2 += d * d / expect;
  }
  return igamc(3.0, chi2 / 2.0);
}

namespace {
// psi-squared statistic over overlapping m-bit patterns (wrap-around).
double psi_squared(const BitVec& bits, std::size_t m) {
  if (m == 0) return 0.0;
  const std::size_t n = bits.size();
  const std::size_t patterns = 1u << m;
  std::vector<std::size_t> counts(patterns, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t idx = 0;
    for (std::size_t j = 0; j < m; ++j) idx = (idx << 1) | bits.get((i + j) % n);
    ++counts[idx];
  }
  double s = 0.0;
  for (std::size_t c : counts) {
    s += static_cast<double>(c) * static_cast<double>(c);
  }
  return s * static_cast<double>(patterns) / static_cast<double>(n) -
         static_cast<double>(n);
}
}  // namespace

std::pair<double, double> serial_test(const BitVec& bits, std::size_t m) {
  const std::size_t n = bits.size();
  VKEY_REQUIRE(n >= 128, "serial test needs n >= 128");
  VKEY_REQUIRE(m >= 2 && (1u << (m + 1)) < n, "pattern length too large");
  const double psi_m = psi_squared(bits, m);
  const double psi_m1 = psi_squared(bits, m - 1);
  const double psi_m2 = psi_squared(bits, m - 2);
  const double d1 = psi_m - psi_m1;
  const double d2 = psi_m - 2.0 * psi_m1 + psi_m2;
  const double p1 =
      igamc(std::pow(2.0, static_cast<double>(m) - 2.0), d1 / 2.0);
  const double p2 =
      igamc(std::pow(2.0, static_cast<double>(m) - 3.0), d2 / 2.0);
  return {p1, p2};
}

double overlapping_template_test(const BitVec& bits, std::size_t m) {
  const std::size_t n = bits.size();
  VKEY_REQUIRE(m == 9, "standard parameterization uses the 9-ones template");
  constexpr std::size_t kBlockLen = 1032;  // SP 800-22 reference M
  const std::size_t num_blocks = n / kBlockLen;
  VKEY_REQUIRE(num_blocks >= 1,
               "overlapping template needs n >= 1032");

  // Category probabilities for m = 9, M = 1032 (SP 800-22 rev 1a,
  // section 2.8.4 / reference implementation constants).
  static const double kPi[6] = {0.364091, 0.185659, 0.139381,
                                0.100571, 0.070432, 0.139865};

  std::vector<std::size_t> counts(6, 0);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    std::size_t hits = 0;
    for (std::size_t i = 0; i + m <= kBlockLen; ++i) {
      bool match = true;
      for (std::size_t j = 0; j < m; ++j) {
        if (!bits.get(b * kBlockLen + i + j)) {
          match = false;
          break;
        }
      }
      hits += match;
    }
    ++counts[std::min<std::size_t>(hits, 5)];
  }
  double chi2 = 0.0;
  for (std::size_t u = 0; u < 6; ++u) {
    const double expect = static_cast<double>(num_blocks) * kPi[u];
    const double d = static_cast<double>(counts[u]) - expect;
    chi2 += d * d / expect;
  }
  return igamc(2.5, chi2 / 2.0);
}

double universal_test(const BitVec& bits) {
  // Standard parameterization: L = 6, Q = 10 * 2^L initialization blocks.
  constexpr std::size_t kL = 6;
  constexpr std::size_t kQ = 10 * (1u << kL);
  const std::size_t n = bits.size();
  const std::size_t blocks = n / kL;
  VKEY_REQUIRE(blocks > kQ + 2000,
               "universal test needs many more blocks (n >= ~387840)");
  const std::size_t kK = blocks - kQ;

  std::vector<std::size_t> last(1u << kL, 0);
  auto block_value = [&](std::size_t b) {
    std::size_t v = 0;
    for (std::size_t j = 0; j < kL; ++j) v = (v << 1) | bits.get(b * kL + j);
    return v;
  };
  for (std::size_t b = 0; b < kQ; ++b) last[block_value(b)] = b + 1;

  double sum = 0.0;
  for (std::size_t b = kQ; b < blocks; ++b) {
    const std::size_t v = block_value(b);
    VKEY_REQUIRE(last[v] != 0 || true, "unreachable");
    const double dist = last[v] == 0
                            ? static_cast<double>(b + 1)
                            : static_cast<double>(b + 1 - last[v]);
    sum += std::log2(dist);
    last[v] = b + 1;
  }
  const double fn = sum / static_cast<double>(kK);
  // Reference mean/variance for L = 6 (SP 800-22 table 2-4).
  const double expected = 5.2177052;
  const double variance = 2.954;
  const double c = 0.7 - 0.8 / kL +
                   (4.0 + 32.0 / kL) *
                       std::pow(static_cast<double>(kK), -3.0 / kL) / 15.0;
  const double sigma = c * std::sqrt(variance / static_cast<double>(kK));
  return erfc(std::fabs(fn - expected) / (std::sqrt(2.0) * sigma));
}

namespace {
// Zero-crossing cycles of the +-1 random walk; shared by the two random
// excursions tests. Returns per-cycle visit counts for states -9..9.
struct Excursions {
  std::vector<std::array<std::size_t, 19>> cycles;  // index = state + 9
};

Excursions build_excursions(const BitVec& bits) {
  Excursions e;
  std::array<std::size_t, 19> current{};
  long long s = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    s += bits.get(i) ? 1 : -1;
    if (s == 0) {
      e.cycles.push_back(current);
      current = {};
    } else if (s >= -9 && s <= 9) {
      ++current[static_cast<std::size_t>(s + 9)];
    }
  }
  // Terminal partial cycle counts as one (per the spec the walk is closed).
  e.cycles.push_back(current);
  return e;
}
}  // namespace

std::vector<double> random_excursions_test(const BitVec& bits,
                                           std::size_t min_cycles) {
  const auto exc = build_excursions(bits);
  const std::size_t cycles = exc.cycles.size();
  VKEY_REQUIRE(cycles >= min_cycles,
               "random excursions: not enough zero-crossing cycles");

  // pi_k(x): probability a cycle visits state x exactly k times (k = 0..4,
  // >= 5 pooled), per SP 800-22 closed forms.
  auto pi_of = [](int x, int k) {
    const double ax = std::fabs(static_cast<double>(x));
    if (k == 0) return 1.0 - 1.0 / (2.0 * ax);
    const double p_stay = 1.0 - 1.0 / (2.0 * ax);
    if (k < 5) {
      return (1.0 / (4.0 * ax * ax)) * std::pow(p_stay, k - 1);
    }
    return (1.0 / (2.0 * ax)) * std::pow(p_stay, 4);
  };

  std::vector<double> p_values;
  for (int x : {-4, -3, -2, -1, 1, 2, 3, 4}) {
    std::array<std::size_t, 6> counts{};
    for (const auto& cyc : exc.cycles) {
      const std::size_t visits = cyc[static_cast<std::size_t>(x + 9)];
      ++counts[std::min<std::size_t>(visits, 5)];
    }
    double chi2 = 0.0;
    for (int k = 0; k <= 5; ++k) {
      const double expect = static_cast<double>(cycles) * pi_of(x, k);
      if (expect <= 0.0) continue;
      const double d = static_cast<double>(counts[static_cast<std::size_t>(k)]) - expect;
      chi2 += d * d / expect;
    }
    p_values.push_back(igamc(2.5, chi2 / 2.0));
  }
  return p_values;
}

std::vector<double> random_excursions_variant_test(const BitVec& bits,
                                                   std::size_t min_cycles) {
  const auto exc = build_excursions(bits);
  const std::size_t cycles = exc.cycles.size();
  VKEY_REQUIRE(cycles >= min_cycles,
               "random excursions variant: not enough cycles");
  std::vector<double> p_values;
  for (int x = -9; x <= 9; ++x) {
    if (x == 0) continue;
    std::size_t total = 0;
    for (const auto& cyc : exc.cycles) {
      total += cyc[static_cast<std::size_t>(x + 9)];
    }
    const double j = static_cast<double>(cycles);
    const double denom =
        std::sqrt(2.0 * j * (4.0 * std::fabs(static_cast<double>(x)) - 2.0));
    p_values.push_back(
        erfc(std::fabs(static_cast<double>(total) - j) / denom));
  }
  return p_values;
}

std::vector<TestResult> run_suite(const BitVec& bits) {
  std::vector<TestResult> out;
  auto run = [&](const std::string& name, auto&& fn,
                 std::size_t min_bits) {
    TestResult r{name, std::nullopt};
    if (bits.size() >= min_bits) r.p_value = fn();
    out.push_back(r);
  };
  run("Frequency", [&] { return frequency_test(bits); }, 100);
  run("DFT Test", [&] { return dft_test(bits); }, 128);
  run("Longest Run", [&] { return longest_run_test(bits); }, 128);
  run("Linear Complexity", [&] { return linear_complexity_test(bits); },
      500);
  run("Block Frequency", [&] { return block_frequency_test(bits); }, 128);
  run("Cumulative Sums", [&] { return cumulative_sums_test(bits); }, 100);
  run("Approximate Entropy", [&] { return approximate_entropy_test(bits); },
      100);
  run("Non Overlapping Template",
      [&] { return non_overlapping_template_test(bits); }, 100);
  run("Runs", [&] { return runs_test(bits); }, 100);
  return out;
}

}  // namespace vkey::nist
