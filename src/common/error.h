// Error handling primitives shared by all Vehicle-Key modules.
//
// Public APIs validate their preconditions with VKEY_REQUIRE, which throws
// vkey::Error (derived from std::runtime_error) carrying a formatted message
// including the failing expression and source location.
#pragma once

#include <stdexcept>
#include <string>

namespace vkey {

/// Exception type thrown on any contract violation or unrecoverable failure
/// inside the Vehicle-Key library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::string full = "vkey: requirement failed: ";
  full += expr;
  if (!msg.empty()) {
    full += " (";
    full += msg;
    full += ")";
  }
  full += " at ";
  full += file;
  full += ":";
  full += std::to_string(line);
  throw Error(full);
}
}  // namespace detail

}  // namespace vkey

/// Validate a precondition; throws vkey::Error with context on failure.
#define VKEY_REQUIRE(expr, msg)                                        \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::vkey::detail::throw_error(#expr, __FILE__, __LINE__, (msg));   \
    }                                                                  \
  } while (false)
