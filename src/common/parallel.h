// Deterministic parallel execution layer.
//
// A small fixed-size thread pool plus two index-space helpers —
// parallel_for(n, fn) and parallel_map(items, fn) — whose results are
// guaranteed bit-identical regardless of the thread count. The contract
// that makes this possible (see DESIGN.md "Parallel execution &
// determinism contract"):
//
//   * Per-index purity. The worker function for index i may read shared
//     immutable state and write only to state owned by index i (its slot
//     in a pre-sized output vector). It must never touch a shared Rng —
//     stochastic work derives a private stream per index via
//     hash_combine64(seed, i).
//   * Ordered reduction. The helpers only schedule; any floating-point or
//     order-sensitive combination of the per-index results happens on the
//     calling thread, in index order, after the join. parallel_map returns
//     the results indexed by input position for exactly this reason.
//   * threads == 1 is the reference. A single-thread request (or n <= 1)
//     runs inline on the caller with no pool involvement; the parallel
//     path must reproduce it bit for bit, which the determinism suite and
//     the CI snapshot diff enforce.
//
// Scheduling is work-sharing: a call borrows up to threads-1 workers from
// the process-wide pool and participates itself; chunks are claimed from an
// atomic cursor, so completion order is nondeterministic but harmless. An
// exception thrown by the worker function is rethrown on the caller; when
// several indices throw, the lowest observed index wins.
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

namespace vkey::parallel {

/// Process-default worker count: the VKEY_THREADS environment variable when
/// set to a positive integer, otherwise std::thread::hardware_concurrency()
/// (at least 1).
std::size_t default_threads();

/// Override the process default (benches plumb --threads N through this
/// before the first parallel call). n == 0 restores the startup value.
void set_default_threads(std::size_t n);

/// Fixed-size worker pool. Most code never names it: parallel_for borrows
/// workers from the global() instance. Constructing a private pool is only
/// useful in tests that exercise the pool itself.
class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workers() const noexcept;

  /// Enqueue one task. Tasks must not block on other tasks' completion
  /// (the pool does not grow; parallel_for's join runs on the caller).
  void submit(std::function<void()> task);

  /// The process-wide pool, created on first use and never destroyed.
  /// Sized max(2, hardware_concurrency, default_threads()) so that even a
  /// single-core host genuinely exercises the concurrent path.
  static ThreadPool& global();

 private:
  struct Impl;
  Impl* impl_;  // never null; intentionally leaked resources are joined in ~
};

/// Run fn(i) for every i in [0, n), using up to `threads` execution lanes
/// (0 = default_threads(); 1 = inline sequential reference). Blocks until
/// every index completed; rethrows the lowest-index exception, if any.
/// fn must obey the per-index purity rule above.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

/// Map i -> fn(i) over [0, n) into a pre-sized vector (results in index
/// order; R must be default-constructible). Same contract as parallel_for.
template <typename Fn>
auto parallel_map_n(std::size_t n, Fn&& fn, std::size_t threads = 0)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{}))>> {
  std::vector<std::decay_t<decltype(fn(std::size_t{}))>> out(n);
  parallel_for(
      n, [&](std::size_t i) { out[i] = fn(i); }, threads);
  return out;
}

/// Map item -> fn(item, index) over a vector, preserving input order.
template <typename T, typename Fn>
auto parallel_map(const std::vector<T>& items, Fn&& fn,
                  std::size_t threads = 0)
    -> std::vector<std::decay_t<decltype(fn(std::declval<const T&>(),
                                            std::size_t{}))>> {
  std::vector<std::decay_t<decltype(fn(std::declval<const T&>(),
                                       std::size_t{}))>>
      out(items.size());
  parallel_for(
      items.size(), [&](std::size_t i) { out[i] = fn(items[i], i); },
      threads);
  return out;
}

}  // namespace vkey::parallel
