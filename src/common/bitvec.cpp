#include "common/bitvec.h"

#include "common/error.h"

namespace vkey {

BitVec::BitVec(std::vector<std::uint8_t> bits) : bits_(std::move(bits)) {
  for (auto& b : bits_) {
    VKEY_REQUIRE(b == 0 || b == 1, "BitVec elements must be 0 or 1");
  }
}

BitVec BitVec::from_string(const std::string& s) {
  BitVec out;
  out.bits_.reserve(s.size());
  for (char c : s) {
    VKEY_REQUIRE(c == '0' || c == '1', "BitVec string must be 0/1");
    out.bits_.push_back(c == '1' ? 1 : 0);
  }
  return out;
}

BitVec BitVec::from_bytes(const std::vector<std::uint8_t>& bytes,
                          std::size_t nbits) {
  VKEY_REQUIRE(nbits <= bytes.size() * 8, "not enough bytes for nbits");
  BitVec out;
  out.bits_.reserve(nbits);
  for (std::size_t i = 0; i < nbits; ++i) {
    const std::uint8_t byte = bytes[i / 8];
    out.bits_.push_back((byte >> (7 - (i % 8))) & 1u);
  }
  return out;
}

std::uint8_t BitVec::get(std::size_t i) const {
  VKEY_REQUIRE(i < bits_.size(), "BitVec index out of range");
  return bits_[i];
}

void BitVec::set(std::size_t i, bool v) {
  VKEY_REQUIRE(i < bits_.size(), "BitVec index out of range");
  bits_[i] = v ? 1 : 0;
}

void BitVec::flip(std::size_t i) {
  VKEY_REQUIRE(i < bits_.size(), "BitVec index out of range");
  bits_[i] ^= 1u;
}

void BitVec::append(const BitVec& other) {
  bits_.insert(bits_.end(), other.bits_.begin(), other.bits_.end());
}

BitVec BitVec::slice(std::size_t pos, std::size_t len) const {
  VKEY_REQUIRE(pos + len <= bits_.size(), "BitVec slice out of range");
  BitVec out;
  out.bits_.assign(bits_.begin() + static_cast<std::ptrdiff_t>(pos),
                   bits_.begin() + static_cast<std::ptrdiff_t>(pos + len));
  return out;
}

BitVec BitVec::operator^(const BitVec& rhs) const {
  VKEY_REQUIRE(size() == rhs.size(), "BitVec XOR size mismatch");
  BitVec out(size());
  for (std::size_t i = 0; i < size(); ++i) {
    out.bits_[i] = bits_[i] ^ rhs.bits_[i];
  }
  return out;
}

std::size_t BitVec::weight() const {
  std::size_t w = 0;
  for (auto b : bits_) w += b;
  return w;
}

std::size_t BitVec::hamming_distance(const BitVec& rhs) const {
  VKEY_REQUIRE(size() == rhs.size(), "hamming_distance size mismatch");
  std::size_t d = 0;
  for (std::size_t i = 0; i < size(); ++i) d += bits_[i] != rhs.bits_[i];
  return d;
}

double BitVec::agreement(const BitVec& rhs) const {
  VKEY_REQUIRE(!empty(), "agreement of empty BitVec");
  const std::size_t d = hamming_distance(rhs);
  return 1.0 - static_cast<double>(d) / static_cast<double>(size());
}

std::vector<std::uint8_t> BitVec::to_bytes() const {
  std::vector<std::uint8_t> out((bits_.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i]) out[i / 8] |= static_cast<std::uint8_t>(1u << (7 - (i % 8)));
  }
  return out;
}

std::string BitVec::to_string() const {
  std::string s;
  s.reserve(bits_.size());
  for (auto b : bits_) s.push_back(b ? '1' : '0');
  return s;
}

std::vector<double> BitVec::to_doubles() const {
  std::vector<double> v(bits_.size());
  for (std::size_t i = 0; i < bits_.size(); ++i) v[i] = bits_[i];
  return v;
}

BitVec BitVec::from_doubles_threshold(const std::vector<double>& v,
                                      double threshold) {
  BitVec out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out.bits_[i] = v[i] >= threshold;
  return out;
}

}  // namespace vkey
