// Global operator new/delete replacements reporting into alloc_stats.
//
// Deliberately NOT part of vkey_common: replacing the global allocator is a
// per-binary decision. The `vkey_alloc_hooks` OBJECT library carries exactly
// this translation unit, and only the binaries that want exact heap
// accounting (bench_soak, test_alloc_stats) link it — an archive would let
// the linker skip the unreferenced replacement symbols, an object library
// cannot be skipped. test_trace_alloc keeps its own private counting
// allocator and must never link this one (duplicate definitions).
//
// Same operator set as test_trace_alloc: the plain and array forms plus the
// sized deletes. Over-aligned and nothrow forms fall through to the default
// implementations and go uncounted — nothing in this tree allocates
// over-aligned, and the accounting is for steady-state growth, not a malloc
// ledger.
#include <cstdlib>
#include <new>

#include "common/alloc_stats.h"

void* operator new(std::size_t size) {
  vkey::alloc_stats::on_alloc(size);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  vkey::alloc_stats::on_alloc(size);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept {
  if (p != nullptr) vkey::alloc_stats::on_free();
  std::free(p);
}

void operator delete[](void* p) noexcept {
  if (p != nullptr) vkey::alloc_stats::on_free();
  std::free(p);
}

void operator delete(void* p, std::size_t) noexcept {
  if (p != nullptr) vkey::alloc_stats::on_free();
  std::free(p);
}

void operator delete[](void* p, std::size_t) noexcept {
  if (p != nullptr) vkey::alloc_stats::on_free();
  std::free(p);
}
