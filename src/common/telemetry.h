// Time-series telemetry: periodic delta-encoded samples of the metrics
// registry, streamed as canonical JSONL.
//
// The BENCH_*.json snapshots answer "where did the time go" for one run;
// they cannot show a slow leak, a drifting queue depth, or a keys/s
// regression over hours of virtual time. The Sampler closes that gap: a
// driver calls sample(t_ms) on its own clock — SimClock virtual time in
// gateway/soak runs, wall time in benches — and each call captures only what
// changed since the previous sample:
//   * counters   — the delta since the last sample,
//   * gauges     — the {value, high, low} triple when any component moved,
//   * histograms — the count delta plus absolute p50/p90/p99, overflow
//                  count and observed max when the count moved.
// Unchanged instruments are omitted, so an idle period costs a few bytes
// per sample and a steady-state run stays readable.
//
// Samples are rendered to compact JSON lines immediately and kept in a
// bounded ring (oldest evicted first, eviction counted); the JSONL document
// is one header line, the retained sample lines, and one summary line.
//
// Determinism contract (same as the Chrome-trace exporter): when the driver
// samples at virtual-time instants and restricts itself to the
// deterministic_prefixes() metric families, the JSONL output is
// byte-identical across --threads lane counts — CI diffs 1-vs-4-lane runs.
// Wall-clock histograms, alloc.* and pool-internal metrics are lane- or
// schedule-dependent and are outside the default filter.
//
// The sampler never perturbs the allocation accounting it reports: every
// sample() runs under an alloc_stats::PauseScope, and alloc.* gauges are
// republished from alloc_stats immediately before each snapshot.
//
// Security note: samples carry instrument names and numeric values only.
// The annotate() side-channel is for run parameters (seed, lane count,
// interval); key material must never reach it — vkey_secretflow's
// secret-to-telemetry rule audits exactly this sink.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"

namespace vkey::telemetry {

/// Metric-name prefixes whose values are functions of (seed, virtual time)
/// only — safe to byte-diff across thread counts. Excludes wall-clock timer
/// families (bench.*, nn.*, phy.*, pipeline.*), alloc.* and parallel.*
/// (lane-dependent by construction).
const std::vector<std::string>& deterministic_prefixes();

struct SamplerConfig {
  /// Keep an instrument only when its name starts with one of these;
  /// empty = keep everything (profiling mode, not byte-diffable).
  std::vector<std::string> include_prefixes;
  /// Retained samples; older lines are evicted (and counted as dropped).
  std::size_t ring_capacity = 4096;
  /// Free-form origin tag written into the header line.
  std::string source;
};

class Sampler {
 public:
  explicit Sampler(SamplerConfig cfg);

  /// Attach a run parameter to the header line (seed, sessions, interval).
  /// Later writes to the same key overwrite; insertion order is preserved.
  void annotate(const std::string& key, const std::string& value);

  /// Take one sample at time `t_ms` (caller's clock — virtual or wall).
  /// Sample times must be non-decreasing.
  void sample(double t_ms);
  /// Convenience: sample at trace::default_now_ms() (wall clock unless a
  /// simulation installed its own default time source).
  void sample_now();

  std::uint64_t samples_taken() const noexcept { return seq_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  /// Retained sample lines, oldest first (compact JSON, no newlines).
  std::vector<std::string> lines() const;

  std::string header_line() const;
  std::string summary_line() const;
  /// Full JSONL document: header, retained samples, summary.
  std::string to_jsonl() const;
  void write_jsonl(const std::string& path) const;

 private:
  bool included(const std::string& name) const;
  void push_line(std::string line);

  SamplerConfig cfg_;
  json::Value annotations_ = json::Value::object();

  // Previous absolute state for the delta encoding (all instruments start
  // implicitly at zero, so the first sample is itself a delta from zero).
  std::map<std::string, double> prev_counters_;
  struct GaugeState {
    double value = 0.0, high = 0.0, low = 0.0;
    bool operator==(const GaugeState&) const = default;
  };
  std::map<std::string, GaugeState> prev_gauges_;
  std::map<std::string, double> prev_hist_counts_;

  std::vector<std::string> ring_;
  std::size_t head_ = 0;  // oldest entry once the ring is full
  std::uint64_t seq_ = 0;
  std::uint64_t dropped_ = 0;
  double last_t_ms_ = 0.0;
};

}  // namespace vkey::telemetry
