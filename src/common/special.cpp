#include "common/special.h"

#include <cmath>

#include "common/error.h"

namespace vkey::special {

double erfc(double x) { return std::erfc(x); }

double lgamma(double x) {
  VKEY_REQUIRE(x > 0.0, "lgamma domain: x > 0");
  // Lanczos approximation, g = 7, n = 9 coefficients.
  static const double c[9] = {
      0.99999999999980993,  676.5203681218851,     -1259.1392167224028,
      771.32342877765313,   -176.61502916214059,   12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula (not needed by NIST but kept for completeness).
    return std::log(M_PI / std::sin(M_PI * x)) - lgamma(1.0 - x);
  }
  const double z = x - 1.0;
  double a = c[0];
  const double t = z + 7.5;
  for (int i = 1; i < 9; ++i) a += c[i] / (z + i);
  return 0.5 * std::log(2.0 * M_PI) + (z + 0.5) * std::log(t) - t +
         std::log(a);
}

namespace {

// Series representation of P(a,x); converges quickly for x < a + 1.
double igam_series(double a, double x) {
  if (x <= 0.0) return 0.0;
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - lgamma(a));
}

// Continued-fraction representation of Q(a,x); converges for x >= a + 1.
double igamc_cf(double a, double x) {
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - lgamma(a)) * h;
}

}  // namespace

double igam(double a, double x) {
  VKEY_REQUIRE(a > 0.0 && x >= 0.0, "igam domain: a > 0, x >= 0");
  if (x < a + 1.0) return igam_series(a, x);
  return 1.0 - igamc_cf(a, x);
}

double igamc(double a, double x) {
  VKEY_REQUIRE(a > 0.0 && x >= 0.0, "igamc domain: a > 0, x >= 0");
  if (x < a + 1.0) return 1.0 - igam_series(a, x);
  return igamc_cf(a, x);
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace vkey::special
