#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <unordered_map>
#include <utility>

namespace vkey::trace {

double wall_now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

namespace {

// Process-default time source. Guarded by a mutex rather than an atomic
// because NowFn is a std::function (multi-word, cannot be swapped
// atomically); every reader copies the function under the lock and calls
// the copy outside it, so set_default_now() can never free a NowFn out
// from under a concurrent caller. Timers additionally pin their copy once
// at start, so a mid-span toggle cannot mix two time bases in one
// measurement (the TSan stress test toggles while timers run).
std::mutex default_now_mu;
NowFn default_now_fn;  // empty -> wall clock

// Per-thread ambient span context. `parent` is the innermost open span on
// this thread (0 = none); `lane` is the execution-lane id (0 = a calling
// thread, 1..N-1 = borrowed pool workers, installed via LaneScope).
struct Ctx {
  std::uint64_t parent = 0;
  std::uint32_t lane = 0;
};

thread_local Ctx tls_ctx;

}  // namespace

void set_default_now(NowFn now) {
  std::lock_guard<std::mutex> lock(default_now_mu);
  default_now_fn = std::move(now);
}

NowFn default_now_snapshot() {
  std::lock_guard<std::mutex> lock(default_now_mu);
  return default_now_fn;
}

double default_now_ms() {
  NowFn fn = default_now_snapshot();
  return fn ? fn() : wall_now_ms();
}

std::string to_string(Domain d) {
  return d == Domain::kVirtual ? "virtual" : "wall";
}

json::Value Attr::to_json() const {
  switch (kind) {
    case Kind::kInt:
      return json::Value(i);
    case Kind::kDouble:
      return json::Value(d);
    case Kind::kString:
      break;
  }
  return json::Value(s);
}

std::uint64_t current_parent() noexcept { return tls_ctx.parent; }

std::uint32_t current_lane() noexcept { return tls_ctx.lane; }

LaneScope::LaneScope(std::uint32_t lane, std::uint64_t ambient_parent) noexcept
    : prev_lane_(tls_ctx.lane), prev_parent_(tls_ctx.parent) {
  tls_ctx.lane = lane;
  tls_ctx.parent = ambient_parent;
}

LaneScope::~LaneScope() {
  tls_ctx.lane = prev_lane_;
  tls_ctx.parent = prev_parent_;
}

TraceLog& TraceLog::global() {
  static TraceLog* log = new TraceLog();
  return *log;
}

TraceLog::TraceLog() {
  const char* env = std::getenv("VKEY_TRACE");
  enabled_ = env != nullptr && (std::strcmp(env, "on") == 0 ||
                                std::strcmp(env, "1") == 0 ||
                                std::strcmp(env, "true") == 0);
}

void TraceLog::set_capacity(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  // Linearize survivors (newest `n`) into a fresh buffer so the ring
  // invariant — growing phase has head_ == 0 and ring_.size() == count_ —
  // holds again after any shrink/grow.
  const std::size_t keep = count_ < n ? count_ : n;
  const std::size_t skip = count_ - keep;
  dropped_ += skip;
  std::vector<Span> lin;
  lin.reserve(keep);
  for (std::size_t k = skip; k < count_; ++k) {
    lin.push_back(std::move(ring_[(head_ + k) % ring_.size()]));
  }
  ring_ = std::move(lin);
  head_ = 0;
  count_ = keep;
  capacity_ = n;
}

void TraceLog::push_locked(Span&& span) {
  if (capacity_ == 0) {
    ++dropped_;
    return;
  }
  if (count_ < capacity_) {
    ring_.push_back(std::move(span));
    ++count_;
  } else {
    ring_[head_] = std::move(span);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
}

void TraceLog::record(Span span) {
  if (span.id == 0) span.id = next_id();
  std::lock_guard<std::mutex> lock(mu_);
  push_locked(std::move(span));
}

void TraceLog::record(const std::string& name, double start_ms,
                      double duration_ms) {
  Span s;
  s.name = name;
  s.start_ms = start_ms;
  s.duration_ms = duration_ms;
  s.id = next_id();
  s.parent = tls_ctx.parent;
  s.lane = tls_ctx.lane;
  std::lock_guard<std::mutex> lock(mu_);
  push_locked(std::move(s));
}

void TraceLog::instant(std::string name, double t_ms, Domain domain,
                       std::vector<Attr> attrs) {
  if (!enabled()) return;
  Span s;
  s.name = std::move(name);
  s.start_ms = t_ms;
  s.id = next_id();
  s.parent = tls_ctx.parent;
  s.lane = tls_ctx.lane;
  s.domain = domain;
  s.instant = true;
  s.attrs = std::move(attrs);
  std::lock_guard<std::mutex> lock(mu_);
  push_locked(std::move(s));
}

std::vector<Span> TraceLog::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Span> out;
  out.reserve(count_);
  for (std::size_t k = 0; k < count_; ++k) {
    out.push_back(ring_[(head_ + k) % ring_.size()]);
  }
  return out;
}

std::size_t TraceLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceLog::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
}

json::Value TraceLog::snapshot() const {
  const std::vector<Span> all = spans();
  json::Value root = json::Value::object();
  json::Value arr = json::Value::array();
  for (const Span& s : all) {
    json::Value e = json::Value::object();
    e.set("name", json::Value(s.name));
    e.set("start_ms", json::Value(s.start_ms));
    e.set("dur_ms", json::Value(s.duration_ms));
    e.set("id", json::Value(s.id));
    e.set("parent", json::Value(s.parent));
    e.set("lane", json::Value(s.lane));
    e.set("domain", json::Value(to_string(s.domain)));
    if (s.instant) e.set("instant", json::Value(true));
    if (!s.attrs.empty()) {
      json::Value a = json::Value::object();
      for (const Attr& at : s.attrs) a.set(at.key, at.to_json());
      e.set("attrs", std::move(a));
    }
    arr.push_back(std::move(e));
  }
  root.set("spans", std::move(arr));
  root.set("dropped", json::Value(dropped()));
  return root;
}

json::Value TraceLog::chrome_trace(bool virtual_only) const {
  std::vector<Span> all;
  std::size_t dropped_count = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    all.reserve(count_);
    for (std::size_t k = 0; k < count_; ++k) {
      all.push_back(ring_[(head_ + k) % ring_.size()]);
    }
    dropped_count = dropped_;
  }
  if (virtual_only) {
    std::erase_if(all,
                  [](const Span& s) { return s.domain != Domain::kVirtual; });
  }
  // Canonical order: (start_ms, id). Ids are handed out in start order, so
  // this is a total order independent of the stop/record interleaving —
  // the property that makes a virtual-only export byte-identical across
  // worker-lane counts.
  std::sort(all.begin(), all.end(), [](const Span& a, const Span& b) {
    if (a.start_ms != b.start_ms) return a.start_ms < b.start_ms;
    return a.id < b.id;
  });
  // Remap process-unique ids to dense indices so the export never leaks
  // how many spans other runs (or the wall domain) consumed.
  std::unordered_map<std::uint64_t, std::size_t> dense;
  dense.reserve(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) dense.emplace(all[i].id, i);

  json::Value events = json::Value::array();
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Span& s = all[i];
    json::Value e = json::Value::object();
    e.set("name", json::Value(s.name));
    e.set("cat", json::Value(to_string(s.domain)));
    e.set("ph", json::Value(s.instant ? "i" : "X"));
    e.set("ts", json::Value(s.start_ms * 1000.0));  // trace-event ts is µs
    if (!s.instant) e.set("dur", json::Value(s.duration_ms * 1000.0));
    e.set("pid", json::Value(0));
    e.set("tid", json::Value(s.lane));
    if (s.instant) e.set("s", json::Value("t"));
    json::Value args = json::Value::object();
    args.set("id", json::Value(i));
    // A parent evicted by the ring (or filtered with the wall domain) is
    // simply absent: the span exports as a root rather than dangling.
    const auto it = s.parent != 0 ? dense.find(s.parent) : dense.end();
    if (it != dense.end()) args.set("parent", json::Value(it->second));
    for (const Attr& at : s.attrs) args.set(at.key, at.to_json());
    e.set("args", std::move(args));
    events.push_back(std::move(e));
  }

  json::Value root = json::Value::object();
  root.set("traceEvents", std::move(events));
  root.set("displayTimeUnit", json::Value("ms"));
  json::Value other = json::Value::object();
  other.set("dropped", json::Value(dropped_count));
  root.set("otherData", std::move(other));
  return root;
}

bool TraceLog::write_chrome_trace(const std::string& path,
                                  bool virtual_only) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "trace: cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << chrome_trace(virtual_only).dump(0) << '\n';
  return out.good();
}

ScopedTimer::ScopedTimer(metrics::Histogram& hist, std::string_view name)
    : hist_(&hist) {
  begin(name, /*explicit_clock=*/false);
}

ScopedTimer::ScopedTimer(metrics::Histogram& hist, NowFn now,
                         std::string_view name)
    : hist_(&hist), now_(std::move(now)) {
  begin(name, /*explicit_clock=*/static_cast<bool>(now_));
}

ScopedTimer::ScopedTimer(const std::string& name)
    : hist_(&metrics::Registry::global().histogram(name)) {
  begin(name, /*explicit_clock=*/false);
}

void ScopedTimer::begin(std::string_view name, bool explicit_clock) {
  if (!metrics::enabled()) return;  // no clock read, no allocation
  if (explicit_clock) {
    // Every explicit NowFn in this tree is a SimClock (or test) virtual
    // time base; wall-clock callers use the default clock.
    domain_ = Domain::kVirtual;
  } else {
    // Pin the default override once so a concurrent set_default_now()
    // cannot change the time base between start and stop.
    now_ = default_now_snapshot();
    domain_ = now_ ? Domain::kVirtual : Domain::kWall;
  }
  start_ms_ = now_ ? now_() : wall_now_ms();
  running_ = true;
  TraceLog& log = TraceLog::global();
  if (!name.empty() && log.enabled()) {
    id_ = log.next_id();
    name_.assign(name);
    lane_ = tls_ctx.lane;
    prev_parent_ = tls_ctx.parent;
    tls_ctx.parent = id_;  // children opened in this scope nest under us
  }
}

double ScopedTimer::stop() {
  if (!running_) return 0.0;
  running_ = false;
  const double elapsed = (now_ ? now_() : wall_now_ms()) - start_ms_;
  hist_->observe(elapsed);
  if (id_ != 0) {
    tls_ctx.parent = prev_parent_;
    TraceLog& log = TraceLog::global();
    if (log.enabled()) {
      Span s;
      s.name = std::move(name_);
      s.start_ms = start_ms_;
      s.duration_ms = elapsed;
      s.id = id_;
      s.parent = prev_parent_;
      s.lane = lane_;
      s.domain = domain_;
      s.attrs = std::move(attrs_);
      log.record(std::move(s));
    }
  }
  return elapsed;
}

ScopedTimer::~ScopedTimer() { stop(); }

}  // namespace vkey::trace
