#include "common/trace.h"

#include <chrono>
#include <cstdlib>
#include <cstring>

namespace vkey::trace {

double wall_now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

namespace {

// Process-default time source. Guarded by a mutex rather than an atomic
// because NowFn is a std::function; the copy under the lock is cheap next
// to the histogram observe that follows it, and timers only reach here
// when metrics collection is on.
std::mutex default_now_mu;
NowFn default_now_fn;  // empty -> wall clock

}  // namespace

void set_default_now(NowFn now) {
  std::lock_guard<std::mutex> lock(default_now_mu);
  default_now_fn = std::move(now);
}

double default_now_ms() {
  NowFn fn;
  {
    std::lock_guard<std::mutex> lock(default_now_mu);
    fn = default_now_fn;
  }
  return fn ? fn() : wall_now_ms();
}

TraceLog& TraceLog::global() {
  static TraceLog* log = new TraceLog();
  return *log;
}

TraceLog::TraceLog() {
  const char* env = std::getenv("VKEY_TRACE");
  enabled_ = env != nullptr && (std::strcmp(env, "on") == 0 ||
                                std::strcmp(env, "1") == 0 ||
                                std::strcmp(env, "true") == 0);
}

void TraceLog::set_capacity(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = n;
  if (spans_.size() > capacity_) {
    dropped_ += spans_.size() - capacity_;
    spans_.erase(spans_.begin(),
                 spans_.begin() +
                     static_cast<std::ptrdiff_t>(spans_.size() - capacity_));
  }
}

void TraceLog::record(const std::string& name, double start_ms,
                      double duration_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= capacity_) {
    spans_.erase(spans_.begin());
    ++dropped_;
  }
  spans_.push_back(Span{name, start_ms, duration_ms});
}

std::vector<Span> TraceLog::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::size_t TraceLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceLog::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  dropped_ = 0;
}

json::Value TraceLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  json::Value root = json::Value::object();
  json::Value arr = json::Value::array();
  for (const Span& s : spans_) {
    json::Value e = json::Value::object();
    e.set("name", json::Value(s.name));
    e.set("start_ms", json::Value(s.start_ms));
    e.set("dur_ms", json::Value(s.duration_ms));
    arr.push_back(std::move(e));
  }
  root.set("spans", std::move(arr));
  root.set("dropped", json::Value(dropped_));
  return root;
}

ScopedTimer::ScopedTimer(metrics::Histogram& hist, std::string name)
    : ScopedTimer(hist, NowFn{}, std::move(name)) {}

ScopedTimer::ScopedTimer(metrics::Histogram& hist, NowFn now, std::string name)
    : hist_(&hist), now_(std::move(now)), name_(std::move(name)) {
  if (!metrics::enabled()) return;
  start_ms_ = now_ ? now_() : default_now_ms();
  running_ = true;
}

ScopedTimer::ScopedTimer(const std::string& name)
    : ScopedTimer(metrics::Registry::global().histogram(name), NowFn{},
                  name) {}

double ScopedTimer::stop() {
  if (!running_) return 0.0;
  running_ = false;
  const double elapsed = (now_ ? now_() : default_now_ms()) - start_ms_;
  hist_->observe(elapsed);
  TraceLog& log = TraceLog::global();
  if (log.enabled() && !name_.empty()) {
    log.record(name_, start_ms_, elapsed);
  }
  return elapsed;
}

ScopedTimer::~ScopedTimer() { stop(); }

}  // namespace vkey::trace
