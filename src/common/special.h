// Special functions required by the NIST SP 800-22 statistical tests.
//
// The suite's p-values are expressed in terms of the complementary error
// function erfc and the regularized incomplete gamma functions P(a,x)/Q(a,x)
// (NIST calls Q "igamc"). Implementations follow the classic series /
// continued-fraction split (Numerical Recipes style), accurate to ~1e-12 over
// the parameter ranges the tests use.
#pragma once

namespace vkey::special {

/// Complementary error function (thin wrapper over std::erfc, exposed here so
/// NIST code depends only on this header).
double erfc(double x);

/// Natural log of the gamma function, x > 0 (Lanczos approximation).
double lgamma(double x);

/// Regularized lower incomplete gamma P(a, x) = γ(a,x)/Γ(a); a > 0, x >= 0.
double igam(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = Γ(a,x)/Γ(a) = 1 - P(a, x).
/// This is the "igamc" used throughout NIST SP 800-22.
double igamc(double a, double x);

/// Standard normal cumulative distribution function.
double normal_cdf(double x);

}  // namespace vkey::special
