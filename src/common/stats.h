// Descriptive statistics used across preliminary-study and evaluation code.
//
// Pearson correlation is the paper's figure of merit for channel reciprocity
// (Fig. 2, Fig. 3, Fig. 9); mean/stddev back every "average ± std" row.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vkey::stats {

/// Arithmetic mean; requires non-empty input.
double mean(std::span<const double> x);

/// Population variance (divide by n); requires non-empty input.
double variance(std::span<const double> x);

/// Population standard deviation.
double stddev(std::span<const double> x);

/// Sample standard deviation (divide by n-1); requires n >= 2.
double sample_stddev(std::span<const double> x);

/// Pearson correlation coefficient of two equal-length series (n >= 2).
/// Returns 0 when either series is constant (degenerate correlation).
double pearson(std::span<const double> x, std::span<const double> y);

/// Minimum / maximum of a non-empty series.
double min(std::span<const double> x);
double max(std::span<const double> x);

/// Median (copies and sorts); requires non-empty input.
double median(std::span<const double> x);

/// Z-score normalization: (x - mean) / stddev. A constant series maps to 0s.
std::vector<double> zscore(std::span<const double> x);

/// Min-max normalization into [0,1]. A constant series maps to 0.5.
std::vector<double> minmax01(std::span<const double> x);

/// Simple moving average with window w >= 1 (output has same length; the
/// window is truncated at the edges).
std::vector<double> moving_average(std::span<const double> x, std::size_t w);

}  // namespace vkey::stats
