#include "common/telemetry.h"

#include <fstream>
#include <utility>

#include "common/alloc_stats.h"
#include "common/error.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace vkey::telemetry {

const std::vector<std::string>& deterministic_prefixes() {
  static const std::vector<std::string> prefixes = {
      "arq.",     "gateway.", "link.", "reliability.",
      "session.", "soak.",    "wire.",
  };
  return prefixes;
}

Sampler::Sampler(SamplerConfig cfg) : cfg_(std::move(cfg)) {
  VKEY_REQUIRE(cfg_.ring_capacity >= 1,
               "telemetry ring needs room for at least one sample");
  ring_.reserve(cfg_.ring_capacity);
}

void Sampler::annotate(const std::string& key, const std::string& value) {
  annotations_.set(key, json::Value(value));
}

bool Sampler::included(const std::string& name) const {
  if (cfg_.include_prefixes.empty()) return true;
  for (const auto& p : cfg_.include_prefixes) {
    if (name.compare(0, p.size(), p) == 0) return true;
  }
  return false;
}

void Sampler::sample(double t_ms) {
  // The sampler must not perturb the allocation accounting it reports:
  // everything below (snapshot, delta maps, the rendered line) allocates
  // freely but uncounted. Evicted ring lines are also freed inside this
  // scope, so alloc/free stay paired from alloc_stats' point of view.
  alloc_stats::PauseScope pause;
  VKEY_REQUIRE(seq_ == 0 || t_ms >= last_t_ms_,
               "telemetry sample times must be non-decreasing");
  // Refresh alloc.* gauges first so the snapshot below carries the current
  // totals (filtered out unless the caller opted into the alloc family).
  alloc_stats::publish_metrics();
  const json::Value snap = metrics::Registry::global().snapshot();

  json::Value line = json::Value::object();
  line.set("seq", json::Value(seq_));
  line.set("t_ms", json::Value(t_ms));

  json::Value counters = json::Value::object();
  for (const auto& [name, v] : snap.at("counters").as_object()) {
    if (!included(name)) continue;
    const double cur = v.as_number();
    double& prev = prev_counters_[name];
    if (cur != prev) {
      counters.set(name, json::Value(cur - prev));
      prev = cur;
    }
  }
  line.set("counters", std::move(counters));

  json::Value gauges = json::Value::object();
  for (const auto& [name, v] : snap.at("gauges").as_object()) {
    if (!included(name)) continue;
    GaugeState cur;
    cur.value = v.at("value").as_number();
    cur.high = v.at("high").as_number();
    cur.low = v.at("low").as_number();
    GaugeState& prev = prev_gauges_[name];
    if (!(cur == prev)) {
      json::Value e = json::Value::object();
      e.set("value", json::Value(cur.value));
      e.set("high", json::Value(cur.high));
      e.set("low", json::Value(cur.low));
      gauges.set(name, std::move(e));
      prev = cur;
    }
  }
  line.set("gauges", std::move(gauges));

  json::Value hists = json::Value::object();
  for (const auto& [name, v] : snap.at("histograms").as_object()) {
    if (!included(name)) continue;
    const double cur = v.at("count").as_number();
    double& prev = prev_hist_counts_[name];
    if (cur != prev) {
      json::Value e = json::Value::object();
      e.set("dcount", json::Value(cur - prev));
      for (const char* field : {"p50", "p90", "p99", "overflow", "max"}) {
        e.set(field, json::Value(v.at(field).as_number()));
      }
      hists.set(name, std::move(e));
      prev = cur;
    }
  }
  line.set("hists", std::move(hists));

  push_line(line.dump(0));
  last_t_ms_ = t_ms;
  ++seq_;
}

void Sampler::sample_now() { sample(trace::default_now_ms()); }

void Sampler::push_line(std::string line) {
  if (ring_.size() < cfg_.ring_capacity) {
    ring_.push_back(std::move(line));
    return;
  }
  ring_[head_] = std::move(line);
  head_ = (head_ + 1) % cfg_.ring_capacity;
  ++dropped_;
}

std::vector<std::string> Sampler::lines() const {
  std::vector<std::string> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::string Sampler::header_line() const {
  json::Value header = json::Value::object();
  header.set("schema", json::Value("vkey-telemetry/1"));
  header.set("source", json::Value(cfg_.source));
  json::Value filter = json::Value::array();
  for (const auto& p : cfg_.include_prefixes) filter.push_back(json::Value(p));
  header.set("filter", std::move(filter));
  header.set("ring_capacity", json::Value(cfg_.ring_capacity));
  // Copy, not move: writing the document must leave the sampler usable.
  header.set("annotations", annotations_);
  return header.dump(0);
}

std::string Sampler::summary_line() const {
  json::Value summary = json::Value::object();
  json::Value body = json::Value::object();
  body.set("samples", json::Value(seq_));
  body.set("retained", json::Value(ring_.size()));
  body.set("dropped", json::Value(dropped_));
  body.set("last_t_ms", json::Value(last_t_ms_));
  summary.set("summary", std::move(body));
  return summary.dump(0);
}

std::string Sampler::to_jsonl() const {
  std::string out = header_line();
  out += '\n';
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out += ring_[(head_ + i) % ring_.size()];
    out += '\n';
  }
  out += summary_line();
  out += '\n';
  return out;
}

void Sampler::write_jsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  VKEY_REQUIRE(out.good(), "cannot open telemetry output: " + path);
  const std::string doc = to_jsonl();
  out.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  VKEY_REQUIRE(out.good(), "short write on telemetry output: " + path);
}

}  // namespace vkey::telemetry
