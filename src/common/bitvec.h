// Compact bit vector used for keys and quantizer outputs.
//
// Keys in Vehicle-Key are sequences of bits that flow through quantization,
// Bloom mapping, reconciliation (XOR algebra) and privacy amplification.
// BitVec provides exactly the operations those stages need: indexed access,
// XOR, Hamming distance/weight, byte (de)serialization and pretty printing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vkey {

class BitVec {
 public:
  BitVec() = default;

  /// All-zero vector of `n` bits.
  explicit BitVec(std::size_t n) : bits_(n, 0) {}

  /// From an explicit 0/1 sequence.
  explicit BitVec(std::vector<std::uint8_t> bits);

  /// Parse from a string of '0'/'1' characters (other chars are rejected).
  static BitVec from_string(const std::string& s);

  /// Unpack from bytes, MSB-first within each byte, taking `nbits` bits.
  static BitVec from_bytes(const std::vector<std::uint8_t>& bytes,
                           std::size_t nbits);

  std::size_t size() const noexcept { return bits_.size(); }
  bool empty() const noexcept { return bits_.empty(); }

  /// Bit access (0 or 1). Bounds-checked.
  std::uint8_t get(std::size_t i) const;
  void set(std::size_t i, bool v);
  void flip(std::size_t i);

  /// Append a single bit.
  void push_back(bool v) { bits_.push_back(v ? 1 : 0); }

  /// Append all bits of `other`.
  void append(const BitVec& other);

  /// Sub-range [pos, pos+len).
  BitVec slice(std::size_t pos, std::size_t len) const;

  /// Element-wise XOR; sizes must match.
  BitVec operator^(const BitVec& rhs) const;

  bool operator==(const BitVec& rhs) const noexcept {
    return bits_ == rhs.bits_;
  }
  bool operator!=(const BitVec& rhs) const noexcept {
    return bits_ != rhs.bits_;
  }

  /// Number of set bits.
  std::size_t weight() const;

  /// Number of differing positions; sizes must match.
  std::size_t hamming_distance(const BitVec& rhs) const;

  /// Fraction of agreeing bits in [0,1]; sizes must match, size > 0.
  double agreement(const BitVec& rhs) const;

  /// Pack MSB-first into bytes (last byte zero-padded).
  std::vector<std::uint8_t> to_bytes() const;

  /// Render as a '0'/'1' string.
  std::string to_string() const;

  /// Bits as a vector of 0.0/1.0 doubles (neural-network I/O).
  std::vector<double> to_doubles() const;

  /// Build from real values thresholded at 0.5.
  static BitVec from_doubles_threshold(const std::vector<double>& v,
                                       double threshold = 0.5);

  const std::vector<std::uint8_t>& raw() const noexcept { return bits_; }

 private:
  std::vector<std::uint8_t> bits_;  // one byte per bit; values 0 or 1
};

}  // namespace vkey
