// Console table / CSV rendering for the benchmark harness.
//
// Every bench binary reproduces a paper table or figure by printing rows; this
// helper keeps the output format consistent (aligned columns, optional CSV for
// downstream plotting).
#pragma once

#include <string>
#include <vector>

#include "common/json.h"

namespace vkey {

class Table {
 public:
  /// Create a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Append a row (must match the header count).
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision.
  static std::string fmt(double v, int precision = 2);
  /// Percentage with '%' suffix (v in [0,1] -> "98.87%").
  static std::string pct(double v, int precision = 2);

  /// Render with aligned columns and a separator under the header.
  std::string to_string() const;

  /// Render as CSV (comma-separated, no quoting of commas — callers avoid
  /// commas in cells).
  std::string to_csv() const;

  /// {"headers": [...], "rows": [[...], ...]} — cells stay the formatted
  /// strings the console shows, so a table regenerated from the JSON is
  /// byte-identical to the printed one.
  json::Value to_json() const;

  /// GitHub-flavored markdown rendering (pipe table), used by bench_runner
  /// to splice measured tables into EXPERIMENTS.md.
  std::string to_markdown() const;
  /// Same, from a to_json()-shaped value.
  static std::string markdown_from_json(const json::Value& table);

  /// Print to stdout with an optional caption line above.
  void print(const std::string& caption = "") const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vkey
