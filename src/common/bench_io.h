// Machine-readable bench output.
//
// Every bench binary owns a BenchReport: it parses the flags common to the
// whole suite (`--json <path>` — write a BENCH_<name>.json snapshot,
// `--quick` — run a reduced-size variant for CI smoke runs, `--threads N` —
// worker lanes for the parallel stages; N=1 is the sequential reference and
// every N produces bit-identical results, `--trace-out <path>` — enable the
// span TraceLog for the run and write a Chrome trace-event JSON loadable in
// chrome://tracing / Perfetto, `--telemetry-out <path>` — write the bench's
// telemetry sampler as JSONL, with `--telemetry-all` widening the sample
// filter beyond the lane-invariant families), collects the tables the bench
// prints plus any extra scalars/notes, and writes one JSON document per run:
//
//   {
//     "bench": "<name>", "schema": 1, "quick": false,
//     "tables": [{"id", "caption", "headers", "rows"}, ...],
//     "scalars": {...}, "notes": {...},
//     "metrics": { ...Registry snapshot... }
//   }
//
// Table cells are the exact formatted strings the console shows, so
// bench_runner can regenerate EXPERIMENTS.md tables byte-identically from
// the snapshot. The metrics section carries the full registry (timings,
// FLOPs, airtime) for observability; it is the only non-deterministic part
// of the file. `--threads` deliberately does not appear in the document:
// the snapshot must byte-match across lane counts (CI diffs it).
#pragma once

#include <string>

#include "common/json.h"
#include "common/table.h"
#include "common/telemetry.h"

namespace vkey {

class BenchReport {
 public:
  /// `name` is the suite name without the BENCH_ prefix (e.g.
  /// "fig2_preliminary"). Exits with usage on unknown arguments.
  /// `--threads N` installs N as the process-wide default lane count
  /// (parallel::set_default_threads); the default is the hardware
  /// concurrency (or VKEY_THREADS).
  BenchReport(std::string name, int argc, char** argv);

  bool quick() const { return quick_; }
  /// Pick a size by mode: `full` normally, `quick_value` under --quick.
  std::size_t scaled(std::size_t full, std::size_t quick_value) const {
    return quick_ ? quick_value : full;
  }

  /// Register a table (in display order). `id` keys the table in the JSON
  /// and in EXPERIMENTS.md's AUTOGEN markers; `caption` is stored verbatim.
  void add_table(const std::string& id, const std::string& caption,
                 const Table& t);
  void add_scalar(const std::string& key, double value);
  void add_note(const std::string& key, const std::string& text);

  /// Attach the telemetry sampler whose JSONL write() should stream to the
  /// --telemetry-out path. The bench owns the sampler (it decides the clock
  /// and the sampling instants); the report only persists it. The pointer
  /// must stay valid until write().
  void set_telemetry(const telemetry::Sampler* sampler);

  /// Write the snapshot if --json was given (appends the current metrics
  /// registry), the Chrome trace if --trace-out was given, and the telemetry
  /// JSONL if --telemetry-out was given and a sampler is attached. Returns
  /// true when a snapshot file was written.
  bool write();

  const std::string& json_path() const { return path_; }
  const std::string& trace_path() const { return trace_path_; }
  const std::string& telemetry_path() const { return telemetry_path_; }
  /// --telemetry-all: sample every metric family, not just the
  /// lane-invariant telemetry::deterministic_prefixes() set (profiling
  /// mode; the output is no longer byte-diffable across --threads).
  bool telemetry_all() const { return telemetry_all_; }

 private:
  std::string name_;
  std::string path_;
  std::string trace_path_;
  std::string telemetry_path_;
  const telemetry::Sampler* telemetry_ = nullptr;
  bool telemetry_all_ = false;
  bool quick_ = false;
  json::Value tables_ = json::Value::array();
  json::Value scalars_ = json::Value::object();
  json::Value notes_ = json::Value::object();
};

}  // namespace vkey
