#include "common/bench_io.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/trace.h"

namespace vkey {

namespace {

constexpr const char* kUsage =
    "[--quick] [--json <path>] [--threads <n>] [--trace-out <path>] "
    "[--telemetry-out <path>] [--telemetry-all]";

// Strict positive-integer parse: the whole token must be digits.
bool parse_threads(const std::string& s, std::size_t& out) {
  std::size_t v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size() || v == 0) return false;
  out = v;
  return true;
}

}  // namespace

BenchReport::BenchReport(std::string name, int argc, char** argv)
    : name_(std::move(name)) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick_ = true;
    } else if (arg == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --json needs a path\n", argv[0]);
        std::exit(2);
      }
      path_ = argv[++i];
    } else if (arg == "--threads") {
      std::size_t n = 0;
      if (i + 1 >= argc || !parse_threads(argv[++i], n)) {
        std::fprintf(stderr, "%s: --threads needs a positive integer\n",
                     argv[0]);
        std::exit(2);
      }
      parallel::set_default_threads(n);
    } else if (arg == "--telemetry-out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --telemetry-out needs a path\n", argv[0]);
        std::exit(2);
      }
      telemetry_path_ = argv[++i];
    } else if (arg == "--telemetry-all") {
      telemetry_all_ = true;
    } else if (arg == "--trace-out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --trace-out needs a path\n", argv[0]);
        std::exit(2);
      }
      trace_path_ = argv[++i];
      // Span capture costs an allocation per named timer, so it is opt-in:
      // requesting an export turns the log on for this run.
      trace::TraceLog::global().set_enabled(true);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s %s\n", argv[0], kUsage);
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s' (usage: %s %s)\n",
                   argv[0], arg.c_str(), argv[0], kUsage);
      std::exit(2);
    }
  }
}

void BenchReport::add_table(const std::string& id, const std::string& caption,
                            const Table& t) {
  json::Value entry = json::Value::object();
  entry.set("id", json::Value(id));
  entry.set("caption", json::Value(caption));
  const json::Value tj = t.to_json();
  entry.set("headers", tj.at("headers"));
  entry.set("rows", tj.at("rows"));
  tables_.push_back(std::move(entry));
}

void BenchReport::add_scalar(const std::string& key, double value) {
  scalars_.set(key, json::Value(value));
}

void BenchReport::add_note(const std::string& key, const std::string& text) {
  notes_.set(key, json::Value(text));
}

void BenchReport::set_telemetry(const telemetry::Sampler* sampler) {
  telemetry_ = sampler;
}

bool BenchReport::write() {
  if (!telemetry_path_.empty() && telemetry_ != nullptr) {
    telemetry_->write_jsonl(telemetry_path_);
    std::fprintf(stderr, "wrote %s\n", telemetry_path_.c_str());
  }
  if (!trace_path_.empty()) {
    // All domains: bench spans are wall-clock and meant for profiling, not
    // for byte-diffing (that is vkey_sim's virtual-only export).
    if (trace::TraceLog::global().write_chrome_trace(trace_path_,
                                                     /*virtual_only=*/false)) {
      std::fprintf(stderr, "wrote %s\n", trace_path_.c_str());
    }
  }
  if (path_.empty()) return false;
  json::Value doc = json::Value::object();
  doc.set("bench", json::Value(name_));
  doc.set("schema", json::Value(1));
  doc.set("quick", json::Value(quick_));
  doc.set("tables", tables_);
  doc.set("scalars", scalars_);
  doc.set("notes", notes_);
  doc.set("metrics", metrics::Registry::global().snapshot());

  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_io: cannot write %s\n", path_.c_str());
    return false;
  }
  out << doc.dump(2);
  std::fprintf(stderr, "wrote %s\n", path_.c_str());
  return true;
}

}  // namespace vkey
