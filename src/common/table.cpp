#include "common/table.h"

#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace vkey {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  VKEY_REQUIRE(!headers_.empty(), "Table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  VKEY_REQUIRE(row.size() == headers_.size(), "Table row width mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c]
          << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    out << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << "|" << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ",";
      out << row[c];
    }
    out << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

json::Value Table::to_json() const {
  json::Value t = json::Value::object();
  json::Value headers = json::Value::array();
  for (const auto& h : headers_) headers.push_back(json::Value(h));
  t.set("headers", std::move(headers));
  json::Value rows = json::Value::array();
  for (const auto& row : rows_) {
    json::Value r = json::Value::array();
    for (const auto& cell : row) r.push_back(json::Value(cell));
    rows.push_back(std::move(r));
  }
  t.set("rows", std::move(rows));
  return t;
}

std::string Table::to_markdown() const {
  return markdown_from_json(to_json());
}

std::string Table::markdown_from_json(const json::Value& table) {
  const auto& headers = table.at("headers").as_array();
  const auto& rows = table.at("rows").as_array();

  // Align columns: markdown doesn't need it, but padded source diffs and
  // raw views read far better.
  std::vector<std::size_t> widths(headers.size(), 3);
  auto escape_cell = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '|') out += "\\|";
      else out += c;
    }
    return out;
  };
  std::vector<std::vector<std::string>> cells;
  cells.push_back({});
  for (const auto& h : headers) cells.back().push_back(escape_cell(h.as_string()));
  for (const auto& row : rows) {
    cells.push_back({});
    for (const auto& c : row.as_array()) {
      cells.back().push_back(escape_cell(c.as_string()));
    }
    VKEY_REQUIRE(cells.back().size() == headers.size(),
                 "table row width mismatch in JSON");
  }
  for (const auto& row : cells) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << " " << row[c]
          << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    out << "\n";
  };
  emit_row(cells.front());
  out << "|";
  for (std::size_t c = 0; c < headers.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (std::size_t r = 1; r < cells.size(); ++r) emit_row(cells[r]);
  return out.str();
}

void Table::print(const std::string& caption) const {
  if (!caption.empty()) std::printf("%s\n", caption.c_str());
  std::printf("%s", to_string().c_str());
}

}  // namespace vkey
