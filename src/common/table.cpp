#include "common/table.h"

#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace vkey {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  VKEY_REQUIRE(!headers_.empty(), "Table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  VKEY_REQUIRE(row.size() == headers_.size(), "Table row width mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c]
          << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    out << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << "|" << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ",";
      out << row[c];
    }
    out << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print(const std::string& caption) const {
  if (!caption.empty()) std::printf("%s\n", caption.c_str());
  std::printf("%s", to_string().c_str());
}

}  // namespace vkey
