#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace vkey::json {

namespace {

[[noreturn]] void type_error(const char* want, Value::Type got) {
  static const char* names[] = {"null", "bool", "number", "string", "array",
                                "object"};
  throw Error(std::string("json: expected ") + want + ", value is " +
              names[static_cast<int>(got)]);
}

}  // namespace

bool Value::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return num_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return str_;
}

const Array& Value::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return arr_;
}

const Object& Value::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return obj_;
}

void Value::push_back(Value v) {
  if (type_ != Type::kArray) type_error("array", type_);
  arr_.push_back(std::move(v));
}

void Value::set(const std::string& key, Value v) {
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  if (v == nullptr) throw Error("json: missing key '" + key + "'");
  return *v;
}

const Value* Value::find(const std::string& key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::size_t Value::size() const {
  switch (type_) {
    case Type::kArray: return arr_.size();
    case Type::kObject: return obj_.size();
    case Type::kString: return str_.size();
    default: type_error("array/object/string", type_);
  }
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through
        }
    }
  }
  return out;
}

std::string format_number(double v) {
  VKEY_REQUIRE(std::isfinite(v), "json numbers must be finite");
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    const auto [p, ec] =
        std::to_chars(buf, buf + sizeof buf, static_cast<std::int64_t>(v));
    return std::string(buf, p);
  }
  char buf[40];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, p);
}

void Value::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber:
      // JSON has no NaN/Infinity literal. format_number stays strict for
      // direct callers, but a document that picked up a non-finite double
      // (degenerate config upstream of a division, say) must serialize as
      // valid JSON every downstream parser accepts: normalize to null.
      if (std::isfinite(num_)) {
        out += format_number(num_);
      } else {
        out += "null";
      }
      break;
    case Type::kString:
      out += '"';
      out += escape(str_);
      out += '"';
      break;
    case Type::kArray:
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      break;
    case Type::kObject:
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(depth + 1);
        out += '"';
        out += escape(obj_[i].first);
        out += "\":";
        if (indent > 0) out += ' ';
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      break;
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value run() {
    Value v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw Error("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return Value(string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("bad literal");
      default: return number();
    }
  }

  Value object() {
    expect('{');
    Value obj = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      obj.set(key, value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Value array() {
    expect('[');
    Value arr = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("dangling escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("short \\u escape");
          unsigned code = 0;
          const auto [p, ec] = std::from_chars(
              s_.data() + pos_, s_.data() + pos_ + 4, code, 16);
          if (ec != std::errc() || p != s_.data() + pos_ + 4) {
            fail("bad \\u escape");
          }
          pos_ += 4;
          // Exporter only emits \u for control characters; decode the
          // BMP subset as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    double out = 0.0;
    const auto [p, ec] =
        std::from_chars(s_.data() + start, s_.data() + pos_, out);
    if (ec != std::errc() || p != s_.data() + pos_ || pos_ == start) {
      pos_ = start;
      fail("bad number");
    }
    return Value(out);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Value::parse(const std::string& text) { return Parser(text).run(); }

}  // namespace vkey::json
