#include "common/matrix.h"

#include <cmath>

#include "common/error.h"

namespace vkey {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    VKEY_REQUIRE(row.size() == cols_, "ragged initializer for Matrix");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  VKEY_REQUIRE(r < rows_ && c < cols_, "Matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  VKEY_REQUIRE(r < rows_ && c < cols_, "Matrix index out of range");
  return data_[r * cols_ + c];
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  VKEY_REQUIRE(cols_ == rhs.rows_, "Matrix multiply shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out(r, c) += a * rhs(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  VKEY_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_,
               "Matrix add shape mismatch");
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] + rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  VKEY_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_,
               "Matrix subtract shape mismatch");
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] - rhs.data_[i];
  return out;
}

Matrix Matrix::scaled(double s) const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * s;
  return out;
}

std::vector<double> Matrix::mul_vec(const std::vector<double>& v) const {
  VKEY_REQUIRE(v.size() == cols_, "Matrix * vector shape mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += (*this)(r, c) * v[c];
    out[r] = s;
  }
  return out;
}

std::vector<double> Matrix::column(std::size_t c) const {
  VKEY_REQUIRE(c < cols_, "Matrix column out of range");
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

std::vector<double> Matrix::solve(Matrix a, std::vector<double> b) {
  VKEY_REQUIRE(a.rows() == a.cols(), "solve requires a square matrix");
  VKEY_REQUIRE(b.size() == a.rows(), "solve rhs size mismatch");
  const std::size_t n = a.rows();
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a(r, col)) > std::fabs(a(piv, col))) piv = r;
    }
    VKEY_REQUIRE(std::fabs(a(piv, col)) > 1e-12, "singular matrix in solve");
    if (piv != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(piv, c));
      std::swap(b[col], b[piv]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) / a(col, col);
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= f * a(col, c);
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t c = i + 1; c < n; ++c) s -= a(i, c) * x[c];
    x[i] = s / a(i, i);
  }
  return x;
}

std::vector<double> Matrix::least_squares(const Matrix& a,
                                          const std::vector<double>& b) {
  VKEY_REQUIRE(a.rows() >= a.cols(), "least_squares needs rows >= cols");
  const Matrix at = a.transpose();
  Matrix ata = at * a;
  // Tikhonov-style jitter keeps near-collinear OMP supports solvable.
  for (std::size_t i = 0; i < ata.rows(); ++i) ata(i, i) += 1e-10;
  return solve(ata, at.mul_vec(b));
}

double norm2(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  VKEY_REQUIRE(a.size() == b.size(), "dot size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace vkey
