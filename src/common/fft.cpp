#include "common/fft.h"

#include <cmath>

#include "common/error.h"

namespace vkey::fftmod {

void fft(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  VKEY_REQUIRE(n >= 1 && (n & (n - 1)) == 0, "fft length must be power of 2");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * M_PI / static_cast<double>(len) *
                       (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::size_t next_pow2(std::size_t n) {
  VKEY_REQUIRE(n >= 1, "next_pow2 needs n >= 1");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::vector<std::complex<double>> fft_real(const std::vector<double>& x) {
  VKEY_REQUIRE(!x.empty(), "fft_real of empty series");
  std::vector<std::complex<double>> data(next_pow2(x.size()));
  for (std::size_t i = 0; i < x.size(); ++i) data[i] = {x[i], 0.0};
  fft(data);
  return data;
}

}  // namespace vkey::fftmod
