#include "common/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/error.h"

namespace vkey::metrics {

namespace {

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("VKEY_METRICS");
    if (env != nullptr &&
        (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
         std::strcmp(env, "false") == 0)) {
      return false;
    }
    return true;
  }();
  return flag;
}

}  // namespace

bool enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}
void set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

namespace {

// Lock-free monotone update: raise (or lower) `slot` to `v` if `v` is more
// extreme. Relaxed ordering suffices — watermarks are diagnostics read after
// the writers quiesce.
void raise_to(std::atomic<double>& slot, double v) noexcept {
  double cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void lower_to(std::atomic<double>& slot, double v) noexcept {
  double cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Gauge::add(double delta) noexcept {
  if (!enabled()) return;
  double cur = v_.load(std::memory_order_relaxed);
  while (!v_.compare_exchange_weak(cur, cur + delta,
                                   std::memory_order_relaxed)) {
  }
  update_watermarks(cur + delta);
}

void Gauge::update_watermarks(double v) noexcept {
  // hi_/lo_ rest at ∓inf sentinels (construction, reset) so the monotone
  // CAS updates need no seeding step — a seeded first write would race and
  // could permanently drop a concurrent writer's extreme. The sentinels
  // never escape: accessors return 0.0 until written_ flips.
  raise_to(hi_, v);
  lower_to(lo_, v);
  written_.store(true, std::memory_order_relaxed);
}

double Gauge::high_watermark() const noexcept {
  return written_.load(std::memory_order_relaxed)
             ? hi_.load(std::memory_order_relaxed)
             : 0.0;
}

double Gauge::low_watermark() const noexcept {
  return written_.load(std::memory_order_relaxed)
             ? lo_.load(std::memory_order_relaxed)
             : 0.0;
}

void Gauge::reset_watermarks() noexcept {
  if (!written_.load(std::memory_order_relaxed)) return;
  const double cur = v_.load(std::memory_order_relaxed);
  hi_.store(cur, std::memory_order_relaxed);
  lo_.store(cur, std::memory_order_relaxed);
}

void Gauge::reset() noexcept {
  v_.store(0.0, std::memory_order_relaxed);
  hi_.store(-std::numeric_limits<double>::infinity(),
            std::memory_order_relaxed);
  lo_.store(std::numeric_limits<double>::infinity(),
            std::memory_order_relaxed);
  written_.store(false, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  VKEY_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket bound");
  VKEY_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                   std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                       bounds_.end(),
               "histogram bounds must be strictly increasing");
}

void Histogram::observe(double v) {
  if (!enabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
  raise_to(max_, v);
  max_written_.store(true, std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return max_written_.load(std::memory_order_relaxed)
             ? max_.load(std::memory_order_relaxed)
             : 0.0;
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::quantile(double q) const {
  VKEY_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  const auto counts = bucket_counts();
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (static_cast<double>(cum + counts[i]) < target) {
      cum += counts[i];
      continue;
    }
    // Interpolate within bucket i. The overflow bucket has no finite upper
    // bound; use the largest observed value as its upper edge so saturated
    // distributions report real tail quantiles instead of clamping at
    // bounds().back() (which silently folded overflow into the top finite
    // bucket).
    const double lo = i == 0 ? 0.0 : bounds_[i - 1];
    const double hi =
        i == bounds_.size() ? std::max(max(), bounds_.back()) : bounds_[i];
    if (counts[i] == 0) return hi;
    const double frac =
        (target - static_cast<double>(cum)) / static_cast<double>(counts[i]);
    return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
  }
  return bounds_.back();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_written_.store(false, std::memory_order_relaxed);
}

const std::vector<double>& default_time_buckets_ms() {
  static const std::vector<double> buckets = [] {
    std::vector<double> b;
    // 1 µs .. 100 s in 1 / 2.5 / 5 steps per decade.
    for (double decade = 1e-3; decade < 1e5 * 1.5; decade *= 10.0) {
      b.push_back(decade);
      b.push_back(decade * 2.5);
      b.push_back(decade * 5.0);
    }
    return b;
  }();
  return buckets;
}

Registry& Registry::global() {
  static Registry* r = new Registry();  // never destroyed: instruments may
                                        // be touched by static destructors
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, c] : counters_) {
    if (n == name) return *c;
  }
  counters_.emplace_back(name, std::make_unique<Counter>());
  return *counters_.back().second;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, g] : gauges_) {
    if (n == name) return *g;
  }
  gauges_.emplace_back(name, std::make_unique<Gauge>());
  return *gauges_.back().second;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, h] : histograms_) {
    if (n == name) return *h;
  }
  histograms_.emplace_back(name, std::make_unique<Histogram>(bounds));
  return *histograms_.back().second;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, c] : counters_) c->reset();
  for (auto& [n, g] : gauges_) g->reset();
  for (auto& [n, h] : histograms_) h->reset();
}

json::Value Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);

  // Sort names: the registration order depends on code paths taken, the
  // export should not.
  auto sorted = [](const auto& entries) {
    std::vector<std::pair<std::string, const void*>> out;
    out.reserve(entries.size());
    for (const auto& [n, v] : entries) out.emplace_back(n, v.get());
    std::sort(out.begin(), out.end());
    return out;
  };

  json::Value root = json::Value::object();

  json::Value counters = json::Value::object();
  for (const auto& [name, p] : sorted(counters_)) {
    counters.set(name,
                 json::Value(static_cast<const Counter*>(p)->value()));
  }
  root.set("counters", std::move(counters));

  json::Value gauges = json::Value::object();
  for (const auto& [name, p] : sorted(gauges_)) {
    const auto* g = static_cast<const Gauge*>(p);
    json::Value e = json::Value::object();
    e.set("value", json::Value(g->value()));
    e.set("high", json::Value(g->high_watermark()));
    e.set("low", json::Value(g->low_watermark()));
    gauges.set(name, std::move(e));
  }
  root.set("gauges", std::move(gauges));

  json::Value hists = json::Value::object();
  for (const auto& [name, p] : sorted(histograms_)) {
    const auto* h = static_cast<const Histogram*>(p);
    json::Value e = json::Value::object();
    e.set("count", json::Value(h->count()));
    e.set("sum", json::Value(h->sum()));
    e.set("mean", json::Value(h->mean()));
    e.set("p50", json::Value(h->quantile(0.5)));
    e.set("p90", json::Value(h->quantile(0.90)));
    e.set("p99", json::Value(h->quantile(0.99)));
    e.set("overflow", json::Value(h->overflow_count()));
    e.set("max", json::Value(h->max()));
    json::Value bounds = json::Value::array();
    for (const double b : h->bounds()) bounds.push_back(json::Value(b));
    e.set("bounds", std::move(bounds));
    json::Value buckets = json::Value::array();
    for (const auto c : h->bucket_counts()) buckets.push_back(json::Value(c));
    e.set("buckets", std::move(buckets));
    hists.set(name, std::move(e));
  }
  root.set("histograms", std::move(hists));
  return root;
}

std::string Registry::to_json(int indent) const {
  return snapshot().dump(indent);
}

namespace {

// RFC 4180: a field containing a comma, quote, or line break is wrapped in
// double quotes with inner quotes doubled. Instrument names are free-form
// strings, so an unescaped `lora.sf7,bw125` would silently shift every
// column after it.
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\r\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Registry::to_csv() const {
  const json::Value snap = snapshot();
  std::string out = "kind,name,field,value\n";
  for (const auto& [name, v] : snap.at("counters").as_object()) {
    out += "counter," + csv_escape(name) + ",value," +
           json::format_number(v.as_number()) + "\n";
  }
  for (const auto& [name, g] : snap.at("gauges").as_object()) {
    const std::string escaped = csv_escape(name);
    for (const char* field : {"value", "high", "low"}) {
      out += "gauge," + escaped + "," + field + "," +
             json::format_number(g.at(field).as_number()) + "\n";
    }
  }
  // The quantile fields below come straight from snapshot(), which is the
  // single Histogram::quantile() implementation — CSV does no quantile math
  // of its own.
  for (const auto& [name, h] : snap.at("histograms").as_object()) {
    const std::string escaped = csv_escape(name);
    for (const char* field :
         {"count", "sum", "mean", "p50", "p90", "p99", "overflow", "max"}) {
      out += "histogram," + escaped + "," + field + "," +
             json::format_number(h.at(field).as_number()) + "\n";
    }
    const auto& bounds = h.at("bounds").as_array();
    const auto& buckets = h.at("buckets").as_array();
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      const std::string label =
          i < bounds.size() ? "le_" + json::format_number(bounds[i].as_number())
                            : std::string("le_inf");
      out += "histogram," + escaped + "," + label + "," +
             json::format_number(buckets[i].as_number()) + "\n";
    }
  }
  return out;
}

}  // namespace vkey::metrics
