// Library-level allocation accounting.
//
// Generalizes the counting-allocator technique from test_trace_alloc into a
// reusable layer: binaries that want exact heap accounting additionally link
// the `vkey_alloc_hooks` object library, whose global operator new/delete
// replacements report every allocation here. Binaries that do not link the
// hooks pay nothing — the counters simply never move and hooks_installed()
// stays false, so callers can gate their assertions.
//
// What is counted:
//   * allocations / frees — exact block counts (unsized delete is still one
//     free), so live_blocks() == allocations - frees is exact and a
//     steady-state leak shows up as monotone growth.
//   * bytes — cumulative bytes requested from operator new. There is no
//     live-bytes figure: C++ deallocation is unsized in general, so only
//     block counts can be tracked exactly on free.
//
// The counters are namespace-scope relaxed atomics — safe to bump before
// main() and from any thread (operator new runs everywhere, including inside
// the deterministic pool's workers). A thread-local pause flag (PauseScope)
// lets measurement machinery — the telemetry sampler, report writers —
// allocate without polluting the numbers they are reporting.
//
// The soak harness wraps each engine round in a PhaseScope and asserts the
// live-block delta is exactly zero once warm — the "zero steady-state
// allocation growth" gate.
#pragma once

#include <cstddef>
#include <cstdint>

namespace vkey::alloc_stats {

struct Totals {
  std::uint64_t allocations = 0;
  std::uint64_t frees = 0;
  std::uint64_t bytes = 0;  // cumulative bytes requested
};

/// True once the interposed operator new/delete (alloc_hooks.cpp) has
/// reported at least one event — i.e. this binary actually links the hooks.
/// Assertions about allocation counts must be skipped when false.
bool hooks_installed() noexcept;

Totals totals() noexcept;

/// Exact count of currently-live heap blocks seen by the hooks.
std::int64_t live_blocks() noexcept;

/// Reporting entry points for the interposed allocator (alloc_hooks.cpp).
/// No-ops while the calling thread holds a PauseScope.
void on_alloc(std::size_t bytes) noexcept;
void on_free() noexcept;

/// True while the calling thread is inside a PauseScope.
bool paused() noexcept;

/// Suspends accounting on this thread for the scope's lifetime. Used by the
/// measurement machinery itself (telemetry sampling, report assembly) so
/// observing the allocation counters never perturbs them. Nests.
class PauseScope {
 public:
  PauseScope() noexcept;
  ~PauseScope();
  PauseScope(const PauseScope&) = delete;
  PauseScope& operator=(const PauseScope&) = delete;

 private:
  bool prev_;
};

/// Captures the counters at construction; delta() / live_delta() report the
/// movement since. Purely observational — phases may overlap freely.
class PhaseScope {
 public:
  PhaseScope() noexcept;
  Totals delta() const noexcept;
  std::int64_t live_delta() const noexcept;

 private:
  Totals start_;
  std::int64_t live_start_;
};

/// Publish the current totals as `alloc.*` gauges in the global metrics
/// registry (alloc.allocations, alloc.frees, alloc.bytes, alloc.live_blocks)
/// so the telemetry sampler can capture steady-state allocation rate.
/// Registers the gauges even when the hooks are absent — the exported
/// structure must not depend on which binary runs the sampler.
void publish_metrics();

}  // namespace vkey::alloc_stats
