// Process-wide metrics registry: counters, gauges, fixed-bucket histograms.
//
// Every layer of the stack reports into one global registry so a bench, the
// vkey_sim driver or a test can ask "where did the time / the bits go" after
// any run:
//   * Counter   — monotonically increasing u64 (bits produced, frames sent,
//                 retransmissions, FLOPs). Lock-free atomic adds.
//   * Gauge     — last-written double plus a lock-free accumulate mode
//                 (airtime milliseconds, link budget leftovers).
//   * Histogram — fixed upper-bucket-bound distribution with count/sum
//                 (stage latencies, backoff delays). Bounds are set at
//                 registration; observations are atomic per bucket.
//
// Instruments live for the process lifetime: the registry hands out stable
// references, so hot paths register once (function-local static) and then
// pay only an atomic add per event. reset() zeroes values but never
// invalidates references.
//
// The whole subsystem is gated by one flag: the VKEY_METRICS environment
// variable ("off"/"0"/"false" disables collection at startup) or
// set_enabled(). Disabled instruments drop writes; readers still work.
// This is what the `VKEY_METRICS=off` overhead comparison in the acceptance
// bench toggles.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"

namespace vkey::metrics {

/// Global collection switch (initialized from VKEY_METRICS; default on).
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (enabled()) v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) noexcept {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
    update_watermarks(v);
  }
  /// Lock-free accumulate (compare-exchange loop).
  void add(double delta) noexcept;
  double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  /// Highest / lowest value written since construction, reset() or
  /// reset_watermarks(). 0.0 before the first write (the watermarks of a
  /// never-written gauge carry no information; exporters must not invent
  /// ±inf). Watermark maintenance is relaxed-atomic: concurrent writers
  /// never lose the extreme of the values they actually stored, but a
  /// reader racing a writer may briefly see value() ahead of the
  /// watermarks.
  double high_watermark() const noexcept;
  double low_watermark() const noexcept;
  /// Re-arm both watermarks to the current value (a measurement window
  /// boundary: a persistent level like `gateway.inflight` starts the next
  /// window from its live level, not from zero). A never-written gauge
  /// stays unwatermarked.
  void reset_watermarks() noexcept;
  void reset() noexcept;

 private:
  void update_watermarks(double v) noexcept;

  std::atomic<double> v_{0.0};
  // ∓inf sentinels let the watermark updates be single monotone CAS loops
  // with no racy first-write seeding; accessors hide them behind written_.
  std::atomic<double> hi_{-std::numeric_limits<double>::infinity()};
  std::atomic<double> lo_{std::numeric_limits<double>::infinity()};
  std::atomic<bool> written_{false};
};

class Histogram {
 public:
  /// `bounds` are strictly increasing upper bucket bounds; an implicit
  /// +inf bucket is appended. An empty bounds list is rejected.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const;
  double mean() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative-free per-bucket counts, bounds().size() + 1 entries (the
  /// last is the overflow bucket).
  std::vector<std::uint64_t> bucket_counts() const;
  /// Observations beyond the last finite bound (the +inf bucket). Reported
  /// explicitly in snapshots/CSV so saturated distributions are visible
  /// instead of silently folding into the top finite bucket.
  std::uint64_t overflow_count() const noexcept {
    return buckets_.back().load(std::memory_order_relaxed);
  }
  /// Largest value observed (0.0 while empty). Tracked so the overflow
  /// bucket has a real upper edge for quantile interpolation.
  double max() const noexcept;
  /// Quantile estimate from the buckets, q in [0, 1], by linear
  /// interpolation: the bucket containing rank q*count is located in the
  /// cumulative counts and the result is interpolated between its lower and
  /// upper bound proportionally to the rank's position inside the bucket.
  /// For the overflow bucket the upper edge is max() (the largest value
  /// actually seen), so values beyond the last finite bound still move the
  /// high quantiles instead of clamping at bounds().back(). q=1 therefore
  /// returns max() whenever the overflow bucket is populated.
  double quantile(double q) const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // -inf sentinel, same monotone-CAS scheme as the Gauge watermarks.
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::atomic<bool> max_written_{false};
};

/// Default latency buckets for millisecond-scale timers: 1 µs .. 100 s in
/// 1-2.5-5 steps.
const std::vector<double>& default_time_buckets_ms();

class Registry {
 public:
  /// The process-wide registry used by all built-in instrumentation.
  static Registry& global();

  /// Find-or-create. References stay valid for the registry's lifetime.
  /// Re-registering a histogram under the same name returns the existing
  /// instrument (the original bounds win).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& bounds =
                           default_time_buckets_ms());

  /// Zero every instrument's value; registrations (and references) survive.
  void reset();

  /// Snapshot as {"counters": {...}, "gauges": {...}, "histograms": {...}},
  /// keys sorted. Gauges are {"value", "high", "low"} objects (watermarks);
  /// histograms carry count/sum/mean/p50/p90/p99/overflow/max and the raw
  /// buckets. Instruments with zero events are included (their registration
  /// is information too).
  json::Value snapshot() const;
  std::string to_json(int indent = 2) const;
  /// Flat CSV: kind,name,field,value — one line per scalar, one per bucket.
  std::string to_csv() const;

 private:
  mutable std::mutex mu_;  // guards the maps; instruments are lock-free
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
};

}  // namespace vkey::metrics
