// Process-wide metrics registry: counters, gauges, fixed-bucket histograms.
//
// Every layer of the stack reports into one global registry so a bench, the
// vkey_sim driver or a test can ask "where did the time / the bits go" after
// any run:
//   * Counter   — monotonically increasing u64 (bits produced, frames sent,
//                 retransmissions, FLOPs). Lock-free atomic adds.
//   * Gauge     — last-written double plus a lock-free accumulate mode
//                 (airtime milliseconds, link budget leftovers).
//   * Histogram — fixed upper-bucket-bound distribution with count/sum
//                 (stage latencies, backoff delays). Bounds are set at
//                 registration; observations are atomic per bucket.
//
// Instruments live for the process lifetime: the registry hands out stable
// references, so hot paths register once (function-local static) and then
// pay only an atomic add per event. reset() zeroes values but never
// invalidates references.
//
// The whole subsystem is gated by one flag: the VKEY_METRICS environment
// variable ("off"/"0"/"false" disables collection at startup) or
// set_enabled(). Disabled instruments drop writes; readers still work.
// This is what the `VKEY_METRICS=off` overhead comparison in the acceptance
// bench toggles.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"

namespace vkey::metrics {

/// Global collection switch (initialized from VKEY_METRICS; default on).
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (enabled()) v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) noexcept {
    if (enabled()) v_.store(v, std::memory_order_relaxed);
  }
  /// Lock-free accumulate (compare-exchange loop).
  void add(double delta) noexcept;
  double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

class Histogram {
 public:
  /// `bounds` are strictly increasing upper bucket bounds; an implicit
  /// +inf bucket is appended. An empty bounds list is rejected.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const;
  double mean() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative-free per-bucket counts, bounds().size() + 1 entries (the
  /// last is the overflow bucket).
  std::vector<std::uint64_t> bucket_counts() const;
  /// Linear-interpolated quantile estimate from the buckets, q in [0, 1].
  double quantile(double q) const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency buckets for millisecond-scale timers: 1 µs .. 100 s in
/// 1-2.5-5 steps.
const std::vector<double>& default_time_buckets_ms();

class Registry {
 public:
  /// The process-wide registry used by all built-in instrumentation.
  static Registry& global();

  /// Find-or-create. References stay valid for the registry's lifetime.
  /// Re-registering a histogram under the same name returns the existing
  /// instrument (the original bounds win).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& bounds =
                           default_time_buckets_ms());

  /// Zero every instrument's value; registrations (and references) survive.
  void reset();

  /// Snapshot as {"counters": {...}, "gauges": {...}, "histograms": {...}},
  /// keys sorted, histograms carrying count/sum/mean/p50/p99 and the raw
  /// buckets. Instruments with zero events are included (their registration
  /// is information too).
  json::Value snapshot() const;
  std::string to_json(int indent = 2) const;
  /// Flat CSV: kind,name,field,value — one line per scalar, one per bucket.
  std::string to_csv() const;

 private:
  mutable std::mutex mu_;  // guards the maps; instruments are lock-free
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
};

}  // namespace vkey::metrics
