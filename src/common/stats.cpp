#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace vkey::stats {

double mean(std::span<const double> x) {
  VKEY_REQUIRE(!x.empty(), "mean of empty series");
  double s = 0.0;
  for (double v : x) s += v;
  return s / static_cast<double>(x.size());
}

double variance(std::span<const double> x) {
  const double m = mean(x);
  double s = 0.0;
  for (double v : x) s += (v - m) * (v - m);
  return s / static_cast<double>(x.size());
}

double stddev(std::span<const double> x) { return std::sqrt(variance(x)); }

double sample_stddev(std::span<const double> x) {
  VKEY_REQUIRE(x.size() >= 2, "sample_stddev needs n >= 2");
  const double m = mean(x);
  double s = 0.0;
  for (double v : x) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(x.size() - 1));
}

double pearson(std::span<const double> x, std::span<const double> y) {
  VKEY_REQUIRE(x.size() == y.size(), "pearson size mismatch");
  VKEY_REQUIRE(x.size() >= 2, "pearson needs n >= 2");
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double min(std::span<const double> x) {
  VKEY_REQUIRE(!x.empty(), "min of empty series");
  return *std::min_element(x.begin(), x.end());
}

double max(std::span<const double> x) {
  VKEY_REQUIRE(!x.empty(), "max of empty series");
  return *std::max_element(x.begin(), x.end());
}

double median(std::span<const double> x) {
  VKEY_REQUIRE(!x.empty(), "median of empty series");
  std::vector<double> v(x.begin(), x.end());
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return (n % 2 == 1) ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

std::vector<double> zscore(std::span<const double> x) {
  const double m = mean(x);
  const double sd = stddev(x);
  std::vector<double> out(x.size());
  if (sd == 0.0) return out;  // constant series -> all zeros
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = (x[i] - m) / sd;
  return out;
}

std::vector<double> minmax01(std::span<const double> x) {
  const double lo = min(x);
  const double hi = max(x);
  std::vector<double> out(x.size());
  if (hi == lo) {
    std::fill(out.begin(), out.end(), 0.5);
    return out;
  }
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = (x[i] - lo) / (hi - lo);
  return out;
}

std::vector<double> moving_average(std::span<const double> x, std::size_t w) {
  VKEY_REQUIRE(w >= 1, "moving_average window must be >= 1");
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::size_t lo = (i + 1 >= w) ? i + 1 - w : 0;
    double s = 0.0;
    for (std::size_t j = lo; j <= i; ++j) s += x[j];
    out[i] = s / static_cast<double>(i - lo + 1);
  }
  return out;
}

}  // namespace vkey::stats
