// Deterministic random number generation for reproducible simulation.
//
// Every stochastic component in the library takes an explicit 64-bit seed and
// derives its own Rng so that experiments are bit-reproducible across runs.
// The generator is xoshiro256** (Blackman & Vigna), seeded via SplitMix64,
// which is fast, high-quality and fully self-contained (no libstdc++
// implementation-defined distributions: gaussian/uniform are implemented here
// so results are identical across standard libraries).
#pragma once

#include <cmath>
#include <cstdint>

namespace vkey {

/// SplitMix64 step; used for seeding and for cheap stateless hashing of
/// (seed, index) pairs, e.g. in the position-preserving Bloom filter.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of two words (used for deriving per-component seeds).
inline std::uint64_t hash_combine64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// xoshiro256** PRNG with explicit seeding and portable distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xc0ffee1234abcdefULL) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  /// Uniform 64-bit word.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's unbiased bounded generation (rejection on the low word).
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box-Muller (cached second variate).
  double gaussian() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_ = r * std::sin(theta);
    have_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal with given mean and standard deviation.
  double gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
  }

  /// Bernoulli(p) draw.
  bool bernoulli(double p) { return uniform() < p; }

  /// Derive an independent child generator (for per-component streams).
  Rng fork(std::uint64_t stream_id) {
    return Rng(hash_combine64(next_u64(), stream_id));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  double cached_ = 0.0;
  bool have_cached_ = false;
};

}  // namespace vkey
