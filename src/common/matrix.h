// Small dense matrix algebra.
//
// Used by the compressed-sensing reconciliation baseline (sensing matrices,
// OMP least-squares solves) and by a few evaluation utilities. This is a
// deliberately simple row-major double matrix: sizes in these code paths are
// tens-by-tens, so clarity wins over BLAS-grade optimization. The neural
// network library has its own tensor type tuned for its access patterns.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace vkey {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols zero matrix.
  Matrix(std::size_t rows, std::size_t cols);

  /// From nested initializer lists (all rows must have equal length).
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Unchecked access for hot loops.
  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  Matrix transpose() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix scaled(double s) const;

  /// Matrix-vector product (vector length must equal cols()).
  std::vector<double> mul_vec(const std::vector<double>& v) const;

  /// Extract a column as a vector.
  std::vector<double> column(std::size_t c) const;

  /// Solve A x = b via Gaussian elimination with partial pivoting.
  /// A must be square and non-singular (throws vkey::Error otherwise).
  static std::vector<double> solve(Matrix a, std::vector<double> b);

  /// Least-squares solve min ||A x - b||_2 via normal equations
  /// (A^T A) x = A^T b. Suitable for the small well-conditioned systems OMP
  /// produces. A.rows() >= A.cols() required.
  static std::vector<double> least_squares(const Matrix& a,
                                           const std::vector<double>& b);

  const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm of a vector.
double norm2(const std::vector<double>& v);

/// Dot product (sizes must match).
double dot(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace vkey
