// Radix-2 complex FFT.
//
// Needed by the NIST DFT (spectral) test in Table II. Input length is padded
// to the next power of two by the caller when required; this routine requires
// a power-of-two length.
#pragma once

#include <complex>
#include <vector>

namespace vkey::fftmod {

/// In-place iterative radix-2 Cooley-Tukey FFT. data.size() must be a power
/// of two (and >= 1). `inverse` computes the unscaled inverse transform
/// (caller divides by N if normalization is desired).
void fft(std::vector<std::complex<double>>& data, bool inverse = false);

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// Convenience: forward FFT of a real series zero-padded to a power of two;
/// returns the complex spectrum.
std::vector<std::complex<double>> fft_real(const std::vector<double>& x);

}  // namespace vkey::fftmod
