// Scoped timers and a lightweight span log on top of the metrics registry.
//
// A ScopedTimer measures the lifetime of a scope and, on destruction,
// observes the elapsed milliseconds into a Histogram and (optionally)
// appends a span to the global TraceLog. The time source is pluggable:
//   * default — the process-default clock: monotonic wall clock (benches,
//     vkey_sim, the pipeline) unless set_default_now() installs an override;
//   * any NowFn returning milliseconds — protocol code passes a lambda over
//     the PR-1 SimClock, so spans inside a simulated session are measured
//     in *virtual* time and stay bit-reproducible.
//
// The TraceLog is a bounded in-memory span buffer (name, start, duration)
// for post-run inspection and JSON export; it is off by default (enable via
// VKEY_TRACE=on or TraceLog::set_enabled) because span capture allocates.
// Timers always honor the metrics enabled() switch: with VKEY_METRICS=off a
// ScopedTimer never reads the clock.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/metrics.h"

namespace vkey::trace {

/// Millisecond time source. Must be monotone within one timer's lifetime.
using NowFn = std::function<double()>;

/// Monotonic wall clock in milliseconds (steady_clock). This is the single
/// sanctioned wall-clock read in the library (vkey_lint's `wall-clock` rule
/// allowlists only its definition); all other code takes time from a NowFn.
double wall_now_ms();

/// Install the process-default time source used by ScopedTimers constructed
/// without an explicit NowFn (an empty function restores the wall clock).
/// A simulation can point this at a SimClock so every timer in the process
/// — including ones in code that never heard of virtual time — measures
/// virtual milliseconds and stays bit-reproducible.
void set_default_now(NowFn now);

/// Milliseconds from the process-default source (wall clock unless
/// set_default_now installed an override).
double default_now_ms();

struct Span {
  std::string name;
  double start_ms = 0.0;
  double duration_ms = 0.0;
};

/// Bounded global span buffer. Oldest spans are dropped once `capacity`
/// is reached (the drop count is kept so exports are honest about it).
class TraceLog {
 public:
  static TraceLog& global();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  void set_capacity(std::size_t n);

  void record(const std::string& name, double start_ms, double duration_ms);

  std::vector<Span> spans() const;
  std::size_t dropped() const;
  void clear();

  /// {"spans": [{"name", "start_ms", "dur_ms"}, ...], "dropped": n}
  json::Value snapshot() const;

 private:
  TraceLog();

  mutable std::mutex mu_;
  // Atomic: read lock-free on every timer stop, possibly while another
  // thread toggles it (the TSan stress test exercises exactly this).
  std::atomic<bool> enabled_{false};
  std::size_t capacity_ = 1 << 16;
  std::size_t dropped_ = 0;
  std::vector<Span> spans_;
};

/// RAII scope timer. Records into `hist` (and the TraceLog, when enabled)
/// when the scope ends; stop() ends it early and returns the elapsed ms.
class ScopedTimer {
 public:
  /// Time into an explicit histogram with the process-default clock.
  explicit ScopedTimer(metrics::Histogram& hist, std::string name = {});
  /// Time with a custom clock (e.g. a SimClock lambda, in virtual ms).
  ScopedTimer(metrics::Histogram& hist, NowFn now, std::string name = {});
  /// Convenience: registry histogram `name` with default time buckets.
  explicit ScopedTimer(const std::string& name);

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Stop now (idempotent); returns elapsed ms (0 when metrics disabled).
  double stop();

  ~ScopedTimer();

 private:
  metrics::Histogram* hist_;
  NowFn now_;  // empty -> process-default clock
  std::string name_;
  double start_ms_ = 0.0;
  bool running_ = false;
};

}  // namespace vkey::trace
